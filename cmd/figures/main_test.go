package main

import "testing"

// TestEveryExperimentRuns drives each experiment id end to end at quick
// quality — the figures binary is the harness that regenerates the paper,
// so every path must execute.
func TestEveryExperimentRuns(t *testing.T) {
	ids := []string{
		"table1", "gridcut", "swarm", "rotating",
		"raretoken", "inflation",
	}
	for _, id := range ids {
		if err := run([]string{"-exp", id, "-quality", "quick", "-seed", "2"}); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	if err := run([]string{"-exp", "raretoken", "-quality", "quick", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "bogus"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestUnknownQuality(t *testing.T) {
	if err := run([]string{"-quality", "bogus"}); err == nil {
		t.Fatal("unknown quality accepted")
	}
}
