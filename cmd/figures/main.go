// Command figures regenerates every table and figure of the paper, plus the
// extension experiments, as aligned text tables (or CSV with -csv).
//
//	figures -exp all          # everything (takes a few minutes at -quality full)
//	figures -exp fig1         # just Figure 1
//	figures -exp fig1 -csv    # machine-readable
//
// Experiments: table1 fig1 fig2 fig3 altruism gridcut raretoken scrip swarm
// coding reporting ratelimit rotating all.
package main

import (
	"flag"
	"fmt"
	"os"

	"lotuseater"
	"lotuseater/internal/metrics"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id (table1|fig1|fig2|fig3|altruism|gridcut|raretoken|scrip|swarm|coding|reporting|ratelimit|rotating|inflation|hoarding|satiate-ablation|all)")
	quality := fs.String("quality", "full", "sweep quality: full|quick")
	seed := fs.Uint64("seed", 1, "random seed")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var q lotuseater.Quality
	switch *quality {
	case "full":
		q = lotuseater.FullQuality()
	case "quick":
		q = lotuseater.QuickQuality()
	default:
		return fmt.Errorf("unknown quality %q (want full|quick)", *quality)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"table1", "fig1", "fig2", "fig3", "altruism", "gridcut", "raretoken", "scrip", "swarm", "coding", "reporting", "ratelimit", "rotating", "inflation", "hoarding", "satiate-ablation"}
	}
	for _, id := range ids {
		if err := runOne(id, *seed, q, *csv); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	return nil
}

func emitSeries(title, xLabel string, csv, crossover bool, series ...*lotuseater.Series) {
	fmt.Printf("## %s\n\n", title)
	if csv {
		fmt.Print(metrics.CSV(xLabel, series...))
	} else {
		fmt.Print(metrics.Table(xLabel, series...))
	}
	if crossover {
		for _, s := range series {
			if x, ok := s.CrossoverBelow(0.93); ok {
				fmt.Printf("# %s drops below the 0.93 usability threshold at x = %.3f\n", s.Name, x)
			}
		}
	}
	fmt.Println()
}

func runOne(id string, seed uint64, q lotuseater.Quality, csv bool) error {
	switch id {
	case "table1":
		fmt.Println("## Table 1: Simulation Parameters")
		fmt.Println()
		fmt.Print(metrics.RenderRows(lotuseater.Table1()))
		fmt.Println()

	case "fig1":
		emitSeries("Figure 1: three attacks on BAR Gossip (isolated-node delivery)",
			"attacker-fraction", csv, true, lotuseater.Figure1(seed, q)...)

	case "fig2":
		emitSeries("Figure 2: push size 10 reduces attack effectiveness",
			"attacker-fraction", csv, true, lotuseater.Figure2(seed, q)...)

	case "fig3":
		emitSeries("Figure 3: obedient (unbalanced) exchanges reduce effectiveness",
			"attacker-fraction", csv, true, lotuseater.Figure3(seed, q)...)

	case "altruism":
		emitSeries("E1: altruism a vs completion under rotating satiation (token model)",
			"altruism-a", csv, false, lotuseater.AltruismExperiment(seed, q))

	case "gridcut":
		rows, err := lotuseater.GridCutExperiment(seed)
		if err != nil {
			return err
		}
		fmt.Println("## E2: satiating a grid cut vs a random graph (token model)")
		fmt.Println()
		table := [][]string{{"topology/attack", "satiated", "rare-token-coverage", "completed-fraction"}}
		for _, r := range rows {
			table = append(table, []string{
				r.Topology,
				fmt.Sprintf("%d", r.SatiatedNodes),
				fmt.Sprintf("%.4f", r.RareTokenCoverage),
				fmt.Sprintf("%.4f", r.CompletedFraction),
			})
		}
		fmt.Print(metrics.RenderRows(table))
		fmt.Println()

	case "raretoken":
		emitSeries("E3: rare-token denial vs altruism (token model)",
			"altruism-a", csv, false, lotuseater.RareTokenExperiment(seed, q))

	case "scrip":
		emitSeries("E4a: scrip-system satiation is bounded by the money supply",
			"targeted-fraction", csv, false, lotuseater.ScripMoneySupplyExperiment(seed, q))
		emitSeries("E4b: satiating rare providers denies specialty service; altruists restore it",
			"attack-budget", csv, false, lotuseater.ScripRareProviderExperiment(seed, q)...)

	case "swarm":
		rows, err := lotuseater.SwarmExperiment(seed, q.Seeds)
		if err != nil {
			return err
		}
		fmt.Println("## E5: lotus-eater attacks on a BitTorrent-like swarm")
		fmt.Println()
		table := [][]string{{"scenario", "completed", "mean-tick", "median-tick", "lost-pieces"}}
		for _, r := range rows {
			table = append(table, []string{
				r.Scenario,
				fmt.Sprintf("%.3f", r.CompletedFraction),
				fmt.Sprintf("%.1f", r.MeanCompletionTick),
				fmt.Sprintf("%.1f", r.MedianCompletionTick),
				fmt.Sprintf("%d", r.LostPieces),
			})
		}
		fmt.Print(metrics.RenderRows(table))
		fmt.Println()

	case "coding":
		emitSeries("E6: network coding neutralizes rare-token satiation",
			"satiated-unique-holders", csv, false, lotuseater.CodingExperiment(seed, q)...)

	case "reporting":
		emitSeries("E7: obedient reporting evicts over-providers (trade attack, 30%)",
			"obedient-fraction", csv, false, lotuseater.ReportingExperiment(seed, q)...)

	case "ratelimit":
		emitSeries("E8: per-peer rate limiting vs the ideal attack (cap=0 means off)",
			"rate-cap", csv, false, lotuseater.RateLimitExperiment(seed, q)...)

	case "satiate-ablation":
		emitSeries("A1: why satiate 70%? (trade attack, 25% attackers)",
			"satiate-fraction", csv, false, lotuseater.SatiateFractionAblation(seed, q)...)

	case "inflation":
		emitSeries("E10: satiation by monetary inflation (untargeted scrip gifts)",
			"injected-scrip-per-capita", csv, false, lotuseater.ScripInflationExperiment(seed, q))

	case "hoarding":
		emitSeries("E11: service hoarders drain the money supply and centralize the system",
			"hoarder-fraction", csv, false, lotuseater.ScripHoardingExperiment(seed, q))

	case "rotating":
		rows, err := lotuseater.RotatingExperiment(seed, 20)
		if err != nil {
			return err
		}
		fmt.Println("## E9: rotating the satiated set makes service intermittently unusable for all")
		fmt.Println()
		table := [][]string{{"arm", "mean-delivery", "nodes-with-outage", "mean-outage-epochs", "epochs"}}
		for _, r := range rows {
			table = append(table, []string{
				r.Name,
				fmt.Sprintf("%.4f", r.MeanDelivery),
				fmt.Sprintf("%.3f", r.NodesWithOutage),
				fmt.Sprintf("%.2f", r.MeanOutageEpochs),
				fmt.Sprintf("%d", r.Epochs),
			})
		}
		fmt.Print(metrics.RenderRows(table))
		fmt.Println()

	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}
