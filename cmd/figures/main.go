// Command figures regenerates every table and figure of the paper, plus the
// extension experiments, as aligned text tables (or CSV with -csv). It is a
// thin wrapper over the experiment registry — `lotus-sim figures` is the
// same command, and `lotus-sim run <name>` runs any single entry.
//
//	figures -exp all          # everything (takes a few minutes at -quality full)
//	figures -exp fig1         # just Figure 1
//	figures -exp fig1 -csv    # machine-readable
//
// Experiments: table1 fig1 fig2 fig3 altruism gridcut raretoken scrip swarm
// coding reporting ratelimit rotating inflation hoarding satiate-ablation all.
package main

import (
	"fmt"
	"os"

	"lotuseater/internal/cli"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	return cli.Figures(os.Stdout, args)
}
