// Command swarm-sim runs the BitTorrent-like swarm simulator with optional
// lotus-eater attacks.
//
//	swarm-sim -leechers 120 -pieces 128 -attack rare -uplink 64 -targets 2
package main

import (
	"flag"
	"fmt"
	"os"

	"lotuseater/internal/swarm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "swarm-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("swarm-sim", flag.ContinueOnError)
	cfg := swarm.DefaultConfig()
	fs.IntVar(&cfg.Leechers, "leechers", cfg.Leechers, "number of leechers")
	fs.IntVar(&cfg.Pieces, "pieces", cfg.Pieces, "file size in pieces")
	fs.IntVar(&cfg.UploadSlots, "slots", cfg.UploadSlots, "unchoke slots per node")
	fs.IntVar(&cfg.PeerSetSize, "peers", cfg.PeerSetSize, "peer-set size")
	fs.IntVar(&cfg.Ticks, "ticks", cfg.Ticks, "horizon in ticks")
	selection := fs.String("selection", "rarest", "piece selection: rarest|random")
	endgame := fs.Bool("endgame", cfg.Endgame, "enable endgame mode")
	fs.IntVar(&cfg.SeedDepartTick, "seeddepart", cfg.SeedDepartTick, "tick the initial seed leaves (0 = never)")
	stay := fs.Bool("stay", cfg.SeedAfterComplete, "finished leechers keep seeding")

	attackName := fs.String("attack", "off", "attack: off|top|rare")
	fs.IntVar(&cfg.AttackerUplink, "uplink", 0, "attacker upload capacity (pieces/tick)")
	fs.IntVar(&cfg.AttackTargets, "targets", 0, "concurrent satiation targets")
	fs.IntVar(&cfg.AttackStartTick, "astart", 0, "attack start tick")
	fs.IntVar(&cfg.AttackStopTick, "astop", 0, "attack stop tick (0 = never)")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *selection {
	case "rarest":
		cfg.Selection = swarm.SelectRarestFirst
	case "random":
		cfg.Selection = swarm.SelectRandom
	default:
		return fmt.Errorf("unknown selection %q (want rarest|random)", *selection)
	}
	switch *attackName {
	case "off":
		cfg.Attack = swarm.AttackOff
	case "top":
		cfg.Attack = swarm.AttackTopUploaders
	case "rare":
		cfg.Attack = swarm.AttackRarePieceHolders
	default:
		return fmt.Errorf("unknown attack %q (want off|top|rare)", *attackName)
	}
	cfg.Endgame = *endgame
	cfg.SeedAfterComplete = *stay

	sim, err := swarm.New(cfg, *seed)
	if err != nil {
		return err
	}
	res, err := sim.Run()
	if err != nil {
		return err
	}
	fmt.Printf("swarm: %d leechers, %d pieces, %s selection, attack=%s\n",
		cfg.Leechers, cfg.Pieces, cfg.Selection, cfg.Attack)
	fmt.Printf("  completed fraction:  %.3f\n", res.CompletedFraction)
	fmt.Printf("  mean completion:     %.1f ticks\n", res.MeanCompletionTick)
	fmt.Printf("  median completion:   %.1f ticks\n", res.MedianCompletionTick)
	fmt.Printf("  lost pieces:         %d\n", res.LostPieces)
	if cfg.Attack != swarm.AttackOff {
		fmt.Printf("  attacker uploaded:   %d pieces\n", res.AttackerUploaded)
		fmt.Printf("  satiated by attacker: %d leechers\n", res.SatiatedByAttacker)
	}
	return nil
}
