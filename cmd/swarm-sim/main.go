// Command swarm-sim runs the BitTorrent-like swarm simulator with optional
// lotus-eater attacks. It is a thin wrapper over the shared CLI plumbing —
// `lotus-sim swarm` is the same command.
//
//	swarm-sim -leechers 120 -pieces 128 -attack rare -uplink 64 -targets 2
package main

import (
	"fmt"
	"os"

	"lotuseater/internal/cli"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "swarm-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	return cli.Swarm(os.Stdout, args)
}
