package main

import "testing"

func TestRunSmoke(t *testing.T) {
	args := []string{"-leechers", "30", "-pieces", "32", "-ticks", "200"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunAttackVariants(t *testing.T) {
	for _, attack := range []string{"top", "rare"} {
		args := []string{
			"-leechers", "30", "-pieces", "32", "-ticks", "200",
			"-attack", attack, "-uplink", "16", "-targets", "2",
			"-selection", "random", "-seeddepart", "40", "-stay=false",
		}
		if err := run(args); err != nil {
			t.Fatalf("%s: %v", attack, err)
		}
	}
}

func TestRunBadSelection(t *testing.T) {
	if err := run([]string{"-selection", "bogus"}); err == nil {
		t.Fatal("bogus selection accepted")
	}
}

func TestRunBadAttack(t *testing.T) {
	if err := run([]string{"-attack", "bogus"}); err == nil {
		t.Fatal("bogus attack accepted")
	}
}
