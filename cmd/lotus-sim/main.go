// Command lotus-sim is the single entry point to the whole reproduction.
//
// Subcommands:
//
//	lotus-sim list                                  # the experiment catalogue
//	lotus-sim run figure1 -quality quick            # run a registered experiment
//	lotus-sim run gridcut -format json              # ... as JSON (or csv)
//	lotus-sim figures -exp all -quality full        # regenerate every table and figure
//	lotus-sim gossip -attack trade -fraction 0.22   # one BAR Gossip simulation
//	lotus-sim scrip|swarm|token [flags]             # the other single-run simulators
//	lotus-sim serve -addr localhost:8321            # the HTTP experiment service
//	lotus-sim serve -role coordinator               # cluster front: shards jobs to workers
//	lotus-sim serve -role worker -join http://c:8321  # one cluster execution node
//
// Invoking lotus-sim with plain flags (no subcommand) keeps the original
// behavior of a single gossip run:
//
//	lotus-sim -attack trade -fraction 0.22
package main

import (
	"fmt"
	"os"
	"strings"

	"lotuseater/internal/cli"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lotus-sim:", err)
		os.Exit(1)
	}
}

func usage() string {
	return strings.TrimSpace(`
usage: lotus-sim <command> [flags]

commands:
  list       show every registered experiment
  run        run an experiment or scenario by name (-quality, -seed, -format,
             -set key=val ..., -spec file.json)
  scenarios  declarative scenarios: list | show <name> | run <name> | bench
  serve      long-running HTTP experiment service with a content-addressed
             result cache (-addr, -cache-bytes, -queue-depth, -workers);
             scales out with -role=coordinator|worker -join=<url> [-advertise=<url>]
  figures    regenerate the paper's tables and figures (-exp, -quality, -csv)
  gossip     run a single BAR Gossip simulation (default when given bare flags)
  scrip      run the scrip-economy simulator
  swarm      run the BitTorrent-like swarm simulator
  token      run the Section 3 token-collecting model
`)
}

func run(args []string) error {
	w := os.Stdout
	if len(args) == 0 {
		return cli.Gossip(w, args)
	}
	switch args[0] {
	case "list":
		return cli.List(w)
	case "run":
		return cli.RunExperiment(w, args[1:])
	case "scenarios":
		return cli.Scenarios(w, args[1:])
	case "serve":
		return cli.Serve(w, args[1:])
	case "figures":
		return cli.Figures(w, args[1:])
	case "gossip":
		return cli.Gossip(w, args[1:])
	case "scrip":
		return cli.Scrip(w, args[1:])
	case "swarm":
		return cli.Swarm(w, args[1:])
	case "token":
		return cli.Token(w, args[1:])
	case "help", "-h", "-help", "--help":
		fmt.Fprintln(w, usage())
		return nil
	default:
		if strings.HasPrefix(args[0], "-") {
			// Original single-run mode: lotus-sim -attack trade -fraction 0.22
			return cli.Gossip(w, args)
		}
		return fmt.Errorf("unknown command %q\n%s", args[0], usage())
	}
}
