package main

import "testing"

func TestRunSmoke(t *testing.T) {
	args := []string{
		"-attack", "trade", "-fraction", "0.2",
		"-nodes", "80", "-rounds", "30", "-warmup", "8", "-v",
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunDefenses(t *testing.T) {
	args := []string{
		"-attack", "ideal", "-fraction", "0.1",
		"-nodes", "80", "-rounds", "30", "-warmup", "8",
		"-obedient", "1", "-ratelimit", "2", "-report", "1",
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunRotating(t *testing.T) {
	args := []string{
		"-attack", "trade", "-fraction", "0.2", "-rotate", "5",
		"-nodes", "80", "-rounds", "30", "-warmup", "8",
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadAttack(t *testing.T) {
	if err := run([]string{"-attack", "nonsense"}); err == nil {
		t.Fatal("bogus attack name accepted")
	}
}

func TestRunBadConfig(t *testing.T) {
	if err := run([]string{"-nodes", "1"}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestListCommand(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCommandText(t *testing.T) {
	if err := run([]string{"run", "table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCommandFormats(t *testing.T) {
	for _, format := range []string{"text", "csv", "json"} {
		args := []string{"run", "raretoken", "-quality", "quick", "-seed", "2", "-format", format}
		if err := run(args); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
	}
}

func TestRunCommandUnknownExperiment(t *testing.T) {
	if err := run([]string{"run", "bogus"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunCommandMissingName(t *testing.T) {
	if err := run([]string{"run"}); err == nil {
		t.Fatal("missing experiment name accepted")
	}
}

func TestGossipSubcommand(t *testing.T) {
	args := []string{"gossip", "-attack", "crash", "-fraction", "0.1",
		"-nodes", "80", "-rounds", "30", "-warmup", "8"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestFiguresSubcommand(t *testing.T) {
	if err := run([]string{"figures", "-exp", "table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownCommand(t *testing.T) {
	if err := run([]string{"frobnicate"}); err == nil {
		t.Fatal("unknown command accepted")
	}
}

func TestHelp(t *testing.T) {
	if err := run([]string{"help"}); err != nil {
		t.Fatal(err)
	}
}
