package main

import "testing"

func TestRunSmoke(t *testing.T) {
	args := []string{
		"-attack", "trade", "-fraction", "0.2",
		"-nodes", "80", "-rounds", "30", "-warmup", "8", "-v",
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunDefenses(t *testing.T) {
	args := []string{
		"-attack", "ideal", "-fraction", "0.1",
		"-nodes", "80", "-rounds", "30", "-warmup", "8",
		"-obedient", "1", "-ratelimit", "2", "-report", "1",
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunRotating(t *testing.T) {
	args := []string{
		"-attack", "trade", "-fraction", "0.2", "-rotate", "5",
		"-nodes", "80", "-rounds", "30", "-warmup", "8",
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadAttack(t *testing.T) {
	if err := run([]string{"-attack", "nonsense"}); err == nil {
		t.Fatal("bogus attack name accepted")
	}
}

func TestRunBadConfig(t *testing.T) {
	if err := run([]string{"-nodes", "1"}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
