package main

import "testing"

func TestRunTopologies(t *testing.T) {
	for _, g := range []string{"complete", "ring", "random", "smallworld"} {
		args := []string{"-graph", g, "-n", "40", "-tokens", "8", "-rounds", "30"}
		if err := run(args); err != nil {
			t.Fatalf("%s: %v", g, err)
		}
	}
}

func TestRunGridCut(t *testing.T) {
	args := []string{"-graph", "grid", "-rows", "8", "-cols", "8", "-tokens", "16", "-cut", "4", "-rounds", "40"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunSatiateRandom(t *testing.T) {
	args := []string{"-graph", "complete", "-n", "40", "-tokens", "8", "-satiate", "10", "-altruism", "0.1", "-rounds", "30"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunCutRequiresGrid(t *testing.T) {
	if err := run([]string{"-graph", "ring", "-cut", "2"}); err == nil {
		t.Fatal("cut on non-grid accepted")
	}
}

func TestRunBadGraph(t *testing.T) {
	if err := run([]string{"-graph", "bogus"}); err == nil {
		t.Fatal("bogus graph accepted")
	}
}
