// Command token-sim explores the abstract token-collecting model of
// Section 3 of the paper: a system (G, T, sat, f, c, a) with an attacker
// that instantly satiates a chosen set of nodes each round. It is a thin
// wrapper over the shared CLI plumbing — `lotus-sim token` is the same
// command.
//
//	token-sim -graph grid -rows 16 -cols 16 -tokens 50 -cut 8
//	token-sim -graph random -n 200 -tokens 50 -satiate 100 -altruism 0.1
package main

import (
	"fmt"
	"os"

	"lotuseater/internal/cli"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "token-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	return cli.Token(os.Stdout, args)
}
