// Command lotus-lint runs the repo's project-specific static analyzers
// (internal/analysis): detrand, maprange, rngshard, and allocfree — the
// determinism and hot-path rules the README states in prose, checked at
// compile time. It is stdlib-only: packages are loaded with go/parser and
// type-checked with go/types over the source importer, so `go run
// ./cmd/lotus-lint ./...` works on a bare toolchain with no module
// downloads.
//
// Usage:
//
//	lotus-lint [-json] [-json-out file] [patterns...]
//
// Patterns are import-path patterns relative to the module: `./...` (the
// default) lints every package; `./internal/...` or
// `lotuseater/internal/swarm` narrow the scope. Findings print as
//
//	file:line:col: [analyzer] message
//
// and the exit status is 1 when there are findings, 2 on load/type errors,
// 0 on a clean tree. -json replaces the human output with a JSON report;
// -json-out writes the same JSON to a file while keeping the human output
// on stdout (the form CI uses to archive the report as an artifact).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"lotuseater/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("lotus-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the report as JSON on stdout instead of human-readable lines")
	jsonFile := fs.String("json-out", "", "also write the JSON report to this file")
	dir := fs.String("C", ".", "directory inside the module to lint")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	mod, err := analysis.LoadModule(*dir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	var pkgs []*analysis.Package
	for _, pkg := range mod.Packages() {
		if matchAny(patterns, mod.Path, pkg.Path) {
			pkgs = append(pkgs, pkg)
		}
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(stderr, "lotus-lint: no packages match %v\n", patterns)
		return 2
	}
	res, err := analysis.RunAnalyzers(mod, pkgs, analysis.DefaultConfig(mod.Path))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	if *jsonFile != "" {
		if err := writeJSON(*jsonFile, res); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range res.Diagnostics {
			fmt.Fprintln(stdout, d)
		}
		fmt.Fprintf(stdout, "lotus-lint: %d package(s), %d finding(s), %d suppressed\n",
			res.Packages, len(res.Diagnostics), res.Suppressed)
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}

func writeJSON(path string, res *analysis.Result) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// matchAny reports whether importPath matches any of the go-style patterns,
// resolved against the module path: "./..." is the whole module, "./x/..."
// a subtree, "./x" or a full import path an exact package.
func matchAny(patterns []string, modPath, importPath string) bool {
	for _, p := range patterns {
		if matchPattern(p, modPath, importPath) {
			return true
		}
	}
	return false
}

func matchPattern(pattern, modPath, importPath string) bool {
	p := pattern
	if p == "." || p == "./..." {
		return true
	}
	if rest, ok := strings.CutPrefix(p, "./"); ok {
		p = modPath + "/" + rest
	}
	if sub, ok := strings.CutSuffix(p, "/..."); ok {
		return importPath == sub || strings.HasPrefix(importPath, sub+"/")
	}
	return importPath == p
}
