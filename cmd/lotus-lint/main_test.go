package main

import "testing"

func TestMatchPattern(t *testing.T) {
	const mod = "lotuseater"
	cases := []struct {
		pattern, importPath string
		want                bool
	}{
		{".", "lotuseater/internal/gossip", true},
		{"./...", "lotuseater/cmd/lotus-lint", true},
		{"./internal/...", "lotuseater/internal/gossip", true},
		{"./internal/...", "lotuseater/internal/sim", true},
		{"./internal/...", "lotuseater/cmd/lotus-sim", false},
		{"./internal/gossip", "lotuseater/internal/gossip", true},
		{"./internal/gossip", "lotuseater/internal/gossipx", false},
		{"./internal/gossip/...", "lotuseater/internal/gossip", true},
		{"lotuseater/internal/swarm", "lotuseater/internal/swarm", true},
		{"lotuseater/internal/swarm", "lotuseater/internal/sim", false},
		{"lotuseater/...", "lotuseater/internal/sim", true},
	}
	for _, tc := range cases {
		if got := matchPattern(tc.pattern, mod, tc.importPath); got != tc.want {
			t.Errorf("matchPattern(%q, %q, %q) = %v, want %v", tc.pattern, mod, tc.importPath, got, tc.want)
		}
	}
}
