package main

import "testing"

func TestRunSmoke(t *testing.T) {
	args := []string{"-agents", "60", "-rounds", "2000"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithAttack(t *testing.T) {
	args := []string{
		"-agents", "60", "-rounds", "2000",
		"-targets", "10", "-budget", "5000", "-start", "100",
		"-attackers", "0.05", "-special", "5", "-specialreq", "0.1",
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadConfig(t *testing.T) {
	if err := run([]string{"-agents", "1"}); err == nil {
		t.Fatal("invalid config accepted")
	}
}
