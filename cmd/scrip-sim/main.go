// Command scrip-sim runs the scrip-economy simulator with an optional
// money-gifting lotus-eater attack.
//
//	scrip-sim -agents 200 -threshold 5 -targets 20 -budget 100000
//
// With -budget 0 the attacker must finance the attack from what its agents
// (-attackers) earn in-system — the configuration that exhibits the
// money-supply bound.
package main

import (
	"flag"
	"fmt"
	"os"

	"lotuseater/internal/scrip"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "scrip-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("scrip-sim", flag.ContinueOnError)
	cfg := scrip.DefaultConfig()
	fs.IntVar(&cfg.Agents, "agents", cfg.Agents, "population size")
	fs.IntVar(&cfg.Threshold, "threshold", cfg.Threshold, "rational threshold strategy k")
	fs.IntVar(&cfg.MoneyPerCapita, "money", cfg.MoneyPerCapita, "initial scrip per agent")
	fs.IntVar(&cfg.Rounds, "rounds", cfg.Rounds, "service requests to simulate")
	fs.Float64Var(&cfg.AltruistFraction, "altruists", 0, "fraction of altruist agents")
	fs.Float64Var(&cfg.AttackerFraction, "attackers", 0, "fraction of attacker-controlled earner agents")
	fs.Float64Var(&cfg.Cost, "cost", cfg.Cost, "provider's utility cost per service")
	fs.IntVar(&cfg.SpecialProviders, "special", 0, "number of specialty providers (agents 0..n-1)")
	fs.Float64Var(&cfg.SpecialRequestFraction, "specialreq", 0, "fraction of requests needing a specialty provider")

	targets := fs.Int("targets", 0, "number of agents the attacker satiates (0 = no attack)")
	budget := fs.Int("budget", 0, "exogenous attack budget in scrip")
	start := fs.Int("start", 1000, "round the attack begins")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sim, err := scrip.New(cfg, *seed)
	if err != nil {
		return err
	}
	if *targets > 0 {
		var list []int
		for i := 0; i < cfg.Agents && len(list) < *targets; i++ {
			if sim.Kind(i) != scrip.AttackerAgent {
				list = append(list, i)
			}
		}
		if err := sim.Attack(scrip.AttackPlan{Targets: list, Budget: *budget, StartRound: *start}); err != nil {
			return err
		}
	}
	res, err := sim.Run()
	if err != nil {
		return err
	}

	fmt.Printf("scrip economy: %d agents, threshold %d, %d scrip/capita, %d requests\n",
		cfg.Agents, cfg.Threshold, cfg.MoneyPerCapita, cfg.Rounds)
	fmt.Printf("  availability:            %.4f (%d served, %d no provider, %d no money)\n",
		res.Availability, res.Served, res.FailedNoProvider, res.FailedNoMoney)
	fmt.Printf("  non-target availability: %.4f\n", res.NonTargetAvailability)
	if res.SpecialRequests > 0 {
		fmt.Printf("  specialty availability:  %.4f (%d of %d)\n",
			res.SpecialAvailability, res.SpecialServed, res.SpecialRequests)
	}
	fmt.Printf("  served free by altruists: %d\n", res.ServedFree)
	fmt.Printf("  mean utility:            %.3f\n", res.MeanUtility)
	if *targets > 0 {
		fmt.Printf("attack: %d targets, budget %d, from round %d\n", *targets, *budget, *start)
		fmt.Printf("  satiated-target fraction: %.4f\n", res.SatiatedTargetFraction)
		fmt.Printf("  attacker spent %d, earned %d, shortfall rounds %d\n",
			res.AttackerSpent, res.AttackerEarned, res.AttackerShortfall)
	}
	fmt.Printf("money supply: %d (opening %d + injected budget)\n",
		res.FinalMoneySupply, cfg.Agents*cfg.MoneyPerCapita)
	return nil
}
