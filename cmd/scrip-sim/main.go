// Command scrip-sim runs the scrip-economy simulator with an optional
// money-gifting lotus-eater attack. It is a thin wrapper over the shared
// CLI plumbing — `lotus-sim scrip` is the same command.
//
//	scrip-sim -agents 200 -threshold 5 -targets 20 -budget 100000
//
// With -budget 0 the attacker must finance the attack from what its agents
// (-attackers) earn in-system — the configuration that exhibits the
// money-supply bound.
package main

import (
	"fmt"
	"os"

	"lotuseater/internal/cli"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "scrip-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	return cli.Scrip(os.Stdout, args)
}
