module lotuseater

go 1.24
