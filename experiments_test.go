package lotuseater

import (
	"testing"
)

// The experiment drivers are the integration suite: each test runs a
// reduced-quality sweep end to end and asserts the paper's qualitative
// claims (orderings and directions, not absolute values).

func quickQ() Quality { return Quality{Points: 5, Seeds: 1} }

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	want := map[string]string{
		"Number of Nodes":       "250",
		"Updates per Round":     "10",
		"Update Lifetime (rds)": "10",
		"Copies Seeded":         "12",
		"Opt. Push Size (upd)":  "2",
	}
	for _, row := range rows[1:] {
		if want[row[0]] != row[1] {
			t.Fatalf("Table 1 row %q = %q, want %q", row[0], row[1], want[row[0]])
		}
		delete(want, row[0])
	}
	if len(want) != 0 {
		t.Fatalf("Table 1 missing rows: %v", want)
	}
}

func TestFigure1Ordering(t *testing.T) {
	series := Figure1(1, quickQ())
	if len(series) != 3 {
		t.Fatalf("%d series", len(series))
	}
	crash, ideal, trade := series[0], series[1], series[2]
	// At x = 0 all three agree on the healthy baseline.
	for _, s := range series {
		if s.Points[0].Y < 0.95 {
			t.Fatalf("%s baseline %.4f", s.Name, s.Points[0].Y)
		}
	}
	// Attack severity ordering at mid-sweep.
	x := crash.Points[2].X
	if !(ideal.YAt(x) < trade.YAt(x) && trade.YAt(x) < crash.YAt(x)) {
		t.Fatalf("ordering violated at x=%.2f: ideal %.3f, trade %.3f, crash %.3f",
			x, ideal.YAt(x), trade.YAt(x), crash.YAt(x))
	}
	// All curves decrease overall.
	for _, s := range series {
		first, last := s.Points[0].Y, s.Points[len(s.Points)-1].Y
		if last >= first {
			t.Fatalf("%s does not degrade: %.3f -> %.3f", s.Name, first, last)
		}
	}
}

func TestFigure2BluntsAttacks(t *testing.T) {
	q := quickQ()
	fig1 := Figure1(2, q)
	fig2 := Figure2(2, q)
	// Larger pushes help the isolated nodes against the ideal attack at
	// every interior point.
	x := fig1[1].Points[2].X
	if fig2[1].YAt(x) <= fig1[1].YAt(x) {
		t.Fatalf("push 10 did not blunt ideal attack at x=%.2f: %.4f vs %.4f",
			x, fig2[1].YAt(x), fig1[1].YAt(x))
	}
}

func TestFigure3UnbalancedHelps(t *testing.T) {
	series := Figure3(3, quickQ())
	if len(series) != 4 {
		t.Fatalf("%d series", len(series))
	}
	balanced2, unbalanced2, balanced4, unbalanced4 := series[0], series[1], series[2], series[3]
	x := balanced2.Points[3].X
	if unbalanced2.YAt(x) <= balanced2.YAt(x) {
		t.Fatalf("slack at push 2 did not help at x=%.2f", x)
	}
	// The combined change (push 4 + slack) beats plain push 2.
	if unbalanced4.YAt(x) <= balanced2.YAt(x) {
		t.Fatalf("combined defense did not help at x=%.2f", x)
	}
	_ = balanced4
}

func TestAltruismExperimentMonotoneEnds(t *testing.T) {
	s := AltruismExperiment(4, quickQ())
	first := s.Points[0].Y
	last := s.Points[len(s.Points)-1].Y
	if last <= first {
		t.Fatalf("altruism did not improve completion: %.3f -> %.3f", first, last)
	}
	if last < 0.9 {
		t.Fatalf("high altruism completion %.3f", last)
	}
}

func TestGridCutExperimentShowsBarrier(t *testing.T) {
	rows, err := GridCutExperiment(5)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]GridCutResult{}
	for _, r := range rows {
		byName[r.Topology] = r
	}
	gridBase := byName["grid/no-attack"]
	gridCut := byName["grid/column-cut"]
	rndBase := byName["random/no-attack"]
	rndHit := byName["random/same-size-target"]

	if gridCut.RareTokenCoverage > 0.60 {
		t.Fatalf("cut did not pin coverage: %.3f", gridCut.RareTokenCoverage)
	}
	if gridBase.RareTokenCoverage < gridCut.RareTokenCoverage+0.2 {
		t.Fatalf("cut indistinct from baseline: %.3f vs %.3f",
			gridBase.RareTokenCoverage, gridCut.RareTokenCoverage)
	}
	if rndHit.RareTokenCoverage < 0.95 || rndBase.RareTokenCoverage < 0.95 {
		t.Fatalf("random graph affected by same-size attack: %.3f / %.3f",
			rndBase.RareTokenCoverage, rndHit.RareTokenCoverage)
	}
}

func TestRareTokenExperimentAltruismRescues(t *testing.T) {
	s := RareTokenExperiment(6, quickQ())
	if s.Points[0].Y > 0.1 {
		t.Fatalf("a=0 rare-token denial failed: completion %.3f", s.Points[0].Y)
	}
	last := s.Points[len(s.Points)-1].Y
	if last < 0.9 {
		t.Fatalf("altruism did not rescue: %.3f", last)
	}
}

func TestScripMoneySupplyBound(t *testing.T) {
	s := ScripMoneySupplyExperiment(7, quickQ())
	// Satiated fraction collapses as the targeted fraction grows.
	small := s.Points[1].Y
	big := s.Points[len(s.Points)-1].Y
	if big >= small {
		t.Fatalf("satiation did not collapse with scale: %.3f -> %.3f", small, big)
	}
	if big > 0.5 {
		t.Fatalf("earned-budget attacker satiated %.3f of a large target set", big)
	}
}

func TestScripRareProviderDenial(t *testing.T) {
	series := ScripRareProviderExperiment(8, quickQ())
	attacked, defended := series[0], series[1]
	last := len(attacked.Points) - 1
	// A well-funded attack collapses specialty availability relative to the
	// unattacked baseline (budget 0).
	if attacked.Points[last].Y >= attacked.Points[0].Y-0.3 {
		t.Fatalf("budget %.0f did not collapse availability: %.3f vs baseline %.3f",
			attacked.Points[last].X, attacked.Points[last].Y, attacked.Points[0].Y)
	}
	// Harm grows with budget.
	if attacked.Points[last].Y >= attacked.Points[2].Y {
		t.Fatalf("harm not increasing in budget: %.3f at %.0f vs %.3f at %.0f",
			attacked.Points[2].Y, attacked.Points[2].X, attacked.Points[last].Y, attacked.Points[last].X)
	}
	// Altruists blunt the attack at every budget.
	if defended.Points[last].Y < 0.8 {
		t.Fatalf("altruists did not defend: %.3f", defended.Points[last].Y)
	}
}

func TestSwarmExperimentClaims(t *testing.T) {
	rows, err := SwarmExperiment(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SwarmRow{}
	for _, r := range rows {
		byName[r.Scenario] = r
	}
	base := byName["baseline/rarest-first"]
	top := byName["attack-top-uploaders"]
	if base.CompletedFraction < 0.99 {
		t.Fatalf("baseline swarm completed %.3f", base.CompletedFraction)
	}
	// "Often actually a net benefit": the attack must not slow the swarm.
	if top.MeanCompletionTick > base.MeanCompletionTick*1.1 {
		t.Fatalf("top-uploader attack slowed the swarm: %.1f vs %.1f",
			top.MeanCompletionTick, base.MeanCompletionTick)
	}
	// The rare-piece attack "does significantly less damage" than a crash
	// of comparable scale would: completion stays high under both policies.
	for _, name := range []string{"fragile/rare-attack/rarest-first", "fragile/rare-attack/random"} {
		if byName[name].CompletedFraction < 0.8 {
			t.Fatalf("%s completed %.3f", name, byName[name].CompletedFraction)
		}
	}
}

func TestCodingExperimentDefends(t *testing.T) {
	series := CodingExperiment(10, quickQ())
	plain, coded := series[0], series[1]
	lastIdx := len(plain.Points) - 1
	if plain.Points[lastIdx].Y > 0.75 {
		t.Fatalf("plain mode survived rare-holder satiation: %.3f", plain.Points[lastIdx].Y)
	}
	if coded.Points[lastIdx].Y < 0.85 {
		t.Fatalf("coded mode degraded: %.3f", coded.Points[lastIdx].Y)
	}
	if coded.Points[lastIdx].Y <= plain.Points[lastIdx].Y {
		t.Fatal("coding did not beat plain under attack")
	}
}

func TestReportingExperimentEvicts(t *testing.T) {
	series := ReportingExperiment(11, quickQ())
	delivery, evictions := series[0], series[1]
	if evictions.Points[0].Y != 0 {
		t.Fatalf("evictions with zero obedience: %g", evictions.Points[0].Y)
	}
	last := len(evictions.Points) - 1
	if evictions.Points[last].Y < 50 {
		t.Fatalf("full obedience evicted only %g of ~75 attackers", evictions.Points[last].Y)
	}
	if delivery.Points[last].Y < delivery.Points[0].Y-0.02 {
		t.Fatalf("reporting made things notably worse: %.4f -> %.4f",
			delivery.Points[0].Y, delivery.Points[last].Y)
	}
}

func TestRateLimitExperimentDefends(t *testing.T) {
	series := RateLimitExperiment(12, quickQ())
	attacked, clean := series[0], series[1]
	// Cap 1 (index 1) must beat no cap (index 0) under attack.
	if attacked.Points[1].Y <= attacked.Points[0].Y {
		t.Fatalf("cap 1 (%.4f) did not beat cap 0 (%.4f)",
			attacked.Points[1].Y, attacked.Points[0].Y)
	}
	// The excess-based limiter must not hurt the healthy system.
	for _, p := range clean.Points {
		if p.Y < 0.95 {
			t.Fatalf("healthy delivery %.4f at cap %g", p.Y, p.X)
		}
	}
}

func TestRotatingExperimentSpreadsOutages(t *testing.T) {
	rows, err := RotatingExperiment(13, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	staticArm, rotating := rows[0], rows[1]
	if rotating.NodesWithOutage <= staticArm.NodesWithOutage {
		t.Fatalf("rotation did not spread outages: %.3f vs %.3f",
			rotating.NodesWithOutage, staticArm.NodesWithOutage)
	}
	if rotating.NodesWithOutage < 0.5 {
		t.Fatalf("rotating attack reached only %.3f of nodes", rotating.NodesWithOutage)
	}
}

func TestFacadeConstructors(t *testing.T) {
	cfg := DefaultGossipConfig()
	cfg.Nodes = 50
	cfg.Rounds = 30
	cfg.Warmup = 5
	eng, err := NewGossip(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	tm, err := NewTokenModel(TokenModelConfig{
		Graph:    CompleteGraph(20),
		Tokens:   4,
		Contacts: 2,
		Rounds:   10,
	}, 2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tm.Run(); err != nil {
		t.Fatal(err)
	}

	sc, err := NewScrip(DefaultScripConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if sc.MoneySupply() == 0 {
		t.Fatal("scrip supply zero")
	}

	swCfg := DefaultSwarmConfig()
	swCfg.Leechers = 20
	swCfg.Pieces = 16
	swCfg.Ticks = 100
	sw, err := NewSwarm(swCfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Run(); err != nil {
		t.Fatal(err)
	}

	ds, err := NewDissemination(DisseminationConfig{
		Graph:       RandomGraph(30, 0.2, 7),
		Symbols:     5,
		PayloadSize: 8,
		Contacts:    2,
		Rounds:      20,
		Coded:       true,
	}, 5, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Run(); err != nil {
		t.Fatal(err)
	}

	if GridGraph(3, 3).N() != 9 {
		t.Fatal("grid facade broken")
	}
}

func TestQualityNormalize(t *testing.T) {
	q := Quality{}.Normalize()
	if q.Points < 2 || q.Seeds < 1 {
		t.Fatalf("normalize gave %+v", q)
	}
	if FullQuality().Points <= QuickQuality().Points {
		t.Fatal("full quality not larger than quick")
	}
}

func TestInflationExperimentCliff(t *testing.T) {
	s := ScripInflationExperiment(14, quickQ())
	last := s.Points[len(s.Points)-1]
	if last.Y != 0 {
		t.Fatalf("economy survived %g/capita inflation: %.3f", last.X, last.Y)
	}
	// Mild inflation helps before the cliff.
	if s.Points[1].Y <= s.Points[0].Y {
		t.Fatalf("mild inflation did not help: %.3f -> %.3f", s.Points[0].Y, s.Points[1].Y)
	}
}

func TestHoardingExperimentMonotone(t *testing.T) {
	s := ScripHoardingExperiment(15, quickQ())
	first, last := s.Points[0].Y, s.Points[len(s.Points)-1].Y
	if last >= first-0.3 {
		t.Fatalf("hoarding did not crash availability: %.3f -> %.3f", first, last)
	}
}

func TestSatiateFractionAblation(t *testing.T) {
	series := SatiateFractionAblation(16, Quality{Points: 6, Seeds: 2})
	delivery, victims := series[0], series[1]
	// Per-victim damage grows with the satiated fraction...
	first, last := delivery.Points[0].Y, delivery.Points[len(delivery.Points)-1].Y
	if last >= first {
		t.Fatalf("delivery did not fall with satiation: %.3f -> %.3f", first, last)
	}
	// ...but the victim count has an interior maximum: both endpoints are
	// below the peak.
	peak := 0.0
	for _, p := range victims.Points {
		if p.Y > peak {
			peak = p.Y
		}
	}
	if victims.Points[0].Y >= peak || victims.Points[len(victims.Points)-1].Y >= peak {
		t.Fatalf("victim count not interior-peaked: ends %.1f/%.1f, peak %.1f",
			victims.Points[0].Y, victims.Points[len(victims.Points)-1].Y, peak)
	}
}
