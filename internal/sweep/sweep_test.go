package sweep

import (
	"math"
	"sync/atomic"
	"testing"

	"lotuseater/internal/sim"
	"lotuseater/internal/simrng"
)

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Name: "det", Xs: Range(0, 1, 7), Seeds: 3, Workers: 4}
	fn := func(x float64, rng *simrng.Source, _ *sim.Workspace) float64 {
		return x + float64(rng.Uint64()%1000)/1000
	}
	a := Run(cfg, 42, fn)
	b := Run(cfg, 42, fn)
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs: %v vs %v", i, a.Points[i], b.Points[i])
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	fn := func(x float64, rng *simrng.Source, _ *sim.Workspace) float64 {
		return x*1000 + float64(rng.IntN(100))
	}
	one := Run(Config{Xs: Range(0, 1, 5), Seeds: 4, Workers: 1}, 7, fn)
	many := Run(Config{Xs: Range(0, 1, 5), Seeds: 4, Workers: 8}, 7, fn)
	for i := range one.Points {
		if one.Points[i] != many.Points[i] {
			t.Fatalf("worker count changed results at point %d", i)
		}
	}
}

func TestRunAveragesSeeds(t *testing.T) {
	// fn returns the replicate index via a counter; the mean of 0..3 is 1.5
	// only if all four replicates ran.
	var calls atomic.Int64
	s := Run(Config{Xs: []float64{1}, Seeds: 4}, 1, func(x float64, _ *simrng.Source, _ *sim.Workspace) float64 {
		calls.Add(1)
		return x
	})
	if calls.Load() != 4 {
		t.Fatalf("ran %d replicates, want 4", calls.Load())
	}
	if s.Points[0].Y != 1 {
		t.Fatalf("mean = %g, want 1", s.Points[0].Y)
	}
}

func TestRunZeroSeedsMeansOne(t *testing.T) {
	var calls atomic.Int64
	Run(Config{Xs: []float64{1, 2}}, 1, func(float64, *simrng.Source, *sim.Workspace) float64 {
		calls.Add(1)
		return 0
	})
	if calls.Load() != 2 {
		t.Fatalf("ran %d calls, want 2", calls.Load())
	}
}

func TestRunPreservesXOrder(t *testing.T) {
	xs := []float64{5, 1, 3}
	s := Run(Config{Xs: xs}, 1, func(x float64, _ *simrng.Source, _ *sim.Workspace) float64 { return x })
	for i, x := range xs {
		if s.Points[i].X != x || s.Points[i].Y != x {
			t.Fatalf("point %d = %v", i, s.Points[i])
		}
	}
}

func TestRangeEndpoints(t *testing.T) {
	xs := Range(0, 1, 11)
	if len(xs) != 11 {
		t.Fatalf("len = %d", len(xs))
	}
	if xs[0] != 0 || xs[10] != 1 {
		t.Fatalf("endpoints %g, %g", xs[0], xs[10])
	}
	if math.Abs(xs[5]-0.5) > 1e-12 {
		t.Fatalf("midpoint %g", xs[5])
	}
}

func TestRangeDegenerate(t *testing.T) {
	xs := Range(3, 9, 1)
	if len(xs) != 1 || xs[0] != 3 {
		t.Fatalf("Range(3,9,1) = %v", xs)
	}
	xs = Range(2, 2, 3)
	for _, x := range xs {
		if x != 2 {
			t.Fatalf("constant range produced %v", xs)
		}
	}
}
