// Package sweep runs parameter sweeps concurrently and deterministically.
//
// Every figure in the paper is a sweep: "for each attacker fraction x in
// [0, 1], run the simulation and record the fraction of updates delivered to
// isolated nodes". Points are independent, so they run on a bounded worker
// pool; determinism is preserved by deriving each point's seed from the
// sweep seed and the point index, and by collecting results into a slice
// keyed by index rather than by completion order.
package sweep

import (
	"runtime"
	"sync"

	"lotuseater/internal/metrics"
	"lotuseater/internal/simrng"
)

// PointFunc runs one sweep point. x is the swept parameter value, rng is a
// stream derived deterministically from the sweep seed and the point index,
// and the return value is the measured y.
type PointFunc func(x float64, rng *simrng.Source) float64

// Config controls a sweep.
type Config struct {
	// Name labels the resulting series.
	Name string
	// Xs are the parameter values to evaluate, in output order.
	Xs []float64
	// Seeds is the number of independent replications averaged per point.
	// Zero means 1.
	Seeds int
	// Workers bounds concurrency. Zero means GOMAXPROCS.
	Workers int
}

// Run evaluates fn at every (x, seed replicate) pair concurrently and
// returns the per-x means as a series. The result is deterministic for a
// fixed (cfg, seed, fn): replicate r of point i always sees the stream
// derived with ChildN("sweep", i*Seeds+r).
func Run(cfg Config, seed uint64, fn PointFunc) *metrics.Series {
	seeds := cfg.Seeds
	if seeds <= 0 {
		seeds = 1
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type job struct{ pt, rep int }
	jobs := make(chan job)
	results := make([][]float64, len(cfg.Xs))
	for i := range results {
		results[i] = make([]float64, seeds)
	}

	root := simrng.New(seed)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				rng := root.ChildN("sweep", j.pt*seeds+j.rep)
				results[j.pt][j.rep] = fn(cfg.Xs[j.pt], rng)
			}
		}()
	}
	for pt := range cfg.Xs {
		for rep := 0; rep < seeds; rep++ {
			jobs <- job{pt: pt, rep: rep}
		}
	}
	close(jobs)
	wg.Wait()

	out := &metrics.Series{Name: cfg.Name}
	for i, x := range cfg.Xs {
		out.Add(x, metrics.Mean(results[i]))
	}
	return out
}

// Range returns count evenly spaced values from lo to hi inclusive.
// count < 2 returns []float64{lo}.
func Range(lo, hi float64, count int) []float64 {
	if count < 2 {
		return []float64{lo}
	}
	out := make([]float64, count)
	step := (hi - lo) / float64(count-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[count-1] = hi
	return out
}
