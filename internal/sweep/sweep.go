// Package sweep runs parameter sweeps concurrently and deterministically.
//
// Every figure in the paper is a sweep: "for each attacker fraction x in
// [0, 1], run the simulation and record the fraction of updates delivered to
// isolated nodes". Points are independent, so they run on the shared
// bounded worker pool from internal/sim; determinism is preserved by
// deriving each point's seed from the sweep seed and the point index, and by
// collecting results into a slice keyed by index rather than by completion
// order — the series is bit-identical for any worker count.
package sweep

import (
	"lotuseater/internal/metrics"
	"lotuseater/internal/sim"
	"lotuseater/internal/simrng"
)

// PointFunc runs one sweep point. x is the swept parameter value, rng is a
// stream derived deterministically from the sweep seed and the point index,
// and ws is the executing worker's scratch arena (pass it to simulators that
// accept one to avoid per-replicate allocations). The return value is the
// measured y.
type PointFunc func(x float64, rng *simrng.Source, ws *sim.Workspace) float64

// Config controls a sweep.
type Config struct {
	// Name labels the resulting series.
	Name string
	// Xs are the parameter values to evaluate, in output order.
	Xs []float64
	// Seeds is the number of independent replications averaged per point.
	// Zero means 1.
	Seeds int
	// Workers bounds this sweep's in-flight tasks on the shared pool; the
	// pool width is the hard ceiling either way. Zero means pool width.
	// Results never depend on it.
	Workers int
}

// Run evaluates fn at every (x, seed replicate) pair concurrently and
// returns the per-x means as a series. The result is deterministic for a
// fixed (cfg, seed, fn): replicate r of point i always sees the stream
// derived with ChildN("sweep", i*Seeds+r). Nested sweeps (a PointFunc that
// itself calls Run) are safe: when the shared pool is saturated, tasks fall
// back to inline execution instead of queueing.
func Run(cfg Config, seed uint64, fn PointFunc) *metrics.Series {
	seeds := cfg.Seeds
	if seeds <= 0 {
		seeds = 1
	}

	results := make([][]float64, len(cfg.Xs))
	for i := range results {
		results[i] = make([]float64, seeds)
	}

	root := simrng.New(seed)
	sim.Go(len(cfg.Xs)*seeds, cfg.Workers, func(j int, ws *sim.Workspace) {
		pt, rep := j/seeds, j%seeds
		rng := root.ChildN("sweep", j)
		results[pt][rep] = fn(cfg.Xs[pt], rng, ws)
	})

	out := &metrics.Series{Name: cfg.Name}
	for i, x := range cfg.Xs {
		out.Add(x, metrics.Mean(results[i]))
	}
	return out
}

// PointStats is the streaming summary of one sweep point's replicates.
type PointStats struct {
	// X is the swept parameter value.
	X float64
	// Stats folds every replicate's y: mean, variance, min, max, and P²
	// quantile estimates, all in O(1) memory.
	Stats *metrics.Stream
}

// Stats evaluates fn like Run but folds each point's replicates into
// streaming accumulators instead of buffering a per-replicate slice, so
// memory is O(points) regardless of Seeds. Each point is one pool task that
// runs its replicates sequentially in index order; replicate r of point i
// sees the same ChildN("sweep", i*Seeds+r) stream as Run, so the means are
// bit-identical to Run's for any worker count (parallelism shifts from
// points×seeds tasks to points tasks — the right trade once Seeds is large
// enough to matter for memory).
func Stats(cfg Config, seed uint64, fn PointFunc) []PointStats {
	seeds := cfg.Seeds
	if seeds <= 0 {
		seeds = 1
	}
	out := make([]PointStats, len(cfg.Xs))
	root := simrng.New(seed)
	sim.Go(len(cfg.Xs), cfg.Workers, func(pt int, ws *sim.Workspace) {
		st := metrics.NewStream()
		for rep := 0; rep < seeds; rep++ {
			// Recycle the arena between replicates: the previous replicate's
			// model is gone, and without the reset same-shaped buffers would
			// pile up seeds-deep instead of being reused.
			ws.Reset()
			rng := root.ChildN("sweep", pt*seeds+rep)
			st.Add(fn(cfg.Xs[pt], rng, ws))
		}
		out[pt] = PointStats{X: cfg.Xs[pt], Stats: st}
	})
	return out
}

// Range returns count evenly spaced values from lo to hi inclusive.
// count < 2 returns []float64{lo}.
func Range(lo, hi float64, count int) []float64 {
	if count < 2 {
		return []float64{lo}
	}
	out := make([]float64, count)
	step := (hi - lo) / float64(count-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[count-1] = hi
	return out
}
