package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// buildFixedRegistry registers one of everything with fixed values — the
// shared fixture for the determinism tests.
func buildFixedRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("lotus_test_ops_total", "operations", Label{"kind", "put"})
	c.Add(3)
	r.Counter("lotus_test_ops_total", "operations", Label{"kind", "get"}).Add(7)
	r.CounterFunc("lotus_test_reads_total", "reads", func() uint64 { return 42 })
	g := r.Gauge("lotus_test_depth", "queue depth")
	g.Set(2.5)
	r.GaugeFunc(`lotus_test_cap`, `capacity with "quotes" and \slashes`, func() float64 { return 64 })
	h := r.Histogram("lotus_test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.005)
	h.Observe(0.5)
	h.Observe(30)
	return r
}

// TestRegistryWriteDeterministic: two identically built registries render
// byte-identical expositions matching the pinned layout — registration
// order, label order, cumulative buckets, escaping, float formatting.
func TestRegistryWriteDeterministic(t *testing.T) {
	want := strings.Join([]string{
		`# HELP lotus_test_ops_total operations`,
		`# TYPE lotus_test_ops_total counter`,
		`lotus_test_ops_total{kind="put"} 3`,
		`lotus_test_ops_total{kind="get"} 7`,
		`# HELP lotus_test_reads_total reads`,
		`# TYPE lotus_test_reads_total counter`,
		`lotus_test_reads_total 42`,
		`# HELP lotus_test_depth queue depth`,
		`# TYPE lotus_test_depth gauge`,
		`lotus_test_depth 2.5`,
		`# HELP lotus_test_cap capacity with "quotes" and \\slashes`,
		`# TYPE lotus_test_cap gauge`,
		`lotus_test_cap 64`,
		`# HELP lotus_test_latency_seconds latency`,
		`# TYPE lotus_test_latency_seconds histogram`,
		`lotus_test_latency_seconds_bucket{le="0.01"} 2`,
		`lotus_test_latency_seconds_bucket{le="0.1"} 2`,
		`lotus_test_latency_seconds_bucket{le="1"} 3`,
		`lotus_test_latency_seconds_bucket{le="+Inf"} 4`,
		`lotus_test_latency_seconds_sum 30.51`,
		`lotus_test_latency_seconds_count 4`,
		``,
	}, "\n")

	var a, b bytes.Buffer
	buildFixedRegistry().Render(&a)
	buildFixedRegistry().Render(&b)
	if a.String() != b.String() {
		t.Fatalf("two identical registries rendered differently:\n%s\nvs\n%s", a.String(), b.String())
	}
	if a.String() != want {
		t.Fatalf("exposition layout drifted:\ngot:\n%s\nwant:\n%s", a.String(), want)
	}
}

// TestCheckTextAcceptsOwnOutput: the checker round-trips everything the
// registry can render and reports the family catalogue.
func TestCheckTextAcceptsOwnOutput(t *testing.T) {
	var buf bytes.Buffer
	buildFixedRegistry().Render(&buf)
	fams, err := CheckText(buf.Bytes())
	if err != nil {
		t.Fatalf("checker rejects our own exposition: %v", err)
	}
	for name, typ := range map[string]string{
		"lotus_test_ops_total":       "counter",
		"lotus_test_reads_total":     "counter",
		"lotus_test_depth":           "gauge",
		"lotus_test_cap":             "gauge",
		"lotus_test_latency_seconds": "histogram",
	} {
		if fams[name] != typ {
			t.Errorf("family %s: got type %q, want %q", name, fams[name], typ)
		}
	}
}

// TestCheckTextRejectsMalformed: each corruption is caught with an error.
func TestCheckTextRejectsMalformed(t *testing.T) {
	for name, body := range map[string]string{
		"sample without TYPE":   "lotus_orphan_total 3\n",
		"bad metric name":       "# TYPE 9bad counter\n9bad 1\n",
		"bad value":             "# TYPE lotus_x gauge\nlotus_x purple\n",
		"unterminated labels":   "# TYPE lotus_x gauge\nlotus_x{a=\"b\" 1\n",
		"unquoted label value":  "# TYPE lotus_x gauge\nlotus_x{a=b} 1\n",
		"unknown type":          "# TYPE lotus_x matrix\nlotus_x 1\n",
		"duplicate TYPE":        "# TYPE lotus_x gauge\n# TYPE lotus_x gauge\nlotus_x 1\n",
		"bucket without family": "lotus_y_bucket{le=\"1\"} 2\n",
	} {
		if _, err := CheckText([]byte(body)); err == nil {
			t.Errorf("%s: checker accepted %q", name, body)
		}
	}
}

// TestRegistryPanicsOnMisuse: bad registrations are programmer errors and
// fail loudly at startup rather than corrupting the exposition.
func TestRegistryPanicsOnMisuse(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("lotus_a_total", "a")
	expectPanic("duplicate sample", func() { r.Counter("lotus_a_total", "a") })
	expectPanic("type mismatch", func() { r.Gauge("lotus_a_total", "a") })
	expectPanic("help mismatch", func() { r.Counter("lotus_a_total", "different") })
	expectPanic("bad name", func() { r.Counter("9lotus", "x") })
	expectPanic("bad label name", func() {
		c := r.Counter("lotus_b_total", "b", Label{"9bad", "v"})
		var buf bytes.Buffer
		_ = c
		r.Render(&buf)
	})
	expectPanic("empty histogram bounds", func() { r.Histogram("lotus_h", "h", nil) })
	expectPanic("unsorted bounds", func() { r.Histogram("lotus_h2", "h", []float64{1, 1}) })
}

// TestInstrumentsConcurrent: owned instruments and scrapes race cleanly
// (run under -race in the gate).
func TestInstrumentsConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("lotus_c_total", "c")
	g := r.Gauge("lotus_g", "g")
	h := r.Histogram("lotus_h_seconds", "h", []float64{1, 10})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Set(float64(j))
				h.Observe(float64(i))
				if j%100 == 0 {
					var buf bytes.Buffer
					r.Render(&buf)
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if _, err := CheckText(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}
