package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// CheckText validates a Prometheus text-format (0.0.4) exposition and
// returns the metric families it declares, name → type. It is the scrape
// gate the e2e tests run against `/metrics`: a parse error anywhere fails
// the whole body, and callers assert their required series against the
// returned map.
//
// The checker is stricter than a scraper needs to be, on purpose — it is
// pointed at our own endpoint, where sloppiness is a bug:
//
//   - every sample must belong to a family declared by a preceding # TYPE
//     line (histogram _bucket/_sum/_count samples resolve to their base
//     family),
//   - metric and label names must be well-formed,
//   - sample values must parse as floats (+Inf/-Inf/NaN allowed),
//   - # TYPE must name a known type and not repeat.
func CheckText(body []byte) (map[string]string, error) {
	families := make(map[string]string)
	for i, line := range strings.Split(string(body), "\n") {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkComment(line, families); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := checkSample(line, families); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	return families, nil
}

func checkComment(line string, families map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validMetricName(name) {
			return fmt.Errorf("TYPE line names invalid metric %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %s", typ, name)
		}
		if _, dup := families[name]; dup {
			return fmt.Errorf("family %s declared twice", name)
		}
		families[name] = typ
	}
	return nil
}

func checkSample(line string, families map[string]string) error {
	rest := line
	// Metric name runs to '{' or ' '.
	end := strings.IndexAny(rest, "{ ")
	if end <= 0 {
		return fmt.Errorf("malformed sample %q", line)
	}
	name := rest[:end]
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[end:]
	if strings.HasPrefix(rest, "{") {
		// Find the closing brace outside quotes — label values may contain
		// literal braces (e.g. route="/jobs/{key}").
		close := -1
		inQuotes := false
		for i := 1; i < len(rest); i++ {
			switch rest[i] {
			case '\\':
				i++
			case '"':
				inQuotes = !inQuotes
			case '}':
				if !inQuotes {
					close = i
				}
			}
			if close >= 0 {
				break
			}
		}
		if close < 0 {
			return fmt.Errorf("unterminated label set in %q", line)
		}
		if err := checkLabels(rest[1:close]); err != nil {
			return fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[close+1:]
	}
	rest = strings.TrimPrefix(rest, " ")
	// Value, optionally followed by a timestamp (we never emit one, but a
	// valid exposition may carry it).
	valueField := rest
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		valueField = rest[:sp]
		if _, err := strconv.ParseInt(strings.TrimSpace(rest[sp+1:]), 10, 64); err != nil {
			return fmt.Errorf("bad timestamp in %q", line)
		}
	}
	if !validSampleValue(valueField) {
		return fmt.Errorf("bad sample value %q in %q", valueField, line)
	}
	base := familyOf(name, families)
	if base == "" {
		return fmt.Errorf("sample %s has no preceding # TYPE declaration", name)
	}
	return nil
}

// familyOf resolves a sample name to its declared family: exact match, or
// the histogram/summary suffix forms.
func familyOf(name string, families map[string]string) string {
	if _, ok := families[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if typ, ok := families[base]; ok && (typ == "histogram" || typ == "summary") {
			return base
		}
	}
	return ""
}

func checkLabels(body string) error {
	if body == "" {
		return nil
	}
	// Split on commas outside quotes.
	depth := false
	start := 0
	var pairs []string
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				pairs = append(pairs, body[start:i])
				start = i + 1
			}
		}
	}
	pairs = append(pairs, body[start:])
	for _, p := range pairs {
		eq := strings.Index(p, "=")
		if eq <= 0 {
			return fmt.Errorf("malformed label %q", p)
		}
		lname, lval := p[:eq], p[eq+1:]
		if !validLabelName(lname) {
			return fmt.Errorf("invalid label name %q", lname)
		}
		if len(lval) < 2 || lval[0] != '"' || lval[len(lval)-1] != '"' {
			return fmt.Errorf("unquoted label value %q", lval)
		}
	}
	return nil
}

func validSampleValue(v string) bool {
	switch v {
	case "+Inf", "-Inf", "NaN", "Inf":
		return true
	}
	_, err := strconv.ParseFloat(v, 64)
	return err == nil
}
