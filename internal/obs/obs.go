// Package obs is the observability kernel behind `GET /metrics`: counter,
// gauge, and histogram instruments that render in the Prometheus text
// exposition format (version 0.0.4), with zero dependencies beyond the
// standard library.
//
// The design rule is determinism: a Registry renders its families in first-
// registration order and each family's samples in sample-registration
// order, so two processes that register the same instruments in the same
// code path produce byte-identical scrape layouts. That is what lets a
// golden test pin the whole exposition and a fleet-wide scraper rely on a
// stable schema.
//
// Instruments come in two flavors. Owned instruments (Counter, Gauge,
// Histogram) hold their own state and are safe for concurrent use — Counter
// and Gauge are atomics, Histogram takes a short mutex per observation.
// Func-backed instruments (CounterFunc, GaugeFunc) read their value at
// scrape time from a callback, which is how existing stats structs (cache
// hit counts, queue depth) export without double bookkeeping.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a sample. Label values may
// contain any UTF-8; they are escaped on output.
type Label struct {
	Name, Value string
}

// Registry holds a fixed set of instruments and renders them as Prometheus
// text. Registration is not concurrency-safe and should finish before the
// first scrape; scraping and instrument updates are safe concurrently.
type Registry struct {
	families []*family
	byName   map[string]*family
}

// family is every sample sharing one metric name: one # HELP/# TYPE header,
// then the samples in registration order.
type family struct {
	name, help, typ string
	samples         []sampler
}

// sampler renders one sample's line(s).
type sampler interface {
	write(w io.Writer, name string)
	labelKey() string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Counter is a monotonically increasing integer.
type Counter struct {
	labels []Label
	v      atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) write(w io.Writer, name string) {
	fmt.Fprintf(w, "%s%s %d\n", name, renderLabels(c.labels), c.v.Load())
}

func (c *Counter) labelKey() string { return renderLabels(c.labels) }

// counterFunc reads an externally maintained monotone count at scrape time.
type counterFunc struct {
	labels []Label
	fn     func() uint64
}

func (c *counterFunc) write(w io.Writer, name string) {
	fmt.Fprintf(w, "%s%s %d\n", name, renderLabels(c.labels), c.fn())
}

func (c *counterFunc) labelKey() string { return renderLabels(c.labels) }

// Gauge is a float that can go up and down.
type Gauge struct {
	labels []Label
	bits   atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w io.Writer, name string) {
	fmt.Fprintf(w, "%s%s %s\n", name, renderLabels(g.labels), formatValue(g.Value()))
}

func (g *Gauge) labelKey() string { return renderLabels(g.labels) }

// gaugeFunc reads an externally maintained value at scrape time.
type gaugeFunc struct {
	labels []Label
	fn     func() float64
}

func (g *gaugeFunc) write(w io.Writer, name string) {
	fmt.Fprintf(w, "%s%s %s\n", name, renderLabels(g.labels), formatValue(g.fn()))
}

func (g *gaugeFunc) labelKey() string { return renderLabels(g.labels) }

// Histogram counts observations into cumulative buckets, Prometheus-style:
// one `_bucket{le="..."}` line per bound plus `le="+Inf"`, and `_sum` /
// `_count` lines. Buckets are fixed at registration.
type Histogram struct {
	labels  []Label
	bounds  []float64 // strictly increasing upper bounds, +Inf implicit
	mu      sync.Mutex
	counts  []uint64 // per-bound, non-cumulative; cumulated on render
	infed   uint64   // observations above every bound
	sum     float64
	samples uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.samples++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.infed++
}

// Count returns how many observations have been recorded.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.samples
}

func (h *Histogram) write(w io.Writer, name string) {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	infed, sum, samples := h.infed, h.sum, h.samples
	h.mu.Unlock()
	// Build the le-extended label set fresh — appending to h.labels could
	// share a backing array across concurrent scrapes.
	withLE := func(le string) []Label {
		ls := make([]Label, len(h.labels)+1)
		copy(ls, h.labels)
		ls[len(ls)-1] = Label{"le", le}
		return ls
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(withLE(formatValue(b))), cum)
	}
	cum += infed
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(withLE("+Inf")), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(h.labels), formatValue(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(h.labels), samples)
}

func (h *Histogram) labelKey() string { return renderLabels(h.labels) }

// Counter registers and returns an owned counter. Repeat registrations of
// one name must agree on help text and type and differ in label sets;
// violations panic — instrument registration is code, not input.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{labels: labels}
	r.register(name, help, "counter", c)
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time. fn must be safe to call concurrently and monotone non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.register(name, help, "counter", &counterFunc{labels: labels, fn: fn})
}

// Gauge registers and returns an owned gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{labels: labels}
	r.register(name, help, "gauge", g)
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, "gauge", &gaugeFunc{labels: labels, fn: fn})
}

// Histogram registers and returns a histogram with the given bucket upper
// bounds (strictly increasing; +Inf is implicit and must not be listed).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram " + name + " needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic("obs: histogram " + name + " bounds must be strictly increasing")
		}
	}
	if math.IsInf(bounds[len(bounds)-1], 1) {
		panic("obs: histogram " + name + ": +Inf bound is implicit")
	}
	h := &Histogram{labels: labels, bounds: bounds, counts: make([]uint64, len(bounds))}
	r.register(name, help, "histogram", h)
	return h
}

func (r *Registry) register(name, help, typ string, s sampler) {
	if !validMetricName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	fam, ok := r.byName[name]
	if !ok {
		fam = &family{name: name, help: help, typ: typ}
		r.byName[name] = fam
		r.families = append(r.families, fam)
	} else if fam.typ != typ || fam.help != help {
		panic("obs: metric " + name + " re-registered with a different type or help")
	}
	key := s.labelKey()
	for _, prev := range fam.samples {
		if prev.labelKey() == key {
			panic("obs: metric " + name + key + " registered twice")
		}
	}
	fam.samples = append(fam.samples, s)
}

// Render writes the whole registry in the Prometheus text format, in
// deterministic (registration) order.
func (r *Registry) Render(w io.Writer) {
	for _, fam := range r.families {
		fmt.Fprintf(w, "# HELP %s %s\n", fam.name, escapeHelp(fam.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", fam.name, fam.typ)
		for _, s := range fam.samples {
			s.write(w, fam.name)
		}
	}
}

// Handler returns the `GET /metrics` endpoint: the registry rendered with
// the standard text-format content type.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.Render(w)
	})
}

// formatValue renders a float the way Prometheus expects: shortest exact
// decimal, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabels renders a label set as {a="x",b="y"}, empty string for none.
// Label order is the registration order — part of the deterministic layout.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if !validLabelName(l.Name) {
			panic("obs: invalid label name " + strconv.Quote(l.Name))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(h string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" || strings.HasPrefix(name, "__") {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// sortedNames returns the registered family names, sorted — handy for
// required-series assertions in tests.
func (r *Registry) sortedNames() []string {
	names := make([]string, 0, len(r.families))
	for _, f := range r.families {
		names = append(names, f.name)
	}
	sort.Strings(names)
	return names
}

// Names returns every registered metric family name, sorted.
func (r *Registry) Names() []string { return r.sortedNames() }
