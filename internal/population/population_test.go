package population

import (
	"math"
	"testing"

	"lotuseater/internal/simrng"
)

func TestValidateSchedule(t *testing.T) {
	good := []Event{{Round: 0, Node: 1, Join: false}, {Round: 0, Node: 2, Join: false}, {Round: 3, Node: 1, Join: true}}
	if err := ValidateSchedule(good, 4); err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name   string
		events []Event
	}{
		{"negative-round", []Event{{Round: -1, Node: 0}}},
		{"unsorted", []Event{{Round: 5, Node: 0}, {Round: 2, Node: 0}}},
		{"node-too-big", []Event{{Round: 0, Node: 4}}},
		{"negative-node", []Event{{Round: 0, Node: -1}}},
	}
	for _, c := range bad {
		if err := ValidateSchedule(c.events, 4); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestSynthesizeDeterministic: same rates, same stream label, same
// schedule — and a fresh stream replays it identically.
func TestSynthesizeDeterministic(t *testing.T) {
	r := Rates{LeaveRate: 0.05, JoinRate: 0.2}
	a := Synthesize(r, 50, 100, 2, simrng.New(9).Child("churn"))
	b := Synthesize(r, 50, 100, 2, simrng.New(9).Child("churn"))
	if len(a) == 0 {
		t.Fatal("no events synthesized at these rates")
	}
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if err := ValidateSchedule(a, 50); err != nil {
		t.Fatalf("synthesized schedule invalid: %v", err)
	}
}

// TestSynthesizeMinPresent: the floor holds — replaying any prefix of the
// schedule never leaves fewer than minPresent nodes present.
func TestSynthesizeMinPresent(t *testing.T) {
	const n, minPresent = 20, 5
	events := Synthesize(Rates{LeaveRate: 0.5}, n, 50, minPresent, simrng.New(3).Child("churn"))
	present := n
	for _, ev := range events {
		if ev.Join {
			present++
		} else {
			present--
		}
		if present < minPresent {
			t.Fatalf("schedule drains below minPresent: %d < %d at round %d", present, minPresent, ev.Round)
		}
	}
}

func TestSynthesizeDegenerate(t *testing.T) {
	rng := simrng.New(1)
	if ev := Synthesize(Rates{}, 10, 100, 1, rng.Child("a")); ev != nil {
		t.Fatalf("zero rates synthesized %d events", len(ev))
	}
	if ev := Synthesize(Rates{LeaveRate: 0.5}, 0, 100, 1, rng.Child("b")); ev != nil {
		t.Fatal("empty universe synthesized events")
	}
}

func TestCursor(t *testing.T) {
	events := []Event{{Round: 1, Node: 0}, {Round: 1, Node: 1, Join: true}, {Round: 4, Node: 2}}
	c := NewCursor(events)
	if c.JoinsAhead() != 1 {
		t.Fatalf("JoinsAhead = %d, want 1", c.JoinsAhead())
	}
	if _, ok := c.Next(0); ok {
		t.Fatal("round 0 should have no events")
	}
	got := 0
	for _, ok := c.Next(1); ok; _, ok = c.Next(1) {
		got++
	}
	if got != 2 {
		t.Fatalf("round 1 drained %d events, want 2", got)
	}
	if c.JoinsAhead() != 0 {
		t.Fatalf("JoinsAhead after drain = %d, want 0", c.JoinsAhead())
	}
	// A zero-value cursor is the static run: nothing due, no joins ahead.
	var zero Cursor
	if _, ok := zero.Next(99); ok || zero.JoinsAhead() != 0 {
		t.Fatal("zero-value cursor is not inert")
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(8, 1.0)
	sum := 0.0
	for i, x := range w {
		sum += x
		if i > 0 && x >= w[i-1] {
			t.Fatalf("zipf weights not decreasing at %d: %g >= %g", i, x, w[i-1])
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("zipf weights sum to %g", sum)
	}
	for _, bad := range []struct {
		k int
		s float64
	}{{0, 1}, {-3, 1}, {8, 0}, {8, -1}, {8, math.NaN()}, {8, math.Inf(1)}} {
		if ZipfWeights(bad.k, bad.s) != nil {
			t.Fatalf("ZipfWeights(%d, %g) should be nil", bad.k, bad.s)
		}
	}
}

func TestNormalizeAndUniform(t *testing.T) {
	if got := Normalize([]float64{2, 6}); got[0] != 0.25 || got[1] != 0.75 {
		t.Fatalf("Normalize = %v", got)
	}
	for _, bad := range [][]float64{{0, 0}, {-1, 2}, {math.NaN()}, {math.Inf(1)}, {}} {
		if Normalize(bad) != nil {
			t.Fatalf("Normalize(%v) should be nil", bad)
		}
	}
	if !Uniform([]float64{0.25, 0.25, 0.25, 0.25}, 1e-9) {
		t.Fatal("uniform vector not recognized")
	}
	if Uniform([]float64{0.5, 0.25, 0.25}, 1e-9) {
		t.Fatal("skewed vector called uniform")
	}
}

// TestWeightedIndexDistribution: the single-draw sampler tracks its
// weight vector — a 90/10 split lands near 90/10 over many draws — and
// Assign is deterministic per stream.
func TestWeightedIndexDistribution(t *testing.T) {
	rng := simrng.New(11).Child("w")
	counts := [2]int{}
	const draws = 10000
	for i := 0; i < draws; i++ {
		counts[WeightedIndex(rng, []float64{0.9, 0.1})]++
	}
	if frac := float64(counts[0]) / draws; frac < 0.88 || frac > 0.92 {
		t.Fatalf("index 0 drawn %.3f of the time, want ~0.9", frac)
	}

	a := Assign(64, []float64{0.3, 0.7}, simrng.New(5).Child("classes"))
	b := Assign(64, []float64{0.3, 0.7}, simrng.New(5).Child("classes"))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Assign not deterministic at node %d", i)
		}
	}
}

func TestSortScheduleStable(t *testing.T) {
	events := []Event{
		{Round: 3, Node: 9},
		{Round: 0, Node: 1},
		{Round: 0, Node: 2},
		{Round: 3, Node: 4, Join: true},
	}
	SortSchedule(events)
	if err := ValidateSchedule(events, 10); err != nil {
		t.Fatal(err)
	}
	// Same-round order is preserved: 1 before 2, 9 before 4.
	if events[0].Node != 1 || events[1].Node != 2 || events[2].Node != 9 || events[3].Node != 4 {
		t.Fatalf("stable order violated: %+v", events)
	}
}
