// Package population holds the substrate-independent pieces of the
// scenario population model: deterministic lifecycle (join/leave)
// schedules, Zipf/weighted popularity vectors, and the single-draw
// weighted sampling primitive the engines share.
//
// The package sits below the engines (gossip, swarm, tokenmodel, scrip,
// coding) and above nothing: it imports only the stdlib and simrng, so
// every substrate can consume a compiled schedule without pulling in the
// scenario layer. The scenario package compiles a validated `population`
// spec block into these concrete values once per replicate, from labeled
// children of the replicate RNG — engines only replay them.
//
// Determinism contract: a schedule is a plain sorted slice; replaying it
// draws nothing. Synthesizing one from rates consumes draws from the
// Source passed to Synthesize and nothing else, so a spec without churn
// (nil schedule) leaves every engine stream bit-identical to a build
// that never heard of this package.
package population

import (
	"fmt"
	"math"
	"sort"

	"lotuseater/internal/simrng"
)

// Event is one lifecycle transition: at the top of round Round, node
// Node either joins (arrives, or re-arrives on a previously vacated
// index) or leaves. Events are applied before any exchange in the
// round, in slice order; schedules must be sorted by Round
// (non-decreasing). A leave for an absent node and a join for a present
// node are no-ops, so traces recorded against a different initial state
// replay without error.
type Event struct {
	Round int
	Node  int
	Join  bool
}

// ValidateSchedule checks a schedule against a node universe of size n:
// rounds non-negative and non-decreasing, nodes in [0, n). It returns a
// deterministic error naming the first offending event.
func ValidateSchedule(events []Event, n int) error {
	prev := 0
	for i, ev := range events {
		if ev.Round < 0 {
			return fmt.Errorf("population: event %d: negative round %d", i, ev.Round)
		}
		if ev.Round < prev {
			return fmt.Errorf("population: event %d: round %d before round %d (schedule must be sorted)", i, ev.Round, prev)
		}
		prev = ev.Round
		if ev.Node < 0 || ev.Node >= n {
			return fmt.Errorf("population: event %d: node %d outside [0,%d)", i, ev.Node, n)
		}
	}
	return nil
}

// Rates is a rate-driven churn process: each round from Start on, an
// expected LeaveRate fraction of present nodes departs and an expected
// JoinRate fraction of absent nodes returns. Both are fractional-
// accumulator processes (the fraction carries over between rounds), so
// small rates still produce events instead of rounding to zero forever.
type Rates struct {
	LeaveRate float64
	JoinRate  float64
	Start     int
}

// Synthesize expands a rate process into a concrete event schedule for
// one replicate: n nodes, horizon rounds, randomness from rng (which
// the caller should derive as a dedicated child so churn synthesis
// cannot perturb any engine stream). All nodes start present; at least
// minPresent nodes (clamped to [1, n]) are kept present at all times so
// the exchange machinery never runs out of counterparties. The result
// is sorted by round and ready for an engine's Cursor.
func Synthesize(r Rates, n, rounds, minPresent int, rng *simrng.Source) []Event {
	if n <= 0 || (r.LeaveRate <= 0 && r.JoinRate <= 0) {
		return nil
	}
	if minPresent < 1 {
		minPresent = 1
	}
	if minPresent > n {
		minPresent = n
	}
	present := make([]int, n)
	for i := range present {
		present[i] = i
	}
	absent := make([]int, 0, n)
	var out []Event
	var leaveAcc, joinAcc float64
	start := r.Start
	if start < 0 {
		start = 0
	}
	for round := start; round < rounds; round++ {
		leaveAcc += r.LeaveRate * float64(len(present))
		for leaveAcc >= 1 && len(present) > minPresent {
			leaveAcc--
			i := rng.IntN(len(present))
			v := present[i]
			present[i] = present[len(present)-1]
			present = present[:len(present)-1]
			absent = append(absent, v)
			out = append(out, Event{Round: round, Node: v, Join: false})
		}
		joinAcc += r.JoinRate * float64(len(absent))
		for joinAcc >= 1 && len(absent) > 0 {
			joinAcc--
			i := rng.IntN(len(absent))
			v := absent[i]
			absent[i] = absent[len(absent)-1]
			absent = absent[:len(absent)-1]
			out = append(out, Event{Round: round, Node: v, Join: true})
		}
	}
	return out
}

// Cursor walks a round-sorted schedule without allocating. Engines keep
// one by value and drain it at the top of each Step:
//
//	for ev, ok := c.Next(round); ok; ev, ok = c.Next(round) { ... }
type Cursor struct {
	events []Event
	next   int
}

// NewCursor returns a cursor over events (which must already be sorted
// by round; see ValidateSchedule).
func NewCursor(events []Event) Cursor {
	return Cursor{events: events}
}

// Next pops the next event due at or before round, if any.
func (c *Cursor) Next(round int) (Event, bool) {
	if c.next < len(c.events) && c.events[c.next].Round <= round {
		ev := c.events[c.next]
		c.next++
		return ev, true
	}
	return Event{}, false
}

// Events returns the cursor's full schedule, consumed or not — engines
// use it to validate the schedule against their node universe at build.
func (c *Cursor) Events() []Event { return c.events }

// JoinsAhead counts the join events not yet consumed — the swarm uses
// it to keep a drained torrent alive when future arrivals are due.
func (c *Cursor) JoinsAhead() int {
	joins := 0
	for _, ev := range c.events[c.next:] {
		if ev.Join {
			joins++
		}
	}
	return joins
}

// ZipfWeights returns k weights w_i ∝ (i+1)^-s normalized to sum 1:
// rank 0 is the most popular item. s must be > 0 and k > 0 (validated
// upstream); out-of-contract inputs return nil.
func ZipfWeights(k int, s float64) []float64 {
	if k <= 0 || s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil
	}
	w := make([]float64, k)
	sum := 0.0
	for i := range w {
		w[i] = math.Pow(float64(i+1), -s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// Normalize returns a copy of w scaled to sum 1, or nil if the sum is
// not positive and finite.
func Normalize(w []float64) []float64 {
	sum := 0.0
	for _, x := range w {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return nil
		}
		sum += x
	}
	if sum <= 0 || math.IsInf(sum, 0) {
		return nil
	}
	out := make([]float64, len(w))
	for i, x := range w {
		out[i] = x / sum
	}
	return out
}

// Uniform reports whether w is (numerically) a uniform vector — every
// entry within eps of the mean. Canonicalization folds uniform
// popularity to "no popularity", which is what keeps the degenerate
// spec hashing (and replaying) identically to one with no block at all.
func Uniform(w []float64, eps float64) bool {
	if len(w) == 0 {
		return true
	}
	mean := 0.0
	for _, x := range w {
		mean += x
	}
	mean /= float64(len(w))
	for _, x := range w {
		if math.Abs(x-mean) > eps {
			return false
		}
	}
	return true
}

// WeightedIndex picks an index with probability weights[i]/Σweights
// using exactly one Float64 draw. Weights must be non-negative with a
// positive sum (the compiled vectors are normalized); a degenerate
// vector falls back to the last index deterministically.
func WeightedIndex(rng *simrng.Source, weights []float64) int {
	x := rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if x < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Assign draws a class index per node from the class weight vector,
// one Float64 draw per node, in node order. The scenario layer calls it
// only when two or more classes survive canonicalization, so a
// single-class (or class-free) spec draws nothing.
func Assign(n int, weights []float64, rng *simrng.Source) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = WeightedIndex(rng, weights)
	}
	return out
}

// SortSchedule sorts events by round, keeping the relative order of
// same-round events stable (trace files may group a round's departures
// and arrivals intentionally).
func SortSchedule(events []Event) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].Round < events[j].Round })
}
