// Package graph provides the communication-graph substrate for the
// token-collecting model of Section 3 of the paper.
//
// A system in the paper's model is characterized in part by an undirected
// graph G = (V, E) whose nodes are users and whose edges are the pairs of
// nodes that can potentially communicate. The package offers generators for
// the topologies the paper discusses (complete graphs for gossip-style
// systems, grids for sensor networks, Erdős–Rényi random graphs,
// rings and small-world rewirings) and the structural queries an attacker or
// analyst needs (connectivity, components, cuts, BFS distance).
package graph

import (
	"fmt"
	"sort"

	"lotuseater/internal/simrng"
)

// Graph is an undirected graph on nodes 0..N-1 stored as adjacency lists.
// Adjacency lists are kept sorted and deduplicated by the constructors.
type Graph struct {
	n   int
	adj [][]int
}

// New returns an empty graph on n nodes. It panics if n < 0.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{n: n, adj: make([][]int, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int {
	total := 0
	for _, nb := range g.adj {
		total += len(nb)
	}
	return total / 2
}

// AddEdge inserts the undirected edge (u, v). Self-loops and duplicate edges
// are ignored. It returns an error if either endpoint is out of range.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v || g.HasEdge(u, v) {
		return nil
	}
	g.adj[u] = insertSorted(g.adj[u], v)
	g.adj[v] = insertSorted(g.adj[v], u)
	return nil
}

func insertSorted(s []int, v int) []int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s = append(s, 0)
	copy(s[lo+1:], s[lo:])
	s[lo] = v
	return s
}

// HasEdge reports whether the undirected edge (u, v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	nb := g.adj[u]
	lo, hi := 0, len(nb)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case nb[mid] < v:
			lo = mid + 1
		case nb[mid] > v:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// AdjList returns u's neighbor list without copying; out-of-range u reads
// as empty. The slice aliases the graph's internal storage and must be
// treated as read-only — it exists for simulator hot loops, where the
// defensive copy Neighbors makes per call dominates the round.
func (g *Graph) AdjList(u int) []int {
	if u < 0 || u >= g.n {
		return nil
	}
	return g.adj[u]
}

// Neighbors returns the sorted neighbor list of u. The returned slice is a
// copy; callers may mutate it freely.
func (g *Graph) Neighbors(u int) []int {
	if u < 0 || u >= g.n {
		return nil
	}
	out := make([]int, len(g.adj[u]))
	copy(out, g.adj[u])
	return out
}

// Degree returns the degree of u, or 0 for out-of-range u.
func (g *Graph) Degree(u int) int {
	if u < 0 || u >= g.n {
		return 0
	}
	return len(g.adj[u])
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			// AddEdge cannot fail for in-range endpoints.
			_ = g.AddEdge(u, v)
		}
	}
	return g
}

// Grid returns a rows x cols 4-connected grid. Node (r, c) has index
// r*cols + c.
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			u := r*cols + c
			if c+1 < cols {
				_ = g.AddEdge(u, u+1)
			}
			if r+1 < rows {
				_ = g.AddEdge(u, u+cols)
			}
		}
	}
	return g
}

// Ring returns the cycle C_n (for n >= 3); for n < 3 it returns a path.
func Ring(n int) *Graph {
	g := New(n)
	for u := 0; u+1 < n; u++ {
		_ = g.AddEdge(u, u+1)
	}
	if n >= 3 {
		_ = g.AddEdge(n-1, 0)
	}
	return g
}

// Random returns an Erdős–Rényi G(n, p) graph drawn from rng.
func Random(n int, p float64, rng *simrng.Source) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Bool(p) {
				_ = g.AddEdge(u, v)
			}
		}
	}
	return g
}

// SmallWorld returns a Watts–Strogatz small-world graph: a ring lattice where
// each node connects to its k nearest neighbors on each side, with each edge
// rewired to a uniform endpoint with probability beta.
func SmallWorld(n, k int, beta float64, rng *simrng.Source) *Graph {
	g := New(n)
	if n < 2 {
		return g
	}
	for u := 0; u < n; u++ {
		for d := 1; d <= k; d++ {
			v := (u + d) % n
			if rng.Bool(beta) && n > 2 {
				w := rng.PickOther(n, u)
				_ = g.AddEdge(u, w)
			} else {
				_ = g.AddEdge(u, v)
			}
		}
	}
	return g
}

// RandomRegularish returns a graph where each node receives deg random
// distinct neighbors (the realized degree may exceed deg because edges are
// undirected). It approximates a random regular graph cheaply and is
// connected with high probability for deg >= 3.
//
// The sampled edge sequence depends only on the RNG, never on the adjacency
// built so far, so the constructor draws the whole edge multiset first and
// bulk-builds the sorted, deduplicated adjacency lists afterwards — the
// identical graph the historical per-edge sorted inserts produced, without
// their O(degree) memmove and binary search per edge, which dominated
// million-node construction.
func RandomRegularish(n, deg int, rng *simrng.Source) *Graph {
	g := New(n)
	if n < 2 {
		return g
	}
	if deg > n-1 {
		deg = n - 1
	}
	us := make([]int32, 0, n*deg)
	vs := make([]int32, 0, n*deg)
	degCnt := make([]int32, n)
	for u := 0; u < n; u++ {
		for _, v := range rng.SampleInts(n-1, deg) {
			if v >= u {
				v++
			}
			us = append(us, int32(u))
			vs = append(vs, int32(v))
			degCnt[u]++
			degCnt[v]++
		}
	}
	// Bucket both endpoints of every sampled edge, then sort and dedup each
	// node's bucket. Self-loops cannot occur by construction; duplicates
	// (the same pair sampled from both sides) collapse in the dedup.
	off := make([]int, n+1)
	for u := 0; u < n; u++ {
		off[u+1] = off[u] + int(degCnt[u])
	}
	buf := make([]int, off[n])
	pos := make([]int, n)
	copy(pos, off[:n])
	for i := range us {
		u, v := int(us[i]), int(vs[i])
		buf[pos[u]] = v
		pos[u]++
		buf[pos[v]] = u
		pos[v]++
	}
	for u := 0; u < n; u++ {
		seg := buf[off[u]:off[u+1]]
		sort.Ints(seg)
		uniq := 0
		for i, v := range seg {
			if i > 0 && v == seg[i-1] {
				continue
			}
			seg[uniq] = v
			uniq++
		}
		adj := make([]int, uniq)
		copy(adj, seg[:uniq])
		g.adj[u] = adj
	}
	return g
}

// BFS returns the hop distance from src to every node; unreachable nodes get
// distance -1.
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.n {
		return dist
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Connected reports whether the graph is connected. The empty graph and the
// single-node graph are connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d == -1 {
			return false
		}
	}
	return true
}

// Components returns the connected components as slices of node indices,
// each sorted ascending, ordered by smallest member.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		comps = append(comps, sortedCopy(comp))
	}
	return comps
}

func sortedCopy(s []int) []int {
	out := make([]int, len(s))
	copy(out, s)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// RemoveNodes returns a copy of g with the given nodes' edges removed (the
// nodes remain as isolated vertices, matching the paper's satiated nodes
// which stay in the system but stop exchanging).
func (g *Graph) RemoveNodes(nodes []int) *Graph {
	gone := make(map[int]bool, len(nodes))
	for _, v := range nodes {
		gone[v] = true
	}
	out := New(g.n)
	for u := 0; u < g.n; u++ {
		if gone[u] {
			continue
		}
		for _, v := range g.adj[u] {
			if v > u && !gone[v] {
				_ = out.AddEdge(u, v)
			}
		}
	}
	return out
}

// IsCut reports whether removing the given nodes disconnects the remaining
// graph (i.e. leaves at least two nonempty components among survivors).
func (g *Graph) IsCut(nodes []int) bool {
	h := g.RemoveNodes(nodes)
	gone := make(map[int]bool, len(nodes))
	for _, v := range nodes {
		gone[v] = true
	}
	survivors := 0
	first := -1
	for u := 0; u < g.n; u++ {
		if !gone[u] {
			survivors++
			if first == -1 {
				first = u
			}
		}
	}
	if survivors <= 1 {
		return false
	}
	dist := h.BFS(first)
	reached := 0
	for u := 0; u < g.n; u++ {
		if !gone[u] && dist[u] >= 0 {
			reached++
		}
	}
	return reached < survivors
}

// GridColumnCut returns the node indices of column col in a rows x cols grid
// built by Grid. Satiating (or removing) a full column partitions the grid —
// the paper's canonical cheap cut on structured topologies.
func GridColumnCut(rows, cols, col int) []int {
	out := make([]int, 0, rows)
	for r := 0; r < rows; r++ {
		out = append(out, r*cols+col)
	}
	return out
}
