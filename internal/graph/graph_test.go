package graph

import (
	"testing"
	"testing/quick"

	"lotuseater/internal/simrng"
)

func TestNewAndAddEdge(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("N=%d M=%d, want 5, 0", g.N(), g.M())
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0); err != nil {
		t.Fatal(err) // duplicate, ignored
	}
	if err := g.AddEdge(2, 2); err != nil {
		t.Fatal(err) // self-loop, ignored
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge (0,1) missing in one direction")
	}
	if g.HasEdge(2, 2) {
		t.Fatal("self-loop present")
	}
}

func TestAddEdgeOutOfRange(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 3); err == nil {
		t.Fatal("AddEdge(0,3) on 3-node graph did not error")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Fatal("AddEdge(-1,0) did not error")
	}
}

func TestNeighborsSortedAndCopied(t *testing.T) {
	g := New(6)
	for _, v := range []int{5, 2, 4, 1} {
		if err := g.AddEdge(3, v); err != nil {
			t.Fatal(err)
		}
	}
	nb := g.Neighbors(3)
	want := []int{1, 2, 4, 5}
	if len(nb) != len(want) {
		t.Fatalf("Neighbors = %v", nb)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors = %v, want sorted %v", nb, want)
		}
	}
	nb[0] = 99 // must not corrupt the graph
	if g.Neighbors(3)[0] != 1 {
		t.Fatal("Neighbors returned a live reference")
	}
	if g.Neighbors(-1) != nil || g.Neighbors(6) != nil {
		t.Fatal("out-of-range Neighbors not nil")
	}
}

func TestComplete(t *testing.T) {
	g := Complete(6)
	if g.M() != 15 {
		t.Fatalf("K6 has %d edges, want 15", g.M())
	}
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 5 {
			t.Fatalf("node %d degree %d, want 5", v, g.Degree(v))
		}
	}
	if !g.Connected() {
		t.Fatal("K6 not connected")
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("N = %d", g.N())
	}
	// Edges: horizontal 3*3 + vertical 2*4 = 17.
	if g.M() != 17 {
		t.Fatalf("M = %d, want 17", g.M())
	}
	if !g.Connected() {
		t.Fatal("grid not connected")
	}
	// Corner degree 2, middle degree 4.
	if g.Degree(0) != 2 {
		t.Fatalf("corner degree %d", g.Degree(0))
	}
	if g.Degree(1*4+1) != 4 {
		t.Fatalf("interior degree %d", g.Degree(5))
	}
}

func TestRing(t *testing.T) {
	g := Ring(5)
	if g.M() != 5 {
		t.Fatalf("C5 has %d edges", g.M())
	}
	for v := 0; v < 5; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("ring degree %d at %d", g.Degree(v), v)
		}
	}
	if Ring(2).M() != 1 {
		t.Fatal("Ring(2) should be a single edge")
	}
}

func TestRandomEdgeProbability(t *testing.T) {
	rng := simrng.New(1)
	g := Random(100, 0.1, rng)
	maxEdges := 100 * 99 / 2
	frac := float64(g.M()) / float64(maxEdges)
	if frac < 0.07 || frac > 0.13 {
		t.Fatalf("G(100, 0.1) realized edge fraction %g", frac)
	}
}

func TestRandomExtremes(t *testing.T) {
	rng := simrng.New(1)
	if g := Random(20, 0, rng); g.M() != 0 {
		t.Fatalf("G(20,0) has %d edges", g.M())
	}
	if g := Random(20, 1, rng); g.M() != 190 {
		t.Fatalf("G(20,1) has %d edges, want 190", g.M())
	}
}

func TestSmallWorldDegree(t *testing.T) {
	rng := simrng.New(2)
	g := SmallWorld(50, 2, 0, rng)
	// beta = 0: pure ring lattice, degree exactly 2k.
	for v := 0; v < 50; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("lattice degree %d at %d, want 4", g.Degree(v), v)
		}
	}
	rewired := SmallWorld(50, 2, 0.5, rng)
	if rewired.M() == 0 {
		t.Fatal("rewired small world empty")
	}
}

func TestRandomRegularishConnected(t *testing.T) {
	rng := simrng.New(3)
	g := RandomRegularish(200, 4, rng)
	if !g.Connected() {
		t.Fatal("RandomRegularish(200, 4) disconnected")
	}
	for v := 0; v < 200; v++ {
		if g.Degree(v) < 4 {
			t.Fatalf("node %d degree %d < requested 4", v, g.Degree(v))
		}
	}
}

func TestRandomRegularishDegreeClamp(t *testing.T) {
	rng := simrng.New(3)
	g := RandomRegularish(4, 10, rng)
	if g.M() != 6 {
		t.Fatalf("deg clamp failed: M = %d, want complete graph 6", g.M())
	}
}

func TestBFS(t *testing.T) {
	g := Grid(1, 5) // path 0-1-2-3-4
	dist := g.BFS(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
	if d := New(3).BFS(0); d[1] != -1 || d[2] != -1 {
		t.Fatal("unreachable nodes should get -1")
	}
	if d := New(3).BFS(-1); d[0] != -1 {
		t.Fatal("out-of-range src should mark all unreachable")
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(4, 5)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3 (%v)", len(comps), comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Fatalf("first component %v", comps[0])
	}
	if len(comps[1]) != 1 || comps[1][0] != 3 {
		t.Fatalf("singleton component %v", comps[1])
	}
}

func TestConnectedTrivial(t *testing.T) {
	if !New(0).Connected() || !New(1).Connected() {
		t.Fatal("empty/singleton graphs should be connected")
	}
	if New(2).Connected() {
		t.Fatal("two isolated nodes reported connected")
	}
}

func TestRemoveNodes(t *testing.T) {
	g := Grid(1, 5)
	h := g.RemoveNodes([]int{2})
	if h.N() != 5 {
		t.Fatal("RemoveNodes changed node count")
	}
	if h.HasEdge(1, 2) || h.HasEdge(2, 3) {
		t.Fatal("edges to removed node survive")
	}
	if !h.HasEdge(0, 1) || !h.HasEdge(3, 4) {
		t.Fatal("unrelated edges lost")
	}
	if g.HasEdge(1, 2) == false {
		t.Fatal("RemoveNodes mutated the original")
	}
}

func TestIsCut(t *testing.T) {
	g := Grid(1, 5)
	if !g.IsCut([]int{2}) {
		t.Fatal("middle of a path is a cut")
	}
	if g.IsCut([]int{0}) {
		t.Fatal("endpoint of a path is not a cut")
	}
	if g.IsCut([]int{0, 1, 2, 3}) {
		t.Fatal("one survivor cannot be disconnected")
	}
}

func TestGridColumnCutIsCut(t *testing.T) {
	g := Grid(8, 8)
	cut := GridColumnCut(8, 8, 4)
	if len(cut) != 8 {
		t.Fatalf("cut has %d nodes", len(cut))
	}
	if !g.IsCut(cut) {
		t.Fatal("full column does not cut the grid")
	}
	partial := cut[:7]
	if g.IsCut(partial) {
		t.Fatal("partial column should not cut the grid")
	}
}

// TestDegreeSumEqualsTwiceEdges is the handshake lemma on random graphs.
func TestDegreeSumEqualsTwiceEdges(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw, pRaw uint8) bool {
		n := int(nRaw%40) + 2
		p := float64(pRaw) / 255
		g := Random(n, p, simrng.New(seed))
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBFSTriangleInequality: BFS distances never skip by more than 1 along
// an edge.
func TestBFSTriangleInequality(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		g := Random(30, 0.15, simrng.New(seed))
		dist := g.BFS(0)
		for u := 0; u < 30; u++ {
			if dist[u] < 0 {
				continue
			}
			for _, v := range g.Neighbors(u) {
				if dist[v] < 0 || dist[v] > dist[u]+1 || dist[u] > dist[v]+1 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

// TestComponentsPartition: components partition the vertex set.
func TestComponentsPartition(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		g := Random(25, 0.05, simrng.New(seed))
		seen := make(map[int]bool)
		for _, comp := range g.Components() {
			for _, v := range comp {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		return len(seen) == 25
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}
