package sim

import (
	"fmt"

	"lotuseater/internal/simrng"
)

// Build constructs a fresh model for one replicate. rep is the replicate
// index, rng is the replicate's private random stream (derived from the run
// seed and rep only), and ws is the executing worker's scratch arena —
// models that accept a workspace can draw their internal buffers from it
// and stay allocation-free across replicates.
type Build func(rep int, rng *simrng.Source, ws *Workspace) (Model, error)

// Runner executes replicated simulations on the shared worker pool.
type Runner struct {
	// Workers bounds this runner's in-flight tasks on the shared pool.
	// Zero means the full pool width. Results never depend on it.
	Workers int
	// Progress, when non-nil, is called by Fold after each replicate clears
	// the fold stage — folded, or skipped by a build/drive/fold error — with
	// the count completed so far and the total for the call. Calls come from
	// Fold's single folder goroutine in strict replicate order (done is
	// 1, 2, ..., total), so implementations need no locking against each
	// other; they do need to be safe against the caller's own goroutine if
	// state is shared. Long-running experiment drivers surface these as
	// status updates. Results never depend on it.
	Progress func(done, total int)
}

// Replicates builds and drives n independently seeded models and returns
// their snapshots in replicate order. Replicate r always sees the stream
// derived with ChildN("replicate", r) from seed, so the result is identical
// for any worker count. The first error (by replicate order) is returned.
func (r Runner) Replicates(seed uint64, n int, build Build) ([]any, error) {
	root := simrng.New(seed)
	out := make([]any, n)
	errs := make([]error, n)
	Go(n, r.Workers, func(rep int, ws *Workspace) {
		rng := root.ChildN("replicate", rep)
		m, err := build(rep, rng, ws)
		if err != nil {
			errs[rep] = fmt.Errorf("replicate %d: %w", rep, err)
			return
		}
		snap, err := Drive(m)
		if err != nil {
			errs[rep] = fmt.Errorf("replicate %d: %w", rep, err)
			return
		}
		out[rep] = snap
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
