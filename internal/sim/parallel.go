package sim

// DefaultGrain is the per-shard work size ParallelFor uses when the caller
// passes grain <= 0. It is tuned so that per-node work of a few dozen
// nanoseconds amortizes the fan-out cost; smaller populations run inline.
const DefaultGrain = 4096

// ParallelFor shards the index range [0, n) into fixed, contiguous chunks of
// `grain` indices (grain <= 0 means DefaultGrain) and runs fn(shard, start,
// end) for each chunk on the shared worker pool, returning when all chunks
// are done. When the range fits in a single chunk the call runs inline with
// no fan-out at all.
//
// Determinism rules — this is the in-replicate parallelism primitive, so the
// guarantees are strict:
//
//   - Shard boundaries depend only on (n, grain), never on worker count or
//     scheduling, so the shard an index lands in is reproducible.
//   - fn must write only to shard-private state (disjoint output regions
//     indexed by [start, end), or a per-shard accumulator slot) and may read
//     shared state only if no shard writes it.
//   - Any randomness inside fn must come from a per-shard child stream
//     (rng.ChildN(label, shard)), never from a stream shared across shards.
//   - Cross-shard reductions must merge per-shard results in shard order
//     after ParallelFor returns.
//
// Under those rules results are bit-identical to the sequential loop for any
// worker count — the property the workers-1-vs-8 parity tests pin down.
// Nested use (a model Step running inside a pool task) is safe: the shared
// pool drains nested fan-out inline when saturated.
func ParallelFor(n, grain int, fn func(shard, start, end int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	shards := (n + grain - 1) / grain
	if shards <= 1 {
		fn(0, 0, n)
		return
	}
	Go(shards, 0, func(shard int, _ *Workspace) {
		start := shard * grain
		end := start + grain
		if end > n {
			end = n
		}
		fn(shard, start, end)
	})
}
