//go:build linux

package sim

import (
	"syscall"
	"unsafe"
)

// adviseHugePages issues MADV_HUGEPAGE for the byte range. Errors are
// ignored: the hint is best-effort and the simulation is correct either way.
func adviseHugePages(p unsafe.Pointer, n uintptr) {
	if n == 0 {
		return
	}
	b := unsafe.Slice((*byte)(p), n)
	_ = syscall.Madvise(b, syscall.MADV_HUGEPAGE)
}
