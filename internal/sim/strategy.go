package sim

import (
	"lotuseater/internal/attack"
	"lotuseater/internal/simrng"
)

// Adversary is a substrate-independent attacker strategy. The paper's core
// claim is that lotus-eater attacks work against any satiation-compatible
// system; this interface is that claim as code. A simulator hosts an
// adversary through three round hooks and maps each answer onto its own
// mechanics (token fills, scrip top-ups, piece uploads, update deliveries):
//
//   - Place picks the nodes the adversary controls, once, at model build.
//   - Targets names the nodes the adversary tries to satiate each round.
//   - OnExchange decides, inside a protocol exchange, whether an attacker
//     node serves the partner (the trade lotus-eater serves satiation
//     targets and stonewalls everyone else; crash and ideal attackers never
//     serve in protocol).
//
// Implementations are stateful per run — Place must be called exactly once
// before the other hooks, and rounds must be non-decreasing — so a fresh
// value (or a Reset, where offered) is needed per replicate. The canonical
// implementation is attack.Strategy.
type Adversary interface {
	// Place returns the node ids the adversary controls out of n. It derives
	// any randomness (placement, target selection) from children of rng, so
	// a model passes its root stream and stays deterministic in its seed.
	Place(n int, rng *simrng.Source) []int
	// Targets returns the satiation targets for the round as a sparse,
	// immutable set: O(1) membership, O(|set|) iteration, and a change
	// journal against the previous targeting epoch. The same pointer comes
	// back for every round of one epoch, so callers may hold it across
	// rounds and key incremental per-node state on pointer (or Epoch)
	// change.
	Targets(round int) *attack.TargetSet
	// OnExchange reports whether attacker-controlled node `attacker` serves
	// node `partner` within a protocol exchange in the given round.
	OnExchange(round, attacker, partner int) bool
}

// Defense is a substrate-independent receiver-side defense. Admit is the
// rate-limiting hook of Section 5: it decides how much of an offered service
// delivery the receiver accepts, and charges the accepted amount against the
// (sender, receiver, round) budget. Reset clears all per-run state so one
// Defense value can be pooled across replicates (see Workspace.Defense).
// The canonical implementation is defense.Limit.
type Defense interface {
	// Admit reports how many of the requested service units receiver `to`
	// accepts from sender `from` in the given round, recording the grant.
	// Rounds must be non-decreasing across calls. Out-of-protocol senders
	// (the external attacker) use from = -1.
	Admit(round, from, to, requested int) int
	// Reset clears all accumulated state for reuse in a fresh run.
	Reset()
}

// ProtocolTrader is optionally implemented by adversaries whose attacker
// nodes stay inside the protocol — initiating exchanges like honest nodes
// and serving per OnExchange (the trade lotus-eater).
type ProtocolTrader interface {
	TradesInProtocol() bool
}

// InstantSatiator is optionally implemented by adversaries that deliver
// satiation to their targets outside the protocol at the start of every
// round (the ideal lotus-eater).
type InstantSatiator interface {
	SatiatesInstantly() bool
}

// DepartureAware is optionally implemented by adversaries that track node
// lifecycle: under churn, a satiated target that departs takes its
// satiation with it, and a later arrival reusing the same index is a fresh
// node the adversary has not satiated. Engines call NodeDeparted for every
// departure (attacker or honest) before any exchange in the round; the
// adversary excludes the node from its effective target set until its
// targeter legitimately re-evaluates (e.g. a rotation redraw).
type DepartureAware interface {
	NodeDeparted(round, node int)
}

// NotifyDeparture forwards a departure to a, if a tracks lifecycle.
// Adversaries that do not implement DepartureAware keep their fixed-universe
// behavior (safe for static populations; churned scenarios use
// attack.Strategy, which implements it).
func NotifyDeparture(a Adversary, round, node int) {
	if d, ok := a.(DepartureAware); ok {
		d.NodeDeparted(round, node)
	}
}

// TradesInProtocol reports whether a's attacker nodes participate in
// protocol exchanges. Adversaries that do not implement ProtocolTrader are
// assumed to stay out of protocol.
func TradesInProtocol(a Adversary) bool {
	if t, ok := a.(ProtocolTrader); ok {
		return t.TradesInProtocol()
	}
	return false
}

// SatiatesInstantly reports whether a delivers satiation out of protocol at
// round start. Adversaries that do not implement InstantSatiator are assumed
// not to.
func SatiatesInstantly(a Adversary) bool {
	if s, ok := a.(InstantSatiator); ok {
		return s.SatiatesInstantly()
	}
	return false
}
