package sim

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"lotuseater/internal/simrng"
)

// countModel finishes immediately and snapshots a value derived from its
// replicate stream.
type countModel struct {
	val  float64
	done bool
}

func (m *countModel) Step() error            { m.done = true; return nil }
func (m *countModel) Finished() bool         { return m.done }
func (m *countModel) Snapshot() (any, error) { return m.val, nil }

func buildCount(rep int, rng *simrng.Source, _ *Workspace) (Model, error) {
	return &countModel{val: float64(rep) + rng.Float64()}, nil
}

// TestFoldMatchesReplicates: Fold must visit exactly the snapshots
// Replicates returns, in replicate order, for any worker bound.
func TestFoldMatchesReplicates(t *testing.T) {
	const n = 500
	want, err := Runner{}.Replicates(99, n, buildCount)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 0} {
		var got []any
		next := 0
		err := Runner{Workers: workers}.Fold(99, n, buildCount, func(rep int, snap any) error {
			if rep != next {
				t.Fatalf("workers=%d: fold saw replicate %d, want %d", workers, rep, next)
			}
			next++
			got = append(got, snap)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: folded %d snapshots, want %d", workers, len(got), n)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: snapshot %d = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestFoldRangeMatchesFold: splitting a run into consecutive ranges folds
// exactly the snapshots one Fold call covering the same indices folds —
// global indices, per-index streams, fold order — for any worker bound and
// any split. This is the wave contract the adaptive precision engine
// stands on.
func TestFoldRangeMatchesFold(t *testing.T) {
	const n = 60
	var want []any
	if err := (Runner{}).Fold(41, n, buildCount, func(rep int, snap any) error {
		want = append(want, snap)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, splits := range [][]int{{17, n - 17}, {1, 1, n - 2}, {n}, {30, 0, 30}} {
		for _, workers := range []int{1, 3, 0} {
			var got []any
			start := 0
			for _, size := range splits {
				err := Runner{Workers: workers}.FoldRange(41, start, size, buildCount, func(rep int, snap any) error {
					if rep != len(got) {
						t.Fatalf("splits=%v workers=%d: fold saw replicate %d, want %d", splits, workers, rep, len(got))
					}
					got = append(got, snap)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				start += size
			}
			if len(got) != n {
				t.Fatalf("splits=%v: folded %d snapshots, want %d", splits, len(got), n)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("splits=%v workers=%d: snapshot %d = %v, want %v", splits, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestFoldRangeErrors: error messages carry the global replicate index,
// and a negative start is rejected before any model runs.
func TestFoldRangeErrors(t *testing.T) {
	boom := errors.New("boom")
	err := Runner{}.FoldRange(1, 40, 10, func(rep int, rng *simrng.Source, _ *Workspace) (Model, error) {
		if rep == 45 {
			return nil, boom
		}
		return &countModel{}, nil
	}, func(rep int, snap any) error { return nil })
	if err == nil || !errors.Is(err, boom) || err.Error() != "replicate 45: boom" {
		t.Fatalf("global index lost: %v", err)
	}
	ran := false
	err = Runner{}.FoldRange(1, -1, 5, func(rep int, rng *simrng.Source, _ *Workspace) (Model, error) {
		ran = true
		return &countModel{}, nil
	}, func(rep int, snap any) error { return nil })
	if err == nil || ran {
		t.Fatalf("negative start accepted (err=%v, ran=%v)", err, ran)
	}
}

// TestFoldBuildError: a failing replicate is skipped by fold and reported
// as the first error by replicate order.
func TestFoldBuildError(t *testing.T) {
	build := func(rep int, rng *simrng.Source, ws *Workspace) (Model, error) {
		if rep == 3 || rep == 7 {
			return nil, fmt.Errorf("boom %d", rep)
		}
		return buildCount(rep, rng, ws)
	}
	folded := 0
	err := Runner{}.Fold(1, 10, build, func(rep int, snap any) error {
		if rep == 3 || rep == 7 {
			t.Fatalf("fold saw failed replicate %d", rep)
		}
		folded++
		return nil
	})
	if err == nil || err.Error() != "replicate 3: boom 3" {
		t.Fatalf("err = %v, want replicate 3's", err)
	}
	if folded != 8 {
		t.Fatalf("folded %d snapshots, want 8", folded)
	}
}

// TestFoldFoldError: an error from the fold callback stops folding and is
// returned.
func TestFoldFoldError(t *testing.T) {
	sentinel := errors.New("stop")
	folded := 0
	err := Runner{}.Fold(1, 50, buildCount, func(rep int, snap any) error {
		if rep == 5 {
			return sentinel
		}
		folded++
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	if folded != 5 {
		t.Fatalf("folded %d snapshots before the error, want 5", folded)
	}
}

// TestFoldZero: n <= 0 is a no-op.
func TestFoldZero(t *testing.T) {
	err := Runner{}.Fold(1, 0, buildCount, func(int, any) error {
		t.Fatal("fold called for n = 0")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWorkspaceDefense: the pooled defense is constructed once per key and
// reset on every handout.
func TestWorkspaceDefense(t *testing.T) {
	ws := NewWorkspace()
	made := 0
	mk := func() Defense { made++; return &spyDefense{} }
	d1 := ws.Defense("k", mk).(*spyDefense)
	d2 := ws.Defense("k", mk).(*spyDefense)
	if d1 != d2 {
		t.Fatal("same key returned different defenses")
	}
	if made != 1 {
		t.Fatalf("constructor ran %d times, want 1", made)
	}
	if d1.resets != 2 {
		t.Fatalf("defense reset %d times, want 2 (one per handout)", d1.resets)
	}
	other := ws.Defense("other", mk)
	if other == Defense(d1) {
		t.Fatal("different keys shared a defense")
	}
	if made != 2 {
		t.Fatalf("constructor ran %d times, want 2", made)
	}
}

type spyDefense struct{ resets int }

func (d *spyDefense) Admit(round, from, to, requested int) int { return requested }
func (d *spyDefense) Reset()                                   { d.resets++ }

// TestFoldErrorPrecedence pins the first-error-by-replicate-order contract
// when both a per-replicate error and a fold error occur, in both relative
// orders: an error at a replicate before the fold error's index wins; an
// error at a replicate after it loses to the fold error. The outcome must
// not depend on worker count or scheduling.
func TestFoldErrorPrecedence(t *testing.T) {
	sentinel := errors.New("fold stop")
	cases := []struct {
		name     string
		buildAt  int // replicate whose build fails
		foldAt   int // replicate whose fold fails
		wantText string
		wantFold bool
	}{
		// Build error at 2 precedes a fold error at 6.
		{name: "build-before-fold", buildAt: 2, foldAt: 6, wantText: "replicate 2: boom 2"},
		// Build error at 9 comes after the fold error at 4: the fold error
		// is the first error in replicate order and must win.
		{name: "build-after-fold", buildAt: 9, foldAt: 4, wantFold: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, workers := range []int{1, 2, 0} {
				build := func(rep int, rng *simrng.Source, ws *Workspace) (Model, error) {
					if rep == tc.buildAt {
						return nil, fmt.Errorf("boom %d", rep)
					}
					return buildCount(rep, rng, ws)
				}
				err := Runner{Workers: workers}.Fold(1, 12, build, func(rep int, snap any) error {
					if rep == tc.foldAt {
						return sentinel
					}
					return nil
				})
				if tc.wantFold {
					if !errors.Is(err, sentinel) {
						t.Fatalf("workers=%d: err = %v, want the fold error", workers, err)
					}
				} else if err == nil || err.Error() != tc.wantText {
					t.Fatalf("workers=%d: err = %v, want %q", workers, err, tc.wantText)
				}
			}
		})
	}
}

// TestParallelForMatchesSequential: sharded execution must produce exactly
// the sequential result for shard-private writes, for any grain, including
// grains that leave a ragged final shard.
func TestParallelForMatchesSequential(t *testing.T) {
	const n = 10_000
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, grain := range []int{0, 1, 7, 100, n, 3 * n} {
		got := make([]int, n)
		shards := map[int][2]int{}
		var mu sync.Mutex
		ParallelFor(n, grain, func(shard, start, end int) {
			for i := start; i < end; i++ {
				got[i] = i * i
			}
			mu.Lock()
			shards[shard] = [2]int{start, end}
			mu.Unlock()
		})
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("grain=%d: index %d not covered exactly once", grain, i)
			}
		}
		// Shard boundaries must be the fixed function of (n, grain): shard
		// k covers [k*grain, min((k+1)*grain, n)).
		g := grain
		if g <= 0 {
			g = DefaultGrain
		}
		wantShards := (n + g - 1) / g
		if wantShards <= 1 {
			wantShards = 1
		}
		if len(shards) != wantShards {
			t.Fatalf("grain=%d: %d shards, want %d", grain, len(shards), wantShards)
		}
		for k, se := range shards {
			wantStart, wantEnd := k*g, (k+1)*g
			if wantShards == 1 {
				wantStart, wantEnd = 0, n
			}
			if wantEnd > n {
				wantEnd = n
			}
			if se != [2]int{wantStart, wantEnd} {
				t.Fatalf("grain=%d: shard %d covered %v, want [%d,%d)", grain, k, se, wantStart, wantEnd)
			}
		}
	}
}

// TestParallelForNested: ParallelFor from inside a pool task (the in-
// replicate case) must not deadlock and must still cover the range.
func TestParallelForNested(t *testing.T) {
	results := make([][]int, 8)
	Go(8, 0, func(i int, _ *Workspace) {
		buf := make([]int, 5000)
		ParallelFor(len(buf), 512, func(_, start, end int) {
			for j := start; j < end; j++ {
				buf[j] = i
			}
		})
		results[i] = buf
	})
	for i, buf := range results {
		for j, v := range buf {
			if v != i {
				t.Fatalf("task %d index %d = %d", i, j, v)
			}
		}
	}
}

// TestFoldProgress: Progress fires once per replicate, in order, as
// done = 1..n out of n, for any worker bound — and error replicates still
// count as completed.
func TestFoldProgress(t *testing.T) {
	const n = 60
	for _, workers := range []int{1, 3, 0} {
		var calls [][2]int
		r := Runner{Workers: workers, Progress: func(done, total int) {
			calls = append(calls, [2]int{done, total})
		}}
		err := r.Fold(7, n, buildCount, func(rep int, snap any) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(calls) != n {
			t.Fatalf("workers=%d: %d progress calls, want %d", workers, len(calls), n)
		}
		for i, c := range calls {
			if c[0] != i+1 || c[1] != n {
				t.Fatalf("workers=%d: call %d = (%d,%d), want (%d,%d)", workers, i, c[0], c[1], i+1, n)
			}
		}
	}

	// A build error skips the fold but still advances progress to n.
	var last int
	r := Runner{Progress: func(done, total int) { last = done }}
	err := r.Fold(7, 10, func(rep int, rng *simrng.Source, ws *Workspace) (Model, error) {
		if rep == 4 {
			return nil, errors.New("boom")
		}
		return buildCount(rep, rng, ws)
	}, func(rep int, snap any) error { return nil })
	if err == nil {
		t.Fatal("want the replicate-4 build error")
	}
	if last != 10 {
		t.Fatalf("progress stopped at %d, want 10", last)
	}
}
