//go:build !linux

package sim

import "unsafe"

// adviseHugePages is a no-op where transparent huge pages (or madvise) are
// unavailable.
func adviseHugePages(unsafe.Pointer, uintptr) {}
