package sim

import "lotuseater/internal/bitset"

// Workspace is a per-worker arena of reusable scratch buffers. Each pool
// worker owns exactly one Workspace and hands it to every task it runs; the
// pool calls Reset between tasks, after which previously returned buffers
// may be recycled. Buffers must therefore never outlive the task that
// requested them.
//
// All getters return zeroed storage. Repeatedly running same-shaped
// replicates on one worker allocates only on the first run — this is what
// keeps bitset- and buffer-heavy models allocation-free per replicate.
type Workspace struct {
	bools  [][]bool
	ints   [][]int
	floats [][]float64
	sets   []*bitset.Set

	boolsUsed, intsUsed, floatsUsed, setsUsed int
	setBits                                   int

	defenses map[string]Defense
}

// NewWorkspace returns an empty workspace. Most callers never construct one:
// the pool provisions a Workspace per worker.
func NewWorkspace() *Workspace { return &Workspace{} }

// Reset recycles every buffer handed out since the previous Reset. Only the
// owner of the workspace (the pool) should call it.
func (w *Workspace) Reset() {
	w.boolsUsed, w.intsUsed, w.floatsUsed, w.setsUsed = 0, 0, 0, 0
}

// take returns a zeroed slice of length n from the freelist, reusing the
// slot's storage when it is large enough.
func take[T any](list *[][]T, used *int, n int) []T {
	if *used < len(*list) && cap((*list)[*used]) >= n {
		buf := (*list)[*used][:n]
		*used++
		var zero T
		for i := range buf {
			buf[i] = zero
		}
		return buf
	}
	buf := make([]T, n)
	if *used < len(*list) {
		(*list)[*used] = buf
	} else {
		*list = append(*list, buf)
	}
	*used++
	return buf
}

// Defense returns the worker's pooled Defense for key, constructing it with
// mk on first use and Reset-ing it on every handout. Defenses accumulate
// per-pair state maps that are expensive to reallocate per replicate;
// pooling them per worker (keyed by configuration, e.g. "ratelimit/8")
// makes defended replicated runs allocation-free at steady state. Like all
// workspace resources, the returned Defense must not outlive the task.
func (w *Workspace) Defense(key string, mk func() Defense) Defense {
	if w.defenses == nil {
		w.defenses = make(map[string]Defense)
	}
	d, ok := w.defenses[key]
	if !ok {
		d = mk()
		w.defenses[key] = d
	}
	d.Reset()
	return d
}

// Bools returns a zeroed []bool of length n, reusing storage when possible.
func (w *Workspace) Bools(n int) []bool { return take(&w.bools, &w.boolsUsed, n) }

// Ints returns a zeroed []int of length n, reusing storage when possible.
func (w *Workspace) Ints(n int) []int { return take(&w.ints, &w.intsUsed, n) }

// Floats returns a zeroed []float64 of length n, reusing storage when
// possible.
func (w *Workspace) Floats(n int) []float64 { return take(&w.floats, &w.floatsUsed, n) }

// Bitsets returns count cleared bitsets of the given bit capacity, reusing
// prior allocations when the capacity matches the previous request shape.
// A capacity change drops the cached sets (simulators use one token/piece
// universe size per task, so this is the rare path).
func (w *Workspace) Bitsets(count, bits int) []*bitset.Set {
	if w.setBits != bits {
		// Drop the cache rather than truncate it: slices handed out earlier
		// in this task alias the old backing array, and reusing its slots
		// would swap their sets out from under them.
		w.sets = nil
		w.setBits = bits
		w.setsUsed = 0
	}
	for w.setsUsed+count > len(w.sets) {
		w.sets = append(w.sets, bitset.New(bits))
	}
	out := w.sets[w.setsUsed : w.setsUsed+count]
	w.setsUsed += count
	for _, s := range out {
		s.Clear()
	}
	return out
}
