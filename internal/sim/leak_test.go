package sim

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"lotuseater/internal/simrng"
)

var (
	errTestBuild = errors.New("poisoned build")
	errTestFold  = errors.New("poisoned fold")
)

// The process-wide pool starts exactly PoolSize worker goroutines on first
// use and never grows; everything else the kernel spawns — Fold's folder
// goroutine, Go's drainer offers — must be gone when the call returns.
// These tests pin that: after a warm-up, repeated heavy use settles back to
// the warm baseline.

// settle waits for the goroutine count to drop back to base, failing with
// a stack dump if it never does.
func settle(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Fatalf("goroutines never settled back to %d (now %d):\n%s", base, runtime.NumGoroutine(), buf)
}

// TestPoolGoroutinesBounded: the shared pool's goroutines exist once,
// whatever the load — 50 fan-outs later the process has exactly the warm
// baseline again, and PoolSize never moved.
func TestPoolGoroutinesBounded(t *testing.T) {
	size := PoolSize() // warm the pool
	Go(64, 0, func(i int, ws *Workspace) {})
	base := runtime.NumGoroutine()

	for round := 0; round < 50; round++ {
		Go(128, 0, func(i int, ws *Workspace) {})
	}
	if PoolSize() != size {
		t.Fatalf("pool width changed under load: %d -> %d", size, PoolSize())
	}
	settle(t, base)
}

// TestFoldNoGoroutineLeak: Fold's folder goroutine and reorder machinery
// are per-call and fully reclaimed, on success and on error, for any
// worker bound.
func TestFoldNoGoroutineLeak(t *testing.T) {
	if err := (Runner{}).Fold(1, 8, buildCount, func(int, any) error { return nil }); err != nil {
		t.Fatal(err) // warm
	}
	base := runtime.NumGoroutine()

	for round := 0; round < 30; round++ {
		workers := []int{1, 2, 0}[round%3]
		err := Runner{Workers: workers}.Fold(uint64(round), 200, buildCount,
			func(rep int, snap any) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
	}
	settle(t, base)
}

// TestFoldErrorPathsNoGoroutineLeak: build failures and fold failures both
// abandon snapshots mid-stream; nothing may stay parked on the admission
// window or the reorder buffer.
func TestFoldErrorPathsNoGoroutineLeak(t *testing.T) {
	if err := (Runner{}).Fold(1, 8, buildCount, func(int, any) error { return nil }); err != nil {
		t.Fatal(err) // warm
	}
	base := runtime.NumGoroutine()

	for round := 0; round < 20; round++ {
		err := Runner{}.Fold(uint64(round), 100,
			func(rep int, rng *simrng.Source, ws *Workspace) (Model, error) {
				if rep%7 == 3 {
					return nil, errTestBuild
				}
				return buildCount(rep, rng, ws)
			},
			func(rep int, snap any) error {
				if rep == 10 {
					return errTestFold
				}
				return nil
			})
		if err == nil {
			t.Fatal("want an error from the poisoned replicates")
		}
	}
	settle(t, base)
}
