package sim

import (
	"fmt"
	"sync"

	"lotuseater/internal/simrng"
)

// FoldFunc consumes one replicate's snapshot. Runner.Fold calls it from a
// single goroutine, in strict replicate order, so implementations need no
// locking and deterministic reductions (running sums, streaming
// accumulators) come out bit-identical for any worker count.
type FoldFunc func(rep int, snap any) error

// Fold builds and drives n independently seeded models exactly like
// Replicates — same per-replicate streams, same results — but folds each
// snapshot into fold instead of materializing a []any of all of them.
// Replicates run concurrently on the shared pool; completed snapshots wait
// in a reorder buffer until their turn, and an admission window of about
// twice the pool width bounds how far ahead of the fold cursor workers may
// run, so a 10k-replicate run holds O(workers) snapshots at any moment
// rather than 10k.
//
// fold runs on a dedicated goroutine in strict replicate order. A build or
// drive error skips that replicate's fold call and is returned (first error
// by replicate order) after all replicates finish; a fold error stops
// folding (later snapshots are discarded) and is returned likewise.
func (r Runner) Fold(seed uint64, n int, build Build, fold FoldFunc) error {
	return r.FoldRange(seed, 0, n, build, fold)
}

// FoldRange is Fold over the replicate index window [start, start+n):
// build and fold see global replicate indices, and replicate start+i draws
// the stream ChildN("replicate", start+i) from seed — exactly the stream
// Fold(seed, start+n, ...) hands the same index. Replicate streams are a
// pure function of (seed, replicate index), never of how a run is split
// into ranges, so a run executed as consecutive waves (the adaptive
// precision engine's batched stopping rule) folds bit-identical models in
// bit-identical order to one fixed-count call covering the same indices.
//
// Progress, when set, reports this call's local completion (done in 1..n),
// not global indices; callers running waves translate. Error messages carry
// the global replicate index.
func (r Runner) FoldRange(seed uint64, start, n int, build Build, fold FoldFunc) error {
	if start < 0 {
		return fmt.Errorf("sim: FoldRange start must be non-negative, got %d", start)
	}
	if n <= 0 {
		return nil
	}
	root := simrng.New(seed)
	errs := make([]error, n)

	// Admission window: replicate rep may start only once the fold cursor
	// has passed rep-window, so at most `window` snapshots are in flight or
	// waiting to fold. The wait is keyed on the replicate's own index —
	// replicate `cursor` is always admissible — so the window cannot
	// deadlock no matter how pool workers interleave.
	window := 2 * PoolSize()
	if window < 2 {
		window = 2
	}
	var (
		mu     sync.Mutex
		cursor int // next replicate to fold (local index); owned by the folder
	)
	cond := sync.NewCond(&mu)

	type done struct {
		rep  int // local index
		snap any
	}
	results := make(chan done, window)

	var wg sync.WaitGroup
	wg.Add(1)
	var foldErr error
	foldErrAt := n
	go func() {
		defer wg.Done()
		pending := make(map[int]any, window)
		for d := range results {
			pending[d.rep] = d.snap
			mu.Lock()
			for {
				snap, ok := pending[cursor]
				if !ok {
					break
				}
				delete(pending, cursor)
				rep := cursor
				mu.Unlock()
				if errs[rep] == nil && foldErr == nil {
					if err := fold(start+rep, snap); err != nil {
						foldErr = fmt.Errorf("replicate %d: fold: %w", start+rep, err)
						foldErrAt = rep
					}
				}
				if r.Progress != nil {
					r.Progress(rep+1, n)
				}
				mu.Lock()
				cursor++
				cond.Broadcast()
			}
			mu.Unlock()
		}
	}()

	Go(n, r.Workers, func(rep int, ws *Workspace) {
		mu.Lock()
		for rep >= cursor+window {
			cond.Wait()
		}
		mu.Unlock()
		rng := root.ChildN("replicate", start+rep)
		m, err := build(start+rep, rng, ws)
		if err != nil {
			errs[rep] = fmt.Errorf("replicate %d: %w", start+rep, err)
			results <- done{rep: rep}
			return
		}
		snap, err := Drive(m)
		if err != nil {
			errs[rep] = fmt.Errorf("replicate %d: %w", start+rep, err)
			results <- done{rep: rep}
			return
		}
		results <- done{rep: rep, snap: snap}
	})
	close(results)
	wg.Wait()

	for rep, err := range errs {
		if err != nil && rep <= foldErrAt {
			return err
		}
	}
	return foldErr
}
