package sim

import (
	"fmt"
	"sync"

	"lotuseater/internal/simrng"
)

// FoldFunc consumes one replicate's snapshot. Runner.Fold calls it from a
// single goroutine, in strict replicate order, so implementations need no
// locking and deterministic reductions (running sums, streaming
// accumulators) come out bit-identical for any worker count.
type FoldFunc func(rep int, snap any) error

// Fold builds and drives n independently seeded models exactly like
// Replicates — same per-replicate streams, same results — but folds each
// snapshot into fold instead of materializing a []any of all of them.
// Replicates run concurrently on the shared pool; completed snapshots wait
// in a reorder buffer until their turn, and an admission window of about
// twice the pool width bounds how far ahead of the fold cursor workers may
// run, so a 10k-replicate run holds O(workers) snapshots at any moment
// rather than 10k.
//
// fold runs on a dedicated goroutine in strict replicate order. A build or
// drive error skips that replicate's fold call and is returned (first error
// by replicate order) after all replicates finish; a fold error stops
// folding (later snapshots are discarded) and is returned likewise.
func (r Runner) Fold(seed uint64, n int, build Build, fold FoldFunc) error {
	if n <= 0 {
		return nil
	}
	root := simrng.New(seed)
	errs := make([]error, n)

	// Admission window: replicate rep may start only once the fold cursor
	// has passed rep-window, so at most `window` snapshots are in flight or
	// waiting to fold. The wait is keyed on the replicate's own index —
	// replicate `cursor` is always admissible — so the window cannot
	// deadlock no matter how pool workers interleave.
	window := 2 * PoolSize()
	if window < 2 {
		window = 2
	}
	var (
		mu     sync.Mutex
		cursor int // next replicate to fold; owned by the folder
	)
	cond := sync.NewCond(&mu)

	type done struct {
		rep  int
		snap any
	}
	results := make(chan done, window)

	var wg sync.WaitGroup
	wg.Add(1)
	var foldErr error
	foldErrAt := n
	go func() {
		defer wg.Done()
		pending := make(map[int]any, window)
		for d := range results {
			pending[d.rep] = d.snap
			mu.Lock()
			for {
				snap, ok := pending[cursor]
				if !ok {
					break
				}
				delete(pending, cursor)
				rep := cursor
				mu.Unlock()
				if errs[rep] == nil && foldErr == nil {
					if err := fold(rep, snap); err != nil {
						foldErr = fmt.Errorf("replicate %d: fold: %w", rep, err)
						foldErrAt = rep
					}
				}
				if r.Progress != nil {
					r.Progress(rep+1, n)
				}
				mu.Lock()
				cursor++
				cond.Broadcast()
			}
			mu.Unlock()
		}
	}()

	Go(n, r.Workers, func(rep int, ws *Workspace) {
		mu.Lock()
		for rep >= cursor+window {
			cond.Wait()
		}
		mu.Unlock()
		rng := root.ChildN("replicate", rep)
		m, err := build(rep, rng, ws)
		if err != nil {
			errs[rep] = fmt.Errorf("replicate %d: %w", rep, err)
			results <- done{rep: rep}
			return
		}
		snap, err := Drive(m)
		if err != nil {
			errs[rep] = fmt.Errorf("replicate %d: %w", rep, err)
			results <- done{rep: rep}
			return
		}
		results <- done{rep: rep, snap: snap}
	})
	close(results)
	wg.Wait()

	for rep, err := range errs {
		if err != nil && rep <= foldErrAt {
			return err
		}
	}
	return foldErr
}
