package sim

import (
	"runtime"
	"sync"
)

// The process-wide worker pool. All concurrent sweeps and replicate runs in
// the process share these workers, so total simulation concurrency is
// bounded by the machine regardless of how many experiments run at once.
// Workers start lazily on first use and live for the life of the process;
// each owns one Workspace handed to every task it runs.
var (
	poolOnce  sync.Once
	poolTasks chan func(*Workspace)
	poolSize  int
)

func ensurePool() {
	poolOnce.Do(func() {
		poolSize = runtime.GOMAXPROCS(0)
		if poolSize < 1 {
			poolSize = 1
		}
		// Buffered so offers can park for busy workers; see Go for why a
		// parked offer can never deadlock (it no-ops on an empty queue).
		poolTasks = make(chan func(*Workspace), 2*poolSize)
		for w := 0; w < poolSize; w++ {
			go func() {
				ws := NewWorkspace()
				for t := range poolTasks {
					t(ws)
				}
			}()
		}
	})
}

// PoolSize returns the number of shared workers (GOMAXPROCS at first use).
func PoolSize() int {
	ensurePool()
	return poolSize
}

// Go runs fn(i, ws) for every i in [0, n) on the shared pool and waits for
// all of them. limit > 0 bounds how many of this call's jobs may run
// concurrently (the pool width is the hard ceiling either way); limit <= 0
// means pool width.
//
// The jobs sit in a per-call queue drained by two kinds of consumer: up to
// limit-1 drainer offers handed to the pool (each claims jobs until the
// queue is empty), and the calling goroutine itself. Because the caller is
// a consumer of last resort, fan-out never deadlocks — even nested fan-out
// from inside a pool task on a saturated pool simply drains inline — and
// because drainers pull jobs directly, workers that free up mid-call are
// never left idle behind a long-running job. A drainer offer that outlives
// its call finds the queue empty and no-ops.
//
// Determinism is the caller's job and is easy: key all work by i and derive
// randomness from i, never from scheduling order.
func Go(n, limit int, fn func(i int, ws *Workspace)) {
	if n <= 0 {
		return
	}
	ensurePool()
	if limit <= 0 || limit > poolSize {
		limit = poolSize
	}

	jobs := make(chan int, n)
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)

	var wg sync.WaitGroup
	wg.Add(n)
	drain := func(ws *Workspace) {
		for i := range jobs {
			ws.Reset()
			fn(i, ws)
			wg.Done()
		}
	}

offers:
	for k := 0; k < limit-1; k++ {
		select {
		case poolTasks <- drain:
		default:
			break offers // queue full; the caller picks up the slack
		}
	}
	// The caller drains too, on scratch of its own: in the nested case the
	// goroutine's worker Workspace belongs to the outer task mid-flight and
	// must not be reset here.
	drain(NewWorkspace())
	wg.Wait()
}
