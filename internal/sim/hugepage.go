package sim

import "unsafe"

// AdviseHugePages hints the kernel to back the slice's array with
// transparent huge pages (Linux MADV_HUGEPAGE; a no-op elsewhere or when
// the slice is empty). Million-agent simulators allocate tens of megabytes
// of counter and adjacency arenas that the hot loops probe at random; on 4K
// pages every such probe risks a serialized TLB walk, which can rival the
// cache miss itself. Marking the arena for 2MB pages collapses the walk
// cost. Purely a memory-system hint: simulation results are bit-identical
// with or without it.
func AdviseHugePages[T any](s []T) {
	if len(s) == 0 {
		return
	}
	var zero T
	adviseHugePages(unsafe.Pointer(&s[0]), uintptr(len(s))*unsafe.Sizeof(zero))
}
