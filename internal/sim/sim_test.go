package sim_test

import (
	"errors"
	"testing"

	"lotuseater/internal/coding"
	"lotuseater/internal/gossip"
	"lotuseater/internal/graph"
	"lotuseater/internal/scrip"
	"lotuseater/internal/sim"
	"lotuseater/internal/simrng"
	"lotuseater/internal/swarm"
	"lotuseater/internal/tokenmodel"
)

// Compile-time proof that all five simulators implement the kernel's Model
// contract.
var (
	_ sim.Model = (*gossip.Engine)(nil)
	_ sim.Model = (*tokenmodel.Sim)(nil)
	_ sim.Model = (*scrip.Sim)(nil)
	_ sim.Model = (*swarm.Sim)(nil)
	_ sim.Model = (*coding.Dissemination)(nil)
)

// buildAll constructs one small instance of every simulator as a sim.Model.
func buildAll(t *testing.T, seed uint64) map[string]sim.Model {
	t.Helper()
	models := map[string]sim.Model{}

	gcfg := gossip.DefaultConfig()
	gcfg.Nodes = 50
	gcfg.Rounds = 20
	gcfg.Warmup = 5
	eng, err := gossip.New(gcfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	models["gossip"] = eng

	tm, err := tokenmodel.New(tokenmodel.Config{
		Graph: graph.Complete(30), Tokens: 5, Contacts: 2, Rounds: 15,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	models["tokenmodel"] = tm

	scfg := scrip.DefaultConfig()
	scfg.Rounds = 500
	sc, err := scrip.New(scfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	models["scrip"] = sc

	wcfg := swarm.DefaultConfig()
	wcfg.Leechers = 20
	wcfg.Pieces = 16
	wcfg.Ticks = 120
	sw, err := swarm.New(wcfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	models["swarm"] = sw

	ds, err := coding.NewDissemination(coding.DisseminationConfig{
		Graph: graph.Complete(20), Symbols: 4, PayloadSize: 8, Contacts: 2, Rounds: 15, Coded: true,
	}, seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	models["coding"] = ds
	return models
}

// TestDriveAllModels drives every simulator through the kernel interface
// alone: Step until Finished, then Snapshot, and checks Step-past-horizon
// fails cleanly. The swarm may finish before its horizon (every leecher
// resolved) and tolerates extra no-op Steps, so the past-horizon check is
// skipped when the horizon was not actually reached.
func TestDriveAllModels(t *testing.T) {
	horizons := map[string]int{"gossip": 20, "tokenmodel": 15, "scrip": 500, "swarm": 120, "coding": 15}
	rounds := map[string]func(sim.Model) int{
		"gossip":     func(m sim.Model) int { return m.(*gossip.Engine).Round() },
		"tokenmodel": func(m sim.Model) int { return m.(*tokenmodel.Sim).Round() },
		"scrip":      func(m sim.Model) int { return m.(*scrip.Sim).Round() },
		"swarm":      func(m sim.Model) int { return m.(*swarm.Sim).Tick() },
		"coding":     func(m sim.Model) int { return m.(*coding.Dissemination).Round() },
	}
	for name, m := range buildAll(t, 7) {
		snap, err := sim.Drive(m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if snap == nil {
			t.Fatalf("%s: nil snapshot", name)
		}
		if !m.Finished() {
			t.Fatalf("%s: not finished after Drive", name)
		}
		if rounds[name](m) >= horizons[name] {
			if err := m.Step(); err == nil {
				t.Fatalf("%s: Step past the horizon succeeded", name)
			}
		}
	}
}

// TestStepwiseMatchesRun checks that driving a model via the kernel yields
// the same snapshot as the simulator's own Run loop.
func TestStepwiseMatchesRun(t *testing.T) {
	a, err := tokenmodel.New(tokenmodel.Config{
		Graph: graph.Complete(40), Tokens: 8, Contacts: 2, Rounds: 25,
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tokenmodel.New(tokenmodel.Config{
		Graph: graph.Complete(40), Tokens: 8, Contacts: 2, Rounds: 25,
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	viaKernel, err := sim.Drive(a)
	if err != nil {
		t.Fatal(err)
	}
	viaRun, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := viaKernel.(tokenmodel.Result)
	if got.CompletedFraction != viaRun.CompletedFraction ||
		got.MeanCompletionRound != viaRun.MeanCompletionRound ||
		got.AllSatiatedRound != viaRun.AllSatiatedRound {
		t.Fatalf("kernel drive diverged from Run: %+v vs %+v", got, viaRun)
	}
}

// TestRunnerDeterministicAcrossWorkers runs replicates at different
// concurrency bounds and demands identical snapshots in identical order.
func TestRunnerDeterministicAcrossWorkers(t *testing.T) {
	build := func(rep int, rng *simrng.Source, ws *sim.Workspace) (sim.Model, error) {
		return tokenmodel.New(tokenmodel.Config{
			Graph: graph.Complete(30), Tokens: 6, Contacts: 2, Rounds: 20,
		}, rng.Uint64(), tokenmodel.WithWorkspace(ws))
	}
	serial, err := sim.Runner{Workers: 1}.Replicates(99, 12, build)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := sim.Runner{}.Replicates(99, 12, build)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		a := serial[i].(tokenmodel.Result)
		b := wide[i].(tokenmodel.Result)
		if a.CompletedFraction != b.CompletedFraction || a.MeanCompletionRound != b.MeanCompletionRound {
			t.Fatalf("replicate %d differs across worker counts: %+v vs %+v", i, a, b)
		}
	}
}

// TestRunnerPropagatesErrors checks the first build error surfaces.
func TestRunnerPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	_, err := sim.Runner{}.Replicates(1, 4, func(rep int, rng *simrng.Source, ws *sim.Workspace) (sim.Model, error) {
		if rep == 2 {
			return nil, boom
		}
		return tokenmodel.New(tokenmodel.Config{
			Graph: graph.Complete(10), Tokens: 3, Contacts: 1, Rounds: 5,
		}, rng.Uint64())
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

// TestWorkspaceReuse checks buffers are recycled across Resets, zeroed on
// handout, and disjoint within one task.
func TestWorkspaceReuse(t *testing.T) {
	ws := sim.NewWorkspace()
	a := ws.Bools(100)
	b := ws.Bools(100)
	if &a[0] == &b[0] {
		t.Fatal("two live buffers share storage")
	}
	a[0] = true
	first := &a[0]
	ws.Reset()
	c := ws.Bools(50)
	if &c[0] != first {
		t.Fatal("storage not recycled after Reset")
	}
	if c[0] {
		t.Fatal("recycled buffer not zeroed")
	}

	s1 := ws.Bitsets(3, 16)
	s1[0].Add(5)
	ws.Reset()
	s2 := ws.Bitsets(3, 16)
	if s2[0] != s1[0] {
		t.Fatal("bitsets not recycled after Reset")
	}
	if s2[0].Len() != 0 {
		t.Fatal("recycled bitset not cleared")
	}
	s3 := ws.Bitsets(2, 32) // capacity change drops the cache
	if s3[0].Cap() != 32 {
		t.Fatalf("bitset cap %d, want 32", s3[0].Cap())
	}
}

// TestGoIndexed checks the pool runs every index exactly once and respects
// a concurrency limit of one without deadlocking.
func TestGoIndexed(t *testing.T) {
	hits := make([]int, 500)
	sim.Go(len(hits), 1, func(i int, ws *sim.Workspace) {
		hits[i]++
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
}

// TestGoNested checks that fan-out from inside pool tasks falls back to
// inline execution instead of deadlocking a fully busy pool.
func TestGoNested(t *testing.T) {
	outer := sim.PoolSize() * 4
	counts := make([][]int, outer)
	sim.Go(outer, 0, func(i int, _ *sim.Workspace) {
		counts[i] = make([]int, 8)
		sim.Go(len(counts[i]), 0, func(j int, _ *sim.Workspace) {
			counts[i][j]++
		})
	})
	for i, inner := range counts {
		for j, c := range inner {
			if c != 1 {
				t.Fatalf("nested task (%d,%d) ran %d times", i, j, c)
			}
		}
	}
}

// TestWorkspaceBitsetsCapacityChange checks that sets handed out before a
// capacity change keep their identity and contents — the cache must be
// dropped, not recycled into the old slots.
func TestWorkspaceBitsetsCapacityChange(t *testing.T) {
	ws := sim.NewWorkspace()
	old := ws.Bitsets(2, 50)
	old[0].Add(42)
	fresh := ws.Bitsets(2, 10)
	if old[0].Cap() != 50 || !old[0].Has(42) {
		t.Fatalf("earlier handout corrupted by capacity change: cap=%d", old[0].Cap())
	}
	if fresh[0].Cap() != 10 || fresh[0] == old[0] {
		t.Fatal("post-change sets wrong capacity or aliased")
	}
}
