// Package sim is the common simulation kernel shared by every simulator in
// this repository (gossip, tokenmodel, scrip, swarm, coding).
//
// It defines the Model contract — construct from a config, advance with
// Step, stop when Finished, read a typed result via Snapshot — and provides
// the machinery for running many model instances fast and deterministically:
//
//   - a process-wide bounded worker pool (Go) shared by all concurrent
//     sweeps, so nested or parallel experiments never oversubscribe the
//     machine;
//   - a per-worker Workspace of reusable buffers (bitsets, bool/int/float
//     slices), so replicated runs allocate no per-replicate scratch on the
//     hot path;
//   - a Runner that executes n independently seeded replicates of any Model
//     and collects their snapshots in replicate order.
//
// Determinism: work is always keyed by index, never by completion order, and
// every replicate derives its random stream from (seed, index) alone, so
// results are identical for any worker count.
package sim

// Model is one simulation instance. Implementations are deterministic in
// (config, seed): gossip.Engine, tokenmodel.Sim, scrip.Sim, swarm.Sim, and
// coding.Dissemination all satisfy it.
//
// A Model is driven by calling Step until Finished reports true; Snapshot
// then returns the run's typed result (each implementation documents its
// concrete snapshot type, e.g. gossip.Result). Snapshot is safe to call
// mid-run for streaming observation; it never mutates the model.
type Model interface {
	// Step advances the simulation by one round/tick. Calling Step after
	// the horizon is exhausted is an error; implementations whose Finished
	// can trip early (e.g. a swarm whose leechers all resolved) may accept
	// further Steps as no-ops until the horizon.
	Step() error
	// Finished reports whether the simulation has reached its horizon (or
	// an early-exit condition such as "every node completed").
	Finished() bool
	// Snapshot returns the typed result summarizing the state so far.
	Snapshot() (any, error)
}

// Drive runs m to completion and returns its final snapshot.
func Drive(m Model) (any, error) {
	for !m.Finished() {
		if err := m.Step(); err != nil {
			return nil, err
		}
	}
	return m.Snapshot()
}
