package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
)

// Diagnostic is one finding: a position, the analyzer that produced it, and
// a message. String renders the canonical file:line:col: [analyzer] message
// form (file relative to root when possible).
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named rule. Run inspects a single package and reports
// findings through the pass; suppression, sorting, and output are the
// driver's job.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All is the analyzer suite, in reporting order.
var All = []*Analyzer{Detrand, MapRange, RNGShard, AllocFree}

// Config scopes the suite. SimPackages lists the import paths whose results
// are contractually a pure function of (spec, seed) — detrand and maprange
// apply only there; rngshard and allocfree apply module-wide (they key on
// explicit API use and explicit annotations).
type Config struct {
	SimPackages []string
}

// simPackageNames are the packages under internal/ whose code runs inside a
// replicate: everything between "the spec and seed go in" and "the
// observations come out". serve/cluster/cli sit outside the replicate
// boundary (they may log, time requests, shuffle work) and are policed by
// the parity and race suites instead.
var simPackageNames = []string{
	"gossip", "swarm", "scrip", "tokenmodel", "coding",
	"attack", "defense", "scenario", "sim", "adaptive", "metrics",
	"population",
}

// DefaultConfig returns the production scope for a module rooted at
// modPath: the twelve simulation packages under internal/.
func DefaultConfig(modPath string) *Config {
	cfg := &Config{}
	for _, name := range simPackageNames {
		cfg.SimPackages = append(cfg.SimPackages, modPath+"/internal/"+name)
	}
	return cfg
}

// IsSim reports whether an import path is in the simulation scope.
func (c *Config) IsSim(path string) bool {
	for _, p := range c.SimPackages {
		if p == path {
			return true
		}
	}
	return false
}

// Pass is the per-package unit of work handed to each analyzer.
type Pass struct {
	Mod  *Module
	Pkg  *Package
	Cfg  *Config
	dirs map[*ast.File]*fileDirectives

	analyzer   string
	out        *[]Diagnostic
	suppressed *int
}

// Reportf records a finding at pos unless a //lotus:ignore for this
// analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Mod.Fset.Position(pos)
	file := p.fileAt(pos)
	if file != nil && p.dirs[file].ignoredAt(position.Line, p.analyzer) {
		*p.suppressed++
		return
	}
	*p.out = append(*p.out, p.diag(p.analyzer, position, fmt.Sprintf(format, args...)))
}

func (p *Pass) diag(analyzer string, pos token.Position, msg string) Diagnostic {
	file := pos.Filename
	if rel, err := filepath.Rel(p.Mod.Root, file); err == nil && !filepath.IsAbs(rel) {
		file = filepath.ToSlash(rel)
	}
	return Diagnostic{
		Analyzer: analyzer,
		Pos:      pos,
		File:     file,
		Line:     pos.Line,
		Col:      pos.Column,
		Message:  msg,
	}
}

func (p *Pass) fileAt(pos token.Pos) *ast.File {
	for _, f := range p.Pkg.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// directivesFor returns the parsed //lotus: annotations of the file
// containing pos (never nil).
func (p *Pass) directivesFor(file *ast.File) *fileDirectives {
	return p.dirs[file]
}

// Result is a full run's outcome.
type Result struct {
	Diagnostics []Diagnostic `json:"diagnostics"`
	Suppressed  int          `json:"suppressed"` // findings silenced by //lotus:ignore
	Packages    int          `json:"packages"`
}

// RunAnalyzers type-checks and analyzes the given packages and returns the
// sorted findings. Malformed //lotus: directives are reported as
// diagnostics of the pseudo-analyzer "directive".
func RunAnalyzers(mod *Module, pkgs []*Package, cfg *Config) (*Result, error) {
	res := &Result{Packages: len(pkgs)}
	for _, pkg := range pkgs {
		if err := mod.Check(pkg); err != nil {
			return nil, err
		}
		pass := &Pass{
			Mod:        mod,
			Pkg:        pkg,
			Cfg:        cfg,
			dirs:       make(map[*ast.File]*fileDirectives),
			out:        &res.Diagnostics,
			suppressed: &res.Suppressed,
		}
		for _, f := range pkg.Files {
			filename := mod.Fset.Position(f.FileStart).Filename
			d := parseDirectives(mod.Fset, f, mod.Source(filename))
			pass.dirs[f] = d
			for _, bad := range d.malformed {
				res.Diagnostics = append(res.Diagnostics, pass.diag(bad.Analyzer, bad.Pos, bad.Message))
			}
		}
		for _, a := range All {
			pass.analyzer = a.Name
			a.Run(pass)
		}
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return res, nil
}
