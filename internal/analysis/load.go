// Package analysis is the repo's static-analysis layer: a stdlib-only
// analyzer driver (go/parser + go/types with the source importer — no
// external dependencies) plus the project-specific analyzers that turn the
// README's determinism and hot-path rules into machine-checked law. The
// cmd/lotus-lint binary is a thin front end over this package.
package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed, type-checked package of the module under analysis.
type Package struct {
	Path  string      // import path, e.g. lotuseater/internal/gossip
	Dir   string      // absolute directory
	Files []*ast.File // non-test files, build-tag filtered for this platform
	Pkg   *types.Package
	Info  *types.Info

	checked  bool
	checking bool // cycle detection during lazy type-checking
}

// Module is the whole module under analysis. Packages are parsed eagerly at
// load time but type-checked lazily (Check / CheckAll), so callers that only
// need a corner of the module don't pay for type-checking net/http by
// source.
type Module struct {
	Root string // directory containing go.mod
	Path string // module path from go.mod
	Fset *token.FileSet

	pkgs   []*Package
	byPath map[string]*Package
	src    map[string][]byte // filename -> source bytes, for directive parsing
	stdImp types.Importer    // source importer for out-of-module (stdlib) paths
}

// LoadModule locates go.mod at or above dir, parses every non-testdata
// package in the module (comments kept, build tags honored), and returns a
// Module ready for lazy type-checking. Test files are not loaded: the
// analyzers police simulation results, and tests are where nondeterminism
// (timing, t.TempDir, shuffled execution) is legitimate.
func LoadModule(dir string) (*Module, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root:   root,
		Path:   modPath,
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
		src:    make(map[string][]byte),
	}
	m.stdImp = importer.ForCompiler(m.Fset, "source", nil)
	if err := m.walk(); err != nil {
		return nil, err
	}
	sort.Slice(m.pkgs, func(i, j int) bool { return m.pkgs[i].Path < m.pkgs[j].Path })
	return m, nil
}

// Packages returns every module package, sorted by import path. They are
// parsed but not necessarily type-checked yet; use Check or CheckAll.
func (m *Module) Packages() []*Package { return m.pkgs }

// Lookup returns the module package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// Source returns the raw bytes of a loaded file (for directive parsing).
func (m *Module) Source(filename string) []byte { return m.src[filename] }

func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					p := strings.TrimSpace(rest)
					if unq, err := strconv.Unquote(p); err == nil {
						p = unq
					}
					return d, p, nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
	}
}

// walk discovers and parses every package directory under the module root,
// skipping testdata, vendor, and hidden directories.
func (m *Module) walk() error {
	return filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != m.Root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(m.Root, path)
		if err != nil {
			return err
		}
		importPath := m.Path
		if rel != "." {
			importPath = m.Path + "/" + filepath.ToSlash(rel)
		}
		pkg, err := m.parseDir(path, importPath)
		if err != nil {
			return err
		}
		if pkg != nil {
			m.pkgs = append(m.pkgs, pkg)
			m.byPath[pkg.Path] = pkg
		}
		return nil
	})
}

// parseDir parses one directory as a package. A directory with no buildable
// non-test Go files yields (nil, nil).
func (m *Module) parseDir(dir, importPath string) (*Package, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	pkg := &Package{Path: importPath, Dir: dir}
	for _, f := range bp.GoFiles {
		filename := filepath.Join(dir, f)
		data, err := os.ReadFile(filename)
		if err != nil {
			return nil, err
		}
		file, err := parser.ParseFile(m.Fset, filename, data, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		m.src[filename] = data
		pkg.Files = append(pkg.Files, file)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// LoadDir parses and type-checks one extra directory (outside the normal
// walk — e.g. an analyzer-testdata package) as importPath, resolving its
// imports against the module. The package is registered so later loads can
// import it.
func (m *Module) LoadDir(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkg, err := m.parseDir(abs, importPath)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	m.pkgs = append(m.pkgs, pkg)
	m.byPath[pkg.Path] = pkg
	if err := m.Check(pkg); err != nil {
		return nil, err
	}
	return pkg, nil
}

// Check type-checks pkg (and, recursively, its in-module dependencies).
// It is idempotent.
func (m *Module) Check(pkg *Package) error {
	if pkg.checked {
		return nil
	}
	if pkg.checking {
		return fmt.Errorf("analysis: import cycle through %s", pkg.Path)
	}
	pkg.checking = true
	defer func() { pkg.checking = false }()

	// Check in-module dependencies first so the importer below can serve
	// them from the map without re-entering the type checker.
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if dep := m.byPath[path]; dep != nil {
				if err := m.Check(dep); err != nil {
					return err
				}
			}
		}
	}

	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: (*moduleImporter)(m)}
	tpkg, err := conf.Check(pkg.Path, m.Fset, pkg.Files, pkg.Info)
	if err != nil {
		return fmt.Errorf("analysis: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Pkg = tpkg
	pkg.checked = true
	return nil
}

// CheckAll type-checks every module package.
func (m *Module) CheckAll() error {
	for _, pkg := range m.pkgs {
		if err := m.Check(pkg); err != nil {
			return err
		}
	}
	return nil
}

// moduleImporter serves in-module import paths from the module's own
// lazily-checked packages and delegates everything else (the standard
// library) to the source importer.
type moduleImporter Module

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	m := (*Module)(mi)
	if pkg := m.byPath[path]; pkg != nil {
		if err := m.Check(pkg); err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return m.stdImp.Import(path)
}
