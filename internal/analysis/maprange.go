package analysis

import (
	"go/ast"
	"go/types"
)

// MapRange enforces the second determinism rule: Go randomizes map
// iteration order per range statement, so a `range` over a map inside a
// simulation package is a nondeterminism leak waiting to reach an
// observation (or an error message, or an artifact) — the class of bug the
// 1-vs-8-worker parity suites only catch after it ships. Sites where order
// provably cannot escape (folding into a commutative reduction, building a
// set that is sorted before use) carry //lotus:orderinvariant with the
// reason; everything else iterates sorted keys or keeps incremental state.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc: "forbid range-over-map in simulation packages unless the site is annotated " +
		"//lotus:orderinvariant <reason>",
	Run: runMapRange,
}

func runMapRange(pass *Pass) {
	if !pass.Cfg.IsSim(pass.Pkg.Path) {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		dirs := pass.directivesFor(file)
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			line := pass.Mod.Fset.Position(rs.For).Line
			if _, ok := dirs.orderinvariant[line]; ok {
				return true
			}
			pass.Reportf(rs.For,
				"range over map: iteration order is randomized per statement and can leak into observations; iterate sorted keys (or keep incremental state), or annotate //lotus:orderinvariant <reason> if order provably cannot escape")
			return true
		})
	}
}
