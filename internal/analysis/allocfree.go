package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AllocFree is the hot-path guard: a function whose doc carries
// //lotus:allocfree promises a steady-state body with no O(work) heap
// traffic — the property the gossip/swarm alloc-growth tests measure
// dynamically, checked here at the call-site level. The analyzer flags the
// static allocation sources in the annotated function's own body: make/new,
// map and slice composite literals, &T{...}, fmt calls (they allocate and
// box), and explicit conversions to interface types. Callee bodies are not
// traversed — annotate the callees that matter. Statements that are
// genuinely setup (pool growth on first use, cold error paths) are exempted
// with //lotus:allocsetup <reason> or //lotus:ignore allocfree <reason>.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc: "functions annotated //lotus:allocfree may not allocate outside " +
		"//lotus:allocsetup blocks: no make/new, map/slice literals, &T{}, fmt calls, or interface boxing",
	Run: runAllocFree,
}

func runAllocFree(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		dirs := pass.directivesFor(file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !docHasDirective(fd.Doc, dirAllocFree) {
				continue
			}
			checkAllocFree(pass, fd, dirs)
		}
	}
}

func checkAllocFree(pass *Pass, fd *ast.FuncDecl, dirs *fileDirectives) {
	info := pass.Pkg.Info
	fset := pass.Mod.Fset
	// &T{...} is reported at the unary op; remember the literal so the
	// composite-literal case doesn't report it a second time.
	addrTaken := make(map[*ast.CompositeLit]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if stmt, ok := n.(ast.Stmt); ok {
			if _, setup := dirs.allocsetup[fset.Position(stmt.Pos()).Line]; setup {
				return false
			}
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			checkAllocCall(pass, e)
		case *ast.UnaryExpr:
			if lit, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok && e.Op == token.AND {
				addrTaken[lit] = true
				pass.Reportf(e.Pos(), "&%s{...} escapes to the heap in an allocfree function; reuse pooled storage or move it to an //lotus:allocsetup block", litTypeName(pass, lit))
			}
		case *ast.CompositeLit:
			if addrTaken[e] {
				return true
			}
			switch info.TypeOf(e).Underlying().(type) {
			case *types.Map:
				pass.Reportf(e.Pos(), "map literal allocates in an allocfree function")
			case *types.Slice:
				pass.Reportf(e.Pos(), "slice literal allocates a backing array in an allocfree function")
			}
		}
		return true
	})
}

func checkAllocCall(pass *Pass, call *ast.CallExpr) {
	info := pass.Pkg.Info
	// Conversion to an interface type boxes its operand. A type parameter's
	// underlying is its constraint interface, but converting to one (T(x))
	// stays unboxed — instantiation substitutes a concrete type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if _, isParam := types.Unalias(tv.Type).(*types.TypeParam); isParam {
			return
		}
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if at := info.TypeOf(call.Args[0]); at != nil && !types.IsInterface(at) && !isUntypedNil(at) {
				pass.Reportf(call.Pos(), "conversion to %s boxes its operand onto the heap in an allocfree function", types.TypeString(tv.Type, types.RelativeTo(pass.Pkg.Pkg)))
			}
		}
		return
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			if name := b.Name(); name == "make" || name == "new" {
				pass.Reportf(call.Pos(), "%s allocates in an allocfree function; size buffers during setup and reslice here", name)
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s formats through reflection — it allocates and boxes every operand; hot paths report via pre-sized state, cold error paths get //lotus:allocsetup or //lotus:ignore allocfree", fn.Name())
		}
	}
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func litTypeName(pass *Pass, lit *ast.CompositeLit) string {
	if t := pass.Pkg.Info.TypeOf(lit); t != nil {
		return types.TypeString(t, types.RelativeTo(pass.Pkg.Pkg))
	}
	return "T"
}
