package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The repo's annotation vocabulary. Each directive is a regular //-comment
// (no space after //, like //go:build) and applies to the line it trails,
// or — when it stands on a line of its own — to the next line.
//
//	//lotus:ignore <analyzer> <reason>   suppress one analyzer at one site
//	//lotus:orderinvariant <reason>      this map range is order-invariant
//	//lotus:allocsetup <reason>          this statement is setup, may allocate
//	//lotus:allocfree                    (on a func's doc) body must not allocate
//
// Reasons are mandatory for the first three: an annotation is a reviewed
// claim, and the reason is the review note the next reader audits.
const (
	dirIgnore         = "ignore"
	dirOrderInvariant = "orderinvariant"
	dirAllocSetup     = "allocsetup"
	dirAllocFree      = "allocfree"
)

// fileDirectives indexes one file's //lotus: annotations by the source line
// they govern.
type fileDirectives struct {
	// ignore[line][analyzer] = reason
	ignore map[int]map[string]string
	// orderinvariant[line] / allocsetup[line] = reason
	orderinvariant map[int]string
	allocsetup     map[int]string
	// malformed directives are themselves diagnostics (analyzer "directive")
	malformed []Diagnostic
}

func (d *fileDirectives) ignoredAt(line int, analyzer string) bool {
	if d == nil {
		return false
	}
	_, ok := d.ignore[line][analyzer]
	return ok
}

// parseDirectives scans a file's comments for //lotus: annotations. src is
// the file's raw bytes, used to decide whether a comment trails code on its
// line (governs that line) or stands alone (governs the next line).
func parseDirectives(fset *token.FileSet, file *ast.File, src []byte) *fileDirectives {
	d := &fileDirectives{
		ignore:         make(map[int]map[string]string),
		orderinvariant: make(map[int]string),
		allocsetup:     make(map[int]string),
	}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			body, ok := strings.CutPrefix(c.Text, "//lotus:")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			verb, rest, _ := strings.Cut(strings.TrimSpace(body), " ")
			rest = strings.TrimSpace(rest)
			line := pos.Line
			if standalone(src, fset, c.Pos()) {
				line = pos.Line + 1
			}
			switch verb {
			case dirIgnore:
				analyzer, reason, _ := strings.Cut(rest, " ")
				if analyzer == "" || strings.TrimSpace(reason) == "" {
					d.badDirective(pos, "//lotus:ignore needs an analyzer and a reason: //lotus:ignore <analyzer> <reason>")
					continue
				}
				if d.ignore[line] == nil {
					d.ignore[line] = make(map[string]string)
				}
				d.ignore[line][analyzer] = strings.TrimSpace(reason)
			case dirOrderInvariant:
				if rest == "" {
					d.badDirective(pos, "//lotus:orderinvariant needs a reason explaining why iteration order cannot reach an observation")
					continue
				}
				d.orderinvariant[line] = rest
			case dirAllocSetup:
				if rest == "" {
					d.badDirective(pos, "//lotus:allocsetup needs a reason (what is being set up, why it is off the steady-state path)")
					continue
				}
				d.allocsetup[line] = rest
			case dirAllocFree:
				// Consumed by the allocfree analyzer straight off func docs;
				// nothing to index here.
			default:
				d.badDirective(pos, "unknown directive //lotus:"+verb)
			}
		}
	}
	return d
}

func (d *fileDirectives) badDirective(pos token.Position, msg string) {
	d.malformed = append(d.malformed, Diagnostic{
		Analyzer: "directive",
		Pos:      pos,
		Message:  msg,
	})
}

// standalone reports whether the comment at pos is the first non-blank text
// on its line (so the directive governs the following line, not this one).
func standalone(src []byte, fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	off := p.Offset
	for off > 0 && src[off-1] != '\n' {
		c := src[off-1]
		if c != ' ' && c != '\t' {
			return false
		}
		off--
	}
	return true
}

// docHasDirective reports whether a declaration's doc comment carries the
// given //lotus: directive (e.g. allocfree on a func).
func docHasDirective(doc *ast.CommentGroup, verb string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		body, ok := strings.CutPrefix(c.Text, "//lotus:")
		if !ok {
			continue
		}
		got, _, _ := strings.Cut(strings.TrimSpace(body), " ")
		if got == verb {
			return true
		}
	}
	return false
}
