package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RNGShard enforces the PR 3/6 in-replicate parallelism rule: a
// *simrng.Source is a sequential stream, so a sim.ParallelFor body must not
// consume one — shard execution order is nondeterministic, so the draws
// would be too. RNG-consuming passes stay sequential; parallel passes work
// on pre-drawn state. (Deriving per-shard children inside the body still
// reads the captured parent and is flagged: derive the children before the
// fan-out instead.) Applies module-wide — the rule is about the API, not a
// package list.
var RNGShard = &Analyzer{
	Name: "rngshard",
	Doc: "forbid capturing a *simrng.Source in a sim.ParallelFor body closure; " +
		"RNG-consuming passes stay sequential",
	Run: runRNGShard,
}

func runRNGShard(pass *Pass) {
	info := pass.Pkg.Info
	simPath := pass.Mod.Path + "/internal/sim"
	rngPath := pass.Mod.Path + "/internal/simrng"
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var callee types.Object
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.SelectorExpr:
				callee = info.Uses[fun.Sel]
			case *ast.Ident:
				callee = info.Uses[fun]
			}
			fn, ok := callee.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != simPath || fn.Name() != "ParallelFor" {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					checkShardBody(pass, lit, rngPath)
				}
			}
			return true
		})
	}
}

// checkShardBody flags every expression of type *simrng.Source inside the
// shard closure whose root is declared outside it.
func checkShardBody(pass *Pass, lit *ast.FuncLit, rngPath string) {
	info := pass.Pkg.Info
	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos, what string) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		pass.Reportf(pos,
			"%s reaches a *simrng.Source from inside a sim.ParallelFor shard body: shard scheduling order would order the draws, breaking bit-identity across worker counts — draw (or derive per-shard children) before the fan-out and keep RNG-consuming passes sequential", what)
	}
	// Sel idents of selector expressions are handled by their parent
	// selector; the plain-ident check must skip them or a safe field access
	// would double-report against the field's (outside) declaration site.
	selSels := make(map[*ast.Ident]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			selSels[sel.Sel] = true
		}
		return true
	})
	declaredInside := func(obj types.Object) bool {
		return obj != nil && lit.Pos() <= obj.Pos() && obj.Pos() < lit.End()
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.Ident:
			if selSels[e] || !isSourcePtr(info.TypeOf(e), rngPath) {
				return true
			}
			obj := info.Uses[e]
			if obj == nil {
				obj = info.Defs[e]
			}
			if obj != nil && !declaredInside(obj) {
				report(e.Pos(), e.Name)
			}
		case *ast.SelectorExpr:
			if !isSourcePtr(info.TypeOf(e), rngPath) {
				return true
			}
			root := rootIdent(e.X)
			if root == nil {
				// Source produced by a call or index chain we cannot root;
				// conservatively flag — a true per-shard source would be
				// held in a shard-local variable.
				report(e.Pos(), renderExpr(e))
				return true
			}
			obj := info.Uses[root]
			if obj == nil {
				obj = info.Defs[root]
			}
			if obj != nil && !declaredInside(obj) {
				report(e.Pos(), renderExpr(e))
			}
		}
		return true
	})
}

// isSourcePtr reports whether t is *simrng.Source.
func isSourcePtr(t types.Type, rngPath string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Source" && obj.Pkg() != nil && obj.Pkg().Path() == rngPath
}

// rootIdent walks a selector/index chain down to its base identifier, or
// nil when the base is not an identifier (a call result, a literal, ...).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// renderExpr prints a short source-ish form of a selector chain for
// messages (s.rng, e.state.src, ...).
func renderExpr(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return renderExpr(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return renderExpr(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + renderExpr(x.X)
	case *ast.CallExpr:
		return renderExpr(x.Fun) + "(...)"
	default:
		return "expression"
	}
}
