package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestParseDirectives pins the two targeting rules (a trailing directive
// governs its own line, a standalone one governs the next line) and the
// mandatory-reason contract: a reasonless ignore/orderinvariant/allocsetup,
// or an unknown verb, is itself a "directive" diagnostic.
func TestParseDirectives(t *testing.T) {
	const src = `package p

func f() {
	x := 1 //lotus:ignore detrand because the test says so
	//lotus:orderinvariant commutative fold
	y := 2
	//lotus:allocsetup pool growth on first use
	z := 3
	//lotus:ignore maprange
	//lotus:orderinvariant
	//lotus:allocsetup
	//lotus:frobnicate huh
	_, _, _ = x, y, z
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	d := parseDirectives(fset, file, []byte(src))

	if !d.ignoredAt(4, "detrand") {
		t.Error("trailing ignore should govern its own line (4)")
	}
	if d.ignoredAt(5, "detrand") || d.ignoredAt(4, "maprange") {
		t.Error("ignore leaked to another line or analyzer")
	}
	if got := d.orderinvariant[6]; got != "commutative fold" {
		t.Errorf("standalone orderinvariant should govern the next line (6); got %q", got)
	}
	if got := d.allocsetup[8]; got != "pool growth on first use" {
		t.Errorf("standalone allocsetup should govern the next line (8); got %q", got)
	}

	if len(d.malformed) != 4 {
		t.Fatalf("malformed = %d directives, want 4: %v", len(d.malformed), d.malformed)
	}
	for _, bad := range d.malformed {
		if bad.Analyzer != "directive" {
			t.Errorf("malformed directive attributed to %q, want \"directive\"", bad.Analyzer)
		}
	}
	if !strings.Contains(d.malformed[3].Message, "unknown directive //lotus:frobnicate") {
		t.Errorf("unknown-verb message = %q", d.malformed[3].Message)
	}
	// A reasonless ignore must not silence anything.
	if d.ignoredAt(9, "maprange") || d.ignoredAt(10, "maprange") {
		t.Error("reasonless ignore must not suppress")
	}
}

func TestDocHasDirective(t *testing.T) {
	const src = `package p

// G does a thing.
//
//lotus:allocfree
func G() {}

// H does another thing.
func H() {}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	g := file.Decls[0].(*ast.FuncDecl)
	h := file.Decls[1].(*ast.FuncDecl)
	if !docHasDirective(g.Doc, dirAllocFree) {
		t.Error("G's doc carries //lotus:allocfree (after a prose line and a blank separator)")
	}
	if docHasDirective(h.Doc, dirAllocFree) {
		t.Error("H's doc does not carry //lotus:allocfree")
	}
	if docHasDirective(g.Doc, dirOrderInvariant) {
		t.Error("docHasDirective must match the exact verb")
	}
}
