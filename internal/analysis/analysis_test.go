package analysis

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches a golden expectation: // want `regexp`
var wantRe = regexp.MustCompile("// want `([^`]+)`")

// TestAnalyzerGolden runs the full suite over each analyzer's testdata
// package and matches the reported diagnostics against the // want
// expectations embedded in the sources, line by line: every want must be
// matched by exactly one diagnostic on its line, and every line without a
// want must stay silent (this is what pins the annotated-safe false-positive
// cases). Suppression counts pin the //lotus:ignore paths.
func TestAnalyzerGolden(t *testing.T) {
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name           string
		analyzer       string // the analyzer this package exercises
		wantSuppressed int    // //lotus:ignore hits expected in the package
	}{
		{"detrand_a", "detrand", 2},
		{"maprange_a", "maprange", 1},
		{"rngshard_a", "rngshard", 1},
		{"allocfree_a", "allocfree", 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			importPath := mod.Path + "/internal/analysis/testdata/src/" + tc.name
			pkg, err := mod.LoadDir(filepath.Join("testdata", "src", tc.name), importPath)
			if err != nil {
				t.Fatal(err)
			}
			// The testdata package plays a simulation package so that
			// detrand/maprange are in scope for it.
			cfg := &Config{SimPackages: []string{importPath}}
			res, err := RunAnalyzers(mod, []*Package{pkg}, cfg)
			if err != nil {
				t.Fatal(err)
			}

			wants := collectWants(t, mod, pkg) // file -> line -> pending regexps
			sawAnalyzer := false
			for _, d := range res.Diagnostics {
				if d.Analyzer == tc.analyzer {
					sawAnalyzer = true
				}
				ws := wants[d.File][d.Line]
				matched := -1
				for i, w := range ws {
					if w != nil && w.MatchString(d.Message) {
						matched = i
						break
					}
				}
				if matched < 0 {
					t.Errorf("unexpected diagnostic %s", d)
					continue
				}
				ws[matched] = nil // each want matches exactly one diagnostic
			}
			for file, lines := range wants {
				for line, ws := range lines {
					for _, w := range ws {
						if w != nil {
							t.Errorf("%s:%d: no diagnostic matched want %q", file, line, w)
						}
					}
				}
			}
			if !sawAnalyzer {
				t.Errorf("no %s diagnostics reported; lotus-lint would exit zero on this testdata", tc.analyzer)
			}
			if res.Suppressed != tc.wantSuppressed {
				t.Errorf("suppressed = %d, want %d", res.Suppressed, tc.wantSuppressed)
			}
		})
	}
}

// collectWants scans a package's raw sources for // want expectations, keyed
// the way diagnostics render file paths (slash-relative to the module root).
func collectWants(t *testing.T, mod *Module, pkg *Package) map[string]map[int][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string]map[int][]*regexp.Regexp)
	for _, f := range pkg.Files {
		filename := mod.Fset.Position(f.FileStart).Filename
		rel, err := filepath.Rel(mod.Root, filename)
		if err != nil {
			t.Fatal(err)
		}
		key := filepath.ToSlash(rel)
		for i, text := range strings.Split(string(mod.Source(filename)), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", key, i+1, m[1], err)
				}
				if wants[key] == nil {
					wants[key] = make(map[int][]*regexp.Regexp)
				}
				wants[key][i+1] = append(wants[key][i+1], re)
			}
		}
	}
	return wants
}
