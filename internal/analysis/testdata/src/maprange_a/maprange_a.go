// Package maprange_a exercises the maprange analyzer: raw map iteration is
// a violation, annotated order-invariant sites and non-map ranges are not.
package maprange_a

type bag map[string]int

func Bad(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map`
		total += v
	}
	return total
}

func BadNamedMapType(b bag) int {
	total := 0
	for _, v := range b { // want `range over map`
		total += v
	}
	return total
}

func OkAnnotatedTrailing(m map[string]int) int {
	total := 0
	for _, v := range m { //lotus:orderinvariant summing ints is commutative, order cannot reach the result
		total += v
	}
	return total
}

func OkAnnotatedStandalone(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//lotus:orderinvariant collecting keys for the caller to sort
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func OkGenericIgnore(m map[string]int) int {
	total := 0
	for _, v := range m { //lotus:ignore maprange testdata exercises the generic suppression on a map range
		total += v
	}
	return total
}

func OkSliceAndChannel(xs []int, ch chan int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	for v := range ch {
		total += v
	}
	return total
}
