// Package rngshard_a exercises the rngshard analyzer: a *simrng.Source
// declared outside a sim.ParallelFor shard closure must not be reached from
// inside it, whether through a plain identifier, a struct field, or a child
// derivation. Pre-drawn state and suppressed sites are fine.
package rngshard_a

import (
	"lotuseater/internal/sim"
	"lotuseater/internal/simrng"
)

type state struct {
	rng *simrng.Source
	out []float64
}

func Bad(n int, rng *simrng.Source, out []float64) {
	sim.ParallelFor(n, 64, func(shard, start, end int) {
		for i := start; i < end; i++ {
			out[i] = rng.Float64() // want `rng reaches a \*simrng\.Source`
		}
	})
}

func BadField(n int, s *state) {
	sim.ParallelFor(n, 64, func(shard, start, end int) {
		for i := start; i < end; i++ {
			s.out[i] = s.rng.Float64() // want `s\.rng reaches a \*simrng\.Source`
		}
	})
}

func BadChildDerivation(n int, rng *simrng.Source, out []float64) {
	sim.ParallelFor(n, 64, func(shard, start, end int) {
		local := rng.ChildN("shard", shard) // want `rng reaches a \*simrng\.Source`
		for i := start; i < end; i++ {
			out[i] = local.Float64()
		}
	})
}

func OkPreDrawn(n int, rng *simrng.Source, out []float64) {
	draws := make([]float64, n)
	for i := range draws {
		draws[i] = rng.Float64()
	}
	sim.ParallelFor(n, 64, func(shard, start, end int) {
		for i := start; i < end; i++ {
			out[i] = 2 * draws[i]
		}
	})
}

func OkShardLocalSource(n int, seeds []uint64, out []float64) {
	// A source built inside the closure from shard-indexed immutable state
	// is deterministic regardless of scheduling order.
	sim.ParallelFor(n, 64, func(shard, start, end int) {
		local := simrng.New(seeds[shard])
		for i := start; i < end; i++ {
			out[i] = local.Float64()
		}
	})
}

func OkSuppressed(n int, rng *simrng.Source, out []float64) {
	sim.ParallelFor(n, 64, func(shard, start, end int) {
		for i := start; i < end; i++ {
			out[i] = rng.Float64() //lotus:ignore rngshard testdata exercises the suppression path
		}
	})
}
