// Package allocfree_a exercises the allocfree analyzer: inside a function
// annotated //lotus:allocfree every static allocation source is a violation
// unless its statement carries //lotus:allocsetup or the site carries
// //lotus:ignore allocfree. Unannotated functions are never inspected.
package allocfree_a

import "fmt"

type point struct{ x, y int }

type pool struct {
	buf  []int
	tags map[int]string
}

//lotus:allocfree
func Bad(p *pool, n int) string {
	p.buf = make([]int, n) // want `make allocates`
	q := new(point)        // want `new allocates`
	q.x = n
	m := map[int]int{} // want `map literal allocates`
	m[1] = 2
	s := []int{1, 2, 3}    // want `slice literal allocates`
	pt := &point{1, 2}     // want `&point\{\.\.\.\} escapes to the heap`
	var boxed any = any(n) // want `conversion to any boxes its operand`
	_, _, _ = s, pt, boxed
	return fmt.Sprintf("%d", n) // want `fmt\.Sprintf formats through reflection`
}

//lotus:allocfree
func OkSetupAndSuppression(p *pool, n int) {
	if cap(p.buf) < n {
		p.buf = make([]int, n) //lotus:allocsetup pool grows once on first use, then steady-state calls reuse it
	}
	p.buf = p.buf[:n]
	for i := range p.buf {
		p.buf[i] = i
	}
	_ = fmt.Sprint(n) //lotus:ignore allocfree testdata exercises the generic suppression
}

//lotus:allocfree
func OkAllocFreeBody(p *pool, n int) int {
	total := 0
	for _, v := range p.buf {
		total += v
	}
	p.buf = append(p.buf[:0], total) // append into pooled capacity: not flagged
	return total + n
}

func OkUnannotated(n int) *point {
	// No //lotus:allocfree annotation: allocate freely.
	_ = fmt.Sprint(n)
	return &point{x: n, y: len(make([]int, n))}
}
