// Package detrand_a exercises the detrand analyzer: wall-clock reads and
// global math/rand draws are violations, explicitly seeded local generators
// and suppressed sites are not.
package detrand_a

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func Bad() float64 {
	_ = time.Now() // want `time\.Now reads the wall clock`
	t := time.Unix(0, 0)
	_ = time.Since(t)                    // want `time\.Since reads the wall clock`
	_ = rand.Intn(3)                     // want `math/rand\.Intn draws from the process-global`
	randv2.Shuffle(1, func(i, j int) {}) // want `math/rand/v2\.Shuffle draws from the process-global`
	return randv2.Float64()              // want `math/rand/v2\.Float64 draws from the process-global`
}

func OkLocalGenerators() float64 {
	r := randv2.New(randv2.NewPCG(1, 2)) // constructors build seeded local streams: allowed
	old := rand.New(rand.NewSource(7))
	return r.Float64() + old.Float64()
}

func OkOtherTimeFuncs() time.Duration {
	// Only Now and Since read the clock; pure constructors are fine.
	return 3 * time.Duration(time.Unix(40, 0).Unix())
}

func OkSuppressed() time.Time {
	return time.Now() //lotus:ignore detrand testdata exercises the trailing suppression form
}

func OkSuppressedStandalone() time.Time {
	//lotus:ignore detrand testdata exercises the standalone suppression form
	return time.Now()
}
