package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Detrand enforces the repo's first determinism rule: inside the simulation
// packages every result is a pure function of (spec, seed), so wall-clock
// reads and the process-global random generators are banned. Randomness
// flows through a *simrng.Source (explicitly seeded, splittable); timing
// belongs to the harness layers outside the replicate boundary. Profiling
// sites that feed observability (never observations) carry a
// //lotus:ignore detrand annotation with the audit note.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc: "forbid time.Now/time.Since and global math/rand draws in simulation packages; " +
		"all randomness must come from a *simrng.Source",
	Run: runDetrand,
}

func runDetrand(pass *Pass) {
	if !pass.Cfg.IsSim(pass.Pkg.Path) {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Only package-level functions: methods run on an explicit
			// receiver the caller seeded (e.g. a *rand.Rand inside simrng).
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Now" || fn.Name() == "Since" {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock inside a simulation package; results must be a pure function of (spec, seed) — count rounds/ticks instead, or move the timing outside the replicate boundary",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				// Constructors (New, NewPCG, NewChaCha8, NewZipf, NewSource)
				// build explicitly seeded local generators and are fine;
				// everything else draws from the shared process-global
				// source, which is seeded nondeterministically.
				if !strings.HasPrefix(fn.Name(), "New") {
					pass.Reportf(sel.Pos(),
						"%s.%s draws from the process-global generator; derive a stream from a *simrng.Source (Child/ChildN) so the draw is a function of the seed",
						fn.Pkg().Path(), fn.Name())
				}
			}
			return true
		})
	}
}
