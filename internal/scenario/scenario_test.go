package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"

	"lotuseater/internal/attack"
	"lotuseater/internal/metrics"
	"lotuseater/internal/sim"
	"lotuseater/internal/simrng"
)

// TestSpecJSONRoundTrip: encode/decode must preserve a spec exactly,
// including -set overrides applied beforehand (the acceptance criterion
// that overrides round-trip through the JSON spec).
func TestSpecJSONRoundTrip(t *testing.T) {
	spec, ok := Get("x/trade-gossip")
	if !ok {
		t.Fatal("x/trade-gossip not registered")
	}
	if err := spec.ApplySets([]string{
		"adversary.fraction=0.33",
		"defense.kind=ratelimit",
		"defense.rateLimit=6",
		"params.push=7",
		"sweep.points=4",
		"replicates=9",
		"metric=honest-delivery",
		"precision.halfWidth=0.02",
		"precision.confidence=0.9",
		"precision.minReps=3",
		"precision.maxReps=12",
		"precision.batch=4",
		"precision.relative=true",
	}); err != nil {
		t.Fatal(err)
	}
	data, err := spec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(spec)
	b, _ := json.Marshal(back)
	if string(a) != string(b) {
		t.Fatalf("round trip diverged:\n%s\nvs\n%s", a, b)
	}
	if back.Adversary.Fraction != 0.33 || back.Defense.RateLimit != 6 ||
		back.Params["push"] != 7 || back.Sweep.Points != 4 ||
		back.Replicates != 9 || back.Metric != "honest-delivery" {
		t.Fatalf("overrides lost in round trip: %+v", back)
	}
	if p := back.Precision; p == nil || p.HalfWidth != 0.02 || p.Confidence != 0.9 ||
		p.MinReps != 3 || p.MaxReps != 12 || p.Batch != 4 || !p.Relative {
		t.Fatalf("precision overrides lost in round trip: %+v", back.Precision)
	}
}

// TestSpecSetErrors: malformed overrides fail loudly, and so does an
// unknown key.
func TestSpecSetErrors(t *testing.T) {
	spec, _ := Get("x/trade-gossip")
	for _, bad := range []string{
		"nonsense",              // not key=value
		"mystery.knob=1",        // unknown key
		"adversary.fraction=no", // not a number
		"sweep.points=1.5",      // not an integer
	} {
		if err := spec.ApplySets([]string{bad}); err == nil {
			t.Fatalf("override %q accepted", bad)
		}
	}
	if err := spec.ApplySets([]string{"adversary.kind=imaginary"}); err == nil {
		t.Fatal("unknown adversary kind accepted")
	}
	if err := spec.ApplySets([]string{"metric=not-a-metric"}); err == nil {
		t.Fatal("unknown metric accepted")
	}
	for _, bad := range []string{
		"precision.halfWidth=-0.5", // negative target
		"precision.halfWidth=inf",  // non-finite target
		"precision.confidence=1",   // certainty is not a CI
		"precision.relative=maybe", // not a boolean
		"precision.minReps=1.5",    // not an integer
	} {
		spec, _ := Get("x/trade-gossip")
		if err := spec.ApplySets([]string{bad}); err == nil {
			t.Fatalf("precision override %q accepted", bad)
		}
	}
	// MinReps > MaxReps is rejected at validation, wherever the two come
	// from.
	spec, _ = Get("x/trade-gossip")
	if err := spec.ApplySets([]string{"precision.halfWidth=0.1", "precision.minReps=9", "precision.maxReps=3"}); err == nil {
		t.Fatal("inverted precision budget accepted")
	}
}

// TestRegistryCrossProduct: every attack kind must be registered against
// every substrate, defended and undefended — the attack x substrate x
// defense grid of the tentpole.
func TestRegistryCrossProduct(t *testing.T) {
	kinds := []string{"none", "crash", "ideal", "trade"}
	for _, substrate := range Substrates {
		for _, kind := range kinds {
			for _, suffix := range []string{"", "+ratelimit"} {
				name := fmt.Sprintf("x/%s-%s%s", kind, substrate, suffix)
				spec, ok := Get(name)
				if !ok {
					t.Fatalf("cross-product scenario %q missing", name)
				}
				if spec.Substrate != substrate || spec.Adversary.Kind != kind {
					t.Fatalf("%q mislabeled: %+v", name, spec)
				}
			}
		}
	}
}

// TestCrossSubstrateDeterminism is the acceptance table test: every
// attack.Kind runs against gossip, token, swarm (and the other two), and
// each run is bit-identical across worker counts.
func TestCrossSubstrateDeterminism(t *testing.T) {
	kinds := []attack.Kind{attack.None, attack.Crash, attack.Ideal, attack.Trade}
	substratesUnder := map[string][]string{
		"none":  {"gossip", "token", "swarm", "scrip", "coding"},
		"crash": {"gossip", "token", "swarm", "scrip", "coding"},
		"ideal": {"gossip", "token", "swarm", "scrip", "coding"},
		"trade": {"gossip", "token", "swarm", "scrip", "coding"},
	}
	for _, kind := range kinds {
		for _, substrate := range substratesUnder[kind.String()] {
			t.Run(kind.String()+"/"+substrate, func(t *testing.T) {
				spec, ok := Get(fmt.Sprintf("x/%s-%s", kind, substrate))
				if !ok {
					t.Fatalf("scenario missing")
				}
				// Shrink for test runtime; keep the attack meaningful.
				opts := RunOptions{Points: 2, Replicates: 2}
				if substrate == "scrip" {
					spec.Rounds = 1500
				}
				serial, err := Run(spec, 7, RunOptions{Workers: 1, Points: opts.Points, Replicates: opts.Replicates})
				if err != nil {
					t.Fatal(err)
				}
				wide, err := Run(spec, 7, RunOptions{Workers: 8, Points: opts.Points, Replicates: opts.Replicates})
				if err != nil {
					t.Fatal(err)
				}
				a, err := serial.JSON()
				if err != nil {
					t.Fatal(err)
				}
				b, err := wide.JSON()
				if err != nil {
					t.Fatal(err)
				}
				if string(a) != string(b) {
					t.Fatalf("results depend on worker count:\n%s\nvs\n%s", a, b)
				}
			})
		}
	}
}

// TestBigPopulationDeterminism extends the parity table to the in-replicate
// parallel paths: at populations past the auto-sharding threshold the
// gossip planning scan and the swarm peer scoring run on sim.ParallelFor,
// and results must still be bit-identical across worker counts.
func TestBigPopulationDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("big-population sweep")
	}
	specs := []*Spec{
		{
			Name:       "par-gossip",
			Substrate:  "gossip",
			Nodes:      40_000,
			Rounds:     12,
			Replicates: 2,
			Adversary:  AdversarySpec{Kind: "ideal", Fraction: 0.02, SatiateFraction: 0.30},
			Params:     map[string]float64{"updates": 1, "lifetime": 8, "copies": 32, "warmup": 2},
		},
		{
			Name:       "par-swarm",
			Substrate:  "swarm",
			Nodes:      40_000,
			Rounds:     20,
			Replicates: 2,
			Adversary:  AdversarySpec{Kind: "ideal", Fraction: 0.01, SatiateFraction: 0.10},
			Params:     map[string]float64{"pieces": 32, "peerset": 8, "uplink": 256},
		},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			serial, err := Run(spec, 7, RunOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			wide, err := Run(spec, 7, RunOptions{Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			a, _ := serial.JSON()
			b, _ := wide.JSON()
			if string(a) != string(b) {
				t.Fatalf("results depend on worker count:\n%s\nvs\n%s", a, b)
			}
		})
	}
}

// TestHostileTargetList: a spec naming out-of-range, duplicate, or negative
// satiation targets must fail validation instead of indexing past a
// replicate's node arrays.
func TestHostileTargetList(t *testing.T) {
	base := func() *Spec {
		return &Spec{
			Name:      "hostile",
			Substrate: "token",
			Nodes:     50,
			Rounds:    5,
			Adversary: AdversarySpec{Kind: "ideal", Fraction: 0.1},
		}
	}
	for name, targets := range map[string][]int{
		"out-of-range": {3, 1_000_000_000},
		"negative":     {-3, 4},
		"duplicate":    {5, 9, 5},
	} {
		spec := base()
		spec.Adversary.Targets = targets
		if err := spec.Validate(); err == nil {
			t.Fatalf("%s target list accepted: %v", name, targets)
		}
		if _, err := Run(spec, 1, RunOptions{}); err == nil {
			t.Fatalf("%s target list ran: %v", name, targets)
		}
	}

	// A valid list must run, satiating exactly the named nodes, and must
	// round-trip through -set overrides and JSON.
	spec := base()
	if err := spec.ApplySets([]string{"adversary.targets=3,7,11"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, 1, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	data, err := spec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Adversary.Targets) != 3 || back.Adversary.Targets[2] != 11 {
		t.Fatalf("targets lost in round trip: %+v", back.Adversary)
	}
	// Ids beyond a pinned population are rejected even via overrides.
	if err := spec.ApplySets([]string{"adversary.targets=60"}); err == nil {
		t.Fatal("override with out-of-population target accepted")
	}
}

// TestAttacksBite: sanity on the physics — with heavy attacker presence
// (45%, past the paper's ~42% crash crossover), crash, ideal, and trade all
// measurably hurt the gossip and token substrates relative to the no-attack
// baseline.
func TestAttacksBite(t *testing.T) {
	for _, substrate := range []string{"gossip", "token"} {
		base := baselineMetric(t, substrate, "none")
		for _, kind := range []string{"crash", "ideal", "trade"} {
			hurt := baselineMetric(t, substrate, kind)
			if hurt >= base-0.01 {
				t.Fatalf("%s attack on %s did nothing: %.4f vs baseline %.4f", kind, substrate, hurt, base)
			}
		}
	}
}

func baselineMetric(t *testing.T, substrate, kind string) float64 {
	t.Helper()
	spec, ok := Get(fmt.Sprintf("x/%s-%s", kind, substrate))
	if !ok {
		t.Fatalf("x/%s-%s missing", kind, substrate)
	}
	spec.Sweep = SweepSpec{} // single point
	spec.Adversary.Fraction = 0.45
	a, err := Run(spec, 11, RunOptions{Replicates: 3})
	if err != nil {
		t.Fatal(err)
	}
	return a.Series[0].Points[0].Y
}

// TestDefenseHelps: the rate-limit defense must improve the token
// substrate's organic completion under an ideal attack (the satiation
// payload is throttled to a trickle).
func TestDefenseHelps(t *testing.T) {
	run := func(name string) float64 {
		spec, ok := Get(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		spec.Sweep = SweepSpec{}
		spec.Adversary.Fraction = 0.2
		a, err := Run(spec, 3, RunOptions{Replicates: 3})
		if err != nil {
			t.Fatal(err)
		}
		return a.Series[0].Points[0].Y
	}
	undefended := run("x/ideal-token")
	defended := run("x/ideal-token+ratelimit")
	if defended <= undefended {
		t.Fatalf("rate limit did not help: defended %.4f vs undefended %.4f", defended, undefended)
	}
}

// TestStreamingMatchesBuffered is the 10k-replicate acceptance test: a run
// folded through the streaming path must produce the same mean and variance
// as buffering every replicate, without materializing them.
func TestStreamingMatchesBuffered(t *testing.T) {
	const replicates = 10000
	spec := &Spec{
		Name:       "parity",
		Substrate:  "token",
		Nodes:      24,
		Rounds:     6,
		Adversary:  AdversarySpec{Kind: "trade", Fraction: 0.2, SatiateFraction: 0.5},
		Params:     map[string]float64{"tokens": 6},
		Replicates: replicates,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	b := sub(spec.Substrate)

	// Buffered reference: materialize every snapshot, then reduce. Run
	// seeds the replicate streams directly from the run seed (common random
	// numbers across sweep points), so the reference does the same.
	snaps, err := sim.Runner{}.Replicates(42, replicates,
		func(rep int, rng *simrng.Source, ws *sim.Workspace) (sim.Model, error) {
			adv, err := spec.Adversary.Strategy()
			if err != nil {
				return nil, err
			}
			return b.build(spec, rng, ws, adv, nil)
		})
	if err != nil {
		t.Fatal(err)
	}
	ys := make([]float64, len(snaps))
	for i, snap := range snaps {
		y, err := b.metric(spec, snap)
		if err != nil {
			t.Fatal(err)
		}
		ys[i] = y
	}

	// Streaming path: the scenario engine itself.
	a, err := Run(spec, 42, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]*metrics.Series{}
	for _, s := range a.Series {
		series[s.Name] = s
	}
	if got, want := series["mean"].Points[0].Y, metrics.Mean(ys); got != want {
		t.Fatalf("streaming mean %v != buffered mean %v", got, want)
	}
	wantStd := metrics.StdDev(ys)
	if got := series["stddev"].Points[0].Y; gotAbs(got-wantStd) > 1e-9 {
		t.Fatalf("streaming stddev %v != buffered %v", got, wantStd)
	}
	if got, want := series["min"].Points[0].Y, metrics.Min(ys); got != want {
		t.Fatalf("streaming min %v != buffered %v", got, want)
	}
	if got, want := series["max"].Points[0].Y, metrics.Max(ys); got != want {
		t.Fatalf("streaming max %v != buffered %v", got, want)
	}
}

func gotAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestOverrideReplicates: an explicit replicate override must win over an
// inert precision block (whose maxReps is just another spelling of the
// fixed count), and stay dead under an active plan.
func TestOverrideReplicates(t *testing.T) {
	spec := &Spec{Name: "o", Substrate: "gossip", Precision: &PrecisionSpec{MaxReps: 24}}
	spec.OverrideReplicates(50)
	if spec.Precision != nil {
		t.Fatal("inert precision block survived a replicates override")
	}
	if got := TotalReplicates(spec, RunOptions{}); got != 50 {
		t.Fatalf("override shadowed: total %d, want 50", got)
	}
	active := &Spec{Name: "o", Substrate: "gossip", Precision: &PrecisionSpec{HalfWidth: 0.01, MaxReps: 24}}
	active.OverrideReplicates(50)
	if active.Precision == nil {
		t.Fatal("active plan displaced by a replicates override")
	}
	if got := TotalReplicates(active, RunOptions{}); got != 24 {
		t.Fatalf("active plan cap %d, want maxReps 24", got)
	}
}

// TestAdaptiveRunStopsEarly: an adaptive sweep spends its budget where the
// variance is — at least one point resolves below the cap — while the
// progress stream reports a monotone non-increasing total that converges
// on the replicates actually run, and the per-point readout stays sane.
func TestAdaptiveRunStopsEarly(t *testing.T) {
	spec := &Spec{
		Name:      "adaptive-stop",
		Substrate: "token",
		Nodes:     48,
		Rounds:    30,
		Adversary: AdversarySpec{Kind: "trade", SatiateFraction: 0.6},
		Sweep:     SweepSpec{Axis: "adversary.fraction", From: 0, To: 0.4, Points: 3},
		Precision: &PrecisionSpec{HalfWidth: 0.02, MinReps: 2, MaxReps: 16, Batch: 2},
		Params:    map[string]float64{"tokens": 8},
	}
	var dones, totals []int
	var waves int
	lastReps := map[int]int{}
	a, err := Run(spec, 5, RunOptions{
		Progress: func(done, total int) {
			if n := len(dones); n > 0 && (done < dones[n-1] || total > totals[n-1]) {
				t.Fatalf("progress regressed: (%d,%d) after (%d,%d)", done, total, dones[n-1], totals[n-1])
			}
			dones = append(dones, done)
			totals = append(totals, total)
		},
		PointProgress: func(point, reps int, halfWidth float64, met bool) {
			waves++
			if reps <= lastReps[point] || halfWidth < 0 {
				t.Fatalf("point %d wave readout regressed: reps %d after %d (hw %g)", point, reps, lastReps[point], halfWidth)
			}
			lastReps[point] = reps
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if totals[0] != 3*16 {
		t.Fatalf("initial total %d, want the points x maxReps cap %d", totals[0], 3*16)
	}
	last := len(dones) - 1
	if dones[last] != totals[last] {
		t.Fatalf("final progress (%d,%d) did not converge", dones[last], totals[last])
	}
	if waves == 0 {
		t.Fatal("PointProgress never fired")
	}

	series := map[string]*metrics.Series{}
	for _, s := range a.Series {
		series[s.Name] = s
	}
	reps, hw := series["reps"], series["ci-halfwidth"]
	if reps == nil || hw == nil {
		t.Fatalf("adaptive artifact missing reps/ci-halfwidth series: %v", a.Series)
	}
	total, early := 0, false
	for i, p := range reps.Points {
		r := int(p.Y)
		if r < 2 || r > 16 {
			t.Fatalf("point %d ran %d replicates, outside [2,16]", i, r)
		}
		if r < 16 {
			early = true
			// A point that stopped early must have met its target.
			if hw.Points[i].Y > 0.02 {
				t.Fatalf("point %d stopped at %d reps with half-width %g above target", i, r, hw.Points[i].Y)
			}
		}
		total += r
	}
	if !early {
		t.Fatal("no sweep point stopped before the 16-replicate cap")
	}
	if dones[last] != total {
		t.Fatalf("progress counted %d replicates, reps series says %d", dones[last], total)
	}
	// The x=0 point has no attacker: with common random numbers its
	// replicates are as quiet as the substrate gets, so the budget must not
	// be spent there.
	if int(reps.Points[0].Y) != 2 {
		t.Fatalf("no-attack baseline point ran %g replicates, want the 2-rep minimum", reps.Points[0].Y)
	}
}

// TestRunUnknowns: bad specs fail with actionable errors.
func TestRunUnknowns(t *testing.T) {
	if _, err := Run(&Spec{Name: "x", Substrate: "mainframe"}, 1, RunOptions{}); err == nil ||
		!strings.Contains(err.Error(), "substrate") {
		t.Fatalf("bad substrate error: %v", err)
	}
	if _, err := Run(&Spec{Name: "x", Substrate: "gossip", Sweep: SweepSpec{Axis: "sideways"}}, 1, RunOptions{}); err == nil ||
		!strings.Contains(err.Error(), "axis") {
		t.Fatalf("bad axis error: %v", err)
	}
}

// TestCannedScenariosRun: every registered scenario must at least run at a
// tiny quality — the registry stays executable as it grows.
func TestCannedScenariosRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep")
	}
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			if spec.Substrate == "scrip" {
				spec.Rounds = 1200
			}
			// Big-N entries (gossip-1m, swarm-1m) are data like any other:
			// validate they run, but at a test-sized population. `make
			// bench` exercises them at full width.
			if spec.Nodes > 10_000 {
				spec.Nodes = 2000
			}
			// Adaptive entries: validate the wave path, not the budget —
			// two replicates per point keeps the sweep test-sized.
			if spec.Precision != nil {
				spec.Precision.MinReps, spec.Precision.MaxReps = 2, 2
			}
			if _, err := Run(spec, 1, RunOptions{Points: 2, Replicates: 1}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestValidateErrorDeterministic: Validate reports the *first* problem, so
// with several non-finite values present the winner — and therefore the
// error text — must not depend on map iteration order. Before the
// sorted-keys fix, the finiteness sweep ranged over a map and this test
// flaked across runs; it pins the regression lotus-lint's maprange rule now
// catches statically.
func TestValidateErrorDeterministic(t *testing.T) {
	nan := math.NaN()
	makeSpec := func() *Spec {
		return &Spec{
			Name:      "nondet-probe",
			Substrate: "gossip",
			Params:    map[string]float64{"zeta": nan, "alpha": nan, "mid": nan, "beta": nan},
		}
	}
	const want = "scenario: params.alpha must be finite, got NaN"
	for i := 0; i < 100; i++ {
		err := makeSpec().Validate()
		if err == nil {
			t.Fatal("expected a validation error")
		}
		if err.Error() != want {
			t.Fatalf("iteration %d: error text changed: got %q, want %q", i, err, want)
		}
	}
	// Fixed (non-map) fields win over params, in declaration order.
	s := makeSpec()
	s.Sweep.From = math.Inf(1)
	s.Sweep.To = nan
	if got := s.Validate().Error(); got != "scenario: sweep.from must be finite, got +Inf" {
		t.Fatalf("fixed-field order not deterministic: %q", got)
	}
}
