package scenario

import (
	"fmt"

	"lotuseater/internal/adaptive"
	"lotuseater/internal/metrics"
	"lotuseater/internal/sim"
	"lotuseater/internal/simrng"
	"lotuseater/internal/sweep"
)

// This file is the execution surface shared by Run (one process) and the
// cluster coordinator/workers (internal/cluster): the resolved execution
// shape of a spec (ExecPlan), per-point spec resolution (PointSpec), window
// execution (FoldWindow), and artifact assembly (Assemble). A distributed
// run is Run with the middle cut out — workers execute FoldWindow over
// replicate windows, the coordinator feeds the observations into per-point
// streams in global replicate index order and Assembles — so both paths
// produce byte-identical artifacts by construction.

// ExecPlan is the resolved execution shape of a spec under Run's
// defaulting: the sweep points, the per-point replicate budget, and the
// adaptive precision plan when one is active. Two processes that resolve
// the same spec get the same ExecPlan, which is what lets a coordinator
// name a unit of work as bare (point index, replicate window) integers.
type ExecPlan struct {
	// Replicates is the fixed per-point replicate count. Under an active
	// precision plan it is dead — Plan.MinReps/MaxReps govern instead.
	Replicates int
	// Xs are the sweep x values, in point order ([0] alone without an
	// axis).
	Xs []float64
	// XLabel names the swept knob ("x" without an axis).
	XLabel string
	// Adaptive reports whether a precision plan is active.
	Adaptive bool
	// Plan is the resolved adaptive plan when Adaptive.
	Plan adaptive.Plan
}

// PlanOf resolves the spec and options into the execution shape Run uses —
// the same defaulting, so a remote executor that calls PlanOf on the
// spec's canonical form sees exactly the points and budgets the submitting
// node computed.
func PlanOf(spec *Spec, opts RunOptions) ExecPlan {
	replicates, points := resolveCounts(spec, opts)
	ep := ExecPlan{Replicates: replicates, Xs: []float64{0}, XLabel: "x"}
	if spec.Sweep.Axis != "" {
		ep.Xs = sweep.Range(spec.Sweep.From, spec.Sweep.To, points)
		ep.XLabel = spec.Sweep.Axis
	}
	if pl, ok := spec.activePlan(); ok {
		ep.Adaptive = true
		ep.Plan = pl
	}
	return ep
}

// PointBudget returns the replicate budget of one sweep point: the fixed
// count, or the adaptive plan's MaxReps cap.
func (ep ExecPlan) PointBudget() int {
	if ep.Adaptive {
		return ep.Plan.MaxReps
	}
	return ep.Replicates
}

// FirstWave returns the opening wave size of an adaptive point — MinReps,
// floored at two so a variance estimate exists and capped at the budget —
// exactly the clamp adaptive.Fold applies. NextWave sizes the waves after
// it.
func (ep ExecPlan) FirstWave() int {
	first := ep.Plan.MinReps
	if first < 2 {
		first = 2
	}
	if first > ep.Plan.MaxReps {
		first = ep.Plan.MaxReps
	}
	return first
}

// NextWave returns the size of the wave that follows reps folded
// replicates at an adaptive point: the plan's batch, clipped to the
// remaining budget. Wave boundaries are where the stopping rule is
// consulted, so a distributed run must draw them exactly where
// adaptive.Fold would — from this function.
func (ep ExecPlan) NextWave(reps int) int {
	wave := ep.Plan.Batch
	if rest := ep.Plan.MaxReps - reps; wave > rest {
		wave = rest
	}
	return wave
}

// PointSpec resolves the spec at sweep value x: a validated deep copy with
// the swept knob applied (a plain copy when the spec has no sweep axis).
func (s *Spec) PointSpec(x float64) (*Spec, error) {
	pt := s.Clone()
	if s.Sweep.Axis != "" {
		if err := pt.applyAxis(x); err != nil {
			return nil, err
		}
		if err := pt.Validate(); err != nil {
			return nil, fmt.Errorf("scenario: %s at %s=%g: %w", s.Name, s.Sweep.Axis, x, err)
		}
	}
	return pt, nil
}

// buildFor compiles a resolved point spec into the per-replicate model
// constructor Run and FoldWindow hand the kernel.
func buildFor(pt *Spec, b *substrate) sim.Build {
	return func(rep int, rng *simrng.Source, ws *sim.Workspace) (sim.Model, error) {
		adv, err := pt.Adversary.Strategy()
		if err != nil {
			return nil, err
		}
		return b.build(pt, rng, ws, adv, newDefense(pt, ws))
	}
}

// FoldWindow executes replicates [start, start+n) of a resolved point spec
// (see PointSpec) and emits each replicate's metric observation, in strict
// replicate order from a single goroutine. Replicate streams are a pure
// function of (seed, global replicate index) — sim.Runner.FoldRange's
// contract — so any partition of [0, total) into windows, executed on any
// machines in any order, emits exactly the observations a single
// sequential fold would, window by window. workers bounds the window's
// in-flight replicates on the shared pool (0 = pool width); observations
// never depend on it.
func FoldWindow(pt *Spec, seed uint64, start, n, workers int, emit func(rep int, y float64)) error {
	if err := pt.Validate(); err != nil {
		return err
	}
	b := sub(pt.Substrate)
	r := sim.Runner{Workers: workers}
	return r.FoldRange(seed, start, n, buildFor(pt, b), func(rep int, snap any) error {
		y, err := b.metric(pt, snap)
		if err != nil {
			return err
		}
		emit(rep, y)
		return nil
	})
}

// PointResult is one sweep point's folded outcome: the stream fed with the
// point's observations in replicate order, and — under an adaptive plan —
// how many replicates ran and the achieved CI half-width.
type PointResult struct {
	// X is the sweep value.
	X float64
	// Stream holds the point's statistics, folded in replicate order.
	Stream *metrics.Stream
	// Reps is the replicate count an adaptive point settled at (ignored
	// for fixed runs).
	Reps int
	// HalfWidth is the achieved Student-t half-width (adaptive runs only).
	HalfWidth float64
}

// Assemble renders per-point results into the run's artifact — the exact
// assembly Run performs, split out so a distributed run that folded the
// same observations in the same per-point order produces byte-identical
// artifact bytes (and hence the same content address). results must carry
// one entry per ExecPlan sweep point, in point order.
func Assemble(spec *Spec, opts RunOptions, results []PointResult) (*metrics.Artifact, error) {
	ep := PlanOf(spec, opts)
	if len(results) != len(ep.Xs) {
		return nil, fmt.Errorf("scenario: %s: assembling %d point results, want %d", spec.Name, len(results), len(ep.Xs))
	}
	b := sub(spec.Substrate)
	if b == nil {
		return nil, fmt.Errorf("scenario: unknown substrate %q", spec.Substrate)
	}

	mean := &metrics.Series{Name: "mean"}
	std := &metrics.Series{Name: "stddev"}
	minS := &metrics.Series{Name: "min"}
	maxS := &metrics.Series{Name: "max"}
	p50 := &metrics.Series{Name: "p50"}
	var repsS, hwS *metrics.Series
	if ep.Adaptive {
		repsS = &metrics.Series{Name: "reps"}
		hwS = &metrics.Series{Name: "ci-halfwidth"}
	}
	for _, pr := range results {
		mean.Add(pr.X, pr.Stream.Acc.Mean())
		std.Add(pr.X, pr.Stream.Acc.StdDev())
		minS.Add(pr.X, pr.Stream.Acc.Min())
		maxS.Add(pr.X, pr.Stream.Acc.Max())
		p50.Add(pr.X, pr.Stream.P50.Value())
		if ep.Adaptive {
			repsS.Add(pr.X, float64(pr.Reps))
			hwS.Add(pr.X, pr.HalfWidth)
		}
	}

	metricName := spec.Metric
	if metricName == "" {
		metricName = b.defaultMetric
	}
	title := spec.Title
	if title == "" {
		title = spec.Name
	}
	headline := fmt.Sprintf("%s — %s/%s, metric %s (%d replicates/point)", title, spec.Substrate, adversaryLabel(spec), metricName, ep.Replicates)
	series := []*metrics.Series{mean, std, minS, maxS, p50}
	if ep.Adaptive {
		target := fmt.Sprintf("±%g", ep.Plan.CI.HalfWidth)
		if ep.Plan.CI.Relative {
			target = fmt.Sprintf("±%g·|mean|", ep.Plan.CI.HalfWidth)
		}
		headline = fmt.Sprintf("%s — %s/%s, metric %s (adaptive %d-%d replicates/point, CI %s @ %g%%)",
			title, spec.Substrate, adversaryLabel(spec), metricName, ep.Plan.MinReps, ep.Plan.MaxReps, target, ep.Plan.CI.Confidence*100)
		series = append(series, repsS, hwS)
	}
	return &metrics.Artifact{
		Name:   spec.Name,
		Title:  headline,
		XLabel: ep.XLabel,
		Series: series,
	}, nil
}
