package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// Canonicalization gives every Spec a single byte representation so specs
// can be content-addressed: the experiment service keys its result cache on
// the canonical form, and two requests that mean the same run — whatever
// their key order, whitespace, or spelled-out defaults — hash to the same
// key and share one cached artifact.
//
// Canonical form is the compact JSON encoding of a normalized copy of the
// spec. encoding/json already makes the bytes deterministic (struct fields
// in declaration order, map keys sorted); normalization folds the aliases
// that JSON cannot see:
//
//   - adversary.kind "" and "none" are the same attack → "none";
//   - a defense that limits nothing (kind none, or ratelimit with a zero
//     cap) is no defense → the empty DefenseSpec;
//   - a precision block that can never stop early (halfWidth 0) is a fixed
//     run of its maxReps → replicates takes the cap, precision goes nil;
//     an active block gets its defaults spelled out (confidence 0.95,
//     minReps 2, maxReps 256, batch 8) and kills the now-dead replicates
//     knob → 0;
//   - replicates <= 0 runs as 3 → 3 (fixed replication only);
//   - with no sweep axis the from/to/points knobs are dead → zero SweepSpec;
//     with an axis, points below the 2-point minimum run as 2 → 2;
//   - metric "" is the substrate default → the default's name;
//   - empty params and target lists → nil;
//   - a population block that models nothing folds away piecewise: churn
//     with zero rates and no trace → nil, a single class with no trait
//     overrides → nil (a single class *with* overrides keeps them, weight
//     normalized to 1), uniform popularity (kind uniform, or an explicit
//     numerically-uniform weight vector) → nil, and the whole block → nil
//     once all three axes folded — so a degenerate population spec caches
//     and replays byte-identically to one without the block.
//
// Canonicalization is idempotent — the canonical form of a canonical spec
// is itself — which is what makes Spec → canonical JSON → Spec → canonical
// JSON byte-identical (pinned by tests). Population and horizon defaults
// (nodes or rounds 0) live inside each substrate's build function and are
// deliberately not expanded here; a spec that spells out the default
// population is a different canonical spec, at worst one redundant cache
// entry.

// canonicalized returns a semantically equivalent copy in canonical form.
func (s *Spec) canonicalized() *Spec {
	c := s.Clone()
	if c.Adversary.Kind == "" {
		c.Adversary.Kind = "none"
	}
	if len(c.Adversary.Targets) == 0 {
		c.Adversary.Targets = nil
	}
	if !c.Defense.enabled() {
		c.Defense = DefenseSpec{}
	}
	if c.Precision != nil && !c.Precision.active() {
		// A plan that can never stop early is a fixed run of its cap.
		if c.Precision.MaxReps > 0 {
			c.Replicates = c.Precision.MaxReps
		}
		c.Precision = nil
	}
	if c.Precision != nil {
		p := plan(c.Precision).WithDefaults()
		c.Precision = &PrecisionSpec{
			HalfWidth:  p.CI.HalfWidth,
			Confidence: p.CI.Confidence,
			Relative:   p.CI.Relative,
			MinReps:    p.MinReps,
			MaxReps:    p.MaxReps,
			Batch:      p.Batch,
		}
		// Under an active plan the fixed replicate count is dead.
		c.Replicates = 0
	} else if c.Replicates <= 0 {
		c.Replicates = 3
	}
	if c.Sweep.Axis == "" {
		c.Sweep = SweepSpec{}
	} else if c.Sweep.Points < 2 {
		c.Sweep.Points = 2
	}
	if c.Metric == "" {
		if b := sub(c.Substrate); b != nil {
			c.Metric = b.defaultMetric
		}
	}
	if len(c.Params) == 0 {
		c.Params = nil
	}
	c.Population = c.Population.canonicalized()
	return c
}

// CanonicalJSON encodes the spec in canonical form: compact JSON of the
// normalized spec, deterministic byte for byte. Decoding the result and
// canonicalizing again reproduces the same bytes.
func (s *Spec) CanonicalJSON() ([]byte, error) {
	return json.Marshal(s.canonicalized())
}

// Hash returns the spec's stable content hash, "sha256:<hex>" of its
// canonical JSON. Key-order and whitespace variants of the same spec, and
// specs that differ only in spelled-out defaults, hash identically.
func (s *Spec) Hash() (string, error) {
	data, err := s.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}
