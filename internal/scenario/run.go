package scenario

import (
	"fmt"

	"lotuseater/internal/metrics"
	"lotuseater/internal/sim"
	"lotuseater/internal/simrng"
	"lotuseater/internal/sweep"
)

// RunOptions tunes a scenario run without touching the spec.
type RunOptions struct {
	// Workers bounds the run's in-flight replicates on the shared pool
	// (0 = pool width). Results never depend on it.
	Workers int
	// Replicates overrides the spec's replicate count when positive.
	Replicates int
	// Points overrides the sweep's point count when positive.
	Points int
	// Progress, when non-nil, is called after each replicate folds with the
	// number completed so far across all sweep points and the run's total
	// (points x replicates). Calls arrive in order from a single goroutine.
	// Results never depend on it.
	Progress func(done, total int)
}

// resolveCounts applies Run's defaulting to the spec and options: the
// replicates folded per sweep point (overridden when positive, 3 when
// unset) and the number of sweep points (1 without an axis, at least 2
// with one).
func resolveCounts(spec *Spec, opts RunOptions) (replicates, points int) {
	replicates = spec.Replicates
	if opts.Replicates > 0 {
		replicates = opts.Replicates
	}
	if replicates <= 0 {
		replicates = 3
	}
	points = 1
	if spec.Sweep.Axis != "" {
		points = spec.Sweep.Points
		if opts.Points > 0 {
			points = opts.Points
		}
		if points < 2 {
			points = 2
		}
	}
	return replicates, points
}

// TotalReplicates returns how many replicates a run of spec will fold in
// total — sweep points times replicates per point, after the same
// defaulting Run applies — which is the total a RunOptions.Progress
// callback will report against.
func TotalReplicates(spec *Spec, opts RunOptions) int {
	replicates, points := resolveCounts(spec, opts)
	return points * replicates
}

// Run executes the scenario and returns its artifact: one series per
// summary statistic (mean, stddev, min, max, p50) of the spec's metric
// across the sweep axis. Replicates fold into streaming accumulators in
// replicate order — nothing per-replicate is materialized, and the result
// is bit-identical for any worker count.
func Run(spec *Spec, seed uint64, opts RunOptions) (*metrics.Artifact, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	replicates, points := resolveCounts(spec, opts)
	xs := []float64{0}
	xLabel := "x"
	if spec.Sweep.Axis != "" {
		xs = sweep.Range(spec.Sweep.From, spec.Sweep.To, points)
		xLabel = spec.Sweep.Axis
	}

	b := sub(spec.Substrate)
	mean := &metrics.Series{Name: "mean"}
	std := &metrics.Series{Name: "stddev"}
	minS := &metrics.Series{Name: "min"}
	maxS := &metrics.Series{Name: "max"}
	p50 := &metrics.Series{Name: "p50"}

	root := simrng.New(seed)
	runner := sim.Runner{Workers: opts.Workers}
	total := len(xs) * replicates
	for pi, x := range xs {
		if opts.Progress != nil {
			base := pi * replicates
			runner.Progress = func(done, _ int) { opts.Progress(base+done, total) }
		}
		pt := spec.Clone()
		if spec.Sweep.Axis != "" {
			if err := pt.applyAxis(x); err != nil {
				return nil, err
			}
			if err := pt.Validate(); err != nil {
				return nil, fmt.Errorf("scenario: %s at %s=%g: %w", spec.Name, spec.Sweep.Axis, x, err)
			}
		}
		st := metrics.NewStream()
		pointSeed := root.ChildN("point", pi).Uint64()
		err := runner.Fold(pointSeed, replicates,
			func(rep int, rng *simrng.Source, ws *sim.Workspace) (sim.Model, error) {
				adv, err := pt.Adversary.Strategy()
				if err != nil {
					return nil, err
				}
				return b.build(pt, rng, ws, adv, newDefense(pt, ws))
			},
			func(rep int, snap any) error {
				y, err := b.metric(pt, snap)
				if err != nil {
					return err
				}
				st.Add(y)
				return nil
			})
		if err != nil {
			return nil, fmt.Errorf("scenario %s: point %s=%g: %w", spec.Name, xLabel, x, err)
		}
		mean.Add(x, st.Acc.Mean())
		std.Add(x, st.Acc.StdDev())
		minS.Add(x, st.Acc.Min())
		maxS.Add(x, st.Acc.Max())
		p50.Add(x, st.P50.Value())
	}

	metricName := spec.Metric
	if metricName == "" {
		metricName = b.defaultMetric
	}
	title := spec.Title
	if title == "" {
		title = spec.Name
	}
	return &metrics.Artifact{
		Name:   spec.Name,
		Title:  fmt.Sprintf("%s — %s/%s, metric %s (%d replicates/point)", title, spec.Substrate, adversaryLabel(spec), metricName, replicates),
		XLabel: xLabel,
		Series: []*metrics.Series{mean, std, minS, maxS, p50},
	}, nil
}

func adversaryLabel(spec *Spec) string {
	kind := spec.Adversary.Kind
	if kind == "" {
		kind = "none"
	}
	if spec.Defense.enabled() {
		return fmt.Sprintf("%s vs ratelimit(%d)", kind, spec.Defense.RateLimit)
	}
	return kind
}
