package scenario

import (
	"fmt"

	"lotuseater/internal/adaptive"
	"lotuseater/internal/metrics"
	"lotuseater/internal/sim"
)

// RunOptions tunes a scenario run without touching the spec.
type RunOptions struct {
	// Workers bounds the run's in-flight replicates on the shared pool
	// (0 = pool width). Results never depend on it.
	Workers int
	// Replicates overrides the spec's replicate count when positive. Dead
	// under an active precision plan, whose minReps/maxReps govern instead.
	Replicates int
	// Points overrides the sweep's point count when positive.
	Points int
	// Progress, when non-nil, is called after each replicate folds with the
	// number completed so far across all sweep points and the run's total.
	// For fixed runs the total is exact (points x replicates); under an
	// active precision plan it is a monotone non-increasing estimate that
	// starts at points x maxReps and sheds the unused budget of each point
	// that stops early, converging on the true count as the run ends. Calls
	// arrive in order from a single goroutine. Results never depend on it.
	Progress func(done, total int)
	// PointProgress, when non-nil under an active precision plan, is called
	// after every replicate wave with the sweep point index, the replicates
	// folded at that point so far, the current Student-t half-width, and
	// whether the CI target is now met — the "reps-so-far / CI-so-far"
	// readout services surface. Fixed runs never call it. Results never
	// depend on it.
	PointProgress func(point, reps int, halfWidth float64, met bool)
}

// resolveCounts applies Run's defaulting to the spec and options: the
// replicates folded per sweep point (overridden when positive, 3 when
// unset; an inert precision block's maxReps counts as the spec value) and
// the number of sweep points (1 without an axis, at least 2 with one).
func resolveCounts(spec *Spec, opts RunOptions) (replicates, points int) {
	replicates = spec.Replicates
	if spec.Precision != nil && !spec.Precision.active() && spec.Precision.MaxReps > 0 {
		// A plan that can never stop early is a fixed run of its cap — the
		// same fold, byte for byte (pinned by the invariant suite).
		replicates = spec.Precision.MaxReps
	}
	if opts.Replicates > 0 {
		replicates = opts.Replicates
	}
	if replicates <= 0 {
		replicates = 3
	}
	points = 1
	if spec.Sweep.Axis != "" {
		points = spec.Sweep.Points
		if opts.Points > 0 {
			points = opts.Points
		}
		if points < 2 {
			points = 2
		}
	}
	return replicates, points
}

// plan maps the declarative precision block onto the engine's plan type,
// defaults unresolved.
func plan(p *PrecisionSpec) adaptive.Plan {
	return adaptive.Plan{
		MinReps: p.MinReps,
		MaxReps: p.MaxReps,
		Batch:   p.Batch,
		CI: adaptive.CI{
			HalfWidth:  p.HalfWidth,
			Confidence: p.Confidence,
			Relative:   p.Relative,
		},
	}
}

// activePlan compiles the spec's precision block into the resolved
// adaptive plan Run executes; ok is false for fixed-replication runs
// (no block, or one whose halfWidth is zero).
func (s *Spec) activePlan() (adaptive.Plan, bool) {
	if !s.Precision.active() {
		return adaptive.Plan{}, false
	}
	pl := plan(s.Precision).WithDefaults()
	pl.CI.Metric = s.Metric
	if pl.CI.Metric == "" {
		if b := sub(s.Substrate); b != nil {
			pl.CI.Metric = b.defaultMetric
		}
	}
	return pl, true
}

// TotalReplicates returns how many replicates a run of spec will fold in
// total, after the same defaulting Run applies — sweep points times
// replicates per point for fixed runs, and the points x maxReps upper
// bound under an active precision plan (adaptive points may stop earlier;
// RunOptions.Progress totals shrink toward the true count as they do).
func TotalReplicates(spec *Spec, opts RunOptions) int {
	replicates, points := resolveCounts(spec, opts)
	if pl, ok := spec.activePlan(); ok {
		return points * pl.MaxReps
	}
	return points * replicates
}

// Run executes the scenario and returns its artifact: one series per
// summary statistic (mean, stddev, min, max, p50) of the spec's metric
// across the sweep axis, plus per-point replicate counts and achieved CI
// half-widths ("reps", "ci-halfwidth") under an active precision plan.
// Replicates fold into streaming accumulators in replicate order — nothing
// per-replicate is materialized, and the result is bit-identical for any
// worker count.
//
// Seeding uses common random numbers: every sweep point folds replicate i
// with the stream derived from (seed, i) alone, so the same replicate
// index sees the same randomness at every point. Differences between
// points (and between attack and defense arms run from one seed) are
// paired comparisons with the replicate-to-replicate noise cancelled —
// which is also what lets an adaptive run share its replicates
// bit-identically with a fixed run of the same seed.
func Run(spec *Spec, seed uint64, opts RunOptions) (*metrics.Artifact, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ep := PlanOf(spec, opts)
	replicates, points := ep.Replicates, len(ep.Xs)
	xs, xLabel := ep.Xs, ep.XLabel

	b := sub(spec.Substrate)
	pl, adaptiveRun := ep.Plan, ep.Adaptive

	results := make([]PointResult, 0, points)
	runner := sim.Runner{Workers: opts.Workers}
	done := 0                       // replicates folded across finished points
	estimate := points * replicates // fixed total, or the shrinking adaptive cap
	if adaptiveRun {
		estimate = points * pl.MaxReps
	}
	for pi, x := range xs {
		pt, err := spec.PointSpec(x)
		if err != nil {
			return nil, err
		}
		st := metrics.NewStream()
		build := buildFor(pt, b)
		if adaptiveRun {
			pr := runner
			if opts.Progress != nil {
				base, est := done, estimate
				pr.Progress = func(d, _ int) { opts.Progress(base+d, est) }
			}
			var obs adaptive.Observer
			if opts.PointProgress != nil {
				obs = func(reps int, hw float64, met bool) { opts.PointProgress(pi, reps, hw, met) }
			}
			res, err := adaptive.Fold(pr, seed, pl, build,
				func(rep int, snap any) (float64, error) {
					y, err := b.metric(pt, snap)
					if err != nil {
						return 0, err
					}
					st.Add(y)
					return y, nil
				}, obs)
			if err != nil {
				return nil, fmt.Errorf("scenario %s: point %s=%g: %w", spec.Name, xLabel, x, err)
			}
			done += res.Reps
			estimate -= pl.MaxReps - res.Reps
			if opts.Progress != nil {
				// One settling call per point: the estimate just shed this
				// point's unused budget, so totals stay monotone
				// non-increasing and end equal to done.
				opts.Progress(done, estimate)
			}
			results = append(results, PointResult{X: x, Stream: st, Reps: res.Reps, HalfWidth: res.HalfWidth})
		} else {
			r := runner
			if opts.Progress != nil {
				base, total := pi*replicates, estimate
				r.Progress = func(d, _ int) { opts.Progress(base+d, total) }
			}
			err := r.Fold(seed, replicates, build,
				func(rep int, snap any) error {
					y, err := b.metric(pt, snap)
					if err != nil {
						return err
					}
					st.Add(y)
					return nil
				})
			if err != nil {
				return nil, fmt.Errorf("scenario %s: point %s=%g: %w", spec.Name, xLabel, x, err)
			}
			results = append(results, PointResult{X: x, Stream: st})
		}
	}
	return Assemble(spec, opts, results)
}

func adversaryLabel(spec *Spec) string {
	kind := spec.Adversary.Kind
	if kind == "" {
		kind = "none"
	}
	if spec.Defense.enabled() {
		return fmt.Sprintf("%s vs ratelimit(%d)", kind, spec.Defense.RateLimit)
	}
	return kind
}
