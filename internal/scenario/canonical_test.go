package scenario

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestCanonicalRoundTripStable: for every registered spec,
// Spec → canonical JSON → Spec → canonical JSON is byte-identical, and the
// hash is stable across the round trip.
func TestCanonicalRoundTripStable(t *testing.T) {
	for _, spec := range All() {
		c1, err := spec.CanonicalJSON()
		if err != nil {
			t.Fatalf("%s: canonical: %v", spec.Name, err)
		}
		h1, err := spec.Hash()
		if err != nil {
			t.Fatalf("%s: hash: %v", spec.Name, err)
		}
		back, err := Decode(c1)
		if err != nil {
			t.Fatalf("%s: canonical JSON does not decode: %v\n%s", spec.Name, err, c1)
		}
		c2, err := back.CanonicalJSON()
		if err != nil {
			t.Fatalf("%s: re-canonical: %v", spec.Name, err)
		}
		if !bytes.Equal(c1, c2) {
			t.Fatalf("%s: canonical form is not a fixed point:\n first: %s\nsecond: %s", spec.Name, c1, c2)
		}
		h2, err := back.Hash()
		if err != nil {
			t.Fatalf("%s: re-hash: %v", spec.Name, err)
		}
		if h1 != h2 {
			t.Fatalf("%s: hash changed across round trip: %s vs %s", spec.Name, h1, h2)
		}
		if !strings.HasPrefix(h1, "sha256:") || len(h1) != len("sha256:")+64 {
			t.Fatalf("%s: malformed hash %q", spec.Name, h1)
		}
	}
}

// reorderAndIndent rewrites a JSON document through map[string]any (which
// re-sorts object keys alphabetically — a different order than the struct
// encoding) and indents it, producing a key-order + whitespace variant of
// the same spec.
func reorderAndIndent(t *testing.T, data []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("variant unmarshal: %v", err)
	}
	out, err := json.MarshalIndent(m, "  ", "\t")
	if err != nil {
		t.Fatalf("variant marshal: %v", err)
	}
	return append([]byte("  "), append(out, '\n', '\n')...)
}

// TestCanonicalVariantsHashEqual: key-order and whitespace variants of the
// same spec, and alias spellings of the same defaults, all hash to the same
// cache key.
func TestCanonicalVariantsHashEqual(t *testing.T) {
	for _, name := range []string{"gossip-trade", "gossip-ratelimit", "token-altruism", "x/trade-swarm+ratelimit"} {
		spec, ok := Get(name)
		if !ok {
			t.Fatalf("scenario %s vanished from the registry", name)
		}
		want, err := spec.Hash()
		if err != nil {
			t.Fatal(err)
		}
		data, err := spec.JSON() // indented encoding, another whitespace variant
		if err != nil {
			t.Fatal(err)
		}
		for i, variant := range [][]byte{data, reorderAndIndent(t, data)} {
			back, err := Decode(variant)
			if err != nil {
				t.Fatalf("%s variant %d: %v", name, i, err)
			}
			got, err := back.Hash()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s variant %d hashes to %s, want %s", name, i, got, want)
			}
		}
	}
}

// TestCanonicalAliasesFold: the normalization rules — kind aliases, dead
// defense, replicate/point defaults, default metric — map spelled-out and
// implied forms of the same run to one hash.
func TestCanonicalAliasesFold(t *testing.T) {
	base := &Spec{Name: "alias", Substrate: "gossip", Adversary: AdversarySpec{Kind: "none"}, Replicates: 3, Metric: "isolated-delivery"}
	want, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	variants := []*Spec{
		{Name: "alias", Substrate: "gossip"}, // kind "", replicates 0, metric ""
		{Name: "alias", Substrate: "gossip", Defense: DefenseSpec{Kind: "none"}},
		{Name: "alias", Substrate: "gossip", Defense: DefenseSpec{Kind: "ratelimit", RateLimit: 0}},
		{Name: "alias", Substrate: "gossip", Sweep: SweepSpec{From: 1, To: 2, Points: 5}}, // dead knobs without an axis
		{Name: "alias", Substrate: "gossip", Params: map[string]float64{}},
	}
	for i, v := range variants {
		got, err := v.Hash()
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if got != want {
			cj, _ := v.CanonicalJSON()
			t.Fatalf("variant %d hashes to %s, want %s (canonical %s)", i, got, want, cj)
		}
	}
	// And the rules must not over-fold: a live defense, a real sweep, and a
	// different metric are different runs.
	distinct := []*Spec{
		{Name: "alias", Substrate: "gossip", Defense: DefenseSpec{Kind: "ratelimit", RateLimit: 4}},
		{Name: "alias", Substrate: "gossip", Sweep: SweepSpec{Axis: "nodes", From: 10, To: 20, Points: 2}},
		{Name: "alias", Substrate: "gossip", Metric: "evictions"},
		{Name: "alias2", Substrate: "gossip"},
	}
	for i, v := range distinct {
		got, err := v.Hash()
		if err != nil {
			t.Fatalf("distinct %d: %v", i, err)
		}
		if got == want {
			t.Fatalf("distinct spec %d collides with the base hash %s", i, want)
		}
	}
}

// TestCanonicalPrecisionFolds: the precision normalization rules — an
// inert plan is a fixed run of its cap, an active plan spells out its
// defaults and kills the dead replicates knob — map alias spellings of the
// same run to one hash, without over-folding distinct plans.
func TestCanonicalPrecisionFolds(t *testing.T) {
	base := func() *Spec { return &Spec{Name: "p", Substrate: "gossip"} }
	hash := func(t *testing.T, s *Spec) string {
		t.Helper()
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		h, err := s.Hash()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}

	// Inert plan with a cap == the fixed run of that cap.
	inert := base()
	inert.Precision = &PrecisionSpec{MaxReps: 7}
	fixed := base()
	fixed.Replicates = 7
	if hash(t, inert) != hash(t, fixed) {
		t.Fatal("halfWidth=0 plan with maxReps 7 is not the 7-replicate fixed run")
	}
	// Inert plan without a cap == no plan at all.
	empty := base()
	empty.Precision = &PrecisionSpec{}
	if hash(t, empty) != hash(t, base()) {
		t.Fatal("empty precision block is not a no-op")
	}

	// Active plan: spelled-out defaults and an (ignored) replicates knob
	// fold onto the terse spelling.
	terse := base()
	terse.Precision = &PrecisionSpec{HalfWidth: 0.01}
	spelled := base()
	spelled.Replicates = 9 // dead under an active plan
	spelled.Precision = &PrecisionSpec{HalfWidth: 0.01, Confidence: 0.95, MinReps: 2, MaxReps: 256, Batch: 8}
	want := hash(t, terse)
	if got := hash(t, spelled); got != want {
		cj, _ := spelled.CanonicalJSON()
		t.Fatalf("spelled-out active plan hashes differently: %s vs %s (%s)", got, want, cj)
	}

	// minReps 1 and 2 execute identically (the engine never stops on a
	// single sample), so they must share a cache key.
	one := base()
	one.Precision = &PrecisionSpec{HalfWidth: 0.01, MinReps: 1}
	if got := hash(t, one); got != want {
		t.Fatalf("minReps 1 hashes differently from the 2-replicate floor: %s vs %s", got, want)
	}

	// No over-folding: a different target, confidence, budget, or a
	// relative reading are different runs — and so is no plan at all.
	distinct := []*PrecisionSpec{
		{HalfWidth: 0.02},
		{HalfWidth: 0.01, Confidence: 0.99},
		{HalfWidth: 0.01, MaxReps: 64},
		{HalfWidth: 0.01, Relative: true},
		nil,
	}
	for i, p := range distinct {
		s := base()
		s.Precision = p
		if got := hash(t, s); got == want {
			t.Fatalf("distinct plan %d collides with the active-plan hash", i)
		}
	}
}

// TestCanonicalDoesNotMutate: canonicalization works on a clone; the
// original spec keeps its short spellings.
func TestCanonicalDoesNotMutate(t *testing.T) {
	s := &Spec{Name: "keep", Substrate: "token", Defense: DefenseSpec{Kind: "none"}}
	if _, err := s.CanonicalJSON(); err != nil {
		t.Fatal(err)
	}
	if s.Adversary.Kind != "" || s.Replicates != 0 || s.Metric != "" || s.Defense.Kind != "none" {
		t.Fatalf("CanonicalJSON mutated its receiver: %+v", s)
	}
}
