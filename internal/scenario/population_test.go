package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPopulationValidateRejects: every hostile population block is
// rejected with an error — and the same error every time, because specs
// arrive over HTTP and a validator that flip-flops between messages would
// break the content-addressed error cache.
func TestPopulationValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"negative-leave-rate", `{"name":"x","substrate":"gossip","population":{"churn":{"leaveRate":-0.1}}}`},
		{"non-finite-join-rate", `{"name":"x","substrate":"gossip","population":{"churn":{"joinRate":1e308}}}`},
		{"negative-start", `{"name":"x","substrate":"gossip","population":{"churn":{"start":-5}}}`},
		{"trace-node-out-of-range", `{"name":"x","substrate":"gossip","nodes":4,"population":{"churn":{"trace":[{"round":0,"node":99,"op":"leave"}]}}}`},
		{"trace-rounds-backwards", `{"name":"x","substrate":"gossip","population":{"churn":{"trace":[{"round":5,"node":0,"op":"leave"},{"round":2,"node":0,"op":"join"}]}}}`},
		{"trace-unknown-op", `{"name":"x","substrate":"gossip","population":{"churn":{"trace":[{"round":0,"node":0,"op":"vanish"}]}}}`},
		{"trace-negative-round", `{"name":"x","substrate":"gossip","population":{"churn":{"trace":[{"round":-1,"node":0,"op":"leave"}]}}}`},
		{"empty-class-list", `{"name":"x","substrate":"gossip","population":{"classes":[]}}`},
		{"class-weights-dont-sum", `{"name":"x","substrate":"gossip","population":{"classes":[{"name":"a","weight":0.3},{"name":"b","weight":0.3}]}}`},
		{"negative-class-weight", `{"name":"x","substrate":"gossip","population":{"classes":[{"name":"a","weight":-1},{"name":"b","weight":2}]}}`},
		{"duplicate-class-name", `{"name":"x","substrate":"gossip","population":{"classes":[{"name":"a","weight":0.5},{"name":"a","weight":0.5}]}}`},
		{"altruism-above-one", `{"name":"x","substrate":"gossip","population":{"classes":[{"name":"a","weight":1,"altruism":1.5}]}}`},
		{"negative-capacity", `{"name":"x","substrate":"token","population":{"classes":[{"name":"a","weight":1,"capacity":-2}]}}`},
		{"zipf-exponent-zero", `{"name":"x","substrate":"gossip","population":{"popularity":{"kind":"zipf","exponent":0}}}`},
		{"zipf-exponent-negative", `{"name":"x","substrate":"gossip","population":{"popularity":{"kind":"zipf","exponent":-1.1}}}`},
		{"empty-weight-vector", `{"name":"x","substrate":"gossip","population":{"popularity":{"kind":"weights","weights":[]}}}`},
		{"negative-weight", `{"name":"x","substrate":"gossip","population":{"popularity":{"kind":"weights","weights":[-1,2]}}}`},
		{"unknown-popularity-kind", `{"name":"x","substrate":"gossip","population":{"popularity":{"kind":"lognormal"}}}`},
		{"negative-items", `{"name":"x","substrate":"swarm","population":{"popularity":{"kind":"zipf","exponent":1.1,"items":-3}}}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err1 := Decode([]byte(c.json))
			if err1 == nil {
				t.Fatalf("hostile population block accepted:\n%s", c.json)
			}
			_, err2 := Decode([]byte(c.json))
			if err2 == nil || err1.Error() != err2.Error() {
				t.Fatalf("rejection is not deterministic:\n%v\nvs\n%v", err1, err2)
			}
		})
	}
}

// TestTraceParse: the churn trace format — strict decoding, deterministic
// first-offender errors, and the checked-in examples all parse.
func TestTraceParse(t *testing.T) {
	good := `{"version":1,"events":[{"round":0,"node":1,"op":"leave"},{"round":3,"node":1,"op":"join"}]}`
	tr, err := ParseTrace([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 2 || tr.Events[1].Op != "join" {
		t.Fatalf("parsed trace wrong: %+v", tr)
	}

	bad := []struct {
		name string
		json string
		want string
	}{
		{"wrong-version", `{"version":2,"events":[{"round":0,"node":0,"op":"leave"}]}`, "version"},
		{"no-events", `{"version":1,"events":[]}`, "no events"},
		{"unknown-field", `{"version":1,"events":[{"round":0,"node":0,"op":"leave"}],"extra":true}`, "unknown"},
		{"bad-op", `{"version":1,"events":[{"round":0,"node":0,"op":"vanish"}]}`, `"vanish"`},
		{"unsorted", `{"version":1,"events":[{"round":5,"node":0,"op":"leave"},{"round":1,"node":0,"op":"join"}]}`, "sorted"},
		{"negative-node", `{"version":1,"events":[{"round":0,"node":-2,"op":"leave"}]}`, "node"},
		{"trailing-garbage", `{"version":1,"events":[{"round":0,"node":0,"op":"leave"}]} trailing`, "trailing"},
	}
	for _, c := range bad {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseTrace([]byte(c.json))
			if err == nil {
				t.Fatalf("hostile trace accepted:\n%s", c.json)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}

	examples, err := filepath.Glob(filepath.Join("..", "..", "examples", "traces", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(examples) == 0 {
		t.Fatal("no example traces found")
	}
	for _, path := range examples {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ParseTrace(data); err != nil {
			t.Fatalf("%s does not parse: %v", path, err)
		}
	}
}

// TestTraceApplyTo: a trace lands as the spec's churn schedule, refuses to
// clobber an existing churn block, and the combined spec still validates.
func TestTraceApplyTo(t *testing.T) {
	tr, err := ParseTrace([]byte(`{"version":1,"events":[{"round":1,"node":2,"op":"leave"},{"round":4,"node":2,"op":"join"}]}`))
	if err != nil {
		t.Fatal(err)
	}

	spec, ok := Get("gossip-trade")
	if !ok {
		t.Fatal("gossip-trade vanished")
	}
	if err := tr.ApplyTo(spec); err != nil {
		t.Fatal(err)
	}
	if spec.Population == nil || spec.Population.Churn == nil || len(spec.Population.Churn.Trace) != 2 {
		t.Fatalf("trace not applied: %+v", spec.Population)
	}
	if err := spec.Validate(); err != nil {
		t.Fatalf("spec with applied trace fails validation: %v", err)
	}
	if err := tr.ApplyTo(spec); err == nil {
		t.Fatal("applying a trace over existing churn should error")
	}

	rated, _ := Get("gossip-trade-churn")
	if err := tr.ApplyTo(rated); err == nil {
		t.Fatal("applying a trace over rate-driven churn should error")
	}
}
