// Package scenario makes experiments declarative data instead of code: a
// Spec names a substrate (any of the five simulators), a population, an
// adversary strategy, a defense, and a sweep axis, all JSON-encodable. The
// engine compiles a Spec into replicated runs on the shared simulation
// kernel, folding every replicate into streaming accumulators
// (internal/metrics) so even 10k-replicate sweeps are constant-memory, and
// renders the per-point mean/spread statistics as a metrics.Artifact.
//
// Specs live in a registry (canned classics plus the generated
// attack x substrate x defense cross-product), can be loaded from JSON
// files, and accept key=value overrides — `lotus-sim scenarios run <name>
// -set adversary.fraction=0.3` re-parameterizes without recompiling.
// Adding a scenario is a data change, not a code change.
package scenario

import (
	"encoding/json"
	"fmt"
	"maps"
	"math"
	"slices"
	"strconv"
	"strings"

	"lotuseater/internal/attack"
)

// sortedKeys returns m's keys in ascending order — the only map iteration
// order deterministic surfaces (errors, artifacts, canonical JSON) may use.
func sortedKeys(m map[string]float64) []string {
	return slices.Sorted(maps.Keys(m))
}

// Substrates accepted by Spec.Substrate, in canonical order.
var Substrates = []string{"gossip", "token", "scrip", "swarm", "coding"}

// AdversarySpec is the declarative form of an attack.Strategy.
type AdversarySpec struct {
	// Kind is the attack: none, crash, ideal, or trade.
	Kind string `json:"kind"`
	// Fraction of nodes the adversary controls.
	Fraction float64 `json:"fraction,omitempty"`
	// SatiateFraction of the system targeted for satiation (0.70 default
	// for ideal and trade when zero).
	SatiateFraction float64 `json:"satiateFraction,omitempty"`
	// RotatePeriod re-draws the satiated set every N rounds (0 = static).
	RotatePeriod int `json:"rotatePeriod,omitempty"`
	// Targets, when non-empty, satiates exactly these node ids (plus the
	// attacker's own nodes) instead of a pseudorandom SatiateFraction —
	// targeted attacks such as grid cuts and rare-resource holders. Ids must
	// be unique, non-negative, and within the population.
	Targets []int `json:"targets,omitempty"`
}

// Strategy compiles the spec into a fresh attack.Strategy for one replicate.
func (a AdversarySpec) Strategy() (*attack.Strategy, error) {
	kind := a.Kind
	if kind == "" {
		kind = "none"
	}
	k, err := attack.ParseKind(kind)
	if err != nil {
		return nil, err
	}
	// SatiateFraction 0 means exactly that — a sweep from 0 must satiate
	// nobody at its first point, so there is deliberately no hidden default
	// here; canned specs spell out the paper's 0.70.
	s := &attack.Strategy{
		Kind:            k,
		Fraction:        a.Fraction,
		SatiateFraction: a.SatiateFraction,
		RotatePeriod:    a.RotatePeriod,
	}
	if len(a.Targets) > 0 {
		s.TargetList = append([]int(nil), a.Targets...)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// DefenseSpec is the declarative form of a receiver-side defense.
type DefenseSpec struct {
	// Kind is "none" (or empty) or "ratelimit".
	Kind string `json:"kind,omitempty"`
	// RateLimit is the per-peer per-round acceptance cap for the ratelimit
	// kind.
	RateLimit int `json:"rateLimit,omitempty"`
}

// Validate reports the first problem with the defense spec, or nil.
func (d DefenseSpec) Validate() error {
	switch d.Kind {
	case "", "none":
		return nil
	case "ratelimit":
		if d.RateLimit < 0 {
			return fmt.Errorf("scenario: defense rateLimit must be non-negative, got %d", d.RateLimit)
		}
		return nil
	default:
		return fmt.Errorf("scenario: unknown defense kind %q (want none|ratelimit)", d.Kind)
	}
}

// enabled reports whether the defense actually limits anything.
func (d DefenseSpec) enabled() bool {
	return d.Kind == "ratelimit" && d.RateLimit > 0
}

// PrecisionSpec is the declarative form of an adaptive.Plan: per sweep
// point, run replicate waves until the Student-t confidence interval on the
// metric's mean is at most HalfWidth wide (half-width), or MaxReps is
// spent. HalfWidth 0 disables early stopping — the plan degenerates to a
// fixed run of MaxReps replicates and canonicalizes away entirely. Under an
// active plan (HalfWidth > 0) the spec's Replicates knob is dead: MinReps
// and MaxReps govern the budget.
type PrecisionSpec struct {
	// HalfWidth is the CI half-width target (0 = no early stopping).
	HalfWidth float64 `json:"halfWidth,omitempty"`
	// Confidence is the two-sided CI level (0 = 0.95).
	Confidence float64 `json:"confidence,omitempty"`
	// Relative reads HalfWidth as a fraction of the mean's magnitude.
	Relative bool `json:"relative,omitempty"`
	// MinReps is the opening wave, always run before the rule is consulted
	// (0 = 2; at least 2 so a variance estimate exists).
	MinReps int `json:"minReps,omitempty"`
	// MaxReps is the per-point budget (0 = 256).
	MaxReps int `json:"maxReps,omitempty"`
	// Batch is the wave size after the opening wave (0 = 8).
	Batch int `json:"batch,omitempty"`
}

// Validate reports the first problem with the precision block, or nil. A
// nil block is valid (fixed replication).
func (p *PrecisionSpec) Validate() error {
	if p == nil {
		return nil
	}
	switch {
	case !isFinite(p.HalfWidth) || p.HalfWidth < 0:
		return fmt.Errorf("scenario: precision.halfWidth must be finite and non-negative, got %g", p.HalfWidth)
	case !isFinite(p.Confidence) || p.Confidence < 0 || p.Confidence >= 1:
		return fmt.Errorf("scenario: precision.confidence must be in [0,1) (0 = 0.95), got %g", p.Confidence)
	case p.MinReps < 0 || p.MaxReps < 0 || p.Batch < 0:
		return fmt.Errorf("scenario: precision minReps, maxReps, and batch must be non-negative")
	case p.MaxReps > 0 && p.MinReps > p.MaxReps:
		return fmt.Errorf("scenario: precision.minReps %d exceeds precision.maxReps %d", p.MinReps, p.MaxReps)
	case p.HalfWidth > 0 && p.MaxReps == 1:
		return fmt.Errorf("scenario: an adaptive plan needs precision.maxReps >= 2 (one replicate has no variance estimate)")
	}
	return nil
}

// active reports whether the plan can stop points early at all.
func (p *PrecisionSpec) active() bool { return p != nil && p.HalfWidth > 0 }

// SweepSpec describes the x axis of a scenario: which knob to sweep and
// over what range. An empty Axis means a single point at x = 0.
type SweepSpec struct {
	// Axis names the swept knob: adversary.fraction,
	// adversary.satiateFraction, adversary.rotatePeriod, defense.rateLimit,
	// nodes, rounds, or params.<key>.
	Axis string `json:"axis,omitempty"`
	// From and To bound the sweep inclusively.
	From float64 `json:"from,omitempty"`
	To   float64 `json:"to,omitempty"`
	// Points is the number of samples (2 minimum when an axis is set).
	Points int `json:"points,omitempty"`
}

// Spec is one declarative scenario.
type Spec struct {
	// Name is the registry key.
	Name string `json:"name"`
	// Title is the artifact headline (Name when empty).
	Title string `json:"title,omitempty"`
	// Description is the one-liner shown by `lotus-sim scenarios list`.
	Description string `json:"description,omitempty"`
	// Substrate selects the simulator: gossip, token, scrip, swarm, coding.
	Substrate string `json:"substrate"`
	// Nodes is the population size (0 = substrate default).
	Nodes int `json:"nodes,omitempty"`
	// Rounds is the horizon in rounds/ticks/requests (0 = substrate
	// default).
	Rounds int `json:"rounds,omitempty"`
	// Replicates is the number of independently seeded runs folded per
	// sweep point (0 = 3).
	Replicates int `json:"replicates,omitempty"`
	// Adversary configures the attack strategy.
	Adversary AdversarySpec `json:"adversary"`
	// Defense configures the receiver-side defense.
	Defense DefenseSpec `json:"defense,omitempty"`
	// Sweep configures the x axis.
	Sweep SweepSpec `json:"sweep,omitempty"`
	// Precision, when present with a positive halfWidth, replaces the fixed
	// Replicates count with adaptive, CI-targeted replication per sweep
	// point (see PrecisionSpec).
	Precision *PrecisionSpec `json:"precision,omitempty"`
	// Population configures churn, heterogeneous agent classes, and
	// content popularity; nil is the paper's static homogeneous
	// uniform-demand population (see PopulationSpec).
	Population *PopulationSpec `json:"population,omitempty"`
	// Metric names the per-run statistic folded into the accumulators; see
	// `lotus-sim scenarios show` output or substrate.go for the per-
	// substrate menu. Empty means the substrate default.
	Metric string `json:"metric,omitempty"`
	// Params holds substrate-specific knobs (push, tokens, threshold,
	// pieces, symbols, ...); see substrate.go for each substrate's menu.
	Params map[string]float64 `json:"params,omitempty"`
}

// Validate reports the first problem with the spec, or nil.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	if sub(s.Substrate) == nil {
		return fmt.Errorf("scenario: unknown substrate %q (want %s)", s.Substrate, strings.Join(Substrates, "|"))
	}
	if _, err := s.Adversary.Strategy(); err != nil {
		return err
	}
	// Hostile target lists fail here, not at node-indexing depth inside a
	// replicate: ids must be unique and non-negative always, and inside the
	// population whenever the spec pins one (Nodes == 0 defers the upper
	// bound to the substrate default; the targeter clamps regardless).
	if err := attack.ValidateTargetList(s.Nodes, s.Adversary.Targets); err != nil {
		return err
	}
	if err := s.Defense.Validate(); err != nil {
		return err
	}
	if err := s.Precision.Validate(); err != nil {
		return err
	}
	if err := s.Population.Validate(s.Nodes); err != nil {
		return err
	}
	if s.Nodes < 0 || s.Rounds < 0 || s.Replicates < 0 {
		return fmt.Errorf("scenario: nodes, rounds, and replicates must be non-negative")
	}
	// Specs must stay JSON-encodable (canonicalization, caching, `scenarios
	// show` all re-encode them), and JSON has no NaN or infinity — a
	// strconv-parsed "inf" override or a directly constructed spec could
	// smuggle one in where Decode never can. Checked in a fixed order (and
	// params in sorted-key order): Validate returns the *first* problem, so
	// iterating a map here made the error text itself order-dependent when
	// two fields were bad — exactly the nondeterminism class lotus-lint's
	// maprange rule exists to catch.
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"adversary.fraction", s.Adversary.Fraction},
		{"adversary.satiateFraction", s.Adversary.SatiateFraction},
		{"sweep.from", s.Sweep.From},
		{"sweep.to", s.Sweep.To},
	} {
		if !isFinite(f.v) {
			return fmt.Errorf("scenario: %s must be finite, got %g", f.name, f.v)
		}
	}
	for _, k := range sortedKeys(s.Params) {
		if v := s.Params[k]; !isFinite(v) {
			return fmt.Errorf("scenario: params.%s must be finite, got %g", k, v)
		}
	}
	if s.Sweep.Axis != "" {
		if err := s.Clone().applyAxis(s.Sweep.From); err != nil {
			return err
		}
		if s.Sweep.Points < 0 {
			return fmt.Errorf("scenario: sweep points must be non-negative, got %d", s.Sweep.Points)
		}
	}
	if s.Metric != "" {
		if err := sub(s.Substrate).checkMetric(s.Metric); err != nil {
			return err
		}
	}
	return nil
}

// Clone returns a deep copy of the spec (params map included), so sweeps
// and overrides never mutate registry entries.
func (s *Spec) Clone() *Spec {
	out := *s
	out.Params = maps.Clone(s.Params)
	if s.Adversary.Targets != nil {
		out.Adversary.Targets = append([]int(nil), s.Adversary.Targets...)
	}
	if s.Precision != nil {
		p := *s.Precision
		out.Precision = &p
	}
	out.Population = s.Population.clone()
	return &out
}

// JSON encodes the spec, indented, with a trailing newline.
func (s *Spec) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Decode parses a JSON spec and validates it.
func Decode(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("scenario: bad spec JSON: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// isFinite reports whether v is an ordinary number — not NaN, not ±Inf.
func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// param returns a substrate knob with a default.
func (s *Spec) param(key string, def float64) float64 {
	if v, ok := s.Params[key]; ok {
		return v
	}
	return def
}

// OverrideReplicates replaces the spec's fixed replicate count with n,
// also displacing an inert precision block — whose maxReps is just another
// spelling of the fixed count and would otherwise silently shadow the
// override. An active plan is left untouched: its budget is
// minReps/maxReps, and a fixed-count override is dead under it, exactly
// like RunOptions.Replicates.
func (s *Spec) OverrideReplicates(n int) {
	s.Replicates = n
	if s.Precision != nil && !s.Precision.active() {
		s.Precision = nil
	}
}

// precision returns the precision block, allocating it on first use so
// `-set precision.halfWidth=0.01` works on specs without one.
func (s *Spec) precision() *PrecisionSpec {
	if s.Precision == nil {
		s.Precision = &PrecisionSpec{}
	}
	return s.Precision
}

// populationChurn and populationPopularity lazily allocate the nested
// population blocks for the `-set population.*` override path, mirroring
// precision(). Canonicalization folds untouched blocks back to nil.
func (s *Spec) populationChurn() *ChurnSpec {
	if s.Population == nil {
		s.Population = &PopulationSpec{}
	}
	if s.Population.Churn == nil {
		s.Population.Churn = &ChurnSpec{}
	}
	return s.Population.Churn
}

func (s *Spec) populationPopularity() *PopularitySpec {
	if s.Population == nil {
		s.Population = &PopulationSpec{}
	}
	if s.Population.Popularity == nil {
		s.Population.Popularity = &PopularitySpec{}
	}
	return s.Population.Popularity
}

// setParam sets a substrate knob, allocating the map on first use.
func (s *Spec) setParam(key string, v float64) {
	if s.Params == nil {
		s.Params = map[string]float64{}
	}
	s.Params[key] = v
}

// applyAxis sets the swept knob to x.
func (s *Spec) applyAxis(x float64) error {
	axis := s.Sweep.Axis
	switch axis {
	case "adversary.fraction":
		s.Adversary.Fraction = x
	case "adversary.satiateFraction":
		s.Adversary.SatiateFraction = x
	case "adversary.rotatePeriod":
		s.Adversary.RotatePeriod = int(x)
	case "defense.rateLimit":
		s.Defense.RateLimit = int(x)
		if s.Defense.Kind == "" || s.Defense.Kind == "none" {
			s.Defense.Kind = "ratelimit"
		}
	case "nodes":
		s.Nodes = int(x)
	case "rounds":
		s.Rounds = int(x)
	case "population.churn.leaveRate":
		s.populationChurn().LeaveRate = x
	case "population.churn.joinRate":
		s.populationChurn().JoinRate = x
	case "population.popularity.exponent":
		s.populationPopularity().Exponent = x
		if s.populationPopularity().Kind == "" {
			s.populationPopularity().Kind = "zipf"
		}
	default:
		if key, ok := strings.CutPrefix(axis, "params."); ok && key != "" {
			s.setParam(key, x)
			return nil
		}
		return fmt.Errorf("scenario: unknown sweep axis %q", axis)
	}
	return nil
}

// Set applies one key=value override using the same dotted paths the JSON
// spec uses, so overrides round-trip: Set then JSON yields a spec that
// parses back to the overridden value. Valid keys: title, description,
// substrate, nodes, rounds, replicates, metric, adversary.kind,
// adversary.fraction, adversary.satiateFraction, adversary.rotatePeriod,
// adversary.targets (comma-separated node ids), defense.kind,
// defense.rateLimit, precision.halfWidth, precision.confidence,
// precision.relative, precision.minReps, precision.maxReps,
// precision.batch, sweep.axis, sweep.from, sweep.to, sweep.points, and
// params.<key>.
func (s *Spec) Set(key, value string) error {
	number := func() (float64, error) {
		v, err := strconv.ParseFloat(value, 64)
		if err != nil || !isFinite(v) {
			// ParseFloat accepts "inf" and "nan"; a spec holding one can
			// never re-encode to JSON, so reject them here too.
			return 0, fmt.Errorf("scenario: %s needs a finite number, got %q", key, value)
		}
		return v, nil
	}
	integer := func() (int, error) {
		v, err := strconv.Atoi(value)
		if err != nil {
			return 0, fmt.Errorf("scenario: %s needs an integer, got %q", key, value)
		}
		return v, nil
	}
	switch key {
	case "title":
		s.Title = value
	case "description":
		s.Description = value
	case "substrate":
		s.Substrate = value
	case "metric":
		s.Metric = value
	case "nodes":
		v, err := integer()
		if err != nil {
			return err
		}
		s.Nodes = v
	case "rounds":
		v, err := integer()
		if err != nil {
			return err
		}
		s.Rounds = v
	case "replicates":
		v, err := integer()
		if err != nil {
			return err
		}
		s.Replicates = v
	case "adversary.kind":
		s.Adversary.Kind = value
	case "adversary.fraction":
		v, err := number()
		if err != nil {
			return err
		}
		s.Adversary.Fraction = v
	case "adversary.satiateFraction":
		v, err := number()
		if err != nil {
			return err
		}
		s.Adversary.SatiateFraction = v
	case "adversary.rotatePeriod":
		v, err := integer()
		if err != nil {
			return err
		}
		s.Adversary.RotatePeriod = v
	case "adversary.targets":
		if value == "" {
			s.Adversary.Targets = nil
			break
		}
		parts := strings.Split(value, ",")
		targets := make([]int, 0, len(parts))
		for _, p := range parts {
			id, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return fmt.Errorf("scenario: %s needs comma-separated integers, got %q", key, value)
			}
			targets = append(targets, id)
		}
		s.Adversary.Targets = targets
	case "defense.kind":
		s.Defense.Kind = value
	case "defense.rateLimit":
		v, err := integer()
		if err != nil {
			return err
		}
		s.Defense.RateLimit = v
	case "precision.halfWidth":
		v, err := number()
		if err != nil {
			return err
		}
		s.precision().HalfWidth = v
	case "precision.confidence":
		v, err := number()
		if err != nil {
			return err
		}
		s.precision().Confidence = v
	case "precision.relative":
		v, err := strconv.ParseBool(value)
		if err != nil {
			return fmt.Errorf("scenario: %s needs a boolean, got %q", key, value)
		}
		s.precision().Relative = v
	case "precision.minReps":
		v, err := integer()
		if err != nil {
			return err
		}
		s.precision().MinReps = v
	case "precision.maxReps":
		v, err := integer()
		if err != nil {
			return err
		}
		s.precision().MaxReps = v
	case "precision.batch":
		v, err := integer()
		if err != nil {
			return err
		}
		s.precision().Batch = v
	case "population.churn.leaveRate":
		v, err := number()
		if err != nil {
			return err
		}
		s.populationChurn().LeaveRate = v
	case "population.churn.joinRate":
		v, err := number()
		if err != nil {
			return err
		}
		s.populationChurn().JoinRate = v
	case "population.churn.start":
		v, err := integer()
		if err != nil {
			return err
		}
		s.populationChurn().Start = v
	case "population.popularity.kind":
		s.populationPopularity().Kind = value
	case "population.popularity.exponent":
		v, err := number()
		if err != nil {
			return err
		}
		s.populationPopularity().Exponent = v
	case "population.popularity.items":
		v, err := integer()
		if err != nil {
			return err
		}
		s.populationPopularity().Items = v
	case "sweep.axis":
		s.Sweep.Axis = value
	case "sweep.from":
		v, err := number()
		if err != nil {
			return err
		}
		s.Sweep.From = v
	case "sweep.to":
		v, err := number()
		if err != nil {
			return err
		}
		s.Sweep.To = v
	case "sweep.points":
		v, err := integer()
		if err != nil {
			return err
		}
		s.Sweep.Points = v
	default:
		if pkey, ok := strings.CutPrefix(key, "params."); ok && pkey != "" {
			v, err := number()
			if err != nil {
				return err
			}
			s.setParam(pkey, v)
			return nil
		}
		return fmt.Errorf("scenario: unknown override key %q (run `lotus-sim scenarios show <name>` for the spec layout)", key)
	}
	return nil
}

// ApplySets parses and applies a list of key=value overrides, then
// re-validates.
func (s *Spec) ApplySets(sets []string) error {
	for _, kv := range sets {
		key, value, ok := strings.Cut(kv, "=")
		if !ok || key == "" {
			return fmt.Errorf("scenario: override %q is not key=value", kv)
		}
		if err := s.Set(key, value); err != nil {
			return err
		}
	}
	return s.Validate()
}

// Metrics lists the metric names the spec's substrate offers, default
// first.
func (s *Spec) Metrics() []string {
	b := sub(s.Substrate)
	if b == nil {
		return nil
	}
	names := slices.Sorted(maps.Keys(b.metrics))
	names = slices.DeleteFunc(names, func(n string) bool { return n == b.defaultMetric })
	return append([]string{b.defaultMetric}, names...)
}
