package scenario

import (
	"fmt"
	"math"

	"lotuseater/internal/population"
	"lotuseater/internal/simrng"
)

// PopulationSpec is the spec's `population` block: who is in the system,
// when, and what they want. It opens the three axes the paper holds fixed
// — a static, homogeneous, uniform-demand population — as declarative,
// validated, canonicalized knobs:
//
//   - Churn: nodes join and leave mid-run, as a rate-driven process
//     (synthesized deterministically per replicate) or an explicit trace
//     (replayed bit-identically; see examples/traces/).
//   - Classes: heterogeneous agent mixes — per-class altruism, capacity,
//     and patience mapped onto each substrate's existing knobs (the
//     paper's altruists/hoarders/differing-patience agent types).
//   - Popularity: Zipf or weighted content demand for the item-oriented
//     substrates (swarm pieces, gossip updates, coding symbols).
//
// Every degenerate form folds away in canonicalization — zero churn,
// a single trait-free class, uniform popularity — so a spec that spells
// out "no population model" hashes, caches, and replays byte-identically
// to one that omits the block (pinned by the invariant suite).
type PopulationSpec struct {
	// Churn describes arrivals and departures. Nil means a static
	// population.
	Churn *ChurnSpec `json:"churn,omitempty"`
	// Classes partitions the population into weighted agent classes.
	// Nil or a single default class means homogeneous.
	Classes []ClassSpec `json:"classes,omitempty"`
	// Popularity skews content demand. Nil or uniform means every item is
	// equally wanted.
	Popularity *PopularitySpec `json:"popularity,omitempty"`
}

// ChurnSpec drives node lifecycle. Either rates (a deterministic
// arrival/departure process synthesized from the replicate stream) or an
// explicit Trace (a recorded or synthesized schedule), never both.
type ChurnSpec struct {
	// LeaveRate is the expected fraction of present nodes departing per
	// round, in [0,1].
	LeaveRate float64 `json:"leaveRate,omitempty"`
	// JoinRate is the expected fraction of absent nodes (re)arriving per
	// round, in [0,1].
	JoinRate float64 `json:"joinRate,omitempty"`
	// Start is the first round lifecycle events may fire (e.g. after a
	// warmup), rate-driven processes only.
	Start int `json:"start,omitempty"`
	// Trace is an explicit event schedule, sorted by round. When set, the
	// rates must be zero. CLI: `scenarios run -trace file.json` loads one
	// from examples/traces/ format into this field.
	Trace []ChurnEvent `json:"trace,omitempty"`
}

// ChurnEvent is one trace entry: node leaves or (re)joins at the top of
// round Round, before any exchange.
type ChurnEvent struct {
	Round int    `json:"round"`
	Node  int    `json:"node"`
	Op    string `json:"op"` // "join" | "leave"
}

// ClassSpec is one agent class: a population share plus trait overrides
// mapped per substrate onto existing knobs. Nil traits inherit the
// substrate's scalar configuration.
type ClassSpec struct {
	// Name labels the class (required, unique within the spec).
	Name string `json:"name"`
	// Weight is the class's population share; weights must sum to 1.
	Weight float64 `json:"weight"`
	// Altruism overrides the probability of serving without compensation,
	// in [0,1] (gossip/token altruism knob, scrip altruist share).
	Altruism *float64 `json:"altruism,omitempty"`
	// Capacity scales the class's service capacity (token/coding contacts
	// per round, scrip starting balance); 1 is the configured baseline.
	Capacity *float64 `json:"capacity,omitempty"`
	// Patience scales how much service satiates the class (scrip
	// satiation threshold); 1 is the configured baseline.
	Patience *float64 `json:"patience,omitempty"`
}

// PopularitySpec skews which content is demanded.
type PopularitySpec struct {
	// Kind is "uniform", "zipf", or "weights".
	Kind string `json:"kind"`
	// Exponent is the Zipf exponent s > 0 (w_i ∝ (i+1)^-s), kind "zipf".
	Exponent float64 `json:"exponent,omitempty"`
	// Items sizes the Zipf catalog when the substrate has no native item
	// count (gossip); swarm and coding default to Pieces/Symbols.
	Items int `json:"items,omitempty"`
	// Weights is the explicit relative-demand vector, kind "weights". It
	// is normalized at compile time; for swarm/coding its length must
	// match the substrate's item count.
	Weights []float64 `json:"weights,omitempty"`
}

// classWeightEps is the tolerance for "class weights sum to 1": wide
// enough for decimal shares written by hand (0.1+0.2+0.7), tight enough
// to reject a forgotten class.
const classWeightEps = 1e-9

// Validate reports the first problem with the population block, or nil.
// nodes bounds trace node ids when positive (0 defers to the substrate
// default, the same contract as adversary target lists). Errors are
// deterministic: fixed check order, slices walked by index.
func (p *PopulationSpec) Validate(nodes int) error {
	if p == nil {
		return nil
	}
	if c := p.Churn; c != nil {
		for _, f := range []struct {
			name string
			v    float64
		}{{"leaveRate", c.LeaveRate}, {"joinRate", c.JoinRate}} {
			if !isFinite(f.v) || f.v < 0 || f.v > 1 {
				return fmt.Errorf("scenario: population.churn.%s must be in [0,1], got %g", f.name, f.v)
			}
		}
		if c.Start < 0 {
			return fmt.Errorf("scenario: population.churn.start must be non-negative, got %d", c.Start)
		}
		if len(c.Trace) > 0 && (c.LeaveRate > 0 || c.JoinRate > 0) {
			return fmt.Errorf("scenario: population.churn cannot combine rates with an explicit trace")
		}
		prev := 0
		for i, ev := range c.Trace {
			if ev.Op != "join" && ev.Op != "leave" {
				return fmt.Errorf("scenario: population.churn.trace[%d]: unknown op %q (want join|leave)", i, ev.Op)
			}
			if ev.Round < 0 {
				return fmt.Errorf("scenario: population.churn.trace[%d]: negative round %d", i, ev.Round)
			}
			if ev.Round < prev {
				return fmt.Errorf("scenario: population.churn.trace[%d]: round %d before round %d (trace must be sorted)", i, ev.Round, prev)
			}
			prev = ev.Round
			if ev.Node < 0 || (nodes > 0 && ev.Node >= nodes) {
				return fmt.Errorf("scenario: population.churn.trace[%d]: node %d outside the population", i, ev.Node)
			}
		}
	}
	if p.Classes != nil && len(p.Classes) == 0 {
		return fmt.Errorf("scenario: population.classes must not be empty (omit the key for a homogeneous population)")
	}
	sum := 0.0
	for i, cl := range p.Classes {
		if cl.Name == "" {
			return fmt.Errorf("scenario: population.classes[%d]: class needs a name", i)
		}
		for j := 0; j < i; j++ {
			if p.Classes[j].Name == cl.Name {
				return fmt.Errorf("scenario: population.classes[%d]: duplicate class name %q", i, cl.Name)
			}
		}
		if !isFinite(cl.Weight) || cl.Weight <= 0 {
			return fmt.Errorf("scenario: population.classes[%d] (%s): weight must be positive, got %g", i, cl.Name, cl.Weight)
		}
		sum += cl.Weight
		if cl.Altruism != nil && (!isFinite(*cl.Altruism) || *cl.Altruism < 0 || *cl.Altruism > 1) {
			return fmt.Errorf("scenario: population.classes[%d] (%s): altruism must be in [0,1], got %g", i, cl.Name, *cl.Altruism)
		}
		if cl.Capacity != nil && (!isFinite(*cl.Capacity) || *cl.Capacity < 0) {
			return fmt.Errorf("scenario: population.classes[%d] (%s): capacity must be non-negative, got %g", i, cl.Name, *cl.Capacity)
		}
		if cl.Patience != nil && (!isFinite(*cl.Patience) || *cl.Patience <= 0) {
			return fmt.Errorf("scenario: population.classes[%d] (%s): patience must be positive, got %g", i, cl.Name, *cl.Patience)
		}
	}
	if len(p.Classes) > 0 && math.Abs(sum-1) > classWeightEps {
		return fmt.Errorf("scenario: population.classes weights must sum to 1, got %g", sum)
	}
	if pop := p.Popularity; pop != nil {
		switch pop.Kind {
		case "uniform":
		case "zipf":
			if !isFinite(pop.Exponent) || pop.Exponent <= 0 {
				return fmt.Errorf("scenario: population.popularity.exponent must be > 0 for zipf, got %g", pop.Exponent)
			}
			if pop.Items < 0 {
				return fmt.Errorf("scenario: population.popularity.items must be non-negative, got %d", pop.Items)
			}
			if len(pop.Weights) > 0 {
				return fmt.Errorf("scenario: population.popularity kind zipf takes an exponent, not weights")
			}
		case "weights":
			if len(pop.Weights) == 0 {
				return fmt.Errorf("scenario: population.popularity kind weights needs a non-empty weights vector")
			}
			wsum := 0.0
			for i, w := range pop.Weights {
				if !isFinite(w) || w < 0 {
					return fmt.Errorf("scenario: population.popularity.weights[%d] must be finite and non-negative, got %g", i, w)
				}
				wsum += w
			}
			if wsum <= 0 || !isFinite(wsum) {
				return fmt.Errorf("scenario: population.popularity.weights must have a positive finite sum, got %g", wsum)
			}
		default:
			return fmt.Errorf("scenario: population.popularity kind %q unknown (want uniform|zipf|weights)", pop.Kind)
		}
	}
	return nil
}

// clone deep-copies the block (Spec.Clone uses it).
func (p *PopulationSpec) clone() *PopulationSpec {
	if p == nil {
		return nil
	}
	out := *p
	if p.Churn != nil {
		c := *p.Churn
		c.Trace = append([]ChurnEvent(nil), p.Churn.Trace...)
		if len(c.Trace) == 0 {
			c.Trace = nil
		}
		out.Churn = &c
	}
	if p.Classes != nil {
		out.Classes = make([]ClassSpec, len(p.Classes))
		for i, cl := range p.Classes {
			out.Classes[i] = cl
			out.Classes[i].Altruism = cloneFloat(cl.Altruism)
			out.Classes[i].Capacity = cloneFloat(cl.Capacity)
			out.Classes[i].Patience = cloneFloat(cl.Patience)
		}
	}
	if p.Popularity != nil {
		pp := *p.Popularity
		pp.Weights = append([]float64(nil), p.Popularity.Weights...)
		if len(pp.Weights) == 0 {
			pp.Weights = nil
		}
		out.Popularity = &pp
	}
	return &out
}

func cloneFloat(v *float64) *float64 {
	if v == nil {
		return nil
	}
	c := *v
	return &c
}

// canonicalized folds the degenerate forms to nil so "no population
// model spelled out" and "no population block" are one canonical spec:
// zero-rate traceless churn, a single class with no trait overrides
// (weight normalized to 1 when traits are kept), uniform popularity
// (kind uniform, or an explicit numerically-uniform weight vector), and
// finally the whole block when all three axes folded away.
func (p *PopulationSpec) canonicalized() *PopulationSpec {
	if p == nil {
		return nil
	}
	c := p.clone()
	if c.Churn != nil && c.Churn.LeaveRate == 0 && c.Churn.JoinRate == 0 && len(c.Churn.Trace) == 0 {
		c.Churn = nil
	}
	if len(c.Classes) == 1 {
		cl := &c.Classes[0]
		if cl.Altruism == nil && cl.Capacity == nil && cl.Patience == nil {
			c.Classes = nil
		} else {
			cl.Weight = 1
		}
	}
	if c.Popularity != nil {
		if c.Popularity.Kind == "uniform" ||
			(c.Popularity.Kind == "weights" && population.Uniform(c.Popularity.Weights, 0)) {
			c.Popularity = nil
		}
	}
	if c.Churn == nil && c.Classes == nil && c.Popularity == nil {
		return nil
	}
	return c
}

// hasChurn reports whether the spec's population can produce lifecycle
// events.
func (p *PopulationSpec) hasChurn() bool {
	return p != nil && p.Churn != nil &&
		(p.Churn.LeaveRate > 0 || p.Churn.JoinRate > 0 || len(p.Churn.Trace) > 0)
}

// churnMinPresent keeps rate-driven synthesis from draining the system:
// at least two nodes (one exchange pair) or 10% of the population,
// whichever is larger.
func churnMinPresent(n int) int {
	min := n / 10
	if min < 2 {
		min = 2
	}
	return min
}

// churnEvents compiles the churn axis for one replicate over a resolved
// (n nodes, rounds horizon): an explicit trace converts directly (no
// draws); rates synthesize a schedule from rng's "pop-churn" child, so
// engine streams never see churn randomness. Nil without churn — the
// degenerate spec draws nothing and wires nothing.
func (s *Spec) churnEvents(n, rounds int, rng *simrng.Source) []population.Event {
	p := s.Population
	if !p.hasChurn() {
		return nil
	}
	c := p.Churn
	if len(c.Trace) > 0 {
		events := make([]population.Event, 0, len(c.Trace))
		for _, ev := range c.Trace {
			if ev.Node >= n || ev.Round >= rounds {
				// A trace recorded against a larger shape replays the part
				// that fits; validated specs with pinned nodes never get
				// here.
				continue
			}
			events = append(events, population.Event{Round: ev.Round, Node: ev.Node, Join: ev.Op == "join"})
		}
		return events
	}
	return population.Synthesize(
		population.Rates{LeaveRate: c.LeaveRate, JoinRate: c.JoinRate, Start: c.Start},
		n, rounds, churnMinPresent(n), rng.Child("pop-churn"))
}

// classAssignment compiles the class axis: with two or more classes it
// draws a class index per node from rng's "pop-class" child and returns
// the per-node assignment; with fewer it returns nil and draws nothing
// (the scalar fold below covers a single class). The assignment is
// shared by every trait lookup so one node is one agent, not a per-knob
// re-roll.
func (s *Spec) classAssignment(n int, rng *simrng.Source) []int {
	p := s.Population
	if p == nil || len(p.Classes) < 2 {
		return nil
	}
	weights := make([]float64, len(p.Classes))
	for i, cl := range p.Classes {
		weights[i] = cl.Weight
	}
	return population.Assign(n, population.Normalize(weights), rng.Child("pop-class"))
}

// classScalar returns the single class's trait overrides when the spec
// has exactly one class (the homogeneous-override case that folds into
// scalar knobs with zero per-node state), else nil.
func (s *Spec) classScalar() *ClassSpec {
	p := s.Population
	if p == nil || len(p.Classes) != 1 {
		return nil
	}
	return &p.Classes[0]
}

// Trait resolution over an assignment. def is the substrate's configured
// scalar; the helpers return def untouched for classes that don't
// override the trait.

// altruismByClass materializes per-node altruism from an assignment, or
// nil when no class overrides altruism (engines then keep their scalar
// path, bit-identically).
func (s *Spec) altruismByClass(assign []int, def float64) []float64 {
	p := s.Population
	if assign == nil || p == nil {
		return nil
	}
	any := false
	for _, cl := range p.Classes {
		if cl.Altruism != nil {
			any = true
		}
	}
	if !any {
		return nil
	}
	out := make([]float64, len(assign))
	for i, c := range assign {
		if a := p.Classes[c].Altruism; a != nil {
			out[i] = *a
		} else {
			out[i] = def
		}
	}
	return out
}

// intsByClass materializes a per-node integer knob (contacts, balance,
// threshold) by scaling base with the chosen per-class trait multiplier.
// pick selects the multiplier (capacity or patience) from a class; nil
// multipliers inherit base. Returns nil when no class overrides.
func (s *Spec) intsByClass(assign []int, base int, pick func(ClassSpec) *float64) []int {
	p := s.Population
	if assign == nil || p == nil {
		return nil
	}
	any := false
	for _, cl := range p.Classes {
		if pick(cl) != nil {
			any = true
		}
	}
	if !any {
		return nil
	}
	out := make([]int, len(assign))
	for i, c := range assign {
		out[i] = scaleInt(base, pick(p.Classes[c]))
	}
	return out
}

// scaleInt applies a trait multiplier to an integer knob, rounding to
// nearest; nil inherits the base.
func scaleInt(base int, mult *float64) int {
	if mult == nil {
		return base
	}
	v := int(math.Floor(float64(base)**mult + 0.5))
	if v < 0 {
		v = 0
	}
	return v
}

// capacityOf and patienceOf are the pick functions for intsByClass.
func capacityOf(cl ClassSpec) *float64 { return cl.Capacity }
func patienceOf(cl ClassSpec) *float64 { return cl.Patience }

// popularityWeights compiles the popularity axis into a normalized
// demand vector over the substrate's item catalog. items is the native
// catalog size (swarm Pieces, coding Symbols); pass 0 for substrates
// without one (gossip), which fall back to the spec's Items knob or
// defaultCatalog. Nil without (or with uniform) popularity. An explicit
// weights vector whose length disagrees with a native catalog is an
// error — a silent resize would skew demand unpredictably.
func (s *Spec) popularityWeights(items int) ([]float64, error) {
	p := s.Population
	if p == nil || p.Popularity == nil || p.Popularity.Kind == "uniform" {
		return nil, nil
	}
	pop := p.Popularity
	switch pop.Kind {
	case "zipf":
		k := items
		if k <= 0 {
			k = pop.Items
		}
		if k <= 0 {
			k = defaultCatalog
		}
		w := population.ZipfWeights(k, pop.Exponent)
		if population.Uniform(w, 0) {
			return nil, nil
		}
		return w, nil
	case "weights":
		if items > 0 && len(pop.Weights) != items {
			return nil, fmt.Errorf("scenario: population.popularity.weights has %d entries but the substrate has %d items", len(pop.Weights), items)
		}
		w := population.Normalize(pop.Weights)
		if population.Uniform(w, 0) {
			return nil, nil
		}
		return w, nil
	default:
		return nil, nil
	}
}

// defaultCatalog is the Zipf catalog size for substrates without a
// native item count (gossip models an open update stream; the catalog
// is the popularity ranking updates are drawn from).
const defaultCatalog = 64
