package scenario

import (
	"fmt"
	"maps"
	"slices"
	"strings"

	"lotuseater/internal/attack"
	"lotuseater/internal/coding"
	"lotuseater/internal/defense"
	"lotuseater/internal/gossip"
	"lotuseater/internal/graph"
	"lotuseater/internal/scrip"
	"lotuseater/internal/sim"
	"lotuseater/internal/simrng"
	"lotuseater/internal/swarm"
	"lotuseater/internal/tokenmodel"
)

// substrate binds a simulator into the scenario engine: build one replicate
// as a sim.Model with the adversary and defense installed, and extract
// named metrics from its snapshot.
type substrate struct {
	defaultMetric string
	metrics       map[string]func(snap any) (float64, error)
	build         func(s *Spec, rng *simrng.Source, ws *sim.Workspace, adv sim.Adversary, def sim.Defense) (sim.Model, error)
}

func (b *substrate) checkMetric(name string) error {
	if _, ok := b.metrics[name]; ok {
		return nil
	}
	names := slices.Sorted(maps.Keys(b.metrics))
	return fmt.Errorf("scenario: unknown metric %q (want %s)", name, strings.Join(names, "|"))
}

func (b *substrate) metric(spec *Spec, snap any) (float64, error) {
	name := spec.Metric
	if name == "" {
		name = b.defaultMetric
	}
	fn, ok := b.metrics[name]
	if !ok {
		return 0, b.checkMetric(name)
	}
	return fn(snap)
}

// sub returns the substrate binding for name, or nil.
func sub(name string) *substrate { return substrates[name] }

// newDefense compiles the spec's defense, drawing the pooled per-worker
// instance from the workspace when one is available (allocation-free at
// steady state) and a fresh one otherwise.
func newDefense(spec *Spec, ws *sim.Workspace) sim.Defense {
	if !spec.Defense.enabled() {
		return nil
	}
	cap := spec.Defense.RateLimit
	if ws == nil {
		return defense.NewLimit(cap)
	}
	return ws.Defense(fmt.Sprintf("ratelimit/%d", cap), func() sim.Defense {
		return defense.NewLimit(cap)
	})
}

func badSnap(want string, snap any) error {
	return fmt.Errorf("scenario: snapshot is %T, want %s", snap, want)
}

var substrates = map[string]*substrate{
	"gossip": {
		defaultMetric: "isolated-delivery",
		metrics: map[string]func(any) (float64, error){
			"isolated-delivery": gossipMetric(func(r gossip.Result) float64 { return r.Isolated.MeanDelivery }),
			"honest-delivery":   gossipMetric(func(r gossip.Result) float64 { return r.AllHonest.MeanDelivery }),
			"satiated-delivery": gossipMetric(func(r gossip.Result) float64 { return r.Satiated.MeanDelivery }),
			"usable-fraction":   gossipMetric(func(r gossip.Result) float64 { return r.Isolated.UsableFraction }),
			"evictions":         gossipMetric(func(r gossip.Result) float64 { return float64(r.Evictions) }),
		},
		build: func(s *Spec, rng *simrng.Source, ws *sim.Workspace, adv sim.Adversary, def sim.Defense) (sim.Model, error) {
			cfg := gossip.DefaultConfig()
			if s.Nodes > 0 {
				cfg.Nodes = s.Nodes
			}
			if s.Rounds > 0 {
				cfg.Rounds = s.Rounds
			}
			cfg.PushSize = int(s.param("push", float64(cfg.PushSize)))
			cfg.BalanceSlack = int(s.param("slack", float64(cfg.BalanceSlack)))
			cfg.UpdatesPerRound = int(s.param("updates", float64(cfg.UpdatesPerRound)))
			cfg.Lifetime = int(s.param("lifetime", float64(cfg.Lifetime)))
			cfg.CopiesSeeded = int(s.param("copies", float64(cfg.CopiesSeeded)))
			cfg.Warmup = int(s.param("warmup", float64(cfg.Warmup)))
			cfg.Altruism = s.param("altruism", cfg.Altruism)
			cfg.ObedientFraction = s.param("obedient", cfg.ObedientFraction)
			if def != nil {
				// The defense is only consulted for obedient receivers;
				// default to a fully obedient population unless overridden.
				if _, ok := s.Params["obedient"]; !ok {
					cfg.ObedientFraction = 1
				}
			}
			if cl := s.classScalar(); cl != nil && cl.Altruism != nil {
				cfg.Altruism = *cl.Altruism
			}
			opts := []gossip.Option{gossip.WithAdversary(adv)}
			if def != nil {
				opts = append(opts, gossip.WithDefense(def))
			}
			assign := s.classAssignment(cfg.Nodes, rng)
			if alt := s.altruismByClass(assign, cfg.Altruism); alt != nil {
				opts = append(opts, gossip.WithNodeAltruism(alt))
			}
			if events := s.churnEvents(cfg.Nodes, cfg.Rounds, rng); len(events) > 0 {
				opts = append(opts, gossip.WithChurn(events))
			}
			weights, err := s.popularityWeights(0)
			if err != nil {
				return nil, err
			}
			if weights != nil {
				opts = append(opts, gossip.WithUpdateWeights(weights))
			}
			return gossip.New(cfg, rng.Uint64(), opts...)
		},
	},
	"token": {
		defaultMetric: "organic-completed",
		metrics: map[string]func(any) (float64, error){
			"organic-completed": tokenMetric(func(r tokenmodel.Result) float64 { return r.OrganicCompletedFraction }),
			"completed":         tokenMetric(func(r tokenmodel.Result) float64 { return r.CompletedFraction }),
			"mean-completion-round": tokenMetric(func(r tokenmodel.Result) float64 {
				return r.MeanCompletionRound
			}),
		},
		build: func(s *Spec, rng *simrng.Source, ws *sim.Workspace, adv sim.Adversary, def sim.Defense) (sim.Model, error) {
			n := s.Nodes
			if n <= 0 {
				n = 128
			}
			rounds := s.Rounds
			if rounds <= 0 {
				rounds = 80
			}
			deg := int(s.param("degree", 4))
			cfg := tokenmodel.Config{
				Graph:    graph.RandomRegularish(n, deg, rng.Child("graph")),
				Tokens:   int(s.param("tokens", 32)),
				Contacts: int(s.param("contacts", 2)),
				Altruism: s.param("altruism", 0),
				Rounds:   rounds,
			}
			if cl := s.classScalar(); cl != nil {
				if cl.Altruism != nil {
					cfg.Altruism = *cl.Altruism
				}
				cfg.Contacts = scaleInt(cfg.Contacts, cl.Capacity)
			}
			assign := s.classAssignment(n, rng)
			cfg.NodeAltruism = s.altruismByClass(assign, cfg.Altruism)
			cfg.NodeContacts = s.intsByClass(assign, cfg.Contacts, capacityOf)
			cfg.Churn = s.churnEvents(n, rounds, rng)
			opts := []tokenmodel.Option{
				tokenmodel.WithAdversary(adv),
				tokenmodel.WithWorkspace(ws),
			}
			if def != nil {
				opts = append(opts, tokenmodel.WithDefense(def))
			}
			return tokenmodel.New(cfg, rng.Uint64(), opts...)
		},
	},
	"scrip": {
		defaultMetric: "non-target-availability",
		metrics: map[string]func(any) (float64, error){
			"non-target-availability": scripMetric(func(r scrip.Result) float64 { return r.NonTargetAvailability }),
			"availability":            scripMetric(func(r scrip.Result) float64 { return r.Availability }),
			"satiated-targets":        scripMetric(func(r scrip.Result) float64 { return r.SatiatedTargetFraction }),
			"attacker-spent":          scripMetric(func(r scrip.Result) float64 { return float64(r.AttackerSpent) }),
			"mean-utility":            scripMetric(func(r scrip.Result) float64 { return r.MeanUtility }),
		},
		build: func(s *Spec, rng *simrng.Source, ws *sim.Workspace, adv sim.Adversary, def sim.Defense) (sim.Model, error) {
			cfg := scrip.DefaultConfig()
			if s.Nodes > 0 {
				cfg.Agents = s.Nodes
			}
			if s.Rounds > 0 {
				cfg.Rounds = s.Rounds
			}
			cfg.Threshold = int(s.param("threshold", float64(cfg.Threshold)))
			cfg.MoneyPerCapita = int(s.param("money", float64(cfg.MoneyPerCapita)))
			cfg.Cost = s.param("cost", cfg.Cost)
			cfg.AltruistFraction = s.param("altruists", cfg.AltruistFraction)
			if cl := s.classScalar(); cl != nil {
				if cl.Altruism != nil {
					cfg.AltruistFraction = *cl.Altruism
				}
				cfg.MoneyPerCapita = scaleInt(cfg.MoneyPerCapita, cl.Capacity)
				cfg.Threshold = scaleInt(cfg.Threshold, cl.Patience)
			}
			assign := s.classAssignment(cfg.Agents, rng)
			cfg.NodeAltruist = s.altruismByClass(assign, cfg.AltruistFraction)
			cfg.NodeBalance = s.intsByClass(assign, cfg.MoneyPerCapita, capacityOf)
			cfg.NodeThreshold = s.intsByClass(assign, cfg.Threshold, patienceOf)
			cfg.Churn = s.churnEvents(cfg.Agents, cfg.Rounds, rng)
			opts := []scrip.Option{scrip.WithAdversary(adv)}
			if def != nil {
				opts = append(opts, scrip.WithDefense(def))
			}
			return scrip.New(cfg, rng.Uint64(), opts...)
		},
	},
	"swarm": {
		defaultMetric: "completed",
		metrics: map[string]func(any) (float64, error){
			"completed":         swarmMetric(func(r swarm.Result) float64 { return r.CompletedFraction }),
			"mean-tick":         swarmMetric(func(r swarm.Result) float64 { return r.MeanCompletionTick }),
			"median-tick":       swarmMetric(func(r swarm.Result) float64 { return r.MedianCompletionTick }),
			"lost-pieces":       swarmMetric(func(r swarm.Result) float64 { return float64(r.LostPieces) }),
			"attacker-uploaded": swarmMetric(func(r swarm.Result) float64 { return float64(r.AttackerUploaded) }),
		},
		build: func(s *Spec, rng *simrng.Source, ws *sim.Workspace, adv sim.Adversary, def sim.Defense) (sim.Model, error) {
			cfg := swarm.DefaultConfig()
			if s.Nodes > 0 {
				cfg.Leechers = s.Nodes
			}
			if s.Rounds > 0 {
				cfg.Ticks = s.Rounds
			}
			cfg.Pieces = int(s.param("pieces", float64(cfg.Pieces)))
			cfg.UploadSlots = int(s.param("slots", float64(cfg.UploadSlots)))
			cfg.PeerSetSize = int(s.param("peerset", float64(cfg.PeerSetSize)))
			cfg.AttackerUplink = int(s.param("uplink", 16))
			cfg.SeedDepartTick = int(s.param("seedDepart", float64(cfg.SeedDepartTick)))
			cfg.SeedAfterComplete = s.param("seedAfter", 1) != 0
			opts := []swarm.Option{swarm.WithAdversary(adv)}
			if def != nil {
				opts = append(opts, swarm.WithDefense(def))
			}
			if events := s.churnEvents(cfg.Leechers, cfg.Ticks, rng); len(events) > 0 {
				opts = append(opts, swarm.WithChurn(events))
			}
			weights, err := s.popularityWeights(cfg.Pieces)
			if err != nil {
				return nil, err
			}
			if weights != nil {
				opts = append(opts, swarm.WithPieceWeights(weights))
			}
			return swarm.New(cfg, rng.Uint64(), opts...)
		},
	},
	"coding": {
		defaultMetric: "mean-progress",
		metrics: map[string]func(any) (float64, error){
			"mean-progress": codingMetric(func(r coding.DisseminationResult) float64 { return r.MeanProgress }),
			"completed":     codingMetric(func(r coding.DisseminationResult) float64 { return r.CompletedFraction }),
		},
		build: func(s *Spec, rng *simrng.Source, ws *sim.Workspace, adv sim.Adversary, def sim.Defense) (sim.Model, error) {
			n := s.Nodes
			if n <= 0 {
				n = 96
			}
			rounds := s.Rounds
			if rounds <= 0 {
				rounds = 50
			}
			deg := int(s.param("degree", 4))
			cfg := coding.DisseminationConfig{
				Graph:       graph.RandomRegularish(n, deg, rng.Child("graph")),
				Symbols:     int(s.param("symbols", 24)),
				PayloadSize: int(s.param("payload", 32)),
				Contacts:    int(s.param("contacts", 2)),
				Rounds:      rounds,
				Coded:       s.param("coded", 0) != 0,
			}
			if cl := s.classScalar(); cl != nil {
				cfg.Contacts = scaleInt(cfg.Contacts, cl.Capacity)
			}
			assign := s.classAssignment(n, rng)
			cfg.NodeContacts = s.intsByClass(assign, cfg.Contacts, capacityOf)
			cfg.Churn = s.churnEvents(n, rounds, rng)
			weights, err := s.popularityWeights(cfg.Symbols)
			if err != nil {
				return nil, err
			}
			cfg.SymbolWeights = weights
			opts := []coding.DisseminationOption{coding.WithAdversary(adv)}
			if def != nil {
				opts = append(opts, coding.WithDefense(def))
			}
			return coding.NewDissemination(cfg, rng.Uint64(), nil, opts...)
		},
	},
}

func gossipMetric(f func(gossip.Result) float64) func(any) (float64, error) {
	return func(snap any) (float64, error) {
		r, ok := snap.(gossip.Result)
		if !ok {
			return 0, badSnap("gossip.Result", snap)
		}
		return f(r), nil
	}
}

func tokenMetric(f func(tokenmodel.Result) float64) func(any) (float64, error) {
	return func(snap any) (float64, error) {
		r, ok := snap.(tokenmodel.Result)
		if !ok {
			return 0, badSnap("tokenmodel.Result", snap)
		}
		return f(r), nil
	}
}

func scripMetric(f func(scrip.Result) float64) func(any) (float64, error) {
	return func(snap any) (float64, error) {
		r, ok := snap.(scrip.Result)
		if !ok {
			return 0, badSnap("scrip.Result", snap)
		}
		return f(r), nil
	}
}

func swarmMetric(f func(swarm.Result) float64) func(any) (float64, error) {
	return func(snap any) (float64, error) {
		r, ok := snap.(swarm.Result)
		if !ok {
			return 0, badSnap("swarm.Result", snap)
		}
		return f(r), nil
	}
}

func codingMetric(f func(coding.DisseminationResult) float64) func(any) (float64, error) {
	return func(snap any) (float64, error) {
		r, ok := snap.(coding.DisseminationResult)
		if !ok {
			return 0, badSnap("coding.DisseminationResult", snap)
		}
		return f(r), nil
	}
}

// Interface conformance pins for the strategy layer: the canonical attack
// and defense implementations must satisfy the kernel's hook contracts.
var (
	_ sim.Adversary       = (*attack.Strategy)(nil)
	_ sim.ProtocolTrader  = (*attack.Strategy)(nil)
	_ sim.InstantSatiator = (*attack.Strategy)(nil)
	_ sim.DepartureAware  = (*attack.Strategy)(nil)
	_ sim.Defense         = (*defense.Limit)(nil)
)
