package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// Specs now arrive over HTTP (lotus-sim serve), so hostile bytes must fail
// with an error, never panic or crash the process. The corpus seeds every
// registry entry, the checked-in example specs, and a menagerie of
// near-miss documents; the fuzzer mutates from there.

// FuzzDecode: arbitrary bytes through the full spec pipeline — decode,
// validate, canonicalize, hash, re-encode.
func FuzzDecode(f *testing.F) {
	for _, spec := range All() {
		data, err := spec.JSON()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		canon, err := spec.CanonicalJSON()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(canon)
	}
	examples, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	if len(examples) == 0 {
		f.Fatal("no example scenario specs found to seed the corpus")
	}
	for _, path := range examples {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	for _, hostile := range []string{
		``,
		`{}`,
		`null`,
		`[]`,
		`{"name":"x"}`,
		`{"name":"x","substrate":"quantum"}`,
		`{"name":"x","substrate":"gossip","nodes":-1}`,
		`{"name":"x","substrate":"gossip","adversary":{"kind":"trade","fraction":1e308}}`,
		`{"name":"x","substrate":"gossip","adversary":{"targets":[-1,0,0]}}`,
		`{"name":"x","substrate":"gossip","nodes":4,"adversary":{"targets":[999999999]}}`,
		`{"name":"x","substrate":"gossip","sweep":{"axis":"params.","from":0,"to":1,"points":2}}`,
		`{"name":"x","substrate":"gossip","sweep":{"axis":"nodes","from":1e300,"to":-1e300,"points":-5}}`,
		`{"name":"x","substrate":"token","metric":"nope"}`,
		`{"name":"x","substrate":"swarm","params":{"pieces":1e100}}`,
		`{"name":"x","substrate":"coding","rounds":9223372036854775807}`,
		// Hostile precision plans: negative targets, impossible confidence,
		// inverted budgets, single-replicate adaptive runs.
		`{"name":"x","substrate":"gossip","precision":{"halfWidth":-0.01}}`,
		`{"name":"x","substrate":"gossip","precision":{"halfWidth":1e308,"confidence":1}}`,
		`{"name":"x","substrate":"gossip","precision":{"halfWidth":0.01,"confidence":1.5}}`,
		`{"name":"x","substrate":"gossip","precision":{"halfWidth":0.01,"minReps":50,"maxReps":5}}`,
		`{"name":"x","substrate":"gossip","precision":{"halfWidth":0.01,"maxReps":1}}`,
		`{"name":"x","substrate":"gossip","precision":{"halfWidth":0.01,"batch":-4}}`,
		`{"name":"x","substrate":"token","precision":{"halfWidth":0.01,"relative":true,"minReps":2,"maxReps":24,"batch":4}}`,
		`{"name":"x","substrate":"scrip","replicates":9,"precision":{"maxReps":7}}`,
		// Hostile population blocks: negative churn rates, schedules that
		// name nodes outside the population or run backwards in time,
		// degenerate class tables, and popularity models with impossible
		// exponents or weight vectors.
		`{"name":"x","substrate":"gossip","population":{"churn":{"leaveRate":-0.1}}}`,
		`{"name":"x","substrate":"gossip","population":{"churn":{"joinRate":1e308}}}`,
		`{"name":"x","substrate":"gossip","population":{"churn":{"start":-5}}}`,
		`{"name":"x","substrate":"gossip","nodes":4,"population":{"churn":{"trace":[{"round":0,"node":99,"op":"leave"}]}}}`,
		`{"name":"x","substrate":"gossip","population":{"churn":{"trace":[{"round":5,"node":0,"op":"leave"},{"round":2,"node":0,"op":"join"}]}}}`,
		`{"name":"x","substrate":"gossip","population":{"churn":{"trace":[{"round":0,"node":0,"op":"vanish"}]}}}`,
		`{"name":"x","substrate":"gossip","population":{"churn":{"trace":[{"round":-1,"node":0,"op":"leave"}]}}}`,
		`{"name":"x","substrate":"gossip","population":{"classes":[]}}`,
		`{"name":"x","substrate":"gossip","population":{"classes":[{"name":"a","weight":0.3},{"name":"b","weight":0.3}]}}`,
		`{"name":"x","substrate":"gossip","population":{"classes":[{"name":"a","weight":-1},{"name":"a","weight":2}]}}`,
		`{"name":"x","substrate":"gossip","population":{"classes":[{"name":"a","weight":1,"altruism":1.5}]}}`,
		`{"name":"x","substrate":"token","population":{"classes":[{"name":"a","weight":1,"capacity":-2}]}}`,
		`{"name":"x","substrate":"gossip","population":{"popularity":{"kind":"zipf","exponent":0}}}`,
		`{"name":"x","substrate":"gossip","population":{"popularity":{"kind":"zipf","exponent":-1.1}}}`,
		`{"name":"x","substrate":"gossip","population":{"popularity":{"kind":"weights","weights":[]}}}`,
		`{"name":"x","substrate":"coding","params":{"symbols":4},"population":{"popularity":{"kind":"weights","weights":[0.5,0.5]}}}`,
		`{"name":"x","substrate":"gossip","population":{"popularity":{"kind":"weights","weights":[-1,2]}}}`,
		`{"name":"x","substrate":"gossip","population":{"popularity":{"kind":"lognormal"}}}`,
		`{"name":"x","substrate":"swarm","population":{"popularity":{"kind":"zipf","exponent":1.1,"items":-3}}}`,
	} {
		f.Add([]byte(hostile))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Decode(data)
		if err != nil {
			return // hostile input rejected with an error: the contract
		}
		// Accepted specs must survive the rest of the pipeline the server
		// runs before simulating: canonicalization is a fixed point, the
		// hash is stable, and the canonical form re-validates.
		c1, err := spec.CanonicalJSON()
		if err != nil {
			t.Fatalf("valid spec failed to canonicalize: %v", err)
		}
		if _, err := spec.Hash(); err != nil {
			t.Fatalf("valid spec failed to hash: %v", err)
		}
		back, err := Decode(c1)
		if err != nil {
			t.Fatalf("canonical form of a valid spec does not decode: %v\n%s", err, c1)
		}
		c2, err := back.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(c1, c2) {
			t.Fatalf("canonicalization is not a fixed point:\n%s\n%s", c1, c2)
		}
	})
}

// FuzzSet: arbitrary -set key=value overrides against registry specs must
// error or apply — never panic — and an applied override must leave a spec
// that still encodes and canonicalizes.
func FuzzSet(f *testing.F) {
	for _, seed := range [][2]string{
		{"nodes", "64"},
		{"rounds", "1000000000000000000"},
		{"replicates", "-3"},
		{"metric", "isolated-delivery"},
		{"substrate", "swarm"},
		{"adversary.kind", "trade"},
		{"adversary.fraction", "0.25"},
		{"adversary.fraction", "NaN"},
		{"adversary.satiateFraction", "-Inf"},
		{"adversary.rotatePeriod", "10"},
		{"adversary.targets", "1,2,3"},
		{"adversary.targets", ",,,"},
		{"adversary.targets", "-1"},
		{"defense.kind", "ratelimit"},
		{"defense.rateLimit", "4"},
		{"precision.halfWidth", "0.01"},
		{"precision.halfWidth", "-1"},
		{"precision.halfWidth", "inf"},
		{"precision.confidence", "0.99"},
		{"precision.confidence", "2"},
		{"precision.relative", "true"},
		{"precision.relative", "maybe"},
		{"precision.minReps", "50"},
		{"precision.maxReps", "5"},
		{"precision.batch", "-4"},
		{"sweep.axis", "params.push"},
		{"sweep.axis", "params."},
		{"sweep.from", "1e308"},
		{"sweep.points", "2147483647"},
		{"params.push", "10"},
		{"params.", "1"},
		{"title", "x\x00y"},
		{"", ""},
		{"unknown.key", "value"},
		{"population.churn.leaveRate", "0.02"},
		{"population.churn.leaveRate", "-0.5"},
		{"population.churn.joinRate", "inf"},
		{"population.churn.start", "-3"},
		{"population.popularity.kind", "zipf"},
		{"population.popularity.kind", "lognormal"},
		{"population.popularity.exponent", "0"},
		{"population.popularity.exponent", "NaN"},
		{"population.popularity.items", "-7"},
	} {
		f.Add(seed[0], seed[1])
	}
	names := Names()
	f.Fuzz(func(t *testing.T, key, value string) {
		// Spread the fuzz across substrates: pick the spec by key length.
		spec, ok := Get(names[len(key)%len(names)])
		if !ok {
			t.Fatal("registry lookup failed")
		}
		if err := spec.Set(key, value); err != nil {
			return // rejected cleanly
		}
		// An accepted override may still make the spec invalid (Set is
		// syntax; ApplySets re-validates). Either way: no panics.
		if err := spec.Validate(); err != nil {
			return
		}
		if _, err := spec.CanonicalJSON(); err != nil {
			t.Fatalf("Set(%q,%q): valid spec failed to canonicalize: %v", key, value, err)
		}
		if _, err := spec.Hash(); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzApplySets: the CLI/HTTP override list path — split on '=', apply,
// re-validate — with adversarial list entries.
func FuzzApplySets(f *testing.F) {
	f.Add("nodes=64")
	f.Add("=")
	f.Add("nodes")
	f.Add("nodes=64=65")
	f.Add("adversary.targets=0,1,2")
	f.Add("params.push=inf")
	f.Fuzz(func(t *testing.T, kv string) {
		spec, ok := Get("gossip-trade")
		if !ok {
			t.Fatal("gossip-trade vanished")
		}
		if err := spec.ApplySets([]string{kv}); err != nil {
			return
		}
		if _, err := spec.CanonicalJSON(); err != nil {
			t.Fatalf("ApplySets(%q): %v", kv, err)
		}
	})
}
