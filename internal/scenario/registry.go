package scenario

import (
	"fmt"
	"maps"
	"slices"
	"sync"
)

var (
	regMu    sync.RWMutex
	registry = map[string]*Spec{}
)

// Register adds a spec to the registry. It panics on an invalid spec or a
// duplicate name — programmer errors at init time.
func Register(s *Spec) {
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("scenario: Register(%q): %v", s.Name, err))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", s.Name))
	}
	// Store a private copy: callers may keep mutating (or sharing) the spec
	// and its params map after registration.
	registry[s.Name] = s.Clone()
}

// Get returns a copy of the named spec, so callers can override fields
// without mutating the registry.
func Get(name string) (*Spec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	if !ok {
		return nil, false
	}
	return s.Clone(), true
}

// All returns copies of every registered spec sorted by name.
func All() []*Spec {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]*Spec, 0, len(registry))
	for _, name := range slices.Sorted(maps.Keys(registry)) {
		out = append(out, registry[name].Clone())
	}
	return out
}

// Names returns the sorted registry keys.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name
	}
	return names
}

// The canned scenarios: declarative forms of the repository's classic
// sweeps. Each is data — retune it with `-set key=val` instead of editing
// code.
func init() {
	Register(&Spec{
		Name:        "gossip-trade",
		Title:       "Trade lotus-eater vs BAR Gossip",
		Description: "Figure 1's trade arm as data: isolated-node delivery vs attacker fraction",
		Substrate:   "gossip",
		Adversary:   AdversarySpec{Kind: "trade", SatiateFraction: 0.70},
		Sweep:       SweepSpec{Axis: "adversary.fraction", From: 0, To: 0.9, Points: 10},
		Replicates:  3,
	})
	Register(&Spec{
		Name:        "gossip-trade-push10",
		Title:       "Trade lotus-eater vs BAR Gossip, push size 10",
		Description: "Figure 2's defense as data: raising the optimistic push size blunts the attack",
		Substrate:   "gossip",
		Adversary:   AdversarySpec{Kind: "trade", SatiateFraction: 0.70},
		Sweep:       SweepSpec{Axis: "adversary.fraction", From: 0, To: 0.9, Points: 10},
		Replicates:  3,
		Params:      map[string]float64{"push": 10},
	})
	Register(&Spec{
		Name:        "gossip-ratelimit",
		Title:       "Per-peer rate limiting vs the ideal attack",
		Description: "E8 as data: sweep the obedient acceptance cap against a 10% ideal attacker",
		Substrate:   "gossip",
		Adversary:   AdversarySpec{Kind: "ideal", Fraction: 0.10, SatiateFraction: 0.70},
		Defense:     DefenseSpec{Kind: "ratelimit"},
		Sweep:       SweepSpec{Axis: "defense.rateLimit", From: 0, To: 24, Points: 7},
		Replicates:  3,
	})
	Register(&Spec{
		Name:        "gossip-rotating",
		Title:       "Rotating the satiated set",
		Description: "E9's knob as data: sweep the rotation period of an 8% ideal attacker",
		Substrate:   "gossip",
		Adversary:   AdversarySpec{Kind: "ideal", Fraction: 0.08, SatiateFraction: 0.70},
		Sweep:       SweepSpec{Axis: "adversary.rotatePeriod", From: 0, To: 25, Points: 6},
		Replicates:  3,
	})
	Register(&Spec{
		Name:        "token-altruism",
		Title:       "Altruism restores the token model",
		Description: "E1 as data: sweep altruism a under half-system ideal satiation",
		Substrate:   "token",
		Adversary:   AdversarySpec{Kind: "ideal", SatiateFraction: 0.5},
		Sweep:       SweepSpec{Axis: "params.altruism", From: 0, To: 0.1, Points: 8},
		Replicates:  3,
	})
	Register(&Spec{
		Name:        "token-trade-defended",
		Title:       "Trade attack vs rate-limited token collection",
		Description: "New ground: the trade lotus-eater against the Section 3 model with a per-peer token cap",
		Substrate:   "token",
		Adversary:   AdversarySpec{Kind: "trade", Fraction: 0.15},
		Defense:     DefenseSpec{Kind: "ratelimit", RateLimit: 4},
		Sweep:       SweepSpec{Axis: "adversary.satiateFraction", From: 0, To: 0.8, Points: 6},
		Replicates:  3,
	})
	Register(&Spec{
		Name:        "scrip-trade-satiation",
		Title:       "Earned-budget satiation of a scrip economy",
		Description: "E4a as data: a 5% trade attacker sweeps its satiation target against the money supply",
		Substrate:   "scrip",
		Adversary:   AdversarySpec{Kind: "trade", Fraction: 0.05},
		Sweep:       SweepSpec{Axis: "adversary.satiateFraction", From: 0, To: 0.8, Points: 8},
		Metric:      "satiated-targets",
		Replicates:  3,
	})
	Register(&Spec{
		Name:        "swarm-ideal",
		Title:       "Ideal satiation of a healthy swarm",
		Description: "E5's qualitative claim as data: satiating leechers barely hurts (often helps) a seeded swarm",
		Substrate:   "swarm",
		Adversary:   AdversarySpec{Kind: "ideal", SatiateFraction: 0.70},
		Sweep:       SweepSpec{Axis: "adversary.satiateFraction", From: 0, To: 0.6, Points: 6},
		Replicates:  3,
		Params:      map[string]float64{"uplink": 32},
	})
	Register(&Spec{
		Name:        "coding-ideal",
		Title:       "Ideal satiation vs plain dissemination",
		Description: "E6's baseline as data: plain-symbol gossip under a growing instant-satiation attack",
		Substrate:   "coding",
		Adversary:   AdversarySpec{Kind: "ideal", SatiateFraction: 0.70},
		Sweep:       SweepSpec{Axis: "adversary.satiateFraction", From: 0, To: 0.6, Points: 6},
		Replicates:  3,
	})

	// Big-N scenarios: the million-node fast path as data. Populations this
	// size are exactly what the sparse target sets, pooled round scratch,
	// and in-replicate sharding exist for; one replicate, no sweep, short
	// horizons keep a run in seconds while still exercising every hot path
	// at full width. `make bench` tracks their per-round cost in
	// BENCH_kernel.json.
	Register(&Spec{
		Name:        "gossip-1m",
		Title:       "Ideal lotus-eater vs a million-node BAR Gossip",
		Description: "single replicate at n=10^6: sparse satiation, pooled planning, sharded evaluation",
		Substrate:   "gossip",
		Nodes:       1_000_000,
		Rounds:      12,
		Replicates:  1,
		Adversary:   AdversarySpec{Kind: "ideal", Fraction: 0.02, SatiateFraction: 0.30},
		Params: map[string]float64{
			"updates":  1,
			"lifetime": 8,
			"copies":   64,
			"warmup":   2,
			"push":     2,
		},
	})
	Register(&Spec{
		Name:        "swarm-1m",
		Title:       "Ideal satiation of a million-leecher swarm",
		Description: "single replicate at n=10^6 leechers: O(n·degree) reciprocation state, sharded peer scoring",
		Substrate:   "swarm",
		Nodes:       1_000_000,
		Rounds:      30,
		Replicates:  1,
		Adversary:   AdversarySpec{Kind: "ideal", Fraction: 0.01, SatiateFraction: 0.10},
		Params: map[string]float64{
			"pieces":  32,
			"peerset": 8,
			"uplink":  4096,
		},
	})

	registerCrossProduct()
	registerAutoVariants()
	registerPopulationVariants()
}

// registerPopulationVariants exercises the population model's three axes
// as canned scenarios: rate-driven churn on every substrate that has
// lifecycle hooks, Zipf demand on the item-oriented substrates, and a
// heterogeneous class mix on the scrip economy. Small shapes keep each
// runnable in CI; everything here is ordinary spec data, so `-set
// population.churn.leaveRate=...` retunes them like any other knob.
func registerPopulationVariants() {
	churn := func(leave, join float64) *PopulationSpec {
		return &PopulationSpec{Churn: &ChurnSpec{LeaveRate: leave, JoinRate: join}}
	}
	zipf := func(s float64) *PopulationSpec {
		return &PopulationSpec{Popularity: &PopularitySpec{Kind: "zipf", Exponent: s}}
	}
	Register(&Spec{
		Name:        "gossip-trade-churn",
		Title:       "Trade lotus-eater vs a churning BAR Gossip",
		Description: "the trade attack with nodes joining and leaving: departures shrink the satiated set, arrivals are fresh targets",
		Substrate:   "gossip",
		Nodes:       100,
		Rounds:      40,
		Adversary:   AdversarySpec{Kind: "trade", Fraction: 0.15, SatiateFraction: 0.70},
		Sweep:       SweepSpec{Axis: "population.churn.leaveRate", From: 0, To: 0.05, Points: 4},
		Replicates:  2,
		Population:  churn(0, 0.10),
	})
	Register(&Spec{
		Name:        "token-churn",
		Title:       "Ideal satiation of a churning token collection",
		Description: "half-system satiation while 2% of nodes leave and 10% of the absent return each round",
		Substrate:   "token",
		Nodes:       96,
		Rounds:      60,
		Adversary:   AdversarySpec{Kind: "ideal", Fraction: 0.10, SatiateFraction: 0.5},
		Replicates:  3,
		Params:      map[string]float64{"tokens": 24},
		Population:  churn(0.02, 0.10),
	})
	Register(&Spec{
		Name:        "scrip-churn",
		Title:       "Earned-budget satiation of a churning scrip economy",
		Description: "the money-supply bound under churn: leavers take their wallets, arrivals bring fresh endowment",
		Substrate:   "scrip",
		Nodes:       120,
		Rounds:      6000,
		Adversary:   AdversarySpec{Kind: "trade", Fraction: 0.05, SatiateFraction: 0.5},
		Metric:      "satiated-targets",
		Replicates:  2,
		Population:  churn(0.001, 0.01),
	})
	Register(&Spec{
		Name:        "swarm-churn",
		Title:       "Ideal satiation of a churning swarm",
		Description: "leechers depart mid-download and rejoin empty; the torrent stays alive while arrivals are due",
		Substrate:   "swarm",
		Nodes:       60,
		Rounds:      250,
		Adversary:   AdversarySpec{Kind: "ideal", Fraction: 0.10, SatiateFraction: 0.3},
		Replicates:  2,
		Params:      map[string]float64{"pieces": 64, "uplink": 16},
		Population:  churn(0.01, 0.05),
	})
	Register(&Spec{
		Name:        "coding-churn",
		Title:       "Plain dissemination under churn",
		Description: "departures freeze information in unreachable nodes; rejoiners restart from one symbol",
		Substrate:   "coding",
		Nodes:       64,
		Rounds:      40,
		Adversary:   AdversarySpec{Kind: "ideal", Fraction: 0.10, SatiateFraction: 0.5},
		Replicates:  3,
		Params:      map[string]float64{"symbols": 16},
		Population:  churn(0.02, 0.10),
	})
	Register(&Spec{
		Name:        "gossip-zipf",
		Title:       "Zipf update demand vs the trade lotus-eater",
		Description: "popular updates seed wide, the tail seeds thin: skewed demand changes what satiation is worth",
		Substrate:   "gossip",
		Nodes:       100,
		Rounds:      40,
		Adversary:   AdversarySpec{Kind: "trade", Fraction: 0.15, SatiateFraction: 0.70},
		Sweep:       SweepSpec{Axis: "population.popularity.exponent", From: 0.2, To: 1.6, Points: 4},
		Replicates:  2,
		Population:  zipf(1.0),
	})
	Register(&Spec{
		Name:        "swarm-zipf",
		Title:       "Popularity-skewed rarest-first",
		Description: "weighted tie-breaking concentrates demand on popular pieces — the artificial last-pieces problem gets easier to induce",
		Substrate:   "swarm",
		Nodes:       60,
		Rounds:      250,
		Adversary:   AdversarySpec{Kind: "ideal", Fraction: 0.10, SatiateFraction: 0.3},
		Replicates:  2,
		Params:      map[string]float64{"pieces": 64, "uplink": 16},
		Population:  zipf(1.1),
	})
	Register(&Spec{
		Name:        "coding-zipf",
		Title:       "Zipf symbol demand vs plain dissemination",
		Description: "plain mode moves popular symbols first; coding is immune by construction (recodings span everything)",
		Substrate:   "coding",
		Nodes:       64,
		Rounds:      40,
		Adversary:   AdversarySpec{Kind: "ideal", Fraction: 0.10, SatiateFraction: 0.5},
		Replicates:  3,
		Params:      map[string]float64{"symbols": 16},
		Population:  zipf(1.2),
	})
	patience := 2.5
	altruism := 0.05
	Register(&Spec{
		Name:        "scrip-classes",
		Title:       "Heterogeneous scrip economy",
		Description: "a hoarder class (patience 2.5x) alongside a mildly altruistic majority: satiating hoarders costs the attacker more",
		Substrate:   "scrip",
		Nodes:       120,
		Rounds:      6000,
		Adversary:   AdversarySpec{Kind: "trade", Fraction: 0.05, SatiateFraction: 0.5},
		Metric:      "satiated-targets",
		Replicates:  2,
		Population: &PopulationSpec{Classes: []ClassSpec{
			{Name: "hoarders", Weight: 0.25, Patience: &patience},
			{Name: "regulars", Weight: 0.75, Altruism: &altruism},
		}},
	})
}

// registerAutoVariants derives adaptive-precision twins of the noisiest
// trade scenarios: same substrate, same adversary, same sweep, but each
// sweep point runs replicate waves until the metric mean's 95% CI
// half-width drops to 0.01 (or the 24-replicate budget is spent) instead
// of a fixed count. Quiet points — the x=0 baselines, the saturated tails —
// stop at two replicates; the noisy shoulder of the curve gets the budget.
func registerAutoVariants() {
	for _, name := range []string{"gossip-trade", "token-trade-defended", "scrip-trade-satiation"} {
		base, ok := Get(name)
		if !ok {
			panic(fmt.Sprintf("scenario: auto variant of unregistered %q", name))
		}
		base.Name += "-auto"
		if base.Title != "" {
			base.Title += " (adaptive)"
		}
		base.Description = "adaptive twin of " + name + ": CI-targeted replication, ±0.01 @ 95% per point"
		base.Replicates = 0
		base.Precision = &PrecisionSpec{HalfWidth: 0.01, MinReps: 2, MaxReps: 24, Batch: 4}
		Register(base)
	}

	// The million-leecher swarm joins the adaptive family now that a
	// replicate costs seconds rather than minutes: a sweep-less spec is a
	// single point, so the plan just runs waves at n=10^6 until the metric
	// CI tightens. The budget is deliberately small — each extra replicate
	// is a full million-node run.
	swarm1m, ok := Get("swarm-1m")
	if !ok {
		panic(`scenario: auto variant of unregistered "swarm-1m"`)
	}
	swarm1m.Name += "-auto"
	swarm1m.Title += " (adaptive)"
	swarm1m.Description = "adaptive twin of swarm-1m: CI-targeted replication, ±0.005 @ 95%, max 6 reps"
	swarm1m.Replicates = 0
	swarm1m.Precision = &PrecisionSpec{HalfWidth: 0.005, MinReps: 2, MaxReps: 6, Batch: 2}
	Register(swarm1m)
}

// registerCrossProduct generates the attack x substrate x defense grid: every
// attack kind against every substrate, undefended and rate-limited, each
// sweeping the attacker fraction. This is the paper's thesis as a test
// matrix — the same adversary strategy runs unmodified against five
// different systems — and the first time the trade lotus-eater meets the
// swarm and scrip economies.
func registerCrossProduct() {
	kinds := []string{"none", "crash", "ideal", "trade"}
	// Small-but-meaningful populations keep the full grid runnable in CI.
	shapes := map[string]struct {
		nodes, rounds int
		params        map[string]float64
	}{
		"gossip": {nodes: 120, rounds: 40},
		"token":  {nodes: 96, rounds: 60, params: map[string]float64{"tokens": 24}},
		"scrip":  {nodes: 120, rounds: 6000},
		"swarm":  {nodes: 60, rounds: 250, params: map[string]float64{"pieces": 64, "uplink": 16}},
		"coding": {nodes: 64, rounds: 40, params: map[string]float64{"symbols": 16}},
	}
	for _, substrate := range Substrates {
		shape := shapes[substrate]
		for _, kind := range kinds {
			for _, defended := range []bool{false, true} {
				name := fmt.Sprintf("x/%s-%s", kind, substrate)
				desc := fmt.Sprintf("cross-product: %s attack vs the %s substrate", kind, substrate)
				// Crash and trade act through the attacker's nodes, so the
				// controlled fraction is the natural axis. Ideal satiation is
				// delivered out of protocol — sweeping the satiated fraction
				// (at a fixed 10% placement) is what actually modulates it,
				// and keeps x = 0 a genuine no-attack baseline on every
				// substrate.
				adversary := AdversarySpec{Kind: kind, SatiateFraction: 0.70}
				axis := SweepSpec{Axis: "adversary.fraction", From: 0, To: 0.4, Points: 5}
				if kind == "ideal" {
					adversary.Fraction = 0.10
					axis = SweepSpec{Axis: "adversary.satiateFraction", From: 0, To: 0.7, Points: 5}
				}
				spec := &Spec{
					Name:        name,
					Description: desc,
					Substrate:   substrate,
					Nodes:       shape.nodes,
					Rounds:      shape.rounds,
					Adversary:   adversary,
					Sweep:       axis,
					Replicates:  2,
					Params:      shape.params,
				}
				if defended {
					spec.Name += "+ratelimit"
					spec.Description += ", rate-limit defense on"
					spec.Defense = DefenseSpec{Kind: "ratelimit", RateLimit: 4}
				}
				Register(spec)
			}
		}
	}
}
