package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Trace is the on-disk churn trace format (examples/traces/): a recorded
// or hand-written lifecycle schedule a spec replays bit-identically. The
// file is plain JSON —
//
//	{
//	  "version": 1,
//	  "description": "flash crowd then exodus",
//	  "events": [
//	    {"round": 0, "node": 4, "op": "leave"},
//	    {"round": 3, "node": 4, "op": "join"}
//	  ]
//	}
//
// — with events sorted by round; same-round events apply in file order.
// ParseTrace validates the shape, and ApplyTo installs the events as the
// spec's population.churn.trace, where Spec.Validate re-checks them
// against the spec's node count.
type Trace struct {
	// Version pins the format; 1 is the only version.
	Version int `json:"version"`
	// Description says what population story the trace tells.
	Description string `json:"description,omitempty"`
	// Events is the schedule, sorted by round.
	Events []ChurnEvent `json:"events"`
}

// ParseTrace decodes and validates a trace document. Unknown fields are
// rejected so a typo'd key fails loudly instead of silently replaying a
// different population.
func ParseTrace(data []byte) (*Trace, error) {
	var tr Trace
	if err := decodeStrict(data, &tr); err != nil {
		return nil, fmt.Errorf("scenario: trace: %w", err)
	}
	if tr.Version != 1 {
		return nil, fmt.Errorf("scenario: trace: unsupported version %d (want 1)", tr.Version)
	}
	if len(tr.Events) == 0 {
		return nil, fmt.Errorf("scenario: trace: no events")
	}
	prev := 0
	for i, ev := range tr.Events {
		if ev.Op != "join" && ev.Op != "leave" {
			return nil, fmt.Errorf("scenario: trace: events[%d]: unknown op %q (want join|leave)", i, ev.Op)
		}
		if ev.Round < 0 {
			return nil, fmt.Errorf("scenario: trace: events[%d]: negative round %d", i, ev.Round)
		}
		if ev.Round < prev {
			return nil, fmt.Errorf("scenario: trace: events[%d]: round %d before round %d (trace must be sorted)", i, ev.Round, prev)
		}
		prev = ev.Round
		if ev.Node < 0 {
			return nil, fmt.Errorf("scenario: trace: events[%d]: negative node %d", i, ev.Node)
		}
	}
	return &tr, nil
}

// LoadTrace reads and parses a trace file.
func LoadTrace(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseTrace(data)
}

// ApplyTo installs the trace as the spec's churn schedule. The spec must
// not already drive churn some other way — a trace silently replacing a
// rate process would run a different population than the spec says.
func (tr *Trace) ApplyTo(spec *Spec) error {
	if spec.Population != nil && spec.Population.Churn != nil {
		c := spec.Population.Churn
		if c.LeaveRate > 0 || c.JoinRate > 0 || len(c.Trace) > 0 {
			return fmt.Errorf("scenario: trace: spec already has population churn; drop it before replaying a trace")
		}
	}
	if spec.Population == nil {
		spec.Population = &PopulationSpec{}
	}
	events := make([]ChurnEvent, len(tr.Events))
	copy(events, tr.Events)
	spec.Population.Churn = &ChurnSpec{Trace: events}
	return nil
}

// decodeStrict unmarshals JSON rejecting unknown fields and trailing
// documents.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	var extra any
	if err := dec.Decode(&extra); err != io.EOF {
		return fmt.Errorf("trailing data after document")
	}
	return nil
}
