package scenario

import (
	"bytes"
	"fmt"
	"math"
	"testing"
)

// The cross-substrate invariant suite: program-equivalence-style laws that
// must hold for every attack.Kind on every substrate, whatever the worker
// count. These are the properties that make concurrent, adaptively-stopped
// runs trustworthy — if a zero-attacker spec, a fixed run, and an adaptive
// run that cannot stop early are not literally the same program, no CI
// target can be believed.
//
//	(a) zero attackers ≡ the none strategy, bit for bit;
//	(b) raising attacker pressure never improves the substrate's
//	    organic-delivery metric beyond accumulator tolerance (except where
//	    the paper itself predicts the attack backfires — see
//	    attackBackfires);
//	(c) an adaptive plan that can never stop early ≡ the fixed run of the
//	    same budget, byte for byte.

var invariantKinds = []string{"none", "crash", "ideal", "trade"}

// invariantSpec returns a small single-point copy of the cross-product
// entry for kind x substrate, shrunk for test runtime exactly like the
// determinism table.
func invariantSpec(t *testing.T, kind, substrate string) *Spec {
	t.Helper()
	spec, ok := Get(fmt.Sprintf("x/%s-%s", kind, substrate))
	if !ok {
		t.Fatalf("x/%s-%s missing from the registry", kind, substrate)
	}
	spec.Sweep = SweepSpec{}
	if substrate == "scrip" {
		spec.Rounds = 1200
	}
	return spec
}

// dataBytes strips the headline (which necessarily spells the attack
// label) and returns the rest of the artifact as canonical JSON.
func dataBytes(t *testing.T, spec *Spec, seed uint64, opts RunOptions) []byte {
	t.Helper()
	a, err := Run(spec, seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	a.Name, a.Title = "", ""
	data, err := a.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestInvariantZeroAttackersIsNone: with the attacker controlling zero
// nodes there is nobody to crash, satiate, or trade — every attack kind
// must reproduce the none baseline bit-identically, on every substrate,
// under workers 1 and 8.
func TestInvariantZeroAttackersIsNone(t *testing.T) {
	for _, substrate := range Substrates {
		for _, kind := range []string{"crash", "ideal", "trade"} {
			t.Run(kind+"/"+substrate, func(t *testing.T) {
				t.Parallel()
				attacked := invariantSpec(t, kind, substrate)
				attacked.Adversary.Fraction = 0
				baseline := attacked.Clone()
				baseline.Adversary.Kind = "none"
				for _, workers := range []int{1, 8} {
					opts := RunOptions{Workers: workers, Replicates: 2}
					got := dataBytes(t, attacked, 7, opts)
					want := dataBytes(t, baseline, 7, opts)
					if !bytes.Equal(got, want) {
						t.Fatalf("workers %d: zero-attacker %s diverges from none:\n%s\nvs\n%s",
							workers, kind, got, want)
					}
				}
			})
		}
	}
}

// attackBackfires marks the kind x substrate pairs where the paper itself
// predicts satiation helps rather than hurts: a seeded swarm treats an
// ideal satiator as free upload capacity, and a trade lotus-eater holding
// the full file is one more seeder (E5: "satiating leechers ... often
// actually a net benefit"). For those pairs the invariant flips: the
// attack must NOT collapse organic delivery.
var attackBackfires = map[string]bool{
	"ideal/swarm": true,
	"trade/swarm": true,
}

// TestInvariantMonotoneHarm: raising the attacker-controlled fraction
// never improves the substrate's organic-delivery metric beyond
// accumulator tolerance (and for the backfiring pairs, never collapses
// it). Common-random-numbers seeding pairs the sweep points — replicate i
// sees the same streams at every fraction — so the per-point means are
// directly comparable and the tolerance can stay tight.
func TestInvariantMonotoneHarm(t *testing.T) {
	const replicates = 3
	for _, substrate := range Substrates {
		for _, kind := range invariantKinds {
			t.Run(kind+"/"+substrate, func(t *testing.T) {
				t.Parallel()
				spec := invariantSpec(t, kind, substrate)
				spec.Sweep = SweepSpec{Axis: "adversary.fraction", From: 0, To: 0.4, Points: 3}
				a, err := Run(spec, 17, RunOptions{Replicates: replicates})
				if err != nil {
					t.Fatal(err)
				}
				mean, stddev := a.Series[0], a.Series[1]
				tol := func(i, j int) float64 {
					// Accumulator tolerance: two standard errors on each of
					// the compared means, plus a floor for the paired-draw
					// discreteness of tiny populations.
					se := (stddev.Points[i].Y + stddev.Points[j].Y) / math.Sqrt(replicates)
					return 0.02 + 2*se
				}
				if attackBackfires[kind+"/"+substrate] {
					base := mean.Points[0].Y
					for i := 1; i < len(mean.Points); i++ {
						if mean.Points[i].Y < base-0.15 {
							t.Fatalf("%s on %s should backfire, but collapsed delivery at fraction %.2f: %.4f vs baseline %.4f",
								kind, substrate, mean.Points[i].X, mean.Points[i].Y, base)
						}
					}
					return
				}
				for i := 1; i < len(mean.Points); i++ {
					prev, cur := mean.Points[i-1].Y, mean.Points[i].Y
					if cur > prev+tol(i-1, i) {
						t.Fatalf("raising %s pressure improved %s delivery: %.4f at %.2f -> %.4f at %.2f (tol %.4f)",
							kind, substrate, prev, mean.Points[i-1].X, cur, mean.Points[i].X, tol(i-1, i))
					}
				}
			})
		}
	}
}

// The population-model invariants: every degenerate population block must
// be the NO-population program, bit for bit. These are what license the
// draw-parity discipline in the engines — a churn cursor that never fires,
// a class table that folds to the scalar knobs, and a uniform popularity
// kind must all leave every RNG stream untouched.

// TestInvariantZeroChurnIsStatic: a churn block with zero rates and no
// trace schedules nothing — the run must reproduce the static artifact
// bit-identically on every substrate, under workers 1 and 8.
func TestInvariantZeroChurnIsStatic(t *testing.T) {
	for _, substrate := range Substrates {
		t.Run(substrate, func(t *testing.T) {
			t.Parallel()
			static := invariantSpec(t, "trade", substrate)
			churned := static.Clone()
			churned.Population = &PopulationSpec{Churn: &ChurnSpec{}}
			for _, workers := range []int{1, 8} {
				opts := RunOptions{Workers: workers, Replicates: 2}
				got := dataBytes(t, churned, 7, opts)
				want := dataBytes(t, static, 7, opts)
				if !bytes.Equal(got, want) {
					t.Fatalf("workers %d: zero-rate churn diverges from the static run on %s", workers, substrate)
				}
			}
		})
	}
}

// TestInvariantSingleClassIsHomogeneous: one agent class is no classes.
// Three forms, each bit-identical to the class-free run:
//
//   - a trait-free class on every substrate (canonicalization folds it
//     away entirely);
//   - a single class overriding altruism ≡ the substrate's scalar
//     altruism param (the classScalar fold);
//   - two classes with identical traits ≡ the homogeneous run — the
//     per-node arrays materialize, but hold the same value everywhere,
//     and the class-assignment draws come from a dedicated child stream
//     that perturbs nothing else.
func TestInvariantSingleClassIsHomogeneous(t *testing.T) {
	one := 1.0
	alt := 0.7
	t.Run("trait-free", func(t *testing.T) {
		for _, substrate := range Substrates {
			t.Run(substrate, func(t *testing.T) {
				t.Parallel()
				plain := invariantSpec(t, "trade", substrate)
				classed := plain.Clone()
				classed.Population = &PopulationSpec{Classes: []ClassSpec{{Name: "everyone", Weight: 1}}}
				opts := RunOptions{Workers: 4, Replicates: 2}
				if !bytes.Equal(dataBytes(t, classed, 7, opts), dataBytes(t, plain, 7, opts)) {
					t.Fatalf("a trait-free class changed the %s run", substrate)
				}
			})
		}
	})
	t.Run("scalar-fold", func(t *testing.T) {
		for _, substrate := range []string{"gossip", "token"} {
			t.Run(substrate, func(t *testing.T) {
				t.Parallel()
				plain := invariantSpec(t, "trade", substrate)
				if plain.Params == nil {
					plain.Params = map[string]float64{}
				}
				plain.Params["altruism"] = alt
				classed := plain.Clone()
				classed.Params = map[string]float64{}
				for k, v := range plain.Params {
					if k != "altruism" {
						classed.Params[k] = v
					}
				}
				classed.Population = &PopulationSpec{Classes: []ClassSpec{{Name: "everyone", Weight: 1, Altruism: &alt}}}
				opts := RunOptions{Workers: 4, Replicates: 2}
				if !bytes.Equal(dataBytes(t, classed, 7, opts), dataBytes(t, plain, 7, opts)) {
					t.Fatalf("single-class altruism diverges from the altruism param on %s", substrate)
				}
			})
		}
	})
	t.Run("identical-classes", func(t *testing.T) {
		for _, substrate := range []string{"gossip", "token", "coding"} {
			t.Run(substrate, func(t *testing.T) {
				t.Parallel()
				plain := invariantSpec(t, "trade", substrate)
				classed := plain.Clone()
				cl := ClassSpec{Weight: 0.5, Capacity: &one}
				a, b := cl, cl
				a.Name, b.Name = "left", "right"
				classed.Population = &PopulationSpec{Classes: []ClassSpec{a, b}}
				opts := RunOptions{Workers: 4, Replicates: 2}
				if !bytes.Equal(dataBytes(t, classed, 7, opts), dataBytes(t, plain, 7, opts)) {
					t.Fatalf("two identical classes diverge from the homogeneous run on %s", substrate)
				}
			})
		}
	})
}

// TestInvariantUniformPopularityIsNone: uniform demand is no demand model
// — on every substrate with an item catalogue, kind "uniform" must
// reproduce the no-popularity run bit for bit.
func TestInvariantUniformPopularityIsNone(t *testing.T) {
	for _, substrate := range []string{"gossip", "swarm", "coding"} {
		t.Run(substrate, func(t *testing.T) {
			t.Parallel()
			plain := invariantSpec(t, "trade", substrate)
			uniform := plain.Clone()
			uniform.Population = &PopulationSpec{Popularity: &PopularitySpec{Kind: "uniform"}}
			for _, workers := range []int{1, 8} {
				opts := RunOptions{Workers: workers, Replicates: 2}
				if !bytes.Equal(dataBytes(t, uniform, 7, opts), dataBytes(t, plain, 7, opts)) {
					t.Fatalf("workers %d: uniform popularity diverges from none on %s", workers, substrate)
				}
			}
		})
	}
}

// TestInvariantChurnMonotoneHarm: the monotone-harm law survives churn.
// Replicate i synthesizes the same arrival/departure schedule at every
// attacker fraction (the churn stream is a child of the replicate stream,
// independent of the adversary axis), so common-random-numbers pairing
// still holds and the tolerance can stay tight.
func TestInvariantChurnMonotoneHarm(t *testing.T) {
	const replicates = 3
	for _, substrate := range Substrates {
		t.Run(substrate, func(t *testing.T) {
			t.Parallel()
			spec := invariantSpec(t, "trade", substrate)
			spec.Population = &PopulationSpec{Churn: &ChurnSpec{LeaveRate: 0.01, JoinRate: 0.05}}
			spec.Sweep = SweepSpec{Axis: "adversary.fraction", From: 0, To: 0.4, Points: 3}
			a, err := Run(spec, 17, RunOptions{Replicates: replicates})
			if err != nil {
				t.Fatal(err)
			}
			mean, stddev := a.Series[0], a.Series[1]
			tol := func(i, j int) float64 {
				se := (stddev.Points[i].Y + stddev.Points[j].Y) / math.Sqrt(replicates)
				return 0.03 + 2*se
			}
			if attackBackfires["trade/"+substrate] {
				base := mean.Points[0].Y
				for i := 1; i < len(mean.Points); i++ {
					if mean.Points[i].Y < base-0.15 {
						t.Fatalf("trade on churning %s should backfire, but collapsed delivery at fraction %.2f: %.4f vs baseline %.4f",
							substrate, mean.Points[i].X, mean.Points[i].Y, base)
					}
				}
				return
			}
			for i := 1; i < len(mean.Points); i++ {
				prev, cur := mean.Points[i-1].Y, mean.Points[i].Y
				if cur > prev+tol(i-1, i) {
					t.Fatalf("raising trade pressure improved churning %s delivery: %.4f at %.2f -> %.4f at %.2f (tol %.4f)",
						substrate, prev, mean.Points[i-1].X, cur, mean.Points[i].X, tol(i-1, i))
				}
			}
		})
	}
}

// TestInvariantPopulationWorkerParity: every population-model scenario in
// the registry — churn on all five substrates, Zipf demand, and the
// heterogeneous class mix — answers bit-identically under workers 1 and
// 8. This is the population analogue of the determinism table: lifecycle
// events, class assignment, and weighted picks all live in per-replicate
// streams, so scheduling cannot leak in.
func TestInvariantPopulationWorkerParity(t *testing.T) {
	names := []string{
		"gossip-trade-churn", "token-churn", "scrip-churn", "swarm-churn", "coding-churn",
		"gossip-zipf", "swarm-zipf", "coding-zipf", "scrip-classes",
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, ok := Get(name)
			if !ok {
				t.Fatalf("%s missing from the registry", name)
			}
			spec.Sweep = SweepSpec{}
			if spec.Substrate == "scrip" {
				spec.Rounds = 1200
			}
			one := dataBytes(t, spec, 7, RunOptions{Workers: 1, Replicates: 2})
			eight := dataBytes(t, spec, 7, RunOptions{Workers: 8, Replicates: 2})
			if !bytes.Equal(one, eight) {
				t.Fatalf("%s diverges between workers 1 and 8", name)
			}
		})
	}
}

// TestInvariantAdaptiveDegeneratesToFixed: an adaptive run that can never
// stop early is the fixed run. Two forms, both per attack x substrate and
// per worker count:
//
//   - halfWidth 0 (an inert plan) must reproduce the fixed artifact byte
//     for byte, headline included;
//   - an active plan whose target is unreachably tight (so it runs its
//     full MaxReps budget through the wave engine) must produce the same
//     statistics series, value for value — the engine folds the same
//     replicates in the same order.
func TestInvariantAdaptiveDegeneratesToFixed(t *testing.T) {
	const n = 4
	for _, substrate := range Substrates {
		for _, kind := range invariantKinds {
			t.Run(kind+"/"+substrate, func(t *testing.T) {
				t.Parallel()
				fixed := invariantSpec(t, kind, substrate)
				fixed.Replicates = n

				inert := fixed.Clone()
				inert.Replicates = 0
				inert.Precision = &PrecisionSpec{HalfWidth: 0, MaxReps: n}

				// A degenerate metric (zero sample variance — e.g. a swarm
				// that completes at 1.0 in every replicate) legitimately
				// meets ANY positive half-width target, so "unreachably
				// tight" cannot force a full budget; MinReps = MaxReps can,
				// while still routing through the active wave engine.
				tight := fixed.Clone()
				tight.Replicates = 0
				tight.Precision = &PrecisionSpec{HalfWidth: 1e-300, MinReps: n, MaxReps: n, Batch: 2}

				for _, workers := range []int{1, 8} {
					opts := RunOptions{Workers: workers}
					fa, err := Run(fixed, 23, opts)
					if err != nil {
						t.Fatal(err)
					}
					ia, err := Run(inert, 23, opts)
					if err != nil {
						t.Fatal(err)
					}
					fj, _ := fa.CanonicalJSON()
					ij, _ := ia.CanonicalJSON()
					if !bytes.Equal(fj, ij) {
						t.Fatalf("workers %d: halfWidth=0 plan diverges from the fixed run:\n%s\nvs\n%s", workers, ij, fj)
					}

					ta, err := Run(tight, 23, opts)
					if err != nil {
						t.Fatal(err)
					}
					// The adaptive artifact adds reps/ci-halfwidth series and
					// a plan headline; the five statistics series must match
					// the fixed run exactly.
					for si, fs := range fa.Series {
						ts := ta.Series[si]
						if fs.Name != ts.Name {
							t.Fatalf("series %d: %q vs %q", si, fs.Name, ts.Name)
						}
						for pi := range fs.Points {
							if fs.Points[pi] != ts.Points[pi] {
								t.Fatalf("workers %d: series %s point %d: adaptive %v != fixed %v",
									workers, fs.Name, pi, ts.Points[pi], fs.Points[pi])
							}
						}
					}
					// And the exhausted budget must be visible: every point
					// ran exactly n replicates without meeting the target.
					reps := ta.Series[5]
					if reps.Name != "reps" {
						t.Fatalf("series 5 is %q, want reps", reps.Name)
					}
					for _, p := range reps.Points {
						if p.Y != n {
							t.Fatalf("unreachable target stopped at %g reps, want %d", p.Y, n)
						}
					}
				}
			})
		}
	}
}
