package scenario

import (
	"bytes"
	"fmt"
	"math"
	"testing"
)

// The cross-substrate invariant suite: program-equivalence-style laws that
// must hold for every attack.Kind on every substrate, whatever the worker
// count. These are the properties that make concurrent, adaptively-stopped
// runs trustworthy — if a zero-attacker spec, a fixed run, and an adaptive
// run that cannot stop early are not literally the same program, no CI
// target can be believed.
//
//	(a) zero attackers ≡ the none strategy, bit for bit;
//	(b) raising attacker pressure never improves the substrate's
//	    organic-delivery metric beyond accumulator tolerance (except where
//	    the paper itself predicts the attack backfires — see
//	    attackBackfires);
//	(c) an adaptive plan that can never stop early ≡ the fixed run of the
//	    same budget, byte for byte.

var invariantKinds = []string{"none", "crash", "ideal", "trade"}

// invariantSpec returns a small single-point copy of the cross-product
// entry for kind x substrate, shrunk for test runtime exactly like the
// determinism table.
func invariantSpec(t *testing.T, kind, substrate string) *Spec {
	t.Helper()
	spec, ok := Get(fmt.Sprintf("x/%s-%s", kind, substrate))
	if !ok {
		t.Fatalf("x/%s-%s missing from the registry", kind, substrate)
	}
	spec.Sweep = SweepSpec{}
	if substrate == "scrip" {
		spec.Rounds = 1200
	}
	return spec
}

// dataBytes strips the headline (which necessarily spells the attack
// label) and returns the rest of the artifact as canonical JSON.
func dataBytes(t *testing.T, spec *Spec, seed uint64, opts RunOptions) []byte {
	t.Helper()
	a, err := Run(spec, seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	a.Name, a.Title = "", ""
	data, err := a.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestInvariantZeroAttackersIsNone: with the attacker controlling zero
// nodes there is nobody to crash, satiate, or trade — every attack kind
// must reproduce the none baseline bit-identically, on every substrate,
// under workers 1 and 8.
func TestInvariantZeroAttackersIsNone(t *testing.T) {
	for _, substrate := range Substrates {
		for _, kind := range []string{"crash", "ideal", "trade"} {
			t.Run(kind+"/"+substrate, func(t *testing.T) {
				t.Parallel()
				attacked := invariantSpec(t, kind, substrate)
				attacked.Adversary.Fraction = 0
				baseline := attacked.Clone()
				baseline.Adversary.Kind = "none"
				for _, workers := range []int{1, 8} {
					opts := RunOptions{Workers: workers, Replicates: 2}
					got := dataBytes(t, attacked, 7, opts)
					want := dataBytes(t, baseline, 7, opts)
					if !bytes.Equal(got, want) {
						t.Fatalf("workers %d: zero-attacker %s diverges from none:\n%s\nvs\n%s",
							workers, kind, got, want)
					}
				}
			})
		}
	}
}

// attackBackfires marks the kind x substrate pairs where the paper itself
// predicts satiation helps rather than hurts: a seeded swarm treats an
// ideal satiator as free upload capacity, and a trade lotus-eater holding
// the full file is one more seeder (E5: "satiating leechers ... often
// actually a net benefit"). For those pairs the invariant flips: the
// attack must NOT collapse organic delivery.
var attackBackfires = map[string]bool{
	"ideal/swarm": true,
	"trade/swarm": true,
}

// TestInvariantMonotoneHarm: raising the attacker-controlled fraction
// never improves the substrate's organic-delivery metric beyond
// accumulator tolerance (and for the backfiring pairs, never collapses
// it). Common-random-numbers seeding pairs the sweep points — replicate i
// sees the same streams at every fraction — so the per-point means are
// directly comparable and the tolerance can stay tight.
func TestInvariantMonotoneHarm(t *testing.T) {
	const replicates = 3
	for _, substrate := range Substrates {
		for _, kind := range invariantKinds {
			t.Run(kind+"/"+substrate, func(t *testing.T) {
				t.Parallel()
				spec := invariantSpec(t, kind, substrate)
				spec.Sweep = SweepSpec{Axis: "adversary.fraction", From: 0, To: 0.4, Points: 3}
				a, err := Run(spec, 17, RunOptions{Replicates: replicates})
				if err != nil {
					t.Fatal(err)
				}
				mean, stddev := a.Series[0], a.Series[1]
				tol := func(i, j int) float64 {
					// Accumulator tolerance: two standard errors on each of
					// the compared means, plus a floor for the paired-draw
					// discreteness of tiny populations.
					se := (stddev.Points[i].Y + stddev.Points[j].Y) / math.Sqrt(replicates)
					return 0.02 + 2*se
				}
				if attackBackfires[kind+"/"+substrate] {
					base := mean.Points[0].Y
					for i := 1; i < len(mean.Points); i++ {
						if mean.Points[i].Y < base-0.15 {
							t.Fatalf("%s on %s should backfire, but collapsed delivery at fraction %.2f: %.4f vs baseline %.4f",
								kind, substrate, mean.Points[i].X, mean.Points[i].Y, base)
						}
					}
					return
				}
				for i := 1; i < len(mean.Points); i++ {
					prev, cur := mean.Points[i-1].Y, mean.Points[i].Y
					if cur > prev+tol(i-1, i) {
						t.Fatalf("raising %s pressure improved %s delivery: %.4f at %.2f -> %.4f at %.2f (tol %.4f)",
							kind, substrate, prev, mean.Points[i-1].X, cur, mean.Points[i].X, tol(i-1, i))
					}
				}
			})
		}
	}
}

// TestInvariantAdaptiveDegeneratesToFixed: an adaptive run that can never
// stop early is the fixed run. Two forms, both per attack x substrate and
// per worker count:
//
//   - halfWidth 0 (an inert plan) must reproduce the fixed artifact byte
//     for byte, headline included;
//   - an active plan whose target is unreachably tight (so it runs its
//     full MaxReps budget through the wave engine) must produce the same
//     statistics series, value for value — the engine folds the same
//     replicates in the same order.
func TestInvariantAdaptiveDegeneratesToFixed(t *testing.T) {
	const n = 4
	for _, substrate := range Substrates {
		for _, kind := range invariantKinds {
			t.Run(kind+"/"+substrate, func(t *testing.T) {
				t.Parallel()
				fixed := invariantSpec(t, kind, substrate)
				fixed.Replicates = n

				inert := fixed.Clone()
				inert.Replicates = 0
				inert.Precision = &PrecisionSpec{HalfWidth: 0, MaxReps: n}

				// A degenerate metric (zero sample variance — e.g. a swarm
				// that completes at 1.0 in every replicate) legitimately
				// meets ANY positive half-width target, so "unreachably
				// tight" cannot force a full budget; MinReps = MaxReps can,
				// while still routing through the active wave engine.
				tight := fixed.Clone()
				tight.Replicates = 0
				tight.Precision = &PrecisionSpec{HalfWidth: 1e-300, MinReps: n, MaxReps: n, Batch: 2}

				for _, workers := range []int{1, 8} {
					opts := RunOptions{Workers: workers}
					fa, err := Run(fixed, 23, opts)
					if err != nil {
						t.Fatal(err)
					}
					ia, err := Run(inert, 23, opts)
					if err != nil {
						t.Fatal(err)
					}
					fj, _ := fa.CanonicalJSON()
					ij, _ := ia.CanonicalJSON()
					if !bytes.Equal(fj, ij) {
						t.Fatalf("workers %d: halfWidth=0 plan diverges from the fixed run:\n%s\nvs\n%s", workers, ij, fj)
					}

					ta, err := Run(tight, 23, opts)
					if err != nil {
						t.Fatal(err)
					}
					// The adaptive artifact adds reps/ci-halfwidth series and
					// a plan headline; the five statistics series must match
					// the fixed run exactly.
					for si, fs := range fa.Series {
						ts := ta.Series[si]
						if fs.Name != ts.Name {
							t.Fatalf("series %d: %q vs %q", si, fs.Name, ts.Name)
						}
						for pi := range fs.Points {
							if fs.Points[pi] != ts.Points[pi] {
								t.Fatalf("workers %d: series %s point %d: adaptive %v != fixed %v",
									workers, fs.Name, pi, ts.Points[pi], fs.Points[pi])
							}
						}
					}
					// And the exhausted budget must be visible: every point
					// ran exactly n replicates without meeting the target.
					reps := ta.Series[5]
					if reps.Name != "reps" {
						t.Fatalf("series 5 is %q, want reps", reps.Name)
					}
					for _, p := range reps.Points {
						if p.Y != n {
							t.Fatalf("unreachable target stopped at %g reps, want %d", p.Y, n)
						}
					}
				}
			})
		}
	}
}
