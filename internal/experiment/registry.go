package experiment

import (
	"fmt"

	"lotuseater/internal/metrics"
)

// seriesArtifact wraps figure curves into an artifact, annotating the
// 0.93-usability crossover when asked (the paper's headline statistic).
func seriesArtifact(name, title, xLabel string, crossover bool, series ...*Series) *metrics.Artifact {
	a := &metrics.Artifact{Name: name, Title: title, XLabel: xLabel, Series: series}
	if crossover {
		for _, s := range series {
			if x, ok := s.CrossoverBelow(0.93); ok {
				a.Notes = append(a.Notes,
					fmt.Sprintf("%s drops below the 0.93 usability threshold at x = %.3f", s.Name, x))
			}
		}
	}
	return a
}

func tableArtifact(name, title string, rows [][]string) *metrics.Artifact {
	return &metrics.Artifact{Name: name, Title: title, Table: rows}
}

// The full catalogue: every table and figure of the paper plus the
// extension experiments, keyed by registry name. `lotus-sim list` prints
// this; `lotus-sim run <name>` executes it.
func init() {
	Register(Experiment{
		Name:        "table1",
		Description: "Table 1: the paper's simulation parameters, sourced from the live defaults",
		Run: func(seed uint64, q Quality) (*metrics.Artifact, error) {
			return tableArtifact("table1", "Table 1: Simulation Parameters", Table1()), nil
		},
	})
	Register(Experiment{
		Name:        "figure1",
		Description: "Figure 1: crash vs ideal vs trade lotus-eater attacks on BAR Gossip (push size 2)",
		Run: func(seed uint64, q Quality) (*metrics.Artifact, error) {
			return seriesArtifact("figure1", "Figure 1: three attacks on BAR Gossip (isolated-node delivery)",
				"attacker-fraction", true, Figure1(seed, q)...), nil
		},
	})
	Register(Experiment{
		Name:        "figure2",
		Description: "Figure 2: raising the optimistic push size to 10 blunts all three attacks",
		Run: func(seed uint64, q Quality) (*metrics.Artifact, error) {
			return seriesArtifact("figure2", "Figure 2: push size 10 reduces attack effectiveness",
				"attacker-fraction", true, Figure2(seed, q)...), nil
		},
	})
	Register(Experiment{
		Name:        "figure3",
		Description: "Figure 3: slightly unbalanced exchanges defend against the trade attack",
		Run: func(seed uint64, q Quality) (*metrics.Artifact, error) {
			return seriesArtifact("figure3", "Figure 3: obedient (unbalanced) exchanges reduce effectiveness",
				"attacker-fraction", true, Figure3(seed, q)...), nil
		},
	})
	Register(Experiment{
		Name:        "altruism",
		Description: "E1: altruism a restores completion under half-system satiation (token model)",
		Run: func(seed uint64, q Quality) (*metrics.Artifact, error) {
			return seriesArtifact("altruism", "E1: altruism a vs completion under half-system satiation (token model)",
				"altruism-a", false, AltruismExperiment(seed, q)), nil
		},
	})
	Register(Experiment{
		Name:        "gridcut",
		Description: "E2: satiating a 16-node grid column cuts the system; a random graph shrugs it off",
		Run: func(seed uint64, q Quality) (*metrics.Artifact, error) {
			rows, err := GridCutExperiment(seed)
			if err != nil {
				return nil, err
			}
			table := [][]string{{"topology/attack", "satiated", "rare-token-coverage", "completed-fraction"}}
			for _, r := range rows {
				table = append(table, []string{
					r.Topology,
					fmt.Sprintf("%d", r.SatiatedNodes),
					fmt.Sprintf("%.4f", r.RareTokenCoverage),
					fmt.Sprintf("%.4f", r.CompletedFraction),
				})
			}
			return tableArtifact("gridcut", "E2: satiating a grid cut vs a random graph (token model)", table), nil
		},
	})
	Register(Experiment{
		Name:        "raretoken",
		Description: "E3: satiating one rare-token holder denies the whole system at a = 0",
		Run: func(seed uint64, q Quality) (*metrics.Artifact, error) {
			return seriesArtifact("raretoken", "E3: rare-token denial vs altruism (token model)",
				"altruism-a", false, RareTokenExperiment(seed, q)), nil
		},
	})
	Register(Experiment{
		Name:        "scrip-money-supply",
		Description: "E4a: an earned-budget attacker cannot satiate a large fraction of a scrip economy",
		Run: func(seed uint64, q Quality) (*metrics.Artifact, error) {
			return seriesArtifact("scrip-money-supply", "E4a: scrip-system satiation is bounded by the money supply",
				"targeted-fraction", false, ScripMoneySupplyExperiment(seed, q)), nil
		},
	})
	Register(Experiment{
		Name:        "scrip-rare-provider",
		Description: "E4b: satiating rare providers denies specialty service; altruist providers restore it",
		Run: func(seed uint64, q Quality) (*metrics.Artifact, error) {
			return seriesArtifact("scrip-rare-provider", "E4b: satiating rare providers denies specialty service; altruists restore it",
				"attack-budget", false, ScripRareProviderExperiment(seed, q)...), nil
		},
	})
	Register(Experiment{
		Name:        "swarm",
		Description: "E5: lotus-eater attacks on a BitTorrent-like swarm are weak or even helpful",
		Run: func(seed uint64, q Quality) (*metrics.Artifact, error) {
			rows, err := SwarmExperiment(seed, q.Normalize().Seeds)
			if err != nil {
				return nil, err
			}
			table := [][]string{{"scenario", "completed", "mean-tick", "median-tick", "lost-pieces"}}
			for _, r := range rows {
				table = append(table, []string{
					r.Scenario,
					fmt.Sprintf("%.3f", r.CompletedFraction),
					fmt.Sprintf("%.1f", r.MeanCompletionTick),
					fmt.Sprintf("%.1f", r.MedianCompletionTick),
					fmt.Sprintf("%d", r.LostPieces),
				})
			}
			return tableArtifact("swarm", "E5: lotus-eater attacks on a BitTorrent-like swarm", table), nil
		},
	})
	Register(Experiment{
		Name:        "coding",
		Description: "E6: random linear network coding neutralizes rare-token satiation",
		Run: func(seed uint64, q Quality) (*metrics.Artifact, error) {
			return seriesArtifact("coding", "E6: network coding neutralizes rare-token satiation",
				"satiated-unique-holders", false, CodingExperiment(seed, q)...), nil
		},
	})
	Register(Experiment{
		Name:        "reporting",
		Description: "E7: obedient nodes reporting excessive deliveries evict the attacker",
		Run: func(seed uint64, q Quality) (*metrics.Artifact, error) {
			return seriesArtifact("reporting", "E7: obedient reporting evicts over-providers (trade attack, 30%)",
				"obedient-fraction", false, ReportingExperiment(seed, q)...), nil
		},
	})
	Register(Experiment{
		Name:        "ratelimit",
		Description: "E8: per-peer service rate limiting blunts the ideal attack at no healthy-system cost",
		Run: func(seed uint64, q Quality) (*metrics.Artifact, error) {
			return seriesArtifact("ratelimit", "E8: per-peer rate limiting vs the ideal attack (cap=0 means off)",
				"rate-cap", false, RateLimitExperiment(seed, q)...), nil
		},
	})
	Register(Experiment{
		Name:        "rotating",
		Description: "E9: rotating the satiated set makes service intermittently unusable for everyone",
		Run: func(seed uint64, q Quality) (*metrics.Artifact, error) {
			rows, err := RotatingExperiment(seed, 20)
			if err != nil {
				return nil, err
			}
			table := [][]string{{"arm", "mean-delivery", "nodes-with-outage", "mean-outage-epochs", "epochs"}}
			for _, r := range rows {
				table = append(table, []string{
					r.Name,
					fmt.Sprintf("%.4f", r.MeanDelivery),
					fmt.Sprintf("%.3f", r.NodesWithOutage),
					fmt.Sprintf("%.2f", r.MeanOutageEpochs),
					fmt.Sprintf("%d", r.Epochs),
				})
			}
			return tableArtifact("rotating", "E9: rotating the satiated set makes service intermittently unusable for all", table), nil
		},
	})
	Register(Experiment{
		Name:        "inflation",
		Description: "E10 (extension): untargeted scrip gifts satiate the whole economy past a cliff",
		Run: func(seed uint64, q Quality) (*metrics.Artifact, error) {
			return seriesArtifact("inflation", "E10: satiation by monetary inflation (untargeted scrip gifts)",
				"injected-scrip-per-capita", false, ScripInflationExperiment(seed, q)), nil
		},
	})
	Register(Experiment{
		Name:        "hoarding",
		Description: "E11 (extension): service hoarders drain the money supply and centralize the system",
		Run: func(seed uint64, q Quality) (*metrics.Artifact, error) {
			return seriesArtifact("hoarding", "E11: service hoarders drain the money supply and centralize the system",
				"hoarder-fraction", false, ScripHoardingExperiment(seed, q)), nil
		},
	})
	Register(Experiment{
		Name:        "satiate-ablation",
		Description: "A1: why the attacker satiates ~70% — per-victim damage vs victim count",
		Run: func(seed uint64, q Quality) (*metrics.Artifact, error) {
			return seriesArtifact("satiate-ablation", "A1: why satiate 70%? (trade attack, 25% attackers)",
				"satiate-fraction", false, SatiateFractionAblation(seed, q)...), nil
		},
	})
}
