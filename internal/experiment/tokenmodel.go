package experiment

import (
	"lotuseater/internal/attack"
	"lotuseater/internal/graph"
	"lotuseater/internal/sim"
	"lotuseater/internal/simrng"
	"lotuseater/internal/sweep"
	"lotuseater/internal/tokenmodel"
)

// AltruismExperiment (E1) sweeps the token model's altruism parameter a
// under a static satiation attack on half the system. Satiated nodes are
// dead weight at a = 0 (the isolated half gossips on a diluted graph and
// stalls); as a grows, satiated nodes keep responding and the isolated half
// completes. The y value is the completed fraction among non-targets.
func AltruismExperiment(seed uint64, q Quality) *Series {
	q = q.Normalize()
	// The transition happens at very small a: even a few-percent chance of
	// a satiated node responding restores the isolated half. Sweep the
	// interesting region.
	xs := sweep.Range(0, 0.1, q.Points)
	return sweep.Run(sweep.Config{Name: "isolated-completed-fraction", Xs: xs, Seeds: q.Seeds}, seed, func(a float64, rng *simrng.Source, ws *sim.Workspace) float64 {
		const n = 200
		g := graph.RandomRegularish(n, 4, rng.Child("graph"))
		cfg := tokenmodel.Config{
			Graph:    g,
			Tokens:   50,
			Contacts: 2,
			Altruism: a,
			Rounds:   80,
		}
		targets := rng.Child("targets").SampleInts(n, n/2)
		m, err := tokenmodel.New(cfg, rng.Uint64(),
			tokenmodel.WithTargeter(attack.NewListTargeter(n, targets)),
			tokenmodel.WithWorkspace(ws))
		if err != nil {
			return 0
		}
		if _, err := m.Run(); err != nil {
			return 0
		}
		isTarget := make([]bool, n)
		for _, t := range targets {
			isTarget[t] = true
		}
		done, total := 0, 0
		for v := 0; v < n; v++ {
			if isTarget[v] {
				continue
			}
			total++
			if m.Satiated(v) {
				done++
			}
		}
		if total == 0 {
			return 0
		}
		return float64(done) / float64(total)
	})
}

// GridCutResult is one row of the grid-cut experiment (E2).
type GridCutResult struct {
	Topology string
	// SatiatedNodes is the attack cost (16 of 256 nodes for the cut).
	SatiatedNodes int
	// RareTokenCoverage is the fraction of nodes ever holding the rare
	// token — the denial metric.
	RareTokenCoverage float64
	// CompletedFraction is the fraction of nodes that collected everything.
	CompletedFraction float64
}

// GridCutExperiment (E2) satiates a column of a 16x16 grid — a cheap cut —
// versus the same number of random nodes in a degree-matched random graph,
// with altruism a = 0 so satiated nodes are true barriers. A rare token
// lives only on the grid's left edge; with the column satiated, "nodes on
// that side of the cut will never be able to collect all the tokens": the
// rare token's coverage pins to the left side exactly. The random graph has
// no cheap cut, so the same-sized attack leaves coverage at 1.
//
// Note the pure a = 0 model is absorbing — nodes that complete naturally
// stop serving too, so CompletedFraction stalls near zero even without an
// attack (a dynamic the paper itself points out). Coverage of the rare
// token is the meaningful denial metric.
func GridCutExperiment(seed uint64) ([]GridCutResult, error) {
	const (
		rows, cols = 16, 16
		cutCol     = 8
		tokens     = 50
		rareCopies = 16
	)
	rng := simrng.New(seed)
	n := rows * cols

	// Tokens 1..49 are spread uniformly at random; token 0's sixteen
	// holders sit on the left edge (grid) or anywhere (random graph —
	// placement is irrelevant without a cut).
	alloc := make([]int, n)
	allocRNG := rng.Child("alloc")
	for v := range alloc {
		alloc[v] = 1 + allocRNG.IntN(tokens-1)
	}
	for i := 0; i < rareCopies; i++ {
		alloc[(rows/rareCopies*i)*cols+0] = 0
	}
	cut := graph.GridColumnCut(rows, cols, cutCol)

	run := func(name string, g *graph.Graph, targets []int, runSeed uint64) (GridCutResult, error) {
		cfg := tokenmodel.Config{
			Graph:      g,
			Tokens:     tokens,
			Contacts:   2,
			Altruism:   0,
			Rounds:     120,
			Allocation: alloc,
		}
		m, err := tokenmodel.New(cfg, runSeed, tokenmodel.WithTargeter(attack.NewListTargeter(n, targets)))
		if err != nil {
			return GridCutResult{}, err
		}
		res, err := m.Run()
		if err != nil {
			return GridCutResult{}, err
		}
		return GridCutResult{
			Topology:          name,
			SatiatedNodes:     len(targets),
			RareTokenCoverage: res.TokenCoverage[0],
			CompletedFraction: res.CompletedFraction,
		}, nil
	}

	grid := graph.Grid(rows, cols)
	random := graph.RandomRegularish(n, 4, rng.Child("random-graph"))
	randomTargets := rng.Child("random-targets").SampleInts(n, len(cut))

	var out []GridCutResult
	for _, spec := range []struct {
		name    string
		g       *graph.Graph
		targets []int
	}{
		{"grid/no-attack", grid, nil},
		{"grid/column-cut", grid, cut},
		{"random/no-attack", random, nil},
		{"random/same-size-target", random, randomTargets},
	} {
		row, err := run(spec.name, spec.g, spec.targets, rng.Child("run-"+spec.name).Uint64())
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// RareTokenExperiment (E3) satiates the single initial holder of a rare
// token and sweeps altruism a: with a = 0 the whole system is denied that
// token for the cost of satiating one node; any a > 0 eventually leaks it.
func RareTokenExperiment(seed uint64, q Quality) *Series {
	q = q.Normalize()
	xs := sweep.Range(0, 0.3, q.Points)
	return sweep.Run(sweep.Config{Name: "completed-fraction", Xs: xs, Seeds: q.Seeds}, seed, func(a float64, rng *simrng.Source, ws *sim.Workspace) float64 {
		const n, tokens = 100, 10
		alloc := make([]int, n)
		alloc[0] = 0 // node 0 is the sole holder of token 0
		for v := 1; v < n; v++ {
			alloc[v] = 1 + (v-1)%(tokens-1)
		}
		cfg := tokenmodel.Config{
			Graph:      graph.Complete(n),
			Tokens:     tokens,
			Contacts:   1,
			Altruism:   a,
			Rounds:     60,
			Allocation: alloc,
		}
		m, err := tokenmodel.New(cfg, rng.Uint64(),
			tokenmodel.WithTargeter(attack.NewListTargeter(n, []int{0})),
			tokenmodel.WithWorkspace(ws))
		if err != nil {
			return 0
		}
		res, err := m.Run()
		if err != nil {
			return 0
		}
		return res.CompletedFraction
	})
}
