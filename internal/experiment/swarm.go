package experiment

import (
	"lotuseater/internal/simrng"
	"lotuseater/internal/swarm"
)

// SwarmRow is one scenario of the swarm experiment (E5).
type SwarmRow struct {
	Scenario             string
	CompletedFraction    float64
	MeanCompletionTick   float64
	MedianCompletionTick float64
	LostPieces           int
}

// SwarmExperiment (E5) reproduces the paper's BitTorrent analysis:
// satiating top uploaders in a seeded swarm does no damage — finished nodes
// keep seeding, so the attacker's uploads are "often actually a net benefit
// to the torrent" — and even the targeted rare-piece-holder attack on a
// fragile swarm (initial seed departs, finished leechers leave) causes at
// most marginal piece loss under either selection policy, while rarest-first
// gives the healthier baseline. Rows average `seeds` independent runs.
func SwarmExperiment(seed uint64, seeds int) ([]SwarmRow, error) {
	if seeds < 1 {
		seeds = 1
	}
	rng := simrng.New(seed)
	run := func(name string, mutate func(*swarm.Config)) (SwarmRow, error) {
		row := SwarmRow{Scenario: name}
		var lost float64
		for rep := 0; rep < seeds; rep++ {
			cfg := swarm.DefaultConfig()
			mutate(&cfg)
			s, err := swarm.New(cfg, rng.ChildN(name, rep).Uint64())
			if err != nil {
				return SwarmRow{}, err
			}
			res, err := s.Run()
			if err != nil {
				return SwarmRow{}, err
			}
			row.CompletedFraction += res.CompletedFraction
			row.MeanCompletionTick += res.MeanCompletionTick
			row.MedianCompletionTick += res.MedianCompletionTick
			lost += float64(res.LostPieces)
		}
		row.CompletedFraction /= float64(seeds)
		row.MeanCompletionTick /= float64(seeds)
		row.MedianCompletionTick /= float64(seeds)
		row.LostPieces = int(lost/float64(seeds) + 0.5)
		return row, nil
	}

	fragile := func(cfg *swarm.Config) {
		// The population the rare-piece attack needs: the initial seed
		// departs early and finished leechers leave instead of seeding.
		cfg.SeedDepartTick = 60
		cfg.SeedAfterComplete = false
		cfg.Ticks = 600
	}
	rareAttack := func(cfg *swarm.Config) {
		cfg.Attack = swarm.AttackRarePieceHolders
		cfg.AttackerUplink = 64
		cfg.AttackTargets = 2
		cfg.AttackStartTick = 10
		cfg.AttackStopTick = 60 // a bounded campaign while pieces are scarce
	}

	var rows []SwarmRow
	specs := []struct {
		name   string
		mutate func(*swarm.Config)
	}{
		{"baseline/rarest-first", func(cfg *swarm.Config) {}},
		{"attack-top-uploaders", func(cfg *swarm.Config) {
			cfg.Attack = swarm.AttackTopUploaders
			cfg.AttackerUplink = 32
			cfg.AttackTargets = 8
		}},
		{"fragile/no-attack/rarest-first", fragile},
		{"fragile/rare-attack/rarest-first", func(cfg *swarm.Config) { fragile(cfg); rareAttack(cfg) }},
		{"fragile/no-attack/random", func(cfg *swarm.Config) { fragile(cfg); cfg.Selection = swarm.SelectRandom }},
		{"fragile/rare-attack/random", func(cfg *swarm.Config) {
			fragile(cfg)
			rareAttack(cfg)
			cfg.Selection = swarm.SelectRandom
		}},
	}
	for _, spec := range specs {
		row, err := run(spec.name, spec.mutate)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
