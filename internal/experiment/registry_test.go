package experiment

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRegistryCatalogue pins the registry's shape: every table and figure
// of the paper plus the extensions, at least 15 entries, all self-describing.
func TestRegistryCatalogue(t *testing.T) {
	all := All()
	if len(all) < 15 {
		t.Fatalf("registry has %d experiments, want >= 15", len(all))
	}
	for _, e := range all {
		if e.Description == "" {
			t.Errorf("experiment %q has no description", e.Name)
		}
	}
	for _, name := range []string{"table1", "figure1", "figure2", "figure3", "altruism",
		"gridcut", "raretoken", "scrip-money-supply", "scrip-rare-provider", "swarm",
		"coding", "reporting", "ratelimit", "rotating", "inflation", "hoarding",
		"satiate-ablation"} {
		if _, ok := Get(name); !ok {
			t.Errorf("experiment %q not registered", name)
		}
	}
}

// TestEveryExperimentRunsQuick is the registry smoke test: each entry must
// run at QuickQuality without error and produce a non-empty artifact.
func TestEveryExperimentRunsQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			a, err := e.Run(3, QuickQuality())
			if err != nil {
				t.Fatal(err)
			}
			if a.Name != e.Name {
				t.Fatalf("artifact name %q, want %q", a.Name, e.Name)
			}
			if a.Title == "" {
				t.Fatal("artifact has no title")
			}
			if len(a.Series) == 0 && len(a.Table) == 0 {
				t.Fatal("artifact has neither series nor table")
			}
			for _, s := range a.Series {
				if s.Len() == 0 {
					t.Fatalf("series %q is empty", s.Name)
				}
			}
		})
	}
}

func TestRunUnknownName(t *testing.T) {
	if _, err := Run("no-such-experiment", 1, QuickQuality()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestSeriesArtifactJSONRoundTrip runs a series-producing experiment and
// checks that its artifact survives JSON encode/decode bit-for-bit.
func TestSeriesArtifactJSONRoundTrip(t *testing.T) {
	a, err := Run("figure1", 2, Quality{Points: 3, Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, a)
	if !strings.Contains(a.CSV(), "trade-lotus-eater") {
		t.Fatalf("CSV missing series header:\n%s", a.CSV())
	}
}

// TestTableArtifactJSONRoundTrip does the same for a table-producing
// experiment.
func TestTableArtifactJSONRoundTrip(t *testing.T) {
	a, err := Run("table1", 1, QuickQuality())
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, a)
	csv := a.CSV()
	if !strings.HasPrefix(csv, "Parameter,Value\n") {
		t.Fatalf("table CSV header wrong:\n%s", csv)
	}
}

func roundTrip(t *testing.T, a *Artifact) {
	t.Helper()
	data, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	origJSON, _ := json.Marshal(a)
	backJSON, _ := json.Marshal(back)
	if string(origJSON) != string(backJSON) {
		t.Fatalf("artifact did not round-trip:\n%s\nvs\n%s", origJSON, backJSON)
	}
}
