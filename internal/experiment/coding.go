package experiment

import (
	"lotuseater/internal/attack"
	"lotuseater/internal/coding"
	"lotuseater/internal/graph"
	"lotuseater/internal/sim"
	"lotuseater/internal/simrng"
	"lotuseater/internal/sweep"
)

// CodingExperiment (E6) compares plain token gossip against random linear
// network coding under the rare-token attack: the attacker satiates the s
// unique holders of s source symbols. Plain dissemination loses those
// symbols outright; coded dissemination is indifferent because every packet
// mixes all symbols. Returns mean progress (fraction of the file
// reconstructible) versus s for both modes.
func CodingExperiment(seed uint64, q Quality) []*Series {
	q = q.Normalize()
	const (
		n       = 120
		symbols = 24
	)
	xs := make([]float64, 0, 7)
	for s := 0; s <= 12; s += 2 {
		xs = append(xs, float64(s))
	}

	runMode := func(name string, coded bool, offset uint64) *Series {
		return sweep.Run(sweep.Config{Name: name, Xs: xs, Seeds: q.Seeds}, seed+offset, func(x float64, rng *simrng.Source, _ *sim.Workspace) float64 {
			s := int(x)
			// Unique holders: node i holds symbol i for i < symbols; the
			// rest duplicate symbols >= s (so only the first s symbols are
			// rare).
			alloc := make([]int, n)
			for v := 0; v < n; v++ {
				if v < symbols {
					alloc[v] = v
				} else {
					alloc[v] = symbols - 1 - (v % (symbols - 12))
				}
			}
			targets := make([]int, s)
			for i := range targets {
				targets[i] = i
			}
			cfg := coding.DisseminationConfig{
				Graph:       graph.RandomRegularish(n, 4, rng.Child("graph")),
				Symbols:     symbols,
				PayloadSize: 32,
				Contacts:    2,
				Rounds:      50,
				Coded:       coded,
				Allocation:  alloc,
			}
			var t attack.Targeter
			if s > 0 {
				t = attack.NewListTargeter(n, targets)
			}
			d, err := coding.NewDissemination(cfg, rng.Uint64(), t)
			if err != nil {
				return 0
			}
			res, err := d.Run()
			if err != nil {
				return 0
			}
			return res.MeanProgress
		})
	}
	return []*Series{
		runMode("plain", false, 0),
		runMode("coded", true, 1),
	}
}
