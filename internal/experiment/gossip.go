package experiment

import (
	"fmt"

	"lotuseater/internal/attack"
	"lotuseater/internal/gossip"
	"lotuseater/internal/metrics"
	"lotuseater/internal/sim"
	"lotuseater/internal/simrng"
	"lotuseater/internal/sweep"
)

// Series re-exports the metrics series type used by all experiment drivers.
type Series = metrics.Series

// gossipDeliverySweep sweeps attacker fraction for one attack/config
// variant and returns the isolated-node delivery series.
func gossipDeliverySweep(name string, base gossip.Config, kind attack.Kind, xs []float64, seeds int, seed uint64) *Series {
	return sweep.Run(sweep.Config{Name: name, Xs: xs, Seeds: seeds}, seed, func(x float64, rng *simrng.Source, _ *sim.Workspace) float64 {
		cfg := base
		cfg.Attack = kind
		cfg.AttackerFraction = x
		if x == 0 {
			cfg.Attack = attack.None
		}
		eng, err := gossip.New(cfg, rng.Uint64())
		if err != nil {
			return 0
		}
		res, err := eng.Run()
		if err != nil {
			return 0
		}
		return res.Isolated.MeanDelivery
	})
}

// Figure1 regenerates Figure 1 of the paper: fraction of updates received
// by isolated nodes versus the fraction of nodes controlled by the
// attacker, for the crash, ideal lotus-eater, and trade lotus-eater
// attacks, at Table 1 parameters (push size 2).
func Figure1(seed uint64, q Quality) []*Series {
	q = q.Normalize()
	base := gossip.DefaultConfig()
	xs := sweep.Range(0, 0.9, q.Points)
	return []*Series{
		gossipDeliverySweep("crash", base, attack.Crash, xs, q.Seeds, seed),
		gossipDeliverySweep("ideal-lotus-eater", base, attack.Ideal, xs, q.Seeds, seed),
		gossipDeliverySweep("trade-lotus-eater", base, attack.Trade, xs, q.Seeds, seed),
	}
}

// Figure2 regenerates Figure 2: the same three attacks with the optimistic
// push size raised to 10, which makes partial satiation far less effective.
func Figure2(seed uint64, q Quality) []*Series {
	q = q.Normalize()
	base := gossip.DefaultConfig()
	base.PushSize = 10
	xs := sweep.Range(0, 0.9, q.Points)
	return []*Series{
		gossipDeliverySweep("crash", base, attack.Crash, xs, q.Seeds, seed),
		gossipDeliverySweep("ideal-lotus-eater", base, attack.Ideal, xs, q.Seeds, seed),
		gossipDeliverySweep("trade-lotus-eater", base, attack.Trade, xs, q.Seeds, seed),
	}
}

// Figure3 regenerates Figure 3: the trade lotus-eater attack against the
// obedient "slightly unbalanced exchange" variant (give one more update
// than received), alone and combined with a push size of 4.
func Figure3(seed uint64, q Quality) []*Series {
	q = q.Normalize()
	xs := sweep.Range(0, 0.7, q.Points)
	variant := func(name string, pushSize, slack int) *Series {
		base := gossip.DefaultConfig()
		base.PushSize = pushSize
		base.BalanceSlack = slack
		return gossipDeliverySweep(name, base, attack.Trade, xs, q.Seeds, seed)
	}
	return []*Series{
		variant("push2-balanced", 2, 0),
		variant("push2-unbalanced", 2, 1),
		variant("push4-balanced", 4, 0),
		variant("push4-unbalanced", 4, 1),
	}
}

// SatiateFractionAblation (A1) reproduces the paper's reasoning for
// targeting 70% of the system: "it strikes a balance between the need to
// satiate enough nodes to limit trade opportunities for isolated nodes and
// a desire to isolate as many as possible." At a fixed attacker fraction,
// sweep the satiation target and report isolated-node delivery — the
// attacker wants to starve as many nodes as possible. Satiating more nodes
// starves each isolated node harder (fewer trading partners) but shrinks
// the isolated population — so per-victim damage rises monotonically while
// the *victim count* (isolated nodes with unusable service) peaks in
// between, which is what makes ~70% the attacker's sweet spot. Returns both
// series: "isolated-delivery" and "unusable-victims".
func SatiateFractionAblation(seed uint64, q Quality) []*Series {
	q = q.Normalize()
	xs := sweep.Range(0.3, 0.95, q.Points)
	run := func(x float64, rng *simrng.Source) (gossip.Result, error) {
		cfg := gossip.DefaultConfig()
		cfg.Attack = attack.Trade
		cfg.AttackerFraction = 0.25
		cfg.SatiateFraction = x
		eng, err := gossip.New(cfg, rng.Uint64())
		if err != nil {
			return gossip.Result{}, err
		}
		return eng.Run()
	}
	delivery := sweep.Run(sweep.Config{Name: "isolated-delivery", Xs: xs, Seeds: q.Seeds}, seed, func(x float64, rng *simrng.Source, _ *sim.Workspace) float64 {
		res, err := run(x, rng)
		if err != nil {
			return 0
		}
		return res.Isolated.MeanDelivery
	})
	victims := sweep.Run(sweep.Config{Name: "unusable-victims", Xs: xs, Seeds: q.Seeds}, seed, func(x float64, rng *simrng.Source, _ *sim.Workspace) float64 {
		res, err := run(x, rng)
		if err != nil {
			return 0
		}
		return float64(res.Isolated.Nodes) * (1 - res.Isolated.UsableFraction)
	})
	return []*Series{delivery, victims}
}

// ReportingExperiment (E7) sweeps the obedient fraction under a trade
// lotus-eater attack with the reporting defense on: obedient satiation
// targets report the attacker's excessive deliveries using signed receipts,
// and accused nodes are evicted. Returns isolated-node delivery and the
// eviction count versus obedient fraction.
func ReportingExperiment(seed uint64, q Quality) []*Series {
	q = q.Normalize()
	xs := sweep.Range(0, 1, q.Points)
	// Excess service beyond the balance slack is already a protocol
	// violation (honest exchanges are one-for-one up to slack), so an
	// excess of 2+ is reportable, and two independent witnesses suffice.
	base := gossip.DefaultConfig()
	base.Attack = attack.Trade
	base.AttackerFraction = 0.30
	base.ReportThreshold = 1
	base.EvictAfterReports = 2

	run := func(x float64, rng *simrng.Source) (gossip.Result, error) {
		cfg := base
		cfg.ObedientFraction = x
		eng, err := gossip.New(cfg, rng.Uint64())
		if err != nil {
			return gossip.Result{}, err
		}
		return eng.Run()
	}
	delivery := sweep.Run(sweep.Config{Name: "isolated-delivery", Xs: xs, Seeds: q.Seeds}, seed, func(x float64, rng *simrng.Source, _ *sim.Workspace) float64 {
		res, err := run(x, rng)
		if err != nil {
			return 0
		}
		return res.Isolated.MeanDelivery
	})
	evictions := sweep.Run(sweep.Config{Name: "evicted-nodes", Xs: xs, Seeds: q.Seeds}, seed, func(x float64, rng *simrng.Source, _ *sim.Workspace) float64 {
		res, err := run(x, rng)
		if err != nil {
			return 0
		}
		return float64(res.Evictions)
	})
	return []*Series{delivery, evictions}
}

// RateLimitExperiment (E8) addresses Section 5's open problem: limit the
// rate at which any peer can provide service so the attacker cannot
// satiate "sufficiently rapidly". All honest nodes are obedient and accept
// at most `cap` updates per peer per round. Returns isolated delivery under
// an ideal lotus-eater attack and under no attack (the cost of the defense)
// versus the cap; x = 0 means the limiter is off.
func RateLimitExperiment(seed uint64, q Quality) []*Series {
	q = q.Normalize()
	xs := []float64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24}
	run := func(kind attack.Kind, fraction float64) sweep.PointFunc {
		return func(x float64, rng *simrng.Source, _ *sim.Workspace) float64 {
			cfg := gossip.DefaultConfig()
			cfg.Attack = kind
			cfg.AttackerFraction = fraction
			cfg.ObedientFraction = 1
			cfg.RateLimitPerPeer = int(x)
			eng, err := gossip.New(cfg, rng.Uint64())
			if err != nil {
				return 0
			}
			res, err := eng.Run()
			if err != nil {
				return 0
			}
			return res.Isolated.MeanDelivery
		}
	}
	attacked := sweep.Run(sweep.Config{Name: "ideal-attack(10%)", Xs: xs, Seeds: q.Seeds}, seed, run(attack.Ideal, 0.10))
	clean := sweep.Run(sweep.Config{Name: "no-attack", Xs: xs, Seeds: q.Seeds}, seed+1, run(attack.None, 0))
	return []*Series{attacked, clean}
}

// RotatingResult summarizes one arm of the rotating-target experiment (E9).
type RotatingResult struct {
	// Name labels the arm (static vs rotating).
	Name string
	// MeanDelivery is the honest population's overall delivery.
	MeanDelivery float64
	// NodesWithOutage is the fraction of honest nodes that experienced at
	// least one epoch (RotatePeriod-round window) of unusable service.
	NodesWithOutage float64
	// MeanOutageEpochs is the average number of unusable epochs per honest
	// node.
	MeanOutageEpochs float64
	// Epochs is how many measured epochs the run contained.
	Epochs int
}

// RotatingExperiment (E9) demonstrates the paper's remark that "by changing
// who is satiated over time, the attacker could even make the service
// intermittently unusable for all nodes". It runs the trade attack twice —
// with a static satiated set and with the set re-drawn every `period`
// rounds — and reports, per arm, how many nodes ever suffered an unusable
// window. Static: only the permanently isolated minority suffers. Rotating:
// nearly every node takes its turn being starved.
func RotatingExperiment(seed uint64, period int) ([]RotatingResult, error) {
	run := func(name string, rotate int) (RotatingResult, error) {
		cfg := gossip.DefaultConfig()
		cfg.Attack = attack.Ideal
		cfg.AttackerFraction = 0.08
		cfg.RotatePeriod = rotate
		cfg.Rounds = 15 + 10*period
		cfg.TrackPerNode = true
		eng, err := gossip.New(cfg, seed)
		if err != nil {
			return RotatingResult{}, err
		}
		res, err := eng.Run()
		if err != nil {
			return RotatingResult{}, err
		}
		out := RotatingResult{Name: name, MeanDelivery: res.AllHonest.MeanDelivery}
		var outageNodes, honest int
		var outageEpochs float64
		for _, rounds := range res.NodeRoundDelivery {
			// Group this node's measured rounds into period-length epochs.
			type acc struct{ sum, n float64 }
			epochs := map[int]*acc{}
			for r, frac := range rounds {
				if frac < 0 {
					continue
				}
				ep := r / period
				a := epochs[ep]
				if a == nil {
					a = &acc{}
					epochs[ep] = a
				}
				a.sum += frac
				a.n++
			}
			if len(epochs) == 0 {
				continue // attacker node
			}
			honest++
			if len(epochs) > out.Epochs {
				out.Epochs = len(epochs)
			}
			bad := 0
			for _, a := range epochs {
				if a.sum/a.n < cfg.UsableThreshold {
					bad++
				}
			}
			if bad > 0 {
				outageNodes++
			}
			outageEpochs += float64(bad)
		}
		if honest > 0 {
			out.NodesWithOutage = float64(outageNodes) / float64(honest)
			out.MeanOutageEpochs = outageEpochs / float64(honest)
		}
		return out, nil
	}
	staticArm, err := run("static", 0)
	if err != nil {
		return nil, err
	}
	rotatingArm, err := run("rotating", period)
	if err != nil {
		return nil, err
	}
	return []RotatingResult{staticArm, rotatingArm}, nil
}

// Table1 returns the paper's simulation parameters (Table 1) as rendered
// rows, sourced from gossip.DefaultConfig so the table cannot drift from
// the code.
func Table1() [][]string {
	cfg := gossip.DefaultConfig()
	return [][]string{
		{"Parameter", "Value"},
		{"Number of Nodes", fmt.Sprintf("%d", cfg.Nodes)},
		{"Updates per Round", fmt.Sprintf("%d", cfg.UpdatesPerRound)},
		{"Update Lifetime (rds)", fmt.Sprintf("%d", cfg.Lifetime)},
		{"Copies Seeded", fmt.Sprintf("%d", cfg.CopiesSeeded)},
		{"Opt. Push Size (upd)", fmt.Sprintf("%d", cfg.PushSize)},
	}
}
