// Package experiment hosts every experiment driver of the reproduction and
// a registry that makes each one a named, self-describing entry.
//
// An Experiment maps (seed, Quality) to a metrics.Artifact — a set of
// figure series or a rendered table — so any frontend (the lotus-sim CLI,
// the figures command, tests, benchmarks) can run every table and figure of
// the paper, plus the extension experiments, by name and encode the result
// as text, CSV, or JSON without knowing anything about the underlying
// simulator. The drivers themselves run on the shared simulation kernel
// (internal/sim) via internal/sweep, so sweeps from different experiments
// share one bounded worker pool and per-worker scratch arenas.
//
// The root lotuseater package re-exports the typed driver functions
// (Figure1, SwarmExperiment, ...) as thin shims for API compatibility.
package experiment

import (
	"fmt"
	"sort"
	"sync"

	"lotuseater/internal/metrics"
)

// Artifact is the output of one experiment run; see metrics.Artifact for
// the text/CSV/JSON encoders.
type Artifact = metrics.Artifact

// DecodeArtifact parses the output of Artifact.JSON.
func DecodeArtifact(data []byte) (*Artifact, error) { return metrics.DecodeArtifact(data) }

// Quality controls the fidelity/runtime trade-off of an experiment sweep.
type Quality struct {
	// Points is the number of x-axis samples.
	Points int
	// Seeds is the number of replications averaged per point.
	Seeds int
}

// FullQuality reproduces the figures at paper fidelity.
func FullQuality() Quality { return Quality{Points: 26, Seeds: 5} }

// QuickQuality is for tests and smoke runs.
func QuickQuality() Quality { return Quality{Points: 6, Seeds: 1} }

// Normalize clamps the quality to runnable values (>= 2 points, >= 1 seed).
func (q Quality) Normalize() Quality {
	if q.Points < 2 {
		q.Points = 2
	}
	if q.Seeds < 1 {
		q.Seeds = 1
	}
	return q
}

// ParseQuality maps the CLI spellings "full" and "quick" to a Quality.
func ParseQuality(name string) (Quality, error) {
	switch name {
	case "full":
		return FullQuality(), nil
	case "quick":
		return QuickQuality(), nil
	default:
		return Quality{}, fmt.Errorf("unknown quality %q (want full|quick)", name)
	}
}

// Experiment is one named, self-describing entry in the registry.
type Experiment struct {
	// Name is the registry key, e.g. "figure1" or "scrip-money-supply".
	Name string
	// Description is a one-line summary shown by `lotus-sim list`.
	Description string
	// Run regenerates the experiment's artifact. It must be deterministic
	// in (seed, q) and safe to call concurrently.
	Run func(seed uint64, q Quality) (*metrics.Artifact, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Experiment{}
)

// Register adds e to the registry. It panics on an empty name, a nil Run,
// or a duplicate registration — all programmer errors at init time.
func Register(e Experiment) {
	if e.Name == "" || e.Run == nil {
		panic("experiment: Register needs a name and a Run func")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[e.Name]; dup {
		panic(fmt.Sprintf("experiment: duplicate registration of %q", e.Name))
	}
	registry[e.Name] = e
}

// Get looks an experiment up by name.
func Get(name string) (Experiment, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// All returns every registered experiment sorted by name.
func All() []Experiment {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted registry keys.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, e := range all {
		names[i] = e.Name
	}
	return names
}

// Run executes the named experiment, returning a not-found error that lists
// the valid names when the lookup fails.
func Run(name string, seed uint64, q Quality) (*metrics.Artifact, error) {
	e, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("experiment: unknown experiment %q (known: %v)", name, Names())
	}
	return e.Run(seed, q)
}
