package experiment

import (
	"lotuseater/internal/scrip"
	"lotuseater/internal/sim"
	"lotuseater/internal/simrng"
	"lotuseater/internal/sweep"
)

// ScripMoneySupplyExperiment (E4a) sweeps the fraction of agents the
// attacker tries to keep satiated when it must finance the attack from
// in-system earnings (5% attacker agents, no exogenous budget). The y value
// is the time-average fraction of targets actually held at threshold: it
// collapses as the targeted fraction grows, reproducing "it is easy for an
// attacker to accumulate enough money to satiate a few nodes, [but] there
// may not even be enough money in the system to satiate a significant
// fraction". At x = 0 there are no targets and the value is vacuously 1.
func ScripMoneySupplyExperiment(seed uint64, q Quality) *Series {
	q = q.Normalize()
	xs := sweep.Range(0, 0.8, q.Points)
	return sweep.Run(sweep.Config{Name: "satiated-fraction(earned-budget)", Xs: xs, Seeds: q.Seeds}, seed, func(x float64, rng *simrng.Source, _ *sim.Workspace) float64 {
		cfg := scrip.DefaultConfig()
		cfg.AttackerFraction = 0.05
		s, err := scrip.New(cfg, rng.Uint64())
		if err != nil {
			return 0
		}
		var targets []int
		want := int(x * float64(cfg.Agents))
		for i := 0; i < cfg.Agents && len(targets) < want; i++ {
			if s.Kind(i) != scrip.AttackerAgent {
				targets = append(targets, i)
			}
		}
		if len(targets) > 0 {
			if err := s.Attack(scrip.AttackPlan{Targets: targets, Budget: 0, StartRound: 1000}); err != nil {
				return 0
			}
		}
		res, err := s.Run()
		if err != nil {
			return 0
		}
		if x == 0 {
			return 1 // vacuously satiated: no targets
		}
		return res.SatiatedTargetFraction
	})
}

// ScripRareProviderExperiment (E4b) reproduces the paper's rare-resource
// harm: only ten agents can serve "specialty" requests ("users who control
// important or rare resources"), and the attacker keeps exactly those
// agents satiated for as long as its scrip budget lasts. Specialty
// availability collapses in proportion to the budget — the attack's
// cost/harm curve. A second arm makes two of the ten providers altruists
// (the "encouraging altruism" defense): they serve regardless of balance,
// and availability stays high at every budget.
func ScripRareProviderExperiment(seed uint64, q Quality) []*Series {
	q = q.Normalize()
	xs := []float64{0, 50, 100, 200, 400, 800, 1600, 3200}
	run := func(altruistProviders int) sweep.PointFunc {
		return func(x float64, rng *simrng.Source, _ *sim.Workspace) float64 {
			cfg := scrip.DefaultConfig()
			cfg.AltruistProviders = altruistProviders
			// Specialty demand is tuned so providers' earn rate roughly
			// matches their spend rate; otherwise rare providers satiate
			// organically (earning much faster than they spend) and the
			// attack has nothing left to deny.
			cfg.SpecialProviders = 10
			cfg.SpecialRequestFraction = 0.05
			s, err := scrip.New(cfg, rng.Uint64())
			if err != nil {
				return 0
			}
			if x > 0 {
				targets := make([]int, cfg.SpecialProviders)
				for i := range targets {
					targets[i] = i
				}
				if err := s.Attack(scrip.AttackPlan{Targets: targets, Budget: int(x), StartRound: 1000}); err != nil {
					return 0
				}
			}
			res, err := s.Run()
			if err != nil {
				return 0
			}
			return res.SpecialAvailability
		}
	}
	attacked := sweep.Run(sweep.Config{Name: "specialty-availability", Xs: xs, Seeds: q.Seeds}, seed, run(0))
	defended := sweep.Run(sweep.Config{Name: "specialty-availability(2-altruist-providers)", Xs: xs, Seeds: q.Seeds}, seed+1, run(2))
	return []*Series{attacked, defended}
}

// ScripInflationExperiment (E10, an extension beyond the paper) exposes an
// emergent system-wide variant of the lotus-eater attack that the money
// model makes possible: the attacker does not target anyone in particular —
// it simply gifts scrip to arbitrary agents. The money circulates, every
// balance drifts above the threshold, and the whole economy satiates: no
// one needs to earn, so no one volunteers. This is the monetary-inflation
// analogue of the altruist-driven crash in the paper's reference [14].
// Returns overall availability versus scrip injected (per capita).
//
// The dose-response is dramatic: small injections *help* (paying customers
// stop going broke), but once the gift lifts every balance to the
// threshold, the economy freezes permanently — with no volunteers there is
// no service, hence no spending, hence no one ever dips back below the
// threshold. A fixed-supply scrip system has a finite, computable budget
// that kills it outright.
func ScripInflationExperiment(seed uint64, q Quality) *Series {
	q = q.Normalize()
	xs := []float64{0, 1, 2, 2.25, 2.5, 2.75, 3, 4}
	return sweep.Run(sweep.Config{Name: "availability", Xs: xs, Seeds: q.Seeds}, seed, func(x float64, rng *simrng.Source, _ *sim.Workspace) float64 {
		cfg := scrip.DefaultConfig()
		s, err := scrip.New(cfg, rng.Uint64())
		if err != nil {
			return 0
		}
		// Mint x scrip per capita as unconditional gifts — no targeting at
		// all; the inflation itself is the attack. Fractional per-capita
		// amounts distribute the remainder one unit at a time.
		total := int(x * float64(cfg.Agents))
		each := total / cfg.Agents
		rem := total % cfg.Agents
		for i := 0; i < cfg.Agents; i++ {
			amount := each
			if i < rem {
				amount++
			}
			if err := s.Mint(i, amount); err != nil {
				return 0
			}
		}
		res, err := s.Run()
		if err != nil {
			return 0
		}
		return res.Availability
	})
}

// ScripHoardingExperiment (E11, an extension beyond the paper) quantifies
// the paper's closing remark that "nodes that provide a disproportionate
// amount of service can become a point of centralization": attacker agents
// here do nothing malicious except volunteer constantly and never spend.
// Their hoarded earnings drain the fixed money supply until requesters
// cannot pay. Returns availability for ordinary agents versus the hoarder
// fraction.
func ScripHoardingExperiment(seed uint64, q Quality) *Series {
	q = q.Normalize()
	xs := sweep.Range(0, 0.25, q.Points)
	return sweep.Run(sweep.Config{Name: "availability", Xs: xs, Seeds: q.Seeds}, seed, func(x float64, rng *simrng.Source, _ *sim.Workspace) float64 {
		cfg := scrip.DefaultConfig()
		cfg.AttackerFraction = x
		s, err := scrip.New(cfg, rng.Uint64())
		if err != nil {
			return 0
		}
		res, err := s.Run()
		if err != nil {
			return 0
		}
		return res.Availability
	})
}
