package sign

import (
	"testing"

	"lotuseater/internal/simrng"
)

func newKeyring(t *testing.T, n int) *Keyring {
	t.Helper()
	k, err := NewKeyring(n, simrng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestKeyringDeterministic(t *testing.T) {
	a, err := NewKeyring(3, simrng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewKeyring(3, simrng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		pa, _ := a.Public(i)
		pb, _ := b.Public(i)
		if string(pa) != string(pb) {
			t.Fatalf("identity %d differs across same-seed keyrings", i)
		}
	}
}

func TestKeyringNegative(t *testing.T) {
	if _, err := NewKeyring(-1, simrng.New(1)); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestPublicOutOfRange(t *testing.T) {
	k := newKeyring(t, 2)
	if _, err := k.Public(2); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	if _, err := k.Public(-1); err == nil {
		t.Fatal("negative id accepted")
	}
}

func TestSignVerifyRoundtrip(t *testing.T) {
	k := newKeyring(t, 4)
	r, err := k.SignReceipt(7, 1, 2, []uint64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if !k.VerifyReceipt(r) {
		t.Fatal("valid receipt failed verification")
	}
	if r.Round != 7 || r.From != 1 || r.To != 2 || len(r.Updates) != 3 {
		t.Fatalf("receipt fields corrupted: %+v", r)
	}
}

func TestSignReceiptCopiesUpdates(t *testing.T) {
	k := newKeyring(t, 2)
	ups := []uint64{1, 2}
	r, err := k.SignReceipt(0, 0, 1, ups)
	if err != nil {
		t.Fatal(err)
	}
	ups[0] = 99 // caller mutation must not affect the receipt
	if !k.VerifyReceipt(r) {
		t.Fatal("receipt invalidated by caller mutation")
	}
}

func TestTamperedReceiptRejected(t *testing.T) {
	k := newKeyring(t, 4)
	base, err := k.SignReceipt(7, 1, 2, []uint64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	mutations := []func(Receipt) Receipt{
		func(r Receipt) Receipt { r.Round = 8; return r },
		func(r Receipt) Receipt { r.To = 3; return r },
		func(r Receipt) Receipt { r.Updates = []uint64{10, 21}; return r },
		func(r Receipt) Receipt { r.Updates = []uint64{10}; return r },
		func(r Receipt) Receipt { r.Updates = []uint64{10, 20, 30}; return r },
		func(r Receipt) Receipt {
			sig := append([]byte(nil), r.Sig...)
			sig[0] ^= 1
			r.Sig = sig
			return r
		},
	}
	for i, mutate := range mutations {
		if k.VerifyReceipt(mutate(base)) {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestForgedSenderRejected(t *testing.T) {
	k := newKeyring(t, 4)
	r, err := k.SignReceipt(1, 1, 2, []uint64{5})
	if err != nil {
		t.Fatal(err)
	}
	r.From = 3 // claim node 3 signed it
	if k.VerifyReceipt(r) {
		t.Fatal("receipt with forged sender accepted")
	}
}

func TestSignUnknownIdentity(t *testing.T) {
	k := newKeyring(t, 2)
	if _, err := k.SignReceipt(0, 5, 1, nil); err == nil {
		t.Fatal("signing with unknown identity accepted")
	}
}

func TestPartnerDeterministicAndInRange(t *testing.T) {
	const n = 50
	for round := 0; round < 20; round++ {
		for init := 0; init < n; init++ {
			p1 := Partner(PartnerSeed(9), "balanced", round, init, n)
			p2 := Partner(PartnerSeed(9), "balanced", round, init, n)
			if p1 != p2 {
				t.Fatal("partner selection not deterministic")
			}
			if p1 == init {
				t.Fatalf("round %d: node %d partnered with itself", round, init)
			}
			if p1 < 0 || p1 >= n {
				t.Fatalf("partner %d out of range", p1)
			}
		}
	}
}

func TestPartnerVariesWithInputs(t *testing.T) {
	base := Partner(PartnerSeed(9), "balanced", 0, 0, 100)
	diffs := 0
	if Partner(PartnerSeed(10), "balanced", 0, 0, 100) != base {
		diffs++
	}
	if Partner(PartnerSeed(9), "push", 0, 0, 100) != base {
		diffs++
	}
	if Partner(PartnerSeed(9), "balanced", 1, 0, 100) != base {
		diffs++
	}
	if diffs == 0 {
		t.Fatal("partner ignores seed, label, and round")
	}
}

func TestPartnerRoughlyUniform(t *testing.T) {
	const n = 10
	counts := make([]int, n)
	for round := 0; round < 5000; round++ {
		counts[Partner(PartnerSeed(3), "balanced", round, 0, n)]++
	}
	if counts[0] != 0 {
		t.Fatal("initiator chosen as own partner")
	}
	for v := 1; v < n; v++ {
		if counts[v] < 350 || counts[v] > 800 {
			t.Fatalf("partner %d chosen %d/5000 times; want ~555", v, counts[v])
		}
	}
}

func TestPartnerPanicsSmallN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Partner with n=1 did not panic")
		}
	}()
	Partner(PartnerSeed(1), "x", 0, 0, 1)
}

func TestKeyringN(t *testing.T) {
	if got := newKeyring(t, 4).N(); got != 4 {
		t.Fatalf("N = %d, want 4", got)
	}
}

func TestVerifyReceiptUnknownSender(t *testing.T) {
	k := newKeyring(t, 2)
	r, err := k.SignReceipt(0, 0, 1, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	r.From = 7 // no such identity
	if k.VerifyReceipt(r) {
		t.Fatal("receipt from unknown identity accepted")
	}
}
