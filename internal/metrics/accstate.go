package metrics

import "math"

// AccumulatorState is the wire form of an Accumulator: every float is
// carried as its IEEE-754 bit pattern in a uint64, so a state that crosses
// a JSON boundary reconstructs the accumulator bit for bit — including
// non-finite values, which JSON number literals cannot spell. Decimal
// round-tripping would also be exact for finite floats in Go, but the bit
// encoding makes exactness a property of the representation rather than of
// two formatters agreeing, which is the contract cluster merge correctness
// rests on.
type AccumulatorState struct {
	N    int64  `json:"n"`
	Sum  uint64 `json:"sumBits"`
	Mean uint64 `json:"meanBits"`
	M2   uint64 `json:"m2Bits"`
	Min  uint64 `json:"minBits"`
	Max  uint64 `json:"maxBits"`
}

// State captures the accumulator's exact value for transport. The inverse
// is AccumulatorState.Accumulator; the round trip is the identity on every
// field (pinned by test).
func (a *Accumulator) State() AccumulatorState {
	return AccumulatorState{
		N:    a.n,
		Sum:  math.Float64bits(a.sum),
		Mean: math.Float64bits(a.mean),
		M2:   math.Float64bits(a.m2),
		Min:  math.Float64bits(a.min),
		Max:  math.Float64bits(a.max),
	}
}

// Accumulator reconstructs the exact accumulator the state was captured
// from. Merging reconstructed partials is bit-identical to merging the
// originals.
func (st AccumulatorState) Accumulator() Accumulator {
	return Accumulator{
		n:    st.N,
		sum:  math.Float64frombits(st.Sum),
		mean: math.Float64frombits(st.Mean),
		m2:   math.Float64frombits(st.M2),
		min:  math.Float64frombits(st.Min),
		max:  math.Float64frombits(st.Max),
	}
}
