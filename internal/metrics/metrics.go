// Package metrics provides the small numeric and reporting toolkit used to
// regenerate the paper's figures: (x, y) series, summary statistics,
// crossover detection ("what attacker fraction pushes delivery below 93%?"),
// and aligned-table / CSV rendering.
package metrics

import (
	"fmt"
	"maps"
	"math"
	"slices"
	"sort"
	"strings"
)

// unionXs returns the ascending union of X values across series — the row
// order Table and CSV share. slices.Sorted over the key set keeps map
// iteration order out of rendered artifacts entirely.
func unionXs(series []*Series) []float64 {
	xsSet := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			xsSet[p.X] = true
		}
	}
	return slices.Sorted(maps.Keys(xsSet))
}

// Point is one (x, y) sample of a sweep.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Series is a named sequence of points, ordered by X.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Add appends a point; callers should add points in ascending X order or
// call Sort afterwards.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// Sort orders points by ascending X.
func (s *Series) Sort() {
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].X < s.Points[j].X })
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Points) }

// YAt returns the Y value at the first point with X >= x, or the last point's
// Y if all X < x. It returns 0 for an empty series.
func (s *Series) YAt(x float64) float64 {
	if len(s.Points) == 0 {
		return 0
	}
	for _, p := range s.Points {
		if p.X >= x {
			return p.Y
		}
	}
	return s.Points[len(s.Points)-1].Y
}

// CrossoverBelow returns the smallest X at which Y drops below threshold,
// interpolating linearly between bracketing points. The second result is
// false if the series never drops below the threshold.
//
// This implements the paper's headline statistics: e.g. "the attacker needs
// to control 42% of the system to ensure fewer than 93% of the updates are
// delivered" is CrossoverBelow(0.93) on the crash-attack series.
func (s *Series) CrossoverBelow(threshold float64) (float64, bool) {
	for i, p := range s.Points {
		if p.Y < threshold {
			if i == 0 {
				return p.X, true
			}
			prev := s.Points[i-1]
			dy := p.Y - prev.Y
			if dy == 0 {
				return p.X, true
			}
			t := (threshold - prev.Y) / dy
			return prev.X + t*(p.X-prev.X), true
		}
	}
	return 0, false
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for n < 2).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns 0 for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	out := math.Inf(1)
	for _, x := range xs {
		if x < out {
			out = x
		}
	}
	return out
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	out := math.Inf(-1)
	for _, x := range xs {
		if x > out {
			out = x
		}
	}
	return out
}

// Table renders series side by side as an aligned text table: the first
// column is X (union of all X values across series, ascending), then one
// column per series. Missing values render as "-".
func Table(xLabel string, series ...*Series) string {
	xs := unionXs(series)

	header := make([]string, 0, len(series)+1)
	header = append(header, xLabel)
	for _, s := range series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{fmt.Sprintf("%.3f", x)}
		for _, s := range series {
			cell := "-"
			for _, p := range s.Points {
				if p.X == x {
					cell = fmt.Sprintf("%.4f", p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	return RenderRows(rows)
}

// RenderRows renders rows of cells as an aligned, space-padded text table
// with a rule under the header row.
func RenderRows(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteString("\n")
	}
	writeRow(rows[0])
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteString("\n")
	for _, row := range rows[1:] {
		writeRow(row)
	}
	return b.String()
}

// CSV renders series as comma-separated values with an x column followed by
// one column per series (same layout as Table).
func CSV(xLabel string, series ...*Series) string {
	xs := unionXs(series)

	var b strings.Builder
	b.WriteString(csvEscape(xLabel))
	for _, s := range series {
		b.WriteString(",")
		b.WriteString(csvEscape(s.Name))
	}
	b.WriteString("\n")
	for _, x := range xs {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range series {
			b.WriteString(",")
			found := false
			for _, p := range s.Points {
				if p.X == x {
					fmt.Fprintf(&b, "%g", p.Y)
					found = true
					break
				}
			}
			if !found {
				b.WriteString("")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
	}
	return s
}
