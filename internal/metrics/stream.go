package metrics

import (
	"math"
	"sort"
)

// Accumulator folds a stream of observations into summary statistics —
// count, mean, variance, min, max — in O(1) memory. The mean is the plain
// running sum divided by the count, so folding values in a fixed order
// yields bit-identical means to the buffered Mean; the variance uses
// Welford's online algorithm, numerically stable for long streams.
//
// The zero value is ready to use. Accumulators are not safe for concurrent
// use; fold per worker and Merge (or fold in replicate order, as
// sim.Runner.Fold arranges).
type Accumulator struct {
	n    int64
	sum  float64
	mean float64 // Welford running mean (variance only; Mean() uses sum)
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
	a.sum += x
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// Merge folds another accumulator's stream into a, as if its observations
// had been Added here (Chan et al.'s parallel variance combination).
//
// Contract: b is read-only (never mutated), an empty b is a no-op, merging
// into an empty a copies b, and self-merge — a.Merge(a) — is well defined:
// it doubles the stream, exactly as if every observation had been Added
// twice. All of this is pinned by tests.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	a.mean += d * float64(b.n) / float64(n)
	a.sum += b.sum
	a.n = n
}

// Reset empties the accumulator for reuse.
func (a *Accumulator) Reset() { *a = Accumulator{} }

// Count returns the number of observations folded.
func (a *Accumulator) Count() int64 { return a.n }

// Sum returns the running sum.
func (a *Accumulator) Sum() float64 { return a.sum }

// Mean returns sum/count (0 when empty), matching Mean on the same values
// in the same order bit for bit.
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Variance returns the sample variance (0 for n < 2).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest observation (+Inf when empty, matching Min).
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return math.Inf(1)
	}
	return a.min
}

// Max returns the largest observation (-Inf when empty, matching Max).
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return math.Inf(-1)
	}
	return a.max
}

// P2Quantile estimates a single quantile online with the P² algorithm
// (Jain & Chlamtac, CACM 1985): five markers track the running quantile in
// O(1) memory, adjusted with piecewise-parabolic interpolation. Exact for
// the first five observations, an estimate afterwards — the price of not
// buffering 10k+ replicate results.
//
// The zero value is not usable; construct with NewP2Quantile.
type P2Quantile struct {
	p       float64
	n       int64
	heights [5]float64
	pos     [5]float64
	want    [5]float64
	inc     [5]float64
	initial []float64
}

// NewP2Quantile returns an estimator for the p-quantile, 0 < p < 1.
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic("metrics: P2 quantile needs 0 < p < 1")
	}
	return &P2Quantile{
		p:       p,
		inc:     [5]float64{0, p / 2, p, (1 + p) / 2, 1},
		initial: make([]float64, 0, 5),
	}
}

// Reset empties the estimator for reuse.
func (q *P2Quantile) Reset() {
	q.n = 0
	q.initial = q.initial[:0]
}

// Add folds one observation.
func (q *P2Quantile) Add(x float64) {
	q.n++
	if len(q.initial) < 5 {
		q.initial = append(q.initial, x)
		if len(q.initial) == 5 {
			sort.Float64s(q.initial)
			for i := range q.heights {
				q.heights[i] = q.initial[i]
				q.pos[i] = float64(i + 1)
			}
			q.want = [5]float64{1, 1 + 2*q.p, 1 + 4*q.p, 3 + 2*q.p, 5}
		}
		return
	}

	// Locate the cell containing x and bump the extreme markers.
	var k int
	switch {
	case x < q.heights[0]:
		q.heights[0] = x
		k = 0
	case x >= q.heights[4]:
		q.heights[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < q.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := range q.want {
		q.want[i] += q.inc[i]
	}

	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			h := q.parabolic(i, s)
			if q.heights[i-1] < h && h < q.heights[i+1] {
				q.heights[i] = h
			} else {
				q.heights[i] = q.linear(i, s)
			}
			q.pos[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic marker adjustment. Marker
// positions are strictly increasing by invariant, but the guard makes the
// estimator robust if a degenerate stream ever drives adjacent positions
// together: a zero denominator yields NaN, which the caller's bounds check
// (heights[i-1] < h < heights[i+1], false for NaN) rejects in favor of
// linear — never a division-poisoned marker.
func (q *P2Quantile) parabolic(i int, s float64) float64 {
	dd := q.pos[i+1] - q.pos[i-1]
	dp := q.pos[i+1] - q.pos[i]
	dm := q.pos[i] - q.pos[i-1]
	if dd == 0 || dp == 0 || dm == 0 {
		return math.NaN()
	}
	return q.heights[i] + s/dd*
		((dm+s)*(q.heights[i+1]-q.heights[i])/dp+
			(dp-s)*(q.heights[i]-q.heights[i-1])/dm)
}

// linear is the fallback marker adjustment; with coincident positions it
// leaves the marker's height unchanged rather than dividing by zero.
func (q *P2Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	dp := q.pos[j] - q.pos[i]
	if dp == 0 {
		return q.heights[i]
	}
	return q.heights[i] + s*(q.heights[j]-q.heights[i])/dp
}

// Count returns the number of observations folded.
func (q *P2Quantile) Count() int64 { return q.n }

// Value returns the current quantile estimate (exact for n <= 5, 0 when
// empty).
func (q *P2Quantile) Value() float64 {
	if len(q.initial) < 5 {
		if q.n == 0 {
			return 0
		}
		buf := make([]float64, len(q.initial))
		copy(buf, q.initial)
		sort.Float64s(buf)
		return Quantile(buf, q.p)
	}
	return q.heights[2]
}

// Stream bundles the standard scenario statistics — mean/variance/min/max
// plus median and p90 estimates — behind one Add. The zero value is not
// usable; construct with NewStream.
type Stream struct {
	Acc Accumulator
	P50 *P2Quantile
	P90 *P2Quantile
}

// NewStream returns an empty streaming summary.
func NewStream() *Stream {
	return &Stream{P50: NewP2Quantile(0.5), P90: NewP2Quantile(0.9)}
}

// Add folds one observation into every statistic.
func (s *Stream) Add(x float64) {
	s.Acc.Add(x)
	s.P50.Add(x)
	s.P90.Add(x)
}

// Reset empties the stream for reuse.
func (s *Stream) Reset() {
	s.Acc.Reset()
	s.P50.Reset()
	s.P90.Reset()
}
