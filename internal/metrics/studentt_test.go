package metrics

import (
	"math"
	"testing"
)

// TestTCriticalGolden pins the Student-t critical values against
// scipy-derived constants (scipy.stats.t.ppf((1+c)/2, df)) — the classic
// table values to full float precision. A drift here means the continued
// fraction or the inversion broke, and with it every adaptive stopping
// decision.
func TestTCriticalGolden(t *testing.T) {
	cases := []struct {
		confidence float64
		df         int64
		want       float64
	}{
		// 95% two-sided.
		{0.95, 1, 12.706204736},
		{0.95, 2, 4.302652730},
		{0.95, 3, 3.182446305},
		{0.95, 4, 2.776445105},
		{0.95, 5, 2.570581836},
		{0.95, 9, 2.262157163},
		{0.95, 10, 2.228138852},
		{0.95, 30, 2.042272456},
		{0.95, 100, 1.983971519},
		// 99% two-sided.
		{0.99, 1, 63.656741162},
		{0.99, 2, 9.924843201},
		{0.99, 5, 4.032142984},
		{0.99, 10, 3.169272667},
		{0.99, 30, 2.749995654},
		// 90% two-sided.
		{0.90, 1, 6.313751515},
		{0.90, 5, 2.015048373},
		{0.90, 10, 1.812461123},
		{0.90, 30, 1.697260887},
	}
	for _, c := range cases {
		got := TCritical(c.confidence, c.df)
		if rel := math.Abs(got-c.want) / c.want; rel > 1e-8 {
			t.Errorf("TCritical(%g, %d) = %.9f, want %.9f (rel err %.2g)",
				c.confidence, c.df, got, c.want, rel)
		}
	}
	// Large df converges on the normal critical value from above.
	z95 := 1.959963985
	big := TCritical(0.95, 1_000_000)
	if big < z95 || big > z95+1e-4 {
		t.Errorf("TCritical(0.95, 1e6) = %.9f, want just above %.9f", big, z95)
	}
}

// TestTQuantileInvertsCDF: the quantile must invert the CDF across
// confidence levels and df — the property the bisection promises.
func TestTQuantileInvertsCDF(t *testing.T) {
	for _, df := range []float64{1, 2, 3.5, 7, 29, 240, 10_000} {
		for _, p := range []float64{0.005, 0.05, 0.25, 0.5, 0.8, 0.95, 0.9995} {
			q := TQuantile(p, df)
			if back := TCDF(q, df); math.Abs(back-p) > 1e-10 {
				t.Errorf("TCDF(TQuantile(%g, df=%g)) = %g", p, df, back)
			}
		}
		// Symmetry: the distribution is even.
		if q := TQuantile(0.25, df); math.Abs(q+TQuantile(0.75, df)) > 1e-12 {
			t.Errorf("df=%g: quantiles not symmetric: %g", df, q)
		}
	}
}

// TestAccumulatorHalfWidth: the half-width readout against a hand-computed
// interval, the n<2 guard, and the relative variant.
func TestAccumulatorHalfWidth(t *testing.T) {
	var a Accumulator
	if !math.IsInf(a.HalfWidth(0.95), 1) {
		t.Fatal("empty accumulator must have infinite half-width")
	}
	a.Add(2)
	if !math.IsInf(a.HalfWidth(0.95), 1) {
		t.Fatal("one observation must have infinite half-width")
	}
	a.Add(4)
	a.Add(6)
	// Sample {2,4,6}: mean 4, s = 2, n = 3, t_{2,0.975} = 4.302652730.
	want := 4.302652730 * 2 / math.Sqrt(3)
	if got := a.HalfWidth(0.95); math.Abs(got-want) > 1e-8 {
		t.Fatalf("HalfWidth = %.9f, want %.9f", got, want)
	}
	if got := a.RelHalfWidth(0.95); math.Abs(got-want/4) > 1e-8 {
		t.Fatalf("RelHalfWidth = %.9f, want %.9f", got, want/4)
	}
	var zero Accumulator
	zero.Add(0)
	zero.Add(0)
	if !math.IsInf(zero.RelHalfWidth(0.95), 1) {
		t.Fatal("zero-mean relative half-width must be infinite")
	}
	// Tighter confidence means a wider interval.
	if a.HalfWidth(0.99) <= a.HalfWidth(0.95) || a.HalfWidth(0.95) <= a.HalfWidth(0.90) {
		t.Fatal("half-width not monotone in confidence")
	}
}
