package metrics

import (
	"encoding/json"
	"math"
	"testing"

	"lotuseater/internal/simrng"
)

// TestAccumulatorStateRoundTrip pins State/Accumulator as an exact inverse
// pair, through a JSON boundary, for streams of awkward floats (subnormals,
// huge magnitudes, negatives) — the property the cluster's partial-state
// wire format rests on.
func TestAccumulatorStateRoundTrip(t *testing.T) {
	rng := simrng.New(7)
	for trial := 0; trial < 50; trial++ {
		var a Accumulator
		n := rng.IntN(200)
		for i := 0; i < n; i++ {
			x := (rng.Float64() - 0.5) * math.Pow(10, float64(rng.IntN(40)-20))
			a.Add(x)
		}
		body, err := json.Marshal(a.State())
		if err != nil {
			t.Fatal(err)
		}
		var st AccumulatorState
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		b := st.Accumulator()
		if a != b {
			t.Fatalf("trial %d: round trip changed accumulator:\n%+v\nvs\n%+v", trial, a, b)
		}
	}
}

// TestAccumulatorStateNonFinite pins that the bit encoding survives values
// plain JSON numbers cannot: infinities and NaN-poisoned statistics still
// reconstruct bit for bit.
func TestAccumulatorStateNonFinite(t *testing.T) {
	var a Accumulator
	a.Add(math.Inf(1))
	a.Add(math.Inf(-1))
	a.Add(3.5)
	body, err := json.Marshal(a.State())
	if err != nil {
		t.Fatal(err)
	}
	var st AccumulatorState
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	b := st.Accumulator()
	// NaN != NaN, so compare bit patterns field by field via State.
	if a.State() != b.State() {
		t.Fatalf("non-finite round trip changed accumulator:\n%+v\nvs\n%+v", a, b)
	}
}

// TestAccumulatorStateMergeEquivalence pins that merging reconstructed
// partials is bit-identical to merging the originals — a shard may cross
// the wire before its peers merge it.
func TestAccumulatorStateMergeEquivalence(t *testing.T) {
	rng := simrng.New(11)
	for trial := 0; trial < 20; trial++ {
		var left, right, direct Accumulator
		for i := 0; i < 50+rng.IntN(100); i++ {
			x := rng.NormFloat64()
			if i%2 == 0 {
				left.Add(x)
			} else {
				right.Add(x)
			}
		}
		direct = left
		direct.Merge(&right)

		viaWire := left.State().Accumulator()
		rightWire := right.State().Accumulator()
		viaWire.Merge(&rightWire)
		if direct != viaWire {
			t.Fatalf("trial %d: wire merge diverged:\n%+v\nvs\n%+v", trial, direct, viaWire)
		}
	}
}
