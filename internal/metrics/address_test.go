package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func addressedArtifact() *Artifact {
	mean := &Series{Name: "mean"}
	mean.Add(0, 0.5)
	mean.Add(1, 0.25)
	return &Artifact{
		Name:   "addr-test",
		Title:  "content addressing",
		XLabel: "x",
		Series: []*Series{mean},
		Notes:  []string{"a note"},
	}
}

// TestArtifactAddressStable: equal artifacts share canonical bytes and one
// address; the address survives a JSON round trip; different content gets a
// different address.
func TestArtifactAddressStable(t *testing.T) {
	a, b := addressedArtifact(), addressedArtifact()
	ca, err := a.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Fatalf("equal artifacts canonicalized differently:\n%s\n%s", ca, cb)
	}
	addr, err := a.Address()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(addr, "sha256:") || len(addr) != len("sha256:")+64 {
		t.Fatalf("malformed address %q", addr)
	}

	// Round trip through the indented JSON encoding: same content, same
	// address.
	data, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	backAddr, err := back.Address()
	if err != nil {
		t.Fatal(err)
	}
	if backAddr != addr {
		t.Fatalf("address changed across JSON round trip: %s vs %s", backAddr, addr)
	}

	b.Notes = append(b.Notes, "changed")
	changed, err := b.Address()
	if err != nil {
		t.Fatal(err)
	}
	if changed == addr {
		t.Fatal("different content produced the same address")
	}
}
