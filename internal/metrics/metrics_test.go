package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesAddAndSort(t *testing.T) {
	s := &Series{Name: "x"}
	s.Add(3, 30)
	s.Add(1, 10)
	s.Add(2, 20)
	s.Sort()
	for i, want := range []float64{1, 2, 3} {
		if s.Points[i].X != want {
			t.Fatalf("point %d X = %g, want %g", i, s.Points[i].X, want)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestYAt(t *testing.T) {
	s := &Series{}
	if s.YAt(1) != 0 {
		t.Fatal("empty series YAt != 0")
	}
	s.Add(0, 5)
	s.Add(1, 7)
	if got := s.YAt(0.5); got != 7 {
		t.Fatalf("YAt(0.5) = %g, want 7 (first X >= x)", got)
	}
	if got := s.YAt(2); got != 7 {
		t.Fatalf("YAt(2) = %g, want last value 7", got)
	}
	if got := s.YAt(-1); got != 5 {
		t.Fatalf("YAt(-1) = %g, want 5", got)
	}
}

func TestCrossoverBelow(t *testing.T) {
	s := &Series{}
	s.Add(0.0, 1.0)
	s.Add(0.2, 0.96)
	s.Add(0.4, 0.90)
	s.Add(0.6, 0.80)
	x, ok := s.CrossoverBelow(0.93)
	if !ok {
		t.Fatal("no crossover found")
	}
	// Linear interpolation between (0.2, 0.96) and (0.4, 0.90):
	// 0.93 at x = 0.2 + (0.96-0.93)/(0.96-0.90) * 0.2 = 0.3.
	if math.Abs(x-0.3) > 1e-9 {
		t.Fatalf("crossover at %g, want 0.3", x)
	}
}

func TestCrossoverNever(t *testing.T) {
	s := &Series{}
	s.Add(0, 0.99)
	s.Add(1, 0.95)
	if _, ok := s.CrossoverBelow(0.5); ok {
		t.Fatal("found nonexistent crossover")
	}
}

func TestCrossoverAtFirstPoint(t *testing.T) {
	s := &Series{}
	s.Add(0.1, 0.5)
	s.Add(0.2, 0.4)
	x, ok := s.CrossoverBelow(0.93)
	if !ok || x != 0.1 {
		t.Fatalf("crossover = %g, %v; want 0.1, true", x, ok)
	}
}

func TestCrossoverFlatSegment(t *testing.T) {
	s := &Series{}
	s.Add(0, 0.95)
	s.Add(1, 0.95)
	s.Add(2, 0.80)
	s.Add(3, 0.80)
	x, ok := s.CrossoverBelow(0.90)
	if !ok {
		t.Fatal("no crossover")
	}
	if x < 1 || x > 2 {
		t.Fatalf("crossover %g outside [1,2]", x)
	}
}

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %g, want 5", got)
	}
	if got := StdDev(xs); math.Abs(got-2.138089935) > 1e-6 {
		t.Fatalf("StdDev = %g", got)
	}
	if StdDev([]float64{3}) != 0 {
		t.Fatal("StdDev of singleton != 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("Quantile(nil) != 0")
	}
	// Quantile must not mutate its input.
	xs2 := []float64{5, 1, 3}
	Quantile(xs2, 0.5)
	if xs2[0] != 5 {
		t.Fatal("Quantile sorted the caller's slice")
	}
}

func TestMinMax(t *testing.T) {
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max not infinite")
	}
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %g/%g", Min(xs), Max(xs))
	}
}

func TestQuantileMonotone(t *testing.T) {
	err := quick.Check(func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(raw, qa) <= Quantile(raw, qb)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	a := &Series{Name: "alpha"}
	a.Add(0, 1)
	a.Add(1, 0.5)
	b := &Series{Name: "beta"}
	b.Add(0, 0.9)
	out := Table("x", a, b)
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Fatalf("missing headers:\n%s", out)
	}
	if !strings.Contains(out, "0.5000") {
		t.Fatalf("missing value:\n%s", out)
	}
	// b has no point at x=1; the cell renders as "-".
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, "-") {
		t.Fatalf("missing-value cell not rendered: %q", last)
	}
}

func TestRenderRowsEmpty(t *testing.T) {
	if RenderRows(nil) != "" {
		t.Fatal("RenderRows(nil) non-empty")
	}
}

func TestRenderRowsAlignment(t *testing.T) {
	out := RenderRows([][]string{{"a", "bb"}, {"ccc", "d"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatalf("no header rule: %q", lines[1])
	}
}

func TestCSV(t *testing.T) {
	a := &Series{Name: "with,comma"}
	a.Add(0, 1)
	a.Add(0.5, 2)
	out := CSV("x", a)
	if !strings.Contains(out, "\"with,comma\"") {
		t.Fatalf("comma header not escaped: %s", out)
	}
	if !strings.Contains(out, "0.5,2") {
		t.Fatalf("row missing: %s", out)
	}
}

func TestCSVEscapeQuote(t *testing.T) {
	if got := csvEscape(`say "hi"`); got != `"say ""hi"""` {
		t.Fatalf("csvEscape = %q", got)
	}
	if got := csvEscape("plain"); got != "plain" {
		t.Fatalf("csvEscape = %q", got)
	}
}
