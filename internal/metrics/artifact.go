package metrics

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
)

// Artifact is the output of one experiment: either a set of (x, y) series
// (figures) or a rendered table of string cells (parameter tables, scenario
// summaries), plus free-form notes such as crossover annotations. Artifacts
// encode to aligned text, CSV, and JSON, and round-trip through JSON.
type Artifact struct {
	// Name is the registry name of the producing experiment.
	Name string `json:"name"`
	// Title is the human-readable headline, e.g. a figure caption.
	Title string `json:"title"`
	// XLabel names the swept parameter for series artifacts.
	XLabel string `json:"xlabel,omitempty"`
	// Series holds the figure curves; nil for table artifacts.
	Series []*Series `json:"series,omitempty"`
	// Table holds rows of cells (first row is the header); nil for series
	// artifacts.
	Table [][]string `json:"table,omitempty"`
	// Notes are human-readable annotations (crossover statistics etc.).
	Notes []string `json:"notes,omitempty"`
}

// Text renders the artifact as an aligned text table with a title header
// and trailing notes — the format cmd/figures has always printed.
func (a *Artifact) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n\n", a.Title)
	if len(a.Table) > 0 {
		b.WriteString(RenderRows(a.Table))
	} else {
		b.WriteString(Table(a.xLabel(), a.Series...))
	}
	for _, n := range a.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// CSV renders the artifact as comma-separated values: series artifacts get
// an x column followed by one column per series; table artifacts get their
// cells escaped row by row.
func (a *Artifact) CSV() string {
	if len(a.Table) > 0 {
		var b strings.Builder
		for _, row := range a.Table {
			for i, cell := range row {
				if i > 0 {
					b.WriteString(",")
				}
				b.WriteString(csvEscape(cell))
			}
			b.WriteString("\n")
		}
		return b.String()
	}
	return CSV(a.xLabel(), a.Series...)
}

// JSON encodes the artifact; DecodeArtifact inverts it.
func (a *Artifact) JSON() ([]byte, error) {
	return json.MarshalIndent(a, "", "  ")
}

// CanonicalJSON encodes the artifact in canonical form: the compact JSON
// encoding, deterministic byte for byte (struct fields in declaration
// order), so equal artifacts always serialize identically. This is the
// content that Address hashes and the experiment service caches.
func (a *Artifact) CanonicalJSON() ([]byte, error) {
	return json.Marshal(a)
}

// Address returns the artifact's content address, "sha256:<hex>" of its
// canonical JSON. Two runs that produce bit-identical results share one
// address — the experiment service exposes it as the ETag of a cached
// result, so clients can detect that two different requests converged on
// the same content.
func (a *Artifact) Address() (string, error) {
	data, err := a.CanonicalJSON()
	if err != nil {
		return "", err
	}
	return AddressBytes(data), nil
}

// AddressBytes returns the content address of an already-encoded canonical
// JSON body — what Address computes, without re-encoding, for callers that
// hold the bytes anyway.
func AddressBytes(canonical []byte) string {
	sum := sha256.Sum256(canonical)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// DecodeArtifact parses the output of Artifact.JSON.
func DecodeArtifact(data []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("metrics: decoding artifact: %w", err)
	}
	return &a, nil
}

func (a *Artifact) xLabel() string {
	if a.XLabel != "" {
		return a.XLabel
	}
	return "x"
}
