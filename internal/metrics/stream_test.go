package metrics

import (
	"math"
	"sort"
	"testing"

	"lotuseater/internal/simrng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestAccumulatorMatchesBuffered: streaming statistics must agree with the
// buffered helpers on the same data — the mean bit for bit (same summation
// order), the rest within float tolerance.
func TestAccumulatorMatchesBuffered(t *testing.T) {
	rng := simrng.New(7)
	xs := make([]float64, 10000)
	var acc Accumulator
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 0.5
		acc.Add(xs[i])
	}
	if got, want := acc.Mean(), Mean(xs); got != want {
		t.Fatalf("Mean: streaming %v != buffered %v", got, want)
	}
	if got, want := acc.StdDev(), StdDev(xs); !almost(got, want, 1e-9) {
		t.Fatalf("StdDev: streaming %v != buffered %v", got, want)
	}
	if got, want := acc.Min(), Min(xs); got != want {
		t.Fatalf("Min: %v != %v", got, want)
	}
	if got, want := acc.Max(), Max(xs); got != want {
		t.Fatalf("Max: %v != %v", got, want)
	}
	if acc.Count() != int64(len(xs)) {
		t.Fatalf("Count %d, want %d", acc.Count(), len(xs))
	}
}

// TestAccumulatorEmptyAndEdge: empty and tiny accumulators match the
// buffered conventions.
func TestAccumulatorEmptyAndEdge(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 {
		t.Fatalf("empty accumulator: mean %v variance %v", a.Mean(), a.Variance())
	}
	if !math.IsInf(a.Min(), 1) || !math.IsInf(a.Max(), -1) {
		t.Fatalf("empty accumulator min/max: %v/%v", a.Min(), a.Max())
	}
	a.Add(2.5)
	if a.Mean() != 2.5 || a.Variance() != 0 || a.Min() != 2.5 || a.Max() != 2.5 {
		t.Fatalf("singleton accumulator wrong: %+v", a)
	}
}

// TestAccumulatorMerge: merging two halves must equal folding the whole
// stream.
func TestAccumulatorMerge(t *testing.T) {
	rng := simrng.New(11)
	var whole, left, right Accumulator
	for i := 0; i < 5000; i++ {
		x := rng.ExpFloat64()
		whole.Add(x)
		if i < 2000 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(&right)
	if left.Count() != whole.Count() {
		t.Fatalf("merged count %d, want %d", left.Count(), whole.Count())
	}
	if !almost(left.Mean(), whole.Mean(), 1e-12) {
		t.Fatalf("merged mean %v, want %v", left.Mean(), whole.Mean())
	}
	if !almost(left.Variance(), whole.Variance(), 1e-9) {
		t.Fatalf("merged variance %v, want %v", left.Variance(), whole.Variance())
	}
	if left.Min() != whole.Min() || left.Max() != whole.Max() {
		t.Fatalf("merged min/max %v/%v, want %v/%v", left.Min(), left.Max(), whole.Min(), whole.Max())
	}
}

// TestP2QuantileAccuracy: the P² estimate must land near the exact
// quantile for smooth distributions at 10k samples.
func TestP2QuantileAccuracy(t *testing.T) {
	for _, p := range []float64{0.5, 0.9} {
		rng := simrng.New(42)
		est := NewP2Quantile(p)
		xs := make([]float64, 10000)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			est.Add(xs[i])
		}
		exact := Quantile(xs, p)
		if !almost(est.Value(), exact, 0.05) {
			t.Fatalf("p%.0f: P2 %v vs exact %v", p*100, est.Value(), exact)
		}
	}
}

// TestP2QuantileSmallN: below six samples the estimator is exact.
func TestP2QuantileSmallN(t *testing.T) {
	est := NewP2Quantile(0.5)
	if est.Value() != 0 {
		t.Fatalf("empty estimator value %v", est.Value())
	}
	for _, x := range []float64{5, 1, 3} {
		est.Add(x)
	}
	if est.Value() != 3 {
		t.Fatalf("median of {5,1,3} = %v, want 3", est.Value())
	}
}

// TestStreamReset: a reset stream behaves like a fresh one.
func TestStreamReset(t *testing.T) {
	s := NewStream()
	for i := 0; i < 100; i++ {
		s.Add(float64(i))
	}
	s.Reset()
	if s.Acc.Count() != 0 || s.P50.Count() != 0 {
		t.Fatalf("reset stream still holds observations")
	}
	s.Add(4)
	if s.Acc.Mean() != 4 || s.P50.Value() != 4 {
		t.Fatalf("post-reset stream wrong: mean %v p50 %v", s.Acc.Mean(), s.P50.Value())
	}
}

// TestAccumulatorMergeContract pins Merge's documented contract: empty and
// one-sided merges, and the aliasing case a.Merge(a), which must behave as
// if the stream had been folded twice.
func TestAccumulatorMergeContract(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5, 9, 2.5}

	// Self-merge == the doubled stream.
	var a, doubled Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	for i := 0; i < 2; i++ {
		for _, x := range xs {
			doubled.Add(x)
		}
	}
	a.Merge(&a)
	if a.Count() != doubled.Count() || a.Sum() != doubled.Sum() ||
		a.Min() != doubled.Min() || a.Max() != doubled.Max() {
		t.Fatalf("self-merge diverges: count %d sum %g min %g max %g", a.Count(), a.Sum(), a.Min(), a.Max())
	}
	if d := a.Variance() - doubled.Variance(); d > 1e-12 || d < -1e-12 {
		t.Fatalf("self-merge variance %g, want %g", a.Variance(), doubled.Variance())
	}

	// Merging an empty accumulator is a no-op and leaves b untouched.
	var b, empty Accumulator
	for _, x := range xs {
		b.Add(x)
	}
	before := b
	b.Merge(&empty)
	if b != before {
		t.Fatal("merging an empty accumulator changed the receiver")
	}
	if empty.Count() != 0 {
		t.Fatal("merge mutated its argument")
	}

	// Merging into an empty accumulator copies the argument's stream.
	var c Accumulator
	c.Merge(&b)
	if c != b {
		t.Fatalf("empty.Merge(b) = %+v, want %+v", c, b)
	}
}

// TestP2QuantileDegenerateStreams is the property test for the guarded
// interpolation: constant runs, sorted ramps, and adversarial alternations
// must never yield NaN/Inf, and must track the exact quantile.
func TestP2QuantileDegenerateStreams(t *testing.T) {
	finite := func(t *testing.T, q *P2Quantile) {
		t.Helper()
		v := q.Value()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("estimate went non-finite: %v", v)
		}
	}
	t.Run("constant", func(t *testing.T) {
		for _, p := range []float64{0.1, 0.5, 0.9} {
			q := NewP2Quantile(p)
			for i := 0; i < 5000; i++ {
				q.Add(7.25)
				finite(t, q)
			}
			if q.Value() != 7.25 {
				t.Fatalf("p=%g: constant stream estimate %v, want 7.25", p, q.Value())
			}
		}
	})
	t.Run("long-constant-then-jump", func(t *testing.T) {
		q := NewP2Quantile(0.5)
		for i := 0; i < 2000; i++ {
			q.Add(1)
			finite(t, q)
		}
		for i := 0; i < 2000; i++ {
			q.Add(1e9)
			finite(t, q)
		}
	})
	t.Run("alternating-extremes", func(t *testing.T) {
		q := NewP2Quantile(0.9)
		for i := 0; i < 4000; i++ {
			x := -1e12
			if i%2 == 0 {
				x = 1e12
			}
			q.Add(x)
			finite(t, q)
		}
	})
	t.Run("tracks-exact", func(t *testing.T) {
		// Streams where P² should track the exact quantile closely.
		streams := map[string]func(i int) float64{
			"sorted":   func(i int) float64 { return float64(i) },
			"reversed": func(i int) float64 { return float64(9999 - i) },
			"uniform":  func(i int) float64 { return math.Mod(float64(i)*0.61803398875, 1) },
		}
		for name, gen := range streams {
			for _, p := range []float64{0.25, 0.5, 0.9} {
				q := NewP2Quantile(p)
				xs := make([]float64, 10000)
				for i := range xs {
					xs[i] = gen(i)
					q.Add(xs[i])
					finite(t, q)
				}
				sorted := append([]float64(nil), xs...)
				sort.Float64s(sorted)
				exact := Quantile(sorted, p)
				spread := sorted[len(sorted)-1] - sorted[0]
				if diff := math.Abs(q.Value() - exact); diff > 0.05*spread {
					t.Fatalf("%s p=%g: estimate %v vs exact %v (spread %v)", name, p, q.Value(), exact, spread)
				}
			}
		}
	})
	t.Run("exact-small", func(t *testing.T) {
		// Five or fewer observations are exact by construction.
		q := NewP2Quantile(0.5)
		for _, x := range []float64{5, 1, 4} {
			q.Add(x)
		}
		buf := []float64{1, 4, 5}
		if q.Value() != Quantile(buf, 0.5) {
			t.Fatalf("small-stream estimate %v, want exact %v", q.Value(), Quantile(buf, 0.5))
		}
	})
}
