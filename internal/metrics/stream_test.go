package metrics

import (
	"math"
	"testing"

	"lotuseater/internal/simrng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestAccumulatorMatchesBuffered: streaming statistics must agree with the
// buffered helpers on the same data — the mean bit for bit (same summation
// order), the rest within float tolerance.
func TestAccumulatorMatchesBuffered(t *testing.T) {
	rng := simrng.New(7)
	xs := make([]float64, 10000)
	var acc Accumulator
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 0.5
		acc.Add(xs[i])
	}
	if got, want := acc.Mean(), Mean(xs); got != want {
		t.Fatalf("Mean: streaming %v != buffered %v", got, want)
	}
	if got, want := acc.StdDev(), StdDev(xs); !almost(got, want, 1e-9) {
		t.Fatalf("StdDev: streaming %v != buffered %v", got, want)
	}
	if got, want := acc.Min(), Min(xs); got != want {
		t.Fatalf("Min: %v != %v", got, want)
	}
	if got, want := acc.Max(), Max(xs); got != want {
		t.Fatalf("Max: %v != %v", got, want)
	}
	if acc.Count() != int64(len(xs)) {
		t.Fatalf("Count %d, want %d", acc.Count(), len(xs))
	}
}

// TestAccumulatorEmptyAndEdge: empty and tiny accumulators match the
// buffered conventions.
func TestAccumulatorEmptyAndEdge(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 {
		t.Fatalf("empty accumulator: mean %v variance %v", a.Mean(), a.Variance())
	}
	if !math.IsInf(a.Min(), 1) || !math.IsInf(a.Max(), -1) {
		t.Fatalf("empty accumulator min/max: %v/%v", a.Min(), a.Max())
	}
	a.Add(2.5)
	if a.Mean() != 2.5 || a.Variance() != 0 || a.Min() != 2.5 || a.Max() != 2.5 {
		t.Fatalf("singleton accumulator wrong: %+v", a)
	}
}

// TestAccumulatorMerge: merging two halves must equal folding the whole
// stream.
func TestAccumulatorMerge(t *testing.T) {
	rng := simrng.New(11)
	var whole, left, right Accumulator
	for i := 0; i < 5000; i++ {
		x := rng.ExpFloat64()
		whole.Add(x)
		if i < 2000 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(&right)
	if left.Count() != whole.Count() {
		t.Fatalf("merged count %d, want %d", left.Count(), whole.Count())
	}
	if !almost(left.Mean(), whole.Mean(), 1e-12) {
		t.Fatalf("merged mean %v, want %v", left.Mean(), whole.Mean())
	}
	if !almost(left.Variance(), whole.Variance(), 1e-9) {
		t.Fatalf("merged variance %v, want %v", left.Variance(), whole.Variance())
	}
	if left.Min() != whole.Min() || left.Max() != whole.Max() {
		t.Fatalf("merged min/max %v/%v, want %v/%v", left.Min(), left.Max(), whole.Min(), whole.Max())
	}
}

// TestP2QuantileAccuracy: the P² estimate must land near the exact
// quantile for smooth distributions at 10k samples.
func TestP2QuantileAccuracy(t *testing.T) {
	for _, p := range []float64{0.5, 0.9} {
		rng := simrng.New(42)
		est := NewP2Quantile(p)
		xs := make([]float64, 10000)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			est.Add(xs[i])
		}
		exact := Quantile(xs, p)
		if !almost(est.Value(), exact, 0.05) {
			t.Fatalf("p%.0f: P2 %v vs exact %v", p*100, est.Value(), exact)
		}
	}
}

// TestP2QuantileSmallN: below six samples the estimator is exact.
func TestP2QuantileSmallN(t *testing.T) {
	est := NewP2Quantile(0.5)
	if est.Value() != 0 {
		t.Fatalf("empty estimator value %v", est.Value())
	}
	for _, x := range []float64{5, 1, 3} {
		est.Add(x)
	}
	if est.Value() != 3 {
		t.Fatalf("median of {5,1,3} = %v, want 3", est.Value())
	}
}

// TestStreamReset: a reset stream behaves like a fresh one.
func TestStreamReset(t *testing.T) {
	s := NewStream()
	for i := 0; i < 100; i++ {
		s.Add(float64(i))
	}
	s.Reset()
	if s.Acc.Count() != 0 || s.P50.Count() != 0 {
		t.Fatalf("reset stream still holds observations")
	}
	s.Add(4)
	if s.Acc.Mean() != 4 || s.P50.Value() != 4 {
		t.Fatalf("post-reset stream wrong: mean %v p50 %v", s.Acc.Mean(), s.P50.Value())
	}
}
