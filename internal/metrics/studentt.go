// Student-t confidence machinery for the adaptive precision runner: the
// stopping rule in internal/adaptive halts a sweep point's replicate waves
// once the Student-t confidence interval on the folded metric's mean is
// narrow enough, so the critical values here sit on the hot(ish) path of
// every adaptive run. The quantile is inverted from the regularized
// incomplete beta CDF by bisection — no lookup tables, accurate to ~1e-12,
// and valid for any df — and the values are pinned against scipy-derived
// golden constants in studentt_test.go.
package metrics

import (
	"fmt"
	"math"
)

// HalfWidth returns the two-sided Student-t confidence-interval half-width
// of the mean at the given confidence level (e.g. 0.95):
// t_{n-1,(1+c)/2} * s / sqrt(n). It is +Inf for fewer than two
// observations — the variance is unknown, so no finite interval is
// defensible, and a stopping rule comparing against it can never fire
// prematurely.
func (a *Accumulator) HalfWidth(confidence float64) float64 {
	if a.n < 2 {
		return math.Inf(1)
	}
	return TCritical(confidence, a.n-1) * a.StdDev() / math.Sqrt(float64(a.n))
}

// RelHalfWidth returns HalfWidth as a fraction of the mean's magnitude —
// the relative-error readout for stopping rules phrased as "within 1% of
// the mean". It is +Inf when the mean is zero (relative error is undefined)
// or with fewer than two observations.
func (a *Accumulator) RelHalfWidth(confidence float64) float64 {
	m := a.Mean()
	if m == 0 {
		return math.Inf(1)
	}
	return a.HalfWidth(confidence) / math.Abs(m)
}

// TCritical returns the two-sided Student-t critical value at the given
// confidence level with df degrees of freedom: the t for which a fraction
// `confidence` of the distribution lies in [-t, t]. It panics on a
// confidence outside (0,1) or df < 1 — programmer errors, not data.
func TCritical(confidence float64, df int64) float64 {
	if confidence <= 0 || confidence >= 1 {
		panic(fmt.Sprintf("metrics: TCritical confidence must be in (0,1), got %g", confidence))
	}
	if df < 1 {
		panic(fmt.Sprintf("metrics: TCritical needs df >= 1, got %d", df))
	}
	return TQuantile(0.5+confidence/2, float64(df))
}

// TQuantile returns the p-quantile of the Student-t distribution with df
// degrees of freedom, inverted from TCDF by bracketed bisection.
func TQuantile(p, df float64) float64 {
	switch {
	case math.IsNaN(p) || p <= 0 || p >= 1:
		panic(fmt.Sprintf("metrics: TQuantile p must be in (0,1), got %g", p))
	case df <= 0:
		panic(fmt.Sprintf("metrics: TQuantile needs df > 0, got %g", df))
	case p == 0.5:
		return 0
	case p < 0.5:
		return -TQuantile(1-p, df)
	}
	// Bracket the quantile, then bisect. ~60 doublings reach any finite t;
	// ~120 halvings reach full float64 precision.
	lo, hi := 0.0, 1.0
	for TCDF(hi, df) < p {
		lo = hi
		hi *= 2
		if math.IsInf(hi, 1) {
			return hi
		}
	}
	for i := 0; i < 200; i++ {
		mid := lo + (hi-lo)/2
		if mid <= lo || mid >= hi {
			break // interval exhausted at float64 resolution
		}
		if TCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2
}

// TCDF returns P(T <= t) for the Student-t distribution with df degrees of
// freedom, via the regularized incomplete beta function:
// for t > 0, P(T <= t) = 1 - I_{df/(df+t^2)}(df/2, 1/2) / 2.
func TCDF(t, df float64) float64 {
	if t == 0 {
		return 0.5
	}
	tail := 0.5 * RegIncBeta(df/2, 0.5, df/(df+t*t))
	if t > 0 {
		return 1 - tail
	}
	return tail
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b),
// evaluated with the continued fraction of Numerical Recipes §6.4 (modified
// Lentz), using the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) to stay in the
// fraction's fast-converging region.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lab, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lab - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

// betacf evaluates the incomplete beta continued fraction by the modified
// Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-16
		tiny    = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm, m2 := float64(m), float64(2*m)
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
