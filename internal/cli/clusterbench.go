package cli

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"lotuseater/internal/cluster"
	"lotuseater/internal/metrics"
	"lotuseater/internal/scenario"
	"lotuseater/internal/serve"
)

// ClusterBenchArm is one worker-count measurement in BENCH_cluster.json:
// the same fixed sweep pushed through a loopback coordinator/worker cluster
// with that many workers, each bound to one in-flight replicate.
type ClusterBenchArm struct {
	Workers       int     `json:"workers"`
	Seconds       float64 `json:"seconds"`
	Replicates    int     `json:"replicates"`
	RepsPerSecond float64 `json:"repsPerSecond"`
}

// clusterBenchFile is the schema of BENCH_cluster.json.
type clusterBenchFile struct {
	GeneratedAt string `json:"generatedAt"`
	Seed        uint64 `json:"seed"`
	Scenario    string `json:"scenario"`
	// CPUs is runtime.NumCPU, the context the Scaling row must be read
	// in: two workers on one core share it, and the ratio sits near 1.0
	// no matter how well the cluster distributes.
	CPUs    int               `json:"cpus"`
	Arms    []ClusterBenchArm `json:"arms"`
	Scaling float64           `json:"scaling"`
}

// clusterBenchSpec is the distributed-throughput workload: the gossip-trade
// grid point at CI size, 2 sweep points x 500 replicates, enough ~equal
// windows that two workers genuinely alternate.
func clusterBenchSpec() (*scenario.Spec, error) {
	spec, ok := scenario.Get("x/trade-gossip")
	if !ok {
		return nil, unknownScenario("x/trade-gossip")
	}
	if err := spec.ApplySets([]string{"nodes=48", "rounds=30", "replicates=500", "sweep.points=2"}); err != nil {
		return nil, err
	}
	return spec, nil
}

// clusterBench measures distributed sweep throughput end to end: for 1 and
// then 2 loopback workers it boots a coordinator, announces the workers,
// submits the workload over HTTP, waits for the job, and reports
// replicates/second. The headline is the 2-vs-1 scaling ratio; each worker
// is pinned to one in-flight replicate so the ratio reflects the cluster
// path, not the shared in-process pool.
func clusterBench(w io.Writer, seed uint64, out string) error {
	spec, err := clusterBenchSpec()
	if err != nil {
		return err
	}
	raw, err := spec.CanonicalJSON()
	if err != nil {
		return err
	}
	totalReps := spec.Sweep.Points * spec.Replicates

	var arms []ClusterBenchArm
	for _, workers := range []int{1, 2} {
		// A fresh cluster (and result cache) per arm, and a per-arm seed,
		// so neither arm can serve the other's artifact from cache.
		secs, err := timeClusterRun(raw, seed+uint64(workers), workers)
		if err != nil {
			return fmt.Errorf("cluster bench (%d workers): %w", workers, err)
		}
		arm := ClusterBenchArm{Workers: workers, Seconds: secs, Replicates: totalReps}
		if secs > 0 {
			arm.RepsPerSecond = float64(totalReps) / secs
		}
		arms = append(arms, arm)
	}
	scaling := 0.0
	if arms[0].RepsPerSecond > 0 {
		scaling = arms[1].RepsPerSecond / arms[0].RepsPerSecond
	}

	rows := [][]string{{"cluster workers", "seconds", "replicates", "reps/sec"}}
	for _, a := range arms {
		rows = append(rows, []string{
			fmt.Sprintf("%d", a.Workers),
			fmt.Sprintf("%.3f", a.Seconds),
			fmt.Sprintf("%d", a.Replicates),
			fmt.Sprintf("%.1f", a.RepsPerSecond),
		})
	}
	rows = append(rows, []string{"scaling 2v1", fmt.Sprintf("%.2fx", scaling), "", fmt.Sprintf("(%d cpus)", runtime.NumCPU())})
	if _, err := io.WriteString(w, metrics.RenderRows(rows)); err != nil {
		return err
	}

	data, err := json.MarshalIndent(clusterBenchFile{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Seed:        seed,
		Scenario:    spec.Name,
		CPUs:        runtime.NumCPU(),
		Arms:        arms,
		Scaling:     scaling,
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "wrote %s\n", out)
	return err
}

// timeClusterRun boots a loopback cluster with n workers, runs the spec
// through it once, and returns the submit-to-done wall time.
func timeClusterRun(rawSpec []byte, seed uint64, n int) (float64, error) {
	coord, err := cluster.NewCoordinator(cluster.Config{
		Serve:        serve.Config{Workers: 1},
		StallTimeout: 2 * time.Minute,
	})
	if err != nil {
		return 0, err
	}
	defer coord.Close()
	coordSrv, coordURL, err := listenLoopback(coord)
	if err != nil {
		return 0, err
	}
	defer coordSrv.Close()

	var workers []*cluster.Worker
	var workerSrvs []*http.Server
	defer func() {
		for i, wk := range workers {
			workerSrvs[i].Close()
			wk.Close()
		}
	}()
	for i := 0; i < n; i++ {
		wk, err := cluster.NewWorker(cluster.WorkerConfig{
			Serve:            serve.Config{Workers: 1},
			Coordinator:      coordURL,
			AnnounceInterval: 50 * time.Millisecond,
		})
		if err != nil {
			return 0, err
		}
		srv, url, err := listenLoopback(wk)
		if err != nil {
			wk.Close()
			return 0, err
		}
		workers = append(workers, wk)
		workerSrvs = append(workerSrvs, srv)
		wk.Announce(url)
	}
	if err := awaitWorkers(coordURL, n, 10*time.Second); err != nil {
		return 0, err
	}

	start := time.Now()
	body := fmt.Sprintf(`{"spec": %s, "seed": %d}`, rawSpec, seed)
	resp, err := http.Post(coordURL+"/experiments", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return 0, fmt.Errorf("POST /experiments: %d: %s", resp.StatusCode, data)
	}
	var submitted struct {
		Key string `json:"key"`
	}
	if err := json.Unmarshal(data, &submitted); err != nil {
		return 0, err
	}
	deadline := time.Now().Add(10 * time.Minute)
	for {
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("job %s never finished", submitted.Key)
		}
		st, err := getJSON(coordURL + "/jobs/" + submitted.Key)
		if err != nil {
			return 0, err
		}
		switch st["status"] {
		case "done":
			return time.Since(start).Seconds(), nil
		case "failed":
			return 0, fmt.Errorf("job failed: %v", st["error"])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// listenLoopback serves h on an ephemeral loopback port.
func listenLoopback(h http.Handler) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return srv, "http://" + ln.Addr().String(), nil
}

// awaitWorkers polls the coordinator registry until it sees n workers.
func awaitWorkers(coordURL string, n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st, err := getJSON(coordURL + "/cluster/status")
		if err != nil {
			return err
		}
		if ws, ok := st["workers"].([]any); ok && len(ws) >= n {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("coordinator never saw %d workers", n)
}

// getJSON fetches url and decodes the JSON object body.
func getJSON(url string) (map[string]any, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, data)
	}
	var out map[string]any
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("GET %s: %v\n%s", url, err, data)
	}
	return out, nil
}
