package cli

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"

	"lotuseater/internal/serve"
)

// Serve implements `lotus-sim serve`: the long-running experiment service.
// It listens on -addr and blocks until the listener fails; the process is
// the unit of deployment (put a supervisor or a container around it).
func Serve(w io.Writer, args []string) error {
	srv, addr, err := buildServer(args)
	if err != nil {
		return err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "lotus-sim serve: listening on http://%s (version %s)\n", ln.Addr(), srv.Version())
	fmt.Fprintf(w, "  POST /experiments · GET /jobs/{key} · GET /results/{key} · GET /scenarios · GET /healthz\n")
	return (&http.Server{Handler: srv}).Serve(ln)
}

// buildServer parses the serve flags and constructs the service; split from
// Serve so tests can exercise flag handling without binding a port.
func buildServer(args []string) (*serve.Server, string, error) {
	fs := flag.NewFlagSet("lotus-sim serve", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8321", "listen address")
	cacheBytes := fs.Int64("cache-bytes", 64<<20, "result cache budget in bytes (LRU eviction)")
	queueDepth := fs.Int("queue-depth", 64, "max jobs waiting behind the executor; beyond it submissions get 503")
	workers := fs.Int("workers", 0, "bound each run's in-flight replicates on the shared pool (0 = pool width; results never depend on it)")
	if err := fs.Parse(args); err != nil {
		return nil, "", err
	}
	if fs.NArg() > 0 {
		return nil, "", fmt.Errorf("serve: unexpected argument %q", fs.Arg(0))
	}
	if *cacheBytes <= 0 || *queueDepth <= 0 {
		return nil, "", fmt.Errorf("serve: -cache-bytes and -queue-depth must be positive")
	}
	return serve.New(serve.Config{
		CacheBytes: *cacheBytes,
		QueueDepth: *queueDepth,
		Workers:    *workers,
	}), *addr, nil
}
