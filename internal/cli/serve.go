package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lotuseater/internal/cluster"
	"lotuseater/internal/serve"
)

// serveNode is the role-independent lifecycle the serve command drives: a
// single-process server, a cluster coordinator, or a cluster worker.
type serveNode interface {
	http.Handler
	// Drain stops admitting, finishes the running job, and fails queued
	// jobs with a drain status — the SIGTERM path.
	Drain() error
	Close() error
}

// serveSetup is a parsed, constructed-but-not-listening serve invocation.
type serveSetup struct {
	node    serveNode
	addr    string
	role    string
	version string
	banner  []string
	// announce, for workers, registers the node with its coordinator once
	// the listener is bound and the self URL is known.
	announce func(selfURL string)
	// advertise overrides the self URL workers announce (empty = derived
	// from the bound listener address).
	advertise string
}

// Serve implements `lotus-sim serve`: the long-running experiment service,
// as a single process or as one node of a coordinator/worker cluster. It
// listens on -addr and blocks until the listener fails or a
// SIGTERM/SIGINT arrives, at which point it drains gracefully: stop
// admitting, finish the job in flight, fail queued jobs with a clear
// status.
func Serve(w io.Writer, args []string) error {
	setup, err := buildServer(args)
	if err != nil {
		return err
	}
	defer setup.node.Close()
	ln, err := net.Listen("tcp", setup.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "lotus-sim serve: %s listening on http://%s (version %s)\n", setup.role, ln.Addr(), setup.version)
	for _, line := range setup.banner {
		fmt.Fprintf(w, "  %s\n", line)
	}
	if setup.announce != nil {
		self := setup.advertise
		if self == "" {
			self = "http://" + ln.Addr().String()
		}
		fmt.Fprintf(w, "  announcing as %s\n", self)
		setup.announce(self)
	}

	hs := &http.Server{Handler: setup.node}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sigc)
	go func() {
		sig, ok := <-sigc
		if !ok {
			return
		}
		fmt.Fprintf(w, "lotus-sim serve: %v — draining (no new jobs; running job finishes; queued jobs fail)\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}()
	err = hs.Serve(ln)
	if err == http.ErrServerClosed {
		// Graceful path: the listener closed because we were signalled.
		if derr := setup.node.Drain(); derr != nil {
			return derr
		}
		fmt.Fprintf(w, "lotus-sim serve: drained\n")
		return nil
	}
	return err
}

// buildServer parses the serve flags and constructs the node for the
// requested role; split from Serve so tests can exercise flag handling
// and role wiring without binding a port.
func buildServer(args []string) (*serveSetup, error) {
	fs := flag.NewFlagSet("lotus-sim serve", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8321", "listen address")
	cacheBytes := fs.Int64("cache-bytes", 64<<20, "result cache budget in bytes (LRU eviction)")
	queueDepth := fs.Int("queue-depth", 64, "max jobs waiting behind the executor; beyond it submissions get 503")
	workers := fs.Int("workers", 0, "bound each run's in-flight replicates on the shared pool (0 = pool width; results never depend on it)")
	role := fs.String("role", "single", "node role: single | coordinator | worker")
	join := fs.String("join", "", "coordinator base URL to join (worker role only)")
	advertise := fs.String("advertise", "", "base URL the coordinator reaches this worker at (worker role; default http://<bound addr>)")
	unitReps := fs.Int("unit-reps", 0, "fixed-run replicates per dispatched unit (coordinator role; 0 = auto)")
	storeDir := fs.String("store-dir", "", "persist finished artifacts to this directory; they survive restarts and answer without recompute")
	storeMaxBytes := fs.Int64("store-max-bytes", 1<<30, "disk store byte budget; GC evicts oldest-stored entries past it")
	storeMaxAge := fs.Duration("store-max-age", 0, "expire disk store entries older than this (0 = keep until evicted by size)")
	logFormat := fs.String("log-format", "off", "request logging: off | json (one JSON line per request to stderr)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("serve: unexpected argument %q", fs.Arg(0))
	}
	if *cacheBytes <= 0 || *queueDepth <= 0 {
		return nil, fmt.Errorf("serve: -cache-bytes and -queue-depth must be positive")
	}
	if !serve.ValidLogFormat(*logFormat) {
		return nil, fmt.Errorf("serve: unknown -log-format %q (want off | json)", *logFormat)
	}
	if *storeDir == "" {
		// A store knob without a store is a silently ignored intent; reject
		// it so a typo'd deployment fails loudly.
		var orphaned []string
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "store-max-bytes" || f.Name == "store-max-age" {
				orphaned = append(orphaned, "-"+f.Name)
			}
		})
		if len(orphaned) > 0 {
			return nil, fmt.Errorf("serve: %s need -store-dir", strings.Join(orphaned, ", "))
		}
	} else if *storeMaxBytes <= 0 || *storeMaxAge < 0 {
		return nil, fmt.Errorf("serve: -store-max-bytes must be positive and -store-max-age non-negative")
	}
	scfg := serve.Config{
		CacheBytes:    *cacheBytes,
		QueueDepth:    *queueDepth,
		Workers:       *workers,
		StoreDir:      *storeDir,
		StoreMaxBytes: *storeMaxBytes,
		StoreMaxAge:   *storeMaxAge,
		LogFormat:     *logFormat,
	}
	experimentRoutes := "POST /experiments · GET /jobs/{key} · GET /results/{key} · GET /scenarios · GET /healthz · GET /metrics"
	var extraBanner []string
	if *storeDir != "" {
		extraBanner = append(extraBanner, fmt.Sprintf("artifact store at %s (budget %d bytes)", *storeDir, *storeMaxBytes))
	}
	if *logFormat == "json" {
		extraBanner = append(extraBanner, "request log: json lines on stderr")
	}
	switch *role {
	case "single":
		if *join != "" || *advertise != "" {
			return nil, fmt.Errorf("serve: -join and -advertise need -role=worker")
		}
		srv, err := serve.New(scfg)
		if err != nil {
			return nil, err
		}
		return &serveSetup{
			node:    srv,
			addr:    *addr,
			role:    "single-process server",
			version: srv.Version(),
			banner:  append([]string{experimentRoutes}, extraBanner...),
		}, nil
	case "coordinator":
		if *join != "" || *advertise != "" {
			return nil, fmt.Errorf("serve: -join and -advertise need -role=worker")
		}
		c, err := cluster.NewCoordinator(cluster.Config{Serve: scfg, UnitReps: *unitReps})
		if err != nil {
			return nil, err
		}
		return &serveSetup{
			node:    c,
			addr:    *addr,
			role:    "cluster coordinator",
			version: c.Server().Version(),
			banner: append([]string{
				experimentRoutes,
				"POST /cluster/join · GET/PUT /cluster/artifacts/{key} · GET /cluster/status",
			}, extraBanner...),
		}, nil
	case "worker":
		if *join == "" {
			return nil, fmt.Errorf("serve: -role=worker needs -join=<coordinator URL>")
		}
		wk, err := cluster.NewWorker(cluster.WorkerConfig{Serve: scfg, Coordinator: *join})
		if err != nil {
			return nil, err
		}
		return &serveSetup{
			node:      wk,
			addr:      *addr,
			role:      "cluster worker",
			version:   wk.Server().Version(),
			banner:    append([]string{experimentRoutes, "POST /cluster/run", "joined to " + *join}, extraBanner...),
			announce:  wk.Announce,
			advertise: *advertise,
		}, nil
	default:
		return nil, fmt.Errorf("serve: unknown -role %q (want single | coordinator | worker)", *role)
	}
}
