// Package cli holds the flag and output plumbing shared by every command
// binary in cmd/. Each main is a thin wrapper: cmd/lotus-sim dispatches
// subcommands (run, list, gossip, figures, scrip, swarm, token) to the
// functions here, and the single-purpose binaries (cmd/figures,
// cmd/scrip-sim, cmd/swarm-sim, cmd/token-sim) call the matching function
// directly, so flag names, experiment lookup, and artifact encoding are
// defined exactly once.
package cli

import (
	"fmt"
	"io"

	"lotuseater/internal/metrics"
)

// Format selects how an artifact is encoded for output.
type Format string

// Output formats accepted by -format.
const (
	FormatText Format = "text"
	FormatCSV  Format = "csv"
	FormatJSON Format = "json"
)

// ParseFormat maps a -format flag value to a Format.
func ParseFormat(name string) (Format, error) {
	switch Format(name) {
	case FormatText, FormatCSV, FormatJSON:
		return Format(name), nil
	default:
		return "", fmt.Errorf("unknown format %q (want text|csv|json)", name)
	}
}

// EmitArtifact writes one experiment artifact to w in the given format.
func EmitArtifact(w io.Writer, a *metrics.Artifact, format Format) error {
	switch format {
	case FormatCSV:
		_, err := io.WriteString(w, a.CSV())
		return err
	case FormatJSON:
		data, err := a.JSON()
		if err != nil {
			return err
		}
		data = append(data, '\n')
		_, err = w.Write(data)
		return err
	default:
		_, err := io.WriteString(w, a.Text())
		return err
	}
}
