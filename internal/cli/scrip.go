package cli

import (
	"flag"
	"fmt"
	"io"

	"lotuseater/internal/scrip"
)

// Scrip runs the scrip-economy simulator with an optional money-gifting
// lotus-eater attack (the scrip-sim binary and `lotus-sim scrip`).
func Scrip(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("scrip-sim", flag.ContinueOnError)
	cfg := scrip.DefaultConfig()
	fs.IntVar(&cfg.Agents, "agents", cfg.Agents, "population size")
	fs.IntVar(&cfg.Threshold, "threshold", cfg.Threshold, "rational threshold strategy k")
	fs.IntVar(&cfg.MoneyPerCapita, "money", cfg.MoneyPerCapita, "initial scrip per agent")
	fs.IntVar(&cfg.Rounds, "rounds", cfg.Rounds, "service requests to simulate")
	fs.Float64Var(&cfg.AltruistFraction, "altruists", 0, "fraction of altruist agents")
	fs.Float64Var(&cfg.AttackerFraction, "attackers", 0, "fraction of attacker-controlled earner agents")
	fs.Float64Var(&cfg.Cost, "cost", cfg.Cost, "provider's utility cost per service")
	fs.IntVar(&cfg.SpecialProviders, "special", 0, "number of specialty providers (agents 0..n-1)")
	fs.Float64Var(&cfg.SpecialRequestFraction, "specialreq", 0, "fraction of requests needing a specialty provider")

	targets := fs.Int("targets", 0, "number of agents the attacker satiates (0 = no attack)")
	budget := fs.Int("budget", 0, "exogenous attack budget in scrip")
	start := fs.Int("start", 1000, "round the attack begins")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sim, err := scrip.New(cfg, *seed)
	if err != nil {
		return err
	}
	if *targets > 0 {
		var list []int
		for i := 0; i < cfg.Agents && len(list) < *targets; i++ {
			if sim.Kind(i) != scrip.AttackerAgent {
				list = append(list, i)
			}
		}
		if err := sim.Attack(scrip.AttackPlan{Targets: list, Budget: *budget, StartRound: *start}); err != nil {
			return err
		}
	}
	res, err := sim.Run()
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "scrip economy: %d agents, threshold %d, %d scrip/capita, %d requests\n",
		cfg.Agents, cfg.Threshold, cfg.MoneyPerCapita, cfg.Rounds)
	fmt.Fprintf(w, "  availability:            %.4f (%d served, %d no provider, %d no money)\n",
		res.Availability, res.Served, res.FailedNoProvider, res.FailedNoMoney)
	fmt.Fprintf(w, "  non-target availability: %.4f\n", res.NonTargetAvailability)
	if res.SpecialRequests > 0 {
		fmt.Fprintf(w, "  specialty availability:  %.4f (%d of %d)\n",
			res.SpecialAvailability, res.SpecialServed, res.SpecialRequests)
	}
	fmt.Fprintf(w, "  served free by altruists: %d\n", res.ServedFree)
	fmt.Fprintf(w, "  mean utility:            %.3f\n", res.MeanUtility)
	if *targets > 0 {
		fmt.Fprintf(w, "attack: %d targets, budget %d, from round %d\n", *targets, *budget, *start)
		fmt.Fprintf(w, "  satiated-target fraction: %.4f\n", res.SatiatedTargetFraction)
		fmt.Fprintf(w, "  attacker spent %d, earned %d, shortfall rounds %d\n",
			res.AttackerSpent, res.AttackerEarned, res.AttackerShortfall)
	}
	fmt.Fprintf(w, "money supply: %d (opening %d + injected budget)\n",
		res.FinalMoneySupply, cfg.Agents*cfg.MoneyPerCapita)
	return nil
}
