package cli

import (
	"flag"
	"fmt"
	"io"

	"lotuseater/internal/attack"
	"lotuseater/internal/graph"
	"lotuseater/internal/simrng"
	"lotuseater/internal/tokenmodel"
)

// Token explores the abstract token-collecting model of Section 3 of the
// paper (the token-sim binary and `lotus-sim token`).
func Token(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("token-sim", flag.ContinueOnError)
	graphKind := fs.String("graph", "complete", "topology: complete|grid|ring|random|smallworld")
	n := fs.Int("n", 100, "nodes (complete/ring/random/smallworld)")
	rows := fs.Int("rows", 16, "grid rows")
	cols := fs.Int("cols", 16, "grid cols")
	p := fs.Float64("p", 0.05, "edge probability for random graphs")
	tokens := fs.Int("tokens", 20, "token universe size |T|")
	contacts := fs.Int("contacts", 2, "contact budget c per round")
	altruism := fs.Float64("altruism", 0, "probability a satiated node responds (a)")
	rounds := fs.Int("rounds", 100, "horizon")
	satiate := fs.Int("satiate", 0, "random nodes the attacker satiates each round")
	cut := fs.Int("cut", -1, "satiate this grid column instead (grid only)")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rng := simrng.New(*seed)
	var g *graph.Graph
	switch *graphKind {
	case "complete":
		g = graph.Complete(*n)
	case "grid":
		g = graph.Grid(*rows, *cols)
	case "ring":
		g = graph.Ring(*n)
	case "random":
		g = graph.Random(*n, *p, rng.Child("graph"))
	case "smallworld":
		g = graph.SmallWorld(*n, 2, 0.1, rng.Child("graph"))
	default:
		return fmt.Errorf("unknown graph %q", *graphKind)
	}

	cfg := tokenmodel.Config{
		Graph:    g,
		Tokens:   *tokens,
		Contacts: *contacts,
		Altruism: *altruism,
		Rounds:   *rounds,
	}

	var opts []tokenmodel.Option
	switch {
	case *cut >= 0:
		if *graphKind != "grid" {
			return fmt.Errorf("-cut requires -graph grid")
		}
		targets := graph.GridColumnCut(*rows, *cols, *cut)
		opts = append(opts, tokenmodel.WithTargeter(attack.NewListTargeter(g.N(), targets)))
		fmt.Fprintf(w, "attack: satiating grid column %d (%d nodes)\n", *cut, len(targets))
	case *satiate > 0:
		targets := rng.Child("targets").SampleInts(g.N(), min(*satiate, g.N()))
		opts = append(opts, tokenmodel.WithTargeter(attack.NewListTargeter(g.N(), targets)))
		fmt.Fprintf(w, "attack: satiating %d random nodes\n", len(targets))
	}

	sim, err := tokenmodel.New(cfg, rng.Child("run").Uint64(), opts...)
	if err != nil {
		return err
	}
	res, err := sim.Run()
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "token model: %s graph, %d nodes, %d tokens, c=%d, a=%.2f\n",
		*graphKind, g.N(), *tokens, *contacts, *altruism)
	fmt.Fprintf(w, "  completed fraction:    %.4f\n", res.CompletedFraction)
	fmt.Fprintf(w, "  all satiated at round: %d\n", res.AllSatiatedRound)
	fmt.Fprintf(w, "  mean completion round: %.1f\n", res.MeanCompletionRound)
	minCov, minTok := 2.0, -1
	for tok, cov := range res.TokenCoverage {
		if cov < minCov {
			minCov, minTok = cov, tok
		}
	}
	fmt.Fprintf(w, "  worst token coverage:  token %d at %.4f\n", minTok, minCov)
	return nil
}
