package cli

import (
	"testing"
)

// TestServeFlagValidation: bad serve flags fail before a port is bound.
func TestServeFlagValidation(t *testing.T) {
	dir := t.TempDir()
	for name, args := range map[string][]string{
		"unknown flag":           {"-bogus"},
		"stray arg":              {"extra"},
		"zero cache":             {"-cache-bytes", "0"},
		"negative queue":         {"-queue-depth", "-1"},
		"unknown role":           {"-role", "manager"},
		"worker without join":    {"-role", "worker"},
		"join without worker":    {"-join", "http://localhost:1"},
		"advertise without role": {"-advertise", "http://localhost:1"},
		"coordinator with join":  {"-role", "coordinator", "-join", "http://localhost:1"},
		"bad log format":         {"-log-format", "xml"},
		"store bytes orphaned":   {"-store-max-bytes", "1024"},
		"store age orphaned":     {"-store-max-age", "1h"},
		"zero store budget":      {"-store-dir", dir, "-store-max-bytes", "0"},
		"negative store age":     {"-store-dir", dir, "-store-max-age", "-1h"},
		"unparseable store age":  {"-store-dir", dir, "-store-max-age", "soon"},
	} {
		if _, err := buildServer(args); err == nil {
			t.Errorf("%s: buildServer(%v) accepted bad flags", name, args)
		}
	}
}

// TestServeBuilds: good flags produce a configured node for each role
// without listening.
func TestServeBuilds(t *testing.T) {
	cases := map[string][]string{
		"single":      {"-addr", "localhost:0", "-cache-bytes", "1024", "-queue-depth", "2"},
		"coordinator": {"-addr", "localhost:0", "-role", "coordinator", "-unit-reps", "4"},
		"worker":      {"-addr", "localhost:0", "-role", "worker", "-join", "http://localhost:1"},
		"with store": {"-addr", "localhost:0", "-store-dir", t.TempDir(),
			"-store-max-bytes", "4096", "-store-max-age", "1h", "-log-format", "json"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			setup, err := buildServer(args)
			if err != nil {
				t.Fatal(err)
			}
			defer setup.node.Close()
			if setup.addr != "localhost:0" {
				t.Fatalf("addr = %q", setup.addr)
			}
			if setup.version == "" {
				t.Fatal("node has no code version")
			}
			if name == "worker" && setup.announce == nil {
				t.Fatal("worker setup has no announce hook")
			}
			if name != "worker" && setup.announce != nil {
				t.Fatalf("%s setup has an announce hook", name)
			}
		})
	}
}
