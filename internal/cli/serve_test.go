package cli

import (
	"testing"
)

// TestServeFlagValidation: bad serve flags fail before a port is bound.
func TestServeFlagValidation(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown flag":   {"-bogus"},
		"stray arg":      {"extra"},
		"zero cache":     {"-cache-bytes", "0"},
		"negative queue": {"-queue-depth", "-1"},
	} {
		if _, _, err := buildServer(args); err == nil {
			t.Errorf("%s: buildServer(%v) accepted bad flags", name, args)
		}
	}
}

// TestServeBuilds: good flags produce a configured server without
// listening.
func TestServeBuilds(t *testing.T) {
	srv, addr, err := buildServer([]string{"-addr", "localhost:0", "-cache-bytes", "1024", "-queue-depth", "2"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if addr != "localhost:0" {
		t.Fatalf("addr = %q", addr)
	}
	if srv.Version() == "" {
		t.Fatal("server has no code version")
	}
}
