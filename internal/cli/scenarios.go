package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"lotuseater/internal/metrics"
	"lotuseater/internal/scenario"
)

// setFlags collects repeated -set key=value overrides.
type setFlags []string

func (s *setFlags) String() string { return strings.Join(*s, ",") }

func (s *setFlags) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// Scenarios implements `lotus-sim scenarios <list|show|run|bench>`: the
// declarative scenario catalogue.
func Scenarios(w io.Writer, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: lotus-sim scenarios <list|show|run|bench>")
	}
	switch args[0] {
	case "list":
		return ScenariosList(w)
	case "show":
		return ScenariosShow(w, args[1:])
	case "run":
		return ScenariosRun(w, args[1:])
	case "bench":
		return Bench(w, args[1:])
	default:
		return fmt.Errorf("scenarios: unknown subcommand %q (want list|show|run|bench)", args[0])
	}
}

// ScenariosList prints the scenario catalogue as an aligned table.
func ScenariosList(w io.Writer) error {
	rows := [][]string{{"scenario", "substrate", "adversary", "defense", "sweep", "description"}}
	for _, s := range scenario.All() {
		kind := s.Adversary.Kind
		if kind == "" {
			kind = "none"
		}
		def := s.Defense.Kind
		if def == "" {
			def = "none"
		}
		rows = append(rows, []string{s.Name, s.Substrate, kind, def, s.Sweep.Axis, s.Description})
	}
	_, err := io.WriteString(w, metrics.RenderRows(rows))
	return err
}

// ScenariosShow prints one spec as JSON — the exact format `run -spec`
// accepts and -set overrides address.
func ScenariosShow(w io.Writer, args []string) error {
	if len(args) == 0 || args[0] == "" || args[0][0] == '-' {
		return fmt.Errorf("usage: lotus-sim scenarios show <name>")
	}
	spec, ok := scenario.Get(args[0])
	if !ok {
		return unknownScenario(args[0])
	}
	data, err := spec.JSON()
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "// metrics: %s\n", strings.Join(spec.Metrics(), ", "))
	return err
}

// ScenariosRun implements `lotus-sim scenarios run <name>` and
// `... run -spec file.json`, with repeated -set key=value overrides.
func ScenariosRun(w io.Writer, args []string) error {
	name := ""
	if len(args) > 0 && args[0] != "" && args[0][0] != '-' {
		name, args = args[0], args[1:]
	}
	fs := flag.NewFlagSet("lotus-sim scenarios run", flag.ContinueOnError)
	var sets setFlags
	fs.Var(&sets, "set", "override a spec field, key=value (repeatable)")
	specPath := fs.String("spec", "", "load the scenario from a JSON spec file instead of the registry")
	tracePath := fs.String("trace", "", "replay a churn trace file (examples/traces/ format) as the spec's population churn")
	seed := fs.Uint64("seed", 1, "random seed")
	format := fs.String("format", "text", "output format: text|csv|json")
	replicates := fs.Int("replicates", 0, "override replicates per sweep point (0 = spec value; dead under -target-ci or an active precision plan)")
	points := fs.Int("points", 0, "override sweep points (0 = spec value)")
	workers := fs.Int("workers", 0, "bound in-flight replicates on the shared pool (0 = pool width; results never depend on it)")
	targetCI := fs.Float64("target-ci", 0, "adaptive replication: stop each sweep point once the metric mean's 95% CI half-width is at most this (sugar for -set precision.halfWidth=...; 0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := ParseFormat(*format)
	if err != nil {
		return err
	}
	spec, err := resolveSpec(name, *specPath)
	if err != nil {
		return err
	}
	if *tracePath != "" {
		tr, err := scenario.LoadTrace(*tracePath)
		if err != nil {
			return err
		}
		if err := tr.ApplyTo(spec); err != nil {
			return err
		}
	}
	if *targetCI != 0 {
		sets = append(sets, fmt.Sprintf("precision.halfWidth=%g", *targetCI))
	}
	if err := spec.ApplySets(sets); err != nil {
		return err
	}
	a, err := scenario.Run(spec, *seed, scenario.RunOptions{
		Workers:    *workers,
		Replicates: *replicates,
		Points:     *points,
	})
	if err != nil {
		return err
	}
	return EmitArtifact(w, a, f)
}

// resolveSpec loads a scenario by registry name or from a JSON file;
// exactly one source must be given.
func resolveSpec(name, specPath string) (*scenario.Spec, error) {
	switch {
	case name != "" && specPath != "":
		return nil, fmt.Errorf("give a scenario name or -spec, not both")
	case specPath != "":
		data, err := os.ReadFile(specPath)
		if err != nil {
			return nil, err
		}
		return scenario.Decode(data)
	case name != "":
		spec, ok := scenario.Get(name)
		if !ok {
			return nil, unknownScenario(name)
		}
		return spec, nil
	default:
		return nil, fmt.Errorf("usage: lotus-sim scenarios run <name> [-set key=val ...] | -spec file.json")
	}
}

func unknownScenario(name string) error {
	return fmt.Errorf("unknown scenario %q; `lotus-sim scenarios list` shows the %d registered scenarios", name, len(scenario.Names()))
}
