package cli

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lotuseater/internal/metrics"
	"lotuseater/internal/scenario"
)

// TestParseFormat: the three formats parse, anything else errors.
func TestParseFormat(t *testing.T) {
	for _, ok := range []string{"text", "csv", "json"} {
		if _, err := ParseFormat(ok); err != nil {
			t.Fatalf("ParseFormat(%q): %v", ok, err)
		}
	}
	if _, err := ParseFormat("yaml"); err == nil || !strings.Contains(err.Error(), "yaml") {
		t.Fatalf("bad format error: %v", err)
	}
}

// TestRunExperimentUsage: no name and no -spec is a usage error that points
// at both catalogues.
func TestRunExperimentUsage(t *testing.T) {
	var b strings.Builder
	err := RunExperiment(&b, nil)
	if err == nil || !strings.Contains(err.Error(), "scenarios list") {
		t.Fatalf("usage error should mention the scenario catalogue: %v", err)
	}
}

// TestRunExperimentUnknown: an unknown name names both registries in the
// error.
func TestRunExperimentUnknown(t *testing.T) {
	var b strings.Builder
	err := RunExperiment(&b, []string{"no-such-thing"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment or scenario") {
		t.Fatalf("unknown-name error: %v", err)
	}
}

// TestRunExperimentLegacy: a registry experiment still runs through the
// legacy driver path.
func TestRunExperimentLegacy(t *testing.T) {
	var b strings.Builder
	if err := RunExperiment(&b, []string{"table1", "-quality", "quick"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Number of Nodes") {
		t.Fatalf("table1 output missing parameters:\n%s", b.String())
	}
}

// TestRunExperimentSetOnLegacy: -set on a fixed driver is rejected with an
// explanation, not silently ignored.
func TestRunExperimentSetOnLegacy(t *testing.T) {
	var b strings.Builder
	err := RunExperiment(&b, []string{"table1", "-set", "nodes=10"})
	if err == nil || !strings.Contains(err.Error(), "fixed driver") {
		t.Fatalf("want fixed-driver error, got: %v", err)
	}
}

// TestRunScenarioWithOverrides: `run <scenario> -set ...` flows through the
// scenario engine and honors the overrides.
func TestRunScenarioWithOverrides(t *testing.T) {
	var b strings.Builder
	err := RunExperiment(&b, []string{"x/trade-token", "-format", "json",
		"-set", "sweep.points=2", "-set", "replicates=1", "-set", "rounds=10"})
	if err != nil {
		t.Fatal(err)
	}
	a, err := metrics.DecodeArtifact([]byte(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Series) == 0 || a.Series[0].Len() != 2 {
		t.Fatalf("override sweep.points=2 not honored: %d points", a.Series[0].Len())
	}
}

// TestRunScenarioBadOverride: malformed and unknown -set keys error.
func TestRunScenarioBadOverride(t *testing.T) {
	var b strings.Builder
	if err := RunExperiment(&b, []string{"x/trade-token", "-set", "nonsense"}); err == nil ||
		!strings.Contains(err.Error(), "key=value") {
		t.Fatalf("malformed override error: %v", err)
	}
	if err := RunExperiment(&b, []string{"x/trade-token", "-set", "warp.speed=9"}); err == nil ||
		!strings.Contains(err.Error(), "unknown override key") {
		t.Fatalf("unknown key error: %v", err)
	}
}

// TestScenariosDispatch: the scenarios subcommand routes and rejects
// unknowns.
func TestScenariosDispatch(t *testing.T) {
	var b strings.Builder
	if err := Scenarios(&b, nil); err == nil {
		t.Fatal("missing subcommand accepted")
	}
	if err := Scenarios(&b, []string{"explode"}); err == nil ||
		!strings.Contains(err.Error(), "explode") {
		t.Fatalf("unknown subcommand error: %v", err)
	}
}

// TestScenariosList: every registered scenario shows up.
func TestScenariosList(t *testing.T) {
	var b strings.Builder
	if err := ScenariosList(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{"x/trade-gossip", "x/ideal-swarm+ratelimit", "gossip-ratelimit"} {
		if !strings.Contains(out, name) {
			t.Fatalf("scenarios list missing %q", name)
		}
	}
}

// TestScenariosShow: show prints the JSON spec and the metric menu;
// unknown names error with a pointer to list.
func TestScenariosShow(t *testing.T) {
	var b strings.Builder
	if err := ScenariosShow(&b, []string{"x/trade-gossip"}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"substrate": "gossip"`) || !strings.Contains(out, "// metrics:") {
		t.Fatalf("show output incomplete:\n%s", out)
	}
	if err := ScenariosShow(&b, []string{"missing"}); err == nil ||
		!strings.Contains(err.Error(), "scenarios list") {
		t.Fatalf("unknown scenario error: %v", err)
	}
	if err := ScenariosShow(&b, nil); err == nil {
		t.Fatal("show without a name accepted")
	}
}

// TestScenariosRunSpecFile: a spec loaded from disk runs, and name+spec
// together are rejected.
func TestScenariosRunSpecFile(t *testing.T) {
	spec, _ := scenario.Get("x/trade-token")
	spec.Name = "from-file"
	spec.Replicates = 1
	spec.Sweep.Points = 2
	spec.Rounds = 10
	data, err := spec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := ScenariosRun(&b, []string{"-spec", path, "-format", "json"}); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("run -spec output is not JSON: %v", err)
	}
	if decoded["name"] != "from-file" {
		t.Fatalf("artifact name %v, want from-file", decoded["name"])
	}
	if err := ScenariosRun(&b, []string{"x/trade-token", "-spec", path}); err == nil ||
		!strings.Contains(err.Error(), "not both") {
		t.Fatalf("name+spec error: %v", err)
	}
	if err := ScenariosRun(&b, nil); err == nil {
		t.Fatal("run without name or spec accepted")
	}
}

// TestScenariosRunUnknown: running an unregistered scenario errors with the
// catalogue pointer.
func TestScenariosRunUnknown(t *testing.T) {
	var b strings.Builder
	err := ScenariosRun(&b, []string{"no-such-scenario"})
	if err == nil || !strings.Contains(err.Error(), "scenarios list") {
		t.Fatalf("unknown scenario error: %v", err)
	}
}

// TestBenchWritesJSON: bench emits the machine-readable perf artifact with
// the 1k-replicate streaming entry included.
func TestBenchWritesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("bench run")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_scenarios.json")
	adaptivePath := filepath.Join(dir, "BENCH_adaptive.json")
	kernelPath := filepath.Join(dir, "BENCH_kernel.json")
	var b strings.Builder
	// A small population ladder keeps the kernel bench test-sized; the real
	// 10k/100k/1m ladder is the flag default, exercised by `make bench`.
	if err := Bench(&b, []string{"-out", path, "-adaptive-out", adaptivePath, "-kernel-out", kernelPath, "-kernel-sizes", "500,2000", "-kernel-rounds", "2"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Benchmarks []BenchResult `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("bench JSON: %v", err)
	}
	names := map[string]BenchResult{}
	for _, r := range parsed.Benchmarks {
		names[r.Name] = r
	}
	stream, ok := names["bench/streaming-1k"]
	if !ok {
		t.Fatalf("streaming benchmark missing from %v", names)
	}
	if stream.Replicates != 1000 || stream.Runs != 1000 {
		t.Fatalf("streaming benchmark shape wrong: %+v", stream)
	}
	for _, want := range []string{"x/trade-gossip", "x/trade-token", "x/ideal-swarm"} {
		if _, ok := names[want]; !ok {
			t.Fatalf("bench set missing %s", want)
		}
	}

	// The adaptive artifact compares the three *-auto scenarios against
	// their fixed-budget degenerations, with coherent replicate counting.
	adata, err := os.ReadFile(adaptivePath)
	if err != nil {
		t.Fatal(err)
	}
	var adaptive struct {
		Benchmarks []AdaptiveBenchResult `json:"benchmarks"`
	}
	if err := json.Unmarshal(adata, &adaptive); err != nil {
		t.Fatalf("adaptive bench JSON: %v", err)
	}
	if len(adaptive.Benchmarks) != len(adaptiveBenchSet) {
		t.Fatalf("adaptive bench ran %d scenarios, want %d", len(adaptive.Benchmarks), len(adaptiveBenchSet))
	}
	for _, r := range adaptive.Benchmarks {
		if r.FixedReplicates != r.Points*r.MaxReps {
			t.Fatalf("%s: fixed arm ran %d replicates, want %d x %d", r.Name, r.FixedReplicates, r.Points, r.MaxReps)
		}
		if r.AdaptiveReplicates < 2*r.Points || r.AdaptiveReplicates > r.FixedReplicates {
			t.Fatalf("%s: adaptive replicates %d outside [2 x points, fixed]", r.Name, r.AdaptiveReplicates)
		}
		if (r.PointsStoppedEarly > 0) != (r.AdaptiveReplicates < r.FixedReplicates) {
			t.Fatalf("%s: early-stop count %d inconsistent with replicates %d/%d",
				r.Name, r.PointsStoppedEarly, r.AdaptiveReplicates, r.FixedReplicates)
		}
	}

	// The kernel artifact carries one entry per (substrate, population)
	// with per-round timing and allocation numbers.
	kdata, err := os.ReadFile(kernelPath)
	if err != nil {
		t.Fatal(err)
	}
	var kernel struct {
		Entries []KernelBenchResult `json:"entries"`
	}
	if err := json.Unmarshal(kdata, &kernel); err != nil {
		t.Fatalf("kernel bench JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, e := range kernel.Entries {
		seen[fmt.Sprintf("%s/%d", e.Substrate, e.Nodes)] = true
		if e.NsPerRound <= 0 || e.Rounds != 2 {
			t.Fatalf("kernel entry malformed: %+v", e)
		}
	}
	for _, want := range []string{"gossip/500", "gossip/2000", "swarm/500", "swarm/2000"} {
		if !seen[want] {
			t.Fatalf("kernel bench missing %s entry (have %v)", want, seen)
		}
	}
}
