package cli

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Golden end-to-end CLI tests: the exact bytes of `scenarios list`,
// `scenarios show`, and a small pinned `scenarios run` are checked in under
// testdata/golden. After an intentional output change, regenerate with
//
//	go test ./internal/cli -run Golden -update
//
// and review the diff like any other code change. The run outputs double as
// cross-PR determinism pins: same seed, same bytes, on any worker count.
var update = flag.Bool("update", false, "rewrite golden files under testdata/golden")

// checkGolden compares got against the named golden file, rewriting it
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/cli -run Golden -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from its golden file.\n--- got ---\n%s\n--- want ---\n%s\n(regenerate with -update if the change is intentional)", name, got, want)
	}
}

// TestGoldenScenariosList: the whole catalogue table, byte for byte — a new
// or renamed scenario shows up here as a reviewable diff.
func TestGoldenScenariosList(t *testing.T) {
	var b strings.Builder
	if err := ScenariosList(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "scenarios-list.txt", []byte(b.String()))
}

// TestGoldenScenariosShow: one canned classic's spec JSON plus its metric
// menu.
func TestGoldenScenariosShow(t *testing.T) {
	var b strings.Builder
	if err := ScenariosShow(&b, []string{"gossip-trade"}); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "scenarios-show-gossip-trade.txt", []byte(b.String()))
}

// TestGoldenScenariosShowChurn pins the canonical JSON of a spec carrying a
// population block — churn rates survive the round-trip in canonical form.
func TestGoldenScenariosShowChurn(t *testing.T) {
	var b strings.Builder
	if err := ScenariosShow(&b, []string{"gossip-trade-churn"}); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "scenarios-show-gossip-trade-churn.txt", []byte(b.String()))
}

// TestGoldenScenariosRun: a small spec-file run pinned in both text and
// JSON, exercising the same path `scenarios run -spec file.json` takes.
func TestGoldenScenariosRun(t *testing.T) {
	for _, format := range []string{"text", "json"} {
		var b strings.Builder
		err := ScenariosRun(&b, []string{
			"-spec", filepath.Join("testdata", "golden-tiny.json"),
			"-seed", "7", "-format", format,
		})
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "scenarios-run-golden-tiny."+format, []byte(b.String()))
	}
}

// TestGoldenScenariosRunTrace: the same tiny spec replaying a churn trace
// file — pins the trace-replay path bit-for-bit, on any worker count.
func TestGoldenScenariosRunTrace(t *testing.T) {
	var b strings.Builder
	err := ScenariosRun(&b, []string{
		"-spec", filepath.Join("testdata", "golden-tiny.json"),
		"-trace", filepath.Join("testdata", "golden-tiny-trace.json"),
		"-seed", "7", "-format", "json",
	})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "scenarios-run-golden-tiny-trace.json", []byte(b.String()))
}
