package cli

import (
	"flag"
	"fmt"
	"io"

	"lotuseater/internal/swarm"
)

// Swarm runs the BitTorrent-like swarm simulator with optional lotus-eater
// attacks (the swarm-sim binary and `lotus-sim swarm`).
func Swarm(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("swarm-sim", flag.ContinueOnError)
	cfg := swarm.DefaultConfig()
	fs.IntVar(&cfg.Leechers, "leechers", cfg.Leechers, "number of leechers")
	fs.IntVar(&cfg.Pieces, "pieces", cfg.Pieces, "file size in pieces")
	fs.IntVar(&cfg.UploadSlots, "slots", cfg.UploadSlots, "unchoke slots per node")
	fs.IntVar(&cfg.PeerSetSize, "peers", cfg.PeerSetSize, "peer-set size")
	fs.IntVar(&cfg.Ticks, "ticks", cfg.Ticks, "horizon in ticks")
	selection := fs.String("selection", "rarest", "piece selection: rarest|random")
	endgame := fs.Bool("endgame", cfg.Endgame, "enable endgame mode")
	fs.IntVar(&cfg.SeedDepartTick, "seeddepart", cfg.SeedDepartTick, "tick the initial seed leaves (0 = never)")
	stay := fs.Bool("stay", cfg.SeedAfterComplete, "finished leechers keep seeding")

	attackName := fs.String("attack", "off", "attack: off|top|rare")
	fs.IntVar(&cfg.AttackerUplink, "uplink", 0, "attacker upload capacity (pieces/tick)")
	fs.IntVar(&cfg.AttackTargets, "targets", 0, "concurrent satiation targets")
	fs.IntVar(&cfg.AttackStartTick, "astart", 0, "attack start tick")
	fs.IntVar(&cfg.AttackStopTick, "astop", 0, "attack stop tick (0 = never)")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *selection {
	case "rarest":
		cfg.Selection = swarm.SelectRarestFirst
	case "random":
		cfg.Selection = swarm.SelectRandom
	default:
		return fmt.Errorf("unknown selection %q (want rarest|random)", *selection)
	}
	switch *attackName {
	case "off":
		cfg.Attack = swarm.AttackOff
	case "top":
		cfg.Attack = swarm.AttackTopUploaders
	case "rare":
		cfg.Attack = swarm.AttackRarePieceHolders
	default:
		return fmt.Errorf("unknown attack %q (want off|top|rare)", *attackName)
	}
	cfg.Endgame = *endgame
	cfg.SeedAfterComplete = *stay

	sim, err := swarm.New(cfg, *seed)
	if err != nil {
		return err
	}
	res, err := sim.Run()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "swarm: %d leechers, %d pieces, %s selection, attack=%s\n",
		cfg.Leechers, cfg.Pieces, cfg.Selection, cfg.Attack)
	fmt.Fprintf(w, "  completed fraction:  %.3f\n", res.CompletedFraction)
	fmt.Fprintf(w, "  mean completion:     %.1f ticks\n", res.MeanCompletionTick)
	fmt.Fprintf(w, "  median completion:   %.1f ticks\n", res.MedianCompletionTick)
	fmt.Fprintf(w, "  lost pieces:         %d\n", res.LostPieces)
	if cfg.Attack != swarm.AttackOff {
		fmt.Fprintf(w, "  attacker uploaded:   %d pieces\n", res.AttackerUploaded)
		fmt.Fprintf(w, "  satiated by attacker: %d leechers\n", res.SatiatedByAttacker)
	}
	return nil
}
