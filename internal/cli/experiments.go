package cli

import (
	"flag"
	"fmt"
	"io"

	"lotuseater/internal/experiment"
	"lotuseater/internal/metrics"
)

// RunExperiment implements `lotus-sim run <experiment> [flags]`: it looks
// the experiment up in the registry, runs it, and encodes the artifact.
func RunExperiment(w io.Writer, args []string) error {
	if len(args) == 0 || args[0] == "" || args[0][0] == '-' {
		return fmt.Errorf("usage: lotus-sim run <experiment> [-quality quick|full] [-seed N] [-format text|csv|json]; `lotus-sim list` shows experiments")
	}
	name, rest := args[0], args[1:]

	fs := flag.NewFlagSet("lotus-sim run", flag.ContinueOnError)
	quality := fs.String("quality", "full", "sweep quality: full|quick")
	seed := fs.Uint64("seed", 1, "random seed")
	format := fs.String("format", "text", "output format: text|csv|json")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	q, err := experiment.ParseQuality(*quality)
	if err != nil {
		return err
	}
	f, err := ParseFormat(*format)
	if err != nil {
		return err
	}
	a, err := experiment.Run(name, *seed, q)
	if err != nil {
		return err
	}
	return EmitArtifact(w, a, f)
}

// List implements `lotus-sim list`: the experiment catalogue as an aligned
// table of name and description.
func List(w io.Writer) error {
	rows := [][]string{{"experiment", "description"}}
	for _, e := range experiment.All() {
		rows = append(rows, []string{e.Name, e.Description})
	}
	_, err := io.WriteString(w, metrics.RenderRows(rows))
	return err
}

// figuresOrder is the curated presentation order of the figures command —
// the paper's tables and figures first, then extensions — with the legacy
// experiment ids it has always accepted.
var figuresOrder = []string{
	"table1", "fig1", "fig2", "fig3", "altruism", "gridcut", "raretoken",
	"scrip", "swarm", "coding", "reporting", "ratelimit", "rotating",
	"inflation", "hoarding", "satiate-ablation",
}

// figuresAliases maps the figures command's legacy ids to registry names.
// Most ids are registry names already; "scrip" expands to both scrip
// experiments, matching the command's historical output.
var figuresAliases = map[string][]string{
	"fig1":  {"figure1"},
	"fig2":  {"figure2"},
	"fig3":  {"figure3"},
	"scrip": {"scrip-money-supply", "scrip-rare-provider"},
}

// Figures implements the figures command: regenerate every table and figure
// of the paper (or one of them, via -exp) as aligned text tables or CSV.
func Figures(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id (table1|fig1|fig2|fig3|altruism|gridcut|raretoken|scrip|swarm|coding|reporting|ratelimit|rotating|inflation|hoarding|satiate-ablation|all)")
	quality := fs.String("quality", "full", "sweep quality: full|quick")
	seed := fs.Uint64("seed", 1, "random seed")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	if err := fs.Parse(args); err != nil {
		return err
	}

	q, err := experiment.ParseQuality(*quality)
	if err != nil {
		return err
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = figuresOrder
	}
	for _, id := range ids {
		names, ok := figuresAliases[id]
		if !ok {
			names = []string{id}
		}
		for _, name := range names {
			a, err := experiment.Run(name, *seed, q)
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			if err := emitFigure(w, a, *csv); err != nil {
				return err
			}
		}
	}
	return nil
}

// emitFigure prints one artifact in the figures command's traditional
// layout: a "## title" header, the table or CSV body, crossover notes, and
// a trailing blank line.
func emitFigure(w io.Writer, a *metrics.Artifact, csv bool) error {
	if csv && len(a.Table) == 0 {
		if _, err := fmt.Fprintf(w, "## %s\n\n%s", a.Title, a.CSV()); err != nil {
			return err
		}
		for _, n := range a.Notes {
			if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
				return err
			}
		}
	} else {
		if _, err := io.WriteString(w, a.Text()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
