package cli

import (
	"flag"
	"fmt"
	"io"

	"lotuseater/internal/experiment"
	"lotuseater/internal/metrics"
	"lotuseater/internal/scenario"
)

// RunExperiment implements `lotus-sim run <name> [flags]`. The name may be
// a registry experiment (legacy drivers) or a registered scenario; -spec
// runs a JSON spec file instead, and repeated -set key=value overrides
// re-parameterize scenario runs (legacy experiments are fixed code and
// reject overrides).
func RunExperiment(w io.Writer, args []string) error {
	name := ""
	if len(args) > 0 && args[0] != "" && args[0][0] != '-' {
		name, args = args[0], args[1:]
	}

	fs := flag.NewFlagSet("lotus-sim run", flag.ContinueOnError)
	var sets setFlags
	fs.Var(&sets, "set", "override a scenario spec field, key=value (repeatable)")
	specPath := fs.String("spec", "", "run a scenario from a JSON spec file")
	quality := fs.String("quality", "full", "sweep quality for experiments: full|quick")
	seed := fs.Uint64("seed", 1, "random seed")
	format := fs.String("format", "text", "output format: text|csv|json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if name == "" && *specPath == "" {
		return fmt.Errorf("usage: lotus-sim run <name> [-quality quick|full] [-seed N] [-format text|csv|json] [-set key=val ...] | lotus-sim run -spec file.json; `lotus-sim list` and `lotus-sim scenarios list` show the catalogues")
	}
	f, err := ParseFormat(*format)
	if err != nil {
		return err
	}

	// Legacy experiments take precedence for plain runs; anything involving
	// -spec or -set is necessarily a scenario.
	if *specPath == "" && len(sets) == 0 {
		if _, ok := experiment.Get(name); ok {
			q, err := experiment.ParseQuality(*quality)
			if err != nil {
				return err
			}
			a, err := experiment.Run(name, *seed, q)
			if err != nil {
				return err
			}
			return EmitArtifact(w, a, f)
		}
	}
	// Distinguish "the name is not a scenario" (point at both catalogues,
	// or explain that fixed drivers reject -set) from real resolveSpec
	// failures (name+spec conflict, unreadable file), which propagate
	// unchanged.
	if name != "" && *specPath == "" {
		if _, ok := scenario.Get(name); !ok {
			if _, isExp := experiment.Get(name); isExp {
				return fmt.Errorf("experiment %q is a fixed driver; -set overrides only apply to scenarios (`lotus-sim scenarios list`)", name)
			}
			return fmt.Errorf("unknown experiment or scenario %q; see `lotus-sim list` and `lotus-sim scenarios list`", name)
		}
	}
	spec, err := resolveSpec(name, *specPath)
	if err != nil {
		return err
	}
	if err := spec.ApplySets(sets); err != nil {
		return err
	}
	a, err := scenario.Run(spec, *seed, scenario.RunOptions{})
	if err != nil {
		return err
	}
	return EmitArtifact(w, a, f)
}

// List implements `lotus-sim list`: the experiment catalogue as an aligned
// table of name and description.
func List(w io.Writer) error {
	rows := [][]string{{"experiment", "description"}}
	for _, e := range experiment.All() {
		rows = append(rows, []string{e.Name, e.Description})
	}
	_, err := io.WriteString(w, metrics.RenderRows(rows))
	return err
}

// figuresOrder is the curated presentation order of the figures command —
// the paper's tables and figures first, then extensions — with the legacy
// experiment ids it has always accepted.
var figuresOrder = []string{
	"table1", "fig1", "fig2", "fig3", "altruism", "gridcut", "raretoken",
	"scrip", "swarm", "coding", "reporting", "ratelimit", "rotating",
	"inflation", "hoarding", "satiate-ablation",
}

// figuresAliases maps the figures command's legacy ids to registry names.
// Most ids are registry names already; "scrip" expands to both scrip
// experiments, matching the command's historical output.
var figuresAliases = map[string][]string{
	"fig1":  {"figure1"},
	"fig2":  {"figure2"},
	"fig3":  {"figure3"},
	"scrip": {"scrip-money-supply", "scrip-rare-provider"},
}

// Figures implements the figures command: regenerate every table and figure
// of the paper (or one of them, via -exp) as aligned text tables or CSV.
func Figures(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id (table1|fig1|fig2|fig3|altruism|gridcut|raretoken|scrip|swarm|coding|reporting|ratelimit|rotating|inflation|hoarding|satiate-ablation|all)")
	quality := fs.String("quality", "full", "sweep quality: full|quick")
	seed := fs.Uint64("seed", 1, "random seed")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	if err := fs.Parse(args); err != nil {
		return err
	}

	q, err := experiment.ParseQuality(*quality)
	if err != nil {
		return err
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = figuresOrder
	}
	for _, id := range ids {
		names, ok := figuresAliases[id]
		if !ok {
			names = []string{id}
		}
		for _, name := range names {
			a, err := experiment.Run(name, *seed, q)
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			if err := emitFigure(w, a, *csv); err != nil {
				return err
			}
		}
	}
	return nil
}

// emitFigure prints one artifact in the figures command's traditional
// layout: a "## title" header, the table or CSV body, crossover notes, and
// a trailing blank line.
func emitFigure(w io.Writer, a *metrics.Artifact, csv bool) error {
	if csv && len(a.Table) == 0 {
		if _, err := fmt.Fprintf(w, "## %s\n\n%s", a.Title, a.CSV()); err != nil {
			return err
		}
		for _, n := range a.Notes {
			if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
				return err
			}
		}
	} else {
		if _, err := io.WriteString(w, a.Text()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
