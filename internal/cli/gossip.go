package cli

import (
	"flag"
	"fmt"
	"io"

	"lotuseater/internal/attack"
	"lotuseater/internal/gossip"
)

// Gossip runs a single BAR Gossip simulation under a configurable
// lotus-eater (or crash) attack and prints the delivery summary — the
// original lotus-sim single-run mode.
func Gossip(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("lotus-sim gossip", flag.ContinueOnError)
	cfg := gossip.DefaultConfig()

	attackName := fs.String("attack", "none", "attack kind: none|crash|ideal|trade")
	fs.IntVar(&cfg.Nodes, "nodes", cfg.Nodes, "number of nodes")
	fs.IntVar(&cfg.UpdatesPerRound, "updates", cfg.UpdatesPerRound, "updates released per round")
	fs.IntVar(&cfg.Lifetime, "lifetime", cfg.Lifetime, "update lifetime in rounds")
	fs.IntVar(&cfg.CopiesSeeded, "seeded", cfg.CopiesSeeded, "copies seeded per update")
	fs.IntVar(&cfg.PushSize, "push", cfg.PushSize, "optimistic push size")
	fs.IntVar(&cfg.BalanceSlack, "slack", cfg.BalanceSlack, "extra updates given in balanced exchanges (obedient variant)")
	fs.IntVar(&cfg.Rounds, "rounds", cfg.Rounds, "simulation horizon")
	fs.IntVar(&cfg.Warmup, "warmup", cfg.Warmup, "warmup rounds excluded from measurement")
	fs.Float64Var(&cfg.AttackerFraction, "fraction", 0, "fraction of nodes the attacker controls")
	fs.Float64Var(&cfg.SatiateFraction, "satiate", cfg.SatiateFraction, "fraction of the system targeted for satiation")
	fs.IntVar(&cfg.RotatePeriod, "rotate", 0, "re-draw the satiated set every N rounds (0 = static)")
	fs.Float64Var(&cfg.Altruism, "altruism", 0, "probability a satiated node serves anyway")
	fs.Float64Var(&cfg.ObedientFraction, "obedient", 0, "fraction of honest nodes that are obedient")
	fs.IntVar(&cfg.RateLimitPerPeer, "ratelimit", 0, "per-peer per-round acceptance cap enforced by obedient nodes")
	fs.IntVar(&cfg.ReportThreshold, "report", 0, "report deliveries larger than this (0 = off)")
	seed := fs.Uint64("seed", 1, "random seed")
	verbose := fs.Bool("v", false, "print per-round delivery for honest nodes")

	if err := fs.Parse(args); err != nil {
		return err
	}
	kind, err := attack.ParseKind(*attackName)
	if err != nil {
		return err
	}
	cfg.Attack = kind

	eng, err := gossip.New(cfg, *seed)
	if err != nil {
		return err
	}
	res, err := eng.Run()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, res)
	if res.Usable() {
		fmt.Fprintf(w, "stream USABLE for isolated nodes (>= %.0f%% delivered)\n", cfg.UsableThreshold*100)
	} else {
		fmt.Fprintf(w, "stream UNUSABLE for isolated nodes (< %.0f%% delivered)\n", cfg.UsableThreshold*100)
	}
	if *verbose {
		for r, v := range res.PerRoundHonest {
			if v >= 0 {
				fmt.Fprintf(w, "round %3d: honest=%.4f isolated=%.4f\n", r, v, res.PerRoundIsolated[r])
			}
		}
	}
	return nil
}
