package cli

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"lotuseater/internal/attack"
	"lotuseater/internal/gossip"
	"lotuseater/internal/metrics"
	"lotuseater/internal/population"
	"lotuseater/internal/sim"
	"lotuseater/internal/simrng"
	"lotuseater/internal/swarm"
)

// KernelBenchResult is one (substrate, population) measurement in
// BENCH_kernel.json: the per-round cost of stepping a single replicate, the
// number the sparse-satiation and in-replicate-parallelism work optimizes.
type KernelBenchResult struct {
	// Substrate is the simulator measured (gossip, swarm).
	Substrate string `json:"substrate"`
	// Nodes is the population size.
	Nodes int `json:"nodes"`
	// Rounds is how many steady-state rounds were measured (after warmup).
	Rounds int `json:"rounds"`
	// NsPerRound is wall time per simulated round in nanoseconds.
	NsPerRound float64 `json:"nsPerRound"`
	// AllocsPerRound is heap allocations per round — the satiation-path
	// O(|satiated set|) claim made measurable. Pool fan-out shards count.
	AllocsPerRound float64 `json:"allocsPerRound"`
	// BytesPerRound is heap bytes allocated per round.
	BytesPerRound float64 `json:"bytesPerRound"`
	// BuildSeconds is the one-time model construction cost.
	BuildSeconds float64 `json:"buildSeconds"`
	// Phases attributes NsPerRound to the substrate's tick phases
	// (nanoseconds per round, keys from the substrate's phase taxonomy).
	// Only substrates with phase instrumentation (swarm) emit it.
	Phases map[string]float64 `json:"phasesNsPerRound,omitempty"`
}

// kernelBenchFile is the schema of BENCH_kernel.json.
type kernelBenchFile struct {
	GeneratedAt string              `json:"generatedAt"`
	Seed        uint64              `json:"seed"`
	Entries     []KernelBenchResult `json:"entries"`
}

// kernelBenchSizes is the population ladder the kernel bench climbs; the
// top rung is the ROADMAP's million-user scale.
var kernelBenchSizes = []int{10_000, 100_000, 1_000_000}

// kernelBench measures ns/round and allocs/round for one replicate of the
// gossip (static and churning) and swarm substrates at each of the given
// population sizes, and
// returns the entries so the caller can gate them against a baseline.
// rounds is the measured steady-state round count (the CI default is low;
// raise it locally for tighter numbers).
func kernelBench(w io.Writer, seed uint64, rounds int, sizes []int, out string) ([]KernelBenchResult, error) {
	var entries []KernelBenchResult
	for _, n := range sizes {
		for _, sub := range []string{"gossip", "gossip-churn", "swarm"} {
			r, err := kernelBenchOne(sub, n, rounds, seed)
			if err != nil {
				return nil, fmt.Errorf("kernel bench %s/n=%d: %w", sub, n, err)
			}
			entries = append(entries, r)
		}
	}

	rows := [][]string{{"kernel", "nodes", "rounds", "ms/round", "allocs/round", "MB/round"}}
	for _, r := range entries {
		rows = append(rows, []string{
			r.Substrate,
			fmt.Sprintf("%d", r.Nodes),
			fmt.Sprintf("%d", r.Rounds),
			fmt.Sprintf("%.2f", r.NsPerRound/1e6),
			fmt.Sprintf("%.0f", r.AllocsPerRound),
			fmt.Sprintf("%.2f", r.BytesPerRound/1e6),
		})
		// Phase attribution as indented sub-rows, in tick order, so a
		// regression is immediately localizable to the phase that moved.
		for _, name := range swarm.PhaseOrder() {
			ns, ok := r.Phases[name]
			if !ok {
				continue
			}
			rows = append(rows, []string{
				"  · " + name, "", "",
				fmt.Sprintf("%.2f", ns/1e6), "", "",
			})
		}
	}
	if _, err := io.WriteString(w, metrics.RenderRows(rows)); err != nil {
		return nil, err
	}

	if out != "" {
		data, err := json.MarshalIndent(kernelBenchFile{
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			Seed:        seed,
			Entries:     entries,
		}, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
		if _, err := fmt.Fprintf(w, "wrote %s\n", out); err != nil {
			return nil, err
		}
	}
	return entries, nil
}

// kernelBenchOne builds one model, steps it past its warmup so every pool
// and freelist is primed, then times `rounds` steady-state rounds with the
// allocator's counters bracketing the loop. Substrates with phase
// instrumentation additionally attribute the steady-state time to tick
// phases (the profile is reset after warmup so it covers exactly the
// measured rounds).
func kernelBenchOne(substrate string, n, rounds int, seed uint64) (KernelBenchResult, error) {
	buildStart := time.Now()
	model, warmup, prof, err := kernelBenchModel(substrate, n, rounds, seed)
	if err != nil {
		return KernelBenchResult{}, err
	}
	buildSeconds := time.Since(buildStart).Seconds()

	for i := 0; i < warmup; i++ {
		if err := model.Step(); err != nil {
			return KernelBenchResult{}, err
		}
	}
	if prof != nil {
		prof.Reset()
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if err := model.Step(); err != nil {
			return KernelBenchResult{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	r := KernelBenchResult{
		Substrate:      substrate,
		Nodes:          n,
		Rounds:         rounds,
		NsPerRound:     float64(elapsed.Nanoseconds()) / float64(rounds),
		AllocsPerRound: float64(after.Mallocs-before.Mallocs) / float64(rounds),
		BytesPerRound:  float64(after.TotalAlloc-before.TotalAlloc) / float64(rounds),
		BuildSeconds:   buildSeconds,
	}
	if prof != nil {
		r.Phases = make(map[string]float64, len(swarm.PhaseOrder()))
		for name, ns := range prof.Phases() {
			r.Phases[name] = ns / float64(rounds)
		}
	}
	return r, nil
}

// kernelBenchModel builds the benchmark replicate: the same shapes the
// gossip-1m / swarm-1m registry scenarios use, horizon stretched to cover
// warmup plus the measured rounds. The returned PhaseProfile is non-nil
// only for substrates with phase instrumentation (swarm).
func kernelBenchModel(substrate string, n, rounds int, seed uint64) (sim.Model, int, *swarm.PhaseProfile, error) {
	switch substrate {
	case "gossip", "gossip-churn":
		cfg := gossip.DefaultConfig()
		cfg.Nodes = n
		cfg.UpdatesPerRound = 1
		cfg.Lifetime = 8
		cfg.CopiesSeeded = 64
		if cfg.CopiesSeeded > n {
			cfg.CopiesSeeded = n
		}
		warmup := cfg.Lifetime + 1
		cfg.Rounds = warmup + rounds + cfg.Lifetime
		cfg.Warmup = 0
		adv := &attack.Strategy{Kind: attack.Ideal, Fraction: 0.02, SatiateFraction: 0.30}
		opts := []gossip.Option{gossip.WithAdversary(adv)}
		if substrate == "gossip-churn" {
			// The same replicate with a synthesized lifecycle schedule
			// spanning the whole horizon: the delta against the plain gossip
			// row is the cost of the churn drain plus the presence gating on
			// the exchange paths.
			minPresent := n / 10
			if minPresent < 2 {
				minPresent = 2
			}
			events := population.Synthesize(
				population.Rates{LeaveRate: 0.002, JoinRate: 0.01},
				n, cfg.Rounds, minPresent, simrng.New(seed).Child("bench-churn"))
			opts = append(opts, gossip.WithChurn(events))
		}
		e, err := gossip.New(cfg, seed, opts...)
		return e, warmup, nil, err
	case "swarm":
		cfg := swarm.DefaultConfig()
		cfg.Leechers = n
		cfg.Pieces = 32
		cfg.PeerSetSize = 8
		cfg.AttackerUplink = 4096
		warmup := cfg.RotateInterval + 1
		cfg.Ticks = warmup + rounds + 1
		adv := &attack.Strategy{Kind: attack.Ideal, Fraction: 0.01, SatiateFraction: 0.10}
		prof := &swarm.PhaseProfile{}
		s, err := swarm.New(cfg, seed, swarm.WithAdversary(adv), swarm.WithPhaseProfile(prof))
		return s, warmup, prof, err
	default:
		return nil, 0, nil, fmt.Errorf("cli: unknown kernel bench substrate %q", substrate)
	}
}

// checkKernelBaseline compares the fresh kernel bench entries against the
// checked-in baseline file (same schema as BENCH_kernel.json) and returns
// an error naming every (substrate, nodes) point whose ns/round regressed
// by more than tolerance (0.25 = fail when more than 25% slower). Points
// missing from either side are ignored, so the baseline can lag behind
// newly added sizes. Phase attributions are informational and not gated:
// wall-clock noise at phase granularity would make the guard flaky.
func checkKernelBaseline(entries []KernelBenchResult, path string, tolerance float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("cli: kernel baseline: %w", err)
	}
	var base kernelBenchFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("cli: kernel baseline %s: %w", path, err)
	}
	type key struct {
		substrate string
		nodes     int
	}
	ref := make(map[key]float64, len(base.Entries))
	for _, e := range base.Entries {
		ref[key{e.Substrate, e.Nodes}] = e.NsPerRound
	}
	var regressions []string
	for _, e := range entries {
		want, ok := ref[key{e.Substrate, e.Nodes}]
		if !ok || want <= 0 {
			continue
		}
		if e.NsPerRound > want*(1+tolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s/n=%d: %.2f ms/round vs baseline %.2f ms/round (%+.0f%%, limit +%.0f%%)",
				e.Substrate, e.Nodes, e.NsPerRound/1e6, want/1e6,
				100*(e.NsPerRound/want-1), 100*tolerance))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("cli: kernel bench regression vs %s:\n  %s",
			path, strings.Join(regressions, "\n  "))
	}
	return nil
}
