package cli

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"lotuseater/internal/attack"
	"lotuseater/internal/gossip"
	"lotuseater/internal/metrics"
	"lotuseater/internal/sim"
	"lotuseater/internal/swarm"
)

// KernelBenchResult is one (substrate, population) measurement in
// BENCH_kernel.json: the per-round cost of stepping a single replicate, the
// number the sparse-satiation and in-replicate-parallelism work optimizes.
type KernelBenchResult struct {
	// Substrate is the simulator measured (gossip, swarm).
	Substrate string `json:"substrate"`
	// Nodes is the population size.
	Nodes int `json:"nodes"`
	// Rounds is how many steady-state rounds were measured (after warmup).
	Rounds int `json:"rounds"`
	// NsPerRound is wall time per simulated round in nanoseconds.
	NsPerRound float64 `json:"nsPerRound"`
	// AllocsPerRound is heap allocations per round — the satiation-path
	// O(|satiated set|) claim made measurable. Pool fan-out shards count.
	AllocsPerRound float64 `json:"allocsPerRound"`
	// BytesPerRound is heap bytes allocated per round.
	BytesPerRound float64 `json:"bytesPerRound"`
	// BuildSeconds is the one-time model construction cost.
	BuildSeconds float64 `json:"buildSeconds"`
}

// kernelBenchFile is the schema of BENCH_kernel.json.
type kernelBenchFile struct {
	GeneratedAt string              `json:"generatedAt"`
	Seed        uint64              `json:"seed"`
	Entries     []KernelBenchResult `json:"entries"`
}

// kernelBenchSizes is the population ladder the kernel bench climbs; the
// top rung is the ROADMAP's million-user scale.
var kernelBenchSizes = []int{10_000, 100_000, 1_000_000}

// kernelBench measures ns/round and allocs/round for one replicate of the
// gossip and swarm substrates at each of the given population sizes.
// rounds is the measured steady-state round count (the CI default is low;
// raise it locally for tighter numbers).
func kernelBench(w io.Writer, seed uint64, rounds int, sizes []int, out string) error {
	var entries []KernelBenchResult
	for _, n := range sizes {
		for _, sub := range []string{"gossip", "swarm"} {
			r, err := kernelBenchOne(sub, n, rounds, seed)
			if err != nil {
				return fmt.Errorf("kernel bench %s/n=%d: %w", sub, n, err)
			}
			entries = append(entries, r)
		}
	}

	rows := [][]string{{"kernel", "nodes", "rounds", "ms/round", "allocs/round", "MB/round"}}
	for _, r := range entries {
		rows = append(rows, []string{
			r.Substrate,
			fmt.Sprintf("%d", r.Nodes),
			fmt.Sprintf("%d", r.Rounds),
			fmt.Sprintf("%.2f", r.NsPerRound/1e6),
			fmt.Sprintf("%.0f", r.AllocsPerRound),
			fmt.Sprintf("%.2f", r.BytesPerRound/1e6),
		})
	}
	if _, err := io.WriteString(w, metrics.RenderRows(rows)); err != nil {
		return err
	}

	if out != "" {
		data, err := json.MarshalIndent(kernelBenchFile{
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			Seed:        seed,
			Entries:     entries,
		}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "wrote %s\n", out); err != nil {
			return err
		}
	}
	return nil
}

// kernelBenchOne builds one model, steps it past its warmup so every pool
// and freelist is primed, then times `rounds` steady-state rounds with the
// allocator's counters bracketing the loop.
func kernelBenchOne(substrate string, n, rounds int, seed uint64) (KernelBenchResult, error) {
	buildStart := time.Now()
	model, warmup, err := kernelBenchModel(substrate, n, rounds, seed)
	if err != nil {
		return KernelBenchResult{}, err
	}
	buildSeconds := time.Since(buildStart).Seconds()

	for i := 0; i < warmup; i++ {
		if err := model.Step(); err != nil {
			return KernelBenchResult{}, err
		}
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if err := model.Step(); err != nil {
			return KernelBenchResult{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	return KernelBenchResult{
		Substrate:      substrate,
		Nodes:          n,
		Rounds:         rounds,
		NsPerRound:     float64(elapsed.Nanoseconds()) / float64(rounds),
		AllocsPerRound: float64(after.Mallocs-before.Mallocs) / float64(rounds),
		BytesPerRound:  float64(after.TotalAlloc-before.TotalAlloc) / float64(rounds),
		BuildSeconds:   buildSeconds,
	}, nil
}

// kernelBenchModel builds the benchmark replicate: the same shapes the
// gossip-1m / swarm-1m registry scenarios use, horizon stretched to cover
// warmup plus the measured rounds.
func kernelBenchModel(substrate string, n, rounds int, seed uint64) (sim.Model, int, error) {
	switch substrate {
	case "gossip":
		cfg := gossip.DefaultConfig()
		cfg.Nodes = n
		cfg.UpdatesPerRound = 1
		cfg.Lifetime = 8
		cfg.CopiesSeeded = 64
		if cfg.CopiesSeeded > n {
			cfg.CopiesSeeded = n
		}
		warmup := cfg.Lifetime + 1
		cfg.Rounds = warmup + rounds + cfg.Lifetime
		cfg.Warmup = 0
		adv := &attack.Strategy{Kind: attack.Ideal, Fraction: 0.02, SatiateFraction: 0.30}
		e, err := gossip.New(cfg, seed, gossip.WithAdversary(adv))
		return e, warmup, err
	case "swarm":
		cfg := swarm.DefaultConfig()
		cfg.Leechers = n
		cfg.Pieces = 32
		cfg.PeerSetSize = 8
		cfg.AttackerUplink = 4096
		warmup := cfg.RotateInterval + 1
		cfg.Ticks = warmup + rounds + 1
		adv := &attack.Strategy{Kind: attack.Ideal, Fraction: 0.01, SatiateFraction: 0.10}
		s, err := swarm.New(cfg, seed, swarm.WithAdversary(adv))
		return s, warmup, err
	default:
		return nil, 0, fmt.Errorf("cli: unknown kernel bench substrate %q", substrate)
	}
}
