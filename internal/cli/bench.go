package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"lotuseater/internal/metrics"
	"lotuseater/internal/scenario"
)

// BenchResult is one timed scenario run in the BENCH_scenarios.json
// artifact.
type BenchResult struct {
	// Name is the scenario (registry name, or a synthetic benchmark id).
	Name string `json:"name"`
	// Seconds is the wall time of one full run.
	Seconds float64 `json:"seconds"`
	// Points and Replicates describe the workload shape.
	Points     int `json:"points"`
	Replicates int `json:"replicates"`
	// Runs is Points * Replicates, the total simulations executed.
	Runs int `json:"runs"`
	// RunsPerSecond is the headline throughput number to track across PRs.
	RunsPerSecond float64 `json:"runsPerSecond"`
	// Mean is the mean of the scenario metric at the last sweep point, a
	// drift canary riding along with the timing.
	Mean float64 `json:"mean"`
}

// benchFile is the schema of BENCH_scenarios.json.
type benchFile struct {
	GeneratedAt string        `json:"generatedAt"`
	Seed        uint64        `json:"seed"`
	Benchmarks  []BenchResult `json:"benchmarks"`
}

// benchSet names the registry scenarios timed by `lotus-sim scenarios
// bench`: one per substrate, drawn from the cross-product grid so the
// numbers track the strategy layer end to end.
var benchSet = []string{
	"x/trade-gossip",
	"x/trade-token",
	"x/trade-scrip",
	"x/ideal-swarm",
	"x/ideal-coding",
	"x/trade-gossip+ratelimit",
}

// Bench implements `lotus-sim scenarios bench`: it times a representative
// slice of the scenario registry plus one 1000-replicate streaming-
// aggregation run, prints an aligned table, and writes the machine-readable
// BENCH_scenarios.json for the performance trajectory. It then runs the
// kernel bench — single-replicate ns/round and allocs/round for gossip and
// swarm at n in {10k, 100k, 1m} — into BENCH_kernel.json.
func Bench(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("lotus-sim scenarios bench", flag.ContinueOnError)
	out := fs.String("out", "BENCH_scenarios.json", "output JSON path (empty = stdout only)")
	kernelOut := fs.String("kernel-out", "BENCH_kernel.json", "kernel bench JSON path (empty = skip the kernel bench)")
	kernelRounds := fs.Int("kernel-rounds", 3, "steady-state rounds measured per kernel bench point (low quality; raise locally)")
	kernelSizes := fs.String("kernel-sizes", "", "comma-separated kernel bench populations (default 10000,100000,1000000)")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sizes := kernelBenchSizes
	if *kernelSizes != "" {
		sizes = nil
		for _, part := range strings.Split(*kernelSizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 2 {
				return fmt.Errorf("lotus-sim: -kernel-sizes needs populations >= 2, got %q", part)
			}
			sizes = append(sizes, n)
		}
	}

	var results []BenchResult
	for _, name := range benchSet {
		spec, ok := scenario.Get(name)
		if !ok {
			return unknownScenario(name)
		}
		r, err := timeScenario(spec, *seed, scenario.RunOptions{})
		if err != nil {
			return fmt.Errorf("bench %s: %w", name, err)
		}
		results = append(results, r)
	}

	// The streaming-aggregation benchmark: 1000 replicates of one token-
	// model point folded through the constant-memory accumulator path —
	// the workload PR 2's aggregation layer exists for.
	stream := &scenario.Spec{
		Name:       "bench/streaming-1k",
		Substrate:  "token",
		Nodes:      64,
		Rounds:     40,
		Replicates: 1000,
		Adversary:  scenario.AdversarySpec{Kind: "trade", Fraction: 0.15, SatiateFraction: 0.60},
		Params:     map[string]float64{"tokens": 16},
	}
	r, err := timeScenario(stream, *seed, scenario.RunOptions{})
	if err != nil {
		return fmt.Errorf("bench %s: %w", stream.Name, err)
	}
	results = append(results, r)

	rows := [][]string{{"benchmark", "seconds", "runs", "runs/sec", "mean"}}
	for _, r := range results {
		rows = append(rows, []string{
			r.Name,
			fmt.Sprintf("%.3f", r.Seconds),
			fmt.Sprintf("%d", r.Runs),
			fmt.Sprintf("%.1f", r.RunsPerSecond),
			fmt.Sprintf("%.4f", r.Mean),
		})
	}
	if _, err := io.WriteString(w, metrics.RenderRows(rows)); err != nil {
		return err
	}

	if *out != "" {
		data, err := json.MarshalIndent(benchFile{
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			Seed:        *seed,
			Benchmarks:  results,
		}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "wrote %s\n", *out); err != nil {
			return err
		}
	}

	if *kernelOut != "" {
		if err := kernelBench(w, *seed, *kernelRounds, sizes, *kernelOut); err != nil {
			return err
		}
	}
	return nil
}

func timeScenario(spec *scenario.Spec, seed uint64, opts scenario.RunOptions) (BenchResult, error) {
	start := time.Now()
	a, err := scenario.Run(spec, seed, opts)
	if err != nil {
		return BenchResult{}, err
	}
	elapsed := time.Since(start).Seconds()
	points := len(a.Series[0].Points)
	replicates := spec.Replicates
	if opts.Replicates > 0 {
		replicates = opts.Replicates
	}
	if replicates <= 0 {
		replicates = 3
	}
	runs := points * replicates
	r := BenchResult{
		Name:       spec.Name,
		Seconds:    elapsed,
		Points:     points,
		Replicates: replicates,
		Runs:       runs,
		Mean:       a.Series[0].Points[points-1].Y,
	}
	if elapsed > 0 {
		r.RunsPerSecond = float64(runs) / elapsed
	}
	return r, nil
}
