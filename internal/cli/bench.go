package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"lotuseater/internal/metrics"
	"lotuseater/internal/scenario"
)

// BenchResult is one timed scenario run in the BENCH_scenarios.json
// artifact.
type BenchResult struct {
	// Name is the scenario (registry name, or a synthetic benchmark id).
	Name string `json:"name"`
	// Seconds is the wall time of one full run.
	Seconds float64 `json:"seconds"`
	// Points and Replicates describe the workload shape.
	Points     int `json:"points"`
	Replicates int `json:"replicates"`
	// Runs is Points * Replicates, the total simulations executed.
	Runs int `json:"runs"`
	// RunsPerSecond is the headline throughput number to track across PRs.
	RunsPerSecond float64 `json:"runsPerSecond"`
	// Mean is the mean of the scenario metric at the last sweep point, a
	// drift canary riding along with the timing.
	Mean float64 `json:"mean"`
}

// benchFile is the schema of BENCH_scenarios.json.
type benchFile struct {
	GeneratedAt string        `json:"generatedAt"`
	Seed        uint64        `json:"seed"`
	Benchmarks  []BenchResult `json:"benchmarks"`
}

// benchSet names the registry scenarios timed by `lotus-sim scenarios
// bench`: one per substrate, drawn from the cross-product grid so the
// numbers track the strategy layer end to end.
var benchSet = []string{
	"x/trade-gossip",
	"x/trade-token",
	"x/trade-scrip",
	"x/ideal-swarm",
	"x/ideal-coding",
	"x/trade-gossip+ratelimit",
}

// Bench implements `lotus-sim scenarios bench`: it times a representative
// slice of the scenario registry plus one 1000-replicate streaming-
// aggregation run, prints an aligned table, and writes the machine-readable
// BENCH_scenarios.json for the performance trajectory. It then runs the
// adaptive bench — fixed-budget vs CI-targeted replication on the three
// *-auto registry scenarios — into BENCH_adaptive.json, and the kernel
// bench — single-replicate ns/round and allocs/round for gossip (static
// and churning) and swarm at n in {10k, 100k, 1m} — into BENCH_kernel.json. With -cluster-out it
// also measures 1-vs-2-worker distributed throughput through a loopback
// coordinator/worker cluster into BENCH_cluster.json.
func Bench(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("lotus-sim scenarios bench", flag.ContinueOnError)
	out := fs.String("out", "BENCH_scenarios.json", "output JSON path (empty = stdout only)")
	adaptiveOut := fs.String("adaptive-out", "BENCH_adaptive.json", "adaptive-vs-fixed bench JSON path (empty = skip)")
	kernelOut := fs.String("kernel-out", "BENCH_kernel.json", "kernel bench JSON path (empty = skip the kernel bench)")
	clusterOut := fs.String("cluster-out", "", "cluster bench JSON path (empty = skip): 1-vs-2-worker replicates/sec through a loopback coordinator")
	kernelRounds := fs.Int("kernel-rounds", 3, "steady-state rounds measured per kernel bench point (low quality; raise locally)")
	kernelSizes := fs.String("kernel-sizes", "", "comma-separated kernel bench populations (default 10000,100000,1000000)")
	kernelBaseline := fs.String("kernel-baseline", "", "baseline BENCH_kernel.json to gate ns/round against (empty = no gate)")
	kernelRegress := fs.Float64("kernel-regress", 0.25, "fail when ns/round exceeds the baseline by this fraction")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sizes := kernelBenchSizes
	if *kernelSizes != "" {
		sizes = nil
		for _, part := range strings.Split(*kernelSizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 2 {
				return fmt.Errorf("lotus-sim: -kernel-sizes needs populations >= 2, got %q", part)
			}
			sizes = append(sizes, n)
		}
	}

	var results []BenchResult
	for _, name := range benchSet {
		spec, ok := scenario.Get(name)
		if !ok {
			return unknownScenario(name)
		}
		r, err := timeScenario(spec, *seed, scenario.RunOptions{})
		if err != nil {
			return fmt.Errorf("bench %s: %w", name, err)
		}
		results = append(results, r)
	}

	// The streaming-aggregation benchmark: 1000 replicates of one token-
	// model point folded through the constant-memory accumulator path —
	// the workload PR 2's aggregation layer exists for.
	stream := &scenario.Spec{
		Name:       "bench/streaming-1k",
		Substrate:  "token",
		Nodes:      64,
		Rounds:     40,
		Replicates: 1000,
		Adversary:  scenario.AdversarySpec{Kind: "trade", Fraction: 0.15, SatiateFraction: 0.60},
		Params:     map[string]float64{"tokens": 16},
	}
	r, err := timeScenario(stream, *seed, scenario.RunOptions{})
	if err != nil {
		return fmt.Errorf("bench %s: %w", stream.Name, err)
	}
	results = append(results, r)

	rows := [][]string{{"benchmark", "seconds", "runs", "runs/sec", "mean"}}
	for _, r := range results {
		rows = append(rows, []string{
			r.Name,
			fmt.Sprintf("%.3f", r.Seconds),
			fmt.Sprintf("%d", r.Runs),
			fmt.Sprintf("%.1f", r.RunsPerSecond),
			fmt.Sprintf("%.4f", r.Mean),
		})
	}
	if _, err := io.WriteString(w, metrics.RenderRows(rows)); err != nil {
		return err
	}

	if *out != "" {
		data, err := json.MarshalIndent(benchFile{
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			Seed:        *seed,
			Benchmarks:  results,
		}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "wrote %s\n", *out); err != nil {
			return err
		}
	}

	if *adaptiveOut != "" {
		if err := adaptiveBench(w, *seed, *adaptiveOut); err != nil {
			return err
		}
	}
	if *kernelOut != "" {
		entries, err := kernelBench(w, *seed, *kernelRounds, sizes, *kernelOut)
		if err != nil {
			return err
		}
		if *kernelBaseline != "" {
			if err := checkKernelBaseline(entries, *kernelBaseline, *kernelRegress); err != nil {
				return err
			}
		}
	}
	if *clusterOut != "" {
		if err := clusterBench(w, *seed, *clusterOut); err != nil {
			return err
		}
	}
	return nil
}

// AdaptiveBenchResult is one fixed-vs-adaptive comparison in
// BENCH_adaptive.json: the same scenario run once with the full
// maxReps-per-point budget and once under its CI-targeted plan.
type AdaptiveBenchResult struct {
	// Name is the *-auto registry scenario.
	Name string `json:"name"`
	// Points and MaxReps describe the workload shape.
	Points  int `json:"points"`
	MaxReps int `json:"maxReps"`
	// Fixed* is the full-budget arm; Adaptive* the CI-targeted arm.
	FixedSeconds       float64 `json:"fixedSeconds"`
	FixedReplicates    int     `json:"fixedReplicates"`
	AdaptiveSeconds    float64 `json:"adaptiveSeconds"`
	AdaptiveReplicates int     `json:"adaptiveReplicates"`
	// PointsStoppedEarly counts sweep points resolved below the cap.
	PointsStoppedEarly int `json:"pointsStoppedEarly"`
	// ReplicateSavings is 1 - adaptive/fixed replicates; Speedup is
	// fixed/adaptive wall clock.
	ReplicateSavings float64 `json:"replicateSavings"`
	Speedup          float64 `json:"speedup"`
}

// adaptiveBenchFile is the schema of BENCH_adaptive.json.
type adaptiveBenchFile struct {
	GeneratedAt string                `json:"generatedAt"`
	Seed        uint64                `json:"seed"`
	Benchmarks  []AdaptiveBenchResult `json:"benchmarks"`
}

// adaptiveBenchSet names the *-auto scenarios timed fixed-vs-adaptive,
// shrunk to CI-sized populations (the bench tracks the runner's overhead
// and savings trajectory, not the paper's figures).
var adaptiveBenchSet = []struct {
	name string
	sets []string
}{
	{"gossip-trade-auto", []string{"nodes=120", "rounds=40", "sweep.points=4"}},
	{"token-trade-defended-auto", []string{"nodes=96", "rounds=60", "sweep.points=4"}},
	{"scrip-trade-satiation-auto", []string{"nodes=120", "rounds=1500", "sweep.points=4"}},
}

// adaptiveBench times each *-auto scenario against its own fixed-budget
// degeneration (precision stripped, replicates = maxReps) — same seed, so
// the arms share replicate streams — and reports wall clock, replicate
// counts, and how many points the stopping rule resolved early.
func adaptiveBench(w io.Writer, seed uint64, out string) error {
	var results []AdaptiveBenchResult
	for _, entry := range adaptiveBenchSet {
		spec, ok := scenario.Get(entry.name)
		if !ok {
			return unknownScenario(entry.name)
		}
		if err := spec.ApplySets(entry.sets); err != nil {
			return fmt.Errorf("bench %s: %w", entry.name, err)
		}
		if spec.Precision == nil {
			return fmt.Errorf("bench %s: not an adaptive scenario", entry.name)
		}
		maxReps := spec.Precision.MaxReps

		fixed := spec.Clone()
		fixed.Precision = nil
		fixed.Replicates = maxReps
		start := time.Now()
		if _, err := scenario.Run(fixed, seed, scenario.RunOptions{}); err != nil {
			return fmt.Errorf("bench %s (fixed arm): %w", entry.name, err)
		}
		fixedSecs := time.Since(start).Seconds()

		start = time.Now()
		a, err := scenario.Run(spec, seed, scenario.RunOptions{})
		if err != nil {
			return fmt.Errorf("bench %s (adaptive arm): %w", entry.name, err)
		}
		adaptiveSecs := time.Since(start).Seconds()

		var reps *metrics.Series
		for _, s := range a.Series {
			if s.Name == "reps" {
				reps = s
			}
		}
		if reps == nil {
			return fmt.Errorf("bench %s: adaptive artifact has no reps series", entry.name)
		}
		r := AdaptiveBenchResult{
			Name:            entry.name,
			Points:          len(reps.Points),
			MaxReps:         maxReps,
			FixedSeconds:    fixedSecs,
			FixedReplicates: len(reps.Points) * maxReps,
			AdaptiveSeconds: adaptiveSecs,
		}
		for _, p := range reps.Points {
			r.AdaptiveReplicates += int(p.Y)
			if int(p.Y) < maxReps {
				r.PointsStoppedEarly++
			}
		}
		if r.FixedReplicates > 0 {
			r.ReplicateSavings = 1 - float64(r.AdaptiveReplicates)/float64(r.FixedReplicates)
		}
		if adaptiveSecs > 0 {
			r.Speedup = fixedSecs / adaptiveSecs
		}
		results = append(results, r)
	}

	rows := [][]string{{"benchmark", "fixed s", "adaptive s", "speedup", "reps fixed", "reps adaptive", "stopped early"}}
	for _, r := range results {
		rows = append(rows, []string{
			r.Name,
			fmt.Sprintf("%.3f", r.FixedSeconds),
			fmt.Sprintf("%.3f", r.AdaptiveSeconds),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%d", r.FixedReplicates),
			fmt.Sprintf("%d", r.AdaptiveReplicates),
			fmt.Sprintf("%d/%d", r.PointsStoppedEarly, r.Points),
		})
	}
	if _, err := io.WriteString(w, metrics.RenderRows(rows)); err != nil {
		return err
	}
	data, err := json.MarshalIndent(adaptiveBenchFile{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Seed:        seed,
		Benchmarks:  results,
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "wrote %s\n", out)
	return err
}

func timeScenario(spec *scenario.Spec, seed uint64, opts scenario.RunOptions) (BenchResult, error) {
	start := time.Now()
	a, err := scenario.Run(spec, seed, opts)
	if err != nil {
		return BenchResult{}, err
	}
	elapsed := time.Since(start).Seconds()
	points := len(a.Series[0].Points)
	replicates := spec.Replicates
	if opts.Replicates > 0 {
		replicates = opts.Replicates
	}
	if replicates <= 0 {
		replicates = 3
	}
	runs := points * replicates
	r := BenchResult{
		Name:       spec.Name,
		Seconds:    elapsed,
		Points:     points,
		Replicates: replicates,
		Runs:       runs,
		Mean:       a.Series[0].Points[points-1].Y,
	}
	if elapsed > 0 {
		r.RunsPerSecond = float64(runs) / elapsed
	}
	return r, nil
}
