// Package adaptive is the precision-targeted replication engine: instead of
// folding a fixed replicate count per sweep point, it runs batched waves of
// replicates and stops as soon as the Student-t confidence interval on the
// folded metric's mean is as narrow as the plan demands. Cheap, quiet
// points stop at MinReps; noisy points (trade attacks near the satiation
// threshold) keep drawing waves up to MaxReps — compute goes where the
// variance is.
//
// Determinism is the load-bearing property. Waves run on
// sim.Runner.FoldRange, so replicate i always draws the stream
// ChildN("replicate", i) from the run seed — a pure function of (seed,
// replicate index), never of wave boundaries, batch sizes, or worker
// counts. Consequences, all pinned by tests:
//
//   - an adaptive run and a fixed run are bit-identical on the replicates
//     they share, so a plan that can never stop early (HalfWidth 0)
//     reproduces the fixed artifact byte for byte;
//   - two sweep points fed the same seed give replicate i the same stream
//     at both points (common random numbers), so the difference between an
//     attack arm and a defense arm is a paired comparison with most of the
//     replicate-to-replicate noise cancelled;
//   - re-running a stopped point with a larger budget extends it, never
//     reshuffles it.
package adaptive

import (
	"fmt"
	"math"

	"lotuseater/internal/metrics"
	"lotuseater/internal/sim"
)

// Plan defaults, also used by the scenario layer's canonicalization so a
// spelled-out default and an omitted field are the same plan.
const (
	// DefaultConfidence is the CI confidence level when the plan leaves it
	// zero.
	DefaultConfidence = 0.95
	// DefaultBatch is the wave size after the opening MinReps wave.
	DefaultBatch = 8
	// DefaultMaxReps bounds a plan that names no budget.
	DefaultMaxReps = 256
	// DefaultMinReps is the opening wave: two replicates is the least that
	// yields a variance estimate, so no plan can stop on a single sample.
	DefaultMinReps = 2
)

// CI is the stopping target: when the Student-t half-width of the tracked
// metric's mean at the Confidence level drops to HalfWidth or below, the
// point is resolved.
type CI struct {
	// Metric names the tracked observable. Informational — the engine folds
	// whatever the FoldFunc returns — but it keeps plans self-describing in
	// specs, logs, and artifacts.
	Metric string
	// HalfWidth is the target half-width. Zero disables early stopping: the
	// run executes exactly MaxReps replicates, which is how an adaptive
	// plan degenerates to a fixed run.
	HalfWidth float64
	// Confidence is the two-sided CI level (0 = DefaultConfidence).
	Confidence float64
	// Relative, when true, reads HalfWidth as a fraction of the running
	// mean's magnitude ("stop within 1% of the mean") instead of an
	// absolute half-width. A zero mean never satisfies a relative target.
	Relative bool
}

// Plan drives one sweep point's replication budget.
type Plan struct {
	// MinReps is the opening wave size — replicates always run, stopping
	// rule not consulted before (0 = DefaultMinReps; clamped up to 2 so a
	// variance estimate exists, and down to MaxReps).
	MinReps int
	// MaxReps is the hard budget (0 = DefaultMaxReps).
	MaxReps int
	// CI is the stopping target.
	CI CI
	// Batch is the wave size after the opening wave (0 = DefaultBatch).
	// The stopping rule is consulted between waves, never inside one, so
	// larger batches amortize pool fan-out against replicates that may
	// prove unnecessary.
	Batch int
}

// WithDefaults returns the plan with zero fields resolved to the package
// defaults — the canonical form the engine actually executes. Applying it
// twice is a no-op.
func (p Plan) WithDefaults() Plan {
	if p.CI.Confidence == 0 {
		p.CI.Confidence = DefaultConfidence
	}
	if p.Batch == 0 {
		p.Batch = DefaultBatch
	}
	if p.MinReps < DefaultMinReps {
		// 0 means "default", and 1 is indistinguishable from 2 at run time
		// (the engine never stops on a single sample), so both resolve to
		// the two-replicate floor — keeping canonical forms, and with them
		// cache keys, aligned with what actually executes.
		p.MinReps = DefaultMinReps
	}
	if p.MaxReps == 0 {
		p.MaxReps = DefaultMaxReps
		if p.MinReps > p.MaxReps {
			p.MaxReps = p.MinReps
		}
	}
	return p
}

// Adaptive reports whether the plan can stop early at all.
func (p Plan) Adaptive() bool { return p.CI.HalfWidth > 0 }

// Validate reports the first problem with the plan, or nil. Call it on the
// raw plan; WithDefaults never turns a valid plan invalid.
func (p Plan) Validate() error {
	switch {
	case math.IsNaN(p.CI.HalfWidth) || math.IsInf(p.CI.HalfWidth, 0) || p.CI.HalfWidth < 0:
		return fmt.Errorf("adaptive: CI half-width must be finite and non-negative, got %g", p.CI.HalfWidth)
	case math.IsNaN(p.CI.Confidence) || p.CI.Confidence < 0 || p.CI.Confidence >= 1:
		return fmt.Errorf("adaptive: CI confidence must be in [0,1) (0 = %g), got %g", DefaultConfidence, p.CI.Confidence)
	case p.MinReps < 0 || p.MaxReps < 0 || p.Batch < 0:
		return fmt.Errorf("adaptive: MinReps, MaxReps, and Batch must be non-negative")
	case p.MaxReps > 0 && p.MinReps > p.MaxReps:
		return fmt.Errorf("adaptive: MinReps %d exceeds MaxReps %d", p.MinReps, p.MaxReps)
	case p.Adaptive() && p.MaxReps == 1:
		return fmt.Errorf("adaptive: an adaptive plan needs MaxReps >= 2 (one replicate has no variance estimate)")
	}
	return nil
}

// Result summarizes one adaptively-replicated point.
type Result struct {
	// Reps is how many replicates actually ran (indices 0..Reps-1).
	Reps int
	// Met reports whether the CI target was satisfied before MaxReps.
	Met bool
	// HalfWidth is the achieved Student-t half-width at the plan's
	// confidence level (+Inf when fewer than two replicates ran).
	HalfWidth float64
	// Mean and StdDev summarize the tracked observable over the replicates
	// that ran.
	Mean, StdDev float64
}

// FoldFunc folds one replicate's snapshot and returns the observation the
// stopping rule tracks. Like sim.FoldFunc it runs on a single goroutine in
// strict replicate order, so callers may feed side accumulators without
// locking.
type FoldFunc func(rep int, snap any) (float64, error)

// Observer, when non-nil, hears the stopping rule's readout after every
// wave: replicates folded so far, the current half-width, and whether the
// target is now met. Called from the driving goroutine between waves;
// results never depend on it. Long-running services surface these as
// "reps-so-far / CI-so-far" progress.
type Observer func(reps int, halfWidth float64, met bool)

// Fold runs one point under the plan: an opening wave of MinReps
// replicates, then Batch-sized waves, consulting the CI target between
// waves and stopping at the first wave boundary where it is met (or at
// MaxReps). Replicate indices and streams are global and wave-independent
// — see the package comment — and fold observes them in strict index
// order, exactly as a fixed run of the same count would.
//
// The runner's Progress callback, when set, is translated to cumulative
// counts: done is replicates folded so far across waves, total is the
// plan's MaxReps cap (what remains is an upper bound until the rule
// fires).
func Fold(r sim.Runner, seed uint64, plan Plan, build sim.Build, fold FoldFunc, observe Observer) (Result, error) {
	if err := plan.Validate(); err != nil {
		return Result{}, err
	}
	p := plan.WithDefaults()
	// The opening wave needs at least two replicates for a variance
	// estimate, budget permitting.
	first := p.MinReps
	if first < 2 {
		first = 2
	}
	if first > p.MaxReps {
		first = p.MaxReps
	}

	var acc metrics.Accumulator
	outer := r.Progress
	res := Result{}
	for res.Reps < p.MaxReps && !res.Met {
		wave := p.Batch
		if res.Reps == 0 {
			wave = first
		}
		if rest := p.MaxReps - res.Reps; wave > rest {
			wave = rest
		}
		wr := r
		if outer != nil {
			base := res.Reps
			wr.Progress = func(done, _ int) { outer(base+done, p.MaxReps) }
		}
		if err := wr.FoldRange(seed, res.Reps, wave, build, func(rep int, snap any) error {
			y, err := fold(rep, snap)
			if err != nil {
				return err
			}
			acc.Add(y)
			return nil
		}); err != nil {
			return Result{}, err
		}
		res.Reps += wave
		res.HalfWidth = acc.HalfWidth(p.CI.Confidence)
		res.Met = p.Met(&acc, res.HalfWidth)
		if observe != nil {
			observe(res.Reps, res.HalfWidth, res.Met)
		}
	}
	res.Mean = acc.Mean()
	res.StdDev = acc.StdDev()
	return res, nil
}

// Met applies the plan's stopping rule to the current statistics: true
// when halfWidth (the Student-t half-width of acc's mean at the plan's
// confidence) satisfies the CI target. Exported so a remote scheduler can
// consult the rule at exactly the wave boundaries Fold would — same
// accumulator contents, same verdict — which is what keeps a distributed
// adaptive run's replicate counts identical to a local one's.
func (p Plan) Met(acc *metrics.Accumulator, halfWidth float64) bool {
	if !p.Adaptive() {
		return false
	}
	goal := p.CI.HalfWidth
	if p.CI.Relative {
		m := math.Abs(acc.Mean())
		if m == 0 {
			// Relative error against a zero mean is 0/0 — never certify it.
			return false
		}
		goal *= m
	}
	return halfWidth <= goal
}
