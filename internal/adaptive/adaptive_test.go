package adaptive

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"lotuseater/internal/metrics"
	"lotuseater/internal/sim"
	"lotuseater/internal/simrng"
)

// noiseModel is the minimal sim.Model: one step, then a snapshot holding a
// pre-drawn observation. Because the value is drawn from the replicate's
// own stream in build, it is a pure function of (seed, replicate index) —
// the same contract every real substrate honors.
type noiseModel struct {
	y    float64
	done bool
}

func (m *noiseModel) Step() error            { m.done = true; return nil }
func (m *noiseModel) Finished() bool         { return m.done }
func (m *noiseModel) Snapshot() (any, error) { return m.y, nil }

// normalBuild yields N(mean, sd) observations.
func normalBuild(mean, sd float64) sim.Build {
	return func(rep int, rng *simrng.Source, ws *sim.Workspace) (sim.Model, error) {
		return &noiseModel{y: mean + sd*rng.NormFloat64()}, nil
	}
}

// collect runs the plan and returns the folded observations in fold order
// plus the result.
func collect(t *testing.T, r sim.Runner, seed uint64, plan Plan, build sim.Build) ([]float64, Result) {
	t.Helper()
	var ys []float64
	res, err := Fold(r, seed, plan, build, func(rep int, snap any) (float64, error) {
		if want := len(ys); rep != want {
			t.Fatalf("fold saw replicate %d, want %d (order broken)", rep, want)
		}
		y := snap.(float64)
		ys = append(ys, y)
		return y, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ys, res
}

// TestFoldStopsEarly: a quiet metric resolves at the opening wave; a noisy
// one under the same target runs to its budget.
func TestFoldStopsEarly(t *testing.T) {
	plan := Plan{MinReps: 3, MaxReps: 64, Batch: 4, CI: CI{HalfWidth: 0.05}}
	_, quiet := collect(t, sim.Runner{}, 1, plan, normalBuild(1, 0.001))
	if !quiet.Met || quiet.Reps != 3 {
		t.Fatalf("quiet metric: reps=%d met=%v, want 3/true", quiet.Reps, quiet.Met)
	}
	if quiet.HalfWidth > 0.05 {
		t.Fatalf("quiet half-width %g above target", quiet.HalfWidth)
	}
	_, noisy := collect(t, sim.Runner{}, 1, plan, normalBuild(1, 10))
	if noisy.Met || noisy.Reps != 64 {
		t.Fatalf("noisy metric: reps=%d met=%v, want 64/false", noisy.Reps, noisy.Met)
	}
	// In between: stops after some but not all waves, on a wave boundary.
	_, mid := collect(t, sim.Runner{}, 1, plan, normalBuild(1, 0.08))
	if !mid.Met || mid.Reps <= 3 || mid.Reps >= 64 || (mid.Reps-3)%4 != 0 {
		t.Fatalf("mid metric: reps=%d met=%v, want an interior wave boundary", mid.Reps, mid.Met)
	}
}

// TestFoldFixedEquivalence: HalfWidth 0 runs exactly MaxReps replicates and
// folds the same observations in the same order as a fixed Runner.Fold of
// the same count — regardless of batch size or worker count. This is the
// equivalence that makes adaptive runs trustworthy.
func TestFoldFixedEquivalence(t *testing.T) {
	const n = 23
	build := normalBuild(0, 1)
	var fixed []float64
	if err := (sim.Runner{}).Fold(9, n, build, func(rep int, snap any) error {
		fixed = append(fixed, snap.(float64))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 4, 64} {
		for _, workers := range []int{1, 8} {
			plan := Plan{MaxReps: n, Batch: batch}
			ys, res := collect(t, sim.Runner{Workers: workers}, 9, plan, build)
			if res.Reps != n || res.Met {
				t.Fatalf("batch %d workers %d: reps=%d met=%v, want %d/false", batch, workers, res.Reps, res.Met, n)
			}
			if !reflect.DeepEqual(ys, fixed) {
				t.Fatalf("batch %d workers %d: fold sequence diverged from fixed run", batch, workers)
			}
		}
	}
}

// TestFoldPrefixProperty: a tighter budget folds a strict prefix of a
// looser budget's observations — replicate streams are a pure function of
// (seed, index), never of the stopping decision.
func TestFoldPrefixProperty(t *testing.T) {
	build := normalBuild(2, 1)
	long, _ := collect(t, sim.Runner{}, 5, Plan{MaxReps: 40, Batch: 8}, build)
	short, _ := collect(t, sim.Runner{}, 5, Plan{MaxReps: 12, Batch: 3}, build)
	if !reflect.DeepEqual(short, long[:len(short)]) {
		t.Fatal("smaller budget is not a prefix of the larger one")
	}
}

// TestFoldProgressCumulative: the runner's Progress is translated to
// cumulative counts against the MaxReps cap.
func TestFoldProgressCumulative(t *testing.T) {
	var dones, totals []int
	r := sim.Runner{Progress: func(done, total int) {
		dones = append(dones, done)
		totals = append(totals, total)
	}}
	plan := Plan{MinReps: 2, MaxReps: 10, Batch: 3, CI: CI{HalfWidth: 1e-9}}
	_, res := collect(t, r, 3, plan, normalBuild(0, 5))
	if res.Reps != 10 {
		t.Fatalf("reps = %d, want the full budget", res.Reps)
	}
	if len(dones) != 10 {
		t.Fatalf("progress fired %d times, want 10", len(dones))
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("progress done = %v, want 1..10", dones)
		}
		if totals[i] != 10 {
			t.Fatalf("progress total = %d, want the MaxReps cap 10", totals[i])
		}
	}
}

// TestFoldObserver: the observer hears every wave boundary with a sane
// readout.
func TestFoldObserver(t *testing.T) {
	type wave struct {
		reps int
		met  bool
	}
	var waves []wave
	plan := Plan{MinReps: 2, MaxReps: 8, Batch: 2, CI: CI{HalfWidth: 1e-12}}
	_, err := Fold(sim.Runner{}, 4, plan, normalBuild(0, 1),
		func(rep int, snap any) (float64, error) { return snap.(float64), nil },
		func(reps int, hw float64, met bool) {
			if math.IsNaN(hw) {
				t.Fatalf("observer saw NaN half-width at %d reps", reps)
			}
			waves = append(waves, wave{reps, met})
		})
	if err != nil {
		t.Fatal(err)
	}
	want := []wave{{2, false}, {4, false}, {6, false}, {8, false}}
	if !reflect.DeepEqual(waves, want) {
		t.Fatalf("waves = %v, want %v", waves, want)
	}
}

// TestRelativeTarget: a relative plan stops on half-width/|mean|, and a
// zero mean never satisfies it.
func TestRelativeTarget(t *testing.T) {
	plan := Plan{MinReps: 4, MaxReps: 128, Batch: 8, CI: CI{HalfWidth: 0.05, Relative: true}}
	_, res := collect(t, sim.Runner{}, 2, plan, normalBuild(100, 1))
	if !res.Met || res.Reps >= 128 {
		t.Fatalf("relative target on a strong mean: reps=%d met=%v", res.Reps, res.Met)
	}
	if rel := res.HalfWidth / 100; rel > 0.06 {
		t.Fatalf("achieved relative error %g", rel)
	}
	_, zero := collect(t, sim.Runner{}, 2, Plan{MinReps: 2, MaxReps: 12, Batch: 4, CI: CI{HalfWidth: 0.5, Relative: true}},
		normalBuild(0, 0.0)) // identically zero: mean 0, sd 0
	if zero.Met {
		t.Fatal("zero mean satisfied a relative target")
	}
	if zero.Reps != 12 {
		t.Fatalf("zero-mean relative run stopped at %d reps", zero.Reps)
	}
}

// TestPlanValidate: hostile plans fail loudly; defaults resolve sanely.
func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{CI: CI{HalfWidth: -1}},
		{CI: CI{HalfWidth: math.NaN()}},
		{CI: CI{HalfWidth: math.Inf(1)}},
		{CI: CI{HalfWidth: 0.1, Confidence: 1}},
		{CI: CI{HalfWidth: 0.1, Confidence: 1.5}},
		{CI: CI{HalfWidth: 0.1, Confidence: -0.5}},
		{MinReps: -1},
		{MaxReps: -2},
		{Batch: -3},
		{MinReps: 10, MaxReps: 5},
		{MaxReps: 1, CI: CI{HalfWidth: 0.1}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d accepted: %+v", i, p)
		}
	}
	p := Plan{}.WithDefaults()
	if p.MinReps != DefaultMinReps || p.MaxReps != DefaultMaxReps ||
		p.Batch != DefaultBatch || p.CI.Confidence != DefaultConfidence {
		t.Fatalf("defaults resolved to %+v", p)
	}
	if !reflect.DeepEqual(p, p.WithDefaults()) {
		t.Fatal("WithDefaults is not idempotent")
	}
	big := Plan{MinReps: 500}.WithDefaults()
	if big.MaxReps < big.MinReps {
		t.Fatalf("defaults left MinReps %d above MaxReps %d", big.MinReps, big.MaxReps)
	}
	if err := big.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFoldErrors: build and fold errors surface with the global replicate
// index; an invalid plan never runs a model.
func TestFoldErrors(t *testing.T) {
	boom := errors.New("boom")
	_, err := Fold(sim.Runner{}, 1, Plan{MinReps: 2, MaxReps: 6, Batch: 2},
		func(rep int, rng *simrng.Source, ws *sim.Workspace) (sim.Model, error) {
			if rep == 3 {
				return nil, boom
			}
			return &noiseModel{y: 1}, nil
		},
		func(rep int, snap any) (float64, error) { return snap.(float64), nil }, nil)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("build error lost: %v", err)
	}
	ran := false
	_, err = Fold(sim.Runner{}, 1, Plan{MinReps: 9, MaxReps: 3},
		func(rep int, rng *simrng.Source, ws *sim.Workspace) (sim.Model, error) {
			ran = true
			return &noiseModel{}, nil
		},
		func(rep int, snap any) (float64, error) { return 0, nil }, nil)
	if err == nil || ran {
		t.Fatalf("invalid plan ran models (err=%v)", err)
	}
	_, err = Fold(sim.Runner{}, 1, Plan{MinReps: 2, MaxReps: 4}, normalBuild(0, 1),
		func(rep int, snap any) (float64, error) { return 0, boom }, nil)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("fold error lost: %v", err)
	}
}

// TestStoppingRuleCoverage is the statistical self-test behind `make
// check-stats`: a known Bernoulli metric run through the full engine must
// produce Student-t intervals whose empirical coverage sits within 3% of
// the nominal confidence over 1000 trials. Deterministic seeds make the
// check exact and reproducible, not flaky.
func TestStoppingRuleCoverage(t *testing.T) {
	const (
		trials     = 1000
		reps       = 40
		p          = 0.5
		confidence = 0.95
	)
	bernoulli := func(rep int, rng *simrng.Source, ws *sim.Workspace) (sim.Model, error) {
		y := 0.0
		if rng.Bool(p) {
			y = 1
		}
		return &noiseModel{y: y}, nil
	}
	covered := 0
	for trial := 0; trial < trials; trial++ {
		var acc metrics.Accumulator
		res, err := Fold(sim.Runner{}, uint64(1000+trial),
			Plan{MinReps: reps, MaxReps: reps, CI: CI{Confidence: confidence}},
			bernoulli,
			func(rep int, snap any) (float64, error) {
				y := snap.(float64)
				acc.Add(y)
				return y, nil
			}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reps != reps {
			t.Fatalf("trial %d ran %d reps", trial, res.Reps)
		}
		if math.Abs(res.Mean-p) <= res.HalfWidth {
			covered++
		}
		if got := acc.HalfWidth(confidence); got != res.HalfWidth {
			t.Fatalf("result half-width %g disagrees with accumulator %g", res.HalfWidth, got)
		}
	}
	coverage := float64(covered) / trials
	if coverage < confidence-0.03 || coverage > confidence+0.03 {
		t.Fatalf("empirical coverage %.3f outside [%.3f, %.3f]", coverage, confidence-0.03, confidence+0.03)
	}
	t.Logf("coverage %.3f over %d trials (nominal %.2f)", coverage, trials, confidence)
}
