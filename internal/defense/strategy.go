package defense

// Limit adapts RateLimiter to the substrate-independent defense hook
// (sim.Defense, satisfied structurally): Admit is Allow, and Reset clears
// the per-run state so one Limit can be pooled across replicates via
// sim.Workspace.Defense.
type Limit struct {
	limiter *RateLimiter
}

// NewLimit returns a defense admitting up to perPeerPerRound service units
// per (sender, receiver) pair per round. perPeerPerRound <= 0 disables
// limiting (Admit grants everything).
func NewLimit(perPeerPerRound int) *Limit {
	return &Limit{limiter: NewRateLimiter(perPeerPerRound)}
}

// Admit implements the rate-limiting hook; see RateLimiter.Allow.
func (l *Limit) Admit(round, from, to, requested int) int {
	return l.limiter.Allow(round, from, to, requested)
}

// Reset clears all accumulated state for reuse in a fresh run.
func (l *Limit) Reset() { l.limiter.Reset() }

// Cap returns the per-peer per-round cap (0 = unlimited).
func (l *Limit) Cap() int { return l.limiter.perPeerPerRound }
