package defense

import (
	"testing"
)

// TestLimitAdmit: Limit adapts RateLimiter semantics — grants up to the cap
// per (from, to) pair per round and rolls over on a new round.
func TestLimitAdmit(t *testing.T) {
	l := NewLimit(3)
	if got := l.Admit(0, 1, 2, 2); got != 2 {
		t.Fatalf("first admit = %d, want 2", got)
	}
	if got := l.Admit(0, 1, 2, 5); got != 1 {
		t.Fatalf("second admit = %d, want the remaining 1", got)
	}
	if got := l.Admit(0, 9, 2, 5); got != 3 {
		t.Fatalf("other sender admit = %d, want fresh cap 3", got)
	}
	if got := l.Admit(1, 1, 2, 5); got != 3 {
		t.Fatalf("new round admit = %d, want fresh cap 3", got)
	}
	if got := l.Cap(); got != 3 {
		t.Fatalf("Cap = %d, want 3", got)
	}
}

// TestLimitReset: Reset clears the pair budgets and the round cursor so a
// pooled Limit behaves like a fresh one.
func TestLimitReset(t *testing.T) {
	l := NewLimit(2)
	l.Admit(5, 1, 2, 2)
	l.Reset()
	if got := l.Admit(0, 1, 2, 2); got != 2 {
		t.Fatalf("post-reset admit at round 0 = %d, want 2", got)
	}
}

// TestRateLimiterSteadyStateAllocs: after warmup, round rollover reuses the
// usage map in place — the hot path allocates nothing.
func TestRateLimiterSteadyStateAllocs(t *testing.T) {
	l := NewRateLimiter(4)
	// Warm the map's buckets with the pair population.
	for round := 0; round < 3; round++ {
		for pair := 0; pair < 32; pair++ {
			l.Allow(round, pair, pair+1, 3)
		}
	}
	round := 3
	allocs := testing.AllocsPerRun(100, func() {
		for pair := 0; pair < 32; pair++ {
			l.Allow(round, pair, pair+1, 3)
		}
		round++
	})
	if allocs > 0 {
		t.Fatalf("steady-state Allow allocates %.1f per round, want 0", allocs)
	}
}

// TestRateLimiterNilAndDisabled: a nil or disabled limiter admits
// everything non-negative.
func TestRateLimiterNilAndDisabled(t *testing.T) {
	var nilLimiter *RateLimiter
	if got := nilLimiter.Allow(0, 1, 2, 7); got != 7 {
		t.Fatalf("nil limiter = %d, want 7", got)
	}
	nilLimiter.Reset() // must not panic
	off := NewRateLimiter(0)
	if got := off.Allow(0, 1, 2, 7); got != 7 {
		t.Fatalf("disabled limiter = %d, want 7", got)
	}
	if got := off.Allow(0, 1, 2, -3); got != 0 {
		t.Fatalf("negative request = %d, want 0", got)
	}
}
