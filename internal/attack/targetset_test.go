package attack

import (
	"testing"

	"lotuseater/internal/simrng"
)

// TestTargetSetBasics: membership, iteration order, capacity, and the dense
// compatibility view agree with each other.
func TestTargetSetBasics(t *testing.T) {
	ts := NewTargetSet(10, []int{7, 2, 4, 4, -1, 99})
	if ts.Cap() != 10 || ts.Len() != 3 {
		t.Fatalf("Cap/Len = %d/%d, want 10/3", ts.Cap(), ts.Len())
	}
	if got := ts.Members(); len(got) != 3 || got[0] != 2 || got[1] != 4 || got[2] != 7 {
		t.Fatalf("Members = %v, want ascending [2 4 7]", got)
	}
	for v := -1; v <= 10; v++ {
		want := v == 2 || v == 4 || v == 7
		if ts.Has(v) != want {
			t.Fatalf("Has(%d) = %v, want %v", v, ts.Has(v), want)
		}
	}
	dense := ts.Dense(nil)
	if len(dense) != 10 {
		t.Fatalf("Dense returned %d entries", len(dense))
	}
	for v, on := range dense {
		if on != ts.Has(v) {
			t.Fatalf("Dense[%d] = %v, Has = %v", v, on, ts.Has(v))
		}
	}
	// Dense must reuse a big-enough buffer, zeroing stale entries.
	buf := make([]bool, 12)
	buf[9] = true
	reused := ts.Dense(buf)
	if &reused[0] != &buf[0] {
		t.Fatal("Dense reallocated despite sufficient capacity")
	}
	if reused[9] {
		t.Fatal("Dense kept a stale entry")
	}
	// A fresh set's journal reports everything added.
	if got := ts.Added(); len(got) != 3 {
		t.Fatalf("first-epoch Added = %v", got)
	}
	if len(ts.Removed()) != 0 || ts.Epoch() != 0 {
		t.Fatalf("first-epoch Removed/Epoch = %v/%d", ts.Removed(), ts.Epoch())
	}
}

// TestDenseTargeterAdapter: a legacy dense targeter wrapped by DenseTargeter
// must expose the same memberships and journal changes across epochs.
func TestDenseTargeterAdapter(t *testing.T) {
	dense := [][]bool{
		{true, false, true, false},
		{true, false, true, false}, // unchanged: same set back
		{false, true, true, false}, // flip 0 -> 1
	}
	tg := DenseTargeter(func(round int) []bool { return dense[round] })
	first := tg.Satiated(0)
	if !first.Has(0) || first.Has(1) || !first.Has(2) || first.Len() != 2 {
		t.Fatalf("adapter epoch 0 = %v", first.Members())
	}
	if again := tg.Satiated(1); again != first {
		t.Fatal("unchanged dense slice produced a new set")
	}
	third := tg.Satiated(2)
	if third == first {
		t.Fatal("changed dense slice did not produce a new set")
	}
	if a, r := third.Added(), third.Removed(); len(a) != 1 || a[0] != 1 || len(r) != 1 || r[0] != 0 {
		t.Fatalf("adapter journal +%v -%v, want +[1] -[0]", a, r)
	}
}

// TestValidateTargetList: negatives and duplicates always fail; the upper
// bound applies only when the population is known.
func TestValidateTargetList(t *testing.T) {
	if err := ValidateTargetList(10, []int{0, 9, 5}); err != nil {
		t.Fatalf("valid list rejected: %v", err)
	}
	if err := ValidateTargetList(0, []int{1 << 40}); err != nil {
		t.Fatalf("unknown-population upper bound enforced: %v", err)
	}
	for name, tc := range map[string]struct {
		n     int
		nodes []int
	}{
		"negative":     {0, []int{-1}},
		"duplicate":    {0, []int{2, 2}},
		"out-of-range": {10, []int{10}},
	} {
		if err := ValidateTargetList(tc.n, tc.nodes); err == nil {
			t.Fatalf("%s accepted: %v", name, tc.nodes)
		}
	}
	// Strategy.Validate picks up list problems too.
	s := &Strategy{Kind: Ideal, TargetList: []int{3, 3}}
	if err := s.Validate(); err == nil {
		t.Fatal("Strategy.Validate accepted a duplicate target list")
	}
}

// TestRotatingJournalAcrossManyEpochs: applying each epoch's Added/Removed
// journal to a running membership set must reproduce the epoch's Members —
// the incremental-consumer contract (scrip's isTgt maintenance) in
// miniature.
func TestRotatingJournalAcrossManyEpochs(t *testing.T) {
	tg := NewRotatingTargeter(200, []int{0, 1}, 0.35, 3, simrng.New(17))
	have := map[int]bool{}
	for round := 0; round < 40; round++ {
		ts := tg.Satiated(round)
		if round%3 == 0 || round == 0 {
			for _, v := range ts.Removed() {
				delete(have, v)
			}
			for _, v := range ts.Added() {
				have[v] = true
			}
		}
		if len(have) != ts.Len() {
			t.Fatalf("round %d: journal-tracked size %d, set size %d", round, len(have), ts.Len())
		}
		for _, v := range ts.Members() {
			if !have[v] {
				t.Fatalf("round %d: member %d missing from journal-tracked set", round, v)
			}
		}
	}
}

// TestDenseTargeterCapacityChange: a buggy legacy targeter changing its
// slice length mid-run must not panic the journal diff; the simulators'
// Cap checks report the mistake instead.
func TestDenseTargeterCapacityChange(t *testing.T) {
	dense := [][]bool{{true, false}, {true, false, true}}
	tg := DenseTargeter(func(round int) []bool { return dense[round] })
	first := tg.Satiated(0)
	second := tg.Satiated(1) // must not panic
	if second.Cap() != 3 || second.Epoch() != first.Epoch()+1 {
		t.Fatalf("capacity-changed epoch: Cap %d Epoch %d", second.Cap(), second.Epoch())
	}
	if len(second.Added()) != second.Len() || len(second.Removed()) != first.Len() {
		t.Fatalf("capacity-changed journal +%v -%v", second.Added(), second.Removed())
	}
}
