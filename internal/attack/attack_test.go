package attack

import (
	"testing"
	"testing/quick"

	"lotuseater/internal/simrng"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		None: "none", Crash: "crash", Ideal: "ideal", Trade: "trade",
		Kind(99): "attack.Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestParseKindRoundtrip(t *testing.T) {
	for _, k := range []Kind{None, Crash, Ideal, Trade} {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != k {
			t.Fatalf("ParseKind(%q) = %v", k.String(), got)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("ParseKind accepted bogus")
	}
}

func TestPlaceAttackersCount(t *testing.T) {
	rng := simrng.New(1)
	cases := []struct {
		n        int
		fraction float64
		want     int
	}{
		{100, 0.3, 30},
		{100, 0, 0},
		{100, 1, 100},
		{250, 0.22, 55},
		{100, -0.5, 0},
		{100, 2.0, 100},
	}
	for _, c := range cases {
		got := PlaceAttackers(c.n, c.fraction, rng)
		if len(got) != c.want {
			t.Fatalf("PlaceAttackers(%d, %g) placed %d, want %d", c.n, c.fraction, len(got), c.want)
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= c.n || seen[v] {
				t.Fatalf("invalid or duplicate attacker id %d", v)
			}
			seen[v] = true
		}
	}
}

func TestStaticTargeterIncludesAttackers(t *testing.T) {
	rng := simrng.New(2)
	attackers := []int{3, 7, 9}
	tg := NewStaticTargeter(20, attackers, 0.5, rng)
	targets := tg.Satiated(0)
	for _, a := range attackers {
		if !targets.Has(a) {
			t.Fatalf("attacker %d not in target set", a)
		}
	}
	if got, want := Count(targets), 10; got != want {
		t.Fatalf("targeted %d, want %d", got, want)
	}
	// Static: the identical (shared, immutable) set every round.
	if later := tg.Satiated(100); later != targets {
		t.Fatal("static targeter changed over time")
	}
}

func TestStaticTargeterAttackerMajority(t *testing.T) {
	rng := simrng.New(2)
	attackers := make([]int, 15)
	for i := range attackers {
		attackers[i] = i
	}
	tg := NewStaticTargeter(20, attackers, 0.5, rng)
	// 15 attackers > 10 wanted: only attackers are targeted.
	if got := Count(tg.Satiated(0)); got != 15 {
		t.Fatalf("targeted %d, want 15", got)
	}
}

func TestStaticTargeterFractionClamped(t *testing.T) {
	rng := simrng.New(2)
	if got := Count(NewStaticTargeter(10, nil, -1, rng).Satiated(0)); got != 0 {
		t.Fatalf("negative fraction targeted %d", got)
	}
	if got := Count(NewStaticTargeter(10, nil, 5, rng).Satiated(0)); got != 10 {
		t.Fatalf("fraction > 1 targeted %d, want all", got)
	}
}

func TestRotatingTargeterRotates(t *testing.T) {
	rng := simrng.New(3)
	tg := NewRotatingTargeter(100, []int{0}, 0.4, 5, rng)
	epoch0 := tg.Satiated(0)
	if sameEpoch := tg.Satiated(4); sameEpoch != epoch0 {
		t.Fatal("targets changed within an epoch")
	}
	epoch1 := tg.Satiated(5)
	if len(epoch1.Added()) == 0 && len(epoch1.Removed()) == 0 {
		t.Fatal("targets did not rotate across epochs")
	}
	if !epoch1.Has(0) {
		t.Fatal("attacker dropped from rotated target set")
	}
	if got := Count(epoch1); got != 40 {
		t.Fatalf("rotated epoch targeted %d, want 40", got)
	}
	// The change journal must agree with a dense diff of the two epochs.
	d0, d1 := epoch0.Dense(nil), epoch1.Dense(nil)
	var wantAdd, wantDel []int
	for v := range d1 {
		if d1[v] && !d0[v] {
			wantAdd = append(wantAdd, v)
		}
		if d0[v] && !d1[v] {
			wantDel = append(wantDel, v)
		}
	}
	if !equalInts(epoch1.Added(), wantAdd) || !equalInts(epoch1.Removed(), wantDel) {
		t.Fatalf("journal diverges from dense diff: +%v -%v, want +%v -%v",
			epoch1.Added(), epoch1.Removed(), wantAdd, wantDel)
	}
	if epoch1.Epoch() != epoch0.Epoch()+1 {
		t.Fatalf("epoch did not advance: %d -> %d", epoch0.Epoch(), epoch1.Epoch())
	}
}

func TestRotatingTargeterPeriodClamp(t *testing.T) {
	rng := simrng.New(3)
	tg := NewRotatingTargeter(10, nil, 0.5, 0, rng) // period 0 -> 1
	a := tg.Satiated(0)
	b := tg.Satiated(1)
	if a == b {
		t.Fatal("period clamp did not re-draw per round")
	}
	if len(b.Added()) == 0 && len(b.Removed()) == 0 {
		t.Log("note: consecutive epochs drew identical sets (possible but unlikely)")
	}
}

func TestListTargeter(t *testing.T) {
	tg := NewListTargeter(10, []int{2, 4, 4, -1, 99})
	targets := tg.Satiated(0)
	if Count(targets) != 2 {
		t.Fatalf("targeted %d, want 2 (dedup + range filtering)", Count(targets))
	}
	if !targets.Has(2) || !targets.Has(4) {
		t.Fatal("listed nodes not targeted")
	}
}

func TestSelectTargetsDeterministic(t *testing.T) {
	a := NewStaticTargeter(50, []int{1}, 0.3, simrng.New(9)).Satiated(0)
	b := NewStaticTargeter(50, []int{1}, 0.3, simrng.New(9)).Satiated(0)
	if !equalInts(a.Members(), b.Members()) {
		t.Fatal("same-seed targeters differ")
	}
}

func TestStaticTargeterCountQuick(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw, fRaw uint8) bool {
		n := int(nRaw%100) + 2
		fraction := float64(fRaw) / 255
		tg := NewStaticTargeter(n, nil, fraction, simrng.New(seed))
		want := int(fraction*float64(n) + 0.5)
		return Count(tg.Satiated(0)) == want
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
