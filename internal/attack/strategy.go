package attack

import (
	"fmt"

	"lotuseater/internal/simrng"
)

// Strategy is the paper's adversary as a reusable, substrate-independent
// strategy. It satisfies sim.Adversary structurally (this package does not
// import internal/sim), so every simulator can host the same four attacks:
//
//   - None:  no attacker nodes, no targets — the healthy baseline.
//   - Crash: attacker nodes provide no service and satiate nobody.
//   - Ideal: attacker nodes stay out of protocol; targets are satiated
//     instantly each round (SatiatesInstantly reports true).
//   - Trade: attacker nodes stay in protocol (TradesInProtocol reports
//     true) and serve exactly the satiation targets.
//
// A Strategy is stateful per run: Place must be called once before Targets
// or OnExchange, and Targets must see non-decreasing rounds. Use a fresh
// value (or call Reset) per replicate.
type Strategy struct {
	// Kind selects the attack.
	Kind Kind
	// Fraction is the fraction of nodes the adversary controls.
	Fraction float64
	// SatiateFraction is the fraction of the system (attacker nodes
	// included) targeted for satiation (0.70 in the paper). Ignored when
	// TargetList is set.
	SatiateFraction float64
	// RotatePeriod, when positive, re-draws the satiated set every that many
	// rounds (Section 2's "intermittently unusable" variant).
	RotatePeriod int
	// TargetList, when non-nil, satiates exactly these node ids (plus the
	// attacker's own nodes) instead of a pseudorandom SatiateFraction —
	// targeted attacks such as grid cuts and rare-resource holders.
	TargetList []int

	n        int
	placed   []int
	targeter Targeter

	// Departure overlay (population churn). The targeters above assume a
	// fixed node universe; under churn a satiated node that departs takes
	// its satiation with it, and a later arrival reusing the index must NOT
	// inherit it. pendingDepartures accumulates NodeDeparted calls; Targets
	// folds them into effective (a Without successor of the targeter's set)
	// and clears them whenever the inner targeter redraws (a redraw
	// re-evaluates targeting from scratch and may legitimately pick the
	// reused index again).
	pendingDepartures []int
	innerSeen         *TargetSet
	effective         *TargetSet
}

// Reset returns the strategy to its pre-Place state so it can host a fresh
// replicate.
func (s *Strategy) Reset() {
	s.n, s.placed, s.targeter = 0, nil, nil
	s.pendingDepartures, s.innerSeen, s.effective = nil, nil, nil
}

// Place implements the placement hook: it selects the attacker's nodes and
// prepares the round targeter. Randomness comes from rng's "placement" and
// "targets" children, matching the streams the gossip engine has always
// used, so a default-configured engine is bit-identical to its pre-strategy
// behavior.
func (s *Strategy) Place(n int, rng *simrng.Source) []int {
	s.n = n
	s.placed = nil
	if s.Kind != None && s.Kind != 0 && s.Fraction > 0 {
		s.placed = PlaceAttackers(n, s.Fraction, rng.Child("placement"))
	}
	trng := rng.Child("targets")
	switch {
	case s.Kind != Ideal && s.Kind != Trade:
		// Crash attackers and the no-attack baseline satiate nobody; the
		// target set is just the attacker nodes themselves so every honest
		// node counts as isolated.
		s.targeter = NewListTargeter(n, s.placed)
	case s.TargetList != nil:
		// An explicit target list is an out-of-band experiment tool (grid
		// cuts, rare-resource holders): it satiates exactly the named nodes
		// whether or not attackers are placed, and is exempt from the
		// zero-attacker inertness below.
		s.targeter = NewListTargeter(n, append(append([]int(nil), s.placed...), s.TargetList...))
	case len(s.placed) == 0:
		// Satiation is delivered by attacker nodes — out of protocol for
		// the ideal attack, through exchanges for the trade attack. With
		// zero attackers placed there is nobody to deliver it, so the
		// attack is inert: no satiated set, no stats regrouping. This is
		// what makes a fraction-0 ideal/trade spec bit-identical to the
		// `none` baseline (pinned by the scenario invariant suite).
		s.targeter = NewListTargeter(n, nil)
	case s.RotatePeriod > 0:
		s.targeter = NewRotatingTargeter(n, s.placed, s.SatiateFraction, s.RotatePeriod, trng)
	default:
		s.targeter = NewStaticTargeter(n, s.placed, s.SatiateFraction, trng)
	}
	return append([]int(nil), s.placed...)
}

// Targets implements the per-round targeting hook. Place must have run.
// The returned set is immutable and shared; the same pointer comes back for
// every round of one targeting epoch.
func (s *Strategy) Targets(round int) *TargetSet {
	if s.targeter == nil {
		panic("attack: Strategy.Targets called before Place")
	}
	inner := s.targeter.Satiated(round)
	if inner != s.innerSeen {
		// New targeting epoch: the targeter re-evaluated its set from
		// scratch, so the historical departure exclusions (folded into the
		// old effective set) no longer apply — a redrawn set targeting a
		// reused index is targeting the new occupant. Departures recorded
		// since the last call are NOT dropped: they precede this round's
		// exchanges whether or not a redraw landed on the same round, so
		// they fold into the fresh set below.
		s.innerSeen, s.effective = inner, inner
	}
	if len(s.pendingDepartures) > 0 {
		s.effective = s.effective.Without(s.pendingDepartures...)
		s.pendingDepartures = s.pendingDepartures[:0]
	}
	return s.effective
}

// NodeDeparted implements sim.DepartureAware: the departing node is removed
// from the effective target set at the next Targets call and stays excluded
// until the underlying targeter redraws (a static targeter never does, so an
// index vacated by a satiated node never re-enters the set for the rest of
// the run — the arrival reusing it starts unsatiated).
func (s *Strategy) NodeDeparted(round, node int) {
	s.pendingDepartures = append(s.pendingDepartures, node)
}

// Satiated makes a placed Strategy usable anywhere a Targeter is expected.
func (s *Strategy) Satiated(round int) *TargetSet { return s.Targets(round) }

// OnExchange implements the in-protocol service decision: trade attackers
// serve exactly the satiation targets; crash and ideal attackers serve
// nobody; a None "adversary" behaves honestly (and controls no nodes
// anyway).
func (s *Strategy) OnExchange(round, attacker, partner int) bool {
	switch s.Kind {
	case Trade:
		return s.Targets(round).Has(partner)
	case Crash, Ideal:
		return false
	default:
		return true
	}
}

// TradesInProtocol reports whether attacker nodes initiate and answer
// protocol exchanges (the trade lotus-eater).
func (s *Strategy) TradesInProtocol() bool { return s.Kind == Trade }

// SatiatesInstantly reports whether targets are satiated out of protocol at
// round start (the ideal lotus-eater).
func (s *Strategy) SatiatesInstantly() bool { return s.Kind == Ideal }

// TargeterFrom adapts any value exposing a per-round Targets hook — in
// practice a sim.Adversary — to the Targeter interface, so simulators can
// feed an adversary's targeting into their existing targeter plumbing
// without each defining the same two-line adapter.
func TargeterFrom(a interface{ Targets(round int) *TargetSet }) Targeter {
	return targeterFrom{a}
}

type targeterFrom struct {
	a interface{ Targets(round int) *TargetSet }
}

func (t targeterFrom) Satiated(round int) *TargetSet { return t.a.Targets(round) }

// Validate reports the first problem with the strategy's parameters, or nil.
// A TargetList is checked for negatives and duplicates here; ids beyond the
// (not yet known) population are caught by ValidateTargetList at the layer
// that knows n, and clamped by the targeter either way.
func (s *Strategy) Validate() error {
	switch {
	case s.Kind < None || s.Kind > Trade:
		return fmt.Errorf("attack: unknown kind %d", s.Kind)
	case s.Fraction < 0 || s.Fraction > 1:
		return fmt.Errorf("attack: Fraction must be in [0,1], got %g", s.Fraction)
	case s.SatiateFraction < 0 || s.SatiateFraction > 1:
		return fmt.Errorf("attack: SatiateFraction must be in [0,1], got %g", s.SatiateFraction)
	case s.RotatePeriod < 0:
		return fmt.Errorf("attack: RotatePeriod must be non-negative, got %d", s.RotatePeriod)
	}
	if s.TargetList != nil {
		if err := ValidateTargetList(0, s.TargetList); err != nil {
			return err
		}
	}
	return nil
}
