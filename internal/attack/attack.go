// Package attack implements the adversary of the paper: attacker placement
// and satiation-target selection for the crash, ideal lotus-eater, and trade
// lotus-eater attacks of Section 2, including the rotating-target variant
// ("by changing who is satiated over time, the attacker could even make the
// service intermittently unusable for all nodes").
//
// The package is deliberately substrate-agnostic: it decides *which* nodes
// the attacker controls and *which* nodes it tries to satiate each round;
// the mechanics of how satiation is delivered live in the protocol
// simulators (internal/gossip, internal/tokenmodel, ...).
package attack

import (
	"fmt"

	"lotuseater/internal/bitset"
	"lotuseater/internal/simrng"
)

// Kind enumerates the attacks evaluated in the paper.
type Kind int

const (
	// None disables the attacker; attacker nodes behave honestly.
	None Kind = iota + 1
	// Crash is the baseline of Figure 1: attacker nodes simply provide no
	// service (crashed, or Byzantine nodes that initiate but never complete
	// exchanges).
	Crash
	// Ideal is the ideal lotus-eater attack: attacker nodes instantly
	// forward every update they receive from the broadcaster to all
	// satiated nodes, outside the protocol, and never trade.
	Ideal
	// Trade is the trade lotus-eater attack: attacker nodes interact only
	// through protocol-dictated exchanges, but give satiated partners every
	// update they have while giving isolated partners nothing.
	Trade
)

// String returns the attack name used in figures and CLI flags.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Crash:
		return "crash"
	case Ideal:
		return "ideal"
	case Trade:
		return "trade"
	default:
		return fmt.Sprintf("attack.Kind(%d)", int(k))
	}
}

// ParseKind maps a CLI name to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "none":
		return None, nil
	case "crash":
		return Crash, nil
	case "ideal":
		return Ideal, nil
	case "trade":
		return Trade, nil
	default:
		return 0, fmt.Errorf("attack: unknown kind %q (want none|crash|ideal|trade)", s)
	}
}

// PlaceAttackers selects round(fraction*n) attacker node ids uniformly at
// random. The paper's x-axis, "fraction of nodes controlled by attacker",
// sweeps this fraction.
func PlaceAttackers(n int, fraction float64, rng *simrng.Source) []int {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	k := int(fraction*float64(n) + 0.5)
	if k > n {
		k = n
	}
	return rng.SampleInts(n, k)
}

// Targeter decides, per round, which nodes the attacker attempts to satiate.
// The returned set is immutable and shared — implementations return the same
// pointer for every round of one targeting epoch, so callers may compare
// pointers (or Epoch) to detect change and hold sets across rounds.
type Targeter interface {
	// Satiated returns the satiation targets for the given round. Attacker
	// nodes themselves are always included: they are "satiated" by
	// definition (they serve the attacker, not themselves).
	Satiated(round int) *TargetSet
}

// DenseTargeter adapts a legacy dense targeter — one that materializes a
// length-n []bool per round — to the sparse Targeter contract. It is the
// compatibility path for external implementations that have not been ported;
// each epoch change costs one O(n) conversion.
func DenseTargeter(f func(round int) []bool) Targeter {
	return &denseTargeter{f: f}
}

type denseTargeter struct {
	f    func(round int) []bool
	last []bool
	set  *TargetSet
}

func (d *denseTargeter) Satiated(round int) *TargetSet {
	dense := d.f(round)
	if d.set != nil && len(dense) == len(d.last) {
		same := true
		for i, v := range dense {
			if v != d.last[i] {
				same = false
				break
			}
		}
		if same {
			return d.set
		}
	}
	bits := bitset.New(len(dense))
	for v, on := range dense {
		if on {
			bits.Add(v)
		}
	}
	next := fromBits(bits)
	next.diffFrom(d.set)
	d.set = next
	d.last = append(d.last[:0], dense...)
	return d.set
}

// StaticTargeter satiates a fixed set: the attacker's own nodes plus enough
// pseudorandomly chosen honest nodes to reach the target fraction. This is
// the paper's primary configuration, with the target fraction fixed at 70%.
type StaticTargeter struct {
	targets *TargetSet
}

var _ Targeter = (*StaticTargeter)(nil)

// NewStaticTargeter builds the static satiation set: all attacker nodes plus
// pseudorandom honest nodes up to round(fraction*n). If the attacker
// controls more than fraction*n nodes already, only attacker nodes are
// targeted.
func NewStaticTargeter(n int, attackers []int, fraction float64, rng *simrng.Source) *StaticTargeter {
	return &StaticTargeter{targets: selectTargets(n, attackers, fraction, rng, nil)}
}

// Satiated implements Targeter.
func (t *StaticTargeter) Satiated(int) *TargetSet { return t.targets }

// RotatingTargeter re-draws the satiated set every period rounds, always
// keeping attacker nodes in it. Section 2 observes that rotating targets can
// make the service intermittently unusable for every node.
//
// Re-draws are diff-tracked: each epoch's set carries Added/Removed journals
// against the previous epoch, and the honest-candidate scratch is reused
// across epochs, so an epoch costs O(n) time (the uniform redraw itself) but
// only O(|satiated| + n/64) fresh allocation — and rounds within an epoch
// cost nothing at all.
type RotatingTargeter struct {
	n         int
	attackers []int
	fraction  float64
	period    int
	rng       *simrng.Source

	epoch   int
	targets *TargetSet
	scratch []int // honest-candidate buffer reused across epochs
}

var _ Targeter = (*RotatingTargeter)(nil)

// NewRotatingTargeter returns a targeter that re-selects targets every
// period rounds (period < 1 is treated as 1).
func NewRotatingTargeter(n int, attackers []int, fraction float64, period int, rng *simrng.Source) *RotatingTargeter {
	if period < 1 {
		period = 1
	}
	att := make([]int, len(attackers))
	copy(att, attackers)
	return &RotatingTargeter{
		n:         n,
		attackers: att,
		fraction:  fraction,
		period:    period,
		rng:       rng,
		epoch:     -1,
	}
}

// Satiated implements Targeter. Calls must be made with non-decreasing
// rounds (the simulation drives time forward).
func (t *RotatingTargeter) Satiated(round int) *TargetSet {
	epoch := round / t.period
	if epoch != t.epoch || t.targets == nil {
		t.epoch = epoch
		next := selectTargets(t.n, t.attackers, t.fraction, t.rng.ChildN("epoch", epoch), &t.scratch)
		next.diffFrom(t.targets)
		t.targets = next
	}
	return t.targets
}

// ListTargeter satiates an explicit node list; used for targeted attacks
// such as satiating a grid cut or a rare-resource holder.
type ListTargeter struct {
	targets *TargetSet
}

var _ Targeter = (*ListTargeter)(nil)

// NewListTargeter marks exactly the given node ids as targets. Hostile
// lists are tolerated by construction: ids outside [0, n) are clamped away
// and duplicates collapse (use ValidateTargetList to reject them loudly
// instead).
func NewListTargeter(n int, nodes []int) *ListTargeter {
	return &ListTargeter{targets: NewTargetSet(n, nodes)}
}

// Satiated implements Targeter.
func (t *ListTargeter) Satiated(int) *TargetSet { return t.targets }

// ValidateTargetList reports the first problem with an explicit target
// list: a negative id, an id >= n (when n > 0; pass n <= 0 when the
// population is not yet known), or a duplicate. The targeters themselves
// clamp silently; validation layers (scenario specs, CLI flags) call this to
// fail fast on hostile input.
func ValidateTargetList(n int, nodes []int) error {
	seen := make(map[int]struct{}, len(nodes))
	for i, v := range nodes {
		if v < 0 {
			return fmt.Errorf("attack: target list entry %d is negative (%d)", i, v)
		}
		if n > 0 && v >= n {
			return fmt.Errorf("attack: target list entry %d (%d) is out of range [0,%d)", i, v, n)
		}
		if _, dup := seen[v]; dup {
			return fmt.Errorf("attack: target list entry %d (%d) is a duplicate", i, v)
		}
		seen[v] = struct{}{}
	}
	return nil
}

// selectTargets draws the epoch's satiation set: every attacker node plus
// uniformly chosen honest nodes up to round(fraction*n). The honest-candidate
// buffer is taken from *scratch when provided, so rotating targeters reuse
// it across epochs. RNG consumption is exactly one SampleInts draw, identical
// to the historical dense implementation, so seeds reproduce the same sets.
func selectTargets(n int, attackers []int, fraction float64, rng *simrng.Source, scratch *[]int) *TargetSet {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	bits := bitset.New(n)
	for _, a := range attackers {
		if a >= 0 && a < n {
			bits.Add(a)
		}
	}
	want := int(fraction*float64(n) + 0.5)
	have := bits.Len()
	if want > have {
		// Pick the remaining targets among honest nodes, uniformly.
		var honest []int
		if scratch != nil {
			honest = (*scratch)[:0]
		}
		for v := 0; v < n; v++ {
			if !bits.Has(v) {
				honest = append(honest, v)
			}
		}
		if scratch != nil {
			*scratch = honest
		}
		for _, idx := range rng.SampleInts(len(honest), want-have) {
			bits.Add(honest[idx])
		}
	}
	return fromBits(bits)
}
