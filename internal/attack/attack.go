// Package attack implements the adversary of the paper: attacker placement
// and satiation-target selection for the crash, ideal lotus-eater, and trade
// lotus-eater attacks of Section 2, including the rotating-target variant
// ("by changing who is satiated over time, the attacker could even make the
// service intermittently unusable for all nodes").
//
// The package is deliberately substrate-agnostic: it decides *which* nodes
// the attacker controls and *which* nodes it tries to satiate each round;
// the mechanics of how satiation is delivered live in the protocol
// simulators (internal/gossip, internal/tokenmodel, ...).
package attack

import (
	"fmt"

	"lotuseater/internal/simrng"
)

// Kind enumerates the attacks evaluated in the paper.
type Kind int

const (
	// None disables the attacker; attacker nodes behave honestly.
	None Kind = iota + 1
	// Crash is the baseline of Figure 1: attacker nodes simply provide no
	// service (crashed, or Byzantine nodes that initiate but never complete
	// exchanges).
	Crash
	// Ideal is the ideal lotus-eater attack: attacker nodes instantly
	// forward every update they receive from the broadcaster to all
	// satiated nodes, outside the protocol, and never trade.
	Ideal
	// Trade is the trade lotus-eater attack: attacker nodes interact only
	// through protocol-dictated exchanges, but give satiated partners every
	// update they have while giving isolated partners nothing.
	Trade
)

// String returns the attack name used in figures and CLI flags.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Crash:
		return "crash"
	case Ideal:
		return "ideal"
	case Trade:
		return "trade"
	default:
		return fmt.Sprintf("attack.Kind(%d)", int(k))
	}
}

// ParseKind maps a CLI name to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "none":
		return None, nil
	case "crash":
		return Crash, nil
	case "ideal":
		return Ideal, nil
	case "trade":
		return Trade, nil
	default:
		return 0, fmt.Errorf("attack: unknown kind %q (want none|crash|ideal|trade)", s)
	}
}

// PlaceAttackers selects round(fraction*n) attacker node ids uniformly at
// random. The paper's x-axis, "fraction of nodes controlled by attacker",
// sweeps this fraction.
func PlaceAttackers(n int, fraction float64, rng *simrng.Source) []int {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	k := int(fraction*float64(n) + 0.5)
	if k > n {
		k = n
	}
	return rng.SampleInts(n, k)
}

// Targeter decides, per round, which nodes the attacker attempts to satiate.
// The returned slice is indexed by node id; implementations must treat it as
// immutable once returned for a round.
type Targeter interface {
	// Satiated returns the satiation targets for the given round. Attacker
	// nodes themselves are always included: they are "satiated" by
	// definition (they serve the attacker, not themselves).
	Satiated(round int) []bool
}

// StaticTargeter satiates a fixed set: the attacker's own nodes plus enough
// pseudorandomly chosen honest nodes to reach the target fraction. This is
// the paper's primary configuration, with the target fraction fixed at 70%.
type StaticTargeter struct {
	targets []bool
}

var _ Targeter = (*StaticTargeter)(nil)

// NewStaticTargeter builds the static satiation set: all attacker nodes plus
// pseudorandom honest nodes up to round(fraction*n). If the attacker
// controls more than fraction*n nodes already, only attacker nodes are
// targeted.
func NewStaticTargeter(n int, attackers []int, fraction float64, rng *simrng.Source) *StaticTargeter {
	return &StaticTargeter{targets: selectTargets(n, attackers, fraction, rng)}
}

// Satiated implements Targeter.
func (t *StaticTargeter) Satiated(int) []bool { return t.targets }

// RotatingTargeter re-draws the satiated set every period rounds, always
// keeping attacker nodes in it. Section 2 observes that rotating targets can
// make the service intermittently unusable for every node.
type RotatingTargeter struct {
	n         int
	attackers []int
	fraction  float64
	period    int
	rng       *simrng.Source

	epoch   int
	targets []bool
}

var _ Targeter = (*RotatingTargeter)(nil)

// NewRotatingTargeter returns a targeter that re-selects targets every
// period rounds (period < 1 is treated as 1).
func NewRotatingTargeter(n int, attackers []int, fraction float64, period int, rng *simrng.Source) *RotatingTargeter {
	if period < 1 {
		period = 1
	}
	att := make([]int, len(attackers))
	copy(att, attackers)
	return &RotatingTargeter{
		n:         n,
		attackers: att,
		fraction:  fraction,
		period:    period,
		rng:       rng,
		epoch:     -1,
	}
}

// Satiated implements Targeter. Calls must be made with non-decreasing
// rounds (the simulation drives time forward).
func (t *RotatingTargeter) Satiated(round int) []bool {
	epoch := round / t.period
	if epoch != t.epoch || t.targets == nil {
		t.epoch = epoch
		t.targets = selectTargets(t.n, t.attackers, t.fraction, t.rng.ChildN("epoch", epoch))
	}
	return t.targets
}

// ListTargeter satiates an explicit node list; used for targeted attacks
// such as satiating a grid cut or a rare-resource holder.
type ListTargeter struct {
	targets []bool
}

var _ Targeter = (*ListTargeter)(nil)

// NewListTargeter marks exactly the given node ids as targets.
func NewListTargeter(n int, nodes []int) *ListTargeter {
	targets := make([]bool, n)
	for _, v := range nodes {
		if v >= 0 && v < n {
			targets[v] = true
		}
	}
	return &ListTargeter{targets: targets}
}

// Satiated implements Targeter.
func (t *ListTargeter) Satiated(int) []bool { return t.targets }

func selectTargets(n int, attackers []int, fraction float64, rng *simrng.Source) []bool {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	targets := make([]bool, n)
	for _, a := range attackers {
		if a >= 0 && a < n {
			targets[a] = true
		}
	}
	want := int(fraction*float64(n) + 0.5)
	have := 0
	for _, t := range targets {
		if t {
			have++
		}
	}
	if want <= have {
		return targets
	}
	// Pick the remaining targets among honest nodes, uniformly.
	honest := make([]int, 0, n-have)
	for v := 0; v < n; v++ {
		if !targets[v] {
			honest = append(honest, v)
		}
	}
	for _, idx := range rng.SampleInts(len(honest), want-have) {
		targets[honest[idx]] = true
	}
	return targets
}

// Count returns the number of true entries; a convenience for tests and
// reporting.
func Count(targets []bool) int {
	n := 0
	for _, t := range targets {
		if t {
			n++
		}
	}
	return n
}
