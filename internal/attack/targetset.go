package attack

import (
	"sort"

	"lotuseater/internal/bitset"
)

// TargetSet is the satiated set for one targeting epoch: a bitset-backed
// membership index plus a materialized ascending member list, so consumers
// get O(1) membership queries and O(|set|) iteration instead of scanning a
// dense length-n []bool every round. A TargetSet also carries a change
// journal — the node ids added and removed relative to the previous epoch of
// the same targeter — so incremental consumers (per-node flags, defense
// state) can apply O(|changed|) updates instead of rebuilding.
//
// A TargetSet is immutable once returned by a targeter and stays valid for
// the rest of the run: simulators may hold the pointer across rounds (the
// gossip engine keeps the release-round set of every live update). Targeters
// whose set is static return the same pointer every round, so steady-state
// rounds allocate nothing on the targeting path.
type TargetSet struct {
	bits    *bitset.Set
	members []int
	epoch   int
	added   []int
	removed []int
}

// NewTargetSet builds the set containing the given node ids over a universe
// of n nodes. Out-of-range ids are clamped away (dropped) and duplicates
// collapse; this is the documented hostile-input behavior of ListTargeter.
// The set's epoch is 0 and its change journal reports every member as added.
func NewTargetSet(n int, nodes []int) *TargetSet {
	bits := bitset.New(n)
	for _, v := range nodes {
		if v >= 0 && v < n {
			bits.Add(v)
		}
	}
	return fromBits(bits)
}

// fromBits wraps an already-populated bitset, materializing the member list
// in ascending order. The journal marks everything added (epoch 0).
func fromBits(bits *bitset.Set) *TargetSet {
	members := make([]int, 0, bits.Len())
	bits.ForEach(func(i int) { members = append(members, i) })
	return &TargetSet{bits: bits, members: members, added: members}
}

// Cap returns the universe size n the set was built over.
func (t *TargetSet) Cap() int { return t.bits.Cap() }

// Len returns the number of targeted nodes.
func (t *TargetSet) Len() int { return len(t.members) }

// Has reports whether node v is targeted. Out-of-range ids read as false.
func (t *TargetSet) Has(v int) bool { return t.bits.Has(v) }

// Members returns the targeted node ids in ascending order. Callers must
// treat the slice as read-only; it is shared by every caller for the epoch.
func (t *TargetSet) Members() []int { return t.members }

// Epoch identifies the targeting epoch this set belongs to. Two sets from
// the same targeter with equal epochs are the same set; consumers caching
// per-node state keyed on the target set should invalidate when the epoch
// (or the pointer) changes.
func (t *TargetSet) Epoch() int { return t.epoch }

// Added returns the node ids targeted in this epoch that were not targeted
// in the previous one, ascending. For a targeter's first epoch it equals
// Members. Read-only, like Members.
func (t *TargetSet) Added() []int { return t.added }

// Removed returns the node ids targeted in the previous epoch but not in
// this one, ascending. Read-only, like Members.
func (t *TargetSet) Removed() []int { return t.removed }

// Dense materializes the set as a length-Cap []bool, the representation the
// Targeter contract used before sparse sets. It reuses buf when it is large
// enough. This is the compatibility bridge for callers that still want a
// dense view (tests, legacy analysis code); hot paths should use Has and
// Members instead.
func (t *TargetSet) Dense(buf []bool) []bool {
	n := t.Cap()
	if cap(buf) >= n {
		buf = buf[:n]
		for i := range buf {
			buf[i] = false
		}
	} else {
		buf = make([]bool, n)
	}
	for _, v := range t.members {
		buf[v] = true
	}
	return buf
}

// diffFrom fills t's change journal with the symmetric difference against
// prev (word-wise, O(n/64 + |changed|)) and stamps the successor epoch.
// A nil prev leaves the epoch-0 "everything added" journal in place. A prev
// over a different universe size (a buggy legacy dense targeter changing
// its slice length mid-run) cannot be diffed word-wise; the journal then
// reports everything removed and re-added, and the simulators' Cap checks
// surface the actual mistake with a proper error instead of a bitset panic.
func (t *TargetSet) diffFrom(prev *TargetSet) {
	if prev == nil {
		return
	}
	t.epoch = prev.epoch + 1
	if prev.Cap() != t.Cap() {
		t.added, t.removed = t.members, prev.members
		return
	}
	var added, removed []int
	t.bits.DiffEach(prev.bits, func(v int) { added = append(added, v) })
	prev.bits.DiffEach(t.bits, func(v int) { removed = append(removed, v) })
	t.added, t.removed = added, removed
}

// Without returns the successor set with the given nodes removed: same
// universe, epoch+1, and a change journal whose Removed lists exactly the
// nodes that were present (Added is empty). Nodes already absent or out of
// range are ignored; if nothing changes, t itself is returned (no epoch
// bump), so callers keying on pointer identity see no spurious new epoch.
// This is the lifecycle-correctness primitive: under churn a departed
// node's satiation leaves with it, and journal consumers (per-node target
// flags) apply the removal in O(|removed|) like any other epoch change.
func (t *TargetSet) Without(nodes ...int) *TargetSet {
	removed := make([]int, 0, len(nodes))
	for _, v := range nodes {
		if t.bits.Has(v) {
			removed = append(removed, v)
		}
	}
	if len(removed) == 0 {
		return t
	}
	sort.Ints(removed)
	bits := t.bits.Clone()
	for _, v := range removed {
		bits.Remove(v)
	}
	members := make([]int, 0, bits.Len())
	bits.ForEach(func(i int) { members = append(members, i) })
	return &TargetSet{
		bits:    bits,
		members: members,
		epoch:   t.epoch + 1,
		removed: removed,
	}
}

// Count returns the number of targeted nodes; a convenience mirroring the
// old dense-slice helper for tests and reporting.
func Count(t *TargetSet) int {
	if t == nil {
		return 0
	}
	return t.Len()
}
