package attack

import (
	"testing"

	"lotuseater/internal/simrng"
)

// placeSatiating builds a placed strategy with at least one honest node in
// the satiated set and returns (strategy, one satiated honest node).
func placeSatiating(t *testing.T, kind Kind, rotate int) (*Strategy, int) {
	t.Helper()
	s := &Strategy{Kind: kind, Fraction: 0.1, SatiateFraction: 0.5, RotatePeriod: rotate}
	s.Place(40, simrng.New(7))
	attackers := make(map[int]bool)
	for _, a := range s.placed {
		attackers[a] = true
	}
	for _, v := range s.Targets(0).Members() {
		if !attackers[v] {
			return s, v
		}
	}
	t.Fatal("no satiated honest node in target set")
	return nil, 0
}

func TestTargetSetWithout(t *testing.T) {
	base := NewTargetSet(10, []int{1, 3, 5, 7})
	got := base.Without(3, 7, 9) // 9 is not a member: ignored
	if got == base {
		t.Fatal("Without with removals returned the same set")
	}
	if got.Epoch() != base.Epoch()+1 {
		t.Fatalf("epoch = %d, want %d", got.Epoch(), base.Epoch()+1)
	}
	if got.Has(3) || got.Has(7) || !got.Has(1) || !got.Has(5) {
		t.Fatalf("membership wrong after Without: members=%v", got.Members())
	}
	if want := []int{3, 7}; len(got.Removed()) != 2 || got.Removed()[0] != want[0] || got.Removed()[1] != want[1] {
		t.Fatalf("Removed = %v, want %v", got.Removed(), want)
	}
	if len(got.Added()) != 0 {
		t.Fatalf("Added = %v, want empty", got.Added())
	}
	// Base set is untouched (immutability).
	if !base.Has(3) || base.Len() != 4 {
		t.Fatal("Without mutated the receiver")
	}
	// No-op removals return the receiver itself: no spurious epoch change
	// for pointer-keyed consumers.
	if same := got.Without(9, 3); same != got {
		t.Fatal("Without with no effective removals allocated a new epoch")
	}
}

// TestDepartureDoesNotLeakSatiation is the regression test for the
// fixed-universe assumption in target-set epoch sharing: a satiated node
// departs, a new node arrives reusing its index, and — with a static
// targeter, which never redraws — the reused index must not inherit the
// old occupant's satiation for the rest of the run.
func TestDepartureDoesNotLeakSatiation(t *testing.T) {
	for _, kind := range []Kind{Ideal, Trade} {
		s, victim := placeSatiating(t, kind, 0)
		if !s.Targets(3).Has(victim) {
			t.Fatalf("kind %v: node %d not satiated before departure", kind, victim)
		}
		s.NodeDeparted(4, victim)
		for round := 4; round < 30; round++ {
			if s.Targets(round).Has(victim) {
				t.Fatalf("kind %v: reused index %d inherited satiation at round %d", kind, victim, round)
			}
		}
		if kind == Trade && s.OnExchange(10, s.placed[0], victim) {
			t.Fatalf("trade attacker still serves departed index %d", victim)
		}
	}
}

func TestDepartureJournalReportsRemoval(t *testing.T) {
	s, victim := placeSatiating(t, Ideal, 0)
	before := s.Targets(2)
	s.NodeDeparted(3, victim)
	after := s.Targets(3)
	if after == before {
		t.Fatal("departure did not produce a new target-set epoch")
	}
	found := false
	for _, v := range after.Removed() {
		if v == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("journal Removed %v does not contain departed node %d", after.Removed(), victim)
	}
	// Stable afterwards: same pointer every round until the next event.
	if s.Targets(4) != after || s.Targets(9) != after {
		t.Fatal("effective set not stable across rounds after departure")
	}
}

// A rotation redraw legitimately re-evaluates targeting: exclusions from
// before the redraw are dropped (the redraw may target the index's new
// occupant), while the redrawn set itself is still correct.
func TestDepartureExclusionResetsOnRedraw(t *testing.T) {
	s, victim := placeSatiating(t, Ideal, 5)
	s.NodeDeparted(1, victim)
	if s.Targets(1).Has(victim) {
		t.Fatal("exclusion not applied within the epoch")
	}
	// After the period boundary the rotating targeter redraws; whether the
	// new set contains the index is the targeter's call again.
	redrawn := s.Targets(5)
	inner := s.targeter.Satiated(5)
	if redrawn != inner {
		t.Fatal("post-redraw effective set should be the targeter's fresh set")
	}
}

// A departure recorded in the same round as a redraw still applies: the
// node left before any exchange of that round.
func TestDepartureSameRoundAsRedraw(t *testing.T) {
	s, _ := placeSatiating(t, Ideal, 5)
	// Find an honest node satiated in the *second* epoch.
	inner := s.targeter.Satiated(5)
	attackers := make(map[int]bool)
	for _, a := range s.placed {
		attackers[a] = true
	}
	victim := -1
	for _, v := range inner.Members() {
		if !attackers[v] {
			victim = v
			break
		}
	}
	if victim < 0 {
		t.Skip("second epoch satiates no honest node at this seed")
	}
	s2, _ := placeSatiating(t, Ideal, 5)
	s2.Targets(4) // advance into epoch 0
	s2.NodeDeparted(5, victim)
	if s2.Targets(5).Has(victim) {
		t.Fatal("same-round departure dropped by the redraw")
	}
}

func TestResetClearsDepartures(t *testing.T) {
	s, victim := placeSatiating(t, Ideal, 0)
	s.NodeDeparted(2, victim)
	_ = s.Targets(2)
	s.Reset()
	s.Place(40, simrng.New(7))
	if !s.Targets(0).Has(victim) {
		t.Fatal("Reset did not clear departure exclusions (fresh replicate inherited churn)")
	}
}
