package attack

import (
	"testing"

	"lotuseater/internal/simrng"
)

// TestStrategyPlacement: Place honors kind and fraction, and derives the
// same nodes as PlaceAttackers from the "placement" child stream.
func TestStrategyPlacement(t *testing.T) {
	const n = 100
	rng := simrng.New(5)
	want := PlaceAttackers(n, 0.25, rng.Child("placement"))

	s := &Strategy{Kind: Trade, Fraction: 0.25, SatiateFraction: 0.7}
	got := s.Place(n, simrng.New(5))
	if len(got) != len(want) {
		t.Fatalf("placed %d attackers, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("placement diverges at %d: %d vs %d", i, got[i], want[i])
		}
	}

	none := &Strategy{Kind: None, Fraction: 0.5}
	if placed := none.Place(n, simrng.New(5)); len(placed) != 0 {
		t.Fatalf("None adversary placed %d nodes", len(placed))
	}
}

// TestStrategyTargets: ideal and trade satiate the configured fraction
// (attackers included); crash and none target only the attacker's nodes.
func TestStrategyTargets(t *testing.T) {
	n := 200
	for _, kind := range []Kind{Ideal, Trade} {
		s := &Strategy{Kind: kind, Fraction: 0.1, SatiateFraction: 0.6}
		placed := s.Place(n, simrng.New(3))
		targets := s.Targets(0)
		if got, want := Count(targets), int(0.6*float64(n)+0.5); got != want {
			t.Fatalf("%v: %d targets, want %d", kind, got, want)
		}
		for _, a := range placed {
			if !targets.Has(a) {
				t.Fatalf("%v: attacker %d not in its own satiated set", kind, a)
			}
		}
	}
	crash := &Strategy{Kind: Crash, Fraction: 0.1, SatiateFraction: 0.6}
	placed := crash.Place(n, simrng.New(3))
	if got := Count(crash.Targets(0)); got != len(placed) {
		t.Fatalf("crash targets %d nodes, want its %d attackers only", got, len(placed))
	}
}

// TestStrategyZeroAttackersInert: with no attacker nodes placed there is
// nobody to deliver satiation, so the fraction-driven ideal and trade
// attacks — static or rotating — satiate nobody, exactly like the none
// baseline. An explicit TargetList is the one exemption: it is an
// out-of-band experiment tool and keeps satiating its named nodes.
func TestStrategyZeroAttackersInert(t *testing.T) {
	const n = 120
	for _, s := range []*Strategy{
		{Kind: Ideal, Fraction: 0, SatiateFraction: 0.7},
		{Kind: Trade, Fraction: 0, SatiateFraction: 0.7},
		{Kind: Ideal, Fraction: 0, SatiateFraction: 0.7, RotatePeriod: 5},
	} {
		if placed := s.Place(n, simrng.New(9)); len(placed) != 0 {
			t.Fatalf("%v fraction 0 placed %d attackers", s.Kind, len(placed))
		}
		if got := Count(s.Targets(0)); got != 0 {
			t.Fatalf("%v with zero attackers satiated %d nodes", s.Kind, got)
		}
	}
	listed := &Strategy{Kind: Trade, Fraction: 0, TargetList: []int{3, 7, 11}}
	listed.Place(n, simrng.New(9))
	if got := Count(listed.Targets(0)); got != 3 {
		t.Fatalf("explicit target list with zero attackers satiated %d nodes, want its 3", got)
	}
}

// TestStrategyRotation: with a rotate period the satiated set is re-drawn
// across epochs but stable within one.
func TestStrategyRotation(t *testing.T) {
	const n = 150
	s := &Strategy{Kind: Ideal, Fraction: 0.1, SatiateFraction: 0.5, RotatePeriod: 10}
	s.Place(n, simrng.New(9))
	early := s.Targets(0)
	if within := s.Targets(9); within != early {
		t.Fatal("targets changed within one epoch")
	}
	later := s.Targets(10)
	if len(later.Added()) == 0 && len(later.Removed()) == 0 {
		t.Fatal("targets did not rotate across epochs")
	}
}

// TestStrategyOnExchange: trade serves exactly the satiated set; crash and
// ideal serve nobody in protocol.
func TestStrategyOnExchange(t *testing.T) {
	const n = 100
	trade := &Strategy{Kind: Trade, Fraction: 0.1, SatiateFraction: 0.5}
	trade.Place(n, simrng.New(4))
	targets := trade.Targets(0)
	if targets.Len() == 0 {
		t.Fatal("trade strategy satiated nobody")
	}
	att := targets.Members()[0]
	for v := 0; v < n; v++ {
		if got := trade.OnExchange(0, att, v); got != targets.Has(v) {
			t.Fatalf("trade OnExchange(%d) = %v, targets.Has(%d) = %v", v, got, v, targets.Has(v))
		}
	}
	for _, kind := range []Kind{Crash, Ideal} {
		s := &Strategy{Kind: kind, Fraction: 0.1, SatiateFraction: 0.5}
		s.Place(n, simrng.New(4))
		for v := 0; v < n; v += 7 {
			if s.OnExchange(0, 0, v) {
				t.Fatalf("%v attacker served node %d in protocol", kind, v)
			}
		}
	}
}

// TestStrategyCapabilities: the optional-interface probes reflect the kind.
func TestStrategyCapabilities(t *testing.T) {
	cases := []struct {
		kind            Kind
		trades, instant bool
	}{
		{None, false, false},
		{Crash, false, false},
		{Ideal, false, true},
		{Trade, true, false},
	}
	for _, c := range cases {
		s := &Strategy{Kind: c.kind}
		if s.TradesInProtocol() != c.trades {
			t.Fatalf("%v TradesInProtocol = %v", c.kind, s.TradesInProtocol())
		}
		if s.SatiatesInstantly() != c.instant {
			t.Fatalf("%v SatiatesInstantly = %v", c.kind, s.SatiatesInstantly())
		}
	}
}

// TestStrategyTargetList: an explicit target list satiates exactly those
// nodes plus the attacker's own.
func TestStrategyTargetList(t *testing.T) {
	const n = 50
	s := &Strategy{Kind: Ideal, TargetList: []int{3, 7, 11}}
	s.Place(n, simrng.New(2))
	targets := s.Targets(0)
	if Count(targets) != 3 || !targets.Has(3) || !targets.Has(7) || !targets.Has(11) {
		t.Fatalf("target list not honored: %d satiated", Count(targets))
	}
}

// TestStrategyReset: after Reset the strategy can host a fresh run.
func TestStrategyReset(t *testing.T) {
	s := &Strategy{Kind: Trade, Fraction: 0.2, SatiateFraction: 0.5}
	first := s.Place(100, simrng.New(1))
	s.Reset()
	second := s.Place(100, simrng.New(1))
	if len(first) != len(second) {
		t.Fatalf("re-placed %d attackers, want %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("Reset did not restore pre-Place determinism")
		}
	}
}

// TestStrategyValidate rejects out-of-range parameters.
func TestStrategyValidate(t *testing.T) {
	bad := []*Strategy{
		{Kind: Kind(99)},
		{Kind: Trade, Fraction: -0.1},
		{Kind: Trade, Fraction: 1.5},
		{Kind: Ideal, SatiateFraction: 2},
		{Kind: Ideal, RotatePeriod: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d: Validate accepted %+v", i, s)
		}
	}
	if err := (&Strategy{Kind: Trade, Fraction: 0.3, SatiateFraction: 0.7}).Validate(); err != nil {
		t.Fatalf("valid strategy rejected: %v", err)
	}
}
