package swarm

import (
	"fmt"
	"testing"

	"lotuseater/internal/attack"
	"lotuseater/internal/sim"
	"lotuseater/internal/simrng"
)

// checkRarityParity asserts the incrementally maintained rarity state — every
// node's per-piece neighbor-view counters and the global holder counts —
// equals a from-scratch recount of the current swarm state.
func checkRarityParity(t *testing.T, s *Sim) {
	t.Helper()
	row := make([]uint16, s.cfg.Pieces)
	for v := 0; v < s.n; v++ {
		s.recountRarityRow(v, row)
		live := s.rarityRow(v)
		for p := range row {
			if live[p] != row[p] {
				t.Fatalf("tick %d node %d piece %d: maintained rarity %d, recount %d",
					s.tick, v, p, live[p], row[p])
			}
		}
	}
	holders := make([]int32, s.cfg.Pieces)
	s.recountHolders(holders)
	for p := range holders {
		if s.holders[p] != holders[p] {
			t.Fatalf("tick %d piece %d: maintained holders %d, recount %d",
				s.tick, p, s.holders[p], holders[p])
		}
	}
}

// runWithParityChecks steps the sim to completion, validating the rarity
// invariant at every tick boundary, and returns the Result.
func runWithParityChecks(t *testing.T, cfg Config, seed uint64, opts ...Option) Result {
	t.Helper()
	s, err := New(cfg, seed, opts...)
	if err != nil {
		t.Fatal(err)
	}
	checkRarityParity(t, s)
	for !s.Finished() {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		checkRarityParity(t, s)
	}
	return s.finish()
}

// TestIncrementalRarityMatchesRescan is the incremental-vs-rescan parity
// suite: for every attack kind (both the strategy layer's attack.Kind and
// the swarm's Config.Attack targeting rules), both piece-selection
// policies, and both evaluation paths (sequential and sharded — the
// workers-1 vs workers-8 split on a multicore box), the delta-maintained
// rarity counters must equal a from-scratch recount at every tick boundary.
// The configs exercise every mutation source the deltas must cover: protocol
// transfers, endgame pulls, attacker fills, completion departures
// (SeedAfterComplete=false), and seed departure.
func TestIncrementalRarityMatchesRescan(t *testing.T) {
	base := func() Config {
		cfg := DefaultConfig()
		cfg.Leechers = 48
		cfg.Pieces = 40
		cfg.PeerSetSize = 12
		cfg.Ticks = 150
		cfg.SeedDepartTick = 12
		cfg.SeedAfterComplete = false
		return cfg
	}
	type advCase struct {
		name string
		cfg  func() Config
		adv  func() sim.Adversary
	}
	cases := []advCase{
		{"adv-none", base, nil},
		{"adv-crash", base, func() sim.Adversary {
			return &attack.Strategy{Kind: attack.Crash, Fraction: 0.10}
		}},
		{"adv-ideal", base, func() sim.Adversary {
			return &attack.Strategy{Kind: attack.Ideal, Fraction: 0.05, SatiateFraction: 0.35}
		}},
		{"adv-trade", base, func() sim.Adversary {
			return &attack.Strategy{Kind: attack.Trade, Fraction: 0.10, SatiateFraction: 0.30, RotatePeriod: 7}
		}},
		{"cfg-attack-top", func() Config {
			cfg := base()
			cfg.Attack = AttackTopUploaders
			cfg.AttackerUplink = 12
			cfg.AttackTargets = 4
			return cfg
		}, nil},
		{"cfg-attack-rare", func() Config {
			cfg := base()
			cfg.Attack = AttackRarePieceHolders
			cfg.AttackerUplink = 8
			cfg.AttackTargets = 3
			cfg.AttackStartTick = 4
			cfg.AttackStopTick = 60
			return cfg
		}, nil},
	}
	for _, c := range cases {
		for _, sel := range []Selection{SelectRandom, SelectRarestFirst} {
			for _, par := range []bool{false, true} {
				name := fmt.Sprintf("%s/%v/parallel=%v", c.name, sel, par)
				t.Run(name, func(t *testing.T) {
					cfg := c.cfg()
					cfg.Selection = sel
					opts := []Option{WithEvalParallel(par)}
					if c.adv != nil {
						opts = append(opts, WithAdversary(c.adv()))
					}
					runWithParityChecks(t, cfg, 42, opts...)
				})
			}
		}
	}
}

// TestIncrementalRarityProperty is the property-test half of the parity
// suite: random small configurations — population, piece count, peer-set
// size, rotation, endgame, departure behavior, attack choice — each run to
// completion with the rarity invariant recounted at every tick boundary,
// and with the sequential and sharded evaluation paths required to agree on
// the final Result.
func TestIncrementalRarityProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	rng := simrng.New(2026)
	for trial := 0; trial < 25; trial++ {
		cfg := DefaultConfig()
		cfg.Leechers = 10 + rng.IntN(60)
		cfg.Pieces = 1 + rng.IntN(70)
		cfg.UploadSlots = 1 + rng.IntN(5)
		cfg.RotateInterval = 1 + rng.IntN(5)
		cfg.PeerSetSize = 2 + rng.IntN(14)
		cfg.Ticks = 40 + rng.IntN(120)
		cfg.Selection = SelectRandom
		if rng.Bool(0.5) {
			cfg.Selection = SelectRarestFirst
		}
		cfg.RandomFirstCount = rng.IntN(4)
		cfg.Endgame = rng.Bool(0.7)
		cfg.EndgameThreshold = 1 + rng.IntN(4)
		if rng.Bool(0.5) {
			cfg.SeedDepartTick = 1 + rng.IntN(30)
		}
		cfg.SeedAfterComplete = rng.Bool(0.5)

		var mkAdv func() sim.Adversary
		switch rng.IntN(6) {
		case 1:
			cfg.Attack = AttackTopUploaders
			cfg.AttackerUplink = 1 + rng.IntN(16)
			cfg.AttackTargets = 1 + rng.IntN(5)
			cfg.AttackStartTick = rng.IntN(10)
		case 2:
			cfg.Attack = AttackRarePieceHolders
			cfg.AttackerUplink = 1 + rng.IntN(16)
			cfg.AttackTargets = 1 + rng.IntN(5)
			cfg.AttackStartTick = rng.IntN(10)
			cfg.AttackStopTick = cfg.AttackStartTick + 20 + rng.IntN(40)
		case 3:
			mkAdv = func() sim.Adversary {
				return &attack.Strategy{Kind: attack.Crash, Fraction: 0.15}
			}
		case 4:
			mkAdv = func() sim.Adversary {
				return &attack.Strategy{Kind: attack.Ideal, Fraction: 0.08, SatiateFraction: 0.4}
			}
		case 5:
			// Drawn outside the closure: mkAdv runs once per evaluation
			// path, and both paths must face the identical adversary.
			rotate := 1 + rng.IntN(8)
			mkAdv = func() sim.Adversary {
				return &attack.Strategy{Kind: attack.Trade, Fraction: 0.12, SatiateFraction: 0.3, RotatePeriod: rotate}
			}
		}
		seed := rng.Uint64()
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			var results [2]Result
			for i, par := range []bool{false, true} {
				opts := []Option{WithEvalParallel(par)}
				if mkAdv != nil {
					opts = append(opts, WithAdversary(mkAdv()))
				}
				results[i] = runWithParityChecks(t, cfg, seed, opts...)
			}
			if results[0] != results[1] {
				t.Fatalf("sharded evaluation diverged from sequential:\n%+v\nvs\n%+v", results[0], results[1])
			}
		})
	}
}
