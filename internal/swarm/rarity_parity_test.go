package swarm

import (
	"fmt"
	"testing"

	"lotuseater/internal/attack"
	"lotuseater/internal/sim"
	"lotuseater/internal/simrng"
)

// checkRarityParity asserts the incrementally maintained rarity state — every
// node's per-piece neighbor-view counters and the global holder counts —
// equals a from-scratch recount of the current swarm state.
func checkRarityParity(t *testing.T, s *Sim) {
	t.Helper()
	row := make([]int, s.cfg.Pieces)
	for v := 0; v < s.n; v++ {
		s.recountRarityRow(v, row)
		for p := range row {
			if live := s.rarityAt(v, p); live != row[p] {
				t.Fatalf("tick %d node %d piece %d: maintained rarity %d, recount %d",
					s.tick, v, p, live, row[p])
			}
		}
	}
	holders := make([]int32, s.cfg.Pieces)
	s.recountHolders(holders)
	for p := range holders {
		if s.holders[p] != holders[p] {
			t.Fatalf("tick %d piece %d: maintained holders %d, recount %d",
				s.tick, p, s.holders[p], holders[p])
		}
	}
}

// runWithParityChecks steps the sim to completion, validating the rarity
// invariant at every tick boundary, and returns the Result.
func runWithParityChecks(t *testing.T, cfg Config, seed uint64, opts ...Option) Result {
	t.Helper()
	s, err := New(cfg, seed, opts...)
	if err != nil {
		t.Fatal(err)
	}
	checkRarityParity(t, s)
	for !s.Finished() {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		checkRarityParity(t, s)
	}
	return s.finish()
}

// TestIncrementalRarityMatchesRescan is the incremental-vs-rescan parity
// suite: for every attack kind (both the strategy layer's attack.Kind and
// the swarm's Config.Attack targeting rules), both piece-selection
// policies, and both evaluation paths (sequential and sharded — the
// workers-1 vs workers-8 split on a multicore box), the delta-maintained
// rarity counters must equal a from-scratch recount at every tick boundary.
// Every case additionally runs with uint16 counter rows forced (the
// fallback for degrees above 255; these configs naturally pick uint8) and
// both widths must produce the identical Result.
// The configs exercise every mutation source the deltas must cover: protocol
// transfers, endgame pulls, attacker fills, completion departures
// (SeedAfterComplete=false), and seed departure.
func TestIncrementalRarityMatchesRescan(t *testing.T) {
	base := func() Config {
		cfg := DefaultConfig()
		cfg.Leechers = 48
		cfg.Pieces = 40
		cfg.PeerSetSize = 12
		cfg.Ticks = 150
		cfg.SeedDepartTick = 12
		cfg.SeedAfterComplete = false
		return cfg
	}
	type advCase struct {
		name string
		cfg  func() Config
		adv  func() sim.Adversary
	}
	cases := []advCase{
		{"adv-none", base, nil},
		{"adv-crash", base, func() sim.Adversary {
			return &attack.Strategy{Kind: attack.Crash, Fraction: 0.10}
		}},
		{"adv-ideal", base, func() sim.Adversary {
			return &attack.Strategy{Kind: attack.Ideal, Fraction: 0.05, SatiateFraction: 0.35}
		}},
		{"adv-trade", base, func() sim.Adversary {
			return &attack.Strategy{Kind: attack.Trade, Fraction: 0.10, SatiateFraction: 0.30, RotatePeriod: 7}
		}},
		{"cfg-attack-top", func() Config {
			cfg := base()
			cfg.Attack = AttackTopUploaders
			cfg.AttackerUplink = 12
			cfg.AttackTargets = 4
			return cfg
		}, nil},
		{"cfg-attack-rare", func() Config {
			cfg := base()
			cfg.Attack = AttackRarePieceHolders
			cfg.AttackerUplink = 8
			cfg.AttackTargets = 3
			cfg.AttackStartTick = 4
			cfg.AttackStopTick = 60
			return cfg
		}, nil},
	}
	for _, c := range cases {
		for _, sel := range []Selection{SelectRandom, SelectRarestFirst} {
			for _, par := range []bool{false, true} {
				name := fmt.Sprintf("%s/%v/parallel=%v", c.name, sel, par)
				t.Run(name, func(t *testing.T) {
					cfg := c.cfg()
					cfg.Selection = sel
					// mkOpts builds a fresh option set per run: the
					// adversary carries state, so narrow and wide must
					// each get their own instance.
					mkOpts := func(extra ...Option) []Option {
						opts := append([]Option{WithEvalParallel(par)}, extra...)
						if c.adv != nil {
							opts = append(opts, WithAdversary(c.adv()))
						}
						return opts
					}
					narrow := runWithParityChecks(t, cfg, 42, mkOpts()...)
					wide := runWithParityChecks(t, cfg, 42, mkOpts(WithWideRarity())...)
					if narrow != wide {
						t.Fatalf("uint16 rarity rows diverged from uint8:\n%+v\nvs\n%+v", wide, narrow)
					}
				})
			}
		}
	}
}

// TestIncrementalRarityProperty is the property-test half of the parity
// suite: random small configurations — population, piece count, peer-set
// size, rotation, endgame, departure behavior, attack choice — each run to
// completion with the rarity invariant recounted at every tick boundary,
// and with the sequential and sharded evaluation paths required to agree on
// the final Result.
func TestIncrementalRarityProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	rng := simrng.New(2026)
	for trial := 0; trial < 25; trial++ {
		cfg := DefaultConfig()
		cfg.Leechers = 10 + rng.IntN(60)
		cfg.Pieces = 1 + rng.IntN(70)
		cfg.UploadSlots = 1 + rng.IntN(5)
		cfg.RotateInterval = 1 + rng.IntN(5)
		cfg.PeerSetSize = 2 + rng.IntN(14)
		cfg.Ticks = 40 + rng.IntN(120)
		cfg.Selection = SelectRandom
		if rng.Bool(0.5) {
			cfg.Selection = SelectRarestFirst
		}
		cfg.RandomFirstCount = rng.IntN(4)
		cfg.Endgame = rng.Bool(0.7)
		cfg.EndgameThreshold = 1 + rng.IntN(4)
		if rng.Bool(0.5) {
			cfg.SeedDepartTick = 1 + rng.IntN(30)
		}
		cfg.SeedAfterComplete = rng.Bool(0.5)

		var mkAdv func() sim.Adversary
		switch rng.IntN(6) {
		case 1:
			cfg.Attack = AttackTopUploaders
			cfg.AttackerUplink = 1 + rng.IntN(16)
			cfg.AttackTargets = 1 + rng.IntN(5)
			cfg.AttackStartTick = rng.IntN(10)
		case 2:
			cfg.Attack = AttackRarePieceHolders
			cfg.AttackerUplink = 1 + rng.IntN(16)
			cfg.AttackTargets = 1 + rng.IntN(5)
			cfg.AttackStartTick = rng.IntN(10)
			cfg.AttackStopTick = cfg.AttackStartTick + 20 + rng.IntN(40)
		case 3:
			mkAdv = func() sim.Adversary {
				return &attack.Strategy{Kind: attack.Crash, Fraction: 0.15}
			}
		case 4:
			mkAdv = func() sim.Adversary {
				return &attack.Strategy{Kind: attack.Ideal, Fraction: 0.08, SatiateFraction: 0.4}
			}
		case 5:
			// Drawn outside the closure: mkAdv runs once per evaluation
			// path, and both paths must face the identical adversary.
			rotate := 1 + rng.IntN(8)
			mkAdv = func() sim.Adversary {
				return &attack.Strategy{Kind: attack.Trade, Fraction: 0.12, SatiateFraction: 0.3, RotatePeriod: rotate}
			}
		}
		seed := rng.Uint64()
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			// Every trial config has PeerSetSize ≤ 16, so the sequential
			// and sharded runs naturally pick uint8 rarity rows; the third
			// variant forces the uint16 fallback on the same config and
			// must agree bit-for-bit.
			variants := []struct {
				name string
				opts []Option
			}{
				{"sequential", []Option{WithEvalParallel(false)}},
				{"sharded", []Option{WithEvalParallel(true)}},
				{"wide rarity", []Option{WithEvalParallel(false), WithWideRarity()}},
			}
			results := make([]Result, len(variants))
			for i, vr := range variants {
				opts := vr.opts
				if mkAdv != nil {
					opts = append(opts[:len(opts):len(opts)], WithAdversary(mkAdv()))
				}
				results[i] = runWithParityChecks(t, cfg, seed, opts...)
			}
			for i := 1; i < len(results); i++ {
				if results[i] != results[0] {
					t.Fatalf("%s evaluation diverged from %s:\n%+v\nvs\n%+v",
						variants[i].name, variants[0].name, results[i], results[0])
				}
			}
		})
	}
}

// TestRarityWidthSelection pins the storage-width choice itself: uint8
// rarity rows when the maximum degree fits uint8 (halving the two counter
// arenas), the uint16 fallback above 255 or under WithWideRarity.
func TestRarityWidthSelection(t *testing.T) {
	small := DefaultConfig()
	small.Leechers = 40
	small.Pieces = 24
	small.PeerSetSize = 10
	small.Ticks = 60

	s, err := New(small, 7)
	if err != nil {
		t.Fatal(err)
	}
	if s.wideRarity || s.rarity8 == nil || s.rarity16 != nil {
		t.Fatalf("max degree ≤ 255 must pick uint8 rarity rows")
	}
	forced, err := New(small, 7, WithWideRarity())
	if err != nil {
		t.Fatal(err)
	}
	if !forced.wideRarity || forced.rarity16 == nil || forced.rarity8 != nil {
		t.Fatalf("WithWideRarity must force uint16 rarity rows")
	}

	big := DefaultConfig()
	big.Leechers = 600
	big.PeerSetSize = 520 // degree 260 > 255: uint8 counters could overflow
	big.Pieces = 8
	big.Ticks = 3
	b, err := New(big, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !b.wideRarity || b.rarity16 == nil {
		t.Fatalf("degree above 255 must fall back to uint16 rarity rows")
	}
	if _, err := b.Run(); err != nil {
		t.Fatal(err)
	}
}
