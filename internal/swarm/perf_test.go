package swarm

import (
	"testing"

	"lotuseater/internal/attack"
)

// bigSwarmConfig is the swarm-1m scenario shape shrunk to a test-sized
// population: small piece count and peer sets, ideal satiation of a slice
// of the swarm, completed leechers departing so the lifecycle and rarity
// subtraction paths stay busy.
func bigSwarmConfig(n int) Config {
	cfg := DefaultConfig()
	cfg.Leechers = n
	cfg.Pieces = 32
	cfg.PeerSetSize = 8
	cfg.Ticks = 1 << 20 // effectively unbounded for the measured window
	cfg.SeedAfterComplete = true
	return cfg
}

// TestSwarmStepAllocsIndependentOfPopulation locks in the SoA/pooling work:
// once buffers are primed, a steady-state tick's allocations must be a
// small constant that does not grow with Leechers. Before the packed-layout
// rewrite every rotation re-sorted interested lists through a sort.Slice
// closure, the transfer pass rescanned rarity into per-node count buffers,
// and rare-piece targeting allocated a fresh holder-count array per attack
// step — all O(Leechers) or O(degree·pieces) heap traffic.
func TestSwarmStepAllocsIndependentOfPopulation(t *testing.T) {
	measure := func(n int) float64 {
		adv := &attack.Strategy{Kind: attack.Ideal, Fraction: 0.02, SatiateFraction: 0.10}
		s, err := New(bigSwarmConfig(n), 11, WithEvalParallel(false), WithAdversary(adv))
		if err != nil {
			t.Fatal(err)
		}
		// Prime the pools: run past the first unchoke rotations so the
		// interested/unchoke structures and scratch buffers reach their
		// steady-state capacities.
		for i := 0; i < 3*s.cfg.RotateInterval+2; i++ {
			if err := s.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(50, func() {
			if err := s.Step(); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := measure(1024)
	big := measure(8192)
	// The absolute bound is loose (the per-tick RNG children allocate a
	// handful of objects); the point is the comparison: an O(Leechers)
	// allocation anywhere would blow it up immediately at the larger
	// population.
	if small > 96 {
		t.Fatalf("steady-state Step allocates %.0f objects at n=1024, want a small constant", small)
	}
	if big > small+16 {
		t.Fatalf("Step allocations grew with population: %.0f at n=1024 vs %.0f at n=8192", small, big)
	}
}

// TestShardedPassesRace drives every sim.ParallelFor pass in the swarm —
// unchoke scoring, the endgame/lifecycle leecher scans, the reverse-position
// and rarity builds — at a population large enough that each pass actually
// splits into multiple shards (the small parity tests all fit in one shard
// and exercise nothing concurrent). Running it under `go test -race` is the
// point: it is the designated race gate for the widened parallel paths. It
// also pins bit-identity at sharded scale by comparing piece state and
// metrics against the forced-sequential run.
func TestShardedPassesRace(t *testing.T) {
	// Above evalParallelMinNodes and above the scanLeechers shard grain, so
	// both the scoring pass and the candidate scans fan out.
	const n = 40_000
	cfg := bigSwarmConfig(n)
	cfg.Ticks = 8
	adv := &attack.Strategy{Kind: attack.Ideal, Fraction: 0.02, SatiateFraction: 0.10}
	run := func(parallel bool) *Sim {
		fresh := *adv
		s, err := New(cfg, 7, WithEvalParallel(parallel), WithAdversary(&fresh))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	par := run(true)
	seq := run(false)
	if par.res != seq.res {
		t.Fatalf("sharded run diverged from sequential:\n%+v\nvs\n%+v", par.res, seq.res)
	}
	for i := range par.pieceWords {
		if par.pieceWords[i] != seq.pieceWords[i] {
			t.Fatalf("piece state diverged at word %d (node %d)", i, i/par.wpn)
		}
	}
}
