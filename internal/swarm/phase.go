package swarm

import "time"

// phaseIx indexes the per-phase duration accumulators in PhaseProfile.
type phaseIx int

const (
	phaseAttack phaseIx = iota
	phaseUnchokeScore
	phaseUnchokeSelect
	phaseRarity
	phaseTransfer
	phaseEndgame
	phaseLifecycle
	phaseCount
)

// phaseNames are the keys used in BENCH_kernel.json phase breakdowns.
var phaseNames = [phaseCount]string{
	"attack",
	"unchoke-score",
	"unchoke-select",
	"rarity",
	"transfer",
	"endgame",
	"lifecycle",
}

// PhaseProfile accumulates wall time per phase of the swarm tick, installed
// with WithPhaseProfile. The taxonomy matches the tick structure: attack
// (Config attacker or instantly-satiating adversary fills), unchoke-score
// (the shardable interested-scan and reciprocation ranking), unchoke-select
// (the sequential RNG slot selection), rarity (per-receiver per-tick rarity
// snapshots), transfer (piece movement along unchoked links, excluding the
// rarity snapshots it triggers), endgame, and lifecycle.
//
// Profiling brackets each phase with a wall-clock read; the snapshot copies
// inside the transfer pass are additionally bracketed one by one, so
// enabling a profile adds a few timer reads per receiver per tick. That
// overhead lands in the rarity bucket and is acceptable for attribution,
// but leave prof nil for production runs.
type PhaseProfile struct {
	d [phaseCount]time.Duration
	// Ticks counts the simulated ticks the accumulators cover.
	Ticks int
}

// WithPhaseProfile installs p as the Sim's phase-attribution sink. Pass the
// same profile to several Sims to aggregate across replicates.
func WithPhaseProfile(p *PhaseProfile) Option {
	return func(s *Sim) { s.prof = p }
}

// Reset zeroes the accumulators, typically after warmup ticks.
func (p *PhaseProfile) Reset() { *p = PhaseProfile{} }

// Phases returns accumulated nanoseconds keyed by phase name. The rarity
// time is spent inside the transfer pass but reported separately; the
// transfer entry has it subtracted out, so entries sum to total phase time
// without double counting.
func (p *PhaseProfile) Phases() map[string]float64 {
	out := make(map[string]float64, phaseCount)
	for ix, name := range phaseNames {
		out[name] = float64(p.d[ix].Nanoseconds())
	}
	transfer := p.d[phaseTransfer] - p.d[phaseRarity]
	if transfer < 0 {
		transfer = 0
	}
	out[phaseNames[phaseTransfer]] = float64(transfer.Nanoseconds())
	return out
}

// PhaseOrder lists the phase names in tick order — the stable rendering
// order for the maps Phases returns.
func PhaseOrder() []string { return phaseNames[:] }

// runPhase executes fn, attributing its wall time to phase ix when a
// profile is installed.
//
//lotus:allocfree
func (s *Sim) runPhase(ix phaseIx, fn func()) {
	if s.prof == nil {
		fn()
		return
	}
	t := time.Now() //lotus:ignore detrand phase attribution feeds the bench profile, never simulation state
	fn()
	s.prof.d[ix] += time.Since(t) //lotus:ignore detrand phase attribution feeds the bench profile, never simulation state
}
