// Package swarm implements a BitTorrent-like file-sharing swarm, the third
// satiable system the paper analyzes. It exists to reproduce two of the
// paper's qualitative claims:
//
//   - "Despite the attack being possible in BitTorrent, it seems likely to
//     do significantly less damage" — satiating leechers turns them into
//     seeds (or removes net downloaders), which is "often actually a net
//     benefit to the torrent".
//
//   - "The attacker could try and target leechers who have rare pieces to
//     artificially create a 'last pieces problem,' but BitTorrent's rarest
//     first policy does a good job of resolving this problem."
//
// The model is tick-based. Leechers maintain a bounded peer set, unchoke
// their top reciprocators plus one optimistic unchoke, and transfer one
// piece per unchoked interested peer per tick. Receivers choose pieces by a
// pluggable selection policy (random, random-first + rarest-first). A
// simplified endgame mode lets nearly finished leechers pull their last
// pieces from any peer-set member holding them.
//
// # Performance architecture
//
// The hot loop is built for million-leecher populations around three
// mechanically independent optimizations, each pinned bit-identical to the
// straightforward implementation by the parity and golden suites:
//
//   - Incremental rarity. Every node's local piece-rarity view (how many of
//     its non-departed neighbors hold each piece) and the global per-piece
//     holder count are maintained as counters updated on piece-gain and
//     departure deltas — O(degree) per transferred piece — instead of being
//     rescanned from neighbor bitsets every tick (O(degree·pieces) per
//     receiver per tick). See gainPiece, departNode, and the tick-tagged
//     snapshot in snapFor that reproduces the rescan's lazy per-tick
//     semantics exactly.
//
//   - Struct-of-arrays agent layout. Piece bitsets are raw words in one
//     contiguous arena (no per-node set headers to chase on random probes),
//     the peer graph is flattened into int32 adjacency and reverse-position
//     arrays indexed by degree prefix sums, all per-node ragged state
//     (window reciprocation counts, interested lists, unchoke sets) lives
//     in packed backing arrays, and the reciprocation ranking uses an
//     allocation-free bounded sort — so the score and transfer passes are
//     linear scans over packed memory with no per-node heap objects.
//
//   - Sharded pure-read passes. Unchoke scoring, the endgame and lifecycle
//     candidate scans, and the initial rarity build are pure reads of swarm
//     state and run on sim.ParallelFor for large populations; every
//     RNG-consuming or state-mutating pass stays sequential in node order,
//     so results are bit-identical for any worker count.
package swarm

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"slices"
	"sort"
	"time"

	"lotuseater/internal/graph"
	"lotuseater/internal/population"
	"lotuseater/internal/sim"
	"lotuseater/internal/simrng"
)

// Selection is a piece-selection policy.
type Selection int

const (
	// SelectRandom picks a uniformly random needed piece — the strawman
	// policy with no rarity awareness.
	SelectRandom Selection = iota + 1
	// SelectRarestFirst picks the needed piece with the fewest holders in
	// the receiver's peer set, after a short random-first bootstrap.
	SelectRarestFirst
)

// String returns the policy name.
func (s Selection) String() string {
	switch s {
	case SelectRandom:
		return "random"
	case SelectRarestFirst:
		return "rarest-first"
	default:
		return fmt.Sprintf("swarm.Selection(%d)", int(s))
	}
}

// AttackKind selects the adversary's targeting rule.
type AttackKind int

const (
	// AttackOff disables the attacker.
	AttackOff AttackKind = iota + 1
	// AttackTopUploaders satiates the leechers currently uploading the
	// most — the paper's "targeting users that are uploading more than
	// they download".
	AttackTopUploaders
	// AttackRarePieceHolders satiates leechers holding the swarm's rarest
	// pieces, to remove those pieces' carriers (the artificial "last
	// pieces problem").
	AttackRarePieceHolders
)

// String returns the attack name.
func (k AttackKind) String() string {
	switch k {
	case AttackOff:
		return "off"
	case AttackTopUploaders:
		return "top-uploaders"
	case AttackRarePieceHolders:
		return "rare-piece-holders"
	default:
		return fmt.Sprintf("swarm.AttackKind(%d)", int(k))
	}
}

// Config parameterizes a swarm run.
type Config struct {
	// Leechers join at tick 0 with no pieces.
	Leechers int
	// Pieces is the file size in pieces.
	Pieces int
	// UploadSlots is the number of concurrent unchokes per node (BitTorrent
	// default 4), including the optimistic slot.
	UploadSlots int
	// RotateInterval is how many ticks between unchoke recomputations.
	RotateInterval int
	// PeerSetSize is each node's approximate neighbor count.
	PeerSetSize int
	// Ticks is the horizon.
	Ticks int
	// Selection is the receivers' piece-selection policy.
	Selection Selection
	// RandomFirstCount pieces are picked at random before rarest-first
	// engages (BitTorrent's bootstrap behavior).
	RandomFirstCount int
	// Endgame, when true, lets leechers missing at most EndgameThreshold
	// pieces pull one piece per tick from any peer-set member.
	Endgame bool
	// EndgameThreshold is the missing-piece count that triggers endgame.
	EndgameThreshold int
	// SeedDepartTick is when the original seed leaves (0 = never). A
	// departing initial seed is what makes rare pieces possible.
	SeedDepartTick int
	// SeedAfterComplete keeps finished leechers seeding; when false they
	// depart immediately (the pessimistic population the rare-piece attack
	// needs).
	SeedAfterComplete bool

	// Attack selects the adversary.
	Attack AttackKind
	// AttackerUplink is the attacker's total upload capacity in pieces per
	// tick (it holds the whole file).
	AttackerUplink int
	// AttackTargets is how many leechers the attacker satiates at a time.
	AttackTargets int
	// AttackStartTick delays the attack.
	AttackStartTick int
	// AttackStopTick ends the attack (0 = never). A bounded campaign is
	// what the rare-piece attack needs: satiate carriers while pieces are
	// still scarce, then stop before the attacker's uploads have seeded
	// the whole swarm.
	AttackStopTick int
}

// DefaultConfig returns a modest healthy swarm.
func DefaultConfig() Config {
	return Config{
		Leechers:          120,
		Pieces:            128,
		UploadSlots:       4,
		RotateInterval:    3,
		PeerSetSize:       24,
		Ticks:             400,
		Selection:         SelectRarestFirst,
		RandomFirstCount:  4,
		Endgame:           true,
		EndgameThreshold:  3,
		SeedDepartTick:    0,
		SeedAfterComplete: true,
		Attack:            AttackOff,
	}
}

// Validate reports the first problem with the configuration, or nil.
func (c Config) Validate() error {
	switch {
	case c.Leechers < 2:
		return fmt.Errorf("swarm: need at least 2 leechers, got %d", c.Leechers)
	case c.Pieces < 1:
		return fmt.Errorf("swarm: Pieces must be positive, got %d", c.Pieces)
	case c.UploadSlots < 1:
		return fmt.Errorf("swarm: UploadSlots must be positive, got %d", c.UploadSlots)
	case c.RotateInterval < 1:
		return fmt.Errorf("swarm: RotateInterval must be positive, got %d", c.RotateInterval)
	case c.PeerSetSize < 2:
		return fmt.Errorf("swarm: PeerSetSize must be at least 2, got %d", c.PeerSetSize)
	case c.Ticks < 1:
		return fmt.Errorf("swarm: Ticks must be positive, got %d", c.Ticks)
	case c.Selection != SelectRandom && c.Selection != SelectRarestFirst:
		return fmt.Errorf("swarm: unknown selection policy %d", c.Selection)
	case c.RandomFirstCount < 0:
		return fmt.Errorf("swarm: RandomFirstCount must be non-negative, got %d", c.RandomFirstCount)
	case c.Endgame && c.EndgameThreshold < 1:
		return fmt.Errorf("swarm: EndgameThreshold must be positive with Endgame on, got %d", c.EndgameThreshold)
	case c.SeedDepartTick < 0:
		return fmt.Errorf("swarm: SeedDepartTick must be non-negative, got %d", c.SeedDepartTick)
	case c.Attack < AttackOff || c.Attack > AttackRarePieceHolders:
		return fmt.Errorf("swarm: unknown attack kind %d", c.Attack)
	case c.Attack != AttackOff && c.AttackerUplink < 1:
		return fmt.Errorf("swarm: AttackerUplink must be positive when attacking, got %d", c.AttackerUplink)
	case c.Attack != AttackOff && c.AttackTargets < 1:
		return fmt.Errorf("swarm: AttackTargets must be positive when attacking, got %d", c.AttackTargets)
	case c.AttackStartTick < 0:
		return fmt.Errorf("swarm: AttackStartTick must be non-negative, got %d", c.AttackStartTick)
	case c.AttackStopTick < 0:
		return fmt.Errorf("swarm: AttackStopTick must be non-negative, got %d", c.AttackStopTick)
	case c.AttackStopTick > 0 && c.AttackStopTick <= c.AttackStartTick:
		return fmt.Errorf("swarm: AttackStopTick %d must exceed AttackStartTick %d", c.AttackStopTick, c.AttackStartTick)
	}
	return nil
}

// state is a node's lifecycle phase.
type state int

const (
	stateLeeching state = iota + 1
	stateSeeding
	stateDeparted
)

// Result summarizes a swarm run.
type Result struct {
	// CompletedFraction is the fraction of leechers that finished within
	// the horizon.
	CompletedFraction float64
	// MeanCompletionTick averages finish ticks, counting unfinished
	// leechers as the horizon (so stalls are visible, not hidden).
	MeanCompletionTick float64
	// MedianCompletionTick is the median finish tick with the same
	// convention.
	MedianCompletionTick float64
	// LostPieces counts pieces that no present node holds while at least
	// one leecher still needs pieces — the signature of a successful
	// rare-piece attack. Zero when every leecher finished (nothing was
	// denied to anyone).
	LostPieces int
	// AttackerUploaded is the attacker's total upload in pieces.
	AttackerUploaded int
	// SatiatedByAttacker is how many leechers finished with more than half
	// their pieces coming from the attacker.
	SatiatedByAttacker int
}

// Option customizes a Sim.
type Option func(*Sim)

// WithAdversary installs a substrate-independent adversary strategy in
// place of the Config's swarm-specific Attack kinds. Its hooks map onto the
// swarm as follows: Place picks attacker-controlled leechers — crash and
// ideal attackers leave the protocol (their slots are dead weight), trade
// attackers hold the full file and unchoke only satiation targets; Targets
// names the leechers the external attacker satiates; an instantly-satiating
// (ideal) adversary uploads missing pieces to targets directly each tick,
// up to Config.AttackerUplink pieces (16 when unset).
func WithAdversary(a sim.Adversary) Option {
	return func(s *Sim) { s.adv = a }
}

// WithDefense installs a receiver-side defense: every piece acceptance —
// protocol transfers, endgame pulls, and attacker uploads (sender -1) — is
// gated by Admit, capping pieces accepted per sender per tick.
func WithDefense(d sim.Defense) Option {
	return func(s *Sim) { s.def = d }
}

// WithChurn installs a round-sorted lifecycle schedule over the leechers
// (nodes in [0, Leechers); the initial seed's exit stays SeedDepartTick's
// job). A departing leecher takes its pieces with it; a (re)arrival on the
// same slot is a fresh empty leecher. Events naming attacker-controlled
// slots are ignored. The swarm stays alive while arrivals are still due,
// even when every current leecher has finished or left.
func WithChurn(events []population.Event) Option {
	return func(s *Sim) { s.churnEvents = events }
}

// WithPieceWeights biases rarest-first tie-breaking by content popularity:
// among equally-rare candidates the receiver picks piece p with probability
// proportional to weights[p] (length Pieces, non-negative, positive sum)
// instead of uniformly. Random selection and the random-first bootstrap
// stay uniform — popularity models demand, not the bootstrap.
func WithPieceWeights(weights []float64) Option {
	return func(s *Sim) { s.pieceWeightsIn = weights }
}

// Sim is one swarm instance.
type Sim struct {
	cfg   Config
	rng   *simrng.Source
	peers *graph.Graph

	adv        sim.Adversary
	def        sim.Defense
	advTrades  bool
	advInstant bool
	advUplink  int
	isAttacker []bool

	n      int // leechers + 1 initial seed (node n-1)
	seedID int

	// Struct-of-arrays agent layout. adjOff holds degree prefix sums over
	// the (sorted) peer graph: node v's peer-set slots occupy
	// [adjOff[v], adjOff[v+1]) of every adjacency-shaped packed array, and
	// within that window index k refers to v's k-th neighbor. adjFlat is
	// the flattened adjacency itself; revPos[adjOff[v]+k] is v's own
	// position in that k-th neighbor's peer set, precomputed so the
	// transfer pass bumps the receiver's reciprocation counter without a
	// binary search. Keying reciprocation state by peer-set position keeps
	// it O(n·degree), not O(n²), and flattening the ragged per-node slices
	// into single backing arrays makes the hot passes linear scans over
	// packed memory.
	adjOff  []int
	adjFlat []int32
	revPos  []int32

	// Piece bitsets as raw words: node v's holdings are the wpn words at
	// pieceWords[v*wpn], and pieceCnt[v] counts them. Raw words instead of
	// per-node set objects matter on the random probes the score and
	// transfer passes make — one load per probe instead of a header chase —
	// and keep the whole swarm's holdings in one contiguous arena.
	pieceWords []uint64
	pieceCnt   []int32
	wpn        int // words per node: ceil(Pieces / 64)

	nodeState []state
	finished  []int // tick completed, -1 otherwise
	// recvCnt[adjOff[v]+k] counts pieces v received this unchoke window
	// from its k-th peer.
	recvCnt  []int32
	uploaded []int // total pieces uploaded, per node
	fromAtk  []int // pieces received from the attacker, per node

	// interested[adjOff[v] : adjOff[v]+intCnt[v]] is v's unchoke-scoring
	// output: the peer-set positions of v's interested leechers, ranked by
	// reciprocation for leechers. Building it is a pure read of swarm
	// state, so large populations shard it across the worker pool (see
	// WithEvalParallel).
	interested []int32
	intCnt     []int32
	// unchoked[v*slotStride : v*slotStride+unchokedCnt[v]] holds the
	// peer-set positions v currently unchokes. slotStride is
	// min(UploadSlots, max degree), the tight per-node bound.
	unchoked    []int32
	unchokedCnt []int32
	slotStride  int

	// Incremental rarity state. rarity[v*Pieces+p] is the number of v's
	// non-departed neighbors holding piece p, and holders[p] the number of
	// present nodes holding p — both maintained by piece-gain and
	// departure deltas (gainPiece, departNode) instead of per-tick
	// rescans. snap/snapTick implement the per-receiver per-tick snapshot
	// the transfer pass reads (see snapFor): rarity judged from the local
	// view a receiver froze at its first transfer of the tick, exactly the
	// lazy semantics of the rescan implementation.
	//
	// A counter counts holders among one node's neighbors, so it is
	// bounded by that node's degree: when the maximum degree fits uint8
	// the narrow arenas are used — halving the two largest counter arenas
	// — and uint16 is the fallback above 255 (or under WithWideRarity).
	// Exactly one pair is non-nil; every access dispatches on wideRarity
	// into code generic over the cell width, so both widths run the same
	// arithmetic and produce bit-identical results (parity-suite pinned).
	rarity8    []uint8
	snap8      []uint8
	rarity16   []uint16
	snap16     []uint16
	wideRarity bool
	snapTick   []int32
	holders    []int32

	// leeching counts nodes in [0, Leechers) still in stateLeeching, so
	// the done check is O(1) instead of an O(n) scan per tick.
	leeching int

	// Population model state. churnEvents/pieceWeightsIn are the raw
	// option inputs, validated in New; churn is the live cursor and
	// pieceWeights the normalized popularity vector (nil when uniform).
	// All stay nil/zero without the options, keeping the static path
	// byte-identical to a build without the model.
	churnEvents    []population.Event
	churn          population.Cursor
	pieceWeightsIn []float64
	pieceWeights   []float64

	permBuf   []int
	missBuf   []int // pooled missing-piece scratch for attack/endgame fills
	targetBuf []int // pickTargets candidate scratch
	rareScore []int32
	// scanBuf and shardBufs back scanLeechers, the sharded pure-read
	// candidate scan the endgame and lifecycle passes run.
	scanBuf   []int32
	shardBufs [][]int32

	// evalParallel > 0 forces sharded pure-read passes, < 0 forces
	// sequential, 0 picks by population size.
	evalParallel int

	prof *PhaseProfile

	tick int
	res  Result
}

// evalParallelMinNodes is the population size at which the pure-read passes
// (unchoke scoring, the endgame/lifecycle candidate scans, the initial
// rarity build) shard across the worker pool by default.
const evalParallelMinNodes = 1 << 15

// WithEvalParallel forces the pure-read passes — unchoke scoring, the
// endgame and lifecycle candidate scans, the initial rarity build — on or
// off the sharded sim.ParallelFor path. Results are bit-identical either
// way (tested); by default sharding engages for populations of
// evalParallelMinNodes and up.
func WithEvalParallel(on bool) Option {
	return func(s *Sim) {
		if on {
			s.evalParallel = 1
		} else {
			s.evalParallel = -1
		}
	}
}

// sharded reports whether the pure-read passes run on the worker pool.
func (s *Sim) sharded() bool {
	return s.evalParallel > 0 || (s.evalParallel == 0 && s.n >= evalParallelMinNodes)
}

// rarityCell is the set of storage widths a rarity counter row can use.
// The rarity-touching hot paths (transfer snapshots, rarest-first piece
// selection, the gain/departure delta loops, the initial build) are generic
// over it, so the narrow and wide arenas run the same arithmetic.
type rarityCell interface{ uint8 | uint16 }

// WithWideRarity forces uint16 rarity counter rows even when the maximum
// degree fits uint8 and the narrow arenas would naturally be picked.
// Results are bit-identical either way — the parity suite pins it — so the
// option exists only to let tests drive the wide fallback on small
// configurations.
func WithWideRarity() Option {
	return func(s *Sim) { s.wideRarity = true }
}

// New builds a Sim, deterministic in (cfg, seed). Node ids 0..Leechers-1
// are leechers; node Leechers is the initial seed.
func New(cfg Config, seed uint64, opts ...Option) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Leechers + 1
	s := &Sim{
		cfg:       cfg,
		rng:       simrng.New(seed),
		n:         n,
		seedID:    n - 1,
		nodeState: make([]state, n),
		finished:  make([]int, n),
		uploaded:  make([]int, n),
		fromAtk:   make([]int, n),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.adv != nil && cfg.Attack != AttackOff {
		return nil, errors.New("swarm: Config.Attack conflicts with WithAdversary")
	}
	if len(s.churnEvents) > 0 {
		if err := population.ValidateSchedule(s.churnEvents, cfg.Leechers); err != nil {
			return nil, fmt.Errorf("swarm: %w", err)
		}
		s.churn = population.NewCursor(s.churnEvents)
	}
	if s.pieceWeightsIn != nil {
		if len(s.pieceWeightsIn) != cfg.Pieces {
			return nil, fmt.Errorf("swarm: piece weights have %d entries for %d pieces", len(s.pieceWeightsIn), cfg.Pieces)
		}
		s.pieceWeights = population.Normalize(s.pieceWeightsIn)
		if s.pieceWeights == nil {
			return nil, errors.New("swarm: piece weights must be non-negative with a positive finite sum")
		}
	}
	deg := cfg.PeerSetSize / 2
	if deg < 1 {
		deg = 1
	}
	s.peers = graph.RandomRegularish(n, deg, s.rng.Child("peers"))

	// Freeze the packed layout: degree prefix sums, the flat int32
	// adjacency, adjacency-shaped per-node arrays, the piece-word arena,
	// and the rarity counters.
	s.adjOff = make([]int, n+1)
	sim.AdviseHugePages(s.adjOff)
	maxDeg := 0
	for v := 0; v < n; v++ {
		d := len(s.peers.AdjList(v))
		if d > maxDeg {
			maxDeg = d
		}
		s.adjOff[v+1] = s.adjOff[v] + d
	}
	total := s.adjOff[n]
	s.adjFlat = make([]int32, total)
	// Advise before first touch: with THP in madvise mode the kernel only
	// installs 2MB pages on fault, so the hint must precede the fill.
	sim.AdviseHugePages(s.adjFlat)
	for v := 0; v < n; v++ {
		base := s.adjOff[v]
		for k, w := range s.peers.AdjList(v) {
			s.adjFlat[base+k] = int32(w)
		}
	}
	s.revPos = make([]int32, total)
	s.recvCnt = make([]int32, total)
	s.interested = make([]int32, total)
	s.intCnt = make([]int32, n)
	s.slotStride = cfg.UploadSlots
	if s.slotStride > maxDeg {
		// A node can never unchoke more peers than it has, so the packed
		// unchoke array only needs min(UploadSlots, max degree) slots each.
		s.slotStride = maxDeg
	}
	if s.slotStride < 1 {
		s.slotStride = 1
	}
	s.unchoked = make([]int32, n*s.slotStride)
	s.unchokedCnt = make([]int32, n)
	s.wpn = (cfg.Pieces + 63) / 64
	s.pieceWords = make([]uint64, n*s.wpn)
	s.pieceCnt = make([]int32, n)
	if maxDeg > math.MaxUint8 {
		// A rarity counter is bounded by its node's degree; above uint8
		// range the wide arenas are the only correct choice.
		s.wideRarity = true
	}
	if s.wideRarity {
		s.rarity16 = make([]uint16, n*cfg.Pieces)
		s.snap16 = make([]uint16, n*cfg.Pieces)
	} else {
		s.rarity8 = make([]uint8, n*cfg.Pieces)
		s.snap8 = make([]uint8, n*cfg.Pieces)
	}
	s.snapTick = make([]int32, n)
	s.holders = make([]int32, cfg.Pieces)
	// The rarity increments, piece-word probes, and reciprocation bumps hit
	// these arenas at random node offsets; at million-node scale that is a
	// TLB walk per probe on 4K pages, which serializes ahead of the cache
	// miss itself. Huge pages make the walks free (hint only — results are
	// identical without it).
	sim.AdviseHugePages(s.rarity8)
	sim.AdviseHugePages(s.snap8)
	sim.AdviseHugePages(s.rarity16)
	sim.AdviseHugePages(s.snap16)
	sim.AdviseHugePages(s.pieceWords)
	sim.AdviseHugePages(s.pieceCnt)
	sim.AdviseHugePages(s.revPos)
	sim.AdviseHugePages(s.recvCnt)
	sim.AdviseHugePages(s.interested)
	sim.AdviseHugePages(s.nodeState)
	sim.AdviseHugePages(s.snapTick)
	sim.AdviseHugePages(s.unchoked)

	for v := 0; v < n; v++ {
		s.nodeState[v] = stateLeeching
		s.finished[v] = -1
		s.snapTick[v] = -1
	}
	s.fillPieces(s.seedID)
	s.nodeState[s.seedID] = stateSeeding
	s.finished[s.seedID] = 0
	if s.adv != nil {
		s.advTrades = sim.TradesInProtocol(s.adv)
		s.advInstant = sim.SatiatesInstantly(s.adv)
		s.advUplink = cfg.AttackerUplink
		if s.advUplink <= 0 {
			s.advUplink = 16
		}
		s.isAttacker = make([]bool, s.n)
		for _, a := range s.adv.Place(cfg.Leechers, s.rng.Child("adversary")) {
			if a < 0 || a >= cfg.Leechers {
				return nil, fmt.Errorf("swarm: adversary placed node %d outside [0,%d)", a, cfg.Leechers)
			}
			s.isAttacker[a] = true
			s.finished[a] = 0
			if s.advTrades {
				// Trade attackers hold the full file and seed selectively.
				s.fillPieces(a)
				s.nodeState[a] = stateSeeding
			} else {
				// Crash and ideal attacker nodes leave the protocol: no
				// service in, no service out — crashed peers.
				s.nodeState[a] = stateDeparted
			}
		}
	}
	if cfg.Attack == AttackRarePieceHolders {
		s.rareScore = make([]int32, n)
	}
	for v := 0; v < cfg.Leechers; v++ {
		if s.nodeState[v] == stateLeeching {
			s.leeching++
		}
	}
	// The reverse-position table and the initial rarity rows are pure
	// reads of frozen structure; both build sharded for large populations.
	buildRev := func(start, end int) {
		for v := start; v < end; v++ {
			for e := s.adjOff[v]; e < s.adjOff[v+1]; e++ {
				s.revPos[e] = int32(s.posIn(int(s.adjFlat[e]), v))
			}
		}
	}
	if s.sharded() {
		sim.ParallelFor(s.n, 0, func(_, start, end int) { buildRev(start, end) })
	} else {
		buildRev(0, s.n)
	}
	s.rebuildRarity()
	return s, nil
}

// posIn returns the position of node u in v's sorted peer set, or -1.
func (s *Sim) posIn(v, u int) int {
	lo, hi := s.adjOff[v], s.adjOff[v+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if int(s.adjFlat[mid]) < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < s.adjOff[v+1] && int(s.adjFlat[lo]) == u {
		return lo - s.adjOff[v]
	}
	return -1
}

// adj returns v's packed neighbor window of the flat adjacency.
func (s *Sim) adj(v int) []int32 {
	return s.adjFlat[s.adjOff[v]:s.adjOff[v+1]]
}

// hasPiece reports whether v holds p.
func (s *Sim) hasPiece(v, p int) bool {
	return s.pieceWords[v*s.wpn+p>>6]&(1<<(uint(p)&63)) != 0
}

// pieceLen returns how many pieces v holds.
func (s *Sim) pieceLen(v int) int { return int(s.pieceCnt[v]) }

// fillPieces gives v the complete file.
func (s *Sim) fillPieces(v int) {
	base := v * s.wpn
	for i := 0; i < s.wpn; i++ {
		s.pieceWords[base+i] = ^uint64(0)
	}
	if rem := s.cfg.Pieces % 64; rem != 0 {
		s.pieceWords[base+s.wpn-1] = (1 << rem) - 1
	}
	s.pieceCnt[v] = int32(s.cfg.Pieces)
}

// forEachPiece calls fn for every piece v holds, in ascending order.
//
//lotus:allocfree
func (s *Sim) forEachPiece(v int, fn func(p int)) {
	base := v * s.wpn
	for i := 0; i < s.wpn; i++ {
		w := s.pieceWords[base+i]
		for w != 0 {
			fn(i*64 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// appendMissing appends the pieces v lacks to buf in ascending order.
//
//lotus:allocfree
func (s *Sim) appendMissing(v int, buf []int) []int {
	base := v * s.wpn
	P := s.cfg.Pieces
	for i := 0; i < s.wpn; i++ {
		w := ^s.pieceWords[base+i]
		wordBase := i * 64
		for w != 0 {
			p := wordBase + bits.TrailingZeros64(w)
			if p >= P {
				break
			}
			buf = append(buf, p)
			w &= w - 1
		}
	}
	return buf
}

// rebuildRarity recomputes every rarity row and the global holder counters
// from scratch, establishing the invariant the incremental deltas maintain.
// The per-node rows are a pure read of neighbor state, so the build shards
// across the worker pool for large populations.
func (s *Sim) rebuildRarity() {
	if s.wideRarity {
		rebuildRows(s, s.rarity16)
	} else {
		rebuildRows(s, s.rarity8)
	}
	s.recountHolders(s.holders)
}

// rebuildRows recounts every row of the given rarity arena.
func rebuildRows[T rarityCell](s *Sim, arena []T) {
	P := s.cfg.Pieces
	rebuild := func(start, end int) {
		for v := start; v < end; v++ {
			recountRow(s, v, arena[v*P:(v+1)*P])
		}
	}
	if s.sharded() {
		sim.ParallelFor(s.n, 0, func(_, start, end int) { rebuild(start, end) })
	} else {
		rebuild(0, s.n)
	}
}

// recountRow writes a from-scratch recount of v's local rarity view — per
// piece, the number of v's non-departed neighbors holding it — into dst.
func recountRow[T rarityCell](s *Sim, v int, dst []T) {
	clear(dst)
	for _, nb := range s.adj(v) {
		if s.nodeState[nb] == stateDeparted {
			continue
		}
		s.forEachPiece(int(nb), func(p int) { dst[p]++ })
	}
}

// rarityAt returns the maintained rarity counter for (v, p), width-blind —
// the accessor the parity suite reads the live state through.
func (s *Sim) rarityAt(v, p int) int {
	if s.wideRarity {
		return int(s.rarity16[v*s.cfg.Pieces+p])
	}
	return int(s.rarity8[v*s.cfg.Pieces+p])
}

// recountRarityRow writes a from-scratch recount of v's local rarity view
// into dst, width-free. This is the reference implementation the
// incremental counters are parity-tested against; it deliberately shares no
// code with the width-typed recountRow the arena builds use, so the parity
// suite checks the maintained state against an independent computation. The
// hot path never calls it after construction.
func (s *Sim) recountRarityRow(v int, dst []int) {
	clear(dst)
	for _, nb := range s.adj(v) {
		if s.nodeState[nb] == stateDeparted {
			continue
		}
		s.forEachPiece(int(nb), func(p int) { dst[p]++ })
	}
}

// recountHolders writes a from-scratch recount of the global per-piece
// present-holder counts into dst — the reference for the maintained holders
// array.
func (s *Sim) recountHolders(dst []int32) {
	clear(dst)
	for v := 0; v < s.n; v++ {
		if s.nodeState[v] == stateDeparted {
			continue
		}
		s.forEachPiece(v, func(p int) { dst[p]++ })
	}
}

// gainPiece records node v gaining piece p, maintaining the incremental
// rarity state: the global holder count and the cached local view of every
// neighbor of v. This is the swarm's unit of work — O(degree) counter
// bumps per piece gained, replacing the per-receiver per-tick
// O(degree·pieces) bitset rescans that dominated large runs.
//
// The loop bumps every neighbor's row unconditionally, including rows of
// neighbors that already completed or departed and whose rows can never be
// read again (snapshots are only taken for leeching transfer receivers).
// Skipping dead rows via an L2-resident liveness bitmap was tried and
// measured SLOWER at n=10^6 even with 97% of rows dead: the probe adds a
// dependent load and a data-dependent branch to every visit, while the
// "wasted" counter bumps overlap each other through memory-level
// parallelism. Write-only garbage is cheaper than a mispredicted skip.
//
//lotus:allocfree
func (s *Sim) gainPiece(v, p int) {
	wi := v*s.wpn + p>>6
	m := uint64(1) << (uint(p) & 63)
	if s.pieceWords[wi]&m != 0 {
		return
	}
	s.pieceWords[wi] |= m
	s.pieceCnt[v]++
	s.holders[p]++
	if s.wideRarity {
		bumpRows(s.rarity16, s.adj(v), s.cfg.Pieces, p)
	} else {
		bumpRows(s.rarity8, s.adj(v), s.cfg.Pieces, p)
	}
}

// bumpRows adds one to piece p's counter in every listed neighbor's row.
//
//lotus:allocfree
func bumpRows[T rarityCell](r []T, adj []int32, P, p int) {
	for _, w := range adj {
		r[int(w)*P+p]++
	}
}

// dropRows subtracts one from piece p's counter in every listed neighbor's
// row.
//
//lotus:allocfree
func dropRows[T rarityCell](r []T, adj []int32, P, p int) {
	for _, w := range adj {
		r[int(w)*P+p]--
	}
}

// departNode transitions v to departed, subtracting its holdings from the
// global holder counts and from every neighbor's rarity view exactly once.
// Departed nodes never gain pieces, so no further maintenance is needed.
//
//lotus:allocfree
func (s *Sim) departNode(v int) {
	if s.nodeState[v] == stateDeparted {
		return
	}
	s.nodeState[v] = stateDeparted
	P := s.cfg.Pieces
	adj := s.adj(v)
	s.forEachPiece(v, func(p int) {
		s.holders[p]--
		if s.wideRarity {
			dropRows(s.rarity16, adj, P, p)
		} else {
			dropRows(s.rarity8, adj, P, p)
		}
	})
}

// Tick returns the next tick to simulate.
func (s *Sim) Tick() int { return s.tick }

// Run simulates the full horizon.
func (s *Sim) Run() (Result, error) {
	for !s.Finished() {
		if err := s.Step(); err != nil {
			return Result{}, err
		}
	}
	return s.finish(), nil
}

// Finished reports whether the horizon has been reached or every leecher
// has left the leeching state with no arrivals still due (nothing further
// can change).
func (s *Sim) Finished() bool {
	return s.tick >= s.cfg.Ticks || (s.leeching == 0 && s.churn.JoinsAhead() == 0)
}

// Snapshot returns the Result summarizing the run so far.
func (s *Sim) Snapshot() (any, error) { return s.finish(), nil }

// Step simulates one tick.
//
//lotus:allocfree
func (s *Sim) Step() error {
	if s.tick >= s.cfg.Ticks {
		return errors.New("swarm: horizon exhausted")
	}
	// Lifecycle events due this tick take effect before any transfer or
	// attack targeting, so the adversary learns of a departure before it
	// would serve the leaver.
	for ev, ok := s.churn.Next(s.tick); ok; ev, ok = s.churn.Next(s.tick) {
		if s.isAttacker != nil && s.isAttacker[ev.Node] {
			continue // adversary infrastructure does not churn
		}
		if ev.Join {
			s.rejoinNode(ev.Node)
		} else {
			s.churnLeave(ev.Node)
		}
	}
	if s.cfg.Attack != AttackOff && s.tick >= s.cfg.AttackStartTick &&
		(s.cfg.AttackStopTick == 0 || s.tick < s.cfg.AttackStopTick) {
		s.runPhase(phaseAttack, s.attackStep)
	}
	if s.adv != nil && s.advInstant && s.tick >= s.cfg.AttackStartTick &&
		(s.cfg.AttackStopTick == 0 || s.tick < s.cfg.AttackStopTick) {
		s.runPhase(phaseAttack, s.advSatiateStep)
	}
	if s.tick%s.cfg.RotateInterval == 0 {
		s.recomputeUnchokes()
	}
	s.runPhase(phaseTransfer, s.transferStep)
	if s.cfg.Endgame {
		s.runPhase(phaseEndgame, s.endgameStep)
	}
	s.runPhase(phaseLifecycle, s.lifecycleStep)
	if s.prof != nil {
		s.prof.Ticks++
	}
	s.tick++
	return nil
}

// churnLeave removes leecher v on a churn event. departNode already owes
// the rarity and holder subtraction; on top of that the leeching counter
// drops when a downloader leaves, and the adversary is told so a satiated
// slot that later re-arrives is not inherited as a standing target.
//
//lotus:allocfree
func (s *Sim) churnLeave(v int) {
	if s.nodeState[v] == stateDeparted {
		return
	}
	if s.nodeState[v] == stateLeeching {
		s.leeching--
	}
	s.departNode(v)
	if s.adv != nil {
		sim.NotifyDeparture(s.adv, s.tick, v)
	}
}

// rejoinNode (re)admits slot v as a fresh empty leecher. The departed
// node's holdings were already subtracted from the holder counts and every
// neighbor's rarity view by departNode, and its own rarity row was
// maintained throughout its absence (gain and departure deltas bump all
// neighbor rows unconditionally), so clearing the piece words is the only
// state that needs touching — plus the per-window reciprocation counters,
// which a fresh node starts at zero.
//
//lotus:allocfree
func (s *Sim) rejoinNode(v int) {
	if s.nodeState[v] != stateDeparted {
		return
	}
	base := v * s.wpn
	clear(s.pieceWords[base : base+s.wpn])
	s.pieceCnt[v] = 0
	clear(s.recvCnt[s.adjOff[v]:s.adjOff[v+1]])
	s.nodeState[v] = stateLeeching
	s.finished[v] = -1
	s.fromAtk[v] = 0
	s.uploaded[v] = 0
	s.leeching++
}

// attackStep satiates the attacker's current targets: it uploads missing
// pieces to them directly, up to its uplink budget for the tick.
//
//lotus:allocfree
func (s *Sim) attackStep() {
	targets := s.pickTargets()
	budget := s.cfg.AttackerUplink
	for _, t := range targets {
		if budget == 0 {
			break
		}
		missing := s.appendMissing(t, s.missBuf[:0])
		s.missBuf = missing
		for _, p := range missing {
			if budget == 0 {
				break
			}
			if s.def != nil && s.def.Admit(s.tick, -1, t, 1) == 0 {
				break
			}
			s.gainPiece(t, p)
			s.fromAtk[t]++
			s.res.AttackerUploaded++
			budget--
		}
	}
}

// advSatiateStep is the instantly-satiating (ideal) adversary's tick: it
// uploads missing pieces directly to its satiation targets, spending up to
// the uplink budget, gated per target by the defense's Admit hook. The
// sparse member list makes the pass O(|satiated set|), not O(Leechers).
//
//lotus:allocfree
func (s *Sim) advSatiateStep() {
	targets := s.adv.Targets(s.tick)
	budget := s.advUplink
	for _, t := range targets.Members() {
		if budget == 0 {
			break
		}
		if t >= s.cfg.Leechers || s.isAttacker[t] || s.nodeState[t] != stateLeeching {
			continue
		}
		missing := s.appendMissing(t, s.missBuf[:0])
		s.missBuf = missing
		for _, p := range missing {
			if budget == 0 {
				break
			}
			if s.def != nil && s.def.Admit(s.tick, -1, t, 1) == 0 {
				break // this target's per-tick acceptance is exhausted
			}
			s.gainPiece(t, p)
			s.fromAtk[t]++
			s.res.AttackerUploaded++
			budget--
		}
	}
}

// pickTargets returns the AttackTargets leechers the adversary focuses on.
//
//lotus:allocfree
func (s *Sim) pickTargets() []int {
	cands := s.targetBuf[:0]
	for v := 0; v < s.cfg.Leechers; v++ {
		if s.nodeState[v] == stateLeeching {
			cands = append(cands, v)
		}
	}
	s.targetBuf = cands
	if len(cands) == 0 {
		return nil
	}
	// Both orderings are strict total orders (ties broken by node id), so
	// the sorted result is algorithm-independent and any correct sort
	// reproduces the historical sort.Slice output exactly.
	switch s.cfg.Attack {
	case AttackTopUploaders:
		slices.SortFunc(cands, func(a, b int) int {
			if s.uploaded[a] != s.uploaded[b] {
				if s.uploaded[a] > s.uploaded[b] {
					return -1
				}
				return 1
			}
			return a - b
		})
	case AttackRarePieceHolders:
		// Lower is rarer: score each candidate by its rarest held piece,
		// judged from the maintained global holder counts.
		for _, v := range cands {
			best := int32(s.n + 1)
			s.forEachPiece(v, func(p int) {
				if s.holders[p] < best {
					best = s.holders[p]
				}
			})
			s.rareScore[v] = best
		}
		slices.SortFunc(cands, func(a, b int) int {
			if s.rareScore[a] != s.rareScore[b] {
				return int(s.rareScore[a] - s.rareScore[b])
			}
			return a - b
		})
	default:
		return nil
	}
	if len(cands) > s.cfg.AttackTargets {
		cands = cands[:s.cfg.AttackTargets]
	}
	return cands
}

// recomputeUnchokes rebuilds every node's unchoke set: top reciprocators by
// pieces received in the last window plus one optimistic unchoke; seeds
// unchoke random interested peers. Reciprocation counters reset afterwards.
//
// The rebuild is split in two passes. Peer scoring — which neighbors are
// interested, ranked by reciprocation for leechers — is a pure read of swarm
// state, so it shards across the worker pool for large populations with
// bit-identical results. Slot selection consumes the tick's RNG stream and
// stays sequential in node order, exactly as before the split.
//
//lotus:allocfree
func (s *Sim) recomputeUnchokes() {
	if s.adv != nil {
		// Pin the targeting epoch before any concurrent OnExchange probe:
		// a rotating targeter re-draws lazily inside Targets, and that
		// mutation must happen on this goroutine, not inside a shard.
		s.adv.Targets(s.tick)
	}
	score := func(start, end int) {
		for v := start; v < end; v++ {
			base := s.adjOff[v]
			cnt := 0
			if s.nodeState[v] != stateDeparted {
				isAtk := s.isAttacker != nil && s.isAttacker[v]
				for k, pp := range s.adj(v) {
					p := int(pp)
					if s.nodeState[p] != stateLeeching {
						continue
					}
					// A trade attacker unchokes only its satiation targets.
					if isAtk && !s.adv.OnExchange(s.tick, v, p) {
						continue
					}
					if s.hasPieceFor(v, p) {
						s.interested[base+cnt] = int32(k)
						cnt++
					}
				}
				if s.nodeState[v] == stateLeeching && cnt > 1 {
					sortByRecv(s.interested[base:base+cnt], s.recvCnt[base:s.adjOff[v+1]])
				}
			}
			s.intCnt[v] = int32(cnt)
		}
	}
	s.runPhase(phaseUnchokeScore, func() {
		if s.sharded() {
			sim.ParallelFor(s.n, 0, func(_, start, end int) { score(start, end) })
		} else {
			score(0, s.n)
		}
	})

	s.runPhase(phaseUnchokeSelect, func() {
		rng := s.rng.ChildN("unchoke", s.tick)
		for v := 0; v < s.n; v++ {
			base := s.adjOff[v]
			interested := s.interested[base : base+int(s.intCnt[v])]
			ubase := v * s.slotStride
			ucnt := 0
			if s.nodeState[v] == stateDeparted || len(interested) == 0 {
				s.unchokedCnt[v] = 0
				continue
			}
			slots := s.cfg.UploadSlots
			if s.nodeState[v] == stateSeeding {
				// Seeds have no reciprocation signal; rotate randomly.
				rng.Shuffle(len(interested), func(a, b int) {
					interested[a], interested[b] = interested[b], interested[a]
				})
				take := min(len(interested), slots)
				copy(s.unchoked[ubase:ubase+take], interested[:take])
				s.unchokedCnt[v] = int32(take)
				continue
			}
			regular := slots - 1
			if regular > len(interested) {
				regular = len(interested)
			}
			copy(s.unchoked[ubase:ubase+regular], interested[:regular])
			ucnt = regular
			if rest := interested[regular:]; len(rest) > 0 {
				s.unchoked[ubase+ucnt] = rest[rng.IntN(len(rest))] // optimistic
				ucnt++
			}
			s.unchokedCnt[v] = int32(ucnt)
		}
		clear(s.recvCnt)
	})
}

// sortByRecv orders list — peer-set positions, all distinct — by pieces
// received in the window (recv, indexed by position) descending, ties
// toward the lower position. The keys form a strict total order, so the
// result is exactly what any comparison sort (including the historical
// sort.Slice) produces. Interested lists are degree-bounded and usually
// short, so a branch-light insertion sort beats a general sort without
// allocating; genuinely wide lists fall back to slices.SortFunc, which is
// also allocation-free.
//
//lotus:allocfree
func sortByRecv(list []int32, recv []int32) {
	if len(list) > 48 {
		slices.SortFunc(list, func(a, b int32) int {
			ra, rb := recv[a], recv[b]
			if ra != rb {
				if ra > rb {
					return -1
				}
				return 1
			}
			return int(a - b)
		})
		return
	}
	for i := 1; i < len(list); i++ {
		x := list[i]
		rx := recv[x]
		j := i
		for j > 0 {
			y := list[j-1]
			ry := recv[y]
			if ry > rx || (ry == rx && y < x) {
				break
			}
			list[j] = y
			j--
		}
		list[j] = x
	}
}

// hasPieceFor reports whether v holds any piece that p lacks.
//
//lotus:allocfree
func (s *Sim) hasPieceFor(v, p int) bool {
	if int(s.pieceCnt[v]) == s.cfg.Pieces {
		// Full nodes (seeds, trade attackers) interest exactly the
		// non-full — no word scan needed.
		return int(s.pieceCnt[p]) != s.cfg.Pieces
	}
	W := s.wpn
	vb := s.pieceWords[v*W : v*W+W]
	pb := s.pieceWords[p*W : p*W+W]
	for i, w := range vb {
		if w&^pb[i] != 0 {
			return true
		}
	}
	return false
}

// snapFor returns receiver v's piece-rarity view for the current tick, read
// from the given live/snapshot arena pair. Rarity is judged from each
// receiver's local peer-set view, as in BitTorrent: a global snapshot would
// make every receiver chase the same piece each tick (herding), destroying
// the diversity the policy exists to create. The view a receiver takes at
// its first transfer of the tick is frozen for the rest of the tick — the
// semantics the rescan implementation had — by copying the live counter row
// once per receiver per tick: O(Pieces) instead of the rescan's
// O(degree·pieces).
//
//lotus:allocfree
func snapFor[T rarityCell](s *Sim, rarity, snap []T, v int) []T {
	P := s.cfg.Pieces
	row := snap[v*P : (v+1)*P]
	if s.snapTick[v] == int32(s.tick) {
		return row
	}
	if s.prof != nil {
		t := time.Now() //lotus:ignore detrand rarity-time attribution feeds the bench profile, never simulation state
		copy(row, rarity[v*P:(v+1)*P])
		s.prof.d[phaseRarity] += time.Since(t) //lotus:ignore detrand rarity-time attribution feeds the bench profile, never simulation state
	} else {
		copy(row, rarity[v*P:(v+1)*P])
	}
	s.snapTick[v] = int32(s.tick)
	return row
}

// transferStep moves one piece along every unchoked, interested link. The
// body is generic over the rarity counter width; this dispatcher binds the
// arena pair once per tick.
//
//lotus:allocfree
func (s *Sim) transferStep() {
	if s.wideRarity {
		transferPass(s, s.rarity16, s.snap16)
	} else {
		transferPass(s, s.rarity8, s.snap8)
	}
}

//lotus:allocfree
func transferPass[T rarityCell](s *Sim, rarity, snap []T) {
	rng := s.rng.ChildN("transfer", s.tick)
	order := rng.PermInto(s.permBuf, s.n)
	s.permBuf = order
	// The snapshot is taken at the receiver's first transfer attempt of the
	// tick — not lazily at the first rarest-first read — because that is
	// when the rescan implementation froze each receiver's view, and a
	// later freeze would see gains from intervening transfers. Under the
	// pure-random policy the snapshot is never read, so it is skipped.
	snapshots := s.cfg.Selection == SelectRarestFirst
	for _, v := range order {
		if s.nodeState[v] == stateDeparted {
			continue
		}
		cnt := int(s.unchokedCnt[v])
		if cnt == 0 {
			continue
		}
		base := s.adjOff[v]
		ubase := v * s.slotStride
		for _, k := range s.unchoked[ubase : ubase+cnt] {
			e := base + int(k)
			p := int(s.adjFlat[e])
			if s.nodeState[p] != stateLeeching {
				continue
			}
			var counts []T
			if snapshots {
				counts = snapFor(s, rarity, snap, p)
			}
			piece, ok := selectPiece(s, v, p, counts, rng)
			if !ok {
				continue
			}
			if s.def != nil && s.def.Admit(s.tick, v, p, 1) == 0 {
				continue
			}
			s.gainPiece(p, piece)
			s.recvCnt[s.adjOff[p]+int(s.revPos[e])]++
			s.uploaded[v]++
		}
	}
}

// selectPiece applies the receiver's selection policy to the sender's
// holdings, judging rarity from counts, the receiver's tick-frozen local
// snapshot. Candidates — pieces the sender holds and the receiver lacks —
// are scanned straight out of the piece words in ascending order, the same
// order the historical materialized candidate slice had, so the RNG draws
// (one IntN over the candidate count, or one over the tie count) are
// exactly the draws that implementation made.
//
//lotus:allocfree
func selectPiece[T rarityCell](s *Sim, sender, receiver int, counts []T, rng *simrng.Source) (int, bool) {
	W := s.wpn
	sb := s.pieceWords[sender*W : sender*W+W]
	rb := s.pieceWords[receiver*W : receiver*W+W]
	total := 0
	for i, w := range sb {
		total += bits.OnesCount64(w &^ rb[i])
	}
	if total == 0 {
		return 0, false
	}
	if s.cfg.Selection == SelectRandom || int(s.pieceCnt[receiver]) < s.cfg.RandomFirstCount {
		return nthDiff(sb, rb, rng.IntN(total)), true
	}
	// Rarest first, breaking ties uniformly at random: deterministic
	// tie-breaking would make every receiver chase the same piece and
	// destroy diversity — the opposite of the policy's purpose. With
	// popularity weights installed the tie-break is weighted instead —
	// demand skews which of the equally-rare pieces moves.
	weights := s.pieceWeights
	best := ^T(0)
	ties := 0
	wTotal := 0.0
	for i, w := range sb {
		d := w &^ rb[i]
		wordBase := i * 64
		for d != 0 {
			p := wordBase + bits.TrailingZeros64(d)
			c := counts[p]
			if c < best {
				best = c
				ties = 1
				if weights != nil {
					wTotal = weights[p]
				}
			} else if c == best {
				ties++
				if weights != nil {
					wTotal += weights[p]
				}
			}
			d &= d - 1
		}
	}
	if weights != nil && wTotal > 0 {
		x := rng.Float64() * wTotal
		acc := 0.0
		last := -1
		for i, w := range sb {
			d := w &^ rb[i]
			wordBase := i * 64
			for d != 0 {
				p := wordBase + bits.TrailingZeros64(d)
				if counts[p] == best {
					acc += weights[p]
					last = p
					if x < acc {
						return p, true
					}
				}
				d &= d - 1
			}
		}
		return last, true // float round-off: fall back to the last tie
	}
	k := rng.IntN(ties)
	for i, w := range sb {
		d := w &^ rb[i]
		wordBase := i * 64
		for d != 0 {
			p := wordBase + bits.TrailingZeros64(d)
			if counts[p] == best {
				if k == 0 {
					return p, true
				}
				k--
			}
			d &= d - 1
		}
	}
	panic("swarm: rarest-first tie selection out of range")
}

// nthDiff returns the k-th (ascending) piece set in sb but clear in rb.
//
//lotus:allocfree
func nthDiff(sb, rb []uint64, k int) int {
	for i, w := range sb {
		d := w &^ rb[i]
		c := bits.OnesCount64(d)
		if k >= c {
			k -= c
			continue
		}
		for ; k > 0; k-- {
			d &= d - 1
		}
		return i*64 + bits.TrailingZeros64(d)
	}
	panic("swarm: diff selection out of range")
}

// scanLeechers collects, in ascending node order, the nodes in [0, limit)
// satisfying keep. keep must be a pure read of swarm state: for large
// populations the scan shards across the worker pool, and shard-order
// concatenation makes the result bit-identical to the sequential scan. The
// returned slice aliases s.scanBuf and is valid until the next call.
//
//lotus:allocfree
func (s *Sim) scanLeechers(limit int, keep func(v int) bool) []int32 {
	out := s.scanBuf[:0]
	if !s.sharded() {
		for v := 0; v < limit; v++ {
			if keep(v) {
				out = append(out, int32(v))
			}
		}
		s.scanBuf = out
		return out
	}
	// A coarser grain than DefaultGrain: the per-node predicate is a couple
	// of array reads, so smaller shards would be all fan-out overhead.
	const grain = 1 << 15
	shards := (limit + grain - 1) / grain
	if cap(s.shardBufs) < shards {
		s.shardBufs = make([][]int32, shards) //lotus:allocsetup shard-buffer pool grows once on first sharded scan, then steady-state ticks reuse it
	}
	s.shardBufs = s.shardBufs[:shards]
	sim.ParallelFor(limit, grain, func(shard, start, end int) {
		buf := s.shardBufs[shard][:0]
		for v := start; v < end; v++ {
			if keep(v) {
				buf = append(buf, int32(v))
			}
		}
		s.shardBufs[shard] = buf
	})
	for _, buf := range s.shardBufs {
		out = append(out, buf...)
	}
	s.scanBuf = out
	return out
}

// endgameStep lets nearly finished leechers pull one missing piece from any
// peer-set member that holds it. The candidate gate — leeching, within
// EndgameThreshold of done — reads only the node's own state, which no
// endgame pull of another node mutates, so the scan shards while the
// RNG-consuming pulls stay sequential in node order.
//
//lotus:allocfree
func (s *Sim) endgameStep() {
	P := s.cfg.Pieces
	thr := s.cfg.EndgameThreshold
	cands := s.scanLeechers(s.cfg.Leechers, func(v int) bool {
		if s.nodeState[v] != stateLeeching {
			return false
		}
		miss := P - int(s.pieceCnt[v])
		return miss > 0 && miss <= thr
	})
	rng := s.rng.ChildN("endgame", s.tick)
	for _, vv := range cands {
		v := int(vv)
		missing := s.appendMissing(v, s.missBuf[:0])
		s.missBuf = missing
		p := missing[rng.IntN(len(missing))]
		for _, nbb := range s.adj(v) {
			nb := int(nbb)
			if s.nodeState[nb] == stateDeparted || !s.hasPiece(nb, p) {
				continue
			}
			if s.isAttacker != nil && s.isAttacker[nb] && !s.adv.OnExchange(s.tick, nb, v) {
				continue // the attacker stonewalls non-targets even in endgame
			}
			if s.def != nil && s.def.Admit(s.tick, nb, v, 1) == 0 {
				continue
			}
			s.gainPiece(v, p)
			s.uploaded[nb]++
			break
		}
	}
}

// lifecycleStep handles completions and departures. Completion detection is
// a pure read (a leecher's done-ness depends only on its own pieces), so it
// shards; the bookkeeping — including the rarity subtraction a departure
// owes — applies sequentially in node order.
//
//lotus:allocfree
func (s *Sim) lifecycleStep() {
	P := int32(s.cfg.Pieces)
	done := s.scanLeechers(s.cfg.Leechers, func(v int) bool {
		return s.nodeState[v] == stateLeeching && s.pieceCnt[v] == P
	})
	for _, vv := range done {
		v := int(vv)
		s.finished[v] = s.tick
		if s.fromAtk[v]*2 > s.cfg.Pieces {
			s.res.SatiatedByAttacker++
		}
		if s.cfg.SeedAfterComplete {
			s.nodeState[v] = stateSeeding
		} else {
			s.departNode(v)
		}
		s.leeching--
	}
	if s.cfg.SeedDepartTick > 0 && s.tick >= s.cfg.SeedDepartTick && s.nodeState[s.seedID] == stateSeeding {
		s.departNode(s.seedID)
	}
}

func (s *Sim) finish() Result {
	res := s.res
	var ticks []float64
	done := 0
	for v := 0; v < s.cfg.Leechers; v++ {
		if s.isAttacker != nil && s.isAttacker[v] {
			continue // attacker-controlled leechers are not victims
		}
		t := float64(s.cfg.Ticks)
		if s.finished[v] >= 0 {
			done++
			t = float64(s.finished[v])
		}
		ticks = append(ticks, t)
	}
	if len(ticks) == 0 {
		return res
	}
	res.CompletedFraction = float64(done) / float64(len(ticks))
	sum := 0.0
	for _, t := range ticks {
		sum += t
	}
	res.MeanCompletionTick = sum / float64(len(ticks))
	sort.Float64s(ticks)
	res.MedianCompletionTick = ticks[len(ticks)/2]

	if s.leeching > 0 {
		for _, c := range s.holders {
			if c == 0 {
				res.LostPieces++
			}
		}
	}
	return res
}
