// Package swarm implements a BitTorrent-like file-sharing swarm, the third
// satiable system the paper analyzes. It exists to reproduce two of the
// paper's qualitative claims:
//
//   - "Despite the attack being possible in BitTorrent, it seems likely to
//     do significantly less damage" — satiating leechers turns them into
//     seeds (or removes net downloaders), which is "often actually a net
//     benefit to the torrent".
//
//   - "The attacker could try and target leechers who have rare pieces to
//     artificially create a 'last pieces problem,' but BitTorrent's rarest
//     first policy does a good job of resolving this problem."
//
// The model is tick-based. Leechers maintain a bounded peer set, unchoke
// their top reciprocators plus one optimistic unchoke, and transfer one
// piece per unchoked interested peer per tick. Receivers choose pieces by a
// pluggable selection policy (random, random-first + rarest-first). A
// simplified endgame mode lets nearly finished leechers pull their last
// pieces from any peer-set member holding them.
package swarm

import (
	"errors"
	"fmt"
	"sort"

	"lotuseater/internal/bitset"
	"lotuseater/internal/graph"
	"lotuseater/internal/sim"
	"lotuseater/internal/simrng"
)

// Selection is a piece-selection policy.
type Selection int

const (
	// SelectRandom picks a uniformly random needed piece — the strawman
	// policy with no rarity awareness.
	SelectRandom Selection = iota + 1
	// SelectRarestFirst picks the needed piece with the fewest holders in
	// the receiver's peer set, after a short random-first bootstrap.
	SelectRarestFirst
)

// String returns the policy name.
func (s Selection) String() string {
	switch s {
	case SelectRandom:
		return "random"
	case SelectRarestFirst:
		return "rarest-first"
	default:
		return fmt.Sprintf("swarm.Selection(%d)", int(s))
	}
}

// AttackKind selects the adversary's targeting rule.
type AttackKind int

const (
	// AttackOff disables the attacker.
	AttackOff AttackKind = iota + 1
	// AttackTopUploaders satiates the leechers currently uploading the
	// most — the paper's "targeting users that are uploading more than
	// they download".
	AttackTopUploaders
	// AttackRarePieceHolders satiates leechers holding the swarm's rarest
	// pieces, to remove those pieces' carriers (the artificial "last
	// pieces problem").
	AttackRarePieceHolders
)

// String returns the attack name.
func (k AttackKind) String() string {
	switch k {
	case AttackOff:
		return "off"
	case AttackTopUploaders:
		return "top-uploaders"
	case AttackRarePieceHolders:
		return "rare-piece-holders"
	default:
		return fmt.Sprintf("swarm.AttackKind(%d)", int(k))
	}
}

// Config parameterizes a swarm run.
type Config struct {
	// Leechers join at tick 0 with no pieces.
	Leechers int
	// Pieces is the file size in pieces.
	Pieces int
	// UploadSlots is the number of concurrent unchokes per node (BitTorrent
	// default 4), including the optimistic slot.
	UploadSlots int
	// RotateInterval is how many ticks between unchoke recomputations.
	RotateInterval int
	// PeerSetSize is each node's approximate neighbor count.
	PeerSetSize int
	// Ticks is the horizon.
	Ticks int
	// Selection is the receivers' piece-selection policy.
	Selection Selection
	// RandomFirstCount pieces are picked at random before rarest-first
	// engages (BitTorrent's bootstrap behavior).
	RandomFirstCount int
	// Endgame, when true, lets leechers missing at most EndgameThreshold
	// pieces pull one piece per tick from any peer-set member.
	Endgame bool
	// EndgameThreshold is the missing-piece count that triggers endgame.
	EndgameThreshold int
	// SeedDepartTick is when the original seed leaves (0 = never). A
	// departing initial seed is what makes rare pieces possible.
	SeedDepartTick int
	// SeedAfterComplete keeps finished leechers seeding; when false they
	// depart immediately (the pessimistic population the rare-piece attack
	// needs).
	SeedAfterComplete bool

	// Attack selects the adversary.
	Attack AttackKind
	// AttackerUplink is the attacker's total upload capacity in pieces per
	// tick (it holds the whole file).
	AttackerUplink int
	// AttackTargets is how many leechers the attacker satiates at a time.
	AttackTargets int
	// AttackStartTick delays the attack.
	AttackStartTick int
	// AttackStopTick ends the attack (0 = never). A bounded campaign is
	// what the rare-piece attack needs: satiate carriers while pieces are
	// still scarce, then stop before the attacker's uploads have seeded
	// the whole swarm.
	AttackStopTick int
}

// DefaultConfig returns a modest healthy swarm.
func DefaultConfig() Config {
	return Config{
		Leechers:          120,
		Pieces:            128,
		UploadSlots:       4,
		RotateInterval:    3,
		PeerSetSize:       24,
		Ticks:             400,
		Selection:         SelectRarestFirst,
		RandomFirstCount:  4,
		Endgame:           true,
		EndgameThreshold:  3,
		SeedDepartTick:    0,
		SeedAfterComplete: true,
		Attack:            AttackOff,
	}
}

// Validate reports the first problem with the configuration, or nil.
func (c Config) Validate() error {
	switch {
	case c.Leechers < 2:
		return fmt.Errorf("swarm: need at least 2 leechers, got %d", c.Leechers)
	case c.Pieces < 1:
		return fmt.Errorf("swarm: Pieces must be positive, got %d", c.Pieces)
	case c.UploadSlots < 1:
		return fmt.Errorf("swarm: UploadSlots must be positive, got %d", c.UploadSlots)
	case c.RotateInterval < 1:
		return fmt.Errorf("swarm: RotateInterval must be positive, got %d", c.RotateInterval)
	case c.PeerSetSize < 2:
		return fmt.Errorf("swarm: PeerSetSize must be at least 2, got %d", c.PeerSetSize)
	case c.Ticks < 1:
		return fmt.Errorf("swarm: Ticks must be positive, got %d", c.Ticks)
	case c.Selection != SelectRandom && c.Selection != SelectRarestFirst:
		return fmt.Errorf("swarm: unknown selection policy %d", c.Selection)
	case c.RandomFirstCount < 0:
		return fmt.Errorf("swarm: RandomFirstCount must be non-negative, got %d", c.RandomFirstCount)
	case c.Endgame && c.EndgameThreshold < 1:
		return fmt.Errorf("swarm: EndgameThreshold must be positive with Endgame on, got %d", c.EndgameThreshold)
	case c.SeedDepartTick < 0:
		return fmt.Errorf("swarm: SeedDepartTick must be non-negative, got %d", c.SeedDepartTick)
	case c.Attack < AttackOff || c.Attack > AttackRarePieceHolders:
		return fmt.Errorf("swarm: unknown attack kind %d", c.Attack)
	case c.Attack != AttackOff && c.AttackerUplink < 1:
		return fmt.Errorf("swarm: AttackerUplink must be positive when attacking, got %d", c.AttackerUplink)
	case c.Attack != AttackOff && c.AttackTargets < 1:
		return fmt.Errorf("swarm: AttackTargets must be positive when attacking, got %d", c.AttackTargets)
	case c.AttackStartTick < 0:
		return fmt.Errorf("swarm: AttackStartTick must be non-negative, got %d", c.AttackStartTick)
	case c.AttackStopTick < 0:
		return fmt.Errorf("swarm: AttackStopTick must be non-negative, got %d", c.AttackStopTick)
	case c.AttackStopTick > 0 && c.AttackStopTick <= c.AttackStartTick:
		return fmt.Errorf("swarm: AttackStopTick %d must exceed AttackStartTick %d", c.AttackStopTick, c.AttackStartTick)
	}
	return nil
}

// state is a node's lifecycle phase.
type state int

const (
	stateLeeching state = iota + 1
	stateSeeding
	stateDeparted
)

// Result summarizes a swarm run.
type Result struct {
	// CompletedFraction is the fraction of leechers that finished within
	// the horizon.
	CompletedFraction float64
	// MeanCompletionTick averages finish ticks, counting unfinished
	// leechers as the horizon (so stalls are visible, not hidden).
	MeanCompletionTick float64
	// MedianCompletionTick is the median finish tick with the same
	// convention.
	MedianCompletionTick float64
	// LostPieces counts pieces that no present node holds while at least
	// one leecher still needs pieces — the signature of a successful
	// rare-piece attack. Zero when every leecher finished (nothing was
	// denied to anyone).
	LostPieces int
	// AttackerUploaded is the attacker's total upload in pieces.
	AttackerUploaded int
	// SatiatedByAttacker is how many leechers finished with more than half
	// their pieces coming from the attacker.
	SatiatedByAttacker int
}

// Option customizes a Sim.
type Option func(*Sim)

// WithAdversary installs a substrate-independent adversary strategy in
// place of the Config's swarm-specific Attack kinds. Its hooks map onto the
// swarm as follows: Place picks attacker-controlled leechers — crash and
// ideal attackers leave the protocol (their slots are dead weight), trade
// attackers hold the full file and unchoke only satiation targets; Targets
// names the leechers the external attacker satiates; an instantly-satiating
// (ideal) adversary uploads missing pieces to targets directly each tick,
// up to Config.AttackerUplink pieces (16 when unset).
func WithAdversary(a sim.Adversary) Option {
	return func(s *Sim) { s.adv = a }
}

// WithDefense installs a receiver-side defense: every piece acceptance —
// protocol transfers, endgame pulls, and attacker uploads (sender -1) — is
// gated by Admit, capping pieces accepted per sender per tick.
func WithDefense(d sim.Defense) Option {
	return func(s *Sim) { s.def = d }
}

// Sim is one swarm instance.
type Sim struct {
	cfg   Config
	rng   *simrng.Source
	peers *graph.Graph

	adv        sim.Adversary
	def        sim.Defense
	advTrades  bool
	advInstant bool
	advUplink  int
	isAttacker []bool

	n         int // leechers + 1 initial seed (node n-1)
	seedID    int
	pieces    []*bitset.Set
	nodeState []state
	finished  []int // tick completed, -1 otherwise
	// recvCnt[v][k] counts pieces v received this unchoke window from its
	// k-th peer (aligned with peers.AdjList(v)). Keying by peer-set position
	// instead of node id keeps reciprocation state O(n·degree), not O(n²) —
	// the representation that makes million-leecher swarms possible.
	recvCnt  [][]int32
	uploaded []int   // total pieces uploaded, per node
	fromAtk  []int   // pieces received from the attacker, per node
	unchoked [][]int // sender -> receivers; backing arrays reused per window

	// interested[v] is per-node scratch for unchoke recomputation: the
	// peer-set positions of v's interested leechers, ranked for leechers.
	// Building it is a pure read of swarm state, so large populations shard
	// it across the worker pool (see WithEvalParallel).
	interested [][]int32
	// countsBuf[v] caches v's local piece-rarity view; countsTick tags the
	// tick it was computed for, reproducing the lazy per-tick snapshot the
	// map-based implementation took without reallocating it every tick.
	countsBuf  [][]uint16
	countsTick []int32
	permBuf    []int
	candBuf    []int // selectPiece candidate scratch (transfers run sequentially)

	// evalParallel > 0 forces sharded peer scoring, < 0 forces sequential,
	// 0 picks by population size.
	evalParallel int

	tick int
	res  Result
}

// evalParallelMinNodes is the population size at which unchoke scoring
// shards across the worker pool by default.
const evalParallelMinNodes = 1 << 15

// WithEvalParallel forces the peer-scoring pass of unchoke recomputation —
// a pure read of swarm state — on or off the sharded sim.ParallelFor path.
// Results are bit-identical either way (tested); by default sharding engages
// for populations of evalParallelMinNodes and up.
func WithEvalParallel(on bool) Option {
	return func(s *Sim) {
		if on {
			s.evalParallel = 1
		} else {
			s.evalParallel = -1
		}
	}
}

// New builds a Sim, deterministic in (cfg, seed). Node ids 0..Leechers-1
// are leechers; node Leechers is the initial seed.
func New(cfg Config, seed uint64, opts ...Option) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Leechers + 1
	s := &Sim{
		cfg:        cfg,
		rng:        simrng.New(seed),
		n:          n,
		seedID:     n - 1,
		pieces:     make([]*bitset.Set, n),
		nodeState:  make([]state, n),
		finished:   make([]int, n),
		recvCnt:    make([][]int32, n),
		uploaded:   make([]int, n),
		fromAtk:    make([]int, n),
		unchoked:   make([][]int, n),
		interested: make([][]int32, n),
		countsBuf:  make([][]uint16, n),
		countsTick: make([]int32, n),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.adv != nil && cfg.Attack != AttackOff {
		return nil, errors.New("swarm: Config.Attack conflicts with WithAdversary")
	}
	deg := cfg.PeerSetSize / 2
	if deg < 1 {
		deg = 1
	}
	s.peers = graph.RandomRegularish(n, deg, s.rng.Child("peers"))
	for v := 0; v < n; v++ {
		s.pieces[v] = bitset.New(cfg.Pieces)
		s.nodeState[v] = stateLeeching
		s.finished[v] = -1
		s.recvCnt[v] = make([]int32, len(s.peers.AdjList(v)))
		s.countsTick[v] = -1
	}
	s.pieces[s.seedID].Fill()
	s.nodeState[s.seedID] = stateSeeding
	s.finished[s.seedID] = 0
	if s.adv != nil {
		s.advTrades = sim.TradesInProtocol(s.adv)
		s.advInstant = sim.SatiatesInstantly(s.adv)
		s.advUplink = cfg.AttackerUplink
		if s.advUplink <= 0 {
			s.advUplink = 16
		}
		s.isAttacker = make([]bool, s.n)
		for _, a := range s.adv.Place(cfg.Leechers, s.rng.Child("adversary")) {
			if a < 0 || a >= cfg.Leechers {
				return nil, fmt.Errorf("swarm: adversary placed node %d outside [0,%d)", a, cfg.Leechers)
			}
			s.isAttacker[a] = true
			s.finished[a] = 0
			if s.advTrades {
				// Trade attackers hold the full file and seed selectively.
				s.pieces[a].Fill()
				s.nodeState[a] = stateSeeding
			} else {
				// Crash and ideal attacker nodes leave the protocol: no
				// service in, no service out — crashed peers.
				s.nodeState[a] = stateDeparted
			}
		}
	}
	return s, nil
}

// Tick returns the next tick to simulate.
func (s *Sim) Tick() int { return s.tick }

// Run simulates the full horizon.
func (s *Sim) Run() (Result, error) {
	for !s.Finished() {
		if err := s.Step(); err != nil {
			return Result{}, err
		}
	}
	return s.finish(), nil
}

// Finished reports whether the horizon has been reached or every leecher
// has left the leeching state (nothing further can change).
func (s *Sim) Finished() bool { return s.tick >= s.cfg.Ticks || s.allDone() }

// Snapshot returns the Result summarizing the run so far.
func (s *Sim) Snapshot() (any, error) { return s.finish(), nil }

func (s *Sim) allDone() bool {
	for v := 0; v < s.cfg.Leechers; v++ {
		if s.nodeState[v] == stateLeeching {
			return false
		}
	}
	return true
}

// Step simulates one tick.
func (s *Sim) Step() error {
	if s.tick >= s.cfg.Ticks {
		return errors.New("swarm: horizon exhausted")
	}
	if s.cfg.Attack != AttackOff && s.tick >= s.cfg.AttackStartTick &&
		(s.cfg.AttackStopTick == 0 || s.tick < s.cfg.AttackStopTick) {
		s.attackStep()
	}
	if s.adv != nil && s.advInstant && s.tick >= s.cfg.AttackStartTick &&
		(s.cfg.AttackStopTick == 0 || s.tick < s.cfg.AttackStopTick) {
		s.advSatiateStep()
	}
	if s.tick%s.cfg.RotateInterval == 0 {
		s.recomputeUnchokes()
	}
	s.transferStep()
	if s.cfg.Endgame {
		s.endgameStep()
	}
	s.lifecycleStep()
	s.tick++
	return nil
}

// attackStep satiates the attacker's current targets: it uploads missing
// pieces to them directly, up to its uplink budget for the tick.
func (s *Sim) attackStep() {
	targets := s.pickTargets()
	budget := s.cfg.AttackerUplink
	for _, t := range targets {
		if budget == 0 {
			break
		}
		missing := s.pieces[t].Missing()
		for _, p := range missing {
			if budget == 0 {
				break
			}
			if s.def != nil && s.def.Admit(s.tick, -1, t, 1) == 0 {
				break
			}
			s.pieces[t].Add(p)
			s.fromAtk[t]++
			s.res.AttackerUploaded++
			budget--
		}
	}
}

// advSatiateStep is the instantly-satiating (ideal) adversary's tick: it
// uploads missing pieces directly to its satiation targets, spending up to
// the uplink budget, gated per target by the defense's Admit hook. The
// sparse member list makes the pass O(|satiated set|), not O(Leechers).
func (s *Sim) advSatiateStep() {
	targets := s.adv.Targets(s.tick)
	budget := s.advUplink
	for _, t := range targets.Members() {
		if budget == 0 {
			break
		}
		if t >= s.cfg.Leechers || s.isAttacker[t] || s.nodeState[t] != stateLeeching {
			continue
		}
		for _, p := range s.pieces[t].Missing() {
			if budget == 0 {
				break
			}
			if s.def != nil && s.def.Admit(s.tick, -1, t, 1) == 0 {
				break // this target's per-tick acceptance is exhausted
			}
			s.pieces[t].Add(p)
			s.fromAtk[t]++
			s.res.AttackerUploaded++
			budget--
		}
	}
}

// peerPos returns the position of p in v's sorted peer set, or -1. Peer-set
// positions index recvCnt and interested.
func (s *Sim) peerPos(v, p int) int {
	adj := s.peers.AdjList(v)
	i := sort.SearchInts(adj, p)
	if i < len(adj) && adj[i] == p {
		return i
	}
	return -1
}

// pickTargets returns the AttackTargets leechers the adversary focuses on.
func (s *Sim) pickTargets() []int {
	var cands []int
	for v := 0; v < s.cfg.Leechers; v++ {
		if s.nodeState[v] == stateLeeching {
			cands = append(cands, v)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	switch s.cfg.Attack {
	case AttackTopUploaders:
		sort.Slice(cands, func(a, b int) bool {
			if s.uploaded[cands[a]] != s.uploaded[cands[b]] {
				return s.uploaded[cands[a]] > s.uploaded[cands[b]]
			}
			return cands[a] < cands[b]
		})
	case AttackRarePieceHolders:
		rarity := s.pieceHolderCounts()
		score := func(v int) int {
			// Lower is rarer: the node's rarest held piece.
			best := s.n + 1
			s.pieces[v].ForEach(func(p int) {
				if rarity[p] < best {
					best = rarity[p]
				}
			})
			return best
		}
		sort.Slice(cands, func(a, b int) bool {
			sa, sb := score(cands[a]), score(cands[b])
			if sa != sb {
				return sa < sb
			}
			return cands[a] < cands[b]
		})
	default:
		return nil
	}
	if len(cands) > s.cfg.AttackTargets {
		cands = cands[:s.cfg.AttackTargets]
	}
	return cands
}

// pieceHolderCounts returns, per piece, the number of present nodes holding
// it.
func (s *Sim) pieceHolderCounts() []int {
	counts := make([]int, s.cfg.Pieces)
	for v := 0; v < s.n; v++ {
		if s.nodeState[v] == stateDeparted {
			continue
		}
		s.pieces[v].ForEach(func(p int) { counts[p]++ })
	}
	return counts
}

// recomputeUnchokes rebuilds every node's unchoke set: top reciprocators by
// pieces received in the last window plus one optimistic unchoke; seeds
// unchoke random interested peers. Reciprocation counters reset afterwards.
//
// The rebuild is split in two passes. Peer scoring — which neighbors are
// interested, ranked by reciprocation for leechers — is a pure read of swarm
// state, so it shards across the worker pool for large populations with
// bit-identical results. Slot selection consumes the tick's RNG stream and
// stays sequential in node order, exactly as before the split.
func (s *Sim) recomputeUnchokes() {
	if s.adv != nil {
		// Pin the targeting epoch before any concurrent OnExchange probe:
		// a rotating targeter re-draws lazily inside Targets, and that
		// mutation must happen on this goroutine, not inside a shard.
		s.adv.Targets(s.tick)
	}
	score := func(start, end int) {
		for v := start; v < end; v++ {
			list := s.interested[v][:0]
			if s.nodeState[v] != stateDeparted {
				for k, p := range s.peers.AdjList(v) {
					if s.nodeState[p] != stateLeeching {
						continue
					}
					// A trade attacker unchokes only its satiation targets.
					if s.isAttacker != nil && s.isAttacker[v] && !s.adv.OnExchange(s.tick, v, p) {
						continue
					}
					if s.hasPieceFor(v, p) {
						list = append(list, int32(k))
					}
				}
				if s.nodeState[v] == stateLeeching && len(list) > 1 {
					// Rank by pieces received from the peer in the window;
					// ties break toward the lower node id (= lower peer-set
					// position, since peer sets are sorted).
					cnt := s.recvCnt[v]
					sort.Slice(list, func(a, b int) bool {
						ra, rb := cnt[list[a]], cnt[list[b]]
						if ra != rb {
							return ra > rb
						}
						return list[a] < list[b]
					})
				}
			}
			s.interested[v] = list
		}
	}
	if s.evalParallel > 0 || (s.evalParallel == 0 && s.n >= evalParallelMinNodes) {
		sim.ParallelFor(s.n, 0, func(_, start, end int) { score(start, end) })
	} else {
		score(0, s.n)
	}

	rng := s.rng.ChildN("unchoke", s.tick)
	for v := 0; v < s.n; v++ {
		adj := s.peers.AdjList(v)
		interested := s.interested[v]
		chosen := s.unchoked[v][:0]
		if s.nodeState[v] == stateDeparted || len(interested) == 0 {
			s.unchoked[v] = chosen
			continue
		}
		slots := s.cfg.UploadSlots
		if s.nodeState[v] == stateSeeding {
			// Seeds have no reciprocation signal; rotate randomly.
			rng.Shuffle(len(interested), func(a, b int) {
				interested[a], interested[b] = interested[b], interested[a]
			})
			take := min(len(interested), slots)
			for _, k := range interested[:take] {
				chosen = append(chosen, adj[k])
			}
			s.unchoked[v] = chosen
			continue
		}
		regular := slots - 1
		if regular > len(interested) {
			regular = len(interested)
		}
		for _, k := range interested[:regular] {
			chosen = append(chosen, adj[k])
		}
		if rest := interested[regular:]; len(rest) > 0 {
			chosen = append(chosen, adj[rest[rng.IntN(len(rest))]]) // optimistic
		}
		s.unchoked[v] = chosen
	}
	for v := 0; v < s.n; v++ {
		clear(s.recvCnt[v])
	}
}

// hasPieceFor reports whether v holds any piece that p lacks.
func (s *Sim) hasPieceFor(v, p int) bool {
	return s.pieces[v].HasDiff(s.pieces[p])
}

// transferStep moves one piece along every unchoked, interested link.
func (s *Sim) transferStep() {
	rng := s.rng.ChildN("transfer", s.tick)
	order := rng.PermInto(s.permBuf, s.n)
	s.permBuf = order
	// Rarity is judged from each receiver's local peer-set view, as in
	// BitTorrent. A global rarity snapshot would make every receiver chase
	// the same piece each tick (herding), destroying the diversity the
	// policy exists to create. The snapshot a receiver takes at its first
	// transfer of the tick is cached per node (tick-tagged, buffers reused
	// across the whole run), reproducing the old lazy-map behavior without
	// rebuilding a population-sized map every tick.
	countsFor := func(receiver int) []uint16 {
		counts := s.countsBuf[receiver]
		if s.countsTick[receiver] == int32(s.tick) {
			return counts
		}
		if counts == nil {
			counts = make([]uint16, s.cfg.Pieces)
			s.countsBuf[receiver] = counts
		} else {
			clear(counts)
		}
		for _, nb := range s.peers.AdjList(receiver) {
			if s.nodeState[nb] == stateDeparted {
				continue
			}
			s.pieces[nb].ForEach(func(p int) { counts[p]++ })
		}
		s.countsTick[receiver] = int32(s.tick)
		return counts
	}
	for _, v := range order {
		if s.nodeState[v] == stateDeparted {
			continue
		}
		for _, p := range s.unchoked[v] {
			if s.nodeState[p] != stateLeeching {
				continue
			}
			piece, ok := s.selectPiece(v, p, countsFor(p), rng)
			if !ok {
				continue
			}
			if s.def != nil && s.def.Admit(s.tick, v, p, 1) == 0 {
				continue
			}
			s.pieces[p].Add(piece)
			s.recvCnt[p][s.peerPos(p, v)]++
			s.uploaded[v]++
		}
	}
}

// selectPiece applies the receiver's selection policy to the sender's
// holdings.
func (s *Sim) selectPiece(sender, receiver int, holderCounts []uint16, rng *simrng.Source) (int, bool) {
	candidates := s.pieces[sender].AppendDiff(s.pieces[receiver], s.candBuf[:0])
	s.candBuf = candidates
	if len(candidates) == 0 {
		return 0, false
	}
	useRandom := s.cfg.Selection == SelectRandom ||
		s.pieces[receiver].Len() < s.cfg.RandomFirstCount
	if useRandom {
		return candidates[rng.IntN(len(candidates))], true
	}
	// Rarest first, breaking ties uniformly at random: deterministic
	// tie-breaking would make every receiver chase the same piece and
	// destroy diversity — the opposite of the policy's purpose.
	best := holderCounts[candidates[0]]
	for _, p := range candidates[1:] {
		if holderCounts[p] < best {
			best = holderCounts[p]
		}
	}
	ties := candidates[:0]
	for _, p := range candidates {
		if holderCounts[p] == best {
			ties = append(ties, p)
		}
	}
	return ties[rng.IntN(len(ties))], true
}

// endgameStep lets nearly finished leechers pull one missing piece from any
// peer-set member that holds it.
func (s *Sim) endgameStep() {
	rng := s.rng.ChildN("endgame", s.tick)
	for v := 0; v < s.cfg.Leechers; v++ {
		if s.nodeState[v] != stateLeeching {
			continue
		}
		// Gate on the O(1) missing count before materializing the list, so
		// nodes far from done cost nothing here.
		missCount := s.cfg.Pieces - s.pieces[v].Len()
		if missCount == 0 || missCount > s.cfg.EndgameThreshold {
			continue
		}
		missing := s.pieces[v].Missing()
		p := missing[rng.IntN(len(missing))]
		for _, nb := range s.peers.AdjList(v) {
			if s.nodeState[nb] == stateDeparted || !s.pieces[nb].Has(p) {
				continue
			}
			if s.isAttacker != nil && s.isAttacker[nb] && !s.adv.OnExchange(s.tick, nb, v) {
				continue // the attacker stonewalls non-targets even in endgame
			}
			if s.def != nil && s.def.Admit(s.tick, nb, v, 1) == 0 {
				continue
			}
			s.pieces[v].Add(p)
			s.uploaded[nb]++
			break
		}
	}
}

// lifecycleStep handles completions and departures.
func (s *Sim) lifecycleStep() {
	for v := 0; v < s.cfg.Leechers; v++ {
		if s.nodeState[v] != stateLeeching || !s.pieces[v].Full() {
			continue
		}
		s.finished[v] = s.tick
		if s.fromAtk[v]*2 > s.cfg.Pieces {
			s.res.SatiatedByAttacker++
		}
		if s.cfg.SeedAfterComplete {
			s.nodeState[v] = stateSeeding
		} else {
			s.nodeState[v] = stateDeparted
		}
	}
	if s.cfg.SeedDepartTick > 0 && s.tick >= s.cfg.SeedDepartTick && s.nodeState[s.seedID] == stateSeeding {
		s.nodeState[s.seedID] = stateDeparted
	}
}

func (s *Sim) finish() Result {
	res := s.res
	var ticks []float64
	done := 0
	for v := 0; v < s.cfg.Leechers; v++ {
		if s.isAttacker != nil && s.isAttacker[v] {
			continue // attacker-controlled leechers are not victims
		}
		t := float64(s.cfg.Ticks)
		if s.finished[v] >= 0 {
			done++
			t = float64(s.finished[v])
		}
		ticks = append(ticks, t)
	}
	if len(ticks) == 0 {
		return res
	}
	res.CompletedFraction = float64(done) / float64(len(ticks))
	sum := 0.0
	for _, t := range ticks {
		sum += t
	}
	res.MeanCompletionTick = sum / float64(len(ticks))
	sort.Float64s(ticks)
	res.MedianCompletionTick = ticks[len(ticks)/2]

	stuck := false
	for v := 0; v < s.cfg.Leechers; v++ {
		if s.nodeState[v] == stateLeeching {
			stuck = true
			break
		}
	}
	if stuck {
		counts := s.pieceHolderCounts()
		for _, c := range counts {
			if c == 0 {
				res.LostPieces++
			}
		}
	}
	return res
}
