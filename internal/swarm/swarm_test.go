package swarm

import (
	"strings"
	"testing"

	"lotuseater/internal/attack"
)

func quickCfg() Config {
	cfg := DefaultConfig()
	cfg.Leechers = 40
	cfg.Pieces = 48
	cfg.Ticks = 300
	return cfg
}

func mustRun(t *testing.T, cfg Config, seed uint64) Result {
	t.Helper()
	sim, err := New(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"too few leechers", func(c *Config) { c.Leechers = 1 }},
		{"zero pieces", func(c *Config) { c.Pieces = 0 }},
		{"zero slots", func(c *Config) { c.UploadSlots = 0 }},
		{"zero rotate", func(c *Config) { c.RotateInterval = 0 }},
		{"tiny peer set", func(c *Config) { c.PeerSetSize = 1 }},
		{"zero ticks", func(c *Config) { c.Ticks = 0 }},
		{"bad selection", func(c *Config) { c.Selection = Selection(9) }},
		{"negative random-first", func(c *Config) { c.RandomFirstCount = -1 }},
		{"endgame threshold", func(c *Config) { c.Endgame = true; c.EndgameThreshold = 0 }},
		{"negative seed depart", func(c *Config) { c.SeedDepartTick = -1 }},
		{"bad attack", func(c *Config) { c.Attack = AttackKind(9) }},
		{"attack without uplink", func(c *Config) { c.Attack = AttackTopUploaders; c.AttackTargets = 1 }},
		{"attack without targets", func(c *Config) { c.Attack = AttackTopUploaders; c.AttackerUplink = 1 }},
		{"stop before start", func(c *Config) {
			c.Attack = AttackTopUploaders
			c.AttackerUplink = 1
			c.AttackTargets = 1
			c.AttackStartTick = 5
			c.AttackStopTick = 5
		}},
	}
	for _, c := range cases {
		cfg := quickCfg()
		c.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStrings(t *testing.T) {
	if SelectRandom.String() != "random" || SelectRarestFirst.String() != "rarest-first" {
		t.Fatal("selection names")
	}
	if AttackOff.String() != "off" || AttackTopUploaders.String() != "top-uploaders" ||
		AttackRarePieceHolders.String() != "rare-piece-holders" {
		t.Fatal("attack names")
	}
	if !strings.Contains(Selection(7).String(), "7") || !strings.Contains(AttackKind(7).String(), "7") {
		t.Fatal("unknown enum strings")
	}
}

func TestHealthySwarmCompletes(t *testing.T) {
	res := mustRun(t, quickCfg(), 1)
	if res.CompletedFraction != 1 {
		t.Fatalf("healthy swarm completed %.3f", res.CompletedFraction)
	}
	if res.LostPieces != 0 {
		t.Fatalf("healthy swarm lost %d pieces", res.LostPieces)
	}
	if res.MeanCompletionTick <= 0 || res.MeanCompletionTick >= float64(quickCfg().Ticks) {
		t.Fatalf("mean completion tick %.1f", res.MeanCompletionTick)
	}
}

func TestRandomSelectionAlsoCompletes(t *testing.T) {
	cfg := quickCfg()
	cfg.Selection = SelectRandom
	res := mustRun(t, cfg, 1)
	if res.CompletedFraction < 0.95 {
		t.Fatalf("random selection completed %.3f", res.CompletedFraction)
	}
}

func TestDeterministicReplay(t *testing.T) {
	cfg := quickCfg()
	cfg.Attack = AttackTopUploaders
	cfg.AttackerUplink = 16
	cfg.AttackTargets = 4
	a := mustRun(t, cfg, 42)
	b := mustRun(t, cfg, 42)
	if a != b {
		t.Fatalf("same seed differs:\n%+v\n%+v", a, b)
	}
}

// TestTopUploaderAttackIsNetBenefit reproduces the paper's claim: satiating
// leechers (who then seed) does not hurt the torrent and generally helps.
func TestTopUploaderAttackIsNetBenefit(t *testing.T) {
	base := quickCfg()
	attacked := base
	attacked.Attack = AttackTopUploaders
	attacked.AttackerUplink = 16
	attacked.AttackTargets = 4
	var meanBase, meanAtk float64
	const seeds = 3
	for s := uint64(0); s < seeds; s++ {
		meanBase += mustRun(t, base, 10+s).MeanCompletionTick
		meanAtk += mustRun(t, attacked, 10+s).MeanCompletionTick
	}
	if meanAtk > meanBase {
		t.Fatalf("top-uploader attack slowed the swarm: %.1f > %.1f", meanAtk/seeds, meanBase/seeds)
	}
}

func TestSeedDeparture(t *testing.T) {
	cfg := quickCfg()
	cfg.SeedDepartTick = 5 // before much has spread
	cfg.SeedAfterComplete = false
	cfg.Ticks = 200
	res := mustRun(t, cfg, 2)
	// With the seed gone after ~20 uploads, most pieces never entered the
	// swarm: completion must collapse and pieces must be lost.
	if res.CompletedFraction > 0.5 {
		t.Fatalf("swarm completed %.3f without a seed", res.CompletedFraction)
	}
	if res.LostPieces == 0 {
		t.Fatal("no pieces lost despite early seed departure")
	}
}

func TestAttackerUploadAccounting(t *testing.T) {
	cfg := quickCfg()
	cfg.Attack = AttackRarePieceHolders
	cfg.AttackerUplink = 8
	cfg.AttackTargets = 2
	res := mustRun(t, cfg, 3)
	if res.AttackerUploaded == 0 {
		t.Fatal("attacker uploaded nothing")
	}
	if res.SatiatedByAttacker == 0 {
		t.Fatal("attacker satiated nobody despite dedicated uplink")
	}
}

func TestAttackWindowRespected(t *testing.T) {
	cfg := quickCfg()
	cfg.Attack = AttackRarePieceHolders
	cfg.AttackerUplink = 1000
	cfg.AttackTargets = 40
	cfg.AttackStartTick = 10
	cfg.AttackStopTick = 11 // a single tick of attack
	res := mustRun(t, cfg, 4)
	// One tick at uplink 1000 moves at most 1000 pieces.
	if res.AttackerUploaded > 1000 {
		t.Fatalf("attacker uploaded %d in a 1-tick window", res.AttackerUploaded)
	}
}

func TestEndgameHelpsTail(t *testing.T) {
	withEndgame := quickCfg()
	withoutEndgame := quickCfg()
	withoutEndgame.Endgame = false
	var on, off float64
	const seeds = 3
	for s := uint64(0); s < seeds; s++ {
		on += mustRun(t, withEndgame, 20+s).MeanCompletionTick
		off += mustRun(t, withoutEndgame, 20+s).MeanCompletionTick
	}
	if on > off {
		t.Fatalf("endgame slowed completion: %.1f > %.1f", on/seeds, off/seeds)
	}
}

func TestTickAccessor(t *testing.T) {
	sim, err := New(quickCfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Tick() != 0 {
		t.Fatal("initial tick")
	}
	if err := sim.Step(); err != nil {
		t.Fatal(err)
	}
	if sim.Tick() != 1 {
		t.Fatal("tick after step")
	}
}

func TestStepPastHorizon(t *testing.T) {
	cfg := quickCfg()
	cfg.Ticks = 1
	sim, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Step(); err != nil {
		t.Fatal(err)
	}
	if err := sim.Step(); err == nil {
		t.Fatal("stepped past horizon")
	}
}

// TestRunStopsEarlyWhenDone: Run exits once every leecher resolves, not at
// the full horizon, keeping sweeps cheap.
func TestRunStopsEarly(t *testing.T) {
	cfg := quickCfg()
	cfg.Ticks = 10000
	sim, err := New(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if sim.Tick() >= 10000 {
		t.Fatal("Run did not stop early after completion")
	}
}

// TestPieceConservation: pieces only appear via the seed, transfers, or the
// attacker; a leecher can never hold more pieces than exist.
func TestPieceBoundsDuringRun(t *testing.T) {
	cfg := quickCfg()
	sim, err := New(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 50; tick++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
		for v := 0; v < cfg.Leechers; v++ {
			if n := sim.pieceLen(v); n > cfg.Pieces {
				t.Fatalf("node %d holds %d of %d pieces", v, n, cfg.Pieces)
			}
		}
	}
}

// TestEvalParallelBitIdentical extends the workers-parity guarantee to the
// sharded peer-scoring path: a swarm with scoring forced onto
// sim.ParallelFor must produce exactly the sequential result, for the
// no-attack baseline and for a strategy adversary whose OnExchange hook is
// probed from inside the shards.
func TestEvalParallelBitIdentical(t *testing.T) {
	base := DefaultConfig()
	base.Leechers = 150
	base.Ticks = 120
	base.Pieces = 64
	run := func(adv *attack.Strategy, parallel bool) Result {
		opts := []Option{WithEvalParallel(parallel)}
		if adv != nil {
			fresh := *adv
			opts = append(opts, WithAdversary(&fresh))
		}
		s, err := New(base, 31, opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	advs := map[string]*attack.Strategy{
		"none":  nil,
		"trade": {Kind: attack.Trade, Fraction: 0.1, SatiateFraction: 0.3, RotatePeriod: 9},
		"ideal": {Kind: attack.Ideal, Fraction: 0.05, SatiateFraction: 0.4},
	}
	for name, adv := range advs {
		seq := run(adv, false)
		par := run(adv, true)
		if seq != par {
			t.Fatalf("%s: sharded peer scoring diverged from sequential:\n%+v\nvs\n%+v", name, seq, par)
		}
	}
}
