package swarm

import (
	"testing"

	"lotuseater/internal/attack"
)

// BenchmarkMillionTicks is the headline single-replicate measurement: one
// full swarm-1m-shaped run (10^6 leechers, 32 pieces, ideal adversary) per
// iteration, construction included. Opt-in via -bench; use
// `-benchtime 1x -count n` for wall-clock comparisons — the run is
// memory-latency-bound, so numbers are strongly hardware-dependent (see
// the README's Performance section for the measured trajectory).
func BenchmarkMillionTicks(b *testing.B) {
	cfg := bigSwarmConfig(1_000_000)
	cfg.Ticks = 30
	cfg.AttackerUplink = 4096
	adv := &attack.Strategy{Kind: attack.Ideal, Fraction: 0.01, SatiateFraction: 0.10}
	for i := 0; i < b.N; i++ {
		s, err := New(cfg, 11, WithAdversary(adv))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
