package scrip

import (
	"strings"
	"testing"
	"testing/quick"
)

func quickCfg() Config {
	cfg := DefaultConfig()
	cfg.Agents = 50
	cfg.Rounds = 5000
	return cfg
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"too few agents", func(c *Config) { c.Agents = 1 }},
		{"zero threshold", func(c *Config) { c.Threshold = 0 }},
		{"negative money", func(c *Config) { c.MoneyPerCapita = -1 }},
		{"zero rounds", func(c *Config) { c.Rounds = 0 }},
		{"altruists > 1", func(c *Config) { c.AltruistFraction = 1.1 }},
		{"attackers < 0", func(c *Config) { c.AttackerFraction = -0.1 }},
		{"fractions exceed 1", func(c *Config) { c.AltruistFraction = 0.6; c.AttackerFraction = 0.6 }},
		{"cost >= 1", func(c *Config) { c.Cost = 1 }},
		{"special providers out of range", func(c *Config) { c.SpecialProviders = c.Agents + 1 }},
		{"special fraction without providers", func(c *Config) { c.SpecialRequestFraction = 0.5 }},
	}
	for _, c := range cases {
		cfg := quickCfg()
		c.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if Rational.String() != "rational" || Altruist.String() != "altruist" ||
		AttackerAgent.String() != "attacker" {
		t.Fatal("kind names wrong")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Fatal("unknown kind string")
	}
}

func TestHealthyEconomyAvailability(t *testing.T) {
	sim, err := New(quickCfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Availability < 0.5 {
		t.Fatalf("healthy economy availability %.3f", res.Availability)
	}
	if res.Requests != 5000 {
		t.Fatalf("requests %d", res.Requests)
	}
	if res.Served+res.FailedNoProvider+res.FailedNoMoney != res.Requests {
		t.Fatal("request accounting does not add up")
	}
}

// TestMoneyConservation: scrip is conserved absent attacker budget.
func TestMoneyConservation(t *testing.T) {
	cfg := quickCfg()
	sim, err := New(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	opening := sim.MoneySupply()
	if opening != cfg.Agents*cfg.MoneyPerCapita {
		t.Fatalf("opening supply %d", opening)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalMoneySupply != opening {
		t.Fatalf("money not conserved: %d -> %d", opening, res.FinalMoneySupply)
	}
}

// TestMoneyConservationWithBudget: injected budget raises supply by exactly
// the budget.
func TestMoneyConservationWithBudget(t *testing.T) {
	cfg := quickCfg()
	sim, err := New(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	opening := sim.MoneySupply()
	if err := sim.Attack(AttackPlan{Targets: []int{1, 2, 3}, Budget: 500}); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalMoneySupply != opening+500 {
		t.Fatalf("supply %d, want %d", res.FinalMoneySupply, opening+500)
	}
}

func TestMoneyConservationQuick(t *testing.T) {
	err := quick.Check(func(seed uint64, budgetRaw uint16) bool {
		cfg := quickCfg()
		cfg.Rounds = 500
		sim, err := New(cfg, seed)
		if err != nil {
			return false
		}
		budget := int(budgetRaw)
		opening := sim.MoneySupply()
		if err := sim.Attack(AttackPlan{Targets: []int{0, 5}, Budget: budget}); err != nil {
			return false
		}
		res, err := sim.Run()
		if err != nil {
			return false
		}
		return res.FinalMoneySupply == opening+budget
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

// TestThresholdSatiation: an agent held at threshold never provides, so a
// funded attack on all rational agents collapses paid service.
func TestFundedAttackSatiatesTargets(t *testing.T) {
	cfg := quickCfg()
	sim, err := New(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	targets := make([]int, 25)
	for i := range targets {
		targets[i] = i
	}
	if err := sim.Attack(AttackPlan{Targets: targets, Budget: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SatiatedTargetFraction < 0.95 {
		t.Fatalf("funded attacker kept only %.3f of targets satiated", res.SatiatedTargetFraction)
	}
	if res.AttackerSpent == 0 {
		t.Fatal("attack spent nothing")
	}
}

// TestEarnedBudgetBounded: without exogenous budget, the attacker cannot
// keep a large fraction satiated (the money supply bound).
func TestEarnedBudgetBounded(t *testing.T) {
	cfg := quickCfg()
	cfg.AttackerFraction = 0.1
	sim, err := New(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	var targets []int
	for i := 0; i < cfg.Agents && len(targets) < 30; i++ {
		if sim.Kind(i) != AttackerAgent {
			targets = append(targets, i)
		}
	}
	if err := sim.Attack(AttackPlan{Targets: targets, Budget: 0, StartRound: 500}); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SatiatedTargetFraction > 0.6 {
		t.Fatalf("earned-only attacker satiated %.3f of 60%% of the economy", res.SatiatedTargetFraction)
	}
	if res.AttackerShortfall == 0 {
		t.Fatal("attacker never ran short of scrip")
	}
}

func TestAttackValidation(t *testing.T) {
	cfg := quickCfg()
	cfg.AttackerFraction = 0.1
	sim, err := New(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Attack(AttackPlan{Targets: []int{-1}}); err == nil {
		t.Fatal("negative target accepted")
	}
	if err := sim.Attack(AttackPlan{Targets: []int{cfg.Agents}}); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	var attacker int = -1
	for i := 0; i < cfg.Agents; i++ {
		if sim.Kind(i) == AttackerAgent {
			attacker = i
			break
		}
	}
	if attacker == -1 {
		t.Fatal("no attacker agent placed")
	}
	if err := sim.Attack(AttackPlan{Targets: []int{attacker}}); err == nil {
		t.Fatal("attacker-controlled target accepted")
	}
}

// TestAltruistsServeFree: with every provider an altruist, requests always
// succeed, nobody pays, and balances never change.
func TestAltruistsServeFree(t *testing.T) {
	cfg := quickCfg()
	cfg.AltruistFraction = 1
	sim, err := New(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Availability != 1 {
		t.Fatalf("all-altruist availability %.3f", res.Availability)
	}
	if res.ServedFree != res.Served {
		t.Fatalf("free %d != served %d", res.ServedFree, res.Served)
	}
	for i := 0; i < cfg.Agents; i++ {
		if sim.Balance(i) != cfg.MoneyPerCapita {
			t.Fatal("altruist economy moved money")
		}
	}
}

// TestBrokeRequesterNeedsAltruist: with zero money supply, only altruists
// can serve.
func TestBrokeRequesterNeedsAltruist(t *testing.T) {
	cfg := quickCfg()
	cfg.MoneyPerCapita = 0
	sim, err := New(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 0 {
		t.Fatalf("penniless economy served %d requests", res.Served)
	}
	if res.FailedNoMoney == 0 {
		t.Fatal("no money failures recorded")
	}
}

func TestSpecialtyRequests(t *testing.T) {
	cfg := quickCfg()
	cfg.SpecialProviders = 5
	cfg.SpecialRequestFraction = 0.3
	sim, err := New(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SpecialRequests == 0 {
		t.Fatal("no specialty requests issued")
	}
	frac := float64(res.SpecialRequests) / float64(res.Requests)
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("specialty fraction %.3f, want ~0.3", frac)
	}
	if res.SpecialServed > res.SpecialRequests {
		t.Fatal("served more specialty requests than issued")
	}
}

// TestRareProviderDenial: a funded attack on all specialty providers
// collapses specialty availability.
func TestRareProviderDenial(t *testing.T) {
	run := func(attacked bool) Result {
		cfg := quickCfg()
		cfg.SpecialProviders = 5
		cfg.SpecialRequestFraction = 0.05
		sim, err := New(cfg, 10)
		if err != nil {
			t.Fatal(err)
		}
		if attacked {
			if err := sim.Attack(AttackPlan{Targets: []int{0, 1, 2, 3, 4}, Budget: 1 << 20}); err != nil {
				t.Fatal(err)
			}
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(false)
	hit := run(true)
	if hit.SpecialAvailability >= base.SpecialAvailability {
		t.Fatalf("attack did not reduce specialty availability: %.3f >= %.3f",
			hit.SpecialAvailability, base.SpecialAvailability)
	}
	if hit.SpecialAvailability > 0.1 {
		t.Fatalf("satiated providers still served %.3f of specialty requests", hit.SpecialAvailability)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() Result {
		sim, err := New(quickCfg(), 42)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if run() != run() {
		t.Fatal("same seed differs")
	}
}

func TestUtilityAccounting(t *testing.T) {
	cfg := quickCfg()
	sim, err := New(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Every served request adds 1 - Cost of social welfare; mean utility
	// must be positive in a functioning economy.
	if res.MeanUtility <= 0 {
		t.Fatalf("mean utility %.3f in a healthy economy", res.MeanUtility)
	}
}

func TestMint(t *testing.T) {
	cfg := quickCfg()
	sim, err := New(cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	opening := sim.MoneySupply()
	if err := sim.Mint(3, 100); err != nil {
		t.Fatal(err)
	}
	if sim.Balance(3) != cfg.MoneyPerCapita+100 {
		t.Fatalf("balance %d after mint", sim.Balance(3))
	}
	if sim.MoneySupply() != opening+100 {
		t.Fatalf("supply %d, want %d", sim.MoneySupply(), opening+100)
	}
	if err := sim.Mint(-1, 5); err == nil {
		t.Fatal("out-of-range mint accepted")
	}
	if err := sim.Mint(0, -5); err == nil {
		t.Fatal("negative mint accepted")
	}
}

// TestInflationFreeze: lifting every balance to the threshold freezes the
// economy permanently — no volunteers, so no spending, so no recovery.
func TestInflationFreeze(t *testing.T) {
	cfg := quickCfg()
	sim, err := New(cfg, 21)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Agents; i++ {
		if err := sim.Mint(i, cfg.Threshold-cfg.MoneyPerCapita); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 0 {
		t.Fatalf("frozen economy served %d requests", res.Served)
	}
}

func TestAltruistProvidersForced(t *testing.T) {
	cfg := quickCfg()
	cfg.SpecialProviders = 5
	cfg.SpecialRequestFraction = 0.1
	cfg.AltruistProviders = 3
	sim, err := New(cfg, 22)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if sim.Kind(i) != Altruist {
			t.Fatalf("provider %d kind %v, want altruist", i, sim.Kind(i))
		}
	}
}

func TestAltruistProvidersValidation(t *testing.T) {
	cfg := quickCfg()
	cfg.SpecialProviders = 2
	cfg.SpecialRequestFraction = 0.1
	cfg.AltruistProviders = 3
	if err := cfg.Validate(); err == nil {
		t.Fatal("AltruistProviders > SpecialProviders accepted")
	}
}

// TestHoardersDrainEconomy: attacker agents that volunteer constantly and
// never spend centralize the money supply and crash availability.
func TestHoardersDrainEconomy(t *testing.T) {
	run := func(hoarders float64) float64 {
		cfg := quickCfg()
		cfg.AttackerFraction = hoarders
		sim, err := New(cfg, 23)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Availability
	}
	if with, without := run(0.2), run(0); with >= without-0.2 {
		t.Fatalf("hoarders did not crash availability: %.3f vs %.3f", with, without)
	}
}

func TestRunAfterHorizonErrors(t *testing.T) {
	cfg := quickCfg()
	cfg.Rounds = 5
	sim, err := New(cfg, 24)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sim.Step(); err == nil {
		t.Fatal("stepped past horizon")
	}
}

func TestValidationAltruistProvidersNegative(t *testing.T) {
	cfg := quickCfg()
	cfg.SpecialProviders = 3
	cfg.SpecialRequestFraction = 0.1
	cfg.AltruistProviders = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative AltruistProviders accepted")
	}
}
