// Package scrip implements a scrip (system-issued currency) economy in the
// style of Kash, Friedman & Halpern, "Optimizing scrip systems" (EC 2007) —
// reference [14] of the paper — as a substrate for lotus-eater attacks on
// indirect-reciprocity systems.
//
// Agents earn one unit of scrip by providing service and pay one unit to
// receive it. Rational agents play a threshold strategy: volunteer to
// provide service only while holding less than Threshold units. That makes
// the system satiation-compatible in the paper's sense — an agent whose
// balance is pushed to the threshold stops providing — and therefore
// attackable: "if an attacker can ensure that an agent has a large amount
// of money ... the agent will stop providing service."
//
// The attack is bounded by the money supply: scrip is conserved, so keeping
// a fraction f of agents above threshold costs the attacker roughly
// f·n·(Threshold − average balance) up front plus the targets' spending
// rate forever after. Section 4 of the paper: "it is easy for an attacker
// to accumulate enough money to satiate a few nodes, [but] there may not
// even be enough money in the system to satiate a significant fraction."
package scrip

import (
	"errors"
	"fmt"

	"lotuseater/internal/attack"
	"lotuseater/internal/population"
	"lotuseater/internal/sim"
	"lotuseater/internal/simrng"
)

// Kind is an agent's behavioral type.
type Kind int

const (
	// Rational agents play the threshold strategy.
	Rational Kind = iota + 1
	// Altruist agents always volunteer and serve without payment —
	// the destabilizing population of [14].
	Altruist
	// AttackerAgent agents never request service, always volunteer (to
	// earn scrip), and funnel their earnings into the attack pool.
	AttackerAgent
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Rational:
		return "rational"
	case Altruist:
		return "altruist"
	case AttackerAgent:
		return "attacker"
	default:
		return fmt.Sprintf("scrip.Kind(%d)", int(k))
	}
}

// Config parameterizes the economy.
type Config struct {
	// Agents is the population size.
	Agents int
	// Threshold is the rational strategy's satiation point: volunteer only
	// while balance < Threshold.
	Threshold int
	// MoneyPerCapita is the initial (and, absent attacker subsidy, eternal)
	// average balance.
	MoneyPerCapita int
	// Rounds is the number of service requests simulated (one per round).
	Rounds int
	// AltruistFraction of agents are altruists.
	AltruistFraction float64
	// AttackerFraction of agents are attacker-controlled earners.
	AttackerFraction float64
	// Cost is the provider's utility cost of serving (0 < Cost < 1 makes
	// trade socially valuable against a benefit of 1).
	Cost float64
	// SpecialProviders designates agents 0..SpecialProviders-1 as the only
	// ones able to serve "specialty" requests — the paper's "users who
	// control important or rare resources". Zero disables specialties.
	SpecialProviders int
	// SpecialRequestFraction is the probability a request is a specialty
	// request, serviceable only by a special provider.
	SpecialRequestFraction float64
	// AltruistProviders forces agents 0..AltruistProviders-1 (a subset of
	// the special providers) to be altruists, so experiments on the
	// "encouraging altruism" defense are deterministic rather than subject
	// to the binomial luck of random kind assignment.
	AltruistProviders int
	// Churn is an optional round-sorted lifecycle schedule. A departed
	// agent neither requests nor volunteers, and its wallet leaves the
	// system with it; a (re)arrival on the same slot is a fresh agent of
	// the slot's kind carrying the initial endowment. Events naming
	// attacker-controlled slots are ignored — adversary infrastructure
	// does not churn. Nil means the static fixed-universe economy.
	Churn []population.Event
	// NodeThreshold optionally overrides Threshold per agent (population
	// classes map "patience" here: patient agents satiate later). Nil
	// means the scalar Threshold everywhere; otherwise length Agents.
	NodeThreshold []int
	// NodeBalance optionally overrides MoneyPerCapita per agent
	// ("capacity": the endowment an agent arrives with). Nil means the
	// scalar MoneyPerCapita everywhere; otherwise length Agents.
	NodeBalance []int
	// NodeAltruist optionally replaces AltruistFraction with a per-agent
	// altruist probability ("altruism" classes). When non-nil (length
	// Agents) each agent's kind is drawn independently from its own
	// probability instead of permuting a global altruist count.
	NodeAltruist []float64
}

// DefaultConfig returns a small healthy economy.
func DefaultConfig() Config {
	return Config{
		Agents:         200,
		Threshold:      5,
		MoneyPerCapita: 2,
		Rounds:         20000,
		Cost:           0.1,
	}
}

// Validate reports the first problem with the configuration, or nil.
func (c Config) Validate() error {
	switch {
	case c.Agents < 2:
		return fmt.Errorf("scrip: need at least 2 agents, got %d", c.Agents)
	case c.Threshold < 1:
		return fmt.Errorf("scrip: Threshold must be positive, got %d", c.Threshold)
	case c.MoneyPerCapita < 0:
		return fmt.Errorf("scrip: MoneyPerCapita must be non-negative, got %d", c.MoneyPerCapita)
	case c.Rounds < 1:
		return fmt.Errorf("scrip: Rounds must be positive, got %d", c.Rounds)
	case c.AltruistFraction < 0 || c.AltruistFraction > 1:
		return fmt.Errorf("scrip: AltruistFraction must be in [0,1], got %g", c.AltruistFraction)
	case c.AttackerFraction < 0 || c.AttackerFraction > 1:
		return fmt.Errorf("scrip: AttackerFraction must be in [0,1], got %g", c.AttackerFraction)
	case c.AltruistFraction+c.AttackerFraction > 1:
		return fmt.Errorf("scrip: AltruistFraction+AttackerFraction = %g exceeds 1", c.AltruistFraction+c.AttackerFraction)
	case c.Cost < 0 || c.Cost >= 1:
		return fmt.Errorf("scrip: Cost must be in [0,1), got %g", c.Cost)
	case c.SpecialProviders < 0 || c.SpecialProviders > c.Agents:
		return fmt.Errorf("scrip: SpecialProviders must be in [0,%d], got %d", c.Agents, c.SpecialProviders)
	case c.SpecialRequestFraction < 0 || c.SpecialRequestFraction > 1:
		return fmt.Errorf("scrip: SpecialRequestFraction must be in [0,1], got %g", c.SpecialRequestFraction)
	case c.SpecialRequestFraction > 0 && c.SpecialProviders == 0:
		return fmt.Errorf("scrip: SpecialRequestFraction > 0 needs SpecialProviders > 0")
	case c.AltruistProviders < 0 || c.AltruistProviders > c.SpecialProviders:
		return fmt.Errorf("scrip: AltruistProviders must be in [0,%d], got %d", c.SpecialProviders, c.AltruistProviders)
	case c.NodeThreshold != nil && len(c.NodeThreshold) != c.Agents:
		return fmt.Errorf("scrip: NodeThreshold has %d entries for %d agents", len(c.NodeThreshold), c.Agents)
	case c.NodeBalance != nil && len(c.NodeBalance) != c.Agents:
		return fmt.Errorf("scrip: NodeBalance has %d entries for %d agents", len(c.NodeBalance), c.Agents)
	case c.NodeAltruist != nil && len(c.NodeAltruist) != c.Agents:
		return fmt.Errorf("scrip: NodeAltruist has %d entries for %d agents", len(c.NodeAltruist), c.Agents)
	}
	for i, t := range c.NodeThreshold {
		if t < 1 {
			return fmt.Errorf("scrip: NodeThreshold[%d] must be positive, got %d", i, t)
		}
	}
	for i, b := range c.NodeBalance {
		if b < 0 {
			return fmt.Errorf("scrip: NodeBalance[%d] must be non-negative, got %d", i, b)
		}
	}
	for i, p := range c.NodeAltruist {
		if p < 0 || p > 1 {
			return fmt.Errorf("scrip: NodeAltruist[%d] must be in [0,1], got %g", i, p)
		}
	}
	if err := population.ValidateSchedule(c.Churn, c.Agents); err != nil {
		return fmt.Errorf("scrip: %w", err)
	}
	return nil
}

// AttackPlan configures the lotus-eater attack: keep the target agents'
// balances at or above the threshold so they never volunteer.
type AttackPlan struct {
	// Targets are the agent ids to satiate.
	Targets []int
	// Budget is exogenous scrip the attacker starts with (on top of
	// whatever its agents earn in-system). Scrip it injects increases the
	// money supply, which the Result tracks.
	Budget int
	// StartRound is the first round the attack runs.
	StartRound int
}

// Result summarizes a run.
type Result struct {
	// Requests is the number of rounds simulated.
	Requests int
	// Served counts requests that found a provider.
	Served int
	// ServedFree counts requests served by altruists (no payment).
	ServedFree int
	// FailedNoProvider counts requests with no willing provider.
	FailedNoProvider int
	// FailedNoMoney counts requests the requester could not pay for (and no
	// altruist was available).
	FailedNoMoney int
	// Availability is Served / Requests.
	Availability float64
	// NonTargetAvailability restricts availability to requests issued by
	// non-targeted agents — the population the attack harms.
	NonTargetAvailability float64
	// AttackerSpent is the scrip the attacker transferred to targets.
	AttackerSpent int
	// AttackerEarned is the scrip attacker agents earned by providing.
	AttackerEarned int
	// AttackerShortfall counts rounds where the attacker wanted to top up a
	// target but had no scrip left — the money-supply bound biting.
	AttackerShortfall int
	// SatiatedTargetFraction is the time-average fraction of targets held
	// at or above threshold.
	SatiatedTargetFraction float64
	// MeanUtility is the population's average accumulated utility
	// (benefit 1 per service received, minus Cost per service provided),
	// attacker agents excluded.
	MeanUtility float64
	// FinalMoneySupply is the closing total balance across agents plus the
	// attacker pool; it equals the opening supply plus injected Budget
	// (scrip is conserved).
	FinalMoneySupply int
	// SpecialRequests counts specialty requests issued.
	SpecialRequests int
	// SpecialServed counts specialty requests that found a special
	// provider willing to serve.
	SpecialServed int
	// SpecialAvailability is SpecialServed / SpecialRequests.
	SpecialAvailability float64
}

// Sim is one scrip economy. Create with New, optionally Attack, then Run.
type Sim struct {
	cfg     Config
	rng     *simrng.Source
	kinds   []Kind
	balance []int
	utility []float64
	plan    *AttackPlan
	pool    int // attacker's scrip pool
	isTgt   []bool

	// Lifecycle state; both stay nil in a static (no-churn) economy so
	// that code path is byte-identical to a build without the model.
	// presentHonest counts present non-attacker agents, maintained so a
	// churned-empty round can idle instead of spinning in pickRequester.
	churn         population.Cursor
	departed      []bool
	presentHonest int

	// Strategy hooks (WithAdversary / WithDefense). The adversary places its
	// agents, names the balances to keep topped up each round, and its kind
	// decides the financing: trade attackers spend in-system earnings, ideal
	// attackers mint exogenous wealth, crash attackers merely withhold
	// service. The defense caps how much attacker scrip a target accepts per
	// round.
	adv        sim.Adversary
	def        sim.Defense
	advTrades  bool
	advInstant bool
	advRounds  int
	// lastTargets is the target set whose membership is currently reflected
	// in isTgt; adversaryStep applies the journal of a new epoch's set.
	lastTargets *attack.TargetSet

	round             int
	res               Result
	satSum            float64
	nonTargetServed   int
	nonTargetRequests int
}

// Option customizes a Sim.
type Option func(*Sim)

// WithAdversary installs a substrate-independent adversary strategy; see
// Sim for how its hooks map onto the scrip economy. It replaces the
// AttackerFraction placement and the AttackPlan mechanism.
func WithAdversary(a sim.Adversary) Option {
	return func(s *Sim) { s.adv = a }
}

// WithDefense installs a receiver-side defense: a target accepts at most
// Admit(...) units of attacker top-up per round, throttling how fast the
// adversary can push balances to the threshold.
func WithDefense(d sim.Defense) Option {
	return func(s *Sim) { s.def = d }
}

// New builds a Sim, deterministic in (cfg, seed). Agent kinds are assigned
// pseudorandomly according to the configured fractions; an installed
// adversary's Place hook overrides the AttackerFraction assignment.
func New(cfg Config, seed uint64, opts ...Option) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{
		cfg:     cfg,
		rng:     simrng.New(seed),
		kinds:   make([]Kind, cfg.Agents),
		balance: make([]int, cfg.Agents),
		utility: make([]float64, cfg.Agents),
		isTgt:   make([]bool, cfg.Agents),
	}
	for _, opt := range opts {
		opt(s)
	}
	for i := range s.kinds {
		s.kinds[i] = Rational
		s.balance[i] = s.endowment(i)
	}
	nAlt := int(cfg.AltruistFraction*float64(cfg.Agents) + 0.5)
	nAtt := int(cfg.AttackerFraction*float64(cfg.Agents) + 0.5)
	if s.adv != nil {
		nAtt = 0 // the adversary places its own agents
	}
	perm := s.rng.Child("kinds").Perm(cfg.Agents)
	if cfg.NodeAltruist != nil {
		// Per-class altruism: each agent's kind is an independent draw
		// from its own probability, on a dedicated child stream so the
		// homogeneous perm path above it stays untouched.
		kindRNG := s.rng.Child("class-kinds")
		for i := range s.kinds {
			if kindRNG.Bool(cfg.NodeAltruist[i]) {
				s.kinds[i] = Altruist
			}
		}
	} else {
		for i := 0; i < nAlt && i < len(perm); i++ {
			s.kinds[perm[i]] = Altruist
		}
	}
	for i := nAlt; i < nAlt+nAtt && i < len(perm); i++ {
		s.kinds[perm[i]] = AttackerAgent
	}
	for i := 0; i < cfg.AltruistProviders; i++ {
		s.kinds[i] = Altruist
	}
	if s.adv != nil {
		s.advTrades = sim.TradesInProtocol(s.adv)
		s.advInstant = sim.SatiatesInstantly(s.adv)
		for _, a := range s.adv.Place(cfg.Agents, s.rng.Child("adversary")) {
			if a < 0 || a >= cfg.Agents {
				return nil, fmt.Errorf("scrip: adversary placed agent %d outside [0,%d)", a, cfg.Agents)
			}
			s.kinds[a] = AttackerAgent
		}
	}
	if len(cfg.Churn) > 0 {
		s.churn = population.NewCursor(cfg.Churn)
		s.departed = make([]bool, cfg.Agents)
		for _, k := range s.kinds {
			if k != AttackerAgent {
				s.presentHonest++
			}
		}
	}
	return s, nil
}

// Attack installs an attack plan. It returns an error if any target is out
// of range or attacker-controlled (satiating your own nodes is a no-op), or
// if an adversary strategy is installed (the strategy owns targeting).
func (s *Sim) Attack(plan AttackPlan) error {
	if s.adv != nil {
		return errors.New("scrip: Attack conflicts with WithAdversary")
	}
	for _, t := range plan.Targets {
		if t < 0 || t >= s.cfg.Agents {
			return fmt.Errorf("scrip: target %d out of range", t)
		}
		if s.kinds[t] == AttackerAgent {
			return fmt.Errorf("scrip: target %d is attacker-controlled", t)
		}
	}
	targets := make([]int, len(plan.Targets))
	copy(targets, plan.Targets)
	plan.Targets = targets
	s.plan = &plan
	s.pool = plan.Budget
	for _, t := range targets {
		s.isTgt[t] = true
	}
	return nil
}

// Kind returns agent i's behavioral type.
func (s *Sim) Kind(i int) Kind { return s.kinds[i] }

// Mint adds amount scrip to agent i's balance out of thin air — the
// attacker's exogenous wealth delivered as an unconditional gift, as
// opposed to Attack's threshold top-ups. Minting inflates the money supply
// permanently; MoneySupply and Result.FinalMoneySupply reflect it.
func (s *Sim) Mint(i, amount int) error {
	if i < 0 || i >= s.cfg.Agents {
		return fmt.Errorf("scrip: agent %d out of range", i)
	}
	if amount < 0 {
		return fmt.Errorf("scrip: negative mint %d", amount)
	}
	s.balance[i] += amount
	return nil
}

// Balance returns agent i's scrip balance.
func (s *Sim) Balance(i int) int { return s.balance[i] }

// MoneySupply returns the current total scrip including the attack pool.
func (s *Sim) MoneySupply() int {
	total := s.pool
	for _, b := range s.balance {
		total += b
	}
	return total
}

// Run simulates all rounds and returns the result.
func (s *Sim) Run() (Result, error) {
	for s.round < s.cfg.Rounds {
		if err := s.Step(); err != nil {
			return Result{}, err
		}
	}
	return s.finish(), nil
}

// Round returns the next round to simulate.
func (s *Sim) Round() int { return s.round }

// Finished reports whether the horizon has been reached.
func (s *Sim) Finished() bool { return s.round >= s.cfg.Rounds }

// Snapshot returns the Result summarizing the run so far.
func (s *Sim) Snapshot() (any, error) { return s.finish(), nil }

// Step simulates one request round: attacker top-ups, a random requester,
// volunteer selection, payment.
func (s *Sim) Step() error {
	if s.round >= s.cfg.Rounds {
		return errors.New("scrip: horizon exhausted")
	}
	rng := s.rng.ChildN("round", s.round)

	// 0. Lifecycle: departures and arrivals due this round take effect
	// before any request, so the adversary learns of a departure before
	// it would top the leaver up.
	for ev, ok := s.churn.Next(s.round); ok; ev, ok = s.churn.Next(s.round) {
		if s.kinds[ev.Node] == AttackerAgent {
			continue // adversary infrastructure does not churn
		}
		if ev.Join {
			s.joinAgent(ev.Node)
		} else {
			s.leaveAgent(ev.Node)
		}
	}

	// 1. Attacker tops targets up to the threshold while its pool lasts;
	// attacker agents sweep their in-system earnings into the pool first.
	if s.plan != nil && s.round >= s.plan.StartRound {
		for i, k := range s.kinds {
			if k == AttackerAgent && s.balance[i] > 0 {
				s.pool += s.balance[i]
				s.balance[i] = 0
			}
		}
		for _, t := range s.plan.Targets {
			if s.gone(t) {
				continue // no point topping up an absent agent
			}
			need := s.thresholdOf(t) - s.balance[t]
			if need <= 0 {
				continue
			}
			if s.pool < need {
				s.res.AttackerShortfall++
				continue
			}
			s.pool -= need
			s.balance[t] += need
			s.res.AttackerSpent += need
		}
		sat := 0
		for _, t := range s.plan.Targets {
			if !s.gone(t) && s.balance[t] >= s.thresholdOf(t) {
				sat++
			}
		}
		if len(s.plan.Targets) > 0 {
			s.satSum += float64(sat) / float64(len(s.plan.Targets))
		}
	}
	if s.adv != nil {
		s.adversaryStep()
	}

	// 2. A uniformly random present non-attacker agent requests service.
	// With probability SpecialRequestFraction the request is a specialty
	// one that only special providers can serve. If churn has emptied the
	// honest population the round idles (arrivals may still be due).
	if s.departed != nil && s.presentHonest == 0 {
		s.round++
		return nil
	}
	requester := s.pickRequester(rng)
	s.res.Requests++
	targeted := s.isTgt[requester]
	special := s.cfg.SpecialRequestFraction > 0 && rng.Bool(s.cfg.SpecialRequestFraction)
	if special {
		s.res.SpecialRequests++
	}

	// 3. Volunteers: altruists always; rational agents while below
	// threshold; attacker agents always (they want earnings). Specialty
	// requests admit only special providers playing their usual strategy.
	var volunteers []int
	for i, k := range s.kinds {
		if i == requester || s.gone(i) {
			continue
		}
		if special && i >= s.cfg.SpecialProviders {
			continue
		}
		switch k {
		case Altruist:
			volunteers = append(volunteers, i)
		case AttackerAgent:
			// Legacy and trade attackers volunteer to earn scrip for the
			// attack pool; crash attackers withhold service and ideal
			// attackers stay out of protocol entirely.
			if s.adv == nil || s.advTrades {
				volunteers = append(volunteers, i)
			}
		case Rational:
			if s.balance[i] < s.thresholdOf(i) {
				volunteers = append(volunteers, i)
			}
		}
	}
	if len(volunteers) == 0 {
		s.res.FailedNoProvider++
		s.round++
		return nil
	}
	provider := volunteers[rng.IntN(len(volunteers))]
	free := s.kinds[provider] == Altruist
	if !free && s.balance[requester] < 1 {
		// The requester cannot pay; only a free (altruistic) provider can
		// help. Retry among altruists.
		var alts []int
		for _, v := range volunteers {
			if s.kinds[v] == Altruist {
				alts = append(alts, v)
			}
		}
		if len(alts) == 0 {
			s.res.FailedNoMoney++
			s.round++
			return nil
		}
		provider = alts[rng.IntN(len(alts))]
		free = true
	}

	// 4. Serve and settle.
	s.res.Served++
	if special {
		s.res.SpecialServed++
	}
	if free {
		s.res.ServedFree++
	} else {
		s.balance[requester]--
		s.balance[provider]++
		if s.kinds[provider] == AttackerAgent {
			s.res.AttackerEarned++
		}
	}
	s.utility[requester] += 1
	s.utility[provider] -= s.cfg.Cost
	if !targeted {
		s.nonTargetServed++
	}
	s.round++
	return nil
}

// adversaryStep is the strategy adversary's round: trade attackers sweep
// in-system earnings into the pool, then (trade and ideal only) targets are
// topped up to the threshold — trade from the finite pool, ideal from
// exogenous minted wealth. The defense's Admit hook caps each target's
// per-round acceptance, so a rate limit stretches the satiation ramp even
// against the ideal attacker.
func (s *Sim) adversaryStep() {
	targets := s.adv.Targets(s.round)
	// Maintain the per-agent target flags incrementally from the set's
	// change journal: O(|changed|) on an epoch flip, O(1) on the (vastly
	// more common) rounds where the set pointer is unchanged. The journal
	// includes the first epoch (everything "added"), so this also covers
	// round 0.
	if targets != s.lastTargets {
		for _, t := range targets.Removed() {
			if t < s.cfg.Agents {
				s.isTgt[t] = false
			}
		}
		for _, t := range targets.Added() {
			if t < s.cfg.Agents && s.kinds[t] != AttackerAgent {
				s.isTgt[t] = true
			}
		}
		s.lastTargets = targets
	}
	if s.advTrades {
		for i, k := range s.kinds {
			if k == AttackerAgent && s.balance[i] > 0 {
				s.pool += s.balance[i]
				s.balance[i] = 0
			}
		}
	}
	live, sat := 0, 0
	for _, t := range targets.Members() {
		if t >= s.cfg.Agents || s.kinds[t] == AttackerAgent || s.gone(t) {
			continue
		}
		live++
		need := s.thresholdOf(t) - s.balance[t]
		if need > 0 && (s.advTrades || s.advInstant) {
			grant := need
			if s.def != nil {
				grant = s.def.Admit(s.round, -1, t, need)
			}
			if s.advTrades {
				if s.pool < need {
					s.res.AttackerShortfall++
				}
				if grant > s.pool {
					grant = s.pool
				}
				s.pool -= grant
			}
			s.balance[t] += grant
			s.res.AttackerSpent += grant
		}
		if s.balance[t] >= s.thresholdOf(t) {
			sat++
		}
	}
	if live > 0 {
		s.satSum += float64(sat) / float64(live)
		s.advRounds++
	}
}

func (s *Sim) pickRequester(rng *simrng.Source) int {
	for {
		i := rng.IntN(s.cfg.Agents)
		if s.kinds[i] != AttackerAgent && !s.gone(i) {
			if !s.isTgt[i] {
				s.nonTargetRequests++
			}
			return i
		}
	}
}

// gone reports whether agent v is currently departed. Always false in a
// static economy, where departed stays nil.
func (s *Sim) gone(v int) bool { return s.departed != nil && s.departed[v] }

// thresholdOf returns agent v's satiation threshold: the per-class
// override when one is installed, the scalar config otherwise.
func (s *Sim) thresholdOf(v int) int {
	if s.cfg.NodeThreshold != nil {
		return s.cfg.NodeThreshold[v]
	}
	return s.cfg.Threshold
}

// endowment returns the scrip agent v starts (or re-arrives) with.
func (s *Sim) endowment(v int) int {
	if s.cfg.NodeBalance != nil {
		return s.cfg.NodeBalance[v]
	}
	return s.cfg.MoneyPerCapita
}

// leaveAgent removes agent v: its wallet leaves the system with it and
// the adversary is told, so a satiated slot that later re-arrives is
// treated as the fresh agent it is rather than a standing target.
func (s *Sim) leaveAgent(v int) {
	if s.gone(v) {
		return
	}
	s.departed[v] = true
	s.balance[v] = 0
	s.presentHonest--
	if s.adv != nil {
		sim.NotifyDeparture(s.adv, s.round, v)
	}
}

// joinAgent (re)admits agent v as a fresh agent of the slot's kind,
// carrying the initial endowment.
func (s *Sim) joinAgent(v int) {
	if !s.gone(v) {
		return
	}
	s.departed[v] = false
	s.balance[v] = s.endowment(v)
	s.presentHonest++
}

func (s *Sim) finish() Result {
	res := s.res
	if res.Requests > 0 {
		res.Availability = float64(res.Served) / float64(res.Requests)
	}
	if s.nonTargetRequests > 0 {
		res.NonTargetAvailability = float64(s.nonTargetServed) / float64(s.nonTargetRequests)
	}
	if res.SpecialRequests > 0 {
		res.SpecialAvailability = float64(res.SpecialServed) / float64(res.SpecialRequests)
	}
	if s.plan != nil && s.round > s.plan.StartRound {
		res.SatiatedTargetFraction = s.satSum / float64(s.round-s.plan.StartRound)
	} else if s.advRounds > 0 {
		res.SatiatedTargetFraction = s.satSum / float64(s.advRounds)
	}
	var util float64
	people := 0
	for i, k := range s.kinds {
		if k == AttackerAgent {
			continue
		}
		util += s.utility[i]
		people++
	}
	if people > 0 {
		res.MeanUtility = util / float64(people)
	}
	res.FinalMoneySupply = s.MoneySupply()
	return res
}
