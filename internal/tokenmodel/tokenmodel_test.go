package tokenmodel

import (
	"testing"

	"lotuseater/internal/attack"
	"lotuseater/internal/graph"
)

func validConfig() Config {
	return Config{
		Graph:    graph.Complete(20),
		Tokens:   5,
		Contacts: 2,
		Rounds:   30,
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil graph", func(c *Config) { c.Graph = nil }},
		{"zero tokens", func(c *Config) { c.Tokens = 0 }},
		{"negative contacts", func(c *Config) { c.Contacts = -1 }},
		{"altruism > 1", func(c *Config) { c.Altruism = 1.5 }},
		{"zero rounds", func(c *Config) { c.Rounds = 0 }},
		{"allocation length", func(c *Config) { c.Allocation = []int{1} }},
		{"allocation range", func(c *Config) {
			c.Allocation = make([]int, c.Graph.N())
			c.Allocation[3] = c.Tokens
		}},
	}
	for _, c := range cases {
		cfg := validConfig()
		c.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
	}
	if err := validConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInitialAllocationDefault(t *testing.T) {
	sim, err := New(validConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 20; v++ {
		if !sim.Has(v, v%5) {
			t.Fatalf("node %d missing default token %d", v, v%5)
		}
		if sim.HeldCount(v) != 1 {
			t.Fatalf("node %d holds %d tokens initially", v, sim.HeldCount(v))
		}
	}
}

func TestSpreadOnCompleteGraph(t *testing.T) {
	sim, err := New(validConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// With c = 2 on K20 and whole-set copies, everyone should finish fast
	// (nodes can't satiate before holding everything, and everyone holds
	// something useful to everyone early on).
	if res.CompletedFraction < 0.9 {
		t.Fatalf("completed %.3f on complete graph", res.CompletedFraction)
	}
	if res.AllSatiatedRound == -1 && res.CompletedFraction == 1 {
		t.Fatal("all completed but AllSatiatedRound = -1")
	}
	for _, cov := range res.TokenCoverage {
		if cov < 0.9 {
			t.Fatalf("token coverage %.3f", cov)
		}
	}
}

func TestSatiatedByRoundMonotone(t *testing.T) {
	sim, err := New(validConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SatiatedByRound) != 30 {
		t.Fatalf("%d round samples", len(res.SatiatedByRound))
	}
	for i := 1; i < len(res.SatiatedByRound); i++ {
		if res.SatiatedByRound[i] < res.SatiatedByRound[i-1] {
			t.Fatal("satiation count decreased (tokens are never lost)")
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() Result {
		sim, err := New(validConfig(), 42)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.CompletedFraction != b.CompletedFraction || a.MeanCompletionRound != b.MeanCompletionRound {
		t.Fatal("same seed differs")
	}
	for i := range a.SatiatedByRound {
		if a.SatiatedByRound[i] != b.SatiatedByRound[i] {
			t.Fatal("per-round trajectories differ")
		}
	}
}

// TestAttackerSatiatesTargets: targets hold everything after round 0 and
// count as completed.
func TestAttackerSatiatesTargets(t *testing.T) {
	cfg := validConfig()
	sim, err := New(cfg, 4, WithTargeter(attack.NewListTargeter(20, []int{3, 5})))
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Step(); err != nil {
		t.Fatal(err)
	}
	if !sim.Satiated(3) || !sim.Satiated(5) {
		t.Fatal("targets not satiated after one round")
	}
	if sim.CompletionRound(3) != 0 {
		t.Fatalf("target completion round %d", sim.CompletionRound(3))
	}
}

// TestRareTokenDenial is the paper's rare-token attack: satiate the only
// holder of token 0 on a zero-altruism system and nobody else ever gets it.
func TestRareTokenDenial(t *testing.T) {
	const n, tokens = 30, 4
	alloc := make([]int, n)
	alloc[0] = 0
	for v := 1; v < n; v++ {
		alloc[v] = 1 + (v-1)%(tokens-1)
	}
	cfg := Config{
		Graph:      graph.Complete(n),
		Tokens:     tokens,
		Contacts:   2,
		Rounds:     50,
		Allocation: alloc,
	}
	sim, err := New(cfg, 5, WithTargeter(attack.NewListTargeter(n, []int{0})))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.TokenCoverage[0]; got != 1.0/n {
		t.Fatalf("token 0 coverage %.4f, want exactly the satiated holder (%.4f)", got, 1.0/n)
	}
	if res.CompletedFraction > 1.0/n+1e-9 {
		t.Fatalf("completed fraction %.4f despite denial", res.CompletedFraction)
	}
}

// TestAltruismLeaksRareToken: the same attack with a > 0 eventually leaks
// the rare token (the satiated holder responds occasionally).
func TestAltruismLeaksRareToken(t *testing.T) {
	const n, tokens = 30, 4
	alloc := make([]int, n)
	alloc[0] = 0
	for v := 1; v < n; v++ {
		alloc[v] = 1 + (v-1)%(tokens-1)
	}
	cfg := Config{
		Graph:      graph.Complete(n),
		Tokens:     tokens,
		Contacts:   2,
		Altruism:   0.3,
		Rounds:     60,
		Allocation: alloc,
	}
	sim, err := New(cfg, 6, WithTargeter(attack.NewListTargeter(n, []int{0})))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TokenCoverage[0] < 0.9 {
		t.Fatalf("altruism 0.3 left token 0 coverage at %.4f", res.TokenCoverage[0])
	}
}

// TestSatiatedNodesStopServing: with a = 0, a satiated node is inert — its
// unique token never leaves it once it satiates instantly at round 0 via
// the attacker.
func TestZeroContactsNoSpread(t *testing.T) {
	cfg := validConfig()
	cfg.Contacts = 0
	sim, err := New(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedFraction != 0 {
		t.Fatalf("tokens spread with zero contacts: %.3f", res.CompletedFraction)
	}
}

func TestDisconnectedGraphPartialCompletion(t *testing.T) {
	g := graph.New(10)
	// Two cliques 0-4 and 5-9 with no bridge.
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			_ = g.AddEdge(i, j)
			_ = g.AddEdge(i+5, j+5)
		}
	}
	alloc := make([]int, 10)
	for v := range alloc {
		alloc[v] = v % 2 // tokens 0 and 1 in both cliques
	}
	cfg := Config{Graph: g, Tokens: 2, Contacts: 2, Rounds: 20, Allocation: alloc}
	sim, err := New(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedFraction < 0.5 {
		t.Fatalf("cliques with both tokens completed only %.3f", res.CompletedFraction)
	}
}

func TestStepPastHorizon(t *testing.T) {
	cfg := validConfig()
	cfg.Rounds = 1
	sim, err := New(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Step(); err != nil {
		t.Fatal(err)
	}
	if err := sim.Step(); err == nil {
		t.Fatal("stepped past horizon")
	}
}

func TestBadTargeterLength(t *testing.T) {
	sim, err := New(validConfig(), 10, WithTargeter(attack.NewListTargeter(3, nil)))
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Step(); err == nil {
		t.Fatal("mismatched targeter accepted")
	}
}

// TestHeldMonotone: a node's token count never decreases.
func TestHeldMonotone(t *testing.T) {
	sim, err := New(validConfig(), 11)
	if err != nil {
		t.Fatal(err)
	}
	prev := make([]int, 20)
	for r := 0; r < 30; r++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 20; v++ {
			if sim.HeldCount(v) < prev[v] {
				t.Fatalf("node %d lost tokens at round %d", v, r)
			}
			prev[v] = sim.HeldCount(v)
		}
	}
}

func TestRoundAccessor(t *testing.T) {
	sim, err := New(validConfig(), 30)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Round() != 0 {
		t.Fatalf("initial round %d", sim.Round())
	}
	if err := sim.Step(); err != nil {
		t.Fatal(err)
	}
	if sim.Round() != 1 {
		t.Fatalf("round after step %d", sim.Round())
	}
}

func TestRunPropagatesStepError(t *testing.T) {
	sim, err := New(validConfig(), 31, WithTargeter(attack.NewListTargeter(3, nil)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err == nil {
		t.Fatal("Run swallowed the targeter error")
	}
}
