// Package tokenmodel implements the simple token-collecting model of
// Section 3 of the paper, used there to understand when a lotus-eater
// attack harms a system.
//
// A system is a tuple (G, T, sat, f, c, a):
//
//   - G is the underlying connected communication graph;
//   - T is a finite set of tokens;
//   - sat(i, t, T') = true iff T' = T — every node wants every token;
//   - f is an initial allocation of tokens to nodes;
//   - c bounds the number of nodes each node can contact per round;
//   - a is the probability a node responds to requests even when satiated
//     (the amount of altruism in the system).
//
// Each round, the attacker first gives every node in a chosen subset all
// the tokens (instant satiation — deliberately overestimating the attacker,
// as the paper does). Then every unsatiated node selects up to c random
// neighbors; each contact copies token sets both ways. Satiated nodes do
// not initiate and respond only with probability a. All exchanges in a
// round read start-of-round state ("assume all of these events happen
// simultaneously").
package tokenmodel

import (
	"errors"
	"fmt"

	"lotuseater/internal/attack"
	"lotuseater/internal/bitset"
	"lotuseater/internal/graph"
	"lotuseater/internal/population"
	"lotuseater/internal/sim"
	"lotuseater/internal/simrng"
)

// Config parameterizes a run of the model.
type Config struct {
	// Graph is G; it must be non-nil. The paper assumes G connected, but
	// the simulator does not require it (cut experiments rely on satiation
	// disconnecting flows, not the graph).
	Graph *graph.Graph
	// Tokens is |T|.
	Tokens int
	// Contacts is c, the per-round contact budget per node.
	Contacts int
	// Altruism is a, the probability a satiated node responds anyway.
	Altruism float64
	// Rounds is the simulation horizon.
	Rounds int
	// Allocation maps node -> initially held token (the paper's f: V -> T).
	// Nil means node v starts with token v mod Tokens.
	Allocation []int
	// Churn is the lifecycle schedule: each event's node leaves or
	// (re)joins at the top of its round. A departed node neither initiates
	// nor answers contacts; a rejoining index is a fresh agent (initial
	// allocation, completion cleared). Nil means a static population.
	Churn []population.Event
	// NodeAltruism overrides Altruism per node when non-nil (len = nodes,
	// values in [0,1]) — the heterogeneous-classes axis.
	NodeAltruism []float64
	// NodeContacts overrides Contacts per node when non-nil (len = nodes,
	// values >= 0) — per-class capacity.
	NodeContacts []int
}

// Validate reports the first problem with the configuration, or nil.
func (c Config) Validate() error {
	switch {
	case c.Graph == nil:
		return errors.New("tokenmodel: nil graph")
	case c.Tokens < 1:
		return fmt.Errorf("tokenmodel: Tokens must be positive, got %d", c.Tokens)
	case c.Contacts < 0:
		return fmt.Errorf("tokenmodel: Contacts must be non-negative, got %d", c.Contacts)
	case c.Altruism < 0 || c.Altruism > 1:
		return fmt.Errorf("tokenmodel: Altruism must be in [0,1], got %g", c.Altruism)
	case c.Rounds < 1:
		return fmt.Errorf("tokenmodel: Rounds must be positive, got %d", c.Rounds)
	case c.Allocation != nil && len(c.Allocation) != c.Graph.N():
		return fmt.Errorf("tokenmodel: Allocation has %d entries for %d nodes", len(c.Allocation), c.Graph.N())
	}
	if c.Allocation != nil {
		for v, t := range c.Allocation {
			if t < 0 || t >= c.Tokens {
				return fmt.Errorf("tokenmodel: Allocation[%d] = %d out of range [0,%d)", v, t, c.Tokens)
			}
		}
	}
	n := c.Graph.N()
	if err := population.ValidateSchedule(c.Churn, n); err != nil {
		return fmt.Errorf("tokenmodel: churn: %w", err)
	}
	if c.NodeAltruism != nil {
		if len(c.NodeAltruism) != n {
			return fmt.Errorf("tokenmodel: NodeAltruism has %d entries for %d nodes", len(c.NodeAltruism), n)
		}
		for v, a := range c.NodeAltruism {
			if a < 0 || a > 1 {
				return fmt.Errorf("tokenmodel: NodeAltruism[%d] = %g outside [0,1]", v, a)
			}
		}
	}
	if c.NodeContacts != nil {
		if len(c.NodeContacts) != n {
			return fmt.Errorf("tokenmodel: NodeContacts has %d entries for %d nodes", len(c.NodeContacts), n)
		}
		for v, k := range c.NodeContacts {
			if k < 0 {
				return fmt.Errorf("tokenmodel: NodeContacts[%d] = %d must be non-negative", v, k)
			}
		}
	}
	return nil
}

// Result summarizes a run.
type Result struct {
	// SatiatedByRound[r] is the number of satiated nodes after round r.
	SatiatedByRound []int
	// CompletedFraction is the fraction of nodes satiated at the horizon.
	CompletedFraction float64
	// OrganicCompletedFraction is the completed fraction among nodes the
	// adversary neither controls nor ever served — the population an attack
	// actually harms. Without an adversary it equals CompletedFraction.
	OrganicCompletedFraction float64
	// AllSatiatedRound is the first round after which every node was
	// satiated, or -1 if that never happened.
	AllSatiatedRound int
	// TokenCoverage[t] is the fraction of nodes holding token t at the
	// horizon (diagnoses rare-token denial).
	TokenCoverage []float64
	// MeanCompletionRound is the average round at which nodes became
	// satiated, counting unfinished nodes as the horizon.
	MeanCompletionRound float64
}

// Sim is one instance of the model. Create with New, drive with Run or Step.
// Sim implements sim.Model; Snapshot's concrete type is Result.
type Sim struct {
	cfg      Config
	rng      *simrng.Source
	targeter attack.Targeter // nil = no attacker
	ws       *sim.Workspace  // nil = private allocations

	// Strategy hooks: adv places attacker nodes and decides targeting and
	// in-protocol service; def rate-limits what receivers accept. Both are
	// optional; the legacy WithTargeter path is adv == nil.
	adv        sim.Adversary
	def        sim.Defense
	isAttacker []bool
	touched    []bool // node ever received tokens from the adversary
	advTrades  bool
	advInstant bool

	round     int
	held      []*bitset.Set
	completed []int // round node became satiated, -1 if not yet
	result    Result

	// Population lifecycle: churn replays Config.Churn; departed marks
	// absent nodes (nil-safe scalar path when the config has no churn).
	churn    population.Cursor
	departed []bool

	// Round scratch, allocated once at New (from the workspace when one is
	// installed) and reused every round — Step allocates nothing.
	snapshot []*bitset.Set
	gains    []*bitset.Set
	sat      []bool
}

// Option customizes a Sim.
type Option func(*Sim)

// WithTargeter installs an attacker that satiates the targeter's chosen
// nodes at the start of every round.
func WithTargeter(t attack.Targeter) Option {
	return func(s *Sim) { s.targeter = t }
}

// WithWorkspace draws the simulation's bitsets and scratch from a worker's
// arena instead of the heap, making replicated runs allocation-free on the
// hot path. The Sim must then not outlive the pool task that built it.
func WithWorkspace(ws *sim.Workspace) Option {
	return func(s *Sim) { s.ws = ws }
}

// WithAdversary installs a full adversary strategy: it places attacker
// nodes (which hold every token when the strategy trades in protocol or
// satiates instantly — the adversary sources content out of band, as the
// paper's "deliberately overestimating the attacker" does), chooses per-
// round satiation targets, and decides via OnExchange which contacting
// partners attacker nodes serve.
func WithAdversary(a sim.Adversary) Option {
	return func(s *Sim) { s.adv = a }
}

// WithDefense installs a receiver-side defense: every token transfer is
// gated by Admit, capping how many new tokens a node accepts from any one
// partner per round — Section 5's rate-limiting idea on the Section 3
// substrate.
func WithDefense(d sim.Defense) Option {
	return func(s *Sim) { s.def = d }
}

// New builds a Sim, deterministic in (cfg, seed).
func New(cfg Config, seed uint64, opts ...Option) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Graph.N()
	s := &Sim{
		cfg: cfg,
		rng: simrng.New(seed),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.ws != nil {
		s.held = s.ws.Bitsets(n, cfg.Tokens)
		s.snapshot = s.ws.Bitsets(n, cfg.Tokens)
		s.gains = s.ws.Bitsets(n, cfg.Tokens)
		s.sat = s.ws.Bools(n)
		s.completed = s.ws.Ints(n)
	} else {
		s.held = make([]*bitset.Set, n)
		s.snapshot = make([]*bitset.Set, n)
		s.gains = make([]*bitset.Set, n)
		for v := 0; v < n; v++ {
			s.held[v] = bitset.New(cfg.Tokens)
			s.snapshot[v] = bitset.New(cfg.Tokens)
			s.gains[v] = bitset.New(cfg.Tokens)
		}
		s.sat = make([]bool, n)
		s.completed = make([]int, n)
	}
	for v := 0; v < n; v++ {
		tok := v % cfg.Tokens
		if cfg.Allocation != nil {
			tok = cfg.Allocation[v]
		}
		s.held[v].Add(tok)
		s.completed[v] = -1
	}
	if s.adv != nil {
		s.advTrades = sim.TradesInProtocol(s.adv)
		s.advInstant = sim.SatiatesInstantly(s.adv)
		if s.ws != nil {
			s.isAttacker = s.ws.Bools(n)
			s.touched = s.ws.Bools(n)
		} else {
			s.isAttacker = make([]bool, n)
			s.touched = make([]bool, n)
		}
		for _, a := range s.adv.Place(n, s.rng.Child("adversary")) {
			if a < 0 || a >= n {
				return nil, fmt.Errorf("tokenmodel: adversary placed node %d outside [0,%d)", a, n)
			}
			s.isAttacker[a] = true
			if s.advTrades || s.advInstant {
				// Lotus-eater attackers hold the full token set: the
				// adversary sources content out of band.
				s.held[a].Fill()
			}
		}
		if s.targeter == nil {
			s.targeter = attack.TargeterFrom(s.adv)
		}
	}
	for v := 0; v < n; v++ {
		if s.satiated(v) {
			s.completed[v] = 0
		}
	}
	if len(cfg.Churn) > 0 {
		s.churn = population.NewCursor(cfg.Churn)
		if s.ws != nil {
			s.departed = s.ws.Bools(n)
		} else {
			s.departed = make([]bool, n)
		}
	}
	return s, nil
}

// gone reports whether node v is currently departed.
func (s *Sim) gone(v int) bool { return s.departed != nil && s.departed[v] }

// contactsOf returns v's per-round contact budget: the per-class override
// when one is installed, the scalar config otherwise.
func (s *Sim) contactsOf(v int) int {
	if s.cfg.NodeContacts != nil {
		return s.cfg.NodeContacts[v]
	}
	return s.cfg.Contacts
}

// altruismOf returns node v's altruism (v is the responding side).
func (s *Sim) altruismOf(v int) float64 {
	if s.cfg.NodeAltruism != nil {
		return s.cfg.NodeAltruism[v]
	}
	return s.cfg.Altruism
}

// leaveNode and joinNode apply one lifecycle event. A rejoining index is
// a fresh agent: initial allocation, no completion record (attackers
// refill instead — the adversary re-provisions its own nodes).
func (s *Sim) leaveNode(v int) {
	if s.departed[v] {
		return
	}
	s.departed[v] = true
	if s.adv != nil {
		sim.NotifyDeparture(s.adv, s.round, v)
	}
}

func (s *Sim) joinNode(v int) {
	if !s.departed[v] {
		return
	}
	s.departed[v] = false
	s.held[v].Clear()
	if s.isAttacker != nil && s.isAttacker[v] && (s.advTrades || s.advInstant) {
		s.held[v].Fill()
		s.completed[v] = s.round
		return
	}
	tok := v % s.cfg.Tokens
	if s.cfg.Allocation != nil {
		tok = s.cfg.Allocation[v]
	}
	s.held[v].Add(tok)
	s.completed[v] = -1
}

func (s *Sim) satiated(v int) bool { return s.held[v].Full() }

// Round returns the next round to simulate.
func (s *Sim) Round() int { return s.round }

// Satiated reports whether node v currently holds all tokens.
func (s *Sim) Satiated(v int) bool { return s.satiated(v) }

// HeldCount returns how many distinct tokens v holds.
func (s *Sim) HeldCount(v int) int { return s.held[v].Len() }

// Has reports whether v holds token t.
func (s *Sim) Has(v, t int) bool { return s.held[v].Has(t) }

// CompletionRound returns the round at which v became satiated, or -1 if it
// has not. Nodes satiated by the attacker count as completed; callers that
// care about organic completion should restrict to non-target nodes.
func (s *Sim) CompletionRound(v int) int { return s.completed[v] }

// Step simulates one round.
func (s *Sim) Step() error {
	if s.round >= s.cfg.Rounds {
		return fmt.Errorf("tokenmodel: horizon of %d rounds exhausted", s.cfg.Rounds)
	}
	n := s.cfg.Graph.N()

	// 0. Lifecycle: departures and arrivals land before the attack and
	// every contact, and the adversary hears about departures before its
	// Targets call (a departed target's satiation leaves with it).
	for ev, ok := s.churn.Next(s.round); ok; ev, ok = s.churn.Next(s.round) {
		if ev.Join {
			s.joinNode(ev.Node)
		} else {
			s.leaveNode(ev.Node)
		}
	}

	// 1. The attacker satiates its targets. A legacy targeter (no adversary
	// installed) always delivers instantly; an adversary strategy does so
	// only when it satiates out of protocol (the ideal attack) — trade
	// attackers must work through exchanges below. The defense's Admit hook
	// caps how many tokens each target accepts per round, so a rate limit
	// slows even the "instant" attacker.
	if s.targeter != nil && (s.adv == nil || s.advInstant) {
		targets := s.targeter.Satiated(s.round)
		if targets.Cap() != n {
			return fmt.Errorf("tokenmodel: targeter returned a set over %d nodes, want %d", targets.Cap(), n)
		}
		// Sparse iteration: the satiation pass costs O(|satiated set|), not
		// O(n), and allocates nothing.
		for _, v := range targets.Members() {
			if s.satiated(v) || s.gone(v) || (s.isAttacker != nil && s.isAttacker[v]) {
				continue
			}
			s.satiate(v)
		}
	}

	// 2. Simultaneous contacts: all exchanges read the start-of-round
	// snapshot; gains land after every contact has been resolved. The
	// snapshot/gains/sat buffers live on the Sim and are reused each round.
	snapshot, gains, sat := s.snapshot, s.gains, s.sat
	for v := 0; v < n; v++ {
		snapshot[v].CopyFrom(s.held[v])
		gains[v].Clear()
		sat[v] = snapshot[v].Full()
	}
	rng := s.rng.ChildN("round", s.round)
	for v := 0; v < n; v++ {
		if s.gone(v) {
			continue // empty seat: no contacts in or out
		}
		if s.isAttacker != nil && s.isAttacker[v] {
			// Attacker nodes never collect for themselves. Trade attackers
			// initiate contacts to deliver satiation through the protocol;
			// crash and ideal attackers stay silent.
			if s.advTrades {
				s.attackerContacts(v, sat, rng)
			}
			continue
		}
		if sat[v] {
			continue // satiated nodes stop communicating
		}
		nb := s.cfg.Graph.AdjList(v)
		if len(nb) == 0 {
			continue
		}
		c := s.contactsOf(v)
		if c > len(nb) {
			c = len(nb)
		}
		for _, idx := range rng.SampleInts(len(nb), c) {
			p := nb[idx]
			if s.gone(p) {
				continue // contacting an empty seat wastes the slot
			}
			if s.isAttacker != nil && s.isAttacker[p] {
				// The contacted attacker serves per the adversary's
				// OnExchange rule and takes nothing back.
				if s.adv.OnExchange(s.round, p, v) && s.transferInto(v, p) > 0 {
					s.touched[v] = true
				}
				continue
			}
			if sat[p] && !rng.Bool(s.altruismOf(p)) {
				continue // satiated partner declines to respond
			}
			s.transferInto(v, p)
			s.transferInto(p, v)
		}
	}
	for v := 0; v < n; v++ {
		s.held[v].UnionWith(gains[v])
		if s.completed[v] == -1 && s.satiated(v) {
			s.completed[v] = s.round
		}
	}

	count := 0
	for v := 0; v < n; v++ {
		if !s.gone(v) && s.satiated(v) {
			count++
		}
	}
	s.result.SatiatedByRound = append(s.result.SatiatedByRound, count)
	s.round++
	return nil
}

// satiate delivers the attacker's out-of-protocol payload to v: every token
// v lacks, capped by the defense's Admit budget (sender -1, the external
// attacker).
func (s *Sim) satiate(v int) {
	if s.def == nil {
		s.held[v].Fill()
		if s.touched != nil {
			s.touched[v] = true
		}
		return
	}
	missing := s.held[v].Missing()
	granted := s.def.Admit(s.round, -1, v, len(missing))
	if granted > len(missing) {
		granted = len(missing)
	}
	for _, t := range missing[:granted] {
		s.held[v].Add(t)
	}
	if granted > 0 && s.touched != nil {
		s.touched[v] = true
	}
}

// attackerContacts is a trade attacker's round: it contacts up to c random
// neighbors and gives each satiation target its full snapshot, taking
// nothing in return.
func (s *Sim) attackerContacts(v int, sat []bool, rng *simrng.Source) {
	nb := s.cfg.Graph.AdjList(v)
	if len(nb) == 0 {
		return
	}
	c := s.contactsOf(v)
	if c > len(nb) {
		c = len(nb)
	}
	for _, idx := range rng.SampleInts(len(nb), c) {
		p := nb[idx]
		if s.gone(p) || s.isAttacker[p] || sat[p] || !s.adv.OnExchange(s.round, v, p) {
			continue
		}
		if s.transferInto(p, v) > 0 {
			s.touched[p] = true
		}
	}
}

// transferInto moves the sender's start-of-round token set into the
// receiver's pending gains and reports how many new tokens landed. Without
// a defense this is a plain union; with one, the number of genuinely new
// tokens accepted is capped by Admit and the grant is consumed in ascending
// token order (deterministic).
func (s *Sim) transferInto(dst, src int) int {
	if s.def == nil {
		return s.gains[dst].UnionWith(s.snapshot[src])
	}
	need := 0
	s.snapshot[src].ForEach(func(t int) {
		if !s.snapshot[dst].Has(t) && !s.gains[dst].Has(t) {
			need++
		}
	})
	if need == 0 {
		return 0
	}
	granted := s.def.Admit(s.round, src, dst, need)
	if granted >= need {
		return s.gains[dst].UnionWith(s.snapshot[src])
	}
	taken := 0
	s.snapshot[src].ForEach(func(t int) {
		if taken >= granted {
			return
		}
		if !s.snapshot[dst].Has(t) && !s.gains[dst].Has(t) {
			s.gains[dst].Add(t)
			taken++
		}
	})
	return taken
}

// Run simulates the full horizon and returns the result.
func (s *Sim) Run() (Result, error) {
	for s.round < s.cfg.Rounds {
		if err := s.Step(); err != nil {
			return Result{}, err
		}
	}
	return s.finish(), nil
}

// Finished reports whether the horizon has been reached.
func (s *Sim) Finished() bool { return s.round >= s.cfg.Rounds }

// Snapshot returns the Result summarizing the run so far.
func (s *Sim) Snapshot() (any, error) { return s.finish(), nil }

func (s *Sim) finish() Result {
	n := s.cfg.Graph.N()
	res := s.result
	res.AllSatiatedRound = -1
	for r, c := range res.SatiatedByRound {
		if c == n {
			res.AllSatiatedRound = r
			break
		}
	}
	done := 0
	sum := 0.0
	for v := 0; v < n; v++ {
		if s.completed[v] >= 0 {
			done++
			sum += float64(s.completed[v])
		} else {
			sum += float64(s.cfg.Rounds)
		}
	}
	if n > 0 {
		res.CompletedFraction = float64(done) / float64(n)
		res.MeanCompletionRound = sum / float64(n)
	}
	organicDone, organicTotal := 0, 0
	for v := 0; v < n; v++ {
		if s.isAttacker != nil && s.isAttacker[v] {
			continue
		}
		if s.touched != nil && s.touched[v] {
			continue
		}
		organicTotal++
		if s.completed[v] >= 0 {
			organicDone++
		}
	}
	if organicTotal > 0 {
		res.OrganicCompletedFraction = float64(organicDone) / float64(organicTotal)
	}
	res.TokenCoverage = make([]float64, s.cfg.Tokens)
	for t := 0; t < s.cfg.Tokens; t++ {
		holders := 0
		for v := 0; v < n; v++ {
			if s.held[v].Has(t) {
				holders++
			}
		}
		if n > 0 {
			res.TokenCoverage[t] = float64(holders) / float64(n)
		}
	}
	return res
}
