// Package tokenmodel implements the simple token-collecting model of
// Section 3 of the paper, used there to understand when a lotus-eater
// attack harms a system.
//
// A system is a tuple (G, T, sat, f, c, a):
//
//   - G is the underlying connected communication graph;
//   - T is a finite set of tokens;
//   - sat(i, t, T') = true iff T' = T — every node wants every token;
//   - f is an initial allocation of tokens to nodes;
//   - c bounds the number of nodes each node can contact per round;
//   - a is the probability a node responds to requests even when satiated
//     (the amount of altruism in the system).
//
// Each round, the attacker first gives every node in a chosen subset all
// the tokens (instant satiation — deliberately overestimating the attacker,
// as the paper does). Then every unsatiated node selects up to c random
// neighbors; each contact copies token sets both ways. Satiated nodes do
// not initiate and respond only with probability a. All exchanges in a
// round read start-of-round state ("assume all of these events happen
// simultaneously").
package tokenmodel

import (
	"errors"
	"fmt"

	"lotuseater/internal/attack"
	"lotuseater/internal/bitset"
	"lotuseater/internal/graph"
	"lotuseater/internal/sim"
	"lotuseater/internal/simrng"
)

// Config parameterizes a run of the model.
type Config struct {
	// Graph is G; it must be non-nil. The paper assumes G connected, but
	// the simulator does not require it (cut experiments rely on satiation
	// disconnecting flows, not the graph).
	Graph *graph.Graph
	// Tokens is |T|.
	Tokens int
	// Contacts is c, the per-round contact budget per node.
	Contacts int
	// Altruism is a, the probability a satiated node responds anyway.
	Altruism float64
	// Rounds is the simulation horizon.
	Rounds int
	// Allocation maps node -> initially held token (the paper's f: V -> T).
	// Nil means node v starts with token v mod Tokens.
	Allocation []int
}

// Validate reports the first problem with the configuration, or nil.
func (c Config) Validate() error {
	switch {
	case c.Graph == nil:
		return errors.New("tokenmodel: nil graph")
	case c.Tokens < 1:
		return fmt.Errorf("tokenmodel: Tokens must be positive, got %d", c.Tokens)
	case c.Contacts < 0:
		return fmt.Errorf("tokenmodel: Contacts must be non-negative, got %d", c.Contacts)
	case c.Altruism < 0 || c.Altruism > 1:
		return fmt.Errorf("tokenmodel: Altruism must be in [0,1], got %g", c.Altruism)
	case c.Rounds < 1:
		return fmt.Errorf("tokenmodel: Rounds must be positive, got %d", c.Rounds)
	case c.Allocation != nil && len(c.Allocation) != c.Graph.N():
		return fmt.Errorf("tokenmodel: Allocation has %d entries for %d nodes", len(c.Allocation), c.Graph.N())
	}
	if c.Allocation != nil {
		for v, t := range c.Allocation {
			if t < 0 || t >= c.Tokens {
				return fmt.Errorf("tokenmodel: Allocation[%d] = %d out of range [0,%d)", v, t, c.Tokens)
			}
		}
	}
	return nil
}

// Result summarizes a run.
type Result struct {
	// SatiatedByRound[r] is the number of satiated nodes after round r.
	SatiatedByRound []int
	// CompletedFraction is the fraction of nodes satiated at the horizon.
	CompletedFraction float64
	// AllSatiatedRound is the first round after which every node was
	// satiated, or -1 if that never happened.
	AllSatiatedRound int
	// TokenCoverage[t] is the fraction of nodes holding token t at the
	// horizon (diagnoses rare-token denial).
	TokenCoverage []float64
	// MeanCompletionRound is the average round at which nodes became
	// satiated, counting unfinished nodes as the horizon.
	MeanCompletionRound float64
}

// Sim is one instance of the model. Create with New, drive with Run or Step.
// Sim implements sim.Model; Snapshot's concrete type is Result.
type Sim struct {
	cfg      Config
	rng      *simrng.Source
	targeter attack.Targeter // nil = no attacker
	ws       *sim.Workspace  // nil = private allocations

	round     int
	held      []*bitset.Set
	completed []int // round node became satiated, -1 if not yet
	result    Result

	// Round scratch, allocated once at New (from the workspace when one is
	// installed) and reused every round — Step allocates nothing.
	snapshot []*bitset.Set
	gains    []*bitset.Set
	sat      []bool
}

// Option customizes a Sim.
type Option func(*Sim)

// WithTargeter installs an attacker that satiates the targeter's chosen
// nodes at the start of every round.
func WithTargeter(t attack.Targeter) Option {
	return func(s *Sim) { s.targeter = t }
}

// WithWorkspace draws the simulation's bitsets and scratch from a worker's
// arena instead of the heap, making replicated runs allocation-free on the
// hot path. The Sim must then not outlive the pool task that built it.
func WithWorkspace(ws *sim.Workspace) Option {
	return func(s *Sim) { s.ws = ws }
}

// New builds a Sim, deterministic in (cfg, seed).
func New(cfg Config, seed uint64, opts ...Option) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Graph.N()
	s := &Sim{
		cfg: cfg,
		rng: simrng.New(seed),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.ws != nil {
		s.held = s.ws.Bitsets(n, cfg.Tokens)
		s.snapshot = s.ws.Bitsets(n, cfg.Tokens)
		s.gains = s.ws.Bitsets(n, cfg.Tokens)
		s.sat = s.ws.Bools(n)
		s.completed = s.ws.Ints(n)
	} else {
		s.held = make([]*bitset.Set, n)
		s.snapshot = make([]*bitset.Set, n)
		s.gains = make([]*bitset.Set, n)
		for v := 0; v < n; v++ {
			s.held[v] = bitset.New(cfg.Tokens)
			s.snapshot[v] = bitset.New(cfg.Tokens)
			s.gains[v] = bitset.New(cfg.Tokens)
		}
		s.sat = make([]bool, n)
		s.completed = make([]int, n)
	}
	for v := 0; v < n; v++ {
		tok := v % cfg.Tokens
		if cfg.Allocation != nil {
			tok = cfg.Allocation[v]
		}
		s.held[v].Add(tok)
		s.completed[v] = -1
		if s.satiated(v) {
			s.completed[v] = 0
		}
	}
	return s, nil
}

func (s *Sim) satiated(v int) bool { return s.held[v].Full() }

// Round returns the next round to simulate.
func (s *Sim) Round() int { return s.round }

// Satiated reports whether node v currently holds all tokens.
func (s *Sim) Satiated(v int) bool { return s.satiated(v) }

// HeldCount returns how many distinct tokens v holds.
func (s *Sim) HeldCount(v int) int { return s.held[v].Len() }

// Has reports whether v holds token t.
func (s *Sim) Has(v, t int) bool { return s.held[v].Has(t) }

// CompletionRound returns the round at which v became satiated, or -1 if it
// has not. Nodes satiated by the attacker count as completed; callers that
// care about organic completion should restrict to non-target nodes.
func (s *Sim) CompletionRound(v int) int { return s.completed[v] }

// Step simulates one round.
func (s *Sim) Step() error {
	if s.round >= s.cfg.Rounds {
		return fmt.Errorf("tokenmodel: horizon of %d rounds exhausted", s.cfg.Rounds)
	}
	n := s.cfg.Graph.N()

	// 1. The attacker satiates its targets.
	if s.targeter != nil {
		targets := s.targeter.Satiated(s.round)
		if len(targets) != n {
			return fmt.Errorf("tokenmodel: targeter returned %d entries for %d nodes", len(targets), n)
		}
		for v := 0; v < n; v++ {
			if targets[v] && !s.satiated(v) {
				s.held[v].Fill()
			}
		}
	}

	// 2. Simultaneous contacts: all exchanges read the start-of-round
	// snapshot; gains land after every contact has been resolved. The
	// snapshot/gains/sat buffers live on the Sim and are reused each round.
	snapshot, gains, sat := s.snapshot, s.gains, s.sat
	for v := 0; v < n; v++ {
		snapshot[v].CopyFrom(s.held[v])
		gains[v].Clear()
		sat[v] = snapshot[v].Full()
	}
	rng := s.rng.ChildN("round", s.round)
	for v := 0; v < n; v++ {
		if sat[v] {
			continue // satiated nodes stop communicating
		}
		nb := s.cfg.Graph.Neighbors(v)
		if len(nb) == 0 {
			continue
		}
		c := s.cfg.Contacts
		if c > len(nb) {
			c = len(nb)
		}
		for _, idx := range rng.SampleInts(len(nb), c) {
			p := nb[idx]
			if sat[p] && !rng.Bool(s.cfg.Altruism) {
				continue // satiated partner declines to respond
			}
			gains[v].UnionWith(snapshot[p])
			gains[p].UnionWith(snapshot[v])
		}
	}
	for v := 0; v < n; v++ {
		s.held[v].UnionWith(gains[v])
		if s.completed[v] == -1 && s.satiated(v) {
			s.completed[v] = s.round
		}
	}

	count := 0
	for v := 0; v < n; v++ {
		if s.satiated(v) {
			count++
		}
	}
	s.result.SatiatedByRound = append(s.result.SatiatedByRound, count)
	s.round++
	return nil
}

// Run simulates the full horizon and returns the result.
func (s *Sim) Run() (Result, error) {
	for s.round < s.cfg.Rounds {
		if err := s.Step(); err != nil {
			return Result{}, err
		}
	}
	return s.finish(), nil
}

// Finished reports whether the horizon has been reached.
func (s *Sim) Finished() bool { return s.round >= s.cfg.Rounds }

// Snapshot returns the Result summarizing the run so far.
func (s *Sim) Snapshot() (any, error) { return s.finish(), nil }

func (s *Sim) finish() Result {
	n := s.cfg.Graph.N()
	res := s.result
	res.AllSatiatedRound = -1
	for r, c := range res.SatiatedByRound {
		if c == n {
			res.AllSatiatedRound = r
			break
		}
	}
	done := 0
	sum := 0.0
	for v := 0; v < n; v++ {
		if s.completed[v] >= 0 {
			done++
			sum += float64(s.completed[v])
		} else {
			sum += float64(s.cfg.Rounds)
		}
	}
	if n > 0 {
		res.CompletedFraction = float64(done) / float64(n)
		res.MeanCompletionRound = sum / float64(n)
	}
	res.TokenCoverage = make([]float64, s.cfg.Tokens)
	for t := 0; t < s.cfg.Tokens; t++ {
		holders := 0
		for v := 0; v < n; v++ {
			if s.held[v].Has(t) {
				holders++
			}
		}
		if n > 0 {
			res.TokenCoverage[t] = float64(holders) / float64(n)
		}
	}
	return res
}
