// Package simrng provides deterministic, splittable random number streams
// for simulations.
//
// Every experiment in this repository is a pure function of a configuration
// and a 64-bit seed. To keep subsystems (broadcaster seeding, partner
// selection, attacker choices, ...) statistically independent while remaining
// reproducible, simrng derives child streams from a parent seed using a
// SplitMix64 finalizer over the parent seed and a label hash. Child streams
// are backed by the PCG generator from math/rand/v2.
package simrng

import (
	"hash/fnv"
	"math/rand/v2"
)

// splitMix64 is the SplitMix64 finalizer. It is used to decorrelate derived
// seeds; see Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
// Generators" (OOPSLA 2014).
func splitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// labelHash maps a textual label to a 64-bit value with FNV-1a.
func labelHash(label string) uint64 {
	h := fnv.New64a()
	// fnv.Write never returns an error.
	_, _ = h.Write([]byte(label))
	return h.Sum64()
}

// Source is a deterministic random stream. It wraps *rand.Rand and adds
// derivation of independent child streams. A Source must not be shared
// between goroutines without external synchronization; derive one child per
// goroutine instead.
type Source struct {
	seed uint64
	rng  *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{
		seed: seed,
		rng:  rand.New(rand.NewPCG(splitMix64(seed), splitMix64(seed^0xda3e39cb94b95bdb))),
	}
}

// Seed returns the seed this Source was created with.
func (s *Source) Seed() uint64 { return s.seed }

// Child derives an independent stream identified by label. Calling Child
// with the same label always yields a stream with the same seed, regardless
// of how much randomness has been consumed from s.
func (s *Source) Child(label string) *Source {
	return New(splitMix64(s.seed ^ labelHash(label)))
}

// ChildN derives an independent stream identified by label and an index,
// e.g. one stream per node or per sweep point.
func (s *Source) ChildN(label string, n int) *Source {
	return New(splitMix64(s.seed^labelHash(label)) ^ splitMix64(uint64(n)+0x632be59bd9b4e019))
}

// IntN returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand/v2 semantics.
func (s *Source) IntN(n int) int { return s.rng.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (s *Source) Uint64() uint64 { return s.rng.Uint64() }

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.rng.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// PermInto writes a random permutation of [0, n) into buf, reusing its
// storage when it is large enough, and returns it. The draw is bit-identical
// to Perm (identity order run through Shuffle, exactly as math/rand/v2
// builds it), so hot loops can drop the per-round allocation without
// changing any result; the equivalence is pinned by a test.
func (s *Source) PermInto(buf []int, n int) []int {
	if cap(buf) >= n {
		buf = buf[:n]
	} else {
		buf = make([]int, n)
	}
	for i := range buf {
		buf[i] = i
	}
	s.rng.Shuffle(n, func(i, j int) { buf[i], buf[j] = buf[j], buf[i] })
	return buf
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// SampleInts returns k distinct integers drawn uniformly from [0, n).
// It panics if k > n or k < 0. The result is in random order.
func (s *Source) SampleInts(n, k int) []int {
	if k < 0 || k > n {
		panic("simrng: sample size out of range")
	}
	if k == 0 {
		return nil
	}
	// For small k relative to n use rejection sampling; otherwise use a
	// partial Fisher-Yates over the index range.
	if k*4 <= n {
		seen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for len(out) < k {
			v := s.rng.IntN(n)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
		}
		return out
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + s.rng.IntN(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k:k]
}

// PickOther returns a uniform element of [0, n) that is not self.
// It panics if n < 2.
func (s *Source) PickOther(n, self int) int {
	if n < 2 {
		panic("simrng: PickOther needs n >= 2")
	}
	v := s.rng.IntN(n - 1)
	if v >= self {
		v++
	}
	return v
}

// NormFloat64 returns a standard normal variate.
func (s *Source) NormFloat64() float64 { return s.rng.NormFloat64() }

// ExpFloat64 returns an exponential variate with rate 1.
func (s *Source) ExpFloat64() float64 { return s.rng.ExpFloat64() }
