package simrng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestChildIndependentOfConsumption(t *testing.T) {
	a := New(7)
	fresh := a.Child("stream").Uint64()

	b := New(7)
	for i := 0; i < 50; i++ {
		b.Uint64() // consume parent randomness
	}
	consumed := b.Child("stream").Uint64()

	if fresh != consumed {
		t.Fatalf("child stream depends on parent consumption: %d != %d", fresh, consumed)
	}
}

func TestChildLabelsDiffer(t *testing.T) {
	s := New(7)
	if s.Child("a").Uint64() == s.Child("b").Uint64() {
		t.Fatal("children with different labels produced the same first draw")
	}
}

func TestChildNDistinct(t *testing.T) {
	s := New(7)
	seen := make(map[uint64]int)
	for i := 0; i < 200; i++ {
		v := s.ChildN("node", i).Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("ChildN %d and %d share first draw %d", prev, i, v)
		}
		seen[v] = i
	}
}

func TestSeedAccessor(t *testing.T) {
	if got := New(99).Seed(); got != 99 {
		t.Fatalf("Seed() = %d, want 99", got)
	}
}

func TestIntNRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.IntN(17)
		if v < 0 || v >= 17 {
			t.Fatalf("IntN(17) = %d out of range", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %g out of range", v)
		}
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(3)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if s.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !s.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	s := New(11)
	const trials = 50000
	hits := 0
	for i := 0; i < trials; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / trials
	if math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) frequency %g, want ~0.3", frac)
	}
}

func TestSampleIntsProperties(t *testing.T) {
	s := New(5)
	check := func(n, k int) {
		t.Helper()
		got := s.SampleInts(n, k)
		if len(got) != k {
			t.Fatalf("SampleInts(%d,%d) returned %d values", n, k, len(got))
		}
		seen := make(map[int]bool, k)
		for _, v := range got {
			if v < 0 || v >= n {
				t.Fatalf("SampleInts(%d,%d) produced out-of-range %d", n, k, v)
			}
			if seen[v] {
				t.Fatalf("SampleInts(%d,%d) produced duplicate %d", n, k, v)
			}
			seen[v] = true
		}
	}
	// Exercise both the rejection-sampling and partial-shuffle paths.
	for _, tc := range []struct{ n, k int }{
		{10, 0}, {10, 1}, {10, 2}, {10, 5}, {10, 10},
		{1000, 3}, {1000, 250}, {1000, 999}, {1, 1}, {1, 0},
	} {
		check(tc.n, tc.k)
	}
}

func TestSampleIntsPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SampleInts(3, 4) did not panic")
		}
	}()
	New(1).SampleInts(3, 4)
}

func TestSampleIntsUniform(t *testing.T) {
	s := New(13)
	counts := make([]int, 10)
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, v := range s.SampleInts(10, 3) {
			counts[v]++
		}
	}
	want := float64(trials) * 3 / 10
	for v, c := range counts {
		if math.Abs(float64(c)-want) > want*0.06 {
			t.Fatalf("value %d drawn %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestPickOther(t *testing.T) {
	s := New(5)
	for self := 0; self < 6; self++ {
		for i := 0; i < 1000; i++ {
			v := s.PickOther(6, self)
			if v == self {
				t.Fatalf("PickOther(6,%d) returned self", self)
			}
			if v < 0 || v >= 6 {
				t.Fatalf("PickOther(6,%d) = %d out of range", self, v)
			}
		}
	}
}

func TestPickOtherPanicsSmallN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PickOther(1, 0) did not panic")
		}
	}()
	New(1).PickOther(1, 0)
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestShufflepreservesMultiset(t *testing.T) {
	s := New(21)
	vals := []int{5, 5, 1, 2, 3, 9, 9, 9}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	s.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	got := 0
	for _, v := range vals {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset sum: %d != %d", got, sum)
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the SplitMix64 algorithm with seed stepping;
	// here we only check the finalizer is a bijection-ish scrambler: zero
	// must not map to zero and small inputs must diverge.
	if splitMix64(0) == 0 {
		t.Fatal("splitMix64(0) = 0")
	}
	if splitMix64(1) == splitMix64(2) {
		t.Fatal("splitMix64 collides on 1, 2")
	}
}

func TestNormAndExpFinite(t *testing.T) {
	s := New(8)
	for i := 0; i < 1000; i++ {
		if v := s.NormFloat64(); math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("NormFloat64 produced %g", v)
		}
		if v := s.ExpFloat64(); v < 0 || math.IsNaN(v) {
			t.Fatalf("ExpFloat64 produced %g", v)
		}
	}
}

// TestPermIntoMatchesPerm: the buffer-reusing permutation must draw exactly
// the permutation Perm draws from the same stream state, for any buffer
// capacity, so swapping it into hot loops changes no result.
func TestPermIntoMatchesPerm(t *testing.T) {
	for _, n := range []int{0, 1, 2, 17, 1000} {
		want := New(42).Perm(n)
		for _, buf := range [][]int{nil, make([]int, 0, n/2), make([]int, n+7)} {
			got := New(42).PermInto(buf, n)
			if len(got) != len(want) {
				t.Fatalf("n=%d: PermInto returned %d elements, want %d", n, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d: PermInto diverges from Perm at %d", n, i)
				}
			}
		}
		// A large-enough buffer must be reused, not reallocated.
		buf := make([]int, n)
		got := New(7).PermInto(buf, n)
		if n > 0 && &got[0] != &buf[0] {
			t.Fatalf("n=%d: PermInto reallocated despite sufficient capacity", n)
		}
	}
}
