// Package coding implements random linear network coding over GF(2^8), the
// Avalanche-style defense of Section 4: "use ideas from network coding ...
// to change the requirements so that nodes need to collect only enough
// independent tokens to reconstruct the full information rather than the
// complete set of tokens."
//
// With coding, no individual token can be rare — every coded packet carries
// information about all source symbols — so the rare-token lotus-eater
// attack (satiate the sole holder of a needed token) loses its leverage.
package coding

// gf256 arithmetic uses the conventional Reed-Solomon polynomial x^8 + x^4 +
// x^3 + x^2 + 1 (0x11d) with log/antilog tables.
const gfPoly = 0x11d

type gfTables struct {
	exp [512]byte // doubled to skip a mod in Mul
	log [256]byte
}

// tables is package state, but immutable after construction: it is built by
// a pure function at package initialization and only ever read afterwards.
var tables = buildTables()

func buildTables() *gfTables {
	t := &gfTables{}
	x := 1
	for i := 0; i < 255; i++ {
		t.exp[i] = byte(x)
		t.log[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		t.exp[i] = t.exp[i-255]
	}
	return t
}

// Add returns a + b in GF(2^8) (XOR; identical to subtraction).
func Add(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return tables.exp[int(tables.log[a])+int(tables.log[b])]
}

// Inv returns the multiplicative inverse of a. It panics on a = 0, which
// has no inverse.
func Inv(a byte) byte {
	if a == 0 {
		panic("coding: zero has no inverse in GF(2^8)")
	}
	return tables.exp[255-int(tables.log[a])]
}

// Div returns a / b. It panics on b = 0.
func Div(a, b byte) byte {
	if b == 0 {
		panic("coding: division by zero in GF(2^8)")
	}
	if a == 0 {
		return 0
	}
	return tables.exp[int(tables.log[a])+255-int(tables.log[b])]
}

// mulSlice computes dst[i] ^= c * src[i] for all i — the AXPY kernel of
// Gaussian elimination and recoding.
func mulSlice(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i := range dst {
			dst[i] ^= src[i]
		}
		return
	}
	logC := int(tables.log[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= tables.exp[logC+int(tables.log[s])]
		}
	}
}

// scaleSlice computes v[i] *= c in place.
func scaleSlice(v []byte, c byte) {
	if c == 1 {
		return
	}
	if c == 0 {
		for i := range v {
			v[i] = 0
		}
		return
	}
	logC := int(tables.log[c])
	for i, s := range v {
		if s != 0 {
			v[i] = tables.exp[logC+int(tables.log[s])]
		}
	}
}
