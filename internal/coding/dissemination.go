package coding

import (
	"errors"
	"fmt"

	"lotuseater/internal/attack"
	"lotuseater/internal/bitset"
	"lotuseater/internal/graph"
	"lotuseater/internal/population"
	"lotuseater/internal/sim"
	"lotuseater/internal/simrng"
)

// DisseminationConfig parameterizes the coded-vs-plain gossip comparison of
// experiment E6. The setting mirrors the token model's rare-token attack:
// each node starts with one unit of information, nodes gossip with up to
// Contacts random neighbors per round, satiated nodes stop serving, and the
// attacker instantly satiates its targets each round. The only difference
// between the two modes is what a "unit of information" is:
//
//   - plain (Coded=false): node v starts with source symbol Allocation[v];
//     transfers move whole symbols; satiation = holding all K symbols.
//   - coded (Coded=true): node v starts with one random linear combination
//     of all K symbols; transfers move fresh recodings of the sender's
//     span; satiation = rank K.
type DisseminationConfig struct {
	// Graph is the communication graph.
	Graph *graph.Graph
	// Symbols is K, the number of source symbols.
	Symbols int
	// PayloadSize is the symbol payload in bytes.
	PayloadSize int
	// Contacts is the per-round contact budget.
	Contacts int
	// Rounds is the horizon.
	Rounds int
	// Coded selects RLNC mode.
	Coded bool
	// Allocation maps node -> initial source symbol (plain mode only).
	// Nil means node v starts with symbol v mod Symbols.
	Allocation []int
	// Churn is an optional round-sorted lifecycle schedule. A departed
	// node neither contacts nor responds; a (re)arrival is a fresh node
	// holding only its initial unit. Events naming attacker slots are
	// ignored. Nil means the static fixed universe.
	Churn []population.Event
	// NodeContacts optionally overrides Contacts per node (population
	// classes map "capacity" here). Nil means the scalar everywhere;
	// otherwise length Graph.N().
	NodeContacts []int
	// SymbolWeights optionally biases which symbol a plain-mode sender
	// picks among those the receiver lacks (Zipf/weighted content
	// popularity; length Symbols, non-negative, positive sum). Coded mode
	// recodes over the full span, so weights apply to plain mode only.
	SymbolWeights []float64
}

// Validate reports the first problem with the configuration, or nil.
func (c DisseminationConfig) Validate() error {
	switch {
	case c.Graph == nil:
		return errors.New("coding: nil graph")
	case c.Symbols < 1:
		return fmt.Errorf("coding: Symbols must be positive, got %d", c.Symbols)
	case c.PayloadSize < 1:
		return fmt.Errorf("coding: PayloadSize must be positive, got %d", c.PayloadSize)
	case c.Contacts < 0:
		return fmt.Errorf("coding: Contacts must be non-negative, got %d", c.Contacts)
	case c.Rounds < 1:
		return fmt.Errorf("coding: Rounds must be positive, got %d", c.Rounds)
	case c.Allocation != nil && len(c.Allocation) != c.Graph.N():
		return fmt.Errorf("coding: Allocation has %d entries for %d nodes", len(c.Allocation), c.Graph.N())
	case c.NodeContacts != nil && len(c.NodeContacts) != c.Graph.N():
		return fmt.Errorf("coding: NodeContacts has %d entries for %d nodes", len(c.NodeContacts), c.Graph.N())
	case c.SymbolWeights != nil && c.Coded:
		return errors.New("coding: SymbolWeights applies to plain mode only")
	case c.SymbolWeights != nil && len(c.SymbolWeights) != c.Symbols:
		return fmt.Errorf("coding: SymbolWeights has %d entries for %d symbols", len(c.SymbolWeights), c.Symbols)
	case c.SymbolWeights != nil && population.Normalize(c.SymbolWeights) == nil:
		return errors.New("coding: SymbolWeights must be non-negative with a positive finite sum")
	}
	for i, k := range c.NodeContacts {
		if k < 0 {
			return fmt.Errorf("coding: NodeContacts[%d] must be non-negative, got %d", i, k)
		}
	}
	if err := population.ValidateSchedule(c.Churn, c.Graph.N()); err != nil {
		return fmt.Errorf("coding: %w", err)
	}
	return nil
}

// DisseminationResult summarizes a run.
type DisseminationResult struct {
	// CompletedFraction is the fraction of nodes able to reconstruct all
	// information at the horizon.
	CompletedFraction float64
	// MeanProgress is the average normalized progress (symbols held or
	// rank, divided by K) at the horizon.
	MeanProgress float64
	// AllCompleteRound is the first round after which every node could
	// reconstruct, or -1.
	AllCompleteRound int
	// DecodeVerified is true when, in coded mode, a completed node's
	// decoded symbols were checked against the originals.
	DecodeVerified bool
}

// Dissemination is the E6 simulator.
type Dissemination struct {
	cfg      DisseminationConfig
	rng      *simrng.Source
	targeter attack.Targeter

	// Strategy hooks (WithAdversary / WithDefense): placed attacker nodes
	// hold the full information (encoder access) when the strategy trades or
	// satiates instantly, serve contacting partners per OnExchange, and
	// never collect for themselves; the defense's Admit hook gates every
	// unit accepted, the external attacker included (sender -1).
	adv        sim.Adversary
	def        sim.Defense
	advTrades  bool
	advInstant bool
	isAttacker []bool

	enc     *Encoder
	decs    []*Decoder    // coded mode
	plain   []*bitset.Set // plain mode
	sources [][]byte

	// Lifecycle state: departed stays nil without churn so the static
	// path is byte-identical to a build without the model. symWeights is
	// the normalized SymbolWeights vector, nil when unbiased.
	churn      population.Cursor
	departed   []bool
	symWeights []float64

	round  int
	satBuf []bool // per-round start-of-round satiation snapshot, reused
	res    DisseminationResult
}

// DisseminationOption customizes a Dissemination.
type DisseminationOption func(*Dissemination)

// WithAdversary installs a full adversary strategy; it replaces the plain
// targeter argument of NewDissemination (which then must be nil).
func WithAdversary(a sim.Adversary) DisseminationOption {
	return func(d *Dissemination) { d.adv = a }
}

// WithDefense installs a receiver-side defense rate-limiting how many
// information units (symbols or coded packets) a node accepts per partner
// per round.
func WithDefense(def sim.Defense) DisseminationOption {
	return func(d *Dissemination) { d.def = def }
}

// NewDissemination builds the simulator; deterministic in (cfg, seed).
// The targeter, when non-nil, names the nodes the attacker satiates at the
// start of every round.
func NewDissemination(cfg DisseminationConfig, seed uint64, targeter attack.Targeter, opts ...DisseminationOption) (*Dissemination, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Dissemination{
		cfg:      cfg,
		rng:      simrng.New(seed),
		targeter: targeter,
	}
	for _, opt := range opts {
		opt(d)
	}
	if d.adv != nil && targeter != nil {
		return nil, errors.New("coding: targeter conflicts with WithAdversary")
	}
	d.res.AllCompleteRound = -1
	// Source symbols with recognizable deterministic payloads.
	d.sources = make([][]byte, cfg.Symbols)
	srcRNG := d.rng.Child("sources")
	for i := range d.sources {
		buf := make([]byte, cfg.PayloadSize)
		for j := range buf {
			buf[j] = byte(srcRNG.IntN(256))
		}
		d.sources[i] = buf
	}
	enc, err := NewEncoder(d.sources)
	if err != nil {
		return nil, err
	}
	d.enc = enc

	n := cfg.Graph.N()
	if cfg.Coded {
		d.decs = make([]*Decoder, n)
		initRNG := d.rng.Child("init")
		for v := 0; v < n; v++ {
			dec, err := NewDecoder(cfg.Symbols, cfg.PayloadSize)
			if err != nil {
				return nil, err
			}
			if _, err := dec.Add(enc.Encode(initRNG)); err != nil {
				return nil, err
			}
			d.decs[v] = dec
		}
	} else {
		d.plain = make([]*bitset.Set, n)
		for v := 0; v < n; v++ {
			d.plain[v] = bitset.New(cfg.Symbols)
			tok := v % cfg.Symbols
			if cfg.Allocation != nil {
				tok = cfg.Allocation[v]
			}
			if tok < 0 || tok >= cfg.Symbols {
				return nil, fmt.Errorf("coding: Allocation[%d] = %d out of range", v, tok)
			}
			d.plain[v].Add(tok)
		}
	}
	if d.adv != nil {
		d.advTrades = sim.TradesInProtocol(d.adv)
		d.advInstant = sim.SatiatesInstantly(d.adv)
		d.isAttacker = make([]bool, n)
		for _, a := range d.adv.Place(n, d.rng.Child("adversary")) {
			if a < 0 || a >= n {
				return nil, fmt.Errorf("coding: adversary placed node %d outside [0,%d)", a, n)
			}
			d.isAttacker[a] = true
			if d.advTrades || d.advInstant {
				if err := d.satiateNode(a); err != nil {
					return nil, err
				}
			}
		}
		d.targeter = attack.TargeterFrom(d.adv)
	}
	if len(cfg.Churn) > 0 {
		d.churn = population.NewCursor(cfg.Churn)
		d.departed = make([]bool, n)
	}
	if cfg.SymbolWeights != nil {
		d.symWeights = population.Normalize(cfg.SymbolWeights)
	}
	return d, nil
}

// gone reports whether node v is currently departed. Always false in a
// static run, where departed stays nil.
func (d *Dissemination) gone(v int) bool { return d.departed != nil && d.departed[v] }

// contactsOf returns node v's per-round contact budget: the per-class
// override when one is installed, the scalar config otherwise.
func (d *Dissemination) contactsOf(v int) int {
	if d.cfg.NodeContacts != nil {
		return d.cfg.NodeContacts[v]
	}
	return d.cfg.Contacts
}

// leaveNode removes node v; its information state is frozen in place but
// unreachable, and the adversary is told so a satiated slot that later
// re-arrives is not inherited as a standing target.
func (d *Dissemination) leaveNode(v int) {
	if d.gone(v) {
		return
	}
	d.departed[v] = true
	if d.adv != nil {
		sim.NotifyDeparture(d.adv, d.round, v)
	}
}

// joinNode (re)admits node v as a fresh participant holding only its
// initial unit: the allocated source symbol in plain mode, the matching
// unit vector in coded mode (arrivals mid-run have no build-time random
// combination to draw from).
func (d *Dissemination) joinNode(v int) error {
	if !d.gone(v) {
		return nil
	}
	d.departed[v] = false
	if d.cfg.Coded {
		dec, err := NewDecoder(d.cfg.Symbols, d.cfg.PayloadSize)
		if err != nil {
			return err
		}
		if _, err := dec.Add(d.enc.Unit(v % d.cfg.Symbols)); err != nil {
			return err
		}
		d.decs[v] = dec
		return nil
	}
	d.plain[v].Clear()
	tok := v % d.cfg.Symbols
	if d.cfg.Allocation != nil {
		tok = d.cfg.Allocation[v]
	}
	d.plain[v].Add(tok)
	return nil
}

// satiateNode gives v the full information unconditionally (attacker nodes,
// and targets when no defense throttles the delivery).
func (d *Dissemination) satiateNode(v int) error {
	if d.cfg.Coded {
		for i := 0; i < d.cfg.Symbols; i++ {
			if _, err := d.decs[v].Add(d.enc.Unit(i)); err != nil {
				return err
			}
		}
		return nil
	}
	d.plain[v].Fill()
	return nil
}

// satiateLimited delivers the attacker's payload to v through the defense's
// Admit gate: at most the granted number of genuinely new units (rank
// increments or missing symbols, in deterministic order) land this round.
func (d *Dissemination) satiateLimited(v int) error {
	if d.def == nil {
		return d.satiateNode(v)
	}
	if d.cfg.Coded {
		need := d.cfg.Symbols - d.decs[v].Rank()
		granted := d.def.Admit(d.round, -1, v, need)
		for i := 0; i < d.cfg.Symbols && granted > 0; i++ {
			before := d.decs[v].Rank()
			if _, err := d.decs[v].Add(d.enc.Unit(i)); err != nil {
				return err
			}
			if d.decs[v].Rank() > before {
				granted--
			}
		}
		return nil
	}
	missing := d.plain[v].Missing()
	granted := d.def.Admit(d.round, -1, v, len(missing))
	if granted > len(missing) {
		granted = len(missing)
	}
	for _, t := range missing[:granted] {
		d.plain[v].Add(t)
	}
	return nil
}

func (d *Dissemination) progress(v int) int {
	if d.cfg.Coded {
		return d.decs[v].Rank()
	}
	return d.plain[v].Len()
}

func (d *Dissemination) satiated(v int) bool { return d.progress(v) >= d.cfg.Symbols }

// Progress returns node v's normalized progress in [0, 1].
func (d *Dissemination) Progress(v int) float64 {
	return float64(d.progress(v)) / float64(d.cfg.Symbols)
}

// Run simulates the horizon.
func (d *Dissemination) Run() (DisseminationResult, error) {
	for !d.Finished() {
		if err := d.Step(); err != nil {
			return DisseminationResult{}, err
		}
	}
	return d.finish()
}

// Step simulates one round: attacker satiation, then contact exchanges, and
// finally the all-complete bookkeeping.
func (d *Dissemination) Step() error {
	if d.round >= d.cfg.Rounds {
		return fmt.Errorf("coding: horizon of %d rounds exhausted", d.cfg.Rounds)
	}
	if err := d.step(); err != nil {
		return err
	}
	if d.res.AllCompleteRound == -1 {
		n := d.cfg.Graph.N()
		all := true
		for v := 0; v < n; v++ {
			if !d.satiated(v) {
				all = false
				break
			}
		}
		if all {
			d.res.AllCompleteRound = d.round
		}
	}
	d.round++
	return nil
}

// Round returns the next round to simulate.
func (d *Dissemination) Round() int { return d.round }

// Finished reports whether the horizon has been reached.
func (d *Dissemination) Finished() bool { return d.round >= d.cfg.Rounds }

// Snapshot returns the DisseminationResult summarizing the run so far.
func (d *Dissemination) Snapshot() (any, error) {
	res, err := d.finish()
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (d *Dissemination) step() error {
	n := d.cfg.Graph.N()
	// 0. Lifecycle: departures and arrivals due this round take effect
	// before satiation, so the attacker never serves a node that just left.
	for ev, ok := d.churn.Next(d.round); ok; ev, ok = d.churn.Next(d.round) {
		if d.isAttacker != nil && d.isAttacker[ev.Node] {
			continue // adversary infrastructure does not churn
		}
		if ev.Join {
			if err := d.joinNode(ev.Node); err != nil {
				return err
			}
		} else {
			d.leaveNode(ev.Node)
		}
	}
	// 1. Attacker satiation: targets get the full information for free. A
	// legacy targeter always delivers instantly; an adversary strategy does
	// so only when it satiates out of protocol (ideal) — trade attackers
	// must work through contacts below. The defense throttles the delivery.
	if d.targeter != nil && (d.adv == nil || d.advInstant) {
		targets := d.targeter.Satiated(d.round)
		if targets.Cap() != n {
			return fmt.Errorf("coding: targeter returned a set over %d nodes, want %d", targets.Cap(), n)
		}
		// Sparse iteration: O(|satiated set|) per round, not O(n).
		for _, v := range targets.Members() {
			if d.gone(v) || d.satiated(v) || (d.isAttacker != nil && d.isAttacker[v]) {
				continue
			}
			if err := d.satiateLimited(v); err != nil {
				return err
			}
		}
	}

	// 2. Gossip: unsatiated nodes contact up to c random neighbors;
	// satiated partners do not respond (a = 0 — the worst case the coding
	// defense must survive). Transfers read start-of-round state.
	rng := d.rng.ChildN("round", d.round)
	if d.satBuf == nil {
		d.satBuf = make([]bool, n)
	}
	sat := d.satBuf
	for v := 0; v < n; v++ {
		sat[v] = d.satiated(v)
	}
	type transfer struct {
		from int
		to   int
		pkt  Packet // coded mode
		sym  int    // plain mode
	}
	var transfers []transfer
	// queue adds one unit flowing src -> dst: a fresh recoding of the
	// sender's span (coded) or a random symbol the receiver lacks (plain).
	queue := func(src, dst int) {
		if d.cfg.Coded {
			if pkt, ok := d.decs[src].Recode(rng); ok {
				transfers = append(transfers, transfer{from: src, to: dst, pkt: pkt})
			}
			return
		}
		var cands []int
		d.plain[src].ForEach(func(s int) {
			if !d.plain[dst].Has(s) {
				cands = append(cands, s)
			}
		})
		if len(cands) > 0 {
			transfers = append(transfers, transfer{from: src, to: dst, sym: d.pickSymbol(cands, rng)})
		}
	}
	for v := 0; v < n; v++ {
		if d.gone(v) {
			continue
		}
		if d.isAttacker != nil && d.isAttacker[v] {
			// Attacker nodes never collect. Trade attackers initiate
			// contacts to serve their satiation targets; crash and ideal
			// attackers stay silent.
			if d.advTrades {
				d.attackerContacts(v, sat, rng, queue)
			}
			continue
		}
		if sat[v] {
			continue
		}
		nb := d.cfg.Graph.AdjList(v)
		if len(nb) == 0 {
			continue
		}
		c := min(d.contactsOf(v), len(nb))
		for _, idx := range rng.SampleInts(len(nb), c) {
			p := nb[idx]
			if d.gone(p) {
				continue
			}
			if d.isAttacker != nil && d.isAttacker[p] {
				// The contacted attacker serves per OnExchange, one-way.
				if d.adv.OnExchange(d.round, p, v) {
					queue(p, v)
				}
				continue
			}
			if sat[p] {
				continue
			}
			// Bidirectional single-unit exchange.
			queue(p, v)
			queue(v, p)
		}
	}
	for _, t := range transfers {
		if d.def != nil && d.def.Admit(d.round, t.from, t.to, 1) == 0 {
			continue
		}
		if d.cfg.Coded {
			if _, err := d.decs[t.to].Add(t.pkt); err != nil {
				return err
			}
		} else {
			d.plain[t.to].Add(t.sym)
		}
	}
	return nil
}

// attackerContacts is a trade attacker's round: contact up to c random
// neighbors and queue one unit for each satiation target among them.
func (d *Dissemination) attackerContacts(v int, sat []bool, rng *simrng.Source, queue func(src, dst int)) {
	nb := d.cfg.Graph.AdjList(v)
	if len(nb) == 0 {
		return
	}
	c := min(d.contactsOf(v), len(nb))
	for _, idx := range rng.SampleInts(len(nb), c) {
		p := nb[idx]
		if d.gone(p) || d.isAttacker[p] || sat[p] || !d.adv.OnExchange(d.round, v, p) {
			continue
		}
		queue(v, p)
	}
}

// pickSymbol chooses which candidate symbol a plain-mode sender moves:
// uniform (the historical single IntN draw) without popularity weights,
// otherwise one Float64 draw walked over the candidates' weight mass —
// popular symbols spread first, starving the tail the way a demand-driven
// system would.
func (d *Dissemination) pickSymbol(cands []int, rng *simrng.Source) int {
	if d.symWeights == nil {
		return cands[rng.IntN(len(cands))]
	}
	total := 0.0
	for _, s := range cands {
		total += d.symWeights[s]
	}
	if total <= 0 {
		// Every candidate has zero popularity; fall back to uniform.
		return cands[rng.IntN(len(cands))]
	}
	x := rng.Float64() * total
	acc := 0.0
	for _, s := range cands {
		acc += d.symWeights[s]
		if x < acc {
			return s
		}
	}
	return cands[len(cands)-1]
}

func (d *Dissemination) finish() (DisseminationResult, error) {
	n := d.cfg.Graph.N()
	res := d.res
	done := 0
	sum := 0.0
	firstDone := -1
	for v := 0; v < n; v++ {
		if d.satiated(v) {
			done++
			if firstDone == -1 {
				firstDone = v
			}
		}
		sum += d.Progress(v)
	}
	res.CompletedFraction = float64(done) / float64(n)
	res.MeanProgress = sum / float64(n)

	// In coded mode, verify an actual reconstruction against the sources.
	if d.cfg.Coded && firstDone >= 0 {
		decoded, err := d.decs[firstDone].Decode()
		if err != nil {
			return DisseminationResult{}, fmt.Errorf("coding: node %d claims completion but cannot decode: %w", firstDone, err)
		}
		for i := range decoded {
			for j := range decoded[i] {
				if decoded[i][j] != d.sources[i][j] {
					return DisseminationResult{}, fmt.Errorf("coding: node %d decoded symbol %d incorrectly", firstDone, i)
				}
			}
		}
		res.DecodeVerified = true
	}
	return res, nil
}
