package coding

import (
	"errors"
	"fmt"

	"lotuseater/internal/attack"
	"lotuseater/internal/bitset"
	"lotuseater/internal/graph"
	"lotuseater/internal/simrng"
)

// DisseminationConfig parameterizes the coded-vs-plain gossip comparison of
// experiment E6. The setting mirrors the token model's rare-token attack:
// each node starts with one unit of information, nodes gossip with up to
// Contacts random neighbors per round, satiated nodes stop serving, and the
// attacker instantly satiates its targets each round. The only difference
// between the two modes is what a "unit of information" is:
//
//   - plain (Coded=false): node v starts with source symbol Allocation[v];
//     transfers move whole symbols; satiation = holding all K symbols.
//   - coded (Coded=true): node v starts with one random linear combination
//     of all K symbols; transfers move fresh recodings of the sender's
//     span; satiation = rank K.
type DisseminationConfig struct {
	// Graph is the communication graph.
	Graph *graph.Graph
	// Symbols is K, the number of source symbols.
	Symbols int
	// PayloadSize is the symbol payload in bytes.
	PayloadSize int
	// Contacts is the per-round contact budget.
	Contacts int
	// Rounds is the horizon.
	Rounds int
	// Coded selects RLNC mode.
	Coded bool
	// Allocation maps node -> initial source symbol (plain mode only).
	// Nil means node v starts with symbol v mod Symbols.
	Allocation []int
}

// Validate reports the first problem with the configuration, or nil.
func (c DisseminationConfig) Validate() error {
	switch {
	case c.Graph == nil:
		return errors.New("coding: nil graph")
	case c.Symbols < 1:
		return fmt.Errorf("coding: Symbols must be positive, got %d", c.Symbols)
	case c.PayloadSize < 1:
		return fmt.Errorf("coding: PayloadSize must be positive, got %d", c.PayloadSize)
	case c.Contacts < 0:
		return fmt.Errorf("coding: Contacts must be non-negative, got %d", c.Contacts)
	case c.Rounds < 1:
		return fmt.Errorf("coding: Rounds must be positive, got %d", c.Rounds)
	case c.Allocation != nil && len(c.Allocation) != c.Graph.N():
		return fmt.Errorf("coding: Allocation has %d entries for %d nodes", len(c.Allocation), c.Graph.N())
	}
	return nil
}

// DisseminationResult summarizes a run.
type DisseminationResult struct {
	// CompletedFraction is the fraction of nodes able to reconstruct all
	// information at the horizon.
	CompletedFraction float64
	// MeanProgress is the average normalized progress (symbols held or
	// rank, divided by K) at the horizon.
	MeanProgress float64
	// AllCompleteRound is the first round after which every node could
	// reconstruct, or -1.
	AllCompleteRound int
	// DecodeVerified is true when, in coded mode, a completed node's
	// decoded symbols were checked against the originals.
	DecodeVerified bool
}

// Dissemination is the E6 simulator.
type Dissemination struct {
	cfg      DisseminationConfig
	rng      *simrng.Source
	targeter attack.Targeter

	enc     *Encoder
	decs    []*Decoder    // coded mode
	plain   []*bitset.Set // plain mode
	sources [][]byte

	round int
	res   DisseminationResult
}

// NewDissemination builds the simulator; deterministic in (cfg, seed).
// The targeter, when non-nil, names the nodes the attacker satiates at the
// start of every round.
func NewDissemination(cfg DisseminationConfig, seed uint64, targeter attack.Targeter) (*Dissemination, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Dissemination{
		cfg:      cfg,
		rng:      simrng.New(seed),
		targeter: targeter,
	}
	d.res.AllCompleteRound = -1
	// Source symbols with recognizable deterministic payloads.
	d.sources = make([][]byte, cfg.Symbols)
	srcRNG := d.rng.Child("sources")
	for i := range d.sources {
		buf := make([]byte, cfg.PayloadSize)
		for j := range buf {
			buf[j] = byte(srcRNG.IntN(256))
		}
		d.sources[i] = buf
	}
	enc, err := NewEncoder(d.sources)
	if err != nil {
		return nil, err
	}
	d.enc = enc

	n := cfg.Graph.N()
	if cfg.Coded {
		d.decs = make([]*Decoder, n)
		initRNG := d.rng.Child("init")
		for v := 0; v < n; v++ {
			dec, err := NewDecoder(cfg.Symbols, cfg.PayloadSize)
			if err != nil {
				return nil, err
			}
			if _, err := dec.Add(enc.Encode(initRNG)); err != nil {
				return nil, err
			}
			d.decs[v] = dec
		}
	} else {
		d.plain = make([]*bitset.Set, n)
		for v := 0; v < n; v++ {
			d.plain[v] = bitset.New(cfg.Symbols)
			tok := v % cfg.Symbols
			if cfg.Allocation != nil {
				tok = cfg.Allocation[v]
			}
			if tok < 0 || tok >= cfg.Symbols {
				return nil, fmt.Errorf("coding: Allocation[%d] = %d out of range", v, tok)
			}
			d.plain[v].Add(tok)
		}
	}
	return d, nil
}

func (d *Dissemination) progress(v int) int {
	if d.cfg.Coded {
		return d.decs[v].Rank()
	}
	return d.plain[v].Len()
}

func (d *Dissemination) satiated(v int) bool { return d.progress(v) >= d.cfg.Symbols }

// Progress returns node v's normalized progress in [0, 1].
func (d *Dissemination) Progress(v int) float64 {
	return float64(d.progress(v)) / float64(d.cfg.Symbols)
}

// Run simulates the horizon.
func (d *Dissemination) Run() (DisseminationResult, error) {
	for !d.Finished() {
		if err := d.Step(); err != nil {
			return DisseminationResult{}, err
		}
	}
	return d.finish()
}

// Step simulates one round: attacker satiation, then contact exchanges, and
// finally the all-complete bookkeeping.
func (d *Dissemination) Step() error {
	if d.round >= d.cfg.Rounds {
		return fmt.Errorf("coding: horizon of %d rounds exhausted", d.cfg.Rounds)
	}
	if err := d.step(); err != nil {
		return err
	}
	if d.res.AllCompleteRound == -1 {
		n := d.cfg.Graph.N()
		all := true
		for v := 0; v < n; v++ {
			if !d.satiated(v) {
				all = false
				break
			}
		}
		if all {
			d.res.AllCompleteRound = d.round
		}
	}
	d.round++
	return nil
}

// Round returns the next round to simulate.
func (d *Dissemination) Round() int { return d.round }

// Finished reports whether the horizon has been reached.
func (d *Dissemination) Finished() bool { return d.round >= d.cfg.Rounds }

// Snapshot returns the DisseminationResult summarizing the run so far.
func (d *Dissemination) Snapshot() (any, error) {
	res, err := d.finish()
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (d *Dissemination) step() error {
	n := d.cfg.Graph.N()
	// 1. Attacker satiation: targets get the full information for free.
	if d.targeter != nil {
		targets := d.targeter.Satiated(d.round)
		if len(targets) != n {
			return fmt.Errorf("coding: targeter returned %d entries for %d nodes", len(targets), n)
		}
		for v := 0; v < n; v++ {
			if !targets[v] || d.satiated(v) {
				continue
			}
			if d.cfg.Coded {
				for i := 0; i < d.cfg.Symbols; i++ {
					if _, err := d.decs[v].Add(d.enc.Unit(i)); err != nil {
						return err
					}
				}
			} else {
				d.plain[v].Fill()
			}
		}
	}

	// 2. Gossip: unsatiated nodes contact up to c random neighbors;
	// satiated partners do not respond (a = 0 — the worst case the coding
	// defense must survive). Transfers read start-of-round state.
	rng := d.rng.ChildN("round", d.round)
	sat := make([]bool, n)
	for v := 0; v < n; v++ {
		sat[v] = d.satiated(v)
	}
	type transfer struct {
		to  int
		pkt Packet // coded mode
		sym int    // plain mode
	}
	var transfers []transfer
	for v := 0; v < n; v++ {
		if sat[v] {
			continue
		}
		nb := d.cfg.Graph.Neighbors(v)
		if len(nb) == 0 {
			continue
		}
		c := min(d.cfg.Contacts, len(nb))
		for _, idx := range rng.SampleInts(len(nb), c) {
			p := nb[idx]
			if sat[p] {
				continue
			}
			// Bidirectional single-unit exchange.
			for _, dir := range [2][2]int{{p, v}, {v, p}} {
				src, dst := dir[0], dir[1]
				if d.cfg.Coded {
					if pkt, ok := d.decs[src].Recode(rng); ok {
						transfers = append(transfers, transfer{to: dst, pkt: pkt})
					}
				} else {
					// Send one symbol the receiver lacks, chosen at random.
					var cands []int
					d.plain[src].ForEach(func(s int) {
						if !d.plain[dst].Has(s) {
							cands = append(cands, s)
						}
					})
					if len(cands) > 0 {
						transfers = append(transfers, transfer{to: dst, sym: cands[rng.IntN(len(cands))]})
					}
				}
			}
		}
	}
	for _, t := range transfers {
		if d.cfg.Coded {
			if _, err := d.decs[t.to].Add(t.pkt); err != nil {
				return err
			}
		} else {
			d.plain[t.to].Add(t.sym)
		}
	}
	return nil
}

func (d *Dissemination) finish() (DisseminationResult, error) {
	n := d.cfg.Graph.N()
	res := d.res
	done := 0
	sum := 0.0
	firstDone := -1
	for v := 0; v < n; v++ {
		if d.satiated(v) {
			done++
			if firstDone == -1 {
				firstDone = v
			}
		}
		sum += d.Progress(v)
	}
	res.CompletedFraction = float64(done) / float64(n)
	res.MeanProgress = sum / float64(n)

	// In coded mode, verify an actual reconstruction against the sources.
	if d.cfg.Coded && firstDone >= 0 {
		decoded, err := d.decs[firstDone].Decode()
		if err != nil {
			return DisseminationResult{}, fmt.Errorf("coding: node %d claims completion but cannot decode: %w", firstDone, err)
		}
		for i := range decoded {
			for j := range decoded[i] {
				if decoded[i][j] != d.sources[i][j] {
					return DisseminationResult{}, fmt.Errorf("coding: node %d decoded symbol %d incorrectly", firstDone, i)
				}
			}
		}
		res.DecodeVerified = true
	}
	return res, nil
}
