package coding

import (
	"errors"
	"fmt"

	"lotuseater/internal/simrng"
)

// Packet is one coded packet: a coefficient vector over the source symbols
// and the corresponding linear combination of their payloads.
type Packet struct {
	// Coeffs has one entry per source symbol.
	Coeffs []byte
	// Payload is sum_i Coeffs[i] * symbol_i.
	Payload []byte
}

// clonePacket deep-copies p.
func clonePacket(p Packet) Packet {
	return Packet{
		Coeffs:  append([]byte(nil), p.Coeffs...),
		Payload: append([]byte(nil), p.Payload...),
	}
}

// Encoder produces random linear combinations of a fixed set of source
// symbols (the broadcaster side of Avalanche).
type Encoder struct {
	symbols [][]byte
	size    int
}

// NewEncoder wraps the given source symbols. All symbols must share one
// size, and there must be at least one.
func NewEncoder(symbols [][]byte) (*Encoder, error) {
	if len(symbols) == 0 {
		return nil, errors.New("coding: no source symbols")
	}
	size := len(symbols[0])
	if size == 0 {
		return nil, errors.New("coding: empty source symbols")
	}
	copies := make([][]byte, len(symbols))
	for i, s := range symbols {
		if len(s) != size {
			return nil, fmt.Errorf("coding: symbol %d has size %d, want %d", i, len(s), size)
		}
		copies[i] = append([]byte(nil), s...)
	}
	return &Encoder{symbols: copies, size: size}, nil
}

// SymbolCount returns the number of source symbols.
func (e *Encoder) SymbolCount() int { return len(e.symbols) }

// Unit returns the trivial packet carrying source symbol i alone. It
// panics for out-of-range i.
func (e *Encoder) Unit(i int) Packet {
	coeffs := make([]byte, len(e.symbols))
	coeffs[i] = 1
	return Packet{Coeffs: coeffs, Payload: append([]byte(nil), e.symbols[i]...)}
}

// Encode draws a packet with uniformly random coefficients. The zero vector
// (probability 256^-k) is re-drawn, so the result always carries
// information.
func (e *Encoder) Encode(rng *simrng.Source) Packet {
	coeffs := make([]byte, len(e.symbols))
	for {
		nonzero := false
		for i := range coeffs {
			coeffs[i] = byte(rng.IntN(256))
			if coeffs[i] != 0 {
				nonzero = true
			}
		}
		if nonzero {
			break
		}
	}
	payload := make([]byte, e.size)
	for i, c := range coeffs {
		mulSlice(payload, e.symbols[i], c)
	}
	return Packet{Coeffs: coeffs, Payload: payload}
}

// Decoder accumulates coded packets via incremental Gaussian elimination
// and reconstructs the source symbols at full rank (the receiver side).
// A Decoder also serves as a recoder: Recode emits a random combination of
// everything received so far, which is what an intermediate node forwards.
type Decoder struct {
	k    int
	size int
	// rows[p] is the reduced row whose pivot column is p, or nil.
	rows []Packet
	rank int
}

// NewDecoder returns a decoder for k source symbols of the given payload
// size.
func NewDecoder(k, size int) (*Decoder, error) {
	if k < 1 {
		return nil, fmt.Errorf("coding: symbol count must be positive, got %d", k)
	}
	if size < 1 {
		return nil, fmt.Errorf("coding: payload size must be positive, got %d", size)
	}
	return &Decoder{k: k, size: size, rows: make([]Packet, k)}, nil
}

// Rank returns the dimension of the received span.
func (d *Decoder) Rank() int { return d.rank }

// Complete reports full rank: the sources are reconstructible.
func (d *Decoder) Complete() bool { return d.rank == d.k }

// Add absorbs a packet. It returns true if the packet was innovative
// (increased the rank). Malformed packets are rejected with an error.
func (d *Decoder) Add(p Packet) (bool, error) {
	if len(p.Coeffs) != d.k {
		return false, fmt.Errorf("coding: packet has %d coefficients, want %d", len(p.Coeffs), d.k)
	}
	if len(p.Payload) != d.size {
		return false, fmt.Errorf("coding: packet payload is %d bytes, want %d", len(p.Payload), d.size)
	}
	w := clonePacket(p)
	for col := 0; col < d.k; col++ {
		c := w.Coeffs[col]
		if c == 0 {
			continue
		}
		if d.rows[col].Coeffs == nil {
			// New pivot: normalize and store.
			inv := Inv(c)
			scaleSlice(w.Coeffs, inv)
			scaleSlice(w.Payload, inv)
			d.rows[col] = w
			d.rank++
			d.reduceAbove(col)
			return true, nil
		}
		// Eliminate this column using the existing pivot row.
		mulSlice(w.Coeffs, d.rows[col].Coeffs, c)
		mulSlice(w.Payload, d.rows[col].Payload, c)
	}
	return false, nil // w reduced to zero: not innovative
}

// reduceAbove back-substitutes the new pivot row into previously stored
// rows so the matrix stays fully reduced.
func (d *Decoder) reduceAbove(col int) {
	pivot := d.rows[col]
	for other := 0; other < d.k; other++ {
		if other == col || d.rows[other].Coeffs == nil {
			continue
		}
		c := d.rows[other].Coeffs[col]
		if c == 0 {
			continue
		}
		mulSlice(d.rows[other].Coeffs, pivot.Coeffs, c)
		mulSlice(d.rows[other].Payload, pivot.Payload, c)
	}
}

// Decode returns the reconstructed source symbols. It fails unless the
// decoder has full rank.
func (d *Decoder) Decode() ([][]byte, error) {
	if !d.Complete() {
		return nil, fmt.Errorf("coding: rank %d of %d, cannot decode", d.rank, d.k)
	}
	out := make([][]byte, d.k)
	for i := 0; i < d.k; i++ {
		out[i] = append([]byte(nil), d.rows[i].Payload...)
	}
	return out, nil
}

// Recode emits a fresh random combination of the decoder's span — true
// network coding at intermediate nodes. It returns false if nothing has
// been received yet.
func (d *Decoder) Recode(rng *simrng.Source) (Packet, bool) {
	if d.rank == 0 {
		return Packet{}, false
	}
	coeffs := make([]byte, d.k)
	payload := make([]byte, d.size)
	mixed := false
	for col := 0; col < d.k; col++ {
		if d.rows[col].Coeffs == nil {
			continue
		}
		c := byte(rng.IntN(256))
		if c == 0 {
			continue
		}
		mixed = true
		mulSlice(coeffs, d.rows[col].Coeffs, c)
		mulSlice(payload, d.rows[col].Payload, c)
	}
	if !mixed {
		// All random scalars were zero; fall back to the first stored row.
		for col := 0; col < d.k; col++ {
			if d.rows[col].Coeffs != nil {
				return clonePacket(d.rows[col]), true
			}
		}
	}
	return Packet{Coeffs: coeffs, Payload: payload}, true
}
