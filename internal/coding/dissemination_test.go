package coding

import (
	"testing"

	"lotuseater/internal/attack"
	"lotuseater/internal/graph"
)

func dissemConfig(coded bool) DisseminationConfig {
	return DisseminationConfig{
		Graph:       graph.Complete(30),
		Symbols:     8,
		PayloadSize: 16,
		Contacts:    2,
		Rounds:      40,
		Coded:       coded,
	}
}

func TestDisseminationValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*DisseminationConfig)
	}{
		{"nil graph", func(c *DisseminationConfig) { c.Graph = nil }},
		{"zero symbols", func(c *DisseminationConfig) { c.Symbols = 0 }},
		{"zero payload", func(c *DisseminationConfig) { c.PayloadSize = 0 }},
		{"negative contacts", func(c *DisseminationConfig) { c.Contacts = -1 }},
		{"zero rounds", func(c *DisseminationConfig) { c.Rounds = 0 }},
		{"allocation length", func(c *DisseminationConfig) { c.Allocation = []int{1} }},
	}
	for _, c := range cases {
		cfg := dissemConfig(false)
		c.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
	}
}

func TestPlainDisseminationCompletes(t *testing.T) {
	sim, err := NewDissemination(dissemConfig(false), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedFraction < 0.9 {
		t.Fatalf("plain completed %.3f", res.CompletedFraction)
	}
}

func TestCodedDisseminationCompletesAndDecodes(t *testing.T) {
	sim, err := NewDissemination(dissemConfig(true), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedFraction < 0.9 {
		t.Fatalf("coded completed %.3f", res.CompletedFraction)
	}
	if !res.DecodeVerified {
		t.Fatal("completed coded run did not verify a reconstruction")
	}
}

// TestRareSymbolDenialPlainVsCoded is experiment E6 in miniature: satiate
// the sole holder of symbol 0. Plain gossip loses the symbol for everyone;
// coded gossip is indifferent because every node's initial packet already
// mixes all symbols.
func TestRareSymbolDenialPlainVsCoded(t *testing.T) {
	const n = 30
	alloc := make([]int, n)
	alloc[0] = 0 // unique holder of symbol 0
	for v := 1; v < n; v++ {
		alloc[v] = 1 + (v-1)%7
	}

	run := func(coded bool) DisseminationResult {
		cfg := dissemConfig(coded)
		cfg.Allocation = alloc
		sim, err := NewDissemination(cfg, 3, attack.NewListTargeter(n, []int{0}))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	plain := run(false)
	coded := run(true)
	if plain.CompletedFraction > 0.1 {
		t.Fatalf("plain mode completed %.3f despite rare-symbol denial", plain.CompletedFraction)
	}
	if coded.CompletedFraction < 0.9 {
		t.Fatalf("coded mode completed only %.3f under the same attack", coded.CompletedFraction)
	}
	if !coded.DecodeVerified {
		t.Fatal("coded completion not verified against sources")
	}
}

func TestDisseminationDeterministic(t *testing.T) {
	run := func() DisseminationResult {
		sim, err := NewDissemination(dissemConfig(true), 42, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if run() != run() {
		t.Fatal("same seed differs")
	}
}

func TestProgressBounds(t *testing.T) {
	sim, err := NewDissemination(dissemConfig(true), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 30; v++ {
		p := sim.Progress(v)
		if p < 0 || p > 1 {
			t.Fatalf("progress %g", p)
		}
	}
}

func TestBadTargeterLength(t *testing.T) {
	sim, err := NewDissemination(dissemConfig(false), 5, attack.NewListTargeter(3, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err == nil {
		t.Fatal("mismatched targeter accepted")
	}
}
