package coding

import (
	"testing"

	"lotuseater/internal/simrng"
)

func BenchmarkGFMul(b *testing.B) {
	var acc byte
	for i := 0; i < b.N; i++ {
		acc ^= Mul(byte(i), byte(i>>8)|1)
	}
	_ = acc
}

func BenchmarkMulSlice1K(b *testing.B) {
	dst := make([]byte, 1024)
	src := make([]byte, 1024)
	for i := range src {
		src[i] = byte(i*7 + 1)
	}
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mulSlice(dst, src, byte(i)|1)
	}
}

// BenchmarkDecoderAdd measures absorbing one innovative packet at the E6
// experiment's dimensions (24 symbols, 32-byte payloads).
func BenchmarkDecoderAdd(b *testing.B) {
	const k, size = 24, 32
	enc, err := NewEncoder(make2D(k, size))
	if err != nil {
		b.Fatal(err)
	}
	rng := simrng.New(1)
	packets := make([]Packet, 256)
	for i := range packets {
		packets[i] = enc.Encode(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := NewDecoder(k, size)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; !dec.Complete(); j++ {
			if _, err := dec.Add(packets[(i+j)%len(packets)]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkRecode(b *testing.B) {
	const k, size = 24, 32
	enc, err := NewEncoder(make2D(k, size))
	if err != nil {
		b.Fatal(err)
	}
	rng := simrng.New(2)
	dec, err := NewDecoder(k, size)
	if err != nil {
		b.Fatal(err)
	}
	for !dec.Complete() {
		if _, err := dec.Add(enc.Encode(rng)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := dec.Recode(rng); !ok {
			b.Fatal("recode failed")
		}
	}
}

func make2D(k, size int) [][]byte {
	out := make([][]byte, k)
	for i := range out {
		buf := make([]byte, size)
		for j := range buf {
			buf[j] = byte(i*31 + j)
		}
		out[i] = buf
	}
	return out
}
