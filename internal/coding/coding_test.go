package coding

import (
	"bytes"
	"testing"
	"testing/quick"

	"lotuseater/internal/simrng"
)

// --- GF(2^8) field axioms ---

func TestGFAddIsXor(t *testing.T) {
	if Add(0x57, 0x83) != 0xd4 {
		t.Fatal("Add is not XOR")
	}
}

func TestGFMulKnownValues(t *testing.T) {
	// 2 * 2 = 4; generator powers under 0x11d.
	cases := []struct{ a, b, want byte }{
		{0, 5, 0}, {5, 0, 0}, {1, 77, 77}, {2, 2, 4}, {2, 128, 29},
	}
	for _, c := range cases {
		if got := Mul(c.a, c.b); got != c.want {
			t.Fatalf("Mul(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestGFFieldAxiomsExhaustiveInverse(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := Inv(byte(a))
		if Mul(byte(a), inv) != 1 {
			t.Fatalf("a * a^-1 != 1 for a = %d", a)
		}
	}
}

func TestGFInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestGFDivZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div(x, 0) did not panic")
		}
	}()
	Div(5, 0)
}

func TestGFMulCommutativeAssociativeQuick(t *testing.T) {
	err := quick.Check(func(a, b, c byte) bool {
		if Mul(a, b) != Mul(b, a) {
			return false
		}
		if Mul(Mul(a, b), c) != Mul(a, Mul(b, c)) {
			return false
		}
		// Distributivity over addition.
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGFDivInvertsMul(t *testing.T) {
	err := quick.Check(func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Div(Mul(a, b), b) == a
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMulSliceMatchesScalar(t *testing.T) {
	dst := []byte{1, 2, 3, 0}
	src := []byte{9, 0, 7, 5}
	want := make([]byte, 4)
	for i := range want {
		want[i] = Add(dst[i], Mul(0x37, src[i]))
	}
	mulSlice(dst, src, 0x37)
	if !bytes.Equal(dst, want) {
		t.Fatalf("mulSlice = %v, want %v", dst, want)
	}
}

func TestScaleSlice(t *testing.T) {
	v := []byte{1, 2, 0, 255}
	want := make([]byte, 4)
	for i := range want {
		want[i] = Mul(v[i], 0x1d)
	}
	scaleSlice(v, 0x1d)
	if !bytes.Equal(v, want) {
		t.Fatalf("scaleSlice mismatch")
	}
	zero := []byte{3, 4}
	scaleSlice(zero, 0)
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatal("scale by zero")
	}
}

// --- Encoder/Decoder ---

func sources(k, size int, seed uint64) [][]byte {
	rng := simrng.New(seed)
	out := make([][]byte, k)
	for i := range out {
		buf := make([]byte, size)
		for j := range buf {
			buf[j] = byte(rng.IntN(256))
		}
		out[i] = buf
	}
	return out
}

func TestEncoderValidation(t *testing.T) {
	if _, err := NewEncoder(nil); err == nil {
		t.Fatal("empty symbols accepted")
	}
	if _, err := NewEncoder([][]byte{{}}); err == nil {
		t.Fatal("zero-size symbols accepted")
	}
	if _, err := NewEncoder([][]byte{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged symbols accepted")
	}
}

func TestDecoderValidation(t *testing.T) {
	if _, err := NewDecoder(0, 4); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewDecoder(4, 0); err == nil {
		t.Fatal("size=0 accepted")
	}
	d, err := NewDecoder(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Add(Packet{Coeffs: []byte{1, 2}, Payload: make([]byte, 8)}); err == nil {
		t.Fatal("wrong coeff count accepted")
	}
	if _, err := d.Add(Packet{Coeffs: make([]byte, 4), Payload: make([]byte, 3)}); err == nil {
		t.Fatal("wrong payload size accepted")
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	const k, size = 8, 32
	src := sources(k, size, 1)
	enc, err := NewEncoder(src)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(k, size)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrng.New(2)
	packets := 0
	for !dec.Complete() {
		if _, err := dec.Add(enc.Encode(rng)); err != nil {
			t.Fatal(err)
		}
		packets++
		if packets > 3*k {
			t.Fatalf("needed more than %d random packets for rank %d", packets, k)
		}
	}
	decoded, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if !bytes.Equal(decoded[i], src[i]) {
			t.Fatalf("symbol %d decoded incorrectly", i)
		}
	}
}

func TestUnitPackets(t *testing.T) {
	const k, size = 5, 16
	src := sources(k, size, 3)
	enc, err := NewEncoder(src)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(k, size)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		innovative, err := dec.Add(enc.Unit(i))
		if err != nil {
			t.Fatal(err)
		}
		if !innovative {
			t.Fatalf("unit %d not innovative", i)
		}
		if dec.Rank() != i+1 {
			t.Fatalf("rank %d after %d units", dec.Rank(), i+1)
		}
	}
	decoded, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if !bytes.Equal(decoded[i], src[i]) {
			t.Fatalf("unit roundtrip broke symbol %d", i)
		}
	}
}

func TestDuplicatePacketNotInnovative(t *testing.T) {
	const k, size = 4, 8
	enc, err := NewEncoder(sources(k, size, 4))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(k, size)
	if err != nil {
		t.Fatal(err)
	}
	p := enc.Encode(simrng.New(5))
	if inn, _ := dec.Add(p); !inn {
		t.Fatal("first packet not innovative")
	}
	if inn, _ := dec.Add(p); inn {
		t.Fatal("duplicate packet innovative")
	}
	if dec.Rank() != 1 {
		t.Fatalf("rank %d", dec.Rank())
	}
}

func TestScaledPacketNotInnovative(t *testing.T) {
	const k, size = 4, 8
	enc, err := NewEncoder(sources(k, size, 6))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(k, size)
	if err != nil {
		t.Fatal(err)
	}
	p := enc.Encode(simrng.New(7))
	if _, err := dec.Add(p); err != nil {
		t.Fatal(err)
	}
	scaled := clonePacket(p)
	scaleSlice(scaled.Coeffs, 3)
	scaleSlice(scaled.Payload, 3)
	if inn, _ := dec.Add(scaled); inn {
		t.Fatal("scalar multiple counted as innovative")
	}
}

func TestDecodeIncompleteFails(t *testing.T) {
	dec, err := NewDecoder(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(); err == nil {
		t.Fatal("decode succeeded at rank 0")
	}
}

func TestRecode(t *testing.T) {
	const k, size = 6, 16
	src := sources(k, size, 8)
	enc, err := NewEncoder(src)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrng.New(9)

	// Relay holds 3 packets; a downstream decoder fed only recodings of the
	// relay's span can reach at most rank 3, and recodings must stay
	// consistent with the sources.
	relay, err := NewDecoder(k, size)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := relay.Add(enc.Encode(rng)); err != nil {
			t.Fatal(err)
		}
	}
	down, err := NewDecoder(k, size)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		p, ok := relay.Recode(rng)
		if !ok {
			t.Fatal("recode failed with nonzero rank")
		}
		if _, err := down.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if down.Rank() > 3 {
		t.Fatalf("downstream rank %d exceeds relay span 3", down.Rank())
	}
	if down.Rank() < 3 {
		t.Fatalf("downstream rank %d; recoding lost information", down.Rank())
	}
}

func TestRecodeEmpty(t *testing.T) {
	dec, err := NewDecoder(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := dec.Recode(simrng.New(1)); ok {
		t.Fatal("recode from empty decoder succeeded")
	}
}

// TestRankNeverExceedsK and never decreases.
func TestRankMonotoneBounded(t *testing.T) {
	const k, size = 5, 8
	enc, err := NewEncoder(sources(k, size, 10))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(k, size)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrng.New(11)
	prev := 0
	for i := 0; i < 50; i++ {
		if _, err := dec.Add(enc.Encode(rng)); err != nil {
			t.Fatal(err)
		}
		r := dec.Rank()
		if r < prev || r > k {
			t.Fatalf("rank %d after %d (prev %d)", r, i, prev)
		}
		prev = r
	}
	if prev != k {
		t.Fatalf("final rank %d", prev)
	}
}
