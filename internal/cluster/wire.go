// Package cluster scales `lotus-sim serve` from one process to a fleet: a
// coordinator decomposes each job into (sweep point × replicate window)
// units, shards them over HTTP to workers, and reassembles the artifact —
// byte-identical to a single-process run by construction.
//
// Determinism is inherited, not negotiated. Replicate i's random stream is
// a pure function of (seed, i) via sim.Runner.FoldRange, so a worker
// executing window [start, start+n) emits exactly the observations a
// sequential fold would have produced there, in order. Workers return the
// ordered observations (as IEEE-754 bit patterns — exact across the JSON
// boundary) plus their partial metrics.Accumulator state; the coordinator
// buffers out-of-order windows and folds every observation into the
// per-point stream in global replicate order. Folding — not merging — is
// what makes the artifact bit-identical: the P² quantile estimator is
// order-dependent and float addition is non-associative, so only the
// sequential fold order reproduces the local bytes. The partial
// accumulator states are still load-bearing: each is checked bit-for-bit
// against the coordinator's own re-fold of the same window, so a worker
// running skewed code or corrupting data fails the job loudly instead of
// poisoning the artifact.
//
// Adaptive precision plans distribute as work-stealing: wave boundaries
// are drawn exactly where adaptive.Fold would draw them (ExecPlan
// FirstWave/NextWave), the stopping rule is consulted on the in-order
// stream after each wave (Plan.Met — same accumulator, same verdict), and
// an idle worker steals the next wave of whichever unresolved point
// currently has the widest confidence interval. Each point has at most one
// wave in flight, so its stream stays strictly ordered; parallelism comes
// from points, exactly as compute should chase variance.
//
// The content-addressed result cache federates into a shared artifact
// store: workers publish finished bodies to the coordinator under their
// cache key, lookups that miss locally consult the coordinator, and
// `/results/{key}` answers identically against either role.
//
// Wire protocol (all JSON over HTTP):
//
//	POST /cluster/join              worker -> coordinator: {url} (repeated as heartbeat)
//	POST /cluster/run               coordinator -> worker: one unit {pointSpec, seed, start, n}
//	GET  /cluster/artifacts/{key}   shared store lookup (200 body | 404)
//	PUT  /cluster/artifacts/{key}   shared store publish
//	GET  /cluster/status            coordinator: worker registry + scheduler counters
package cluster

import (
	"encoding/json"
	"math"

	"lotuseater/internal/metrics"
)

// joinRequest is the body of POST /cluster/join — a worker announcing the
// base URL the coordinator can reach it at. Workers re-announce on an
// interval, so a worker the coordinator dropped (crash, partition) re-adds
// itself as soon as it is back.
type joinRequest struct {
	URL string `json:"url"`
}

// unitRequest is one schedulable unit of a job: execute replicates
// [start, start+n) of a resolved sweep-point spec under a run seed. The
// spec travels in canonical form; the seed plus global replicate indices
// fully determine the randomness, so the same unit executes identically on
// any worker.
type unitRequest struct {
	PointSpec json.RawMessage `json:"pointSpec"`
	Seed      uint64          `json:"seed"`
	Start     int             `json:"start"`
	N         int             `json:"n"`
}

// unitResponse carries a unit's outcome back: the window's metric
// observations in replicate order (IEEE-754 bits, so the coordinator folds
// the exact floats the worker observed), and the worker's partial
// accumulator over them — redundant by construction, which is the point:
// the coordinator re-folds the observations and requires bit-equality with
// this state before accepting the window. Error reports an execution
// failure (bad spec, failing model); transport-level failures never reach
// this struct.
type unitResponse struct {
	ObsBits []uint64                 `json:"obsBits"`
	Acc     metrics.AccumulatorState `json:"acc"`
	Error   string                   `json:"error,omitempty"`
}

// observations converts the wire bits back to floats, in order.
func (r *unitResponse) observations() []float64 {
	obs := make([]float64, len(r.ObsBits))
	for i, b := range r.ObsBits {
		obs[i] = math.Float64frombits(b)
	}
	return obs
}

// bitsOf converts observations to wire form.
func bitsOf(obs []float64) []uint64 {
	bits := make([]uint64, len(obs))
	for i, y := range obs {
		bits[i] = math.Float64bits(y)
	}
	return bits
}
