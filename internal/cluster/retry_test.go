package cluster

import (
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"lotuseater/internal/metrics"
	"lotuseater/internal/scenario"
	"lotuseater/internal/serve"
)

// flakyHandler aborts the connection on the first `failures` unit
// dispatches — a worker dying mid-wave, as the coordinator sees it — and
// serves normally afterwards.
type flakyHandler struct {
	inner http.Handler

	mu       sync.Mutex
	failures int
	aborted  int
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/cluster/run" {
		f.mu.Lock()
		abort := f.aborted < f.failures
		if abort {
			f.aborted++
		}
		f.mu.Unlock()
		if abort {
			panic(http.ErrAbortHandler)
		}
	}
	f.inner.ServeHTTP(w, r)
}

// TestWorkerKillMidWaveRetries: one of two workers kills its connection on
// the first units it is handed. The units must reassign (to the healthy
// worker, or back to the flaky one after it re-announces), the job must
// complete, and the artifact must still be byte-identical to a local run —
// retry changes who folds a window, never what the window holds.
func TestWorkerKillMidWaveRetries(t *testing.T) {
	for _, spec := range []struct{ name, raw string }{
		{"fixed", tinyFixed},
		{"adaptive", tinyAdaptive},
	} {
		t.Run(spec.name, func(t *testing.T) {
			const seed = 31
			want := localArtifact(t, spec.raw, seed)

			coord := mustCoordinator(t, Config{StallTimeout: 10 * time.Second})
			cts := httptest.NewServer(coord)
			defer func() {
				cts.Close()
				coord.Close()
			}()

			mk := func(flaky int) (*Worker, *httptest.Server, *flakyHandler) {
				w, err := NewWorker(WorkerConfig{
					Coordinator:      cts.URL,
					AnnounceInterval: 20 * time.Millisecond,
				})
				if err != nil {
					t.Fatal(err)
				}
				fh := &flakyHandler{inner: w, failures: flaky}
				ts := httptest.NewServer(fh)
				w.Announce(ts.URL)
				return w, ts, fh
			}
			wGood, tsGood, _ := mk(0)
			wBad, tsBad, fh := mk(2)
			defer func() {
				tsGood.Close()
				tsBad.Close()
				wGood.Close()
				wBad.Close()
			}()
			waitForWorkers(t, cts.URL, 2)

			resp := submitSpec(t, cts.URL, spec.raw, seed)
			waitJobDone(t, cts.URL, resp.Key)
			got, etag := fetchResult(t, cts.URL, resp.Key)
			if string(got) != string(want) {
				t.Fatalf("artifact after mid-wave worker death differs from local run")
			}
			if etag != metrics.AddressBytes(want) {
				t.Fatalf("address after retry differs")
			}
			fh.mu.Lock()
			aborted := fh.aborted
			fh.mu.Unlock()
			if aborted == 0 {
				t.Fatalf("flaky worker was never handed a unit; the retry path went unexercised")
			}
		})
	}
}

// TestPoisonUnitFailsJob: a unit that kills every worker it visits
// exhausts its dispatch attempts and fails the job with a clear error
// instead of looping forever.
func TestPoisonUnitFailsJob(t *testing.T) {
	coord := mustCoordinator(t, Config{
		MaxAttempts:  3,
		StallTimeout: 500 * time.Millisecond,
	})
	cts := httptest.NewServer(coord)
	defer func() {
		cts.Close()
		coord.Close()
	}()

	// One worker that aborts every dispatch, forever, but keeps announcing.
	w, err := NewWorker(WorkerConfig{Coordinator: cts.URL, AnnounceInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	fh := &flakyHandler{inner: w, failures: 1 << 30}
	ts := httptest.NewServer(fh)
	w.Announce(ts.URL)
	defer func() {
		ts.Close()
		w.Close()
	}()
	waitForWorkers(t, cts.URL, 1)

	resp := submitSpec(t, cts.URL, tinyFixed, 37)
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, _, data := httpGet(t, cts.URL+"/jobs/"+resp.Key)
		if code != http.StatusOK {
			t.Fatalf("job status %d: %s", code, data)
		}
		if strings.Contains(string(data), `"failed"`) {
			if !strings.Contains(string(data), "attempts") && !strings.Contains(string(data), "no live workers") {
				t.Fatalf("job failed without naming retry exhaustion or worker loss: %s", data)
			}
			return
		}
		if strings.Contains(string(data), `"done"`) {
			t.Fatalf("job with an always-dying worker reported done")
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("poisoned job never failed")
}

// TestClusterLifecycleNoGoroutineLeak: boot a coordinator and two workers,
// run a distributed job and a cache hit through them, tear everything
// down, and end with exactly the goroutines we started with — announce
// loops, dispatch loops, and monitors all accounted for.
func TestClusterLifecycleNoGoroutineLeak(t *testing.T) {
	// Warm the process-wide sim pool and HTTP transport before baselining.
	if _, err := scenario.Run(decodeSpec(t, tinyFixed), 1, scenario.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()

	coord := mustCoordinator(t, Config{Serve: serve.Config{}, StallTimeout: 5 * time.Second})
	cts := httptest.NewServer(coord)
	var workers []*Worker
	var wts []*httptest.Server
	for i := 0; i < 2; i++ {
		w, err := NewWorker(WorkerConfig{Coordinator: cts.URL, AnnounceInterval: 20 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(w)
		w.Announce(ts.URL)
		workers = append(workers, w)
		wts = append(wts, ts)
	}
	waitForWorkers(t, cts.URL, 2)

	resp := submitSpec(t, cts.URL, tinyFixed, 41)
	waitJobDone(t, cts.URL, resp.Key)
	fetchResult(t, cts.URL, resp.Key)
	if again := submitSpec(t, cts.URL, tinyFixed, 41); !again.Cached {
		t.Fatalf("expected a cache hit")
	}

	for i, w := range workers {
		wts[i].Close()
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	cts.Close()
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Fatalf("goroutines never settled to %d (now %d):\n%s", base, runtime.NumGoroutine(), buf)
}
