package cluster

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"lotuseater/internal/obs"
	"lotuseater/internal/serve"
)

// TestAnnounceDelay pins the backoff schedule as a pure function: steady
// base cadence while healthy, exponential growth with a cap while failing,
// jitter bounded to [d/2, d), and full determinism per (seed, failures).
func TestAnnounceDelay(t *testing.T) {
	base, max := 2*time.Second, 30*time.Second

	if d := announceDelay(base, max, 0, 1); d != base {
		t.Fatalf("healthy delay = %v, want base %v", d, base)
	}

	// Failure n draws from an uncapped window of base<<(n-1), capped at max.
	for failures := 1; failures <= 8; failures++ {
		win := base << (failures - 1)
		if win > max {
			win = max
		}
		d := announceDelay(base, max, failures, 42)
		if d < win/2 || d >= win {
			t.Fatalf("failures=%d: delay %v outside [%v, %v)", failures, d, win/2, win)
		}
	}

	// Deterministic per inputs; different seeds desynchronize.
	if a, b := announceDelay(base, max, 3, 7), announceDelay(base, max, 3, 7); a != b {
		t.Fatalf("same inputs gave %v and %v", a, b)
	}
	distinct := false
	for seed := uint64(1); seed < 16 && !distinct; seed++ {
		distinct = announceDelay(base, max, 3, seed) != announceDelay(base, max, 3, seed+100)
	}
	if !distinct {
		t.Fatal("jitter ignores the seed — a fleet would stay synchronized")
	}
}

// TestAnnounceBackoffLoop drives the announce loop with a fake timer
// against a coordinator that rejects the first three joins: the loop must
// request growing delays while failing, snap back to the base interval on
// success, and count each failure on the metrics.
func TestAnnounceBackoffLoop(t *testing.T) {
	var mu sync.Mutex
	var joins int
	coord := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		joins++
		if joins <= 3 {
			http.Error(w, "restarting", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer coord.Close()

	delays := make(chan time.Duration, 16)
	step := make(chan time.Time)
	w, err := NewWorker(WorkerConfig{
		Coordinator:      coord.URL,
		AnnounceInterval: time.Second,
		JitterSeed:       99,
		After: func(d time.Duration) <-chan time.Time {
			delays <- d
			return step
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.Announce("http://worker.test")

	next := func() time.Duration {
		t.Helper()
		select {
		case d := <-delays:
			return d
		case <-time.After(5 * time.Second):
			t.Fatal("announce loop never asked for a timer")
			return 0
		}
	}

	// Three failures: delays grow exactly per announceDelay(1s, 30s, n, 99).
	for n := 1; n <= 3; n++ {
		want := announceDelay(time.Second, 30*time.Second, n, 99)
		if got := next(); got != want {
			t.Fatalf("failure %d: delay %v, want %v", n, got, want)
		}
		step <- time.Time{}
	}
	// Fourth join succeeds: cadence snaps back to the base interval.
	if got := next(); got != time.Second {
		t.Fatalf("post-recovery delay %v, want base 1s", got)
	}
	mu.Lock()
	totalJoins := joins
	mu.Unlock()
	if totalJoins != 4 {
		t.Fatalf("joins = %d, want 4", totalJoins)
	}

	// Each failed join is counted on the worker's own /metrics.
	rec := httptest.NewRecorder()
	w.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("worker /metrics: %d", rec.Code)
	}
	if v, ok := sampleValue(rec.Body.Bytes(), "lotus_cluster_announce_failures_total"); !ok || v != "3" {
		t.Fatalf("announce failures = %q, want 3", v)
	}
}

// scrapeNode fetches and validates one node's /metrics.
func scrapeNode(t *testing.T, base string) ([]byte, map[string]string) {
	t.Helper()
	code, _, body := httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET %s/metrics: %d: %s", base, code, body)
	}
	fams, err := obs.CheckText(body)
	if err != nil {
		t.Fatalf("%s/metrics invalid: %v", base, err)
	}
	return body, fams
}

// sampleValue extracts one sample's rendered value from an exposition.
func sampleValue(body []byte, prefix string) (string, bool) {
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, prefix+" "); ok {
			return rest, true
		}
	}
	return "", false
}

// TestClusterMetricsBothRoles is the e2e scrape gate: after a distributed
// job, both the coordinator's and a worker's /metrics parse strictly,
// expose the full shared series catalogue, and show the cluster counters
// moving on the role that owns them.
func TestClusterMetricsBothRoles(t *testing.T) {
	tc := startCluster(t, 2, 1)
	first := submitSpec(t, tc.coordTS.URL, tinyFixed, 5)
	waitJobDone(t, tc.coordTS.URL, first.Key)

	required := []string{
		"lotus_build_info", "lotus_cache_hits_total", "lotus_cache_misses_total",
		"lotus_queue_depth", "lotus_queue_capacity", "lotus_jobs_total",
		"lotus_job_duration_seconds", "lotus_http_requests_total",
		"lotus_http_request_duration_seconds", "lotus_cluster_workers",
		"lotus_cluster_units_dispatched_total", "lotus_cluster_unit_retries_total",
		"lotus_cluster_unit_steals_total", "lotus_cluster_units_executed_total",
		"lotus_cluster_announce_failures_total", "lotus_store_entries",
	}

	coordBody, coordFams := scrapeNode(t, tc.coordTS.URL)
	for _, name := range required {
		if _, ok := coordFams[name]; !ok {
			t.Errorf("coordinator scrape missing %s", name)
		}
	}
	if v, ok := sampleValue(coordBody, "lotus_cluster_units_dispatched_total"); !ok || v == "0" {
		t.Errorf("coordinator dispatched %q units after a distributed job", v)
	}
	if v, ok := sampleValue(coordBody, "lotus_cluster_workers"); !ok || v != "2" {
		t.Errorf("coordinator workers gauge %q, want 2", v)
	}
	// Cluster control routes are counted by the coordinator's middleware.
	if v, ok := sampleValue(coordBody, `lotus_http_requests_total{route="/cluster/join"}`); !ok || v == "0" {
		t.Errorf("join requests %q, want > 0", v)
	}

	var executed int
	for i, wts := range tc.workerTS {
		workerBody, workerFams := scrapeNode(t, wts.URL)
		for _, name := range required {
			if _, ok := workerFams[name]; !ok {
				t.Errorf("worker %d scrape missing %s", i, name)
			}
		}
		if v, ok := sampleValue(workerBody, "lotus_cluster_units_executed_total"); ok && v != "0" {
			executed++
		}
	}
	if executed == 0 {
		t.Error("no worker reported executed units after a distributed job")
	}
}

// TestWorkerStoreDirFailure: an unusable store directory fails worker (and
// coordinator) construction loudly instead of degrading silently.
func TestWorkerStoreDirFailure(t *testing.T) {
	// A path under a regular file can never become a directory.
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(file, "store")
	if _, err := NewWorker(WorkerConfig{
		Coordinator: "http://localhost:1",
		Serve:       serve.Config{StoreDir: bad},
	}); err == nil {
		t.Fatal("worker with unusable store dir constructed without error")
	}
	if _, err := NewCoordinator(Config{Serve: serve.Config{StoreDir: bad}}); err == nil {
		t.Fatal("coordinator with unusable store dir constructed without error")
	}
}
