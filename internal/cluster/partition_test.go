package cluster

import (
	"fmt"
	"sync"
	"testing"

	"lotuseater/internal/metrics"
	"lotuseater/internal/scenario"
	"lotuseater/internal/simrng"
)

// buildPoints mirrors the coordinator's per-point setup.
func buildPoints(t *testing.T, spec *scenario.Spec, ep scenario.ExecPlan) []*pointState {
	t.Helper()
	points := make([]*pointState, len(ep.Xs))
	for i, x := range ep.Xs {
		pt, err := spec.PointSpec(x)
		if err != nil {
			t.Fatal(err)
		}
		canon, err := pt.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		points[i] = &pointState{x: x, spec: canon, st: metrics.NewStream(), buffered: make(map[int][]float64)}
	}
	return points
}

// executeUnit runs one unit the way a worker would: FoldWindow over the
// canonical point spec, collecting ordered observations and the partial
// accumulator. Safe to call off the test goroutine.
func executeUnit(sc *schedule, u unit, seed uint64) ([]float64, metrics.Accumulator, error) {
	var acc metrics.Accumulator
	pt, err := scenario.Decode(sc.points[u.point].spec)
	if err != nil {
		return nil, acc, err
	}
	obs := make([]float64, 0, u.n)
	if err := scenario.FoldWindow(pt, seed, u.start, u.n, 0, func(rep int, y float64) {
		obs = append(obs, y)
		acc.Add(y)
	}); err != nil {
		return nil, acc, err
	}
	return obs, acc, nil
}

// TestPartitionMergeOrderInvariance is the property pin behind the whole
// cluster design: ANY partition of [0, n) into FoldRange windows, executed
// independently and delivered to the schedule in ANY order, assembles into
// byte-identical artifact bytes — and hence the identical content address
// — as the sequential single-process fold. Random partitions, shuffled
// delivery, 12 trials.
func TestPartitionMergeOrderInvariance(t *testing.T) {
	const seed = 13
	spec := decodeSpec(t, tinyFixed)
	want := localArtifact(t, tinyFixed, seed)
	wantAddr := metrics.AddressBytes(want)

	rng := simrng.New(99)
	opts := scenario.RunOptions{}
	for trial := 0; trial < 12; trial++ {
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			ep := scenario.PlanOf(spec, opts)
			points := buildPoints(t, spec, ep)
			sc := newSchedule(ep, points, seed, opts, 1, 8)

			// Random partition: per point, cut [0, replicates) at random.
			var units []unit
			for pi := range points {
				start := 0
				for start < ep.Replicates {
					n := 1 + rng.IntN(ep.Replicates-start)
					units = append(units, unit{point: pi, start: start, n: n})
					start += n
				}
			}
			// Execute all units, then deliver in a shuffled order.
			type executed struct {
				u   unit
				obs []float64
				acc metrics.Accumulator
			}
			results := make([]executed, len(units))
			for i, u := range units {
				obs, acc, err := executeUnit(sc, u, seed)
				if err != nil {
					t.Fatal(err)
				}
				results[i] = executed{u, obs, acc}
			}
			rng.Shuffle(len(results), func(i, j int) { results[i], results[j] = results[j], results[i] })
			for _, r := range results {
				sc.complete(r.u, r.obs, r.acc)
			}
			if err := sc.wait(); err != nil {
				t.Fatal(err)
			}
			a, err := scenario.Assemble(spec, opts, sc.results())
			if err != nil {
				t.Fatal(err)
			}
			got, err := a.CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Fatalf("partition/order changed artifact bytes:\n%s\nvs\n%s", got, want)
			}
			if metrics.AddressBytes(got) != wantAddr {
				t.Fatalf("address changed")
			}
		})
	}
}

// TestAdaptiveScheduleMatchesFold drives the work-stealing schedule with
// in-process executors — 1, then 3 concurrent — and requires the replicate
// counts, half-widths, and artifact bytes to be identical to adaptive
// scenario.Run: the stopping rule consulted at the same wave boundaries on
// the same in-order streams gives the same verdicts, regardless of which
// "worker" folded which wave.
func TestAdaptiveScheduleMatchesFold(t *testing.T) {
	const seed = 21
	spec := decodeSpec(t, tinyAdaptive)
	want := localArtifact(t, tinyAdaptive, seed)

	for _, executors := range []int{1, 3} {
		t.Run(fmt.Sprintf("executors=%d", executors), func(t *testing.T) {
			opts := scenario.RunOptions{}
			ep := scenario.PlanOf(spec, opts)
			points := buildPoints(t, spec, ep)
			sc := newSchedule(ep, points, seed, opts, 1, 8)

			var wg sync.WaitGroup
			for e := 0; e < executors; e++ {
				url := fmt.Sprintf("exec-%d", e)
				if !sc.addLoop(url) {
					t.Fatalf("loop %s not added", url)
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer sc.removeLoop(url)
					for {
						u, ok := sc.next()
						if !ok {
							return
						}
						obs, acc, err := executeUnit(sc, u, seed)
						if err != nil {
							sc.failWith(err)
							return
						}
						sc.complete(u, obs, acc)
					}
				}()
			}
			if err := sc.wait(); err != nil {
				t.Fatal(err)
			}
			wg.Wait()
			a, err := scenario.Assemble(spec, opts, sc.results())
			if err != nil {
				t.Fatal(err)
			}
			got, err := a.CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Fatalf("adaptive schedule diverged from adaptive.Fold:\n%s\nvs\n%s", got, want)
			}
		})
	}
}
