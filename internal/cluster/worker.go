package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lotuseater/internal/metrics"
	"lotuseater/internal/scenario"
	"lotuseater/internal/serve"
)

// WorkerConfig tunes a Worker.
type WorkerConfig struct {
	// Serve configures the embedded experiment service. Its Workers field
	// also bounds each unit's in-flight replicates on the shared pool —
	// results never depend on it. The Store hook is owned by the worker:
	// it is pointed at the coordinator's shared artifact store.
	Serve serve.Config
	// Coordinator is the coordinator's base URL (required).
	Coordinator string
	// AnnounceInterval is how often the worker re-announces itself to the
	// coordinator while announces succeed (0 = 2s). Announces double as
	// heartbeats: a worker the coordinator dropped re-registers within one
	// interval of recovering.
	AnnounceInterval time.Duration
	// AnnounceBackoffMax caps the announce retry delay while the
	// coordinator is unreachable (0 = 30s). Consecutive failures back off
	// exponentially from AnnounceInterval toward this cap, with
	// deterministic per-worker jitter so a restarted coordinator is not
	// thundering-herded by its whole fleet on the same tick; one success
	// resets the cadence to AnnounceInterval.
	AnnounceBackoffMax time.Duration
	// JitterSeed seeds the announce jitter (0 = derived from the announced
	// URL, so distinct workers desynchronize while each stays
	// deterministic).
	JitterSeed uint64
	// After is the announce loop's timer (nil = time.After). Tests inject a
	// channel-driven fake to step the loop deterministically.
	After func(d time.Duration) <-chan time.Time
	// Client issues coordinator HTTP requests (nil = http.DefaultClient).
	Client *http.Client
}

// Worker is one cluster execution node: it serves the full experiment API
// (a submit here runs locally, and its `/results/{key}` consults the
// shared store on a local miss), executes units the coordinator posts to
// /cluster/run, and publishes every artifact it computes to the
// coordinator under its content-addressed cache key.
type Worker struct {
	cfg     WorkerConfig
	srv     *serve.Server
	mux     *http.ServeMux
	handler http.Handler // mux behind the embedded server's instrumentation
	client  *http.Client
	after   func(d time.Duration) <-chan time.Time

	draining     atomic.Bool
	stop         chan struct{}
	stopOnce     sync.Once
	announceMu   sync.Mutex
	announceDone chan struct{} // non-nil once the announce loop is running
}

// NewWorker builds a worker bound to a coordinator. It does not announce
// itself yet — call Announce once the worker's own listener is bound and
// its URL is known.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("cluster: worker needs a coordinator URL")
	}
	cfg.Coordinator = strings.TrimRight(cfg.Coordinator, "/")
	if cfg.AnnounceInterval <= 0 {
		cfg.AnnounceInterval = 2 * time.Second
	}
	if cfg.AnnounceBackoffMax <= 0 {
		cfg.AnnounceBackoffMax = 30 * time.Second
	}
	if cfg.AnnounceBackoffMax < cfg.AnnounceInterval {
		cfg.AnnounceBackoffMax = cfg.AnnounceInterval
	}
	w := &Worker{
		cfg:    cfg,
		client: cfg.Client,
		after:  cfg.After,
		mux:    http.NewServeMux(),
		stop:   make(chan struct{}),
	}
	if w.client == nil {
		w.client = http.DefaultClient
	}
	if w.after == nil {
		w.after = time.After
	}
	scfg := cfg.Serve
	scfg.Store = &httpStore{base: cfg.Coordinator, client: w.client}
	srv, err := serve.New(scfg)
	if err != nil {
		return nil, err
	}
	w.srv = srv
	w.mux.HandleFunc("POST /cluster/run", w.handleRun)
	// Fall back to the embedded service's raw routes, then wrap the whole
	// tree in its instrumentation once — every request (cluster and
	// experiment alike) is counted exactly once.
	w.mux.Handle("/", w.srv.Routes())
	w.handler = w.srv.Observe(w.mux)
	return w, nil
}

// ServeHTTP dispatches to the unit-execution and experiment routes.
func (w *Worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) { w.handler.ServeHTTP(rw, r) }

// Server exposes the embedded experiment service.
func (w *Worker) Server() *serve.Server { return w.srv }

// Announce starts the join/heartbeat loop, registering selfURL — the base
// URL the coordinator can reach this worker at — immediately and then on
// every interval. Call at most once.
func (w *Worker) Announce(selfURL string) {
	w.announceMu.Lock()
	defer w.announceMu.Unlock()
	if w.announceDone != nil {
		return
	}
	w.announceDone = make(chan struct{})
	go w.announce(selfURL, w.announceDone)
}

func (w *Worker) announce(selfURL string, done chan struct{}) {
	defer close(done)
	seed := w.cfg.JitterSeed
	if seed == 0 {
		h := fnv.New64a()
		h.Write([]byte(selfURL))
		seed = h.Sum64()
	}
	failures := 0
	for {
		if err := w.join(selfURL); err != nil {
			failures++
			w.srv.Metrics().AnnounceFailed()
		} else {
			failures = 0
		}
		select {
		case <-w.stop:
			return
		case <-w.after(announceDelay(w.cfg.AnnounceInterval, w.cfg.AnnounceBackoffMax, failures, seed)):
		}
	}
}

// announceDelay computes the wait before the next announce given the count
// of consecutive failures so far. While announces succeed (failures == 0)
// the cadence is the steady base interval. Failures back off exponentially
// — base, 2·base, 4·base, ... capped at max — with deterministic jitter:
// the delay lands uniformly in [d/2, d), the fraction derived by mixing the
// worker's jitter seed with the failure count (splitmix64), so retries
// spread across a fleet while each worker's sequence is reproducible.
func announceDelay(base, max time.Duration, failures int, seed uint64) time.Duration {
	if failures <= 0 {
		return base
	}
	d := base
	for i := 1; i < failures && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	x := seed + 0x9e3779b97f4a7c15*uint64(failures)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	frac := float64(x>>11) / float64(1<<53)
	half := d / 2
	return half + time.Duration(float64(half)*frac)
}

// join posts one announcement. An error (transport failure or non-2xx
// status) feeds the caller's backoff; the coordinator may simply be
// restarting, and a later attempt re-registers.
func (w *Worker) join(selfURL string) error {
	body, err := json.Marshal(joinRequest{URL: selfURL})
	if err != nil {
		return err
	}
	resp, err := w.client.Post(w.cfg.Coordinator+"/cluster/join", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("cluster: announce rejected: %s", resp.Status)
	}
	return nil
}

// Close stops the announce loop and the embedded service. A unit in
// flight completes (and its response delivers) first. Idempotent.
func (w *Worker) Close() error {
	w.draining.Store(true)
	w.stopAnnounce()
	return w.srv.Close()
}

// Drain is the graceful SIGTERM path: stop announcing, answer new units
// 503 (the coordinator reassigns them elsewhere), finish the local job in
// flight, fail queued local jobs with a drain status.
func (w *Worker) Drain() error {
	w.draining.Store(true)
	w.stopAnnounce()
	return w.srv.Drain()
}

func (w *Worker) stopAnnounce() {
	w.stopOnce.Do(func() { close(w.stop) })
	w.announceMu.Lock()
	done := w.announceDone
	w.announceMu.Unlock()
	if done != nil {
		<-done
	}
}

// handleRun executes one unit synchronously: decode the canonical point
// spec, fold replicates [start, start+n) on the shared pool, and return
// the ordered observations plus the partial accumulator state the
// coordinator cross-checks. Draining workers answer 503, which the
// coordinator reads as "reassign elsewhere".
func (w *Worker) handleRun(rw http.ResponseWriter, r *http.Request) {
	if w.draining.Load() {
		http.Error(rw, `{"error":"cluster: worker draining"}`, http.StatusServiceUnavailable)
		return
	}
	var req unitRequest
	dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		http.Error(rw, `{"error":"cluster: bad unit body"}`, http.StatusBadRequest)
		return
	}
	if req.Start < 0 || req.N <= 0 || req.N > 1<<20 {
		writeUnitError(rw, fmt.Errorf("cluster: bad unit window [%d,+%d)", req.Start, req.N))
		return
	}
	pt, err := scenario.Decode(req.PointSpec)
	if err != nil {
		writeUnitError(rw, err)
		return
	}
	obs := make([]float64, 0, req.N)
	var acc metrics.Accumulator
	err = scenario.FoldWindow(pt, req.Seed, req.Start, req.N, w.cfg.Serve.Workers, func(rep int, y float64) {
		obs = append(obs, y)
		acc.Add(y)
	})
	if err != nil {
		writeUnitError(rw, err)
		return
	}
	w.srv.Metrics().UnitExecuted()
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(unitResponse{ObsBits: bitsOf(obs), Acc: acc.State()})
}

// writeUnitError reports an execution error (as opposed to a transport
// one): HTTP 200 with the Error field set, which the coordinator treats as
// "the unit itself is bad" and fails the job rather than retrying.
func writeUnitError(rw http.ResponseWriter, err error) {
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(unitResponse{Error: err.Error()})
}

// httpStore is the worker-side client of the coordinator's shared
// artifact store — the serve.ArtifactStore that federates every node's
// result cache through GET/PUT /cluster/artifacts/{key}.
type httpStore struct {
	base   string
	client *http.Client
}

func (st *httpStore) Lookup(key string) (body []byte, address string, ok bool) {
	resp, err := st.client.Get(st.base + "/cluster/artifacts/" + key)
	if err != nil {
		return nil, "", false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, "", false
	}
	body, err = io.ReadAll(io.LimitReader(resp.Body, maxArtifactBytes))
	if err != nil || len(body) == 0 {
		return nil, "", false
	}
	// Recompute the address from the bytes rather than trusting the
	// header: content addressing means a store can never hand us a body
	// that disagrees with its ETag.
	return body, metrics.AddressBytes(body), true
}

func (st *httpStore) Publish(key string, body []byte, address string) {
	req, err := http.NewRequest(http.MethodPut, st.base+"/cluster/artifacts/"+key, bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := st.client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
