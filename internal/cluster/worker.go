package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lotuseater/internal/metrics"
	"lotuseater/internal/scenario"
	"lotuseater/internal/serve"
)

// WorkerConfig tunes a Worker.
type WorkerConfig struct {
	// Serve configures the embedded experiment service. Its Workers field
	// also bounds each unit's in-flight replicates on the shared pool —
	// results never depend on it. The Store hook is owned by the worker:
	// it is pointed at the coordinator's shared artifact store.
	Serve serve.Config
	// Coordinator is the coordinator's base URL (required).
	Coordinator string
	// AnnounceInterval is how often the worker re-announces itself to the
	// coordinator (0 = 2s). Announces double as heartbeats: a worker the
	// coordinator dropped re-registers within one interval of recovering.
	AnnounceInterval time.Duration
	// Client issues coordinator HTTP requests (nil = http.DefaultClient).
	Client *http.Client
}

// Worker is one cluster execution node: it serves the full experiment API
// (a submit here runs locally, and its `/results/{key}` consults the
// shared store on a local miss), executes units the coordinator posts to
// /cluster/run, and publishes every artifact it computes to the
// coordinator under its content-addressed cache key.
type Worker struct {
	cfg    WorkerConfig
	srv    *serve.Server
	mux    *http.ServeMux
	client *http.Client

	draining     atomic.Bool
	stop         chan struct{}
	stopOnce     sync.Once
	announceMu   sync.Mutex
	announceDone chan struct{} // non-nil once the announce loop is running
}

// NewWorker builds a worker bound to a coordinator. It does not announce
// itself yet — call Announce once the worker's own listener is bound and
// its URL is known.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("cluster: worker needs a coordinator URL")
	}
	cfg.Coordinator = strings.TrimRight(cfg.Coordinator, "/")
	if cfg.AnnounceInterval <= 0 {
		cfg.AnnounceInterval = 2 * time.Second
	}
	w := &Worker{
		cfg:    cfg,
		client: cfg.Client,
		mux:    http.NewServeMux(),
		stop:   make(chan struct{}),
	}
	if w.client == nil {
		w.client = http.DefaultClient
	}
	scfg := cfg.Serve
	scfg.Store = &httpStore{base: cfg.Coordinator, client: w.client}
	w.srv = serve.New(scfg)
	w.mux.HandleFunc("POST /cluster/run", w.handleRun)
	w.mux.Handle("/", w.srv)
	return w, nil
}

// ServeHTTP dispatches to the unit-execution and experiment routes.
func (w *Worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) { w.mux.ServeHTTP(rw, r) }

// Server exposes the embedded experiment service.
func (w *Worker) Server() *serve.Server { return w.srv }

// Announce starts the join/heartbeat loop, registering selfURL — the base
// URL the coordinator can reach this worker at — immediately and then on
// every interval. Call at most once.
func (w *Worker) Announce(selfURL string) {
	w.announceMu.Lock()
	defer w.announceMu.Unlock()
	if w.announceDone != nil {
		return
	}
	w.announceDone = make(chan struct{})
	go w.announce(selfURL, w.announceDone)
}

func (w *Worker) announce(selfURL string, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(w.cfg.AnnounceInterval)
	defer t.Stop()
	w.join(selfURL)
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.join(selfURL)
		}
	}
}

// join posts one announcement; failures are silent by design — the
// coordinator may be restarting, and the next tick retries.
func (w *Worker) join(selfURL string) {
	body, err := json.Marshal(joinRequest{URL: selfURL})
	if err != nil {
		return
	}
	resp, err := w.client.Post(w.cfg.Coordinator+"/cluster/join", "application/json", bytes.NewReader(body))
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// Close stops the announce loop and the embedded service. A unit in
// flight completes (and its response delivers) first. Idempotent.
func (w *Worker) Close() error {
	w.draining.Store(true)
	w.stopAnnounce()
	return w.srv.Close()
}

// Drain is the graceful SIGTERM path: stop announcing, answer new units
// 503 (the coordinator reassigns them elsewhere), finish the local job in
// flight, fail queued local jobs with a drain status.
func (w *Worker) Drain() error {
	w.draining.Store(true)
	w.stopAnnounce()
	return w.srv.Drain()
}

func (w *Worker) stopAnnounce() {
	w.stopOnce.Do(func() { close(w.stop) })
	w.announceMu.Lock()
	done := w.announceDone
	w.announceMu.Unlock()
	if done != nil {
		<-done
	}
}

// handleRun executes one unit synchronously: decode the canonical point
// spec, fold replicates [start, start+n) on the shared pool, and return
// the ordered observations plus the partial accumulator state the
// coordinator cross-checks. Draining workers answer 503, which the
// coordinator reads as "reassign elsewhere".
func (w *Worker) handleRun(rw http.ResponseWriter, r *http.Request) {
	if w.draining.Load() {
		http.Error(rw, `{"error":"cluster: worker draining"}`, http.StatusServiceUnavailable)
		return
	}
	var req unitRequest
	dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		http.Error(rw, `{"error":"cluster: bad unit body"}`, http.StatusBadRequest)
		return
	}
	if req.Start < 0 || req.N <= 0 || req.N > 1<<20 {
		writeUnitError(rw, fmt.Errorf("cluster: bad unit window [%d,+%d)", req.Start, req.N))
		return
	}
	pt, err := scenario.Decode(req.PointSpec)
	if err != nil {
		writeUnitError(rw, err)
		return
	}
	obs := make([]float64, 0, req.N)
	var acc metrics.Accumulator
	err = scenario.FoldWindow(pt, req.Seed, req.Start, req.N, w.cfg.Serve.Workers, func(rep int, y float64) {
		obs = append(obs, y)
		acc.Add(y)
	})
	if err != nil {
		writeUnitError(rw, err)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(unitResponse{ObsBits: bitsOf(obs), Acc: acc.State()})
}

// writeUnitError reports an execution error (as opposed to a transport
// one): HTTP 200 with the Error field set, which the coordinator treats as
// "the unit itself is bad" and fails the job rather than retrying.
func writeUnitError(rw http.ResponseWriter, err error) {
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(unitResponse{Error: err.Error()})
}

// httpStore is the worker-side client of the coordinator's shared
// artifact store — the serve.ArtifactStore that federates every node's
// result cache through GET/PUT /cluster/artifacts/{key}.
type httpStore struct {
	base   string
	client *http.Client
}

func (st *httpStore) Lookup(key string) (body []byte, address string, ok bool) {
	resp, err := st.client.Get(st.base + "/cluster/artifacts/" + key)
	if err != nil {
		return nil, "", false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, "", false
	}
	body, err = io.ReadAll(io.LimitReader(resp.Body, maxArtifactBytes))
	if err != nil || len(body) == 0 {
		return nil, "", false
	}
	// Recompute the address from the bytes rather than trusting the
	// header: content addressing means a store can never hand us a body
	// that disagrees with its ETag.
	return body, metrics.AddressBytes(body), true
}

func (st *httpStore) Publish(key string, body []byte, address string) {
	req, err := http.NewRequest(http.MethodPut, st.base+"/cluster/artifacts/"+key, bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := st.client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
