package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lotuseater/internal/metrics"
	"lotuseater/internal/scenario"
	"lotuseater/internal/serve"
)

// tinyFixed is a sub-second coding sweep: three points, twelve replicates
// each — enough windows that two workers genuinely share a job.
const tinyFixed = `{
  "name": "tiny-fixed",
  "substrate": "coding",
  "nodes": 24,
  "rounds": 8,
  "replicates": 12,
  "adversary": {"kind": "ideal", "fraction": 0.2, "satiateFraction": 0.5},
  "sweep": {"axis": "adversary.fraction", "from": 0, "to": 0.4, "points": 3},
  "params": {"symbols": 4, "payload": 8}
}`

// tinyChurned is the fixed sweep with a population block: rate-driven
// churn plus Zipf demand, so lifecycle events and weighted picks cross the
// wire too — the cluster must replay them from the replicate streams
// exactly as a single process does.
const tinyChurned = `{
  "name": "tiny-churned",
  "substrate": "coding",
  "nodes": 24,
  "rounds": 8,
  "replicates": 12,
  "adversary": {"kind": "ideal", "fraction": 0.2, "satiateFraction": 0.5},
  "sweep": {"axis": "adversary.fraction", "from": 0, "to": 0.4, "points": 3},
  "population": {
    "churn": {"leaveRate": 0.03, "joinRate": 0.1},
    "popularity": {"kind": "zipf", "exponent": 1.1}
  },
  "params": {"symbols": 4, "payload": 8}
}`

// tinyAdaptive is the same sweep under a precision plan, so points draw
// waves until their CI target is met — the work-stealing path.
const tinyAdaptive = `{
  "name": "tiny-adaptive",
  "substrate": "coding",
  "nodes": 24,
  "rounds": 8,
  "adversary": {"kind": "ideal", "fraction": 0.2, "satiateFraction": 0.5},
  "sweep": {"axis": "adversary.fraction", "from": 0, "to": 0.4, "points": 3},
  "precision": {"halfWidth": 0.02, "minReps": 4, "maxReps": 20, "batch": 4},
  "params": {"symbols": 4, "payload": 8}
}`

func decodeSpec(t *testing.T, raw string) *scenario.Spec {
	t.Helper()
	spec, err := scenario.Decode([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// localArtifact runs the spec in-process and returns its canonical bytes —
// the reference every cluster run must reproduce byte for byte.
func localArtifact(t *testing.T, raw string, seed uint64) []byte {
	t.Helper()
	a, err := scenario.Run(decodeSpec(t, raw), seed, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	body, err := a.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// testCluster is a coordinator plus workers on loopback HTTP.
type testCluster struct {
	coord    *Coordinator
	coordTS  *httptest.Server
	workers  []*Worker
	workerTS []*httptest.Server
	closed   bool
}

// mustCoordinator builds a coordinator, failing the test on error.
func mustCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	return c
}

// startCluster boots a coordinator and n announced workers, waiting until
// the registry sees them all. nodeWorkers bounds each node's in-flight
// replicates on the shared pool.
func startCluster(t *testing.T, n, nodeWorkers int) *testCluster {
	t.Helper()
	coord := mustCoordinator(t, Config{
		Serve:        serve.Config{Workers: nodeWorkers},
		StallTimeout: 10 * time.Second,
	})
	tc := &testCluster{coord: coord, coordTS: httptest.NewServer(coord)}
	t.Cleanup(func() { tc.close(t) })
	for i := 0; i < n; i++ {
		w, err := NewWorker(WorkerConfig{
			Serve:            serve.Config{Workers: nodeWorkers},
			Coordinator:      tc.coordTS.URL,
			AnnounceInterval: 25 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(w)
		w.Announce(ts.URL)
		tc.workers = append(tc.workers, w)
		tc.workerTS = append(tc.workerTS, ts)
	}
	waitForWorkers(t, tc.coordTS.URL, n)
	return tc
}

func (tc *testCluster) close(t *testing.T) {
	t.Helper()
	if tc.closed {
		return
	}
	tc.closed = true
	for i, w := range tc.workers {
		tc.workerTS[i].Close()
		if err := w.Close(); err != nil {
			t.Errorf("worker %d close: %v", i, err)
		}
	}
	tc.coordTS.Close()
	if err := tc.coord.Close(); err != nil {
		t.Errorf("coordinator close: %v", err)
	}
}

func waitForWorkers(t *testing.T, coordURL string, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var st clusterStatus
		code, _, data := httpGet(t, coordURL+"/cluster/status")
		if code != http.StatusOK {
			t.Fatalf("GET /cluster/status: %d: %s", code, data)
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("status body: %v\n%s", err, data)
		}
		if len(st.Workers) >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("coordinator never saw %d workers", n)
}

func httpGet(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// submitResult mirrors serve's submit response shape.
type submitResult struct {
	Key     string `json:"key"`
	Status  string `json:"status"`
	Cached  bool   `json:"cached"`
	Address string `json:"address"`
}

func submitSpec(t *testing.T, base, rawSpec string, seed uint64) submitResult {
	t.Helper()
	body := fmt.Sprintf(`{"spec": %s, "seed": %d}`, rawSpec, seed)
	resp, err := http.Post(base+"/experiments", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /experiments: %d: %s", resp.StatusCode, data)
	}
	var out submitResult
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("submit response: %v\n%s", err, data)
	}
	return out
}

func waitJobDone(t *testing.T, base, key string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		code, _, data := httpGet(t, base+"/jobs/"+key)
		if code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: %d: %s", key, code, data)
		}
		var st struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("job status: %v\n%s", err, data)
		}
		switch st.Status {
		case "done":
			return
		case "failed":
			t.Fatalf("job %s failed: %s", key, st.Error)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never finished", key)
}

func fetchResult(t *testing.T, base, key string) ([]byte, string) {
	t.Helper()
	code, hdr, data := httpGet(t, base+"/results/"+key)
	if code != http.StatusOK {
		t.Fatalf("GET /results/%s: %d: %s", key, code, data)
	}
	return data, strings.Trim(hdr.Get("ETag"), `"`)
}

// TestClusterMatchesSingleProcess is the acceptance pin: a coordinator
// plus two loopback workers produce byte-identical artifacts (and hence
// identical content addresses) to a single-process run, for a fixed and an
// adaptive sweep, under per-node pool widths 1 and 8 — and a resubmission
// is a cache hit that runs nothing.
func TestClusterMatchesSingleProcess(t *testing.T) {
	// The registry's churn acceptance scenario rides along verbatim: the
	// same spec must answer identically local, through the serve cache, and
	// across a two-worker cluster.
	churnSpec, ok := scenario.Get("gossip-trade-churn")
	if !ok {
		t.Fatal("gossip-trade-churn missing from the registry")
	}
	churnSpec.Sweep.Points = 2
	churnSpec.Replicates = 2
	churnJSON, err := churnSpec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		spec string
		seed uint64
	}{
		{"fixed", tinyFixed, 5},
		{"churned", tinyChurned, 5},
		{"gossip-trade-churn", string(churnJSON), 5},
		{"adaptive", tinyAdaptive, 5},
	}
	for _, c := range cases {
		for _, nodeWorkers := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/poolWidth=%d", c.name, nodeWorkers), func(t *testing.T) {
				want := localArtifact(t, c.spec, c.seed)
				wantAddr := metrics.AddressBytes(want)

				tc := startCluster(t, 2, nodeWorkers)
				first := submitSpec(t, tc.coordTS.URL, c.spec, c.seed)
				if first.Cached {
					t.Fatalf("fresh cluster reported a cache hit")
				}
				waitJobDone(t, tc.coordTS.URL, first.Key)
				got, etag := fetchResult(t, tc.coordTS.URL, first.Key)
				if string(got) != string(want) {
					t.Fatalf("cluster artifact differs from single-process run:\n%s\nvs\n%s", got, want)
				}
				if etag != wantAddr {
					t.Fatalf("cluster ETag %s, single-process address %s", etag, wantAddr)
				}

				again := submitSpec(t, tc.coordTS.URL, c.spec, c.seed)
				if !again.Cached || again.Address != wantAddr {
					t.Fatalf("resubmission missed the cache: %+v", again)
				}
				if runs := tc.coord.Server().Runs(); runs != 1 {
					t.Fatalf("coordinator executed %d runs, want exactly 1", runs)
				}
			})
		}
	}
}

// TestClusterSharedArtifactStore pins the federation: a result computed
// through the coordinator is a cache hit on any worker (remote lookup
// fills the local cache), and a result computed locally on a worker is
// published so the coordinator — and through it every other node — answers
// it without rerunning.
func TestClusterSharedArtifactStore(t *testing.T) {
	tc := startCluster(t, 2, 0)

	// Coordinator-side run, then hit from a worker.
	first := submitSpec(t, tc.coordTS.URL, tinyFixed, 5)
	waitJobDone(t, tc.coordTS.URL, first.Key)
	coordBody, _ := fetchResult(t, tc.coordTS.URL, first.Key)

	viaWorker := submitSpec(t, tc.workerTS[0].URL, tinyFixed, 5)
	if !viaWorker.Cached {
		t.Fatalf("worker submit missed the shared store: %+v", viaWorker)
	}
	if runs := tc.workers[0].Server().Runs(); runs != 0 {
		t.Fatalf("worker recomputed a stored result (%d runs)", runs)
	}
	workerBody, _ := fetchResult(t, tc.workerTS[0].URL, first.Key)
	if string(workerBody) != string(coordBody) {
		t.Fatalf("worker served different bytes than the coordinator")
	}

	// Worker-side local run publishes; the coordinator then has it.
	local := submitSpec(t, tc.workerTS[1].URL, tinyFixed, 6)
	waitJobDone(t, tc.workerTS[1].URL, local.Key)
	coordRuns := tc.coord.Server().Runs()
	viaCoord := submitSpec(t, tc.coordTS.URL, tinyFixed, 6)
	if !viaCoord.Cached {
		t.Fatalf("published artifact not in the coordinator store: %+v", viaCoord)
	}
	if got := tc.coord.Server().Runs(); got != coordRuns {
		t.Fatalf("coordinator reran a published result (%d -> %d runs)", coordRuns, got)
	}
}

// TestCoordinatorWithoutWorkersRunsLocally: an empty fleet degrades to a
// plain single-process server, bit-identically.
func TestCoordinatorWithoutWorkersRunsLocally(t *testing.T) {
	coord := mustCoordinator(t, Config{})
	ts := httptest.NewServer(coord)
	defer func() {
		ts.Close()
		coord.Close()
	}()
	want := localArtifact(t, tinyFixed, 7)
	resp := submitSpec(t, ts.URL, tinyFixed, 7)
	waitJobDone(t, ts.URL, resp.Key)
	got, _ := fetchResult(t, ts.URL, resp.Key)
	if string(got) != string(want) {
		t.Fatalf("workerless coordinator diverged from local run")
	}
}

// TestDrainingWorkerRefusesUnits: after Drain a worker answers units 503 —
// the transport-class signal that makes the coordinator reassign the unit
// rather than fail the job.
func TestDrainingWorkerRefusesUnits(t *testing.T) {
	w, err := NewWorker(WorkerConfig{Coordinator: "http://127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(w)
	defer ts.Close()
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/cluster/run", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining worker answered %d, want 503", resp.StatusCode)
	}
}

// TestWorkerExecutionErrorFailsJob: a unit whose simulation itself errors
// (bad spec reaching the worker) is an execution failure — reported in
// band, job failed, no retry storm.
func TestWorkerExecutionErrorFailsJob(t *testing.T) {
	w, err := NewWorker(WorkerConfig{Coordinator: "http://127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(w)
	defer func() {
		ts.Close()
		w.Close()
	}()
	body := `{"pointSpec": {"name":"x","substrate":"no-such-substrate"}, "seed": 1, "start": 0, "n": 2}`
	resp, err := http.Post(ts.URL+"/cluster/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("execution error answered %d, want 200 + Error field", resp.StatusCode)
	}
	var out unitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Error == "" {
		t.Fatalf("bad unit produced no error")
	}
}
