package cluster

import (
	"fmt"
	"math"
	"sync"

	"lotuseater/internal/metrics"
	"lotuseater/internal/scenario"
)

// unit is one schedulable window: replicates [start, start+n) of sweep
// point `point`. attempts counts dispatches; a unit whose worker dies is
// requeued with attempts+1 and reassigned, up to the schedule's cap.
type unit struct {
	point    int
	start, n int
	attempts int
}

// pointState is one sweep point's in-progress fold on the coordinator.
type pointState struct {
	x    float64
	spec []byte // canonical point-spec JSON, what workers execute

	st       *metrics.Stream
	next     int               // next global replicate index to fold (fixed runs)
	buffered map[int][]float64 // out-of-order windows keyed by start (fixed runs)

	reps     int     // replicates folded (adaptive runs)
	hw       float64 // current Student-t half-width (adaptive runs)
	inflight bool    // a wave is dispatched or queued for retry (adaptive runs)
	resolved bool
}

// schedule is one job's scheduler state: the pending unit queue, per-point
// fold state, and the worker dispatch loops attached to it. Worker loops
// pull units with next (work-stealing — for adaptive plans pick hands out
// the next wave of the widest-CI point), deliver results with complete,
// and return failed dispatches with requeue. All observations fold into
// per-point streams in global replicate order, whatever order windows
// arrive in, which is what keeps the assembled artifact byte-identical to
// a local run.
type schedule struct {
	ep          scenario.ExecPlan
	seed        uint64
	opts        scenario.RunOptions
	maxAttempts int
	onSteal     func() // metrics hook: one adaptive wave handed out (may be nil)

	mu          sync.Mutex
	cond        *sync.Cond
	points      []*pointState
	pending     []unit          // fixed windows, and retried adaptive waves
	loops       map[string]bool // worker URLs with a live dispatch loop
	outstanding int             // units dispatched and not yet completed/requeued
	resolvedPts int
	doneReps    int
	estimate    int // progress total: exact for fixed, shrinking cap for adaptive
	failed      error
	finished    bool
}

func newSchedule(ep scenario.ExecPlan, points []*pointState, seed uint64, opts scenario.RunOptions, unitReps, maxAttempts int) *schedule {
	sc := &schedule{
		ep:          ep,
		seed:        seed,
		opts:        opts,
		maxAttempts: maxAttempts,
		points:      points,
		loops:       make(map[string]bool),
	}
	sc.cond = sync.NewCond(&sc.mu)
	if ep.Adaptive {
		sc.estimate = len(points) * ep.Plan.MaxReps
	} else {
		sc.estimate = len(points) * ep.Replicates
		for pi := range points {
			for start := 0; start < ep.Replicates; start += unitReps {
				n := unitReps
				if rest := ep.Replicates - start; n > rest {
					n = rest
				}
				sc.pending = append(sc.pending, unit{point: pi, start: start, n: n})
			}
		}
	}
	return sc
}

// next blocks until a unit is available and returns it, or returns false
// when the job has finished or failed — the dispatch loop's exit signal.
func (sc *schedule) next() (unit, bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for {
		if sc.finished || sc.failed != nil {
			return unit{}, false
		}
		if u, ok := sc.pickLocked(); ok {
			sc.outstanding++
			return u, true
		}
		sc.cond.Wait()
	}
}

// pickLocked chooses the next unit. Retries first (a requeued unit is the
// critical path — some point is blocked on it); then, under an adaptive
// plan, the work-stealing rule: open the next wave of the unresolved point
// with the widest current confidence interval, counting points with no
// variance estimate yet as infinitely wide so every point gets its opening
// wave before any point gets a third. At most one wave per point is open
// at a time, so each point's observations arrive — and fold — in order.
func (sc *schedule) pickLocked() (unit, bool) {
	if len(sc.pending) > 0 {
		u := sc.pending[0]
		sc.pending = sc.pending[1:]
		return u, true
	}
	if !sc.ep.Adaptive {
		return unit{}, false
	}
	best, bestHW := -1, 0.0
	for pi, pt := range sc.points {
		if pt.resolved || pt.inflight {
			continue
		}
		hw := pt.hw
		if pt.reps < 2 {
			hw = math.Inf(1)
		}
		if best == -1 || hw > bestHW {
			best, bestHW = pi, hw
		}
	}
	if best == -1 {
		return unit{}, false
	}
	pt := sc.points[best]
	wave := sc.ep.NextWave(pt.reps)
	if pt.reps == 0 {
		wave = sc.ep.FirstWave()
	}
	if wave <= 0 {
		return unit{}, false
	}
	pt.inflight = true
	if sc.onSteal != nil {
		sc.onSteal()
	}
	return unit{point: best, start: pt.reps, n: wave}, true
}

// requeue returns a unit whose dispatch failed (worker died, transport
// error) to the queue for reassignment, failing the whole job once the
// unit has exhausted its attempts — a unit that kills every worker it
// visits is a poison pill, not bad luck.
func (sc *schedule) requeue(u unit, cause error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	defer sc.cond.Broadcast()
	sc.outstanding--
	u.attempts++
	if u.attempts >= sc.maxAttempts {
		sc.failLocked(fmt.Errorf("cluster: unit point %d replicates [%d,%d) failed %d dispatch attempts, last: %w",
			u.point, u.start, u.start+u.n, u.attempts, cause))
		return
	}
	sc.pending = append(sc.pending, u)
}

// complete delivers a finished unit. The worker's partial accumulator
// state must equal a re-fold of its own observations bit for bit — the
// cross-check that catches version skew or corruption before it can touch
// the artifact. Observations fold into the point's stream only when
// contiguous with what has already folded; earlier-arriving later windows
// buffer until the gap fills.
func (sc *schedule) complete(u unit, obs []float64, workerAcc metrics.Accumulator) {
	var check metrics.Accumulator
	for _, y := range obs {
		check.Add(y)
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	defer sc.cond.Broadcast()
	sc.outstanding--
	if sc.finished || sc.failed != nil {
		return
	}
	if len(obs) != u.n || check.State() != workerAcc.State() {
		sc.failLocked(fmt.Errorf("cluster: unit point %d replicates [%d,%d): worker returned %d observations whose partial state disagrees with their re-fold — version skew or corruption",
			u.point, u.start, u.start+u.n, len(obs)))
		return
	}
	pt := sc.points[u.point]
	if sc.ep.Adaptive {
		sc.completeWaveLocked(u, pt, obs)
	} else {
		sc.completeWindowLocked(u, pt, obs)
	}
	if sc.resolvedPts == len(sc.points) {
		sc.finished = true
	}
}

func (sc *schedule) completeWindowLocked(u unit, pt *pointState, obs []float64) {
	pt.buffered[u.start] = obs
	for {
		w, ok := pt.buffered[pt.next]
		if !ok {
			break
		}
		delete(pt.buffered, pt.next)
		for _, y := range w {
			pt.st.Add(y)
		}
		pt.next += len(w)
		sc.doneReps += len(w)
	}
	if sc.opts.Progress != nil {
		sc.opts.Progress(sc.doneReps, sc.estimate)
	}
	if pt.next >= sc.ep.Replicates && !pt.resolved {
		pt.resolved = true
		sc.resolvedPts++
	}
}

// completeWaveLocked folds an adaptive wave and consults the stopping rule
// at exactly the boundary adaptive.Fold would: same in-order accumulator,
// same half-width, same verdict — so the distributed run settles every
// point at the identical replicate count.
func (sc *schedule) completeWaveLocked(u unit, pt *pointState, obs []float64) {
	if u.start != pt.reps {
		sc.failLocked(fmt.Errorf("cluster: adaptive point %d: wave starts at %d, expected %d — scheduler invariant broken", u.point, u.start, pt.reps))
		return
	}
	for _, y := range obs {
		pt.st.Add(y)
	}
	pt.reps += u.n
	sc.doneReps += u.n
	pt.hw = pt.st.Acc.HalfWidth(sc.ep.Plan.CI.Confidence)
	met := sc.ep.Plan.Met(&pt.st.Acc, pt.hw)
	pt.inflight = false
	if sc.opts.PointProgress != nil {
		sc.opts.PointProgress(u.point, pt.reps, pt.hw, met)
	}
	if met || pt.reps >= sc.ep.Plan.MaxReps {
		pt.resolved = true
		sc.resolvedPts++
		sc.estimate -= sc.ep.Plan.MaxReps - pt.reps
	}
	if sc.opts.Progress != nil {
		sc.opts.Progress(sc.doneReps, sc.estimate)
	}
}

// failWith aborts the job: pending units drop, dispatch loops exit at
// their next pull, and wait returns the first failure.
func (sc *schedule) failWith(err error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.failLocked(err)
	sc.cond.Broadcast()
}

func (sc *schedule) failLocked(err error) {
	if sc.failed == nil && !sc.finished {
		sc.failed = err
	}
}

// wait blocks until the job finishes or fails, then until every dispatch
// loop has detached (so a returning straggler can't touch a dead job), and
// returns the failure, if any.
func (sc *schedule) wait() error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for !sc.finished && sc.failed == nil {
		sc.cond.Wait()
	}
	for len(sc.loops) > 0 {
		sc.cond.Wait()
	}
	return sc.failed
}

// addLoop registers a dispatch loop for a worker URL; false when the job
// is over or the worker already has one.
func (sc *schedule) addLoop(url string) bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.finished || sc.failed != nil || sc.loops[url] {
		return false
	}
	sc.loops[url] = true
	return true
}

func (sc *schedule) removeLoop(url string) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	delete(sc.loops, url)
	sc.cond.Broadcast()
}

func (sc *schedule) loopCount() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return len(sc.loops)
}

// working reports whether the job still needs workers.
func (sc *schedule) working() bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return !sc.finished && sc.failed == nil
}

// results renders the finished schedule as per-point results for
// scenario.Assemble, in point order.
func (sc *schedule) results() []scenario.PointResult {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	out := make([]scenario.PointResult, len(sc.points))
	for i, pt := range sc.points {
		out[i] = scenario.PointResult{X: pt.x, Stream: pt.st, Reps: pt.reps, HalfWidth: pt.hw}
	}
	return out
}
