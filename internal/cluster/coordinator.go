package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"lotuseater/internal/metrics"
	"lotuseater/internal/scenario"
	"lotuseater/internal/serve"
)

// Config tunes a Coordinator. The zero value gets sensible defaults.
type Config struct {
	// Serve configures the embedded experiment service (cache bytes, queue
	// depth, version). Its Run hook is owned by the coordinator — the
	// distributed runner is installed over whatever is set here.
	Serve serve.Config
	// UnitReps is the fixed-run window size in replicates (0 = auto: the
	// per-point budget split ~4 ways per registered worker, clamped to
	// [1, 256]). Scheduling granularity only — artifact bytes never depend
	// on it.
	UnitReps int
	// MaxAttempts bounds how many times one unit may be dispatched before
	// the job fails (0 = 8). Retries absorb worker deaths; the cap stops a
	// unit that kills every worker it visits.
	MaxAttempts int
	// StallTimeout is how long a job may sit with work pending and no live
	// workers before it fails (0 = 30s). Workers joining (or re-joining)
	// within the window pick the job up.
	StallTimeout time.Duration
	// UnitTimeout bounds one unit's round trip (0 = 10m). A worker that
	// neither answers nor hangs up within it is treated as dead: the unit
	// reassigns and the worker is dropped until its next announce.
	UnitTimeout time.Duration
	// Client issues worker and join HTTP requests (nil =
	// http.DefaultClient). Unit execution can legitimately take minutes, so
	// prefer a client without a global timeout.
	Client *http.Client
}

// workerInfo is one registered worker.
type workerInfo struct {
	url      string
	units    int64
	lastSeen time.Time
}

// Coordinator is the cluster's front: a full experiment service (every
// serve route — submit, jobs, results, scenarios, healthz — answers here)
// whose runner shards work across registered workers, plus the cluster
// control surface (/cluster/join, /cluster/artifacts/{key},
// /cluster/status). With no workers registered it degrades to a plain
// single-process server: jobs run locally, bit-identically.
type Coordinator struct {
	cfg     Config
	srv     *serve.Server
	mux     *http.ServeMux
	handler http.Handler // mux behind the embedded server's instrumentation
	client  *http.Client

	mu      sync.Mutex
	workers map[string]*workerInfo
	active  *schedule // the job currently being dispatched, if any
}

// NewCoordinator builds a coordinator and starts its job executor. The only
// error source is the embedded service (an unusable -store-dir).
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = 30 * time.Second
	}
	if cfg.UnitTimeout <= 0 {
		cfg.UnitTimeout = 10 * time.Minute
	}
	c := &Coordinator{
		cfg:     cfg,
		client:  cfg.Client,
		mux:     http.NewServeMux(),
		workers: make(map[string]*workerInfo),
	}
	if c.client == nil {
		c.client = http.DefaultClient
	}
	scfg := cfg.Serve
	scfg.Run = c.distributedRun
	srv, err := serve.New(scfg)
	if err != nil {
		return nil, err
	}
	c.srv = srv
	c.mux.HandleFunc("POST /cluster/join", c.handleJoin)
	c.mux.HandleFunc("GET /cluster/artifacts/{key}", c.handleArtifactGet)
	c.mux.HandleFunc("PUT /cluster/artifacts/{key}", c.handleArtifactPut)
	c.mux.HandleFunc("GET /cluster/status", c.handleStatus)
	// Fall back to the embedded service's raw routes, then wrap the whole
	// tree in its instrumentation once — every request (cluster and
	// experiment alike) is counted exactly once.
	c.mux.Handle("/", c.srv.Routes())
	c.handler = c.srv.Observe(c.mux)
	return c, nil
}

// ServeHTTP dispatches to the cluster and experiment routes.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.handler.ServeHTTP(w, r) }

// Server exposes the embedded experiment service (tests and the CLI reach
// cache statistics and run counts through it).
func (c *Coordinator) Server() *serve.Server { return c.srv }

// Close stops the embedded service; a distributed run in flight completes
// first (its workers keep serving it). Idempotent.
func (c *Coordinator) Close() error { return c.srv.Close() }

// Drain is the graceful SIGTERM path: stop admitting, finish the running
// job, fail queued jobs with a drain status.
func (c *Coordinator) Drain() error { return c.srv.Drain() }

// WorkerURLs returns the registered workers' base URLs, sorted.
func (c *Coordinator) WorkerURLs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	urls := make([]string, 0, len(c.workers))
	for u := range c.workers {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	return urls
}

// distributedRun is the serve.RunFunc installed on the embedded service:
// decompose, dispatch, reassemble. Workers execute windows; this side
// folds their observations in global replicate order and Assembles —
// byte-identical to scenario.Run on the same spec and seed.
func (c *Coordinator) distributedRun(spec *scenario.Spec, seed uint64, opts scenario.RunOptions) (*metrics.Artifact, error) {
	c.mu.Lock()
	nworkers := len(c.workers)
	c.mu.Unlock()
	if nworkers == 0 {
		// A coordinator with no fleet is just a server; run locally rather
		// than holding the job hostage to a worker that may never come.
		return scenario.Run(spec, seed, opts)
	}

	ep := scenario.PlanOf(spec, opts)
	points := make([]*pointState, len(ep.Xs))
	for i, x := range ep.Xs {
		pt, err := spec.PointSpec(x)
		if err != nil {
			return nil, err
		}
		canon, err := pt.CanonicalJSON()
		if err != nil {
			return nil, err
		}
		points[i] = &pointState{x: x, spec: canon, st: metrics.NewStream(), buffered: make(map[int][]float64)}
	}
	sc := newSchedule(ep, points, seed, opts, c.unitReps(ep, nworkers), c.cfg.MaxAttempts)
	sc.onSteal = c.srv.Metrics().UnitStolen

	c.mu.Lock()
	c.active = sc
	urls := make([]string, 0, len(c.workers))
	for u := range c.workers {
		urls = append(urls, u)
	}
	c.mu.Unlock()
	sort.Strings(urls)
	for _, u := range urls {
		c.startLoop(u, sc)
	}
	stop := make(chan struct{})
	go c.monitor(sc, stop)

	err := sc.wait()
	close(stop)
	c.mu.Lock()
	c.active = nil
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return scenario.Assemble(spec, opts, sc.results())
}

// unitReps sizes fixed-run windows: explicit config, or the per-point
// budget split about four ways per worker so the queue stays deep enough
// to rebalance, clamped to [1, 256].
func (c *Coordinator) unitReps(ep scenario.ExecPlan, nworkers int) int {
	if c.cfg.UnitReps > 0 {
		return c.cfg.UnitReps
	}
	per := ep.Replicates / (4 * nworkers)
	if per < 1 {
		per = 1
	}
	if per > 256 {
		per = 256
	}
	return per
}

// startLoop attaches a dispatch loop for worker url to the schedule, if it
// doesn't have one already.
func (c *Coordinator) startLoop(url string, sc *schedule) {
	if sc.addLoop(url) {
		go c.workerLoop(url, sc)
	}
}

// workerLoop is one worker's dispatcher: pull the next unit (work-stealing
// happens inside next), execute it remotely, deliver the result. A
// transport failure requeues the unit for someone else, drops the worker
// from the registry (its announce loop re-adds it when it recovers), and
// exits. An execution error — the worker ran the unit and the simulation
// itself failed — fails the job: every worker would fail it the same way.
func (c *Coordinator) workerLoop(url string, sc *schedule) {
	defer sc.removeLoop(url)
	for {
		u, ok := sc.next()
		if !ok {
			return
		}
		c.srv.Metrics().UnitDispatched()
		resp, err := c.postUnit(url, sc, u)
		if err != nil {
			c.srv.Metrics().UnitRetried()
			sc.requeue(u, err)
			c.dropWorker(url)
			return
		}
		if resp.Error != "" {
			sc.failWith(fmt.Errorf("cluster: worker %s: %s", url, resp.Error))
			return
		}
		sc.complete(u, resp.observations(), resp.Acc.Accumulator())
		c.noteUnit(url)
	}
}

// postUnit sends one unit to a worker and decodes the outcome. Any
// transport-level problem — connection refused, mid-body death, a non-200
// status such as a draining worker's 503 — reports as an error, which the
// caller treats as "this worker is gone", never as a job failure.
func (c *Coordinator) postUnit(workerURL string, sc *schedule, u unit) (*unitResponse, error) {
	body, err := json.Marshal(unitRequest{
		PointSpec: sc.points[u.point].spec,
		Seed:      sc.seed,
		Start:     u.start,
		N:         u.n,
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.UnitTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, workerURL+"/cluster/run", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("cluster: worker %s answered %s", workerURL, resp.Status)
	}
	var out unitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("cluster: decoding worker %s response: %w", workerURL, err)
	}
	return &out, nil
}

func (c *Coordinator) dropWorker(url string) {
	c.mu.Lock()
	delete(c.workers, url)
	n := len(c.workers)
	c.mu.Unlock()
	c.srv.Metrics().SetWorkers(n)
}

func (c *Coordinator) noteUnit(url string) {
	c.mu.Lock()
	if w, ok := c.workers[url]; ok {
		w.units++
	}
	c.mu.Unlock()
}

// monitor fails a job that has sat with work pending and no live dispatch
// loops for the stall timeout — every worker died and none re-joined, so
// waiting longer only hides the outage from the client.
func (c *Coordinator) monitor(sc *schedule, stop <-chan struct{}) {
	poll := c.cfg.StallTimeout / 10
	if poll < 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	var stalled time.Duration
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if sc.working() && sc.loopCount() == 0 {
				stalled += poll
				if stalled >= c.cfg.StallTimeout {
					sc.failWith(fmt.Errorf("cluster: no live workers for %s; job abandoned (workers can re-join and the client can resubmit)", c.cfg.StallTimeout))
					return
				}
			} else {
				stalled = 0
			}
		}
	}
}

// handleJoin registers (or refreshes) a worker. Joins double as
// heartbeats; a worker announced mid-job is attached to the running
// schedule immediately — that is how a recovered worker resumes stealing.
func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	if err := dec.Decode(&req); err != nil || req.URL == "" {
		http.Error(w, `{"error":"cluster: join needs {\"url\":...}"}`, http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	info, ok := c.workers[req.URL]
	if !ok {
		info = &workerInfo{url: req.URL}
		c.workers[req.URL] = info
	}
	info.lastSeen = time.Now()
	n := len(c.workers)
	sc := c.active
	c.mu.Unlock()
	c.srv.Metrics().SetWorkers(n)
	if sc != nil {
		c.startLoop(req.URL, sc)
	}
	w.WriteHeader(http.StatusNoContent)
}

// maxArtifactBytes bounds a published artifact body; canonical artifact
// JSON is kilobytes, hostile bodies are not.
const maxArtifactBytes = 64 << 20

func (c *Coordinator) handleArtifactGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	body, address, ok := c.srv.CachedResult(key)
	if !ok {
		http.Error(w, `{"error":"artifact not stored"}`, http.StatusNotFound)
		return
	}
	w.Header().Set("X-Artifact-Address", address)
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

func (c *Coordinator) handleArtifactPut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxArtifactBytes))
	if err != nil {
		http.Error(w, `{"error":"cluster: reading artifact body"}`, http.StatusBadRequest)
		return
	}
	if len(body) == 0 {
		http.Error(w, `{"error":"cluster: empty artifact body"}`, http.StatusBadRequest)
		return
	}
	c.srv.StoreResult(key, body)
	w.WriteHeader(http.StatusNoContent)
}

// statusWorker is one row of GET /cluster/status.
type statusWorker struct {
	URL       string    `json:"url"`
	UnitsDone int64     `json:"unitsDone"`
	LastSeen  time.Time `json:"lastSeen"`
}

// clusterStatus is the body of GET /cluster/status.
type clusterStatus struct {
	Workers   []statusWorker `json:"workers"`
	ActiveJob bool           `json:"activeJob"`
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	st := clusterStatus{ActiveJob: c.active != nil, Workers: make([]statusWorker, 0, len(c.workers))}
	for _, info := range c.workers {
		st.Workers = append(st.Workers, statusWorker{URL: info.url, UnitsDone: info.units, LastSeen: info.lastSeen})
	}
	c.mu.Unlock()
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].URL < st.Workers[j].URL })
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}
