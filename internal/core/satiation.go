// Package core makes the paper's conceptual contribution executable: the
// definitions of satiation and satiation-compatibility (Section 3), the
// lotus-eater attacker abstraction, and Observation 3.1 as a runnable
// harness.
//
// The paper models a node's state as, in part, a set of labeled tokens, and
// defines a monotone satiation function sat(i, t, T') that is true when node
// i needs no more tokens at time t given that it holds T'. A protocol is
// *satiation-compatible* when nodes in a satiated state provide no service.
// Observation 3.1 then states: under a satiation-compatible protocol, an
// attacker that provides tokens sufficiently rapidly prevents a node from
// ever providing service.
package core

import (
	"fmt"
)

// Token is a labeled token from the paper's token set T. Tokens are opaque
// identifiers; subsystems map their own units (gossip updates, file pieces,
// scrip satiation states, coded packets) onto them.
type Token uint64

// TokenSet is a set of tokens held by a node.
type TokenSet map[Token]struct{}

// NewTokenSet returns a set holding the given tokens.
func NewTokenSet(tokens ...Token) TokenSet {
	s := make(TokenSet, len(tokens))
	for _, t := range tokens {
		s[t] = struct{}{}
	}
	return s
}

// Has reports membership.
func (s TokenSet) Has(t Token) bool {
	_, ok := s[t]
	return ok
}

// Add inserts t and reports whether it was newly added.
func (s TokenSet) Add(t Token) bool {
	if s.Has(t) {
		return false
	}
	s[t] = struct{}{}
	return true
}

// Union adds all tokens of other into s and returns the number added.
func (s TokenSet) Union(other TokenSet) int {
	added := 0
	for t := range other {
		if s.Add(t) {
			added++
		}
	}
	return added
}

// Clone returns an independent copy.
func (s TokenSet) Clone() TokenSet {
	out := make(TokenSet, len(s))
	for t := range s {
		out[t] = struct{}{}
	}
	return out
}

// Len returns the cardinality of the set.
func (s TokenSet) Len() int { return len(s) }

// ContainsAll reports whether s is a superset of other.
func (s TokenSet) ContainsAll(other TokenSet) bool {
	for t := range other {
		if !s.Has(t) {
			return false
		}
	}
	return true
}

// Satiation is the paper's sat function restricted to a single node: it maps
// a time and a held token set to whether the node needs nothing more. A
// Satiation must be monotone in the token set — gaining tokens can only move
// a node toward satiation — and implementations should also be monotone in
// time for fixed tokens only if the underlying need expires.
type Satiation func(time int, held TokenSet) bool

// CompleteSetSatiation returns the sat function of the paper's simple model:
// a node is satiated iff it holds every token in universe (sat(i,t,T') ⇔
// T' = T).
func CompleteSetSatiation(universe TokenSet) Satiation {
	target := universe.Clone()
	return func(_ int, held TokenSet) bool {
		return held.ContainsAll(target)
	}
}

// ThresholdSatiation returns a sat function that is true once the node holds
// at least k tokens. This models scrip-like systems where any k "units"
// satiate (the set of relevant tokens is effectively changed, Section 4).
func ThresholdSatiation(k int) Satiation {
	return func(_ int, held TokenSet) bool {
		return held.Len() >= k
	}
}

// RankSatiation returns a sat function over coded tokens: the node is
// satiated once rank(held) — as computed by rankFn — reaches k. Used by the
// network-coding defense, where any k independent combinations suffice.
func RankSatiation(k int, rankFn func(TokenSet) int) Satiation {
	return func(_ int, held TokenSet) bool {
		return rankFn(held) >= k
	}
}

// CheckMonotone exercises sat on a chain of growing token sets and returns
// an error if satiation ever flips from true back to false as tokens are
// added — a violation of the paper's monotonicity requirement.
func CheckMonotone(sat Satiation, time int, chain []TokenSet) error {
	was := false
	for i, held := range chain {
		if i > 0 && !held.ContainsAll(chain[i-1]) {
			return fmt.Errorf("core: chain element %d is not a superset of element %d", i, i-1)
		}
		is := sat(time, held)
		if was && !is {
			return fmt.Errorf("core: satiation not monotone: satiated with %d tokens, unsatiated with %d", chain[i-1].Len(), held.Len())
		}
		was = is
	}
	return nil
}
