package core

import (
	"errors"
	"fmt"
)

// NodeState is the view of a single node's state that the satiation
// framework needs: what it holds and how it would respond to a service
// request right now.
type NodeState struct {
	// Time is the node's current round.
	Time int
	// Held is the node's current token set.
	Held TokenSet
}

// Protocol abstracts a node-local protocol for satiation analysis. The
// framework only needs two observables: whether a state is satiated, and how
// much service the protocol offers from that state.
type Protocol interface {
	// Satiated reports whether the node is satiated in state s.
	Satiated(s NodeState) bool
	// ServiceOffered returns how many units of service (tokens uploaded,
	// exchanges answered, ...) the protocol would provide to a peer
	// requesting service in state s.
	ServiceOffered(s NodeState) int
}

// ErrNotSatiationCompatible is returned by CheckSatiationCompatible when a
// satiated state still offers service.
var ErrNotSatiationCompatible = errors.New("core: protocol offers service while satiated")

// CheckSatiationCompatible verifies that p offers zero service in every
// satiated state among the provided samples. It returns nil if no satiated
// sample offers service, ErrNotSatiationCompatible (wrapped, with detail)
// otherwise.
//
// Satiation-compatibility is the precondition of Observation 3.1: protocols
// that keep serving while satiated (a > 0 in the paper's model) are not
// satiation-compatible and resist the lotus-eater attack.
func CheckSatiationCompatible(p Protocol, samples []NodeState) error {
	for i, s := range samples {
		if p.Satiated(s) && p.ServiceOffered(s) > 0 {
			return fmt.Errorf("%w: sample %d (time %d, %d tokens) offers %d",
				ErrNotSatiationCompatible, i, s.Time, s.Held.Len(), p.ServiceOffered(s))
		}
	}
	return nil
}

// AttackerModel describes the attacker of Observation 3.1 quantitatively:
// each round it can deliver up to Rate tokens to the target, drawn from the
// universe in an order of its choosing.
type AttackerModel struct {
	// Rate is the number of tokens the attacker can provide per round.
	Rate int
	// Universe is the full token set the target wants.
	Universe TokenSet
}

// ObservationResult reports what the Observation 3.1 harness saw.
type ObservationResult struct {
	// Rounds is how many rounds were simulated.
	Rounds int
	// ServiceProvided is the total service the target offered over the run.
	ServiceProvided int
	// SatiatedFrom is the first round at which the target was satiated and
	// stayed satiated, or -1 if it never was.
	SatiatedFrom int
}

// demandFn returns how many new tokens the target consumes (i.e. demands)
// in a round; the harness uses it to model token churn such as expiring
// gossip updates. A nil demand means the universe is static.
type demandFn func(round int) TokenSet

// ObservationConfig configures the Observation 3.1 harness.
type ObservationConfig struct {
	// Protocol under test; must be satiation-compatible for the observation
	// to hold.
	Protocol Protocol
	// Attacker capability.
	Attacker AttackerModel
	// Rounds to simulate.
	Rounds int
	// NewDemand, if non-nil, injects additional tokens into the target's
	// desired universe at the start of each round (e.g. newly released
	// updates). The attacker must also cover these to keep the target
	// satiated.
	NewDemand func(round int) TokenSet
}

// RunObservation executes the Observation 3.1 scenario: an attacker
// delivering tokens to a single target node as fast as its Rate allows,
// while we watch how much service the target offers. If the protocol is
// satiation-compatible and the attacker's rate weakly dominates demand, the
// target provides zero service from the moment it is first satiated — which,
// with Rate >= |Universe|, is round 0.
func RunObservation(cfg ObservationConfig) (ObservationResult, error) {
	if cfg.Protocol == nil {
		return ObservationResult{}, errors.New("core: nil protocol")
	}
	if cfg.Rounds <= 0 {
		return ObservationResult{}, errors.New("core: rounds must be positive")
	}
	var demand demandFn
	if cfg.NewDemand != nil {
		demand = cfg.NewDemand
	}

	want := cfg.Attacker.Universe.Clone()
	held := NewTokenSet()
	res := ObservationResult{Rounds: cfg.Rounds, SatiatedFrom: -1}

	for round := 0; round < cfg.Rounds; round++ {
		if demand != nil {
			want.Union(demand(round))
		}
		// The attacker delivers up to Rate missing tokens.
		delivered := 0
		for t := range want {
			if delivered >= cfg.Attacker.Rate {
				break
			}
			if held.Add(t) {
				delivered++
			}
		}
		state := NodeState{Time: round, Held: held}
		offered := 0
		if !cfg.Protocol.Satiated(state) {
			offered = cfg.Protocol.ServiceOffered(state)
		} else if got := cfg.Protocol.ServiceOffered(state); got != 0 {
			// A satiation-compatible protocol must not offer here; count it
			// so callers can see the observation fail for incompatible
			// protocols (e.g. altruistic ones).
			offered = got
		}
		res.ServiceProvided += offered
		if cfg.Protocol.Satiated(state) {
			if res.SatiatedFrom == -1 {
				res.SatiatedFrom = round
			}
		} else {
			res.SatiatedFrom = -1
		}
	}
	return res, nil
}

// TokenCollector is the reference satiation-compatible protocol: it wants
// the universe, offers one unit of service per request while unsatiated,
// and nothing once satiated. Altruism > 0 makes it deliberately
// satiation-incompatible (the paper's parameter a, deterministic variant).
type TokenCollector struct {
	// Sat decides satiation.
	Sat Satiation
	// ServiceWhileHungry is the service offered when unsatiated.
	ServiceWhileHungry int
	// AltruisticService is the service offered even when satiated.
	AltruisticService int
}

var _ Protocol = (*TokenCollector)(nil)

// Satiated implements Protocol.
func (t *TokenCollector) Satiated(s NodeState) bool {
	if t.Sat == nil {
		return false
	}
	return t.Sat(s.Time, s.Held)
}

// ServiceOffered implements Protocol.
func (t *TokenCollector) ServiceOffered(s NodeState) int {
	if t.Satiated(s) {
		return t.AltruisticService
	}
	return t.ServiceWhileHungry
}
