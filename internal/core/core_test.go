package core

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestTokenSetBasics(t *testing.T) {
	s := NewTokenSet(1, 2, 3)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Has(2) || s.Has(4) {
		t.Fatal("membership wrong")
	}
	if s.Add(2) {
		t.Fatal("re-adding reported new")
	}
	if !s.Add(4) {
		t.Fatal("adding new token reported duplicate")
	}
}

func TestTokenSetUnionAndClone(t *testing.T) {
	a := NewTokenSet(1, 2)
	b := NewTokenSet(2, 3, 4)
	added := a.Union(b)
	if added != 2 {
		t.Fatalf("Union added %d, want 2", added)
	}
	if a.Len() != 4 {
		t.Fatalf("Len = %d", a.Len())
	}
	c := a.Clone()
	c.Add(99)
	if a.Has(99) {
		t.Fatal("clone aliases original")
	}
}

func TestContainsAll(t *testing.T) {
	a := NewTokenSet(1, 2, 3)
	if !a.ContainsAll(NewTokenSet(1, 3)) {
		t.Fatal("superset check failed")
	}
	if a.ContainsAll(NewTokenSet(1, 4)) {
		t.Fatal("non-superset accepted")
	}
	if !a.ContainsAll(NewTokenSet()) {
		t.Fatal("empty set should be contained")
	}
}

func TestCompleteSetSatiation(t *testing.T) {
	universe := NewTokenSet(1, 2, 3)
	sat := CompleteSetSatiation(universe)
	if sat(0, NewTokenSet(1, 2)) {
		t.Fatal("satiated without full set")
	}
	if !sat(0, NewTokenSet(1, 2, 3)) {
		t.Fatal("not satiated with full set")
	}
	if !sat(0, NewTokenSet(1, 2, 3, 4)) {
		t.Fatal("superset should satiate")
	}
}

func TestThresholdSatiation(t *testing.T) {
	sat := ThresholdSatiation(2)
	if sat(0, NewTokenSet(1)) {
		t.Fatal("satiated below threshold")
	}
	if !sat(0, NewTokenSet(1, 2)) {
		t.Fatal("not satiated at threshold")
	}
}

func TestRankSatiation(t *testing.T) {
	// A toy rank function: rank = min(len, 3).
	rank := func(s TokenSet) int {
		if s.Len() > 3 {
			return 3
		}
		return s.Len()
	}
	sat := RankSatiation(3, rank)
	if sat(0, NewTokenSet(1, 2)) {
		t.Fatal("rank 2 satiated")
	}
	if !sat(0, NewTokenSet(1, 2, 3)) {
		t.Fatal("rank 3 not satiated")
	}
}

func TestCheckMonotone(t *testing.T) {
	universe := NewTokenSet(1, 2)
	chain := []TokenSet{NewTokenSet(), NewTokenSet(1), NewTokenSet(1, 2)}
	if err := CheckMonotone(CompleteSetSatiation(universe), 0, chain); err != nil {
		t.Fatal(err)
	}

	// A non-monotone sat: satiated only with exactly one token.
	bad := func(_ int, held TokenSet) bool { return held.Len() == 1 }
	if err := CheckMonotone(bad, 0, chain); err == nil {
		t.Fatal("non-monotone satiation accepted")
	}

	// Chain that is not increasing must be rejected.
	broken := []TokenSet{NewTokenSet(1), NewTokenSet(2)}
	if err := CheckMonotone(CompleteSetSatiation(universe), 0, broken); err == nil {
		t.Fatal("non-chain accepted")
	}
}

func TestThresholdSatiationMonotoneQuick(t *testing.T) {
	err := quick.Check(func(ks []uint8, threshold uint8) bool {
		sat := ThresholdSatiation(int(threshold % 16))
		chain := make([]TokenSet, 0, len(ks))
		cur := NewTokenSet()
		for _, k := range ks {
			cur = cur.Clone()
			cur.Add(Token(k))
			chain = append(chain, cur)
		}
		return CheckMonotone(sat, 0, chain) == nil
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckSatiationCompatible(t *testing.T) {
	universe := NewTokenSet(1, 2)
	good := &TokenCollector{
		Sat:                CompleteSetSatiation(universe),
		ServiceWhileHungry: 1,
	}
	samples := []NodeState{
		{Time: 0, Held: NewTokenSet()},
		{Time: 0, Held: NewTokenSet(1)},
		{Time: 0, Held: NewTokenSet(1, 2)},
	}
	if err := CheckSatiationCompatible(good, samples); err != nil {
		t.Fatal(err)
	}

	altruistic := &TokenCollector{
		Sat:                CompleteSetSatiation(universe),
		ServiceWhileHungry: 1,
		AltruisticService:  1,
	}
	err := CheckSatiationCompatible(altruistic, samples)
	if !errors.Is(err, ErrNotSatiationCompatible) {
		t.Fatalf("altruistic protocol passed compatibility check: %v", err)
	}
}

// TestObservation31 is the paper's Observation 3.1 as an executable check:
// with a satiation-compatible protocol and an attacker at least as fast as
// demand, the target provides no service at all.
func TestObservation31(t *testing.T) {
	universe := NewTokenSet(1, 2, 3, 4, 5)
	proto := &TokenCollector{
		Sat:                CompleteSetSatiation(universe),
		ServiceWhileHungry: 1,
	}
	res, err := RunObservation(ObservationConfig{
		Protocol: proto,
		Attacker: AttackerModel{Rate: 5, Universe: universe},
		Rounds:   50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ServiceProvided != 0 {
		t.Fatalf("instantly satiated node provided %d service", res.ServiceProvided)
	}
	if res.SatiatedFrom != 0 {
		t.Fatalf("satiated from round %d, want 0", res.SatiatedFrom)
	}
}

// TestObservation31SlowAttacker: an attacker slower than the universe size
// leaves a service window before satiation completes.
func TestObservation31SlowAttacker(t *testing.T) {
	universe := NewTokenSet(1, 2, 3, 4, 5, 6)
	proto := &TokenCollector{
		Sat:                CompleteSetSatiation(universe),
		ServiceWhileHungry: 1,
	}
	res, err := RunObservation(ObservationConfig{
		Protocol: proto,
		Attacker: AttackerModel{Rate: 2, Universe: universe},
		Rounds:   50,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Needs 3 rounds at rate 2 to deliver 6 tokens: rounds 0 and 1 are
	// unsatiated, so exactly 2 units of service leak out.
	if res.ServiceProvided != 2 {
		t.Fatalf("service = %d, want 2", res.ServiceProvided)
	}
	if res.SatiatedFrom != 2 {
		t.Fatalf("satiated from %d, want 2", res.SatiatedFrom)
	}
}

// TestObservation31WithChurn: when new demand arrives each round faster
// than the attacker can cover it, the node keeps serving.
func TestObservation31WithChurn(t *testing.T) {
	// The satiation function must track the growing demand, so it closes
	// over a universe that the demand callback extends.
	universe := NewTokenSet(1)
	proto := &TokenCollector{
		Sat:                func(_ int, held TokenSet) bool { return held.ContainsAll(universe) },
		ServiceWhileHungry: 1,
	}
	next := Token(100)
	res, err := RunObservation(ObservationConfig{
		Protocol: proto,
		Attacker: AttackerModel{Rate: 1, Universe: universe},
		Rounds:   20,
		NewDemand: func(round int) TokenSet {
			// Two new tokens per round; the attacker covers only one.
			a, b := next, next+1
			next += 2
			universe.Add(a)
			universe.Add(b)
			return NewTokenSet(a, b)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ServiceProvided == 0 {
		t.Fatal("overwhelmed attacker still silenced the node")
	}
}

// TestObservationSatiationCompatibleWithGrowingUniverse: the sat function of
// CompleteSetSatiation recomputes against the *original* universe, so this
// checks the harness wiring of NewDemand + want-set growth.
func TestObservationAltruistStillServes(t *testing.T) {
	universe := NewTokenSet(1, 2)
	proto := &TokenCollector{
		Sat:                CompleteSetSatiation(universe),
		ServiceWhileHungry: 1,
		AltruisticService:  1, // a > 0: not satiation-compatible
	}
	res, err := RunObservation(ObservationConfig{
		Protocol: proto,
		Attacker: AttackerModel{Rate: 2, Universe: universe},
		Rounds:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ServiceProvided != 10 {
		t.Fatalf("altruistic node served %d rounds, want all 10", res.ServiceProvided)
	}
}

func TestRunObservationValidation(t *testing.T) {
	if _, err := RunObservation(ObservationConfig{Rounds: 1}); err == nil {
		t.Fatal("nil protocol accepted")
	}
	if _, err := RunObservation(ObservationConfig{Protocol: &TokenCollector{}, Rounds: 0}); err == nil {
		t.Fatal("zero rounds accepted")
	}
}

func TestTokenCollectorNilSat(t *testing.T) {
	tc := &TokenCollector{ServiceWhileHungry: 2}
	if tc.Satiated(NodeState{Held: NewTokenSet()}) {
		t.Fatal("nil Sat reported satiated")
	}
	if tc.ServiceOffered(NodeState{Held: NewTokenSet()}) != 2 {
		t.Fatal("hungry service wrong")
	}
}
