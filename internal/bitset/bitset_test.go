package bitset

import (
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if s.Len() != 0 {
		t.Fatalf("new set has Len %d", s.Len())
	}
	if s.Cap() != 100 {
		t.Fatalf("Cap = %d, want 100", s.Cap())
	}
	if s.Full() {
		t.Fatal("empty set reports Full")
	}
	for i := 0; i < 100; i++ {
		if s.Has(i) {
			t.Fatalf("empty set Has(%d)", i)
		}
	}
}

func TestZeroCapacity(t *testing.T) {
	s := New(0)
	if !s.Full() {
		t.Fatal("zero-capacity set should be vacuously full")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddRemove(t *testing.T) {
	s := New(130) // cross word boundaries
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if !s.Add(i) {
			t.Fatalf("Add(%d) reported already present", i)
		}
		if s.Add(i) {
			t.Fatalf("second Add(%d) reported newly added", i)
		}
		if !s.Has(i) {
			t.Fatalf("Has(%d) false after Add", i)
		}
	}
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
	if !s.Remove(64) {
		t.Fatal("Remove(64) reported absent")
	}
	if s.Remove(64) {
		t.Fatal("second Remove(64) reported present")
	}
	if s.Len() != 7 {
		t.Fatalf("Len = %d after remove, want 7", s.Len())
	}
}

func TestHasOutOfRange(t *testing.T) {
	s := New(10)
	if s.Has(-1) || s.Has(10) || s.Has(1000) {
		t.Fatal("out-of-range Has returned true")
	}
}

func TestAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(10) on cap-10 set did not panic")
		}
	}()
	New(10).Add(10)
}

func TestFill(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 128, 130} {
		s := New(n)
		s.Fill()
		if !s.Full() {
			t.Fatalf("cap %d: not Full after Fill", n)
		}
		if s.Len() != n {
			t.Fatalf("cap %d: Len = %d after Fill", n, s.Len())
		}
		// The word padding must not leak phantom bits.
		count := 0
		s.ForEach(func(int) { count++ })
		if count != n {
			t.Fatalf("cap %d: ForEach visited %d bits", n, count)
		}
	}
}

func TestUnionWith(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Add(1)
	a.Add(70)
	b.Add(70)
	b.Add(99)
	added := a.UnionWith(b)
	if added != 1 {
		t.Fatalf("UnionWith added %d, want 1", added)
	}
	for _, i := range []int{1, 70, 99} {
		if !a.Has(i) {
			t.Fatalf("union missing %d", i)
		}
	}
	if a.Len() != 3 {
		t.Fatalf("Len = %d, want 3", a.Len())
	}
}

func TestUnionWithMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity mismatch did not panic")
		}
	}()
	New(10).UnionWith(New(11))
}

func TestCloneIndependent(t *testing.T) {
	a := New(50)
	a.Add(7)
	b := a.Clone()
	b.Add(8)
	if a.Has(8) {
		t.Fatal("mutating clone affected original")
	}
	if !b.Has(7) {
		t.Fatal("clone lost bit 7")
	}
}

func TestForEachOrder(t *testing.T) {
	s := New(200)
	want := []int{3, 64, 65, 150, 199}
	for _, v := range want {
		s.Add(v)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("visited %v, want %v (ascending)", got, want)
		}
	}
}

func TestMissing(t *testing.T) {
	s := New(5)
	s.Add(1)
	s.Add(3)
	got := s.Missing()
	want := []int{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("Missing = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Missing = %v, want %v", got, want)
		}
	}
}

// TestLenMatchesCount is the core bookkeeping invariant: Len always equals
// the number of set bits, through any sequence of operations.
func TestLenMatchesCount(t *testing.T) {
	err := quick.Check(func(ops []uint16) bool {
		const n = 97
		s := New(n)
		ref := make(map[int]bool)
		for _, op := range ops {
			i := int(op) % n
			switch (op / 97) % 3 {
			case 0:
				s.Add(i)
				ref[i] = true
			case 1:
				s.Remove(i)
				delete(ref, i)
			case 2:
				if s.Has(i) != ref[i] {
					return false
				}
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		count := 0
		s.ForEach(func(int) { count++ })
		return count == len(ref)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

// TestUnionIsIdempotentAndMonotone checks union properties on random sets.
func TestUnionIsIdempotentAndMonotone(t *testing.T) {
	err := quick.Check(func(aBits, bBits []uint16) bool {
		const n = 120
		a := New(n)
		b := New(n)
		for _, v := range aBits {
			a.Add(int(v) % n)
		}
		for _, v := range bBits {
			b.Add(int(v) % n)
		}
		u := a.Clone()
		u.UnionWith(b)
		// Monotone: u contains both.
		ok := true
		a.ForEach(func(i int) {
			if !u.Has(i) {
				ok = false
			}
		})
		b.ForEach(func(i int) {
			if !u.Has(i) {
				ok = false
			}
		})
		if !ok {
			return false
		}
		// Idempotent: second union adds nothing.
		return u.UnionWith(b) == 0
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewArena(t *testing.T) {
	for _, tc := range []struct{ count, n int }{{0, 10}, {3, 0}, {4, 1}, {5, 64}, {3, 65}, {2, 130}} {
		sets := NewArena(tc.count, tc.n)
		if len(sets) != tc.count {
			t.Fatalf("NewArena(%d,%d): %d sets", tc.count, tc.n, len(sets))
		}
		for i := range sets {
			if sets[i].Cap() != tc.n || sets[i].Len() != 0 {
				t.Fatalf("NewArena(%d,%d)[%d]: cap %d len %d", tc.count, tc.n, i, sets[i].Cap(), sets[i].Len())
			}
		}
		// Independence: mutating one set never leaks into a sibling.
		if tc.count >= 2 && tc.n >= 1 {
			sets[0].Fill()
			sets[1].Add(0)
			sets[1].Remove(0)
			if sets[1].Len() != 0 || sets[0].Len() != tc.n {
				t.Fatalf("NewArena(%d,%d): siblings share bits", tc.count, tc.n)
			}
			// Appending past a set's capped words slice must not clobber the
			// next set's storage.
			for i := range sets {
				sets[i].Clear()
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewArena(-1, 3) did not panic")
		}
	}()
	NewArena(-1, 3)
}

func TestAppendMissing(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 130} {
		s := New(n)
		for i := 0; i < n; i += 3 {
			s.Add(i)
		}
		got := s.AppendMissing(nil)
		var want []int
		for i := 0; i < n; i++ {
			if !s.Has(i) {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: %d missing, want %d", n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: missing[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
		// Reuse: appending into a primed buffer keeps the prefix.
		buf := s.AppendMissing([]int{-1}[:1])
		if len(buf) != len(want)+1 || buf[0] != -1 {
			t.Fatalf("n=%d: AppendMissing ignored the buffer prefix", n)
		}
		// Agreement with the allocating form.
		m := s.Missing()
		if len(m) != len(want) {
			t.Fatalf("n=%d: Missing len %d, want %d", n, len(m), len(want))
		}
	}
}
