package bitset

import (
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if s.Len() != 0 {
		t.Fatalf("new set has Len %d", s.Len())
	}
	if s.Cap() != 100 {
		t.Fatalf("Cap = %d, want 100", s.Cap())
	}
	if s.Full() {
		t.Fatal("empty set reports Full")
	}
	for i := 0; i < 100; i++ {
		if s.Has(i) {
			t.Fatalf("empty set Has(%d)", i)
		}
	}
}

func TestZeroCapacity(t *testing.T) {
	s := New(0)
	if !s.Full() {
		t.Fatal("zero-capacity set should be vacuously full")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddRemove(t *testing.T) {
	s := New(130) // cross word boundaries
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if !s.Add(i) {
			t.Fatalf("Add(%d) reported already present", i)
		}
		if s.Add(i) {
			t.Fatalf("second Add(%d) reported newly added", i)
		}
		if !s.Has(i) {
			t.Fatalf("Has(%d) false after Add", i)
		}
	}
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
	if !s.Remove(64) {
		t.Fatal("Remove(64) reported absent")
	}
	if s.Remove(64) {
		t.Fatal("second Remove(64) reported present")
	}
	if s.Len() != 7 {
		t.Fatalf("Len = %d after remove, want 7", s.Len())
	}
}

func TestHasOutOfRange(t *testing.T) {
	s := New(10)
	if s.Has(-1) || s.Has(10) || s.Has(1000) {
		t.Fatal("out-of-range Has returned true")
	}
}

func TestAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(10) on cap-10 set did not panic")
		}
	}()
	New(10).Add(10)
}

func TestFill(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 128, 130} {
		s := New(n)
		s.Fill()
		if !s.Full() {
			t.Fatalf("cap %d: not Full after Fill", n)
		}
		if s.Len() != n {
			t.Fatalf("cap %d: Len = %d after Fill", n, s.Len())
		}
		// The word padding must not leak phantom bits.
		count := 0
		s.ForEach(func(int) { count++ })
		if count != n {
			t.Fatalf("cap %d: ForEach visited %d bits", n, count)
		}
	}
}

func TestUnionWith(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Add(1)
	a.Add(70)
	b.Add(70)
	b.Add(99)
	added := a.UnionWith(b)
	if added != 1 {
		t.Fatalf("UnionWith added %d, want 1", added)
	}
	for _, i := range []int{1, 70, 99} {
		if !a.Has(i) {
			t.Fatalf("union missing %d", i)
		}
	}
	if a.Len() != 3 {
		t.Fatalf("Len = %d, want 3", a.Len())
	}
}

func TestUnionWithMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity mismatch did not panic")
		}
	}()
	New(10).UnionWith(New(11))
}

func TestCloneIndependent(t *testing.T) {
	a := New(50)
	a.Add(7)
	b := a.Clone()
	b.Add(8)
	if a.Has(8) {
		t.Fatal("mutating clone affected original")
	}
	if !b.Has(7) {
		t.Fatal("clone lost bit 7")
	}
}

func TestForEachOrder(t *testing.T) {
	s := New(200)
	want := []int{3, 64, 65, 150, 199}
	for _, v := range want {
		s.Add(v)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("visited %v, want %v (ascending)", got, want)
		}
	}
}

func TestMissing(t *testing.T) {
	s := New(5)
	s.Add(1)
	s.Add(3)
	got := s.Missing()
	want := []int{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("Missing = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Missing = %v, want %v", got, want)
		}
	}
}

// TestLenMatchesCount is the core bookkeeping invariant: Len always equals
// the number of set bits, through any sequence of operations.
func TestLenMatchesCount(t *testing.T) {
	err := quick.Check(func(ops []uint16) bool {
		const n = 97
		s := New(n)
		ref := make(map[int]bool)
		for _, op := range ops {
			i := int(op) % n
			switch (op / 97) % 3 {
			case 0:
				s.Add(i)
				ref[i] = true
			case 1:
				s.Remove(i)
				delete(ref, i)
			case 2:
				if s.Has(i) != ref[i] {
					return false
				}
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		count := 0
		s.ForEach(func(int) { count++ })
		return count == len(ref)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

// TestUnionIsIdempotentAndMonotone checks union properties on random sets.
func TestUnionIsIdempotentAndMonotone(t *testing.T) {
	err := quick.Check(func(aBits, bBits []uint16) bool {
		const n = 120
		a := New(n)
		b := New(n)
		for _, v := range aBits {
			a.Add(int(v) % n)
		}
		for _, v := range bBits {
			b.Add(int(v) % n)
		}
		u := a.Clone()
		u.UnionWith(b)
		// Monotone: u contains both.
		ok := true
		a.ForEach(func(i int) {
			if !u.Has(i) {
				ok = false
			}
		})
		b.ForEach(func(i int) {
			if !u.Has(i) {
				ok = false
			}
		})
		if !ok {
			return false
		}
		// Idempotent: second union adds nothing.
		return u.UnionWith(b) == 0
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
