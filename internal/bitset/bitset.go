// Package bitset provides a compact fixed-capacity bit set used by the
// piece- and token-collecting simulators.
package bitset

import "math/bits"

// Set is a fixed-capacity bit set over [0, Cap). The zero value is unusable;
// create Sets with New.
type Set struct {
	words []uint64
	n     int
	count int
}

// New returns an empty set with capacity n. It panics if n < 0.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// NewArena returns count independent empty sets of capacity n whose word
// storage shares one contiguous backing array, in index order. Simulators
// holding one set per agent use this so that scanning agents in index order
// walks packed memory instead of chasing count separate heap objects. It
// panics if count or n is negative.
func NewArena(count, n int) []Set {
	if count < 0 || n < 0 {
		panic("bitset: negative arena size")
	}
	wpn := (n + 63) / 64
	words := make([]uint64, count*wpn)
	sets := make([]Set, count)
	for i := range sets {
		sets[i] = Set{words: words[i*wpn : (i+1)*wpn : (i+1)*wpn], n: n}
	}
	return sets
}

// Cap returns the capacity the set was created with.
func (s *Set) Cap() int { return s.n }

// Len returns the number of set bits.
func (s *Set) Len() int { return s.count }

// Full reports whether every bit in [0, Cap) is set.
func (s *Set) Full() bool { return s.count == s.n }

// Has reports whether bit i is set. Out-of-range bits read as false.
func (s *Set) Has(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/64]&(1<<(i%64)) != 0
}

// Add sets bit i and reports whether it was newly set. It panics for
// out-of-range i.
func (s *Set) Add(i int) bool {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
	w, m := i/64, uint64(1)<<(i%64)
	if s.words[w]&m != 0 {
		return false
	}
	s.words[w] |= m
	s.count++
	return true
}

// Remove clears bit i and reports whether it was set. It panics for
// out-of-range i.
func (s *Set) Remove(i int) bool {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
	w, m := i/64, uint64(1)<<(i%64)
	if s.words[w]&m == 0 {
		return false
	}
	s.words[w] &^= m
	s.count--
	return true
}

// UnionWith merges other into s and returns how many bits were newly set.
// It panics if capacities differ.
func (s *Set) UnionWith(other *Set) int {
	if other.n != s.n {
		panic("bitset: capacity mismatch")
	}
	added := 0
	for i, w := range other.words {
		nw := s.words[i] | w
		added += bits.OnesCount64(nw) - bits.OnesCount64(s.words[i])
		s.words[i] = nw
	}
	s.count += added
	return added
}

// Clear resets every bit, keeping the capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
	s.count = 0
}

// CopyFrom overwrites s with the contents of other. It panics if capacities
// differ. Unlike Clone it allocates nothing, so hot loops can reuse one set
// as a snapshot buffer.
func (s *Set) CopyFrom(other *Set) {
	if other.n != s.n {
		panic("bitset: capacity mismatch")
	}
	copy(s.words, other.words)
	s.count = other.count
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	out := &Set{words: make([]uint64, len(s.words)), n: s.n, count: s.count}
	copy(out.words, s.words)
	return out
}

// Fill sets every bit in [0, Cap).
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	if rem := s.n % 64; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] = (1 << rem) - 1
	}
	s.count = s.n
}

// ForEach calls fn for every set bit in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &= w - 1
		}
	}
}

// DiffEach calls fn for every bit set in s but clear in other, in ascending
// order. It panics if capacities differ.
func (s *Set) DiffEach(other *Set, fn func(i int)) {
	if other.n != s.n {
		panic("bitset: capacity mismatch")
	}
	for wi, w := range s.words {
		w &^= other.words[wi]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &= w - 1
		}
	}
}

// AppendDiff appends to buf, in ascending order, every bit set in s but
// clear in other, and returns the extended slice. It panics if capacities
// differ. Unlike DiffEach it needs no callback, so hot loops reusing buf
// run allocation-free.
func (s *Set) AppendDiff(other *Set, buf []int) []int {
	if other.n != s.n {
		panic("bitset: capacity mismatch")
	}
	for wi, w := range s.words {
		w &^= other.words[wi]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			buf = append(buf, wi*64+b)
			w &= w - 1
		}
	}
	return buf
}

// HasDiff reports whether any bit is set in s but clear in other. It panics
// if capacities differ.
func (s *Set) HasDiff(other *Set) bool {
	if other.n != s.n {
		panic("bitset: capacity mismatch")
	}
	for wi, w := range s.words {
		if w&^other.words[wi] != 0 {
			return true
		}
	}
	return false
}

// Missing returns the clear bits in ascending order.
func (s *Set) Missing() []int {
	return s.AppendMissing(make([]int, 0, s.n-s.count))
}

// AppendMissing appends the clear bits in [0, Cap) to buf in ascending order
// and returns the extended slice. Like AppendDiff it exists for hot loops
// that reuse buf to stay allocation-free.
func (s *Set) AppendMissing(buf []int) []int {
	for wi, w := range s.words {
		w = ^w
		base := wi * 64
		for w != 0 {
			b := bits.TrailingZeros64(w)
			i := base + b
			if i >= s.n {
				break
			}
			buf = append(buf, i)
			w &= w - 1
		}
	}
	return buf
}
