package serve

import (
	"math"
	"sync"

	"lotuseater/internal/scenario"
)

// Job states, in lifecycle order.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// job is one admitted simulation request. The jobs map keyed by cache key
// is the singleflight layer: while a job for a key is queued or running,
// every identical request joins it instead of enqueueing another run.
type job struct {
	key  string
	spec *scenario.Spec
	seed uint64

	mu    sync.Mutex
	state string
	done  int // replicates folded so far
	total int // replicates the run will fold: exact for fixed runs, a
	// monotone non-increasing cap estimate under adaptive precision plans
	point     int     // current sweep point (adaptive runs)
	pointReps int     // replicates folded at that point so far
	pointHW   float64 // Student-t half-width at that point so far
	adaptive  bool    // whether a per-point CI readout ever arrived
	errMsg    string
	finished  chan struct{} // closed when the job reaches done or failed
}

func newJob(key string, spec *scenario.Spec, seed uint64, total int) *job {
	return &job{
		key:      key,
		spec:     spec,
		seed:     seed,
		state:    StateQueued,
		total:    total,
		finished: make(chan struct{}),
	}
}

func (j *job) setRunning() {
	j.mu.Lock()
	j.state = StateRunning
	j.mu.Unlock()
}

// progress is the scenario.RunOptions callback; it arrives in order from the
// run's single folder goroutine. Fixed runs report a constant total;
// adaptive runs report a shrinking cap estimate — stored as-is, so the
// status endpoint shows totals that only ever move down.
func (j *job) progress(done, total int) {
	j.mu.Lock()
	j.done, j.total = done, total
	j.mu.Unlock()
}

// pointProgress is the scenario.RunOptions per-wave callback of adaptive
// runs: the "reps-so-far / CI-so-far" readout for the current sweep point.
func (j *job) pointProgress(point, reps int, halfWidth float64, met bool) {
	j.mu.Lock()
	j.adaptive = true
	j.point, j.pointReps = point, reps
	if !math.IsInf(halfWidth, 0) && !math.IsNaN(halfWidth) {
		j.pointHW = halfWidth
	}
	j.mu.Unlock()
}

// totalReplicates reports the replicates the run has folded so far — after
// the final progress callback this is the run's true count, exact even for
// adaptive plans whose up-front total was only a cap.
func (j *job) totalReplicates() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.done > 0 {
		return j.done
	}
	return j.total
}

func (j *job) finish() {
	j.mu.Lock()
	j.state = StateDone
	j.done = j.total
	j.mu.Unlock()
	close(j.finished)
}

func (j *job) fail(err error) {
	j.mu.Lock()
	j.state = StateFailed
	j.errMsg = err.Error()
	j.mu.Unlock()
	close(j.finished)
}

// jobStatus is the JSON shape of GET /jobs/<key>. ReplicatesTotal is exact
// for fixed runs; under an adaptive precision plan it is the points x
// maxReps cap shrinking toward the true count as points stop early (never
// increasing). The Point* fields appear only for adaptive runs: the sweep
// point currently folding, its replicates so far, and the Student-t
// half-width achieved there so far.
type jobStatus struct {
	Key             string   `json:"key"`
	Status          string   `json:"status"`
	ReplicatesDone  int      `json:"replicatesDone"`
	ReplicatesTotal int      `json:"replicatesTotal"`
	Point           *int     `json:"point,omitempty"`
	PointReplicates int      `json:"pointReplicates,omitempty"`
	PointHalfWidth  *float64 `json:"pointHalfWidth,omitempty"`
	Error           string   `json:"error,omitempty"`
}

func (j *job) status() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := jobStatus{
		Key:             j.key,
		Status:          j.state,
		ReplicatesDone:  j.done,
		ReplicatesTotal: j.total,
		Error:           j.errMsg,
	}
	if j.adaptive {
		point, hw := j.point, j.pointHW
		st.Point = &point
		st.PointReplicates = j.pointReps
		st.PointHalfWidth = &hw
	}
	return st
}
