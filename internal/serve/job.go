package serve

import (
	"sync"

	"lotuseater/internal/scenario"
)

// Job states, in lifecycle order.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// job is one admitted simulation request. The jobs map keyed by cache key
// is the singleflight layer: while a job for a key is queued or running,
// every identical request joins it instead of enqueueing another run.
type job struct {
	key  string
	spec *scenario.Spec
	seed uint64

	mu       sync.Mutex
	state    string
	done     int // replicates folded so far
	total    int // replicates the run will fold (points x replicates)
	errMsg   string
	finished chan struct{} // closed when the job reaches done or failed
}

func newJob(key string, spec *scenario.Spec, seed uint64, total int) *job {
	return &job{
		key:      key,
		spec:     spec,
		seed:     seed,
		state:    StateQueued,
		total:    total,
		finished: make(chan struct{}),
	}
}

func (j *job) setRunning() {
	j.mu.Lock()
	j.state = StateRunning
	j.mu.Unlock()
}

// progress is the scenario.RunOptions callback; it arrives in order from the
// run's single folder goroutine.
func (j *job) progress(done, total int) {
	j.mu.Lock()
	j.done, j.total = done, total
	j.mu.Unlock()
}

func (j *job) finish() {
	j.mu.Lock()
	j.state = StateDone
	j.done = j.total
	j.mu.Unlock()
	close(j.finished)
}

func (j *job) fail(err error) {
	j.mu.Lock()
	j.state = StateFailed
	j.errMsg = err.Error()
	j.mu.Unlock()
	close(j.finished)
}

// jobStatus is the JSON shape of GET /jobs/<key>.
type jobStatus struct {
	Key             string `json:"key"`
	Status          string `json:"status"`
	ReplicatesDone  int    `json:"replicatesDone"`
	ReplicatesTotal int    `json:"replicatesTotal"`
	Error           string `json:"error,omitempty"`
}

func (j *job) status() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobStatus{
		Key:             j.key,
		Status:          j.state,
		ReplicatesDone:  j.done,
		ReplicatesTotal: j.total,
		Error:           j.errMsg,
	}
}
